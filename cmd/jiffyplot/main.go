// Command jiffyplot renders jiffybench output files as ASCII bar charts, one
// chart per (scenario, batch-mode, distribution, thread-count) group — a
// quick visual of the figure shapes without leaving the terminal.
//
//	go run ./cmd/jiffyplot results/fig5_simple.txt
//	go run ./cmd/jiffyplot -metric update results/fig6_b100.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type point struct {
	fig, index, mix, batch, dist string
	threads                      int
	total, update                float64
}

func main() {
	metric := flag.String("metric", "total", "total or update throughput")
	width := flag.Int("width", 46, "bar width in characters")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: jiffyplot [-metric total|update] file...")
		os.Exit(2)
	}
	var pts []point
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if p, ok := parseRow(sc.Text()); ok {
				pts = append(pts, p)
			}
		}
		f.Close()
	}
	if len(pts) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark rows found")
		os.Exit(1)
	}

	groups := map[string][]point{}
	var order []string
	for _, p := range pts {
		k := fmt.Sprintf("fig%s  %s %s %s  threads=%d", p.fig, p.mix, p.batch, p.dist, p.threads)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	for _, k := range order {
		g := groups[k]
		sort.SliceStable(g, func(i, j int) bool { return value(g[i], *metric) > value(g[j], *metric) })
		max := value(g[0], *metric)
		fmt.Printf("\n%s  (%s Mops/s)\n", k, *metric)
		for _, p := range g {
			v := value(p, *metric)
			n := 0
			if max > 0 {
				n = int(v / max * float64(*width))
			}
			fmt.Printf("  %-9s %8.3f %s\n", p.index, v, strings.Repeat("█", n))
		}
	}
}

// parseRow parses one harness row, e.g.
//
//	fig5   jiffy   w   simple   uniform   threads=8   total=  1.234 Mops/s update=  0.567 Mops/s
func parseRow(line string) (point, bool) {
	fields := strings.Fields(line)
	if len(fields) < 10 || !strings.HasPrefix(fields[0], "fig") {
		return point{}, false
	}
	p := point{
		fig:   strings.TrimPrefix(fields[0], "fig"),
		index: fields[1],
		mix:   fields[2],
		batch: fields[3],
		dist:  fields[4],
	}
	for _, f := range fields[5:] {
		switch {
		case strings.HasPrefix(f, "threads="):
			p.threads, _ = strconv.Atoi(strings.TrimPrefix(f, "threads="))
		case strings.HasPrefix(f, "total="):
			p.total = parseFloatField(fields, f, "total=")
		case strings.HasPrefix(f, "update="):
			p.update = parseFloatField(fields, f, "update=")
		}
	}
	return p, p.threads > 0
}

// parseFloatField handles both "total=1.2" and the aligned "total=" "1.2"
// split the harness produces.
func parseFloatField(fields []string, f, prefix string) float64 {
	s := strings.TrimPrefix(f, prefix)
	if s != "" {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	for i, g := range fields {
		if g == f && i+1 < len(fields) {
			v, _ := strconv.ParseFloat(fields[i+1], 64)
			return v
		}
	}
	return 0
}

func value(p point, metric string) float64 {
	if metric == "update" {
		return p.update
	}
	return p.total
}
