// Command jiffyctl operates a running jiffyd through its observability
// HTTP listener (-metrics-addr on the daemon):
//
//	jiffyctl -ctl 127.0.0.1:7421 status         # role, fencing epoch, watermark
//	jiffyctl -ctl 127.0.0.1:7421 promote        # replica -> primary failover
//	jiffyctl -ctl 127.0.0.1:7421 trace          # recent flight-recorder spans
//	jiffyctl -ctl 127.0.0.1:7421 trace -id HEX  # one trace, all its stages
//
// status reports the node's replication view: its role (standalone,
// primary, replica, promoted, or fenced), its fencing epoch, its
// watermark, and — in a fleet — its node id.
//
// promote is the manual failover step: when the primary is gone, point
// jiffyctl at a replica's control address and it applies every buffered
// replication record, opens the node for writes, and (if the daemon was
// started with -repl-addr) begins serving the replication stream for the
// rest of the fleet. Promote is idempotent — repeating it reports the
// same promote version. Fleets started with -auto-failover do this
// themselves: the failure detector elects the most-caught-up replica and
// promotes it under a bumped fencing epoch, so promote is only needed as
// an operator override.
//
// trace reads the node's flight recorder (GET /trace, DESIGN.md §13) and
// prints spans grouped by trace ID, one stage per line with its start
// offset and duration, so "where did this request spend its time" is one
// command. Filters pass through to the server: -id narrows to one trace,
// -stage to one stage (wal, repl_apply, ...), -min-us to outliers, and
// -limit bounds the span count. Batch-level spans (fsync, flush) and
// untraced requests carry trace ID 0 and group under "(untraced)".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	ctl := flag.String("ctl", "127.0.0.1:7421", "jiffyd control address (the daemon's -metrics-addr)")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: jiffyctl [-ctl host:port] <status|promote|trace>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := "http://" + strings.TrimPrefix(*ctl, "http://")

	var resp *http.Response
	var err error
	switch flag.Arg(0) {
	case "status":
		resp, err = client.Get(base + "/replstatus")
	case "promote":
		resp, err = client.Post(base+"/promote", "application/json", nil)
	case "trace":
		traceCmd(client, base, flag.Args()[1:])
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jiffyctl: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Print(string(body))
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "jiffyctl: %s\n", resp.Status)
		os.Exit(1)
	}
}

// span mirrors one element of /trace's spans array.
type span struct {
	Trace   string `json:"trace"`
	Stage   string `json:"stage"`
	Op      byte   `json:"op"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Extra   int64  `json:"extra"`
}

// traceCmd fetches /trace with the subcommand's own filter flags and
// prints the spans grouped by trace ID, stages in start order.
func traceCmd(client *http.Client, base string, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	id := fs.String("id", "", "only spans of this trace ID (hex, as printed)")
	stage := fs.String("stage", "", "only spans of this stage (client, server, wal, fsync, flush, repl_stream, repl_apply, repl_ack, ...)")
	minUS := fs.Int("min-us", 0, "only spans at least this many microseconds long")
	limit := fs.Int("limit", 256, "at most this many spans")
	fs.Parse(args)

	q := url.Values{}
	if *id != "" {
		q.Set("trace", strings.TrimPrefix(*id, "0x"))
	}
	if *stage != "" {
		q.Set("stage", *stage)
	}
	if *minUS > 0 {
		q.Set("min_us", fmt.Sprint(*minUS))
	}
	q.Set("limit", fmt.Sprint(*limit))

	resp, err := client.Get(base + "/trace?" + q.Encode())
	if err != nil {
		fmt.Fprintf(os.Stderr, "jiffyctl: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(os.Stderr, resp.Body)
		fmt.Fprintf(os.Stderr, "jiffyctl: %s\n", resp.Status)
		os.Exit(1)
	}
	var body struct {
		Spans []span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		fmt.Fprintf(os.Stderr, "jiffyctl: decoding /trace: %v\n", err)
		os.Exit(1)
	}
	if len(body.Spans) == 0 {
		fmt.Println("no spans (is traffic flowing? is -trace-sample 0?)")
		return
	}

	// Group by trace ID; order groups by their earliest span so related
	// output reads in wall-clock order, stages within a trace likewise.
	groups := map[string][]span{}
	for _, sp := range body.Spans {
		groups[sp.Trace] = append(groups[sp.Trace], sp)
	}
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	first := func(id string) int64 {
		min := groups[id][0].StartNS
		for _, sp := range groups[id] {
			if sp.StartNS < min {
				min = sp.StartNS
			}
		}
		return min
	}
	sort.Slice(ids, func(a, b int) bool { return first(ids[a]) < first(ids[b]) })

	for _, id := range ids {
		sps := groups[id]
		sort.Slice(sps, func(a, b int) bool { return sps[a].StartNS < sps[b].StartNS })
		t0 := sps[0].StartNS
		name := "trace " + id
		if id == "0" {
			name = "(untraced)"
		}
		fmt.Printf("%s  %s\n", name, time.Unix(0, t0).Format("15:04:05.000000"))
		for _, sp := range sps {
			extra := ""
			if sp.Extra != 0 {
				extra = fmt.Sprintf("  extra=%d", sp.Extra)
			}
			fmt.Printf("  %-14s +%-10s %-10s op=%d%s\n",
				sp.Stage,
				time.Duration(sp.StartNS-t0).Round(time.Microsecond),
				time.Duration(sp.DurNS).Round(time.Microsecond),
				sp.Op, extra)
		}
	}
}
