// Command jiffyctl operates a running jiffyd through its observability
// HTTP listener (-metrics-addr on the daemon):
//
//	jiffyctl -ctl 127.0.0.1:7421 status    # role, fencing epoch, watermark
//	jiffyctl -ctl 127.0.0.1:7421 promote   # replica -> primary failover
//
// status reports the node's replication view: its role (standalone,
// primary, replica, promoted, or fenced), its fencing epoch, its
// watermark, and — in a fleet — its node id.
//
// promote is the manual failover step: when the primary is gone, point
// jiffyctl at a replica's control address and it applies every buffered
// replication record, opens the node for writes, and (if the daemon was
// started with -repl-addr) begins serving the replication stream for the
// rest of the fleet. Promote is idempotent — repeating it reports the
// same promote version. Fleets started with -auto-failover do this
// themselves: the failure detector elects the most-caught-up replica and
// promotes it under a bumped fencing epoch, so promote is only needed as
// an operator override.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	ctl := flag.String("ctl", "127.0.0.1:7421", "jiffyd control address (the daemon's -metrics-addr)")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: jiffyctl [-ctl host:port] <status|promote>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := "http://" + strings.TrimPrefix(*ctl, "http://")

	var resp *http.Response
	var err error
	switch flag.Arg(0) {
	case "status":
		resp, err = client.Get(base + "/replstatus")
	case "promote":
		resp, err = client.Post(base+"/promote", "application/json", nil)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jiffyctl: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Print(string(body))
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "jiffyctl: %s\n", resp.Status)
		os.Exit(1)
	}
}
