// Command jiffycheck runs the repository's correctness batteries from the
// command line: randomized linearizability checking (exhaustive-search
// verification of small concurrent histories), snapshot-stability probes
// and structural-invariant sweeps over the Jiffy index under stress.
//
//	jiffycheck                     # full battery, default sizes
//	jiffycheck -runs 2000          # more random histories
//	jiffycheck -stress 30s         # longer invariant stress
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lincheck"
)

func main() {
	var (
		runs   = flag.Int("runs", 500, "random histories per linearizability battery")
		stress = flag.Duration("stress", 5*time.Second, "duration of the structural stress phase")
		seed   = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()
	ok := true
	ok = runLinBattery(*runs, *seed) && ok
	ok = runSnapshotStability(*stress/2, *seed) && ok
	ok = runStructuralStress(*stress, *seed) && ok
	if !ok {
		fmt.Println("FAIL")
		os.Exit(1)
	}
	fmt.Println("PASS")
}

type jiffyTarget struct{ m *core.Map[int, int] }

func (t *jiffyTarget) Get(k int) (int, bool) { return t.m.Get(k) }
func (t *jiffyTarget) Put(k, v int)          { t.m.Put(k, v) }
func (t *jiffyTarget) Remove(k int) bool     { return t.m.Remove(k) }
func (t *jiffyTarget) Batch(keys []int, vals []int, removes []bool) {
	b := core.NewBatch[int, int](len(keys))
	for i, k := range keys {
		if removes[i] {
			b.Remove(k)
		} else {
			b.Put(k, vals[i])
		}
	}
	t.m.BatchUpdate(b)
}

func runLinBattery(runs int, seed uint64) bool {
	fmt.Printf("linearizability: %d random histories (3 goroutines x 7 ops, batches on)... ", runs)
	for i := 0; i < runs; i++ {
		t := &jiffyTarget{m: core.New[int, int](core.Options[int]{FixedRevisionSize: 2})}
		h := lincheck.Record(t, lincheck.RecordConfig{
			Goroutines: 3, OpsPerG: 7, Keys: 4, Seed: seed + uint64(i), BatchFrac: 0.35,
		})
		if !lincheck.Check(h, nil) {
			fmt.Printf("\n  NOT LINEARIZABLE at seed %d:\n  %+v\n", seed+uint64(i), h)
			return false
		}
	}
	fmt.Println("ok")
	return true
}

func runSnapshotStability(d time.Duration, seed uint64) bool {
	fmt.Printf("snapshot stability under update storm (%v)... ", d)
	m := core.New[uint64, int](core.Options[uint64]{FixedRevisionSize: 8})
	for i := 0; i < 1000; i++ {
		m.Put(uint64(i), i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(g)))
			for i := 0; !stop.Load(); i++ {
				k := uint64(rng.IntN(1500))
				if rng.IntN(4) == 0 {
					m.Remove(k)
				} else {
					m.Put(k, i)
				}
			}
		}()
	}
	okAll := true
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		s := m.Snapshot()
		sum1, n1 := scanSum(s)
		sum2, n2 := scanSum(s)
		s.Close()
		if sum1 != sum2 || n1 != n2 {
			fmt.Printf("\n  UNSTABLE SNAPSHOT: (%d,%d) then (%d,%d)\n", n1, sum1, n2, sum2)
			okAll = false
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if okAll {
		fmt.Println("ok")
	}
	return okAll
}

func scanSum(s *core.Snapshot[uint64, int]) (sum uint64, n int) {
	s.All(func(k uint64, v int) bool {
		sum += k*31 + uint64(v)
		n++
		return true
	})
	return
}

func runStructuralStress(d time.Duration, seed uint64) bool {
	fmt.Printf("structural invariants after mixed stress (%v)... ", d)
	m := core.New[uint64, int](core.Options[uint64]{FixedRevisionSize: 4})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed+100, uint64(g)))
			for i := 0; !stop.Load(); i++ {
				k := uint64(rng.IntN(500))
				switch rng.IntN(8) {
				case 0, 1, 2:
					m.Put(k, i)
				case 3, 4:
					m.Remove(k)
				case 5:
					b := core.NewBatch[uint64, int](8)
					for j := 0; j < 8; j++ {
						kk := uint64(rng.IntN(500))
						if rng.IntN(3) == 0 {
							b.Remove(kk)
						} else {
							b.Put(kk, i)
						}
					}
					m.BatchUpdate(b)
				case 6:
					m.Get(k)
				default:
					n := 0
					m.RangeFrom(k, func(uint64, int) bool { n++; return n < 64 })
				}
			}
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	// Quiescent invariants: strictly increasing node keys, sorted
	// revisions inside node ranges, no pending operations.
	errs := core.CheckInvariants(m)
	if len(errs) > 0 {
		fmt.Println()
		for _, e := range errs {
			fmt.Println("  INVARIANT VIOLATION:", e)
		}
		return false
	}
	st := m.Stats()
	fmt.Printf("ok (%d nodes, %d entries, max revision list %d)\n", st.Nodes, st.Entries, st.MaxRevisionList)
	return true
}
