// Command jiffyd serves a jiffy store over TCP: the sharded in-memory
// frontend by default, or the durable sharded frontend (write-ahead logs +
// checkpoints) with -durable. Keys are strings, values are raw bytes;
// clients connect with jiffy/client using the matching codec
// (durable.StringEnc / durable.BytesEnc).
//
//	jiffyd                                # in-memory, GOMAXPROCS shards, :7420
//	jiffyd -durable -dir /var/lib/jiffyd  # durable store (survives restarts)
//	jiffyd -addr 127.0.0.1:0 -shards 8    # ephemeral port, fixed shards
//	jiffyd -metrics-addr 127.0.0.1:7421   # Prometheus /metrics + pprof
//
// The server exposes the full protocol of internal/wire: point ops, atomic
// cross-shard batches, snapshot sessions (TTL-reaped when idle, see
// -snap-ttl) and cursored scans.
//
// Replication (DESIGN.md §11) turns one jiffyd into a primary and others
// into replicas:
//
//	jiffyd -durable -repl-addr :7422            # primary: stream the WAL tail
//	jiffyd -durable -repl-addr :7422 -repl-sync # ...waiting for replica acks
//	jiffyd -replica-of primary:7422 -dir rep    # replica: apply + serve reads
//
// A replica serves the read side of the protocol (gets, scans, snapshot
// sessions) at its replicated watermark and refuses writes with
// StatusReadOnly. POST /promote on the metrics listener (or `jiffyctl
// promote`) turns a replica into a primary: buffered records are applied,
// writes open up, and — when -repl-addr is set — the promoted node starts
// serving the replication stream itself.
//
// With -metrics-addr an HTTP sidecar listener serves GET /metrics (the
// Prometheus text exposition: request rates and latencies by opcode,
// connection and backpressure state, WAL and checkpoint activity, the
// store's structural Stats, and Go runtime health), GET /healthz, and the
// standard net/http/pprof endpoints under /debug/pprof/. The serving hot
// path is instrumented whether or not the endpoint is enabled — the flag
// only adds the listener — so the published benchmark numbers are the
// instrumented ones. See DESIGN.md §10.
//
// Logs are structured (log/slog), text by default, JSON with -log-json.
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, every
// connection is severed, all server goroutines join, and — with -durable —
// the store's logs are synced and closed before the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/jiffy"
	"repro/jiffy/durable"
)

func main() {
	var (
		addr    = flag.String("addr", ":7420", "listen address (host:port; port 0 picks one)")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count of the serving frontend")
		durFlag = flag.Bool("durable", false, "serve the durable frontend (WAL + checkpoints) instead of the in-memory one")
		dir     = flag.String("dir", "jiffyd-data", "store directory (with -durable)")
		noSync  = flag.Bool("nosync", false, "skip fsyncs in the durable store (survives process crashes only)")
		snapTTL = flag.Duration("snap-ttl", 30*time.Second, "idle TTL for snapshot sessions")
		maxPage = flag.Int("max-scan-page", 4096, "server-side cap on scan page size")
		checkpt = flag.Duration("checkpoint-every", 0, "with -durable: checkpoint and truncate logs on this interval (0: never)")
		mode    = flag.String("serve-mode", "auto", "serving core: auto, eventloop, goroutine (auto also honors JIFFY_SERVE_MODE)")
		loops   = flag.Int("loops", 0, "event loop count with -serve-mode eventloop (0: GOMAXPROCS, capped at 8)")
		metrics = flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz, /replstatus, /promote and /debug/pprof (empty: no HTTP listener)")
		logJSON = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		replAddr  = flag.String("repl-addr", "", "with -durable: serve the replication stream on this address (primary role); on a replica, taken over after promotion")
		replSync  = flag.Bool("repl-sync", false, "with -repl-addr: synchronous replication — a write is not acked until every synced replica confirms receipt (or times out)")
		replicaOf = flag.String("replica-of", "", "run as a replica of this primary replication address (implies durable; reads served at the watermark, writes refused until promoted)")
	)
	flag.Parse()

	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)

	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}

	codec := durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
	var store server.Store[string, []byte]
	var dstore *durable.Sharded[string, []byte]
	var rstore *durable.Replica[string, []byte]
	var replMet *repl.Metrics
	if *replAddr != "" || *replicaOf != "" {
		replMet = repl.RegisterMetrics(reg)
	}
	switch {
	case *replicaOf != "":
		var err error
		rstore, err = durable.OpenReplica(*dir, *shards, codec,
			durable.Options[string]{NoSync: *noSync, Metrics: persist.NewMetrics(reg)})
		if err != nil {
			fatal("open replica store failed", "dir", *dir, "err", err)
		}
		store = server.NewReplicaStore(rstore)
		server.RegisterStoreStats(reg, rstore.Stats)
		server.RegisterDurableStats(reg, rstore.DurStats)
		repl.RegisterReplicaGauges(reg, rstore.Watermark)
		logger.Info("replica store open", "dir", *dir, "shards", *shards,
			"watermark", rstore.Watermark(), "primary", *replicaOf)
	case *durFlag:
		var err error
		// A replicated primary needs strictly unique commit versions so a
		// replica's resume point is exact (see durable.Options.StrictClock).
		dstore, err = durable.OpenSharded(*dir, *shards, codec,
			durable.Options[string]{NoSync: *noSync, Metrics: persist.NewMetrics(reg),
				StrictClock: *replAddr != ""})
		if err != nil {
			fatal("open durable store failed", "dir", *dir, "err", err)
		}
		store = server.NewDurableStore(dstore)
		server.RegisterStoreStats(reg, dstore.Stats)
		server.RegisterDurableStats(reg, dstore.DurStats)
		logger.Info("durable store open", "dir", *dir, "shards", *shards,
			"entries_recovered", dstore.Len(), "nosync", *noSync)
	default:
		if *replAddr != "" {
			fatal("replication requires a durable store", "fix", "add -durable")
		}
		mem := jiffy.NewSharded[string, []byte](*shards)
		store = server.NewMemStore(mem)
		server.RegisterStoreStats(reg, mem.Stats)
		logger.Info("in-memory store ready", "shards", *shards)
	}

	// Replication stream (primary role). The source must attach its tap
	// before the first client write so the stream covers every update;
	// wire it before the serving listener opens.
	var srcMu sync.Mutex
	var src *repl.Source[string, []byte]
	startSource := func(st repl.SourceStore[string, []byte]) error {
		rln, err := net.Listen("tcp", *replAddr)
		if err != nil {
			return err
		}
		s := repl.NewSource(st, codec, repl.SourceOptions{
			Tap:     repl.TapOptions{SyncAcks: *replSync},
			Metrics: replMet,
			Logf:    logf,
		})
		repl.RegisterSourceGauges(reg, s.Tap())
		go s.Serve(rln)
		srcMu.Lock()
		src = s
		srcMu.Unlock()
		logger.Info("replication stream serving", "addr", rln.Addr().String(), "sync", *replSync)
		return nil
	}
	if dstore != nil && *replAddr != "" {
		if err := startSource(dstore); err != nil {
			fatal("replication listen failed", "addr", *replAddr, "err", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	srvOpts := server.Options{
		SnapTTL:     *snapTTL,
		MaxScanPage: *maxPage,
		Mode:        server.ParseMode(*mode),
		Loops:       *loops,
		Registry:    reg,
		Logf:        logf,
	}
	if rstore != nil {
		srvOpts.ReadOnly = true
		srvOpts.Watermark = func() int64 {
			if rstore.Promoted() {
				// A promoted node is a primary: every read floor is
				// satisfiable by definition.
				return math.MaxInt64
			}
			return rstore.Watermark()
		}
	}
	srv := server.Serve(ln, store, codec, srvOpts)
	logger.Info("serving", "addr", srv.Addr().String(), "core", srv.Mode().String(),
		"snap_ttl", snapTTL.String())

	// Replication apply loop (replica role), and the promote path that
	// retires it.
	var runner *repl.Runner[string, []byte]
	var promoted sync.Once
	if rstore != nil {
		runner = repl.NewRunner(rstore, codec, *replicaOf, repl.RunnerOptions{
			Metrics: replMet,
			Logf:    logf,
		})
		runner.Start()
	}
	promote := func() (int64, error) {
		ver, err := runner.Promote()
		if err != nil {
			return 0, err
		}
		promoted.Do(func() {
			srv.SetReadOnly(false)
			if *replAddr != "" {
				// The promoted node serves the stream itself now, so the
				// surviving fleet can re-point at it.
				if serr := startSource(rstore); serr != nil {
					logger.Error("replication stream after promote failed", "err", serr)
				}
			}
			logger.Info("promoted to primary", "version", ver)
		})
		return ver, nil
	}

	var msrv *http.Server
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal("metrics listen failed", "addr", *metrics, "err", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/replstatus", func(w http.ResponseWriter, _ *http.Request) {
			role, wm := "standalone", int64(0)
			switch {
			case rstore != nil && rstore.Promoted():
				role, wm = "promoted", rstore.Watermark()
			case rstore != nil:
				role, wm = "replica", rstore.Watermark()
			case *replAddr != "":
				role = "primary"
				srcMu.Lock()
				if src != nil {
					// The frontier is the highest version every replica can
					// have applied — the primary-side watermark.
					wm = src.Tap().Frontier()
				}
				srcMu.Unlock()
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"role":      role,
				"watermark": wm,
				"addr":      srv.Addr().String(),
			})
		})
		mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "promote is a POST", http.StatusMethodNotAllowed)
				return
			}
			if runner == nil {
				http.Error(w, "not a replica", http.StatusBadRequest)
				return
			}
			ver, err := promote()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"promoted_at": ver})
		})
		// net/http/pprof registers on DefaultServeMux as an import side
		// effect; route the private mux's pprof paths to the same handlers
		// so nothing else accidentally exposed on the default mux is served.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv = &http.Server{Handler: mux}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics server failed", "err", err)
			}
		}()
		logger.Info("observability endpoint up", "addr", mln.Addr().String(),
			"paths", "/metrics /healthz /debug/pprof/")
	}

	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	if dstore != nil && *checkpt > 0 {
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*checkpt)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					start := time.Now()
					if ver, err := dstore.Checkpoint(); err != nil {
						logger.Error("checkpoint failed", "err", err)
					} else {
						logger.Info("checkpoint written", "version", ver,
							"took", time.Since(start).String())
					}
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String())
	close(stopCkpt)
	<-ckptDone
	if msrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		msrv.Shutdown(ctx)
		cancel()
	}
	if runner != nil {
		runner.Stop()
	}
	srcMu.Lock()
	if src != nil {
		src.Close()
	}
	srcMu.Unlock()
	if err := srv.Close(); err != nil {
		logger.Warn("listener close", "err", err)
	}
	if dstore != nil {
		if err := dstore.Close(); err != nil {
			fatal("store close failed", "err", err)
		}
	}
	if rstore != nil {
		if err := rstore.Close(); err != nil {
			fatal("replica store close failed", "err", err)
		}
	}
	// All server goroutines have joined (srv.Close waits); report the
	// residual count so smoke tests can assert nothing leaked. Smoke tests
	// grep for the "clean shutdown" substring.
	logger.Info("clean shutdown", "goroutines", runtime.NumGoroutine())
}
