// Command jiffyd serves a jiffy store over TCP: the sharded in-memory
// frontend by default, or the durable sharded frontend (write-ahead logs +
// checkpoints) with -durable. Keys are strings, values are raw bytes;
// clients connect with jiffy/client using the matching codec
// (durable.StringEnc / durable.BytesEnc).
//
//	jiffyd                                # in-memory, GOMAXPROCS shards, :7420
//	jiffyd -durable -dir /var/lib/jiffyd  # durable store (survives restarts)
//	jiffyd -addr 127.0.0.1:0 -shards 8    # ephemeral port, fixed shards
//	jiffyd -metrics-addr 127.0.0.1:7421   # Prometheus /metrics + pprof
//
// The server exposes the full protocol of internal/wire: point ops, atomic
// cross-shard batches, snapshot sessions (TTL-reaped when idle, see
// -snap-ttl) and cursored scans.
//
// Replication (DESIGN.md §11) turns one jiffyd into a primary and others
// into replicas:
//
//	jiffyd -durable -repl-addr :7422            # primary: stream the WAL tail
//	jiffyd -durable -repl-addr :7422 -repl-sync # ...waiting for replica acks
//	jiffyd -replica-of primary:7422 -dir rep    # replica: apply + serve reads
//
// A replica serves the read side of the protocol (gets, scans, snapshot
// sessions) at its replicated watermark and refuses writes with
// StatusReadOnly. POST /promote on the metrics listener (or `jiffyctl
// promote`) turns a replica into a primary: buffered records are applied,
// writes open up, and — when -repl-addr is set — the promoted node starts
// serving the replication stream itself.
//
// A fleet heals itself without the promote step (DESIGN.md §12): give
// every member a stable -node-id, the membership in -peers (the same
// string everywhere; each node drops its own entry), and -auto-failover:
//
//	jiffyd -durable -repl-addr :7431 -node-id a \
//	  -peers a=h1:7420/h1:7431,b=h2:7420/h2:7431 -auto-failover
//
// When the primary goes silent past -failover-threshold, the
// most-caught-up replica promotes itself under a bumped fencing epoch and
// the rest of the fleet re-points at it. A superseded primary fences
// itself on first contact with the higher epoch — writes answer
// StatusFenced — then demotes in process and rejoins the new primary's
// stream as a replica. Clients using client.Options.Rediscover follow
// the fleet on their own.
//
// With -metrics-addr an HTTP sidecar listener serves GET /metrics (the
// Prometheus text exposition: request rates and latencies by opcode,
// connection and backpressure state, WAL and checkpoint activity, the
// store's structural Stats, and Go runtime health), GET /healthz (JSON
// liveness with the node's role, fencing epoch and watermark), GET /trace
// (the flight recorder's recent spans), and the standard net/http/pprof
// endpoints under /debug/pprof/. The serving hot path is instrumented
// whether or not the endpoint is enabled — the flag only adds the
// listener — so the published benchmark numbers are the instrumented
// ones. See DESIGN.md §10.
//
// Request tracing (DESIGN.md §13) is always on: every request feeds the
// per-stage latency histograms (jiffy_stage_seconds) and leaves spans in
// a fixed-size lock-free flight recorder, stitched across processes by a
// client-propagated trace ID when the client samples one. -trace-slow
// logs a per-stage breakdown for outliers; -trace-sample dials the ring
// write rate; `jiffyctl trace` pretty-prints the recorder.
//
// Logs are structured (log/slog), text by default, JSON with -log-json.
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, every
// connection is severed, all server goroutines join, and — with -durable —
// the store's logs are synced and closed before the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"syscall"
	"time"

	"repro/internal/failover"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

func main() {
	var (
		addr    = flag.String("addr", ":7420", "listen address (host:port; port 0 picks one)")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count of the serving frontend")
		durFlag = flag.Bool("durable", false, "serve the durable frontend (WAL + checkpoints) instead of the in-memory one")
		dir     = flag.String("dir", "jiffyd-data", "store directory (with -durable)")
		noSync  = flag.Bool("nosync", false, "skip fsyncs in the durable store (survives process crashes only)")
		snapTTL = flag.Duration("snap-ttl", 30*time.Second, "idle TTL for snapshot sessions")
		maxPage = flag.Int("max-scan-page", 4096, "server-side cap on scan page size")
		checkpt = flag.Duration("checkpoint-every", 0, "with -durable: checkpoint and truncate logs on this interval (0: never)")
		mode    = flag.String("serve-mode", "auto", "serving core: auto, eventloop, goroutine (auto also honors JIFFY_SERVE_MODE)")
		loops   = flag.Int("loops", 0, "event loop count with -serve-mode eventloop (0: GOMAXPROCS, capped at 8)")
		metrics = flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz, /trace, /replstatus, /promote and /debug/pprof (empty: no HTTP listener)")
		logJSON = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		replAddr  = flag.String("repl-addr", "", "with -durable: serve the replication stream on this address (primary role); on a replica, taken over after promotion")
		replSync  = flag.Bool("repl-sync", false, "with -repl-addr: synchronous replication — a write is not acked until every synced replica confirms receipt (or times out)")
		replicaOf = flag.String("replica-of", "", "run as a replica of this primary replication address (implies durable; reads served at the watermark, writes refused until promoted)")

		traceSample = flag.Float64("trace-sample", 1, "fraction of spans written to the flight-recorder ring, 0..1 (the per-stage histograms always see every span; this only dials ring churn)")
		traceSlow   = flag.Duration("trace-slow", 0, "log a structured per-stage breakdown for any request slower than this (0: never)")
		fsyncDelay  = flag.Duration("fsync-delay", 0, "fault injection: sleep this long before every WAL fsync (testing only; shows up in the fsync/wal stages)")

		nodeID    = flag.String("node-id", "", "stable fleet identity of this node (ranks election ties; required with -auto-failover)")
		peersFlag = flag.String("peers", "", "other fleet members, comma-separated id=host:port[/replhost:port] (client address, optional replication address)")
		autoFail  = flag.Bool("auto-failover", false, "arm the failure detector: a replica elects and promotes a successor when the primary goes silent, and a superseded primary fences itself and rejoins as a replica")
		failThr   = flag.Duration("failover-threshold", 0, "with -auto-failover: primary silence before a replica suspects it (0: 2s default; probe cadence, timeouts and election stagger scale with it)")
	)
	flag.Parse()

	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)

	// The flight recorder is always constructed: stage histograms cost a
	// few atomic adds per request, and the ring only fills when tracing is
	// sampled on the client or -trace-sample is set. See DESIGN.md §13.
	rec := trace.NewRecorder(0)
	rec.RegisterMetrics(reg)
	rec.SetSampleRate(*traceSample)

	logf := func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}

	peers, perr := parsePeers(*peersFlag)
	if perr != nil {
		fatal("bad -peers", "err", perr)
	}
	// The same -peers string can be handed to every member; each node
	// drops its own entry.
	if *nodeID != "" {
		peers = slices.DeleteFunc(peers, func(m wire.Member) bool { return m.ID == *nodeID })
	}
	if *autoFail && *nodeID == "" {
		fatal("automatic failover needs a stable identity", "fix", "add -node-id")
	}

	codec := durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
	var store server.Store[string, []byte]
	var fn *fleetNode
	var replMet *repl.Metrics
	if *replAddr != "" || *replicaOf != "" {
		replMet = repl.RegisterMetrics(reg)
	}
	// fleetNode glues the durable store, the replication endpoints and the
	// failure detector; the serving store is switchable so a fenced
	// primary can demote to a replica under live connections.
	newFleet := func() *fleetNode {
		return &fleetNode{
			logger: logger, logf: logf, codec: codec, reg: reg,
			dir: *dir, shards: *shards,
			dopts: durable.Options[string]{
				NoSync: *noSync, Metrics: persist.NewMetrics(reg),
				Tracer: rec, FsyncDelay: *fsyncDelay,
			},
			tracer:   rec,
			replAddr: *replAddr, replSync: *replSync,
			self:  wire.Member{ID: *nodeID, Addr: *addr, ReplAddr: *replAddr},
			peers: peers, auto: *autoFail,
			fdet:    detectorTimings(*failThr),
			replMet: replMet,
			failMet: failover.RegisterMetrics(reg),
		}
	}
	switch {
	case *replicaOf != "":
		fn = newFleet()
		rstore, err := durable.OpenReplica(*dir, *shards, codec, fn.dopts)
		if err != nil {
			fatal("open replica store failed", "dir", *dir, "err", err)
		}
		fn.rstore = rstore
		fn.sw = server.NewSwitchableStore[string, []byte](server.NewReplicaStore(rstore))
		store = fn.sw
		logger.Info("replica store open", "dir", *dir, "shards", *shards,
			"watermark", rstore.Watermark(), "primary", *replicaOf)
	case *durFlag:
		fn = newFleet()
		// A replicated primary needs strictly unique commit versions so a
		// replica's resume point is exact (see durable.Options.StrictClock).
		popts := fn.dopts
		popts.StrictClock = *replAddr != ""
		dstore, err := durable.OpenSharded(*dir, *shards, codec, popts)
		if err != nil {
			fatal("open durable store failed", "dir", *dir, "err", err)
		}
		fn.dstore = dstore
		fn.sw = server.NewSwitchableStore[string, []byte](server.NewDurableStore(dstore))
		store = fn.sw
		logger.Info("durable store open", "dir", *dir, "shards", *shards,
			"entries_recovered", dstore.Len(), "nosync", *noSync)
	default:
		if *replAddr != "" {
			fatal("replication requires a durable store", "fix", "add -durable")
		}
		if *autoFail || *peersFlag != "" {
			fatal("fleet membership requires a durable store", "fix", "add -durable or -replica-of")
		}
		mem := jiffy.NewSharded[string, []byte](*shards)
		store = server.NewMemStore(mem)
		server.RegisterStoreStats(reg, mem.Stats)
		logger.Info("in-memory store ready", "shards", *shards)
	}
	if fn != nil {
		// Gauges register once and resolve through the node at each scrape,
		// so they survive promotions and demotions (re-registering panics).
		server.RegisterStoreStats(reg, fn.stats)
		server.RegisterDurableStats(reg, fn.durStats)
		repl.RegisterEpochGauge(reg, fn.epoch)
		if replMet != nil {
			repl.RegisterReplicaGauges(reg, fn.replicaWatermark)
			repl.RegisterSourceGaugesFunc(reg, fn.tap)
		}
	}

	// Replication stream (primary role). The source must attach its tap
	// before the first client write so the stream covers every update;
	// wire it before the serving listener opens.
	if fn != nil && fn.dstore != nil && *replAddr != "" {
		if err := fn.startSource(fn.dstore); err != nil {
			fatal("replication listen failed", "addr", *replAddr, "err", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	srvOpts := server.Options{
		SnapTTL:     *snapTTL,
		MaxScanPage: *maxPage,
		Mode:        server.ParseMode(*mode),
		Loops:       *loops,
		Registry:    reg,
		Logf:        logf,
		Tracer:      rec,
		TraceSlow:   *traceSlow,
		TraceLog:    logger,
	}
	if fn != nil {
		srvOpts.Epoch = fn.epoch
		srvOpts.Cluster = fn.cluster
		if replMet != nil {
			// Fencing evidence and read gating only matter on a node that
			// plays (or may come to play) a replication role.
			srvOpts.OnPeerEpoch = fn.onPeerEpoch
			srvOpts.Watermark = fn.readFloor
		}
		srvOpts.ReadOnly = fn.isReplica()
	}
	srv := server.Serve(ln, store, codec, srvOpts)
	if fn != nil {
		fn.setServer(srv)
	}
	logger.Info("serving", "addr", srv.Addr().String(), "core", srv.Mode().String(),
		"snap_ttl", snapTTL.String())

	// Replication apply loop (replica role). Promotion — manual via POST
	// /promote, or automatic from the failure detector — retires it.
	if fn != nil && fn.isReplica() {
		fn.startRunner(*replicaOf)
	}

	var msrv *http.Server
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal("metrics listen failed", "addr", *metrics, "err", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			// Machine-readable liveness: status plus the node's replication
			// identity. The "ok" substring is load-bearing — deploy scripts
			// and the CI smoke test grep for it.
			hz := map[string]any{"status": "ok", "role": "standalone", "epoch": int64(0), "watermark": int64(0)}
			if fn != nil {
				st := fn.status()
				for _, k := range []string{"role", "epoch", "watermark", "fenced", "node_id"} {
					if v, ook := st[k]; ook {
						hz[k] = v
					}
				}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(hz)
		})
		mux.Handle("/trace", trace.Handler(rec))
		mux.HandleFunc("/replstatus", func(w http.ResponseWriter, _ *http.Request) {
			st := map[string]any{"role": "standalone", "watermark": int64(0)}
			if fn != nil {
				st = fn.status()
			}
			st["addr"] = srv.Addr().String()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(st)
		})
		mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "promote is a POST", http.StatusMethodNotAllowed)
				return
			}
			if fn == nil || !fn.isReplica() {
				http.Error(w, "not a replica", http.StatusBadRequest)
				return
			}
			ver, err := fn.promoteAt(0)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"promoted_at": ver})
		})
		// net/http/pprof registers on DefaultServeMux as an import side
		// effect; route the private mux's pprof paths to the same handlers
		// so nothing else accidentally exposed on the default mux is served.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv = &http.Server{Handler: mux}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics server failed", "err", err)
			}
		}()
		logger.Info("observability endpoint up", "addr", mln.Addr().String(),
			"paths", "/metrics /healthz /debug/pprof/")
	}

	// Arm the failure detector last: everything it drives — the serving
	// layer, the replication endpoints, the metrics — is up.
	if fn != nil {
		fn.start()
	}

	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	if fn != nil && *checkpt > 0 {
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*checkpt)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					start := time.Now()
					// Skipped while the node is not holding the primary
					// durable store (replicas checkpoint on bootstrap).
					ver, ran, err := fn.checkpoint()
					switch {
					case err != nil:
						logger.Error("checkpoint failed", "err", err)
					case ran:
						logger.Info("checkpoint written", "version", ver,
							"took", time.Since(start).String())
					}
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String())
	close(stopCkpt)
	<-ckptDone
	if msrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		msrv.Shutdown(ctx)
		cancel()
	}
	if err := srv.Close(); err != nil {
		logger.Warn("listener close", "err", err)
	}
	if fn != nil {
		if err := fn.stop(); err != nil {
			fatal("store close failed", "err", err)
		}
	}
	// All server goroutines have joined (srv.Close waits); report the
	// residual count so smoke tests can assert nothing leaked. Smoke tests
	// grep for the "clean shutdown" substring.
	logger.Info("clean shutdown", "goroutines", runtime.NumGoroutine())
}
