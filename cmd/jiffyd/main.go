// Command jiffyd serves a jiffy store over TCP: the sharded in-memory
// frontend by default, or the durable sharded frontend (write-ahead logs +
// checkpoints) with -durable. Keys are strings, values are raw bytes;
// clients connect with jiffy/client using the matching codec
// (durable.StringEnc / durable.BytesEnc).
//
//	jiffyd                                # in-memory, GOMAXPROCS shards, :7420
//	jiffyd -durable -dir /var/lib/jiffyd  # durable store (survives restarts)
//	jiffyd -addr 127.0.0.1:0 -shards 8    # ephemeral port, fixed shards
//	jiffyd -metrics-addr 127.0.0.1:7421   # Prometheus /metrics + pprof
//
// The server exposes the full protocol of internal/wire: point ops, atomic
// cross-shard batches, snapshot sessions (TTL-reaped when idle, see
// -snap-ttl) and cursored scans.
//
// With -metrics-addr an HTTP sidecar listener serves GET /metrics (the
// Prometheus text exposition: request rates and latencies by opcode,
// connection and backpressure state, WAL and checkpoint activity, the
// store's structural Stats, and Go runtime health), GET /healthz, and the
// standard net/http/pprof endpoints under /debug/pprof/. The serving hot
// path is instrumented whether or not the endpoint is enabled — the flag
// only adds the listener — so the published benchmark numbers are the
// instrumented ones. See DESIGN.md §10.
//
// Logs are structured (log/slog), text by default, JSON with -log-json.
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, every
// connection is severed, all server goroutines join, and — with -durable —
// the store's logs are synced and closed before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/server"
	"repro/jiffy"
	"repro/jiffy/durable"
)

func main() {
	var (
		addr    = flag.String("addr", ":7420", "listen address (host:port; port 0 picks one)")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count of the serving frontend")
		durFlag = flag.Bool("durable", false, "serve the durable frontend (WAL + checkpoints) instead of the in-memory one")
		dir     = flag.String("dir", "jiffyd-data", "store directory (with -durable)")
		noSync  = flag.Bool("nosync", false, "skip fsyncs in the durable store (survives process crashes only)")
		snapTTL = flag.Duration("snap-ttl", 30*time.Second, "idle TTL for snapshot sessions")
		maxPage = flag.Int("max-scan-page", 4096, "server-side cap on scan page size")
		checkpt = flag.Duration("checkpoint-every", 0, "with -durable: checkpoint and truncate logs on this interval (0: never)")
		mode    = flag.String("serve-mode", "auto", "serving core: auto, eventloop, goroutine (auto also honors JIFFY_SERVE_MODE)")
		loops   = flag.Int("loops", 0, "event loop count with -serve-mode eventloop (0: GOMAXPROCS, capped at 8)")
		metrics = flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz and /debug/pprof (empty: no HTTP listener)")
		logJSON = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)

	codec := durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
	var store server.Store[string, []byte]
	var dstore *durable.Sharded[string, []byte]
	if *durFlag {
		var err error
		dstore, err = durable.OpenSharded(*dir, *shards, codec,
			durable.Options[string]{NoSync: *noSync, Metrics: persist.NewMetrics(reg)})
		if err != nil {
			fatal("open durable store failed", "dir", *dir, "err", err)
		}
		store = server.NewDurableStore(dstore)
		server.RegisterStoreStats(reg, dstore.Stats)
		server.RegisterDurableStats(reg, dstore.DurStats)
		logger.Info("durable store open", "dir", *dir, "shards", *shards,
			"entries_recovered", dstore.Len(), "nosync", *noSync)
	} else {
		mem := jiffy.NewSharded[string, []byte](*shards)
		store = server.NewMemStore(mem)
		server.RegisterStoreStats(reg, mem.Stats)
		logger.Info("in-memory store ready", "shards", *shards)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	srv := server.Serve(ln, store, codec, server.Options{
		SnapTTL:     *snapTTL,
		MaxScanPage: *maxPage,
		Mode:        server.ParseMode(*mode),
		Loops:       *loops,
		Registry:    reg,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	logger.Info("serving", "addr", srv.Addr().String(), "core", srv.Mode().String(),
		"snap_ttl", snapTTL.String())

	var msrv *http.Server
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal("metrics listen failed", "addr", *metrics, "err", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
		// net/http/pprof registers on DefaultServeMux as an import side
		// effect; route the private mux's pprof paths to the same handlers
		// so nothing else accidentally exposed on the default mux is served.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		msrv = &http.Server{Handler: mux}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics server failed", "err", err)
			}
		}()
		logger.Info("observability endpoint up", "addr", mln.Addr().String(),
			"paths", "/metrics /healthz /debug/pprof/")
	}

	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	if dstore != nil && *checkpt > 0 {
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*checkpt)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					start := time.Now()
					if ver, err := dstore.Checkpoint(); err != nil {
						logger.Error("checkpoint failed", "err", err)
					} else {
						logger.Info("checkpoint written", "version", ver,
							"took", time.Since(start).String())
					}
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String())
	close(stopCkpt)
	<-ckptDone
	if msrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		msrv.Shutdown(ctx)
		cancel()
	}
	if err := srv.Close(); err != nil {
		logger.Warn("listener close", "err", err)
	}
	if dstore != nil {
		if err := dstore.Close(); err != nil {
			fatal("store close failed", "err", err)
		}
	}
	// All server goroutines have joined (srv.Close waits); report the
	// residual count so smoke tests can assert nothing leaked. Smoke tests
	// grep for the "clean shutdown" substring.
	logger.Info("clean shutdown", "goroutines", runtime.NumGoroutine())
}
