// Command jiffyd serves a jiffy store over TCP: the sharded in-memory
// frontend by default, or the durable sharded frontend (write-ahead logs +
// checkpoints) with -durable. Keys are strings, values are raw bytes;
// clients connect with jiffy/client using the matching codec
// (durable.StringEnc / durable.BytesEnc).
//
//	jiffyd                                # in-memory, GOMAXPROCS shards, :7420
//	jiffyd -durable -dir /var/lib/jiffyd  # durable store (survives restarts)
//	jiffyd -addr 127.0.0.1:0 -shards 8    # ephemeral port, fixed shards
//
// The server exposes the full protocol of internal/wire: point ops, atomic
// cross-shard batches, snapshot sessions (TTL-reaped when idle, see
// -snap-ttl) and cursored scans. SIGINT/SIGTERM trigger a graceful
// shutdown: the listener closes, every connection is severed, all server
// goroutines join, and — with -durable — the store's logs are synced and
// closed before the process exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/jiffy"
	"repro/jiffy/durable"
)

func main() {
	var (
		addr    = flag.String("addr", ":7420", "listen address (host:port; port 0 picks one)")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count of the serving frontend")
		durFlag = flag.Bool("durable", false, "serve the durable frontend (WAL + checkpoints) instead of the in-memory one")
		dir     = flag.String("dir", "jiffyd-data", "store directory (with -durable)")
		noSync  = flag.Bool("nosync", false, "skip fsyncs in the durable store (survives process crashes only)")
		snapTTL = flag.Duration("snap-ttl", 30*time.Second, "idle TTL for snapshot sessions")
		maxPage = flag.Int("max-scan-page", 4096, "server-side cap on scan page size")
		checkpt = flag.Duration("checkpoint-every", 0, "with -durable: checkpoint and truncate logs on this interval (0: never)")
		mode    = flag.String("serve-mode", "auto", "serving core: auto, eventloop, goroutine (auto also honors JIFFY_SERVE_MODE)")
		loops   = flag.Int("loops", 0, "event loop count with -serve-mode eventloop (0: GOMAXPROCS, capped at 8)")
	)
	flag.Parse()

	codec := durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
	var store server.Store[string, []byte]
	var dstore *durable.Sharded[string, []byte]
	if *durFlag {
		var err error
		dstore, err = durable.OpenSharded(*dir, *shards, codec,
			durable.Options[string]{NoSync: *noSync})
		if err != nil {
			log.Fatalf("jiffyd: open durable store: %v", err)
		}
		store = server.NewDurableStore(dstore)
		log.Printf("jiffyd: durable store in %s (%d shards, %d entries recovered)",
			*dir, *shards, dstore.Len())
	} else {
		store = server.NewMemStore(jiffy.NewSharded[string, []byte](*shards))
		log.Printf("jiffyd: in-memory store (%d shards)", *shards)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("jiffyd: listen %s: %v", *addr, err)
	}
	srv := server.Serve(ln, store, codec, server.Options{
		SnapTTL:     *snapTTL,
		MaxScanPage: *maxPage,
		Mode:        server.ParseMode(*mode),
		Loops:       *loops,
		Logf:        log.Printf,
	})
	log.Printf("jiffyd: serving on %s (core %v, snap-ttl %v)", srv.Addr(), srv.Mode(), *snapTTL)

	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	if dstore != nil && *checkpt > 0 {
		go func() {
			defer close(ckptDone)
			t := time.NewTicker(*checkpt)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					if ver, err := dstore.Checkpoint(); err != nil {
						log.Printf("jiffyd: checkpoint: %v", err)
					} else {
						log.Printf("jiffyd: checkpoint at version %d", ver)
					}
				}
			}
		}()
	} else {
		close(ckptDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Printf("jiffyd: %v — shutting down", s)
	close(stopCkpt)
	<-ckptDone
	if err := srv.Close(); err != nil {
		log.Printf("jiffyd: listener close: %v", err)
	}
	if dstore != nil {
		if err := dstore.Close(); err != nil {
			log.Printf("jiffyd: store close: %v", err)
			os.Exit(1)
		}
	}
	// All server goroutines have joined (srv.Close waits); report the
	// residual count so smoke tests can assert nothing leaked.
	fmt.Printf("jiffyd: clean shutdown (goroutines=%d)\n", runtime.NumGoroutine())
}
