package main

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/failover"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// fleetNode owns a durable jiffyd's replication role and its
// transitions: replica → primary (manual promote or automatic failover)
// and primary → replica (fencing demote). It is the glue between the
// stores (durable.Sharded / durable.Replica), the replication endpoints
// (repl.Source / repl.Runner), the serving layer's write gates, and the
// failure detector (failover.Node). The serving store is a
// server.SwitchableStore so a demotion swaps backends under live client
// connections.
type fleetNode struct {
	logger *slog.Logger
	logf   func(format string, args ...any)
	codec  durable.Codec[string, []byte]
	reg    *obs.Registry
	tracer *trace.Recorder // flight recorder shared by every role the node plays

	dir      string
	shards   int
	dopts    durable.Options[string] // for reopening the directory after a demote
	replAddr string
	replSync bool

	self  wire.Member
	peers []wire.Member
	auto  bool
	fdet  failover.Options // detector timing overrides (zero values = defaults)

	replMet *repl.Metrics
	failMet *failover.Metrics

	sw *server.SwitchableStore[string, []byte]

	mu      sync.Mutex
	srv     *server.Server[string, []byte]   // set by setServer; nil only during boot
	dstore  *durable.Sharded[string, []byte] // non-nil: opened as a primary
	rstore  *durable.Replica[string, []byte] // non-nil: opened (or demoted) as a replica
	src     *repl.Source[string, []byte]
	runner  *repl.Runner[string, []byte]
	fencing bool // a demotion is in progress

	node *failover.Node
}

func (n *fleetNode) setServer(s *server.Server[string, []byte]) {
	n.mu.Lock()
	n.srv = s
	// A ":0" listen address resolved to a real port; members must carry
	// the dialable one.
	if n.self.Addr == "" || strings.HasSuffix(n.self.Addr, ":0") {
		n.self.Addr = s.Addr().String()
	}
	n.mu.Unlock()
}

func (n *fleetNode) getSrv() *server.Server[string, []byte] {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// waitSrv waits out the boot window where the replication source is
// serving (it must attach its tap before the first client write) but the
// client listener is not up yet — epoch evidence can arrive in between.
func (n *fleetNode) waitSrv() *server.Server[string, []byte] {
	for i := 0; i < 200; i++ {
		if s := n.getSrv(); s != nil {
			return s
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n.getSrv()
}

// epoch reports the node's persisted fencing epoch.
func (n *fleetNode) epoch() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case n.dstore != nil:
		return n.dstore.Epoch()
	case n.rstore != nil:
		return n.rstore.Epoch()
	}
	return 0
}

// watermark reports the applied version bound peers should rank this
// node by: the replication watermark on a replica; on a (promoted)
// primary the tap frontier, which keeps advancing with new writes.
func (n *fleetNode) watermark() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.src != nil {
		return n.src.Tap().Frontier()
	}
	switch {
	case n.rstore != nil:
		return n.rstore.Watermark()
	case n.dstore != nil:
		return n.dstore.RecoveredVersion()
	}
	return 0
}

// readFloor gates version-floored reads: a replica serves at its
// watermark, a primary satisfies every floor (writes commit before they
// are acked), and a node mid-demotion serves nothing until the replica
// store is swapped in.
func (n *fleetNode) readFloor() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.fencing {
		return 0
	}
	if n.rstore != nil && !n.rstore.Promoted() {
		return n.rstore.Watermark()
	}
	return math.MaxInt64
}

// replicaWatermark feeds the jiffy_repl_watermark gauge: the replica
// apply bound, 0 while the node is a primary.
func (n *fleetNode) replicaWatermark() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.rstore != nil && !n.rstore.Promoted() {
		return n.rstore.Watermark()
	}
	return 0
}

// tap returns the live source tap, nil while not serving the stream.
func (n *fleetNode) tap() *repl.Tap {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.src != nil {
		return n.src.Tap()
	}
	return nil
}

func (n *fleetNode) role() byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.roleLocked()
}

func (n *fleetNode) roleLocked() byte {
	if n.fencing || (n.srv != nil && n.srv.IsFenced()) {
		return wire.RoleFenced
	}
	if n.dstore != nil || (n.rstore != nil && n.rstore.Promoted()) {
		return wire.RolePrimary
	}
	return wire.RoleReplica
}

func (n *fleetNode) lastContact() time.Time {
	n.mu.Lock()
	r := n.runner
	n.mu.Unlock()
	if r == nil {
		return time.Time{}
	}
	return r.LastContact()
}

// cluster builds the OpCluster response: this node's role, epoch and
// watermark, plus the configured fleet membership (self first).
func (n *fleetNode) cluster() wire.ClusterInfo {
	n.mu.Lock()
	self := n.self
	n.mu.Unlock()
	ci := wire.ClusterInfo{
		Epoch:     n.epoch(),
		Role:      n.role(),
		Watermark: n.watermark(),
	}
	if self.ID != "" || len(n.peers) > 0 {
		ci.Members = append(append(make([]wire.Member, 0, 1+len(n.peers)), self), n.peers...)
	}
	return ci
}

// stats and durStats route the store gauges through the node so a scrape
// never reads a store a demotion has closed.
func (n *fleetNode) stats() jiffy.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case n.dstore != nil:
		return n.dstore.Stats()
	case n.rstore != nil:
		return n.rstore.Stats()
	}
	return jiffy.Stats{}
}

func (n *fleetNode) durStats() durable.DurStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case n.dstore != nil:
		return n.dstore.DurStats()
	case n.rstore != nil:
		return n.rstore.DurStats()
	}
	return durable.DurStats{}
}

func (n *fleetNode) isReplica() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rstore != nil
}

// startRunner begins replicating from addr (the boot-time -replica-of).
func (n *fleetNode) startRunner(addr string) {
	n.mu.Lock()
	rst := n.rstore
	n.mu.Unlock()
	r := repl.NewRunner(rst, n.codec, addr, repl.RunnerOptions{
		Metrics: n.replMet,
		Logf:    n.logf,
		Tracer:  n.tracer,
	})
	n.mu.Lock()
	n.runner = r
	n.mu.Unlock()
	r.Start()
}

// onPeerEpoch receives higher-epoch evidence from any channel — a
// replica's hello on the stream, a client's OpCluster announcement, a
// peer probe — and fences the node if it believes itself primary. Runs
// the demotion off the calling goroutine: the callers are request
// handlers and the source's accept path, which must not block on it.
func (n *fleetNode) onPeerEpoch(epoch int64) {
	if n.role() != wire.RolePrimary {
		return
	}
	go n.fence(epoch, wire.Member{})
}

// startSource begins serving the replication stream from st.
func (n *fleetNode) startSource(st repl.SourceStore[string, []byte]) error {
	rln, err := net.Listen("tcp", n.replAddr)
	if err != nil {
		return err
	}
	s := repl.NewSource(st, n.codec, repl.SourceOptions{
		Tap:         repl.TapOptions{SyncAcks: n.replSync},
		Metrics:     n.replMet,
		Logf:        n.logf,
		OnPeerEpoch: n.onPeerEpoch,
		Tracer:      n.tracer,
	})
	go s.Serve(rln)
	n.mu.Lock()
	n.src = s
	n.mu.Unlock()
	n.logger.Info("replication stream serving", "addr", rln.Addr().String(), "sync", n.replSync)
	return nil
}

// promoteAt turns a replica into a primary under the given fencing epoch
// (0: bump the current epoch by one — the manual jiffyctl path). The
// runner's buffered records are applied first; the server opens for
// writes; with -repl-addr the node starts serving the stream itself.
func (n *fleetNode) promoteAt(epoch int64) (int64, error) {
	n.mu.Lock()
	r, rst := n.runner, n.rstore
	n.mu.Unlock()
	if rst == nil {
		return 0, errors.New("not a replica")
	}
	var ver int64
	var err error
	switch {
	case r != nil && epoch > 0:
		ver, err = r.PromoteAt(epoch)
	case r != nil:
		ver, err = r.Promote()
	case epoch > 0:
		ver, err = rst.PromoteAt(epoch)
	default:
		ver, err = rst.Promote()
	}
	if err != nil {
		return 0, err
	}
	if s := n.getSrv(); s != nil {
		s.SetReadOnly(false)
	}
	n.mu.Lock()
	needSrc := n.replAddr != "" && n.src == nil
	n.mu.Unlock()
	if needSrc {
		if serr := n.startSource(rst); serr != nil {
			n.logger.Error("replication stream after promote failed", "err", serr)
		}
	}
	n.logger.Info("promoted to primary", "version", ver, "epoch", rst.Epoch())
	return ver, nil
}

// repoint re-targets the replica's replication runner at peer p.
func (n *fleetNode) repoint(p wire.Member) error {
	if p.ReplAddr == "" {
		return fmt.Errorf("peer %s exposes no replication address", p.ID)
	}
	n.mu.Lock()
	old, rst := n.runner, n.rstore
	n.mu.Unlock()
	if rst == nil {
		return errors.New("not a replica")
	}
	if old != nil {
		old.Stop()
	}
	r := repl.NewRunner(rst, n.codec, p.ReplAddr, repl.RunnerOptions{
		Metrics: n.replMet,
		Logf:    n.logf,
		Tracer:  n.tracer,
	})
	n.mu.Lock()
	if n.rstore != rst {
		// The node transitioned underfoot (fence or shutdown); drop it.
		n.mu.Unlock()
		return nil
	}
	n.runner = r
	n.mu.Unlock()
	r.Start()
	n.logger.Info("replication repointed", "primary", p.ID, "repl_addr", p.ReplAddr)
	return nil
}

// fence surrenders primacy on higher-epoch evidence: writes answer
// StatusFenced immediately, then the node demotes itself in process —
// the durable directory is marked and reopened as a replica, the
// serving store swapped under live connections — and, when the new
// primary is known, rejoins its stream (the epoch handshake forces a
// bootstrap past any divergence). Idempotent while a demotion runs.
func (n *fleetNode) fence(epoch int64, p wire.Member) error {
	srv := n.waitSrv()
	if srv == nil {
		return errors.New("serving layer not up")
	}
	n.mu.Lock()
	if n.fencing || n.roleLocked() != wire.RolePrimary {
		n.mu.Unlock()
		return nil
	}
	if cur := n.epochLocked(); epoch <= cur {
		n.mu.Unlock()
		return nil
	}
	n.fencing = true
	n.mu.Unlock()

	srv.SetFenced(true)
	n.failMet.Fences.Inc()
	n.logger.Warn("fenced: higher fencing epoch observed", "epoch", epoch, "ours", n.epoch())

	// Tear the primary machinery down.
	n.mu.Lock()
	src, dst, rst, run := n.src, n.dstore, n.rstore, n.runner
	n.src, n.dstore, n.rstore, n.runner = nil, nil, nil, nil
	n.mu.Unlock()
	if run != nil {
		run.Stop()
	}
	if src != nil {
		src.Close()
	}
	var cerr error
	if dst != nil {
		cerr = dst.Close()
	}
	if rst != nil {
		cerr = rst.Close()
	}
	if cerr != nil {
		n.logger.Error("demote: closing primary store", "err", cerr)
	}

	// Reopen as a replica at the exact recovered versions; the epoch
	// handshake with the new primary decides resume vs. bootstrap.
	if err := durable.MarkReplica(n.dir); err != nil {
		n.logger.Error("demote: marking replica", "err", err)
		return err // stays fenced: writes refused, which is the safe side
	}
	nr, err := durable.OpenReplica(n.dir, n.shards, n.codec, n.dopts)
	if err != nil {
		n.logger.Error("demote: reopening as replica", "err", err)
		return err
	}
	n.sw.Swap(server.NewReplicaStore(nr))
	n.mu.Lock()
	n.rstore = nr
	n.fencing = false
	n.mu.Unlock()
	srv.SetReadOnly(true)
	srv.SetFenced(false)
	n.logger.Info("demoted to replica", "epoch_seen", epoch, "watermark", nr.Watermark())
	if p.ReplAddr != "" {
		return n.repoint(p)
	}
	// New primary unknown: the failure detector (or the next operator
	// action) finds it; until then the node serves watermark-gated reads.
	return nil
}

func (n *fleetNode) epochLocked() int64 {
	switch {
	case n.dstore != nil:
		return n.dstore.Epoch()
	case n.rstore != nil:
		return n.rstore.Epoch()
	}
	return 0
}

// start brings up the failure detector (with -auto-failover). A booting
// primary first probes its peers once: if the fleet has moved past its
// epoch while it was down, it demotes before accepting a single write.
func (n *fleetNode) start() {
	if !n.auto {
		return
	}
	if n.role() == wire.RolePrimary && len(n.peers) > 0 {
		n.startupProbe()
	}
	fopts := n.fdet
	fopts.Self = n.self
	fopts.Peers = n.peers
	fopts.Logf = n.logf
	fopts.Metrics = n.failMet
	n.node = failover.NewNode(fopts, failover.Hooks{
		Epoch:       n.epoch,
		Watermark:   n.watermark,
		LastContact: n.lastContact,
		Role:        n.role,
		Promote: func(e int64) error {
			_, err := n.promoteAt(e)
			return err
		},
		Repoint: n.repoint,
		Fence:   n.fence,
	})
	n.node.Start()
	n.logger.Info("automatic failover armed", "node_id", n.self.ID, "peers", len(n.peers))
}

// startupProbe checks the fleet before a primary serves its first write:
// a higher epoch anywhere means this node was superseded while down.
func (n *fleetNode) startupProbe() {
	myE := n.epoch()
	for _, p := range n.peers {
		ci, err := failover.Probe(p.Addr, myE, time.Second)
		if err != nil || ci.Epoch <= myE {
			continue
		}
		target := p
		if ci.Role != wire.RolePrimary {
			target = wire.Member{}
		}
		n.logger.Warn("startup probe found higher epoch; rejoining as replica",
			"peer", p.ID, "epoch", ci.Epoch, "ours", myE)
		if err := n.fence(ci.Epoch, target); err != nil {
			n.logger.Error("startup demote failed", "err", err)
		}
		return
	}
}

// stop halts the detector and replication endpoints, then closes the
// current store. Called on process shutdown, after the server closed.
func (n *fleetNode) stop() error {
	if n.node != nil {
		n.node.Stop()
	}
	n.mu.Lock()
	src, dst, rst, run := n.src, n.dstore, n.rstore, n.runner
	n.src, n.dstore, n.rstore, n.runner = nil, nil, nil, nil
	n.mu.Unlock()
	if run != nil {
		run.Stop()
	}
	if src != nil {
		src.Close()
	}
	if dst != nil {
		if err := dst.Close(); err != nil {
			return err
		}
	}
	if rst != nil {
		if err := rst.Close(); err != nil {
			return err
		}
	}
	return nil
}

// checkpoint runs a checkpoint if the node currently holds the primary
// durable store (skipped on replicas — they checkpoint on bootstrap).
func (n *fleetNode) checkpoint() (int64, bool, error) {
	n.mu.Lock()
	dst := n.dstore
	n.mu.Unlock()
	if dst == nil {
		return 0, false, nil
	}
	ver, err := dst.Checkpoint()
	return ver, true, err
}

// status reports the /replstatus view.
func (n *fleetNode) status() map[string]any {
	n.mu.Lock()
	role := "standalone"
	var wm int64
	fenced := n.fencing || (n.srv != nil && n.srv.IsFenced())
	switch {
	case fenced:
		role = "fenced"
	case n.rstore != nil && n.rstore.Promoted():
		role = "promoted"
	case n.rstore != nil:
		role = "replica"
	case n.dstore != nil && n.src != nil:
		role = "primary"
	}
	switch {
	case n.src != nil:
		wm = n.src.Tap().Frontier()
	case n.rstore != nil:
		wm = n.rstore.Watermark()
	}
	n.mu.Unlock()
	st := map[string]any{
		"role":      role,
		"watermark": wm,
		"epoch":     n.epoch(),
		"fenced":    fenced,
	}
	if n.self.ID != "" {
		st["node_id"] = n.self.ID
	}
	return st
}

// detectorTimings derives the full failure-detector schedule from one
// knob, keeping the default 2s/500ms/1s/750ms proportions: probes run at
// a quarter of the suspicion threshold, time out at half of it, and
// election ranks stagger by three eighths of it.
func detectorTimings(threshold time.Duration) failover.Options {
	if threshold <= 0 {
		return failover.Options{}
	}
	return failover.Options{
		Threshold:    threshold,
		ProbeEvery:   threshold / 4,
		ProbeTimeout: threshold / 2,
		Stagger:      3 * threshold / 8,
	}
}

// parsePeers parses the -peers flag: comma-separated
// id=clientAddr/replAddr entries (the /replAddr part optional for
// members that never serve the stream).
func parsePeers(s string) ([]wire.Member, error) {
	if s == "" {
		return nil, nil
	}
	var ms []wire.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rest, ok := strings.Cut(part, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("peer %q: want id=host:port[/replhost:port]", part)
		}
		addr, repl, _ := strings.Cut(rest, "/")
		if addr == "" {
			return nil, fmt.Errorf("peer %q: empty client address", part)
		}
		ms = append(ms, wire.Member{ID: id, Addr: addr, ReplAddr: repl})
	}
	return ms, nil
}
