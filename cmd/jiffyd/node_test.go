package main

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/testutil"
	"repro/internal/wire"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// In-process fleet tests: three jiffyd node cores (fleetNode + serving
// layer, everything but the flag parsing and HTTP sidecar) wired into a
// replicated fleet, then subjected to primary death, split brain, and an
// asymmetric partition. These are the -race-able versions of the CI
// chaos smoke.

// testTimings compresses the failure detector's 2s schedule to 1s — the
// floor is the source's 500ms heartbeat interval, which the suspicion
// threshold must comfortably exceed — so a failover completes in a
// couple of seconds.
func testTimings() failover.Options { return detectorTimings(time.Second) }

// freeAddr reserves an ephemeral port and returns it as host:port. The
// tiny window between Close and the node's own Listen is an accepted
// test-only race.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// testLogf returns a t.Logf passthrough that disarms itself when the
// test ends, so a straggling retry-loop goroutine cannot log into a
// finished test.
func testLogf(t *testing.T) func(string, ...any) {
	var off atomic.Bool
	t.Cleanup(func() { off.Store(true) })
	return func(format string, args ...any) {
		if !off.Load() {
			t.Logf(format, args...)
		}
	}
}

type testNode struct {
	fn   *fleetNode
	srv  *server.Server[string, []byte]
	addr string // client address
	dead sync.Once
}

// kill abruptly stops the node: listener and connections severed, stores
// closed. From the fleet's point of view this is a crash — peers just
// see silence.
func (n *testNode) kill() {
	n.dead.Do(func() {
		n.srv.Close()
		n.fn.stop()
	})
}

type nodeCfg struct {
	id        string
	dir       string
	addr      string // pre-reserved client address
	replAddr  string // serve (or take over) the replication stream here
	replicaOf string // non-empty: boot as a replica of this repl address
	peers     []wire.Member
}

// bootNode assembles one jiffyd core exactly the way main() does: store,
// switchable serving frontend, replication endpoint, server hooks, and
// the armed failure detector.
func bootNode(t *testing.T, cfg nodeCfg) *testNode {
	t.Helper()
	reg := obs.NewRegistry()
	logf := testLogf(t)
	codec := durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
	fn := &fleetNode{
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		logf:   logf, codec: codec, reg: reg,
		dir: cfg.dir, shards: 2,
		dopts:    durable.Options[string]{NoSync: true, Metrics: persist.NewMetrics(reg)},
		replAddr: cfg.replAddr,
		self:     wire.Member{ID: cfg.id, Addr: cfg.addr, ReplAddr: cfg.replAddr},
		peers:    cfg.peers, auto: true, fdet: testTimings(),
		replMet: repl.RegisterMetrics(reg),
		failMet: failover.RegisterMetrics(reg),
	}
	if cfg.replicaOf != "" {
		rstore, err := durable.OpenReplica(cfg.dir, fn.shards, codec, fn.dopts)
		if err != nil {
			t.Fatalf("node %s: open replica store: %v", cfg.id, err)
		}
		fn.rstore = rstore
		fn.sw = server.NewSwitchableStore[string, []byte](server.NewReplicaStore(rstore))
	} else {
		popts := fn.dopts
		popts.StrictClock = cfg.replAddr != ""
		dstore, err := durable.OpenSharded(cfg.dir, fn.shards, codec, popts)
		if err != nil {
			t.Fatalf("node %s: open durable store: %v", cfg.id, err)
		}
		fn.dstore = dstore
		fn.sw = server.NewSwitchableStore[string, []byte](server.NewDurableStore(dstore))
		if cfg.replAddr != "" {
			if err := fn.startSource(dstore); err != nil {
				t.Fatalf("node %s: replication listen: %v", cfg.id, err)
			}
		}
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		t.Fatalf("node %s: listen %s: %v", cfg.id, cfg.addr, err)
	}
	srv := server.Serve(ln, fn.sw, codec, server.Options{
		Registry:    reg,
		Logf:        logf,
		Epoch:       fn.epoch,
		Cluster:     fn.cluster,
		OnPeerEpoch: fn.onPeerEpoch,
		Watermark:   fn.readFloor,
		ReadOnly:    fn.isReplica(),
	})
	fn.setServer(srv)
	if cfg.replicaOf != "" {
		fn.startRunner(cfg.replicaOf)
	}
	fn.start()
	tn := &testNode{fn: fn, srv: srv, addr: srv.Addr().String()}
	t.Cleanup(tn.kill)
	return tn
}

// codecKV is the client-side codec matching jiffyd's string→bytes store.
func codecKV() durable.Codec[string, []byte] {
	return durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
}

// fleet3 boots a primary and two replicas with full mutual membership.
func fleet3(t *testing.T) (n1, n2, n3 *testNode) {
	t.Helper()
	a1, a2, a3 := freeAddr(t), freeAddr(t), freeAddr(t)
	r1, r2, r3 := freeAddr(t), freeAddr(t), freeAddr(t)
	m1 := wire.Member{ID: "n1", Addr: a1, ReplAddr: r1}
	m2 := wire.Member{ID: "n2", Addr: a2, ReplAddr: r2}
	m3 := wire.Member{ID: "n3", Addr: a3, ReplAddr: r3}
	n1 = bootNode(t, nodeCfg{id: "n1", dir: t.TempDir(), addr: a1, replAddr: r1,
		peers: []wire.Member{m2, m3}})
	n2 = bootNode(t, nodeCfg{id: "n2", dir: t.TempDir(), addr: a2, replAddr: r2,
		replicaOf: r1, peers: []wire.Member{m1, m3}})
	n3 = bootNode(t, nodeCfg{id: "n3", dir: t.TempDir(), addr: a3, replAddr: r3,
		replicaOf: r1, peers: []wire.Member{m1, m2}})
	return n1, n2, n3
}

// caughtUp waits until every replica's watermark matches the primary's
// frontier (valid to compare: same history, same version clock).
func caughtUp(t *testing.T, primary *testNode, replicas ...*testNode) {
	t.Helper()
	testutil.WaitFor(t, 15*time.Second, func() bool {
		wm := primary.fn.watermark()
		for _, r := range replicas {
			if r.fn.watermark() != wm {
				return false
			}
		}
		return true
	}, "replicas never caught up to the primary's frontier")
}

// TestAutoFailover: the primary dies; with no operator action the
// best-ranked replica promotes itself under a bumped fencing epoch, the
// other replica repoints at it, and a rediscovering client keeps writing
// — with every previously acked key intact.
func TestAutoFailover(t *testing.T) {
	testutil.LeakCheck(t)
	n1, n2, n3 := fleet3(t)

	c, err := client.Dial(n1.addr, codecKV(), client.Options{
		Rediscover:  true,
		RetryBudget: 20 * time.Second,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		if err := c.Put(fmt.Sprintf("k-%03d", i), []byte("v1")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	caughtUp(t, n1, n2, n3)
	// Learn the member list while the primary is alive — it is what
	// rediscovery probes once the primary's address goes dark.
	if _, err := c.Cluster(); err != nil {
		t.Fatal(err)
	}

	// Crash the primary. Both replicas are equally caught up, so the tie
	// breaks on node id: n2 must self-promote, n3 must follow it.
	n1.kill()
	testutil.WaitFor(t, 20*time.Second, func() bool {
		return n2.fn.role() == wire.RolePrimary && n2.fn.epoch() == 2
	}, "n2 never promoted itself (role %d epoch %d)", n2.fn.role(), n2.fn.epoch())
	if got := n3.fn.role(); got == wire.RolePrimary {
		t.Fatal("both replicas promoted: split brain")
	}
	testutil.WaitFor(t, 20*time.Second, func() bool {
		return n3.fn.epoch() == 2
	}, "n3 never adopted the new primary's epoch")
	if n2.fn.failMet.Promotions.Value() == 0 {
		t.Fatal("promotion not counted in failover metrics")
	}

	// The same client keeps writing: rediscovery must land this on n2.
	if err := c.Put("after-failover", []byte("v2")); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
	caughtUp(t, n2, n3)

	// Every acked key survives on the new primary, readable through the
	// repointed client.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k-%03d", i)
		if _, ok, err := c.Get(k); err != nil || !ok {
			t.Fatalf("acked key %s lost after failover (ok=%v err=%v)", k, ok, err)
		}
	}
	ci, err := c.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if ci.Epoch != 2 || ci.Role != "primary" {
		t.Fatalf("client's post-failover view: epoch %d role %s", ci.Epoch, ci.Role)
	}
}

// TestSplitBrainFenced is the property the fencing epochs exist for: two
// nodes believing themselves primary at different epochs cannot both
// keep accepting writes. The stale one is fenced on first contact with
// higher-epoch evidence, demotes in process, and rejoins the survivor's
// stream; every key acked at either primary before the fence survives.
func TestSplitBrainFenced(t *testing.T) {
	testutil.LeakCheck(t)
	n1, n2, n3 := fleet3(t)

	c, err := client.Dial(n1.addr, codecKV(), client.Options{
		Rediscover:  true,
		RetryBudget: 20 * time.Second,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if err := c.Put(fmt.Sprintf("pre-%03d", i), []byte("v1")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	caughtUp(t, n1, n2, n3)
	if _, err := c.Cluster(); err != nil {
		t.Fatal(err)
	}

	// Manufacture the split: n2 promotes at epoch 2 while n1 still runs
	// and still believes itself primary at epoch 1.
	if _, err := n2.fn.promoteAt(2); err != nil {
		t.Fatalf("promote n2: %v", err)
	}
	if n1.fn.role() != wire.RolePrimary && n1.fn.role() != wire.RoleFenced {
		t.Fatalf("n1 lost primacy before any contact (role %d)", n1.fn.role())
	}

	// n1's own detector probes its peers, meets epoch 2, and must fence
	// itself and rejoin n2's stream as a replica.
	testutil.WaitFor(t, 20*time.Second, func() bool {
		return n1.fn.role() == wire.RoleReplica && n1.fn.epoch() == 2
	}, "stale primary never fenced+demoted (role %d epoch %d)", n1.fn.role(), n1.fn.epoch())
	if n1.fn.failMet.Fences.Value() == 0 {
		t.Fatal("fence not counted in failover metrics")
	}

	// The client keeps writing; rediscovery routes to n2 (a write that
	// races the fence may land on n1 — value-idempotent and replicated
	// nowhere, it is retried at n2 after the StatusFenced answer).
	for i := 0; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("post-%03d", i), []byte("v2")); err != nil {
			t.Fatalf("put after split: %v", err)
		}
	}
	caughtUp(t, n2, n1, n3)

	// All acked keys — from before the split and after — on the survivor.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("pre-%03d", i)
		if _, ok, err := c.Get(k); err != nil || !ok {
			t.Fatalf("key %s acked before the split is gone (ok=%v err=%v)", k, ok, err)
		}
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("post-%03d", i)
		if _, ok, err := c.Get(k); err != nil || !ok {
			t.Fatalf("key %s acked after the split is gone (ok=%v err=%v)", k, ok, err)
		}
	}
}

// TestPartitionHeal: an asymmetric partition (the replica cannot reach
// the primary, the primary can reach the replica) makes the replica
// elect itself; the old primary meets the higher epoch on its next peer
// probe, fences, and rejoins — the fleet heals with one primary.
func TestPartitionHeal(t *testing.T) {
	testutil.LeakCheck(t)
	a1, a2 := freeAddr(t), freeAddr(t)
	r1, r2 := freeAddr(t), freeAddr(t)

	// n2 sees n1 only through these proxies; killing them is the cut.
	n1boot := bootNode(t, nodeCfg{id: "n1", dir: t.TempDir(), addr: a1, replAddr: r1,
		peers: []wire.Member{{ID: "n2", Addr: a2, ReplAddr: r2}}})
	pc, err := testutil.NewProxy(a1, testutil.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pr, err := testutil.NewProxy(r1, testutil.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	n2 := bootNode(t, nodeCfg{id: "n2", dir: t.TempDir(), addr: a2, replAddr: r2,
		replicaOf: pr.Addr(),
		peers:     []wire.Member{{ID: "n1", Addr: pc.Addr(), ReplAddr: pr.Addr()}}})
	n1 := n1boot

	c, err := client.Dial(n1.addr, codecKV(), client.Options{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 30; i++ {
		if err := c.Put(fmt.Sprintf("k-%03d", i), []byte("v1")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	caughtUp(t, n1, n2)

	// Cut n2's only paths to n1. n2 sees a silent primary and no
	// reachable one anywhere: it elects itself at epoch 2.
	pc.Close()
	pr.Close()
	testutil.WaitFor(t, 20*time.Second, func() bool {
		return n2.fn.role() == wire.RolePrimary && n2.fn.epoch() == 2
	}, "partitioned replica never elected itself (role %d epoch %d)", n2.fn.role(), n2.fn.epoch())

	// n1 still reaches n2 directly: its next peer probe meets epoch 2 and
	// it must fence, demote, and follow n2's stream.
	testutil.WaitFor(t, 20*time.Second, func() bool {
		return n1.fn.role() == wire.RoleReplica && n1.fn.epoch() == 2
	}, "old primary never rejoined after the partition (role %d epoch %d)", n1.fn.role(), n1.fn.epoch())

	// Healed: writes to the new primary flow back to the demoted node.
	c2, err := client.Dial(n2.addr, codecKV(), client.Options{DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Put("healed", []byte("v2")); err != nil {
		t.Fatalf("put on new primary: %v", err)
	}
	caughtUp(t, n2, n1)
	if _, ok, err := c2.Get("healed"); err != nil || !ok {
		t.Fatalf("post-heal key missing (ok=%v err=%v)", ok, err)
	}
}
