package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/index"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// The -net -replica-reads mode measures what replica read routing buys: a
// durable primary streams its WAL tail to one replica (both in-process,
// loopback TCP, temp dirs), and the same lookup workload runs twice per
// connection count — once with every read on the primary, once with reads
// routed through the replica at the client's write floor. The pure-read
// sweep ("r") shows the clean offload ceiling; the mixed sweep ("ul",
// 25 % updates) also exercises the floor-advancing fallback path, since
// each update raises the client's read floor past the replica's watermark
// until the tail apply catches up.

// replicaFile is the -replica-reads JSON schema.
type replicaFile struct {
	Kind       string      `json:"kind"` // always "net-replica-reads"
	GOMAXPROCS int         `json:"gomaxprocs"`
	Shards     int         `json:"shards"`
	KeySpace   uint64      `json:"keyspace"`
	Prefill    int         `json:"prefill"`
	Duration   string      `json:"duration"`
	When       string      `json:"when"`
	Sweep      []replicaPt `json:"sweep"`
}

// replicaPt is one measurement: route says where reads were served
// ("primary" pins every read to the primary; "replica" routes reads
// through the replica connection pool at the write floor).
type replicaPt struct {
	Route     string  `json:"route"`
	Mix       string  `json:"mix"`
	Conns     int     `json:"conns"`
	Threads   int     `json:"threads"`
	TotalMops float64 `json:"total_mops"`
	TotalOps  uint64  `json:"total_ops"`
}

// runReplicaReads starts the primary/replica pair, prefills through the
// wire, waits for the replica to converge, and sweeps both routes.
func runReplicaReads(connsList []int, threads int, keyspace uint64, prefill int, duration time.Duration, seed uint64) *replicaFile {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "replica bench: "+format+"\n", args...)
		os.Exit(1)
	}
	pdir, err := os.MkdirTemp("", "jiffybench-primary-")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(pdir)
	rdir, err := os.MkdirTemp("", "jiffybench-replica-")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(rdir)

	codec := netCodec()
	pstore, err := durable.OpenSharded(pdir, harness.ShardCount, codec,
		durable.Options[uint64]{NoSync: true, StrictClock: true})
	if err != nil {
		fail("open primary: %v", err)
	}
	defer pstore.Close()
	src := repl.NewSource(pstore, codec, repl.SourceOptions{})
	defer src.Close()
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("listen: %v", err)
	}
	go src.Serve(sln)
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("listen: %v", err)
	}
	psrv := server.Serve(pln, server.NewDurableStore(pstore), codec, server.Options{})
	defer psrv.Close()

	rstore, err := durable.OpenReplica(rdir, harness.ShardCount, codec,
		durable.Options[uint64]{NoSync: true})
	if err != nil {
		fail("open replica: %v", err)
	}
	defer rstore.Close()
	runner := repl.NewRunner(rstore, codec, sln.Addr().String(), repl.RunnerOptions{})
	runner.Start()
	defer runner.Stop()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("listen: %v", err)
	}
	rsrv := server.Serve(rln, server.NewReplicaStore(rstore), codec,
		server.Options{ReadOnly: true, Watermark: rstore.Watermark})
	defer rsrv.Close()

	base := harness.Config{
		KeySpace: keyspace,
		Prefill:  prefill,
		Duration: duration,
		Seed:     seed,
		Threads:  threads,
		Dist:     workload.Uniform,
	}

	// Prefill over the wire so the replication stream carries the dataset,
	// then hold the sweep until the replica's watermark covers it.
	pc, err := client.Dial(pln.Addr().String(), codec, client.Options{Conns: 4})
	if err != nil {
		fail("dial: %v", err)
	}
	harness.Prefill[uint64, *harness.Payload](index.NewNetJiffy(pc), base, harness.KeyA, harness.ValA)
	floor := pc.Floor()
	pc.Close()
	deadline := time.Now().Add(60 * time.Second)
	for rstore.Watermark() < floor {
		if time.Now().After(deadline) {
			fail("replica did not converge: watermark %d < floor %d", rstore.Watermark(), floor)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("# replica bench: primary %s, replica %s converged at watermark %d (prefill %d over the wire)\n",
		pln.Addr(), rln.Addr(), rstore.Watermark(), prefill)

	out := &replicaFile{
		Kind:       "net-replica-reads",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     harness.ShardCount,
		KeySpace:   keyspace,
		Prefill:    prefill,
		Duration:   duration.String(),
		When:       time.Now().UTC().Format(time.RFC3339),
	}

	lookupOnly := workload.Mix{Name: "r", LookupFrac: 1}
	for _, mix := range []workload.Mix{lookupOnly, workload.MixUpdateLookup} {
		for _, conns := range connsList {
			ptThreads := threads
			if conns > ptThreads {
				ptThreads = conns
			}
			cfg := base
			cfg.Mix = mix
			cfg.Threads = ptThreads
			for _, route := range []string{"primary", "replica"} {
				opts := client.Options{Conns: conns}
				if route == "replica" {
					opts.Replicas = []string{rln.Addr().String()}
				}
				c, err := client.Dial(pln.Addr().String(), codec, opts)
				if err != nil {
					fail("dial: %v", err)
				}
				idx := index.NewNetJiffy(c)
				res := harness.Run[uint64, *harness.Payload](idx, cfg, harness.KeyA, harness.ValA)
				idx.Close()
				out.Sweep = append(out.Sweep, replicaPt{
					Route:     route,
					Mix:       mix.Name,
					Conns:     conns,
					Threads:   ptThreads,
					TotalMops: res.TotalMops(),
					TotalOps:  res.TotalOps,
				})
				fmt.Printf("repl  %-7s %-3s conns=%-3d threads=%-3d total=%8.3f Mops/s\n",
					route, mix.Name, conns, ptThreads, res.TotalMops())
			}
		}
	}
	return out
}

func writeReplicaJSON(path string, out *replicaFile) error {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
