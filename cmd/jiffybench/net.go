package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// The -net mode measures the network serving layer (internal/server +
// jiffy/client) over loopback TCP: throughput as the client connection
// pool grows 1→64, with pipelined multiplexing on and off, and the
// batch-amortization effect of shipping 10- and 100-op atomic batches as
// one frame instead of ten or a hundred. By default it starts an
// in-process jiffyd-equivalent server on 127.0.0.1:0 (config A: uint64
// keys, 100-byte payload values, harness.ShardCount shards) so the whole
// measurement is self-contained; -netaddr points it at an external server
// instead. Results land in the "net" section of a BENCH_*.json file
// (BENCH_0005.json is the committed instance).

// netFile is the -net JSON schema.
type netFile struct {
	Kind       string       `json:"kind"` // always "net"
	GOMAXPROCS int          `json:"gomaxprocs"`
	Shards     int          `json:"shards"`
	Threads    int          `json:"threads"`
	KeySpace   uint64       `json:"keyspace"`
	Prefill    int          `json:"prefill"`
	Duration   string       `json:"duration"`
	When       string       `json:"when"`
	Sweep      []netPoint   `json:"sweep"`
	Batch      []netBatchPt `json:"batch"`
}

// netPoint is one conns-sweep measurement (mix ul: 25 % updates, 75 %
// lookups, one op per request).
type netPoint struct {
	Conns     int     `json:"conns"`
	Pipelined bool    `json:"pipelined"`
	Mix       string  `json:"mix"`
	TotalMops float64 `json:"total_mops"`
	TotalOps  uint64  `json:"total_ops"`
}

// netBatchPt is one batch-amortization measurement (update-only, all
// connections, pipelined): ops per second counted in basic operations, so
// the amortization of frame and round-trip overhead shows directly.
type netBatchPt struct {
	Batch     string  `json:"batch"`
	Conns     int     `json:"conns"`
	TotalMops float64 `json:"total_mops"`
	TotalOps  uint64  `json:"total_ops"`
}

// netPayloadEnc encodes harness.Payload values as their raw 100 bytes.
func netPayloadEnc() durable.Enc[*harness.Payload] {
	return durable.Enc[*harness.Payload]{
		Append: func(dst []byte, v *harness.Payload) []byte { return append(dst, v[:]...) },
		Decode: func(src []byte) (*harness.Payload, error) {
			var p harness.Payload
			copy(p[:], src)
			return &p, nil
		},
	}
}

func netCodec() durable.Codec[uint64, *harness.Payload] {
	return durable.Codec[uint64, *harness.Payload]{Key: durable.Uint64Enc(), Value: netPayloadEnc()}
}

// runNet executes the serving-layer measurements and returns the file to
// serialize. addr == "" starts the in-process loopback server.
func runNet(addr string, connsList []int, threads int, keyspace uint64, prefill int, duration time.Duration, seed uint64) *netFile {
	out := &netFile{
		Kind:       "net",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     harness.ShardCount,
		Threads:    threads,
		KeySpace:   keyspace,
		Prefill:    prefill,
		Duration:   duration.String(),
		When:       time.Now().UTC().Format(time.RFC3339),
	}

	base := harness.Config{
		KeySpace: keyspace,
		Prefill:  prefill,
		Duration: duration,
		Seed:     seed,
		Threads:  threads,
		Dist:     workload.Uniform,
	}

	if addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "net bench: listen: %v\n", err)
			os.Exit(1)
		}
		s := jiffy.NewSharded[uint64, *harness.Payload](harness.ShardCount)
		srv := server.Serve(ln, server.NewMemStore(s), netCodec(), server.Options{})
		defer srv.Close()
		addr = srv.Addr().String()
		// Prefill the store directly — the dataset is the same either way
		// and skipping the network keeps setup fast.
		harness.Prefill[uint64, *harness.Payload](&index.ShardedJiffy[uint64, *harness.Payload]{S: s}, base, harness.KeyA, harness.ValA)
		fmt.Printf("# net bench: loopback server on %s (%d shards, prefill %d)\n", addr, harness.ShardCount, prefill)
	} else {
		// External server: prefill through the wire.
		c, err := client.Dial(addr, netCodec(), client.Options{Conns: 4})
		if err != nil {
			fmt.Fprintf(os.Stderr, "net bench: dial %s: %v\n", addr, err)
			os.Exit(1)
		}
		harness.Prefill[uint64, *harness.Payload](index.NewNetJiffy(c), base, harness.KeyA, harness.ValA)
		c.Close()
		fmt.Printf("# net bench: external server %s (prefill %d over the wire)\n", addr, prefill)
	}

	// Connection sweep: mix ul, pipelining on and off.
	base.Mix = workload.MixUpdateLookup
	for _, conns := range connsList {
		for _, pipelined := range []bool{true, false} {
			c, err := client.Dial(addr, netCodec(), client.Options{Conns: conns, NoPipeline: !pipelined})
			if err != nil {
				fmt.Fprintf(os.Stderr, "net bench: dial: %v\n", err)
				os.Exit(1)
			}
			idx := index.NewNetJiffy(c)
			res := harness.Run[uint64, *harness.Payload](idx, base, harness.KeyA, harness.ValA)
			idx.Close()
			out.Sweep = append(out.Sweep, netPoint{
				Conns:     conns,
				Pipelined: pipelined,
				Mix:       base.Mix.Name,
				TotalMops: res.TotalMops(),
				TotalOps:  res.TotalOps,
			})
			fmt.Printf("net   %-3s conns=%-3d pipelined=%-5v threads=%-3d total=%8.3f Mops/s\n",
				base.Mix.Name, conns, pipelined, threads, res.TotalMops())
		}
	}

	// Batch amortization: update-only at the largest pool, batches of 1,
	// 10 and 100 ops per frame.
	maxConns := connsList[0]
	for _, n := range connsList {
		if n > maxConns {
			maxConns = n
		}
	}
	bcfg := base
	bcfg.Mix = workload.MixUpdateOnly
	for _, size := range []int{1, 10, 100} {
		bcfg.Batch = workload.BatchMode{Size: size}
		c, err := client.Dial(addr, netCodec(), client.Options{Conns: maxConns})
		if err != nil {
			fmt.Fprintf(os.Stderr, "net bench: dial: %v\n", err)
			os.Exit(1)
		}
		idx := index.NewNetJiffy(c)
		res := harness.Run[uint64, *harness.Payload](idx, bcfg, harness.KeyA, harness.ValA)
		idx.Close()
		out.Batch = append(out.Batch, netBatchPt{
			Batch:     bcfg.Batch.String(),
			Conns:     maxConns,
			TotalMops: res.TotalMops(),
			TotalOps:  res.TotalOps,
		})
		fmt.Printf("net   w   batch=%-7s conns=%-3d threads=%-3d total=%8.3f Mops/s\n",
			bcfg.Batch.String(), maxConns, threads, res.TotalMops())
	}
	return out
}

func writeNetJSON(path string, out *netFile) error {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
