package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// The -net mode measures the network serving layer (internal/server +
// jiffy/client) over loopback TCP: throughput as the client connection
// pool grows 1→256, with pipelined multiplexing on and off, and the
// batch-amortization effect of shipping 10- and 100-op atomic batches as
// one frame instead of ten or a hundred. The sweep runs against BOTH
// serving cores — the sharded event loops and the goroutine-per-connection
// fallback — so the committed numbers show what the event-loop rewrite
// bought at each pool size, and a parity pass cross-checks that a
// deterministic workload leaves both cores with bit-identical store
// contents (any divergence exits nonzero; CI runs this as a smoke test).
// By default it starts an in-process jiffyd-equivalent server on
// 127.0.0.1:0 (uint64 keys, 100-byte payload values, harness.ShardCount
// shards) so the whole measurement is self-contained; -netaddr points it
// at an external server instead (single sweep, no mode control, no
// parity). Results land in a BENCH_*.json file (BENCH_0006.json is the
// committed instance; BENCH_0005.json predates the mode sweep).

// netFile is the -net JSON schema.
type netFile struct {
	Kind       string   `json:"kind"` // always "net"
	GOMAXPROCS int      `json:"gomaxprocs"`
	Shards     int      `json:"shards"`
	Threads    int      `json:"threads"`
	KeySpace   uint64   `json:"keyspace"`
	Prefill    int      `json:"prefill"`
	Duration   string   `json:"duration"`
	When       string   `json:"when"`
	Modes      []string `json:"modes,omitempty"`
	Parity     string   `json:"parity,omitempty"` // "ok" when both cores converged
	// Trace marks a tracing A/B run (-trace): every sweep point was
	// measured against a tracing-free server (A) and a server running the
	// flight recorder with clients sampling trace IDs at TraceSample (B),
	// in interleaved A·B·B·A order (per EXPERIMENTS.md, drift cancels),
	// and appears twice in Sweep. TraceOverheadPct is the mean throughput
	// cost of tracing across the sweep: positive means traced runs were
	// slower.
	Trace            bool         `json:"trace,omitempty"`
	TraceSample      float64      `json:"trace_sample,omitempty"`
	TraceOverheadPct float64      `json:"trace_overhead_pct,omitempty"`
	Sweep            []netPoint   `json:"sweep"`
	Batch            []netBatchPt `json:"batch"`
}

// netPoint is one conns-sweep measurement (mix ul: 25 % updates, 75 %
// lookups, one op per request). Threads records the workload goroutines
// actually driving the point — max(-netthreads, conns), so wide pools are
// not throttled by a narrow driver.
type netPoint struct {
	Mode      string  `json:"mode"`
	Conns     int     `json:"conns"`
	Threads   int     `json:"threads"`
	Pipelined bool    `json:"pipelined"`
	Traced    bool    `json:"traced,omitempty"` // client propagated a trace ID on every request
	Mix       string  `json:"mix"`
	TotalMops float64 `json:"total_mops"`
	TotalOps  uint64  `json:"total_ops"`
	Runs      int     `json:"runs,omitempty"` // >1: TotalMops is the mean of interleaved runs
}

// netBatchPt is one batch-amortization measurement (update-only, all
// connections, pipelined): ops per second counted in basic operations, so
// the amortization of frame and round-trip overhead shows directly.
type netBatchPt struct {
	Mode      string  `json:"mode"`
	Batch     string  `json:"batch"`
	Conns     int     `json:"conns"`
	TotalMops float64 `json:"total_mops"`
	TotalOps  uint64  `json:"total_ops"`
}

// netPayloadEnc encodes harness.Payload values as their raw 100 bytes.
func netPayloadEnc() durable.Enc[*harness.Payload] {
	return durable.Enc[*harness.Payload]{
		Append: func(dst []byte, v *harness.Payload) []byte { return append(dst, v[:]...) },
		Decode: func(src []byte) (*harness.Payload, error) {
			var p harness.Payload
			copy(p[:], src)
			return &p, nil
		},
	}
}

func netCodec() durable.Codec[uint64, *harness.Payload] {
	return durable.Codec[uint64, *harness.Payload]{Key: durable.Uint64Enc(), Value: netPayloadEnc()}
}

// startNetServer starts the in-process loopback server in the given mode,
// prefilled directly (the dataset is the same either way and skipping the
// network keeps setup fast). With tracing the server gets a registered
// flight recorder, exactly as jiffyd runs it. Returns the server and its
// address.
func startNetServer(mode server.Mode, base harness.Config, tracing bool) (*server.Server[uint64, *harness.Payload], string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "net bench: listen: %v\n", err)
		os.Exit(1)
	}
	opts := server.Options{Mode: mode}
	if tracing {
		rec := trace.NewRecorder(0)
		rec.RegisterMetrics(obs.NewRegistry())
		opts.Tracer = rec
	}
	s := jiffy.NewSharded[uint64, *harness.Payload](harness.ShardCount)
	srv := server.Serve(ln, server.NewMemStore(s), netCodec(), opts)
	harness.Prefill[uint64, *harness.Payload](&index.ShardedJiffy[uint64, *harness.Payload]{S: s}, base, harness.KeyA, harness.ValA)
	return srv, srv.Addr().String()
}

// measureNetPoint runs one sweep measurement. A traced run reproduces a
// deployed tracing setup on the client side: a local recorder plus a
// trace ID sampled onto sampleRate of the requests (8 extra body bytes
// and a span at every stage each one crosses).
func measureNetPoint(addr string, conns int, pipelined, traced bool, sampleRate float64, cfg harness.Config) harness.Result {
	copts := client.Options{Conns: conns, NoPipeline: !pipelined}
	if traced {
		copts.Tracer = trace.NewRecorder(0)
		copts.TraceSample = sampleRate
	}
	c, err := client.Dial(addr, netCodec(), copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "net bench: dial: %v\n", err)
		os.Exit(1)
	}
	idx := index.NewNetJiffy(c)
	res := harness.Run[uint64, *harness.Payload](idx, cfg, harness.KeyA, harness.ValA)
	idx.Close()
	return res
}

// sweepOne runs the conns sweep and the batch-amortization points against
// addr, tagging every result with mode. With a non-empty addrTraced every
// sweep point is measured four times in A·B·B·A order — A against addr
// (no tracing anywhere), B against addrTraced (flight recorder serving,
// clients sampling trace IDs) — and lands as two averaged points, so
// drift between runs cancels out of the traced-vs-untraced comparison.
func sweepOne(out *netFile, mode, addr, addrTraced string, connsList []int, threads int, base harness.Config, sampleRate float64) {
	traceAB := addrTraced != ""
	base.Mix = workload.MixUpdateLookup
	for _, conns := range connsList {
		ptThreads := threads
		if conns > ptThreads {
			ptThreads = conns
		}
		cfg := base
		cfg.Threads = ptThreads
		for _, pipelined := range []bool{true, false} {
			order := []bool{false}
			if traceAB {
				order = []bool{false, true, true, false}
			}
			var mops [2]float64
			var ops [2]uint64
			var runs [2]int
			for _, traced := range order {
				a := addr
				if traced {
					a = addrTraced
				}
				res := measureNetPoint(a, conns, pipelined, traced, sampleRate, cfg)
				i := 0
				if traced {
					i = 1
				}
				mops[i] += res.TotalMops()
				ops[i] += res.TotalOps
				runs[i]++
			}
			for i, traced := range []bool{false, true} {
				if runs[i] == 0 {
					continue
				}
				mean := mops[i] / float64(runs[i])
				pt := netPoint{
					Mode:      mode,
					Conns:     conns,
					Threads:   ptThreads,
					Pipelined: pipelined,
					Traced:    traced,
					Mix:       cfg.Mix.Name,
					TotalMops: mean,
					TotalOps:  ops[i] / uint64(runs[i]),
				}
				if traceAB {
					pt.Runs = runs[i]
				}
				out.Sweep = append(out.Sweep, pt)
				fmt.Printf("net   %-9s %-3s conns=%-3d pipelined=%-5v traced=%-5v threads=%-3d total=%8.3f Mops/s\n",
					mode, cfg.Mix.Name, conns, pipelined, traced, ptThreads, mean)
			}
		}
	}

	// Batch amortization: update-only at the largest pool, batches of 1,
	// 10 and 100 ops per frame.
	maxConns := connsList[0]
	for _, n := range connsList {
		if n > maxConns {
			maxConns = n
		}
	}
	bcfg := base
	bcfg.Mix = workload.MixUpdateOnly
	if maxConns > bcfg.Threads {
		bcfg.Threads = maxConns
	}
	for _, size := range []int{1, 10, 100} {
		bcfg.Batch = workload.BatchMode{Size: size}
		c, err := client.Dial(addr, netCodec(), client.Options{Conns: maxConns})
		if err != nil {
			fmt.Fprintf(os.Stderr, "net bench: dial: %v\n", err)
			os.Exit(1)
		}
		idx := index.NewNetJiffy(c)
		res := harness.Run[uint64, *harness.Payload](idx, bcfg, harness.KeyA, harness.ValA)
		idx.Close()
		out.Batch = append(out.Batch, netBatchPt{
			Mode:      mode,
			Batch:     bcfg.Batch.String(),
			Conns:     maxConns,
			TotalMops: res.TotalMops(),
			TotalOps:  res.TotalOps,
		})
		fmt.Printf("net   %-9s w   batch=%-7s conns=%-3d threads=%-3d total=%8.3f Mops/s\n",
			mode, bcfg.Batch.String(), maxConns, bcfg.Threads, res.TotalMops())
	}
}

// runNet executes the serving-layer measurements and returns the file to
// serialize. addr == "" sweeps both serving cores over in-process loopback
// servers and cross-checks their final contents; an external addr is
// measured as-is.
func runNet(addr string, connsList []int, threads int, keyspace uint64, prefill int, duration time.Duration, seed uint64, traceAB bool, sampleRate float64) *netFile {
	out := &netFile{
		Kind:       "net",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     harness.ShardCount,
		Threads:    threads,
		KeySpace:   keyspace,
		Prefill:    prefill,
		Duration:   duration.String(),
		When:       time.Now().UTC().Format(time.RFC3339),
		Trace:      traceAB,
	}
	if traceAB {
		out.TraceSample = sampleRate
	}

	base := harness.Config{
		KeySpace: keyspace,
		Prefill:  prefill,
		Duration: duration,
		Seed:     seed,
		Threads:  threads,
		Dist:     workload.Uniform,
	}

	if addr != "" {
		// External server: prefill through the wire, single sweep.
		c, err := client.Dial(addr, netCodec(), client.Options{Conns: 4})
		if err != nil {
			fmt.Fprintf(os.Stderr, "net bench: dial %s: %v\n", addr, err)
			os.Exit(1)
		}
		harness.Prefill[uint64, *harness.Payload](index.NewNetJiffy(c), base, harness.KeyA, harness.ValA)
		c.Close()
		fmt.Printf("# net bench: external server %s (prefill %d over the wire)\n", addr, prefill)
		out.Modes = []string{"external"}
		// An external server can't be restarted with tracing on and off;
		// the A/B then measures the client-side cost only.
		addrTraced := ""
		if traceAB {
			addrTraced = addr
		}
		sweepOne(out, "external", addr, addrTraced, connsList, threads, base, sampleRate)
		finishTraceAB(out, traceAB)
		return out
	}

	for _, mode := range []server.Mode{server.ModeEventLoop, server.ModeGoroutine} {
		srv, a := startNetServer(mode, base, false)
		actual := srv.Mode()
		if actual != mode {
			// Platform without event-loop support: the fallback would
			// measure the goroutine core twice.
			fmt.Printf("# net bench: %v unavailable here (served as %v), skipping\n", mode, actual)
			srv.Close()
			continue
		}
		// The B side of a tracing A/B gets its own server, identically
		// prefilled, running the flight recorder the way jiffyd does.
		addrTraced := ""
		var srvTraced *server.Server[uint64, *harness.Payload]
		if traceAB {
			srvTraced, addrTraced = startNetServer(mode, base, true)
		}
		fmt.Printf("# net bench: loopback server on %s, core %v (%d shards, prefill %d)\n",
			a, actual, harness.ShardCount, prefill)
		out.Modes = append(out.Modes, actual.String())
		sweepOne(out, actual.String(), a, addrTraced, connsList, threads, base, sampleRate)
		srv.Close()
		if srvTraced != nil {
			srvTraced.Close()
		}
	}

	out.Parity = checkParity(connsList)
	if out.Parity != "ok" {
		fmt.Fprintf(os.Stderr, "net bench: PARITY MISMATCH between serving cores: %s\n", out.Parity)
		os.Exit(1)
	}
	fmt.Printf("# net bench: serve-mode parity ok\n")
	finishTraceAB(out, traceAB)
	return out
}

// finishTraceAB summarizes a tracing A/B run: the mean percentage
// throughput cost of tracing over every paired sweep point (positive:
// traced slower). Left at zero for plain runs.
func finishTraceAB(out *netFile, traceAB bool) {
	if !traceAB {
		return
	}
	type key struct {
		mode      string
		conns     int
		pipelined bool
	}
	baseline := map[key]float64{}
	for _, pt := range out.Sweep {
		if !pt.Traced {
			baseline[key{pt.Mode, pt.Conns, pt.Pipelined}] = pt.TotalMops
		}
	}
	var sum float64
	var n int
	for _, pt := range out.Sweep {
		if !pt.Traced {
			continue
		}
		if b := baseline[key{pt.Mode, pt.Conns, pt.Pipelined}]; b > 0 {
			sum += (b - pt.TotalMops) / b * 100
			n++
		}
	}
	if n > 0 {
		out.TraceOverheadPct = sum / float64(n)
	}
	fmt.Printf("# net bench: tracing overhead %.2f%% mean over %d paired points (positive: traced slower)\n",
		out.TraceOverheadPct, n)
}

// checkParity runs one deterministic workload against each serving core —
// workers with disjoint key ranges, so the final contents are independent
// of interleaving — then digests a full scan of each and compares. A
// digest mismatch means one core corrupted, dropped or misrouted an
// operation the other executed correctly.
func checkParity(connsList []int) string {
	conns := 8
	for _, n := range connsList {
		if n > conns {
			conns = n
		}
	}
	if conns > 64 {
		conns = 64 // parity needs determinism, not scale
	}
	digests := map[string]uint64{}
	for _, mode := range []server.Mode{server.ModeEventLoop, server.ModeGoroutine} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Sprintf("listen: %v", err)
		}
		srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, *harness.Payload](harness.ShardCount)), netCodec(), server.Options{Mode: mode})
		if srv.Mode() != mode {
			srv.Close()
			continue
		}
		c, err := client.Dial(srv.Addr().String(), netCodec(), client.Options{Conns: conns})
		if err != nil {
			srv.Close()
			return fmt.Sprintf("dial: %v", err)
		}

		const workers, opsPer = 8, 2000
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Disjoint key range per worker: [w*10000, w*10000+opsPer).
				base := uint64(w * 10000)
				var val harness.Payload
				for i := uint64(0); i < opsPer; i++ {
					k := base + i%512 // revisit keys so puts overwrite and deletes hit
					switch i % 5 {
					case 0, 1, 2:
						val[0] = byte(i)
						if err := c.Put(k, &val); err != nil {
							errc <- err
							return
						}
					case 3:
						if _, err := c.Remove(k + 256); err != nil {
							errc <- err
							return
						}
					case 4:
						ops := []jiffy.BatchOp[uint64, *harness.Payload]{
							{Key: k, Val: &val},
							{Key: k + 1, Val: &val},
							{Key: k + 100, Remove: true},
						}
						if err := c.BatchUpdate(ops); err != nil {
							errc <- err
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			c.Close()
			srv.Close()
			return fmt.Sprintf("%v workload: %v", mode, err)
		}

		h := fnv.New64a()
		sc := c.ScanAll()
		var kb [8]byte
		for sc.Next() {
			k := sc.Key()
			for i := 0; i < 8; i++ {
				kb[i] = byte(k >> (8 * i))
			}
			h.Write(kb[:])
			h.Write(sc.Value()[:])
		}
		err = sc.Err()
		sc.Close()
		c.Close()
		srv.Close()
		if err != nil {
			return fmt.Sprintf("%v scan: %v", mode, err)
		}
		digests[mode.String()] = h.Sum64()
	}
	if len(digests) < 2 {
		return "ok" // only one core available on this platform
	}
	if digests["eventloop"] != digests["goroutine"] {
		return fmt.Sprintf("eventloop digest %016x != goroutine digest %016x",
			digests["eventloop"], digests["goroutine"])
	}
	return "ok"
}

func writeNetJSON(path string, out *netFile) error {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
