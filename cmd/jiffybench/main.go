// Command jiffybench regenerates the paper's evaluation figures (§4): for a
// chosen figure and row it sweeps every competitor index over the requested
// thread counts and prints one throughput row per measurement point, in the
// same units the paper reports (millions of basic operations per second;
// a scan over n entries counts as n gets).
//
// Examples:
//
//	jiffybench -figure 5 -row simple                 # Fig. 5 top row
//	jiffybench -figure 6 -row b100 -threads 1,2,4,8  # Fig. 6 bottom row
//	jiffybench -figure 8 -row b10 -mix w             # one scenario only
//	jiffybench -claims                               # §4.3 scalar claims
//	jiffybench -figure 5 -indices jiffy,jiffy-sharded -shards 8
//	                                                 # sharded vs single-shard
//	jiffybench -net -json BENCH_0005.json            # serving layer over loopback
//	jiffybench -net -conns 1,8 -netthreads 16        # smaller sweep
//	jiffybench -net -replica-reads -json BENCH_0009.json
//	                                                 # replica read offload
//	jiffybench -soak 30s -json BENCH_soak.json       # leak-asserting soak run
//
// The defaults are sized for a laptop-class machine; use -keyspace,
// -prefill and -duration to approach the paper's 20M-key / 10M-entry
// datasets on bigger hardware.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	var (
		figure   = flag.String("figure", "5", "figure to regenerate: 5, 6, 7, 8, 9 or 10")
		row      = flag.String("row", "simple", "figure row: simple, b10 or b100")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated thread counts (paper: 8..96)")
		mixes    = flag.String("mix", "w,ul,ms,ml", "scenarios: w (update-only), ul (update-lookup), ms (short scans), ml (long scans), sh (scan-heavy)")
		indices  = flag.String("indices", "", "restrict to these indices (comma-separated; default: all for the row)")
		keyspace = flag.Uint64("keyspace", 1<<18, "unique keys (paper: 20M)")
		prefill  = flag.Int("prefill", 1<<17, "prefilled entries (paper: 10M)")
		duration = flag.Duration("duration", 300*time.Millisecond, "measurement time per point")
		seed     = flag.Uint64("seed", 42, "workload seed")
		claims   = flag.Bool("claims", false, "measure the scalar claims of §4.3 instead of a figure")
		micro    = flag.Bool("micro", false, "measure the read-scalability micro claims (deep-chain seeks, iterator allocs, merged-scan scaling) instead of a figure")
		netBench = flag.Bool("net", false, "measure the network serving layer over loopback (conns sweep, pipelining on/off, batch amortization) instead of a figure")
		replRd   = flag.Bool("replica-reads", false, "with -net: measure read offload through a WAL-shipped replica (primary-pinned vs replica-routed reads) instead of the serve-mode sweep")
		traceAB  = flag.Bool("trace", false, "with -net: measure tracing overhead — every sweep point runs against a tracing-free server and a flight-recorder-enabled one (clients sampling trace IDs at -tracesample) in interleaved A·B·B·A order, and the file records the mean delta")
		traceSmp = flag.Float64("tracesample", 0.01, "with -net -trace: client trace-ID sample rate for the traced runs (1: every request carries an ID — the wire-overhead worst case)")
		conns    = flag.String("conns", "1,2,4,8,16,32,64,128,256", "with -net: comma-separated client connection counts to sweep")
		netAddr  = flag.String("netaddr", "", "with -net: measure against this running jiffyd-protocol server instead of an in-process loopback one")
		netThr   = flag.Int("netthreads", 64, "with -net: workload goroutines driving the client")
		soakDur  = flag.Duration("soak", 0, "run the leak-asserting soak for this long (0: off); asserts steady goroutines/fds/heap and epoch progress from periodic /metrics self-scrapes")
		soakConn = flag.Int("soakconns", 8, "with -soak: client connections")
		soakThr  = flag.Int("soakthreads", 16, "with -soak: workload goroutines")
		shards   = flag.Int("shards", 0, "shard count for the jiffy-sharded index (default: GOMAXPROCS, min 2)")
		jsonOut  = flag.String("json", "", "also write results to this file as JSON (e.g. BENCH_fig5.json), for perf-trajectory tracking")
	)
	flag.Parse()

	if *shards > 0 {
		harness.ShardCount = *shards
	}

	if *claims {
		if *jsonOut != "" {
			fmt.Fprintln(os.Stderr, "-json is not supported with -claims (claims are scalar comparisons, not figure points)")
			os.Exit(2)
		}
		runClaims(*keyspace, *prefill, *duration, *seed)
		return
	}

	if *micro {
		res := runMicro(*duration, *seed)
		if *jsonOut != "" {
			if err := writeMicroJSON(*jsonOut, res); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("# wrote micro results to %s\n", *jsonOut)
		}
		return
	}

	if *soakDur > 0 {
		res := runSoak(*soakDur, *soakConn, *soakThr, *seed)
		if *jsonOut != "" {
			if err := writeSoakJSON(*jsonOut, res); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("# wrote soak results to %s\n", *jsonOut)
		}
		if !res.Pass {
			fmt.Fprintln(os.Stderr, "soak: FAILED")
			os.Exit(1)
		}
		fmt.Printf("# soak: all checks passed (%.0f requests)\n", res.Requests)
		return
	}

	if *netBench {
		var connsList []int
		for _, s := range strings.Split(*conns, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad connection count %q\n", s)
				os.Exit(2)
			}
			connsList = append(connsList, n)
		}
		if *replRd {
			res := runReplicaReads(connsList, *netThr, *keyspace, *prefill, *duration, *seed)
			if *jsonOut != "" {
				if err := writeReplicaJSON(*jsonOut, res); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
					os.Exit(1)
				}
				fmt.Printf("# wrote replica-read results to %s\n", *jsonOut)
			}
			return
		}
		res := runNet(*netAddr, connsList, *netThr, *keyspace, *prefill, *duration, *seed, *traceAB, *traceSmp)
		if *jsonOut != "" {
			if err := writeNetJSON(*jsonOut, res); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("# wrote net results to %s\n", *jsonOut)
		}
		return
	}

	fig, ok := harness.Figures[*figure]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}
	var ths []int
	for _, s := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", s)
			os.Exit(2)
		}
		ths = append(ths, n)
	}
	var only map[string]bool
	if *indices != "" {
		only = map[string]bool{}
		for _, n := range strings.Split(*indices, ",") {
			only[strings.TrimSpace(n)] = true
		}
	}
	// Validate the requested mixes against the known scenarios: a typo'd
	// -mix used to match nothing and silently run zero measurements.
	validMix := map[string]bool{}
	var mixNames []string
	for _, m := range workload.AllMixes {
		validMix[m.Name] = true
		mixNames = append(mixNames, m.Name)
	}
	wantMix := map[string]bool{}
	for _, m := range strings.Split(*mixes, ",") {
		name := strings.TrimSpace(m)
		if !validMix[name] {
			fmt.Fprintf(os.Stderr, "unknown mix %q; valid mixes: %s\n", name, strings.Join(mixNames, ", "))
			os.Exit(2)
		}
		wantMix[name] = true
	}

	base := harness.Config{
		KeySpace: *keyspace,
		Prefill:  *prefill,
		Duration: *duration,
		Seed:     *seed,
	}
	fmt.Printf("# figure %s row %s  keyspace=%d prefill=%d duration=%v\n",
		fig.ID, *row, *keyspace, *prefill, *duration)
	var all []harness.Result
	for _, mix := range workload.AllMixes {
		if !wantMix[mix.Name] {
			continue
		}
		base.Mix = mix
		all = append(all, harness.RunFigure(os.Stdout, fig, *row, ths, base, only)...)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, fig.ID, *row, base, all); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d points to %s\n", len(all), *jsonOut)
	}
}

// benchFile is the BENCH_*.json perf-trajectory schema: one file per run,
// self-describing enough to compare points across commits.
type benchFile struct {
	Figure   string       `json:"figure"`
	Row      string       `json:"row"`
	KeySpace uint64       `json:"keyspace"`
	Prefill  int          `json:"prefill"`
	Duration string       `json:"duration"`
	Seed     uint64       `json:"seed"`
	When     string       `json:"when"`
	Points   []benchPoint `json:"points"`
}

type benchPoint struct {
	Index      string  `json:"index"`
	Mix        string  `json:"mix"`
	Batch      string  `json:"batch"`
	Dist       string  `json:"dist"`
	Threads    int     `json:"threads"`
	TotalMops  float64 `json:"total_mops"`
	UpdateMops float64 `json:"update_mops"`
	TotalOps   uint64  `json:"total_ops"`
	UpdateOps  uint64  `json:"update_ops"`
	ElapsedMs  float64 `json:"elapsed_ms"`
}

func writeJSON(path, figure, row string, base harness.Config, results []harness.Result) error {
	out := benchFile{
		Figure:   figure,
		Row:      row,
		KeySpace: base.KeySpace,
		Prefill:  base.Prefill,
		Duration: base.Duration.String(),
		Seed:     base.Seed,
		When:     time.Now().UTC().Format(time.RFC3339),
	}
	for _, r := range results {
		out.Points = append(out.Points, benchPoint{
			Index:      r.Index,
			Mix:        r.Config.Mix.Name,
			Batch:      r.Config.Batch.String(),
			Dist:       r.Config.Dist.String(),
			Threads:    r.Config.Threads,
			TotalMops:  r.TotalMops(),
			UpdateMops: r.UpdateMops(),
			TotalOps:   r.TotalOps,
			UpdateOps:  r.UpdateOps,
			ElapsedMs:  float64(r.Elapsed.Microseconds()) / 1e3,
		})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
