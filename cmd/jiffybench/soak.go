package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/jiffy"
	"repro/jiffy/client"
)

// The -soak mode is the leak hunt: an in-process server with its full
// observability surface up (registry, /metrics listener), a sustained
// mixed workload — puts, gets, removes, batches, snapshot sessions,
// scans — at constant concurrency, and periodic self-scrapes of the HTTP
// endpoint. At the end it asserts steady state from the scrape series
// alone, exactly as an operator's alerting would: goroutine count flat
// (no per-request or per-session goroutine leak), fd count flat (no
// socket or segment-file leak), heap bounded (no unbounded buffer
// growth), the reclamation epoch advancing (no wedged epoch pin — a
// leaked snapshot would freeze it), and request counters actually moving
// between scrapes. Failures exit nonzero; -json records the scrape
// series for trajectory tracking.

// soakFile is the -soak JSON schema.
type soakFile struct {
	Kind       string             `json:"kind"` // always "soak"
	GOMAXPROCS int                `json:"gomaxprocs"`
	Shards     int                `json:"shards"`
	Conns      int                `json:"conns"`
	Threads    int                `json:"threads"`
	Duration   string             `json:"duration"`
	When       string             `json:"when"`
	Requests   float64            `json:"requests_total"`
	Scrapes    []soakScrape       `json:"scrapes"`
	Checks     []soakCheck        `json:"checks"`
	Final      map[string]float64 `json:"final"`
	Pass       bool               `json:"pass"`
}

// soakScrape is one self-scrape's steady-state signals.
type soakScrape struct {
	ElapsedMs  float64 `json:"elapsed_ms"`
	Goroutines float64 `json:"goroutines"`
	OpenFDs    float64 `json:"open_fds"`
	HeapBytes  float64 `json:"heap_alloc_bytes"`
	Epoch      float64 `json:"epoch"`
	Requests   float64 `json:"requests_total"`
	Sessions   float64 `json:"sessions_open"`
}

type soakCheck struct {
	Name   string `json:"name"`
	Detail string `json:"detail"`
	Pass   bool   `json:"pass"`
}

// scrapeMetrics GETs url and returns every unlabeled series value plus
// per-family sums of the labeled ones (so jiffyd_requests_total is the
// sum over its op labels). Histogram _bucket series are skipped; _sum
// and _count pass through.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scrape: HTTP %d", resp.StatusCode)
	}
	vals := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name := line[:sp]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		vals[name] += v
	}
	return vals, sc.Err()
}

// soakWorker drives one goroutine's share of the mixed workload until
// stop closes. Every op kind the protocol has is in the mix, including
// the leak-prone ones: snapshot sessions (opened, used, closed — and a
// fraction deliberately left to the TTL reaper) and cursored scans.
func soakWorker(c *client.Client[uint64, *harness.Payload], seed uint64, stop <-chan struct{}, errs chan<- error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	var val harness.Payload
	const keys = 1 << 14
	for i := uint64(0); ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		k := rng.Uint64() % keys
		var err error
		switch i % 16 {
		case 0, 1, 2, 3, 4, 5:
			val[0] = byte(i)
			err = c.Put(k, &val)
		case 6, 7, 8, 9, 10, 11:
			_, _, err = c.Get(k)
		case 12, 13:
			_, err = c.Remove(k)
		case 14:
			ops := make([]jiffy.BatchOp[uint64, *harness.Payload], 0, 8)
			for j := uint64(0); j < 8; j++ {
				ops = append(ops, jiffy.BatchOp[uint64, *harness.Payload]{Key: (k + j) % keys, Val: &val})
			}
			err = c.BatchUpdate(ops)
		case 15:
			var snap *client.Snap[uint64, *harness.Payload]
			snap, err = c.Snapshot()
			if err != nil {
				break
			}
			sc := snap.Scan(k)
			for n := 0; n < 64 && sc.Next(); n++ {
			}
			err = sc.Err()
			sc.Close()
			// Leak one session in 256 on purpose: the reaper must collect
			// them (sessions_open stays bounded) or the epoch check fails.
			// The rate is set so the steady-state reap backlog (leaks/sec x
			// TTL) stays well under the sessions-bounded cap.
			if i%(16*256) != 15 {
				snap.Close()
			}
		}
		if err != nil {
			select {
			case errs <- err:
			default:
			}
			return
		}
	}
}

// runSoak runs the soak for dur and returns the report; the process
// should exit nonzero when report.Pass is false.
func runSoak(dur time.Duration, connsN, threads int, seed uint64) *soakFile {
	out := &soakFile{
		Kind:       "soak",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     harness.ShardCount,
		Conns:      connsN,
		Threads:    threads,
		Duration:   dur.String(),
		When:       time.Now().UTC().Format(time.RFC3339),
	}

	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	s := jiffy.NewSharded[uint64, *harness.Payload](harness.ShardCount)
	server.RegisterStoreStats(reg, s.Stats)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: listen: %v\n", err)
		os.Exit(1)
	}
	// Short TTL so deliberately leaked sessions are reaped well within
	// the run.
	srv := server.Serve(ln, server.NewMemStore(s), netCodec(), server.Options{
		Registry: reg,
		SnapTTL:  time.Second,
	})

	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: metrics listen: %v\n", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	msrv := &http.Server{Handler: mux}
	go msrv.Serve(mln)
	url := "http://" + mln.Addr().String() + "/metrics"
	fmt.Printf("# soak: server %s (core %v), metrics %s, %d conns, %d workers, %v\n",
		srv.Addr(), srv.Mode(), url, connsN, threads, dur)

	c, err := client.Dial(srv.Addr().String(), netCodec(), client.Options{Conns: connsN})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: dial: %v\n", err)
		os.Exit(1)
	}
	stop := make(chan struct{})
	errs := make(chan error, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			soakWorker(c, seed+uint64(w)*2654435761, stop, errs)
		}(w)
	}

	// Scrape on a fixed cadence; the first scrape (workload already
	// running at full concurrency) is the steady-state baseline.
	interval := dur / 8
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	start := time.Now()
	var failed atomic.Bool
	for time.Since(start) < dur {
		time.Sleep(interval)
		vals, err := scrapeMetrics(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: scrape: %v\n", err)
			failed.Store(true)
			break
		}
		out.Scrapes = append(out.Scrapes, soakScrape{
			ElapsedMs:  float64(time.Since(start).Microseconds()) / 1e3,
			Goroutines: vals["go_goroutines"],
			OpenFDs:    vals["process_open_fds"],
			HeapBytes:  vals["go_heap_alloc_bytes"],
			Epoch:      vals["jiffy_epoch"],
			Requests:   vals["jiffyd_requests_total"],
			Sessions:   vals["jiffyd_sessions_open"],
		})
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintf(os.Stderr, "soak: worker: %v\n", err)
		failed.Store(true)
	}

	final, err := scrapeMetrics(url)
	if err == nil {
		out.Final = map[string]float64{}
		for _, k := range []string{
			"jiffyd_requests_total", "jiffyd_responses_total", "jiffyd_connections",
			"jiffyd_connections_total", "jiffyd_sessions_open", "jiffyd_sessions_opened_total",
			"jiffyd_sessions_reaped_total", "jiffyd_bytes_read_total", "jiffyd_bytes_written_total",
			"jiffyd_inflight_requests", "jiffy_epoch", "jiffy_entries",
			"go_goroutines", "go_heap_alloc_bytes", "process_open_fds",
		} {
			out.Final[k] = final[k]
		}
		out.Requests = final["jiffyd_requests_total"]
	}

	c.Close()
	srv.Close()
	msrv.Close()

	check := func(name string, pass bool, detail string) {
		out.Checks = append(out.Checks, soakCheck{Name: name, Detail: detail, Pass: pass})
		mark := "ok  "
		if !pass {
			mark = "FAIL"
		}
		fmt.Printf("soak  %s %-22s %s\n", mark, name, detail)
	}

	if len(out.Scrapes) < 2 {
		check("scrapes", false, fmt.Sprintf("only %d scrapes completed; need >= 2", len(out.Scrapes)))
	} else {
		first, last := out.Scrapes[0], out.Scrapes[len(out.Scrapes)-1]
		// Goroutines: constant concurrency must mean constant goroutines,
		// modulo transient request handling; slack covers scheduler noise.
		const gSlack = 10
		check("goroutines-steady", last.Goroutines <= first.Goroutines+gSlack,
			fmt.Sprintf("first %.0f, last %.0f (slack %d)", first.Goroutines, last.Goroutines, gSlack))
		// FDs: the connection set is fixed; a drifting count is a leaked
		// socket or file. Skip where /proc is unavailable (-1).
		if first.OpenFDs >= 0 && last.OpenFDs >= 0 {
			const fdSlack = 8
			check("fds-steady", last.OpenFDs <= first.OpenFDs+fdSlack,
				fmt.Sprintf("first %.0f, last %.0f (slack %d)", first.OpenFDs, last.OpenFDs, fdSlack))
		}
		// Heap: bounded, not flat — GC phase makes point samples noisy, so
		// the bound is generous and catches monotone growth only.
		heapCap := 2*first.HeapBytes + 64<<20
		check("heap-bounded", last.HeapBytes <= heapCap,
			fmt.Sprintf("first %.0f, last %.0f (cap %.0f)", first.HeapBytes, last.HeapBytes, heapCap))
		// Epoch: must never regress; with real parallelism it must also
		// advance (on one CPU, epoch progress can legitimately stall under
		// an oversubscribed update load — see DESIGN.md §7).
		pass := last.Epoch >= first.Epoch
		if runtime.GOMAXPROCS(0) > 1 {
			pass = last.Epoch > first.Epoch
		}
		check("epoch-advances", pass,
			fmt.Sprintf("first %.0f, last %.0f (GOMAXPROCS %d)", first.Epoch, last.Epoch, runtime.GOMAXPROCS(0)))
		// Throughput: counters must move between scrapes, or the soak
		// silently measured an idle server.
		check("requests-flowing", last.Requests > first.Requests,
			fmt.Sprintf("first %.0f, last %.0f", first.Requests, last.Requests))
		// Sessions: the deliberate leaks must be reaped, not accumulate.
		sessCap := float64(threads*2 + 16)
		check("sessions-bounded", last.Sessions <= sessCap,
			fmt.Sprintf("open %.0f (cap %.0f)", last.Sessions, sessCap))
	}

	out.Pass = !failed.Load()
	for _, ck := range out.Checks {
		if !ck.Pass {
			out.Pass = false
		}
	}
	return out
}

func writeSoakJSON(path string, out *soakFile) error {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
