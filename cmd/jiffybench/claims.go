package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/index"
	"repro/internal/tsc"
	"repro/internal/workload"
)

// runClaims measures the scalar claims of §4.3 that are not figure series:
//
//   - the batch-update speedup of Jiffy over CA-AVL and CA-SL with large
//     random batches (paper: up to 4.9-7.4x at high thread counts);
//   - the autoscaler's settled revision sizes (paper: ~35 entries under
//     write-only load vs ~130 under a read-mostly mix);
//   - revision-list lengths (paper: at most 3-4 revisions, usually 2).
func runClaims(keyspace uint64, prefill int, duration time.Duration, seed uint64) {
	fmt.Println("# §4.3 scalar claims")

	// --- Batch-update speedup, write-only scenario, random 100-op batches.
	cfg := harness.Config{
		Mix:      workload.MixUpdateOnly,
		Batch:    workload.BatchMode{Size: 100, Seq: false},
		KeySpace: keyspace,
		Prefill:  prefill,
		Threads:  8,
		Duration: duration,
		Seed:     seed,
	}
	mops := map[string]float64{}
	for _, name := range harness.BatchIndices {
		idx := harness.NewIndexA(name)
		harness.Prefill(idx, cfg, harness.KeyA, harness.ValA)
		res := harness.Run(idx, cfg, harness.KeyA, harness.ValA)
		mops[name] = res.TotalMops()
		fmt.Printf("claim batch-rand-100 %s\n", res.Row())
	}
	if mops["ca-avl"] > 0 && mops["ca-sl"] > 0 {
		fmt.Printf("claim speedup jiffy/ca-avl = %.2fx  jiffy/ca-sl = %.2fx  (paper: 4.9x / 6.1x at 96 threads)\n",
			mops["jiffy"]/mops["ca-avl"], mops["jiffy"]/mops["ca-sl"])
	}

	// --- Autoscaler settled revision sizes.
	for _, scenario := range []struct {
		name string
		mix  workload.Mix
	}{
		{"write-only", workload.MixUpdateOnly},
		{"update-lookup", workload.MixUpdateLookup},
	} {
		j := index.NewJiffy[uint64, *harness.Payload]()
		c := harness.Config{
			Mix:      scenario.mix,
			KeySpace: keyspace,
			Prefill:  prefill,
			Threads:  8,
			Duration: duration * 4, // give the EMA time to settle
			Seed:     seed,
		}
		harness.Prefill[uint64, *harness.Payload](j, c, harness.KeyA, harness.ValA)
		harness.Run[uint64, *harness.Payload](j, c, harness.KeyA, harness.ValA)
		st := j.M.Stats()
		fmt.Printf("claim revision-size %-13s avg=%.1f entries (paper: ~35 write-only, ~130 read-mostly)\n",
			scenario.name, st.AvgRevisionSize)
		fmt.Printf("claim revision-list %-13s max=%d revisions (paper: at most 3-4, usually 2)\n",
			scenario.name, st.MaxRevisionList)
	}

	// --- Version-oracle ablation: TSC-style clock vs shared atomic counter.
	for _, oracle := range []string{"tsc", "counter"} {
		opts := core.Options[uint64]{}
		if oracle == "counter" {
			opts.Clock = nil // set below to the contended counter
		}
		j := &index.Jiffy[uint64, *harness.Payload]{M: core.New[uint64, *harness.Payload](opts)}
		if oracle == "counter" {
			j = &index.Jiffy[uint64, *harness.Payload]{M: core.New[uint64, *harness.Payload](core.Options[uint64]{Clock: newCounterClock()})}
		}
		c := harness.Config{
			Mix:      workload.MixUpdateOnly,
			KeySpace: keyspace,
			Prefill:  prefill,
			Threads:  8,
			Duration: duration,
			Seed:     seed,
		}
		harness.Prefill[uint64, *harness.Payload](j, c, harness.KeyA, harness.ValA)
		res := harness.Run[uint64, *harness.Payload](j, c, harness.KeyA, harness.ValA)
		fmt.Printf("claim oracle-%-8s total=%.3f Mops/s (§3.2: the counter variant did not scale past 4-8 threads)\n",
			oracle, res.TotalMops())
	}
}

// newCounterClock returns the shared-atomic-counter version oracle for the
// A2 ablation.
func newCounterClock() tsc.Clock { return tsc.NewCounter() }
