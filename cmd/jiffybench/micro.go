package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
	"repro/jiffy"
)

// The -micro mode measures the scalar read-scalability claims that do not
// fit the figure schema: O(log k) version seeks on deep revision chains,
// warm iterator allocation counts, and merged-scan throughput across shard
// counts (serial fallback under GOMAXPROCS=1, prefetch-parallel above).
// The results are written as the "micro" section of a BENCH_*.json file
// (BENCH_0004.json is the committed instance; see EXPERIMENTS.md).

// microFile is the -micro JSON schema.
type microFile struct {
	Kind       string `json:"kind"` // always "micro"
	GOMAXPROCS int    `json:"gomaxprocs"`
	When       string `json:"when"`

	// DeepChain: snapshot point reads against a chain of Depth revisions
	// pinned by live snapshots, seek-accelerated vs the linear-walk
	// baseline (Options.DisableChainSeek).
	DeepChain struct {
		Depth      int     `json:"depth"`
		SeekNsOp   float64 `json:"seek_ns_op"`
		LinearNsOp float64 `json:"linear_ns_op"`
		Speedup    float64 `json:"speedup"`
	} `json:"deep_chain"`

	// IterAllocs: allocations per warm 100-entry bounded scan through
	// each iterator flavor (mallocs measured via runtime.MemStats).
	IterAllocs struct {
		SnapshotIter    float64 `json:"snapshot_iter"`
		MapIter         float64 `json:"map_iter"`
		ShardedSnapIter float64 `json:"sharded_snapshot_iter"`
	} `json:"iter_allocs"`

	// MergedScan: long (10k-entry) cross-shard merged-scan throughput by
	// shard count, in millions of entries per second. Under GOMAXPROCS=1
	// this is the serial loser-tree fallback; with more cores the scans
	// escalate to per-shard prefetch.
	MergedScan []microScanPoint `json:"merged_scan"`

	// ScanHeavy: harness throughput of the sh scenario (75 % scanners,
	// 500-entry windows) for the two jiffy frontends.
	ScanHeavy []microMixPoint `json:"scan_heavy"`
}

type microScanPoint struct {
	Shards    int     `json:"shards"`
	MentriesS float64 `json:"mentries_s"`
}

type microMixPoint struct {
	Index     string  `json:"index"`
	Threads   int     `json:"threads"`
	TotalMops float64 `json:"total_mops"`
}

const microPrefill = 1 << 15

// runMicro executes the micro measurements and prints one line per result.
func runMicro(duration time.Duration, seed uint64) *microFile {
	out := &microFile{Kind: "micro", GOMAXPROCS: runtime.GOMAXPROCS(0),
		When: time.Now().UTC().Format(time.RFC3339)}

	// Deep-chain seeks.
	const depth = 1200
	out.DeepChain.Depth = depth
	out.DeepChain.SeekNsOp = deepChainNsOp(depth, false)
	out.DeepChain.LinearNsOp = deepChainNsOp(depth, true)
	out.DeepChain.Speedup = out.DeepChain.LinearNsOp / out.DeepChain.SeekNsOp
	fmt.Printf("micro deep-chain depth=%d seek=%.0f ns/op linear=%.0f ns/op speedup=%.1fx\n",
		depth, out.DeepChain.SeekNsOp, out.DeepChain.LinearNsOp, out.DeepChain.Speedup)

	// Iterator allocations.
	out.IterAllocs.SnapshotIter, out.IterAllocs.MapIter, out.IterAllocs.ShardedSnapIter = iterAllocs()
	fmt.Printf("micro iter-allocs snapshot=%.2f map=%.2f sharded-snapshot=%.2f allocs/op\n",
		out.IterAllocs.SnapshotIter, out.IterAllocs.MapIter, out.IterAllocs.ShardedSnapIter)

	// Merged-scan throughput by shard count.
	for _, shards := range []int{1, 2, 4, 8} {
		p := microScanPoint{Shards: shards, MentriesS: mergedScanMentries(shards, duration)}
		out.MergedScan = append(out.MergedScan, p)
		fmt.Printf("micro merged-scan shards=%d %.2f Mentries/s\n", p.Shards, p.MentriesS)
	}

	// Scan-heavy harness points.
	threads := runtime.GOMAXPROCS(0) * 2
	if threads < 4 {
		threads = 4
	}
	for _, name := range []string{"jiffy", "jiffy-sharded"} {
		cfg := harness.Config{
			Mix: workload.MixScanHeavy, KeySpace: 1 << 17, Prefill: 1 << 16,
			Threads: threads, Duration: duration, Seed: seed,
		}
		idx := harness.NewIndexA(name)
		harness.Prefill(idx, cfg, harness.KeyA, harness.ValA)
		res := harness.Run(idx, cfg, harness.KeyA, harness.ValA)
		harness.CloseIndex(idx)
		p := microMixPoint{Index: name, Threads: threads, TotalMops: res.TotalMops()}
		out.ScanHeavy = append(out.ScanHeavy, p)
		fmt.Printf("micro scan-heavy %-14s threads=%d %.3f Mops/s\n", p.Index, p.Threads, p.TotalMops)
	}
	return out
}

// deepChainNsOp builds a depth-deep revision chain on one node (every
// revision pinned by a live snapshot) and times snapshot point reads
// rotating across all depths.
func deepChainNsOp(depth int, disableSeek bool) float64 {
	m := jiffy.New[uint64, uint64](jiffy.Options[uint64]{DisableChainSeek: disableSeek})
	snaps := make([]*jiffy.Snapshot[uint64, uint64], 0, depth)
	for i := uint64(0); i < uint64(depth); i++ {
		m.Put(7, i)
		snaps = append(snaps, m.Snapshot())
	}
	defer func() {
		for _, s := range snaps {
			s.Close()
		}
	}()
	const ops = 20000
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, ok := snaps[(i*37)%depth].Get(7); !ok {
			panic("micro: key lost on deep chain")
		}
	}
	return float64(time.Since(start).Nanoseconds()) / ops
}

// iterAllocs reports mallocs per warm 100-entry bounded scan for the three
// iterator flavors.
func iterAllocs() (snapIter, mapIter, shardedIter float64) {
	m := jiffy.New[uint64, uint64]()
	for i := uint64(0); i < microPrefill; i++ {
		m.Put(i, i)
	}
	snap := m.Snapshot()
	defer snap.Close()
	snapIter = allocsPerOp(func(i int) {
		runIter(snap.Iter(), uint64(i%(microPrefill-200)))
	})
	mapIter = allocsPerOp(func(i int) {
		runIter(m.Iter(), uint64(i%(microPrefill-200)))
	})

	s := jiffy.NewSharded[uint64, uint64](8)
	for i := uint64(0); i < microPrefill; i++ {
		s.Put(i, i)
	}
	ssnap := s.Snapshot()
	defer ssnap.Close()
	shardedIter = allocsPerOp(func(i int) {
		runIter(ssnap.Iter(), uint64(i%(microPrefill-200)))
	})
	return snapIter, mapIter, shardedIter
}

func runIter(it jiffy.Iterator[uint64, uint64], lo uint64) {
	it.Seek(lo)
	n := 0
	for n < 100 && it.Next() {
		n++
	}
	it.Close()
}

// allocsPerOp measures average mallocs per op after a warmup that fills
// the pools (the testing-package helper, minus the testing package).
func allocsPerOp(op func(i int)) float64 {
	for i := 0; i < 200; i++ {
		op(i)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const ops = 2000
	for i := 0; i < ops; i++ {
		op(i)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / ops
}

// mergedScanMentries measures long merged-scan throughput at one shard
// count.
func mergedScanMentries(shards int, duration time.Duration) float64 {
	s := jiffy.NewSharded[uint64, uint64](shards)
	for i := uint64(0); i < microPrefill; i++ {
		s.Put(i, i)
	}
	snap := s.Snapshot()
	defer snap.Close()
	if duration <= 0 {
		duration = 300 * time.Millisecond
	}
	var entries uint64
	start := time.Now()
	for i := 0; time.Since(start) < duration; i++ {
		n := 0
		snap.RangeFrom(uint64((i*977)%(microPrefill-12000)), func(uint64, uint64) bool {
			n++
			return n < 10000
		})
		entries += uint64(n)
	}
	return float64(entries) / 1e6 / time.Since(start).Seconds()
}

func writeMicroJSON(path string, res *microFile) error {
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
