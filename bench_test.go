// Benchmarks regenerating the paper's evaluation (§4): one Benchmark per
// figure row, with sub-benchmarks spanning that figure's axes (scenario mix
// x index x batch variant), plus the ablation benches DESIGN.md calls out.
// Throughput is reported as the paper does — millions of basic operations
// per second ("Mops/s"), where a scan over n entries counts as n gets.
//
// The dataset is laptop-scale by default (2^15 entries over a 2^16 key
// space versus the paper's 10M/20M); cmd/jiffybench exposes the full-size
// knobs. Run a single row with, e.g.:
//
//	go test -bench 'Fig5_Simple' -benchtime 0.3s .
package repro

import (
	"cmp"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/index"
	"repro/internal/tsc"
	"repro/internal/workload"
	"repro/jiffy"
)

const (
	benchKeySpace = 1 << 16
	benchPrefill  = 1 << 15
	benchThreads  = 8 // goroutines (the paper sweeps hardware threads 8..96)
)

// benchPoint drives one measurement point under testing.B: benchThreads
// goroutines with fixed §4.2 roles share b.N operation groups; the metric
// reported is basic ops per second.
func benchPoint[K cmp.Ordered, V any](
	b *testing.B,
	mk func() index.Index[K, V],
	keyOf func(uint64) K, valOf func(uint64) V,
	mix workload.Mix, batch workload.BatchMode, dist workload.Distribution,
) {
	idx := mk()
	defer harness.CloseIndex(idx)
	cfg := harness.Config{KeySpace: benchKeySpace, Prefill: benchPrefill}
	harness.Prefill(idx, cfg, keyOf, valOf)
	batcher, _ := any(idx).(index.Batcher[K, V])
	useBatch := batch.Size > 1 && batcher != nil
	iterable, _ := any(idx).(index.Iterable[K, V])
	roles := mix.Assign(benchThreads)
	var nextRole atomic.Int64
	var basicOps atomic.Int64

	b.SetParallelism(benchThreads) // GOMAXPROCS may be 1; force goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		t := int(nextRole.Add(1)-1) % benchThreads
		gen := workload.NewKeyGen(dist, benchKeySpace, uint64(t)*1e6+7)
		batchBuf := make([]uint64, 0, batch.Size)
		ops := make([]index.BatchOp[K, V], 0, batch.Size)
		var n int64
		for pb.Next() {
			switch roles[t] {
			case workload.Updater:
				if useBatch {
					batchBuf = gen.BatchKeys(batch, batchBuf)
					ops = ops[:0]
					for _, k := range batchBuf {
						if gen.Coin(0.5) {
							ops = append(ops, index.BatchOp[K, V]{Key: keyOf(k), Val: valOf(k)})
						} else {
							ops = append(ops, index.BatchOp[K, V]{Key: keyOf(k), Remove: true})
						}
					}
					batcher.BatchUpdate(ops)
					n += int64(len(ops))
				} else {
					k := gen.Next()
					if gen.Coin(0.5) {
						idx.Put(keyOf(k), valOf(k))
					} else {
						idx.Remove(keyOf(k))
					}
					n++
				}
			case workload.Lookup:
				idx.Get(keyOf(gen.Next()))
				n++
			case workload.Scanner:
				n += int64(harness.ScanWindow(idx, iterable, keyOf(gen.Next()), mix.ScanLen))
			}
		}
		basicOps.Add(n)
	})
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(basicOps.Load())/s/1e6, "Mops/s")
	}
}

// benchFigureA runs one figure row in the 16/100 B configuration.
func benchFigureA(b *testing.B, dist workload.Distribution, row string) {
	modes := harness.Rows[row]
	names := harness.IndicesA
	if row != "simple" {
		names = harness.BatchIndices
	}
	for _, mix := range workload.Mixes {
		for _, mode := range modes {
			for _, name := range names {
				label := mix.Name + "/" + mode.String() + "/" + name
				name := name
				mix, mode := mix, mode
				b.Run(label, func(b *testing.B) {
					benchPoint(b, func() index.Index[uint64, *harness.Payload] { return harness.NewIndexA(name) },
						harness.KeyA, harness.ValA, mix, mode, dist)
				})
			}
		}
	}
}

// benchFigureB runs one figure row in the 4/4 B configuration (with KiWi).
func benchFigureB(b *testing.B, dist workload.Distribution, row string) {
	modes := harness.Rows[row]
	names := harness.IndicesB
	if row != "simple" {
		names = harness.BatchIndices
	}
	for _, mix := range workload.Mixes {
		for _, mode := range modes {
			for _, name := range names {
				label := mix.Name + "/" + mode.String() + "/" + name
				name := name
				mix, mode := mix, mode
				b.Run(label, func(b *testing.B) {
					benchPoint(b, func() index.Index[uint32, uint32] { return harness.NewIndexB(name) },
						harness.KeyB, harness.ValB, mix, mode, dist)
				})
			}
		}
	}
}

// --- Figures 5 and 7: 16/100 B, uniform keys (total + update throughput;
// the harness reports both numbers for every run, so Fig. 7 shares these
// benches). ---

func BenchmarkFig5_Simple(b *testing.B)   { benchFigureA(b, workload.Uniform, "simple") }
func BenchmarkFig5_Batch10(b *testing.B)  { benchFigureA(b, workload.Uniform, "b10") }
func BenchmarkFig5_Batch100(b *testing.B) { benchFigureA(b, workload.Uniform, "b100") }

// --- Figures 6 and 9: 4/4 B, uniform keys, including KiWi. ---

func BenchmarkFig6_Simple(b *testing.B)   { benchFigureB(b, workload.Uniform, "simple") }
func BenchmarkFig6_Batch10(b *testing.B)  { benchFigureB(b, workload.Uniform, "b10") }
func BenchmarkFig6_Batch100(b *testing.B) { benchFigureB(b, workload.Uniform, "b100") }

// --- Figure 8: 16/100 B, Zipfian keys (skew 0.99). ---

func BenchmarkFig8_Simple(b *testing.B)   { benchFigureA(b, workload.Zipf, "simple") }
func BenchmarkFig8_Batch10(b *testing.B)  { benchFigureA(b, workload.Zipf, "b10") }
func BenchmarkFig8_Batch100(b *testing.B) { benchFigureA(b, workload.Zipf, "b100") }

// --- Figure 10: 4/4 B, Zipfian keys. ---

func BenchmarkFig10_Simple(b *testing.B)   { benchFigureB(b, workload.Zipf, "simple") }
func BenchmarkFig10_Batch10(b *testing.B)  { benchFigureB(b, workload.Zipf, "b10") }
func BenchmarkFig10_Batch100(b *testing.B) { benchFigureB(b, workload.Zipf, "b100") }

// --- Claim benches (§4.3): the headline batch-update comparison. ---

func BenchmarkClaim_LargeRandomBatches(b *testing.B) {
	for _, name := range harness.BatchIndices {
		name := name
		b.Run(name, func(b *testing.B) {
			benchPoint(b, func() index.Index[uint64, *harness.Payload] { return harness.NewIndexA(name) },
				harness.KeyA, harness.ValA,
				workload.MixUpdateOnly, workload.BatchMode{Size: 100}, workload.Uniform)
		})
	}
}

// --- Ablation A1: the in-revision hash index (§3.3.5). ---

func BenchmarkAblation_HashIndex(b *testing.B) {
	for _, hashIdx := range []bool{true, false} {
		label := "on"
		if !hashIdx {
			label = "off"
		}
		opts := core.Options[uint64]{DisableHashIndex: !hashIdx}
		b.Run(label, func(b *testing.B) {
			benchPoint(b, func() index.Index[uint64, *harness.Payload] {
				return index.NewJiffy[uint64, *harness.Payload](opts)
			}, harness.KeyA, harness.ValA, workload.MixUpdateLookup, workload.BatchMode{}, workload.Uniform)
		})
	}
}

// --- Ablation A4: payload-buffer recycling on vs off (DESIGN.md §6). On
// oversubscribed schedulers (goroutines >> GOMAXPROCS) stranded epoch pins
// stall reclamation and "on" can trail "off"; with threads <= cores the
// pools serve the update path and "on" wins on both allocs and time. ---

func BenchmarkAblation_Recycling(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts core.Options[uint64]
	}{{"on", core.Options[uint64]{}}, {"off", core.Options[uint64]{DisableRecycling: true}}} {
		b.Run(mode.name, func(b *testing.B) {
			benchPoint(b, func() index.Index[uint64, *harness.Payload] {
				return index.NewJiffy[uint64, *harness.Payload](mode.opts)
			}, harness.KeyA, harness.ValA, workload.MixUpdateOnly, workload.BatchMode{}, workload.Uniform)
		})
	}
}

// --- Ablation A2: TSC-style clock vs a shared atomic counter (§3.2). ---

func BenchmarkAblation_VersionOracle(b *testing.B) {
	oracles := map[string]func() tsc.Clock{
		"tsc":     func() tsc.Clock { return tsc.NewMonotonic() },
		"counter": func() tsc.Clock { return tsc.NewCounter() },
	}
	for label, mk := range oracles {
		mk := mk
		b.Run(label, func(b *testing.B) {
			benchPoint(b, func() index.Index[uint64, *harness.Payload] {
				return index.NewJiffy[uint64, *harness.Payload](core.Options[uint64]{Clock: mk()})
			}, harness.KeyA, harness.ValA, workload.MixUpdateOnly, workload.BatchMode{}, workload.Uniform)
		})
	}
}

// --- Ablation A3: autoscaler vs fixed revision sizes (§3.3.6). ---

func BenchmarkAblation_RevisionSize(b *testing.B) {
	cases := map[string]core.Options[uint64]{
		"auto":     {},
		"fixed25":  {FixedRevisionSize: 25},
		"fixed100": {FixedRevisionSize: 100},
		"fixed300": {FixedRevisionSize: 300},
	}
	for label, opts := range cases {
		opts := opts
		b.Run(label, func(b *testing.B) {
			benchPoint(b, func() index.Index[uint64, *harness.Payload] {
				return index.NewJiffy[uint64, *harness.Payload](opts)
			}, harness.KeyA, harness.ValA, workload.MixShortScans, workload.BatchMode{}, workload.Uniform)
		})
	}
}

// --- Sharded frontend: scaling writes across shards (-shards axis). The
// figure benches above already include "jiffy-sharded" at the harness
// default shard count; this bench sweeps the shard count explicitly on the
// update-heavy mixes where sharding pays. ---

func BenchmarkSharded_Shards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, mode := range []workload.BatchMode{{}, {Size: 100}} {
			label := fmt.Sprintf("s%d/%s", shards, mode.String())
			shards := shards
			mode := mode
			b.Run(label, func(b *testing.B) {
				benchPoint(b, func() index.Index[uint64, *harness.Payload] {
					return index.NewShardedJiffy[uint64, *harness.Payload](shards)
				}, harness.KeyA, harness.ValA, workload.MixUpdateOnly, mode, workload.Uniform)
			})
		}
	}
}

func BenchmarkSharded_MergedScan(b *testing.B) {
	s := jiffy.NewSharded[uint64, uint64](8)
	for i := uint64(0); i < benchPrefill; i++ {
		s.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.RangeFrom(uint64(i%(benchPrefill-200)), func(uint64, uint64) bool {
			n++
			return n < 100
		})
	}
}

// --- Scan-heavy scenario (workload.MixScanHeavy): the concordance-style
// read-a-window-around-every-hit mix the PR 4 read-scalability work is
// measured under. Scanners dominate (75 % of threads, 500-entry windows)
// and run through the streaming iterators. ---

func BenchmarkScanHeavy(b *testing.B) {
	for _, name := range []string{"jiffy", "jiffy-sharded"} {
		name := name
		b.Run(name, func(b *testing.B) {
			benchPoint(b, func() index.Index[uint64, *harness.Payload] { return harness.NewIndexA(name) },
				harness.KeyA, harness.ValA, workload.MixScanHeavy, workload.BatchMode{}, workload.Uniform)
		})
	}
}

// --- Version seeks: snapshot point reads against a 1024+-deep revision
// chain (one node, every revision pinned by a live snapshot), with the
// back-skip pointers on vs the linear-walk baseline (DisableChainSeek).
// The BENCH_0004.json deep-chain claim is this pair. ---

func benchDeepChainGet(b *testing.B, disableSeek bool) {
	const depth = 1200
	m := core.New[uint64, uint64](core.Options[uint64]{DisableChainSeek: disableSeek})
	snaps := make([]*core.Snapshot[uint64, uint64], 0, depth)
	for i := uint64(0); i < depth; i++ {
		m.Put(7, i)
		snaps = append(snaps, m.Snapshot())
	}
	defer func() {
		for _, s := range snaps {
			s.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate through old snapshots so seeks land at every depth.
		s := snaps[(i*37)%depth]
		if _, ok := s.Get(7); !ok {
			b.Fatal("key lost")
		}
	}
}

func BenchmarkCore_DeepChainGet(b *testing.B)       { benchDeepChainGet(b, false) }
func BenchmarkCore_DeepChainGetLinear(b *testing.B) { benchDeepChainGet(b, true) }

// --- Parallel merged scans: long (10k-entry) cross-shard scans, which
// escalate to per-shard prefetch goroutines past the serial threshold.
// With GOMAXPROCS=1 the escalation is disabled and this measures the
// serial fallback. ---

func BenchmarkSharded_MergedScanLong(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("s%d", shards), func(b *testing.B) {
			s := jiffy.NewSharded[uint64, uint64](shards)
			for i := uint64(0); i < benchPrefill; i++ {
				s.Put(i, i)
			}
			snap := s.Snapshot()
			defer snap.Close()
			b.ResetTimer()
			entries := 0
			for i := 0; i < b.N; i++ {
				n := 0
				snap.RangeFrom(uint64(i%(benchPrefill-20000)), func(uint64, uint64) bool {
					n++
					return n < 10000
				})
				entries += n
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(entries)/sec/1e6, "Mentries/s")
			}
		})
	}
}

// --- Core micro-benchmarks: the primitive operations of the Jiffy map. ---

func BenchmarkCore_Put(b *testing.B) {
	m := core.New[uint64, uint64]()
	var i uint64
	b.RunParallel(func(pb *testing.PB) {
		g := workload.NewKeyGen(workload.Uniform, benchKeySpace, atomic.AddUint64(&i, 1))
		for pb.Next() {
			k := g.Next()
			m.Put(k, k)
		}
	})
}

func BenchmarkCore_Get(b *testing.B) {
	m := core.New[uint64, uint64]()
	for i := uint64(0); i < benchPrefill; i++ {
		m.Put(i*2, i)
	}
	var i uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := workload.NewKeyGen(workload.Uniform, benchKeySpace, atomic.AddUint64(&i, 1))
		for pb.Next() {
			m.Get(g.Next())
		}
	})
}

func BenchmarkCore_Snapshot(b *testing.B) {
	m := core.New[uint64, uint64]()
	for i := uint64(0); i < 1024; i++ {
		m.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Snapshot()
		s.Close()
	}
}

func BenchmarkCore_Scan100(b *testing.B) {
	m := core.New[uint64, uint64]()
	for i := uint64(0); i < benchPrefill; i++ {
		m.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		m.RangeFrom(uint64(i%(benchPrefill-200)), func(uint64, uint64) bool {
			n++
			return n < 100
		})
	}
}

func BenchmarkCore_Batch100(b *testing.B) {
	m := core.New[uint64, uint64]()
	g := workload.NewKeyGen(workload.Uniform, benchKeySpace, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := core.NewBatch[uint64, uint64](100)
		for j := 0; j < 100; j++ {
			batch.Put(g.Next(), uint64(j))
		}
		m.BatchUpdate(batch)
	}
}

// --- Memory-profile benches: the allocation trajectory of the hot paths.
// Every BenchmarkMem_* reports allocs/op and B/op (ReportAllocs); the
// committed BENCH_0003.json baseline and the CI alloc budget
// (alloc_budget_test.go) track these numbers across PRs. The durable append
// variant lives in jiffy/durable/bench_test.go (BenchmarkMem_DurableAppend).
// ---

// BenchmarkMem_Put is the single-put hot path at steady state: one
// goroutine updating an established map, so the cost measured is
// clone+insert plus revision construction, not structure growth.
func BenchmarkMem_Put(b *testing.B) {
	m := core.New[uint64, uint64]()
	g := workload.NewKeyGen(workload.Uniform, benchKeySpace, 11)
	for i := 0; i < benchPrefill; i++ {
		k := g.Next()
		m.Put(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := g.Next()
		m.Put(k, k)
	}
}

// BenchmarkMem_Batch10 is the b10 batch-update path (normalize, apply,
// commit) against an established map; one op is one 10-entry batch.
func BenchmarkMem_Batch10(b *testing.B) {
	m := core.New[uint64, uint64]()
	g := workload.NewKeyGen(workload.Uniform, benchKeySpace, 13)
	for i := 0; i < benchPrefill; i++ {
		k := g.Next()
		m.Put(k, k)
	}
	batch := core.NewBatch[uint64, uint64](10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for j := 0; j < 10; j++ {
			batch.Put(g.Next(), uint64(j))
		}
		m.BatchUpdate(batch)
	}
}

// BenchmarkMem_Batch100 is the b100 variant of BenchmarkMem_Batch10.
func BenchmarkMem_Batch100(b *testing.B) {
	m := core.New[uint64, uint64]()
	g := workload.NewKeyGen(workload.Uniform, benchKeySpace, 17)
	for i := 0; i < benchPrefill; i++ {
		k := g.Next()
		m.Put(k, k)
	}
	batch := core.NewBatch[uint64, uint64](100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for j := 0; j < 100; j++ {
			batch.Put(g.Next(), uint64(j))
		}
		m.BatchUpdate(batch)
	}
}

// BenchmarkMem_Scan100 is a 100-entry snapshot range scan (one ephemeral
// snapshot per op, as Map.RangeFrom does).
func BenchmarkMem_Scan100(b *testing.B) {
	m := core.New[uint64, uint64]()
	for i := uint64(0); i < benchPrefill; i++ {
		m.Put(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		m.RangeFrom(uint64(i%(benchPrefill-200)), func(uint64, uint64) bool {
			n++
			return n < 100
		})
	}
}

// BenchmarkMem_Iter100 is a 100-entry bounded scan through a pooled
// streaming iterator over an existing snapshot: the warm steady state is
// zero allocations per scan.
func BenchmarkMem_Iter100(b *testing.B) {
	m := core.New[uint64, uint64]()
	for i := uint64(0); i < benchPrefill; i++ {
		m.Put(i, i)
	}
	snap := m.Snapshot()
	defer snap.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := snap.Iter()
		it.Seek(uint64(i % (benchPrefill - 200)))
		n := 0
		for n < 100 && it.Next() {
			n++
		}
		it.Close()
	}
}

// BenchmarkMem_MapIter100 is BenchmarkMem_Iter100 against the live map:
// each op additionally registers and closes the iterator's own ephemeral
// snapshot (two allocations: the snapshot and its registry entry).
func BenchmarkMem_MapIter100(b *testing.B) {
	m := jiffy.New[uint64, uint64]()
	for i := uint64(0); i < benchPrefill; i++ {
		m.Put(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := m.Iter()
		it.Seek(uint64(i % (benchPrefill - 200)))
		n := 0
		for n < 100 && it.Next() {
			n++
		}
		it.Close()
	}
}

// BenchmarkMem_ShardedIter100 is the 8-shard merge-iterator variant over
// an existing cross-shard snapshot; warm steady state is zero allocations.
func BenchmarkMem_ShardedIter100(b *testing.B) {
	s := jiffy.NewSharded[uint64, uint64](8)
	for i := uint64(0); i < benchPrefill; i++ {
		s.Put(i, i)
	}
	snap := s.Snapshot()
	defer snap.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := snap.Iter()
		it.Seek(uint64(i % (benchPrefill - 200)))
		n := 0
		for n < 100 && it.Next() {
			n++
		}
		it.Close()
	}
}

// BenchmarkMem_MergedScan100 is the sharded k-way merged scan: 8 shard
// cursors feeding 100 entries through the tournament merge.
func BenchmarkMem_MergedScan100(b *testing.B) {
	s := jiffy.NewSharded[uint64, uint64](8)
	for i := uint64(0); i < benchPrefill; i++ {
		s.Put(i, i)
	}
	snap := s.Snapshot()
	defer snap.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		snap.RangeFrom(uint64(i%(benchPrefill-200)), func(uint64, uint64) bool {
			n++
			return n < 100
		})
	}
}
