# Build jiffyd (and its operator/workload companions) into a minimal
# runtime image. The compose file at the repo root wires a primary, a
# replica, a looping netkv load generator, and a Prometheus + Grafana
# pair provisioned with the per-stage latency dashboard
# (deploy/grafana/jiffy-dashboard.json).
#
#	docker build -t jiffy .
#	docker run -p 7420:7420 -p 7421:7421 jiffy \
#	  -addr :7420 -metrics-addr :7421 -durable -dir /data
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/jiffyd ./cmd/jiffyd \
 && CGO_ENABLED=0 go build -trimpath -o /out/jiffyctl ./cmd/jiffyctl \
 && CGO_ENABLED=0 go build -trimpath -o /out/netkv ./examples/netkv

FROM alpine:3.20
RUN apk add --no-cache curl ca-certificates
COPY --from=build /out/jiffyd /out/jiffyctl /out/netkv /usr/local/bin/
VOLUME /data
EXPOSE 7420 7421 7422
ENTRYPOINT ["jiffyd"]
CMD ["-addr", ":7420", "-metrics-addr", ":7421"]
