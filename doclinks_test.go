package repro

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdRefRe matches relative markdown link targets: [text](target).
var mdRefRe = regexp.MustCompile(`\]\(([^)#][^)]*)\)`)

// fencedRe and inlineCodeRe match fenced blocks and inline code spans,
// which are stripped before link extraction: Go's generic instantiation
// syntax (`F[K, V](x)`) would otherwise parse as a markdown link.
var (
	fencedRe     = regexp.MustCompile("(?s)```.*?```")
	inlineCodeRe = regexp.MustCompile("`[^`]*`")
)

// fileMentionRe matches bare mentions of repo files in prose or Go doc
// comments, e.g. "See README.md, DESIGN.md and EXPERIMENTS.md." or
// "cmd/jiffybench/claims.go".
var fileMentionRe = regexp.MustCompile(`[A-Za-z0-9_./-]+\.(?:md|go)\b`)

// TestDocLinksResolve fails when documentation references a file that does
// not exist — the state this repo was seeded in, with doc.go promising a
// README, DESIGN.md and EXPERIMENTS.md that were missing.
func TestDocLinksResolve(t *testing.T) {
	// Bare file mentions (no directory) may refer to a file anywhere in
	// the tree, e.g. "batch.go" inside a section about internal/core.
	basenames := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		basenames[d.Name()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	sources := []string{"doc.go", "README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md"}
	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Errorf("documentation source missing: %v", err)
			continue
		}
		text := string(data)
		prose := inlineCodeRe.ReplaceAllString(fencedRe.ReplaceAllString(text, ""), "")

		refs := map[string]bool{}
		for _, m := range mdRefRe.FindAllStringSubmatch(prose, -1) {
			refs[m[1]] = true
		}
		for _, m := range fileMentionRe.FindAllString(text, -1) {
			refs[m] = true
		}
		for ref := range refs {
			switch {
			case strings.Contains(ref, "://"), strings.HasPrefix(ref, "#"):
				continue // external or intra-document
			}
			ref = strings.TrimPrefix(ref, "./")
			if !strings.Contains(ref, "/") && basenames[ref] {
				continue
			}
			if _, err := os.Stat(ref); err != nil {
				t.Errorf("%s references %q, which does not exist", src, ref)
			}
		}
	}
}

// TestExamplesExist keeps README's example list honest.
func TestExamplesExist(t *testing.T) {
	for _, ex := range []string{"quickstart", "sharded", "orderbook", "analytics", "adaptive"} {
		if _, err := os.Stat("examples/" + ex + "/main.go"); err != nil {
			t.Errorf("example %q missing: %v", ex, err)
		}
	}
}
