// Adaptive: watch the autoscaling policy (§3.3.6) at work. The program
// drives the same Jiffy map through a write-heavy phase and then a
// read-heavy phase, sampling the structure between phases: revision sizes
// shrink towards the 25-entry floor while updates dominate and grow towards
// the 300-entry ceiling once reads take over — the granularity adaptation
// that lets one index serve both workload shapes.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

const (
	keySpace = 200_000
	prefill  = 100_000
	threads  = 8
	phaseDur = 3 * time.Second
)

func main() {
	m := core.New[uint64, uint64]()
	for i := uint64(0); i < prefill; i++ {
		m.Put(i*2, i)
	}
	report := func(phase string) {
		st := m.Stats()
		fmt.Printf("%-12s nodes=%-6d avg revision=%6.1f entries  (bounds %d..%d)\n",
			phase, st.Nodes, st.AvgRevisionSize,
			core.DefaultMinRevisionSize, core.DefaultMaxRevisionSize)
	}
	report("initial")

	runPhase := func(name string, updateFrac float64) {
		var stop atomic.Bool
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(t), 99))
				update := float64(t) < updateFrac*threads
				for !stop.Load() {
					k := rng.Uint64N(keySpace)
					if update {
						if rng.IntN(2) == 0 {
							m.Put(k, k)
						} else {
							m.Remove(k)
						}
					} else {
						m.Get(k)
					}
				}
			}()
		}
		time.Sleep(phaseDur)
		stop.Store(true)
		wg.Wait()
		report(name)
	}

	// Phase 1: all threads update — the policy should drive revision
	// sizes down (the paper reports ~35 entries in this regime).
	runPhase("write-heavy", 1.0)

	// Phase 2: one updater, the rest read — sizes should climb (the
	// paper reports ~130 entries with 75% readers).
	runPhase("read-heavy", 1.0/threads)
}
