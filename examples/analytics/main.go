// Analytics: the workload class the paper's introduction motivates —
// writers stream updates into an ordered index while analytical readers run
// long, consistent range scans concurrently. Jiffy's snapshots make every
// aggregate internally consistent without blocking the writers.
//
// The program keeps one invariant visible: writers move value between
// accounts in balanced pairs (a debit and a credit inside one atomic batch),
// so the total across any consistent snapshot is constant. Every scan
// verifies it.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

const (
	accounts       = 50_000
	initialBalance = 100
	writers        = 4
	scanners       = 2
	runFor         = 2 * time.Second
)

func main() {
	m := core.New[uint64, int64]()
	for i := uint64(0); i < accounts; i++ {
		m.Put(i, initialBalance)
	}
	const wantTotal = int64(accounts) * initialBalance

	var stop atomic.Bool
	var transfers, scans atomic.Int64
	var wg sync.WaitGroup

	// Writers: each transfer debits one account and credits another in a
	// single atomic batch update. Accounts are sharded per writer (each
	// writer owns keys with k % writers == w) so the read-modify-write is
	// single-writer and the global total is exactly invariant.
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0xfeed))
			for !stop.Load() {
				from := rng.Uint64N(accounts/writers)*writers + uint64(w)
				to := rng.Uint64N(accounts/writers)*writers + uint64(w)
				if from == to {
					continue
				}
				amount := int64(rng.IntN(20) + 1)
				fv, _ := m.Get(from)
				tv, _ := m.Get(to)
				b := core.NewBatch[uint64, int64](2).
					Put(from, fv-amount).
					Put(to, tv+amount)
				m.BatchUpdate(b)
				transfers.Add(1)
			}
		}()
	}

	// Scanners: full-table aggregates over consistent snapshots. Thanks to
	// batch atomicity, no snapshot can see a transfer half-applied, so the
	// total is constant in every scan.
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := m.Snapshot()
				var total int64
				n := 0
				snap.All(func(_ uint64, v int64) bool {
					total += v
					n++
					return true
				})
				snap.Close()
				if n != accounts {
					panic(fmt.Sprintf("scan saw %d/%d accounts", n, accounts))
				}
				if total != wantTotal {
					panic(fmt.Sprintf("inconsistent snapshot: total %d, want %d", total, wantTotal))
				}
				scans.Add(1)
			}
		}()
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	// Final report on a quiescent snapshot.
	snap := m.Snapshot()
	defer snap.Close()
	var total int64
	snap.All(func(_ uint64, v int64) bool { total += v; return true })
	fmt.Printf("transfers: %d, consistent scans: %d\n", transfers.Load(), scans.Load())
	fmt.Printf("accounts: %d, final total: %d\n", accounts, total)
	st := m.Stats()
	fmt.Printf("index: %d nodes, avg revision %.0f entries, max revision list %d\n",
		st.Nodes, st.AvgRevisionSize, st.MaxRevisionList)
}
