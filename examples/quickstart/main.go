// Quickstart: the full Jiffy API surface in one small program — puts,
// lookups, removes, an atomic batch update, a consistent snapshot and range
// scans over it.
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A Jiffy map is ready to use with zero configuration; every method
	// is safe for concurrent use from any number of goroutines.
	m := core.New[string, int]()

	// Single-key updates.
	m.Put("apple", 3)
	m.Put("banana", 7)
	m.Put("cherry", 2)
	m.Remove("banana")

	if v, ok := m.Get("apple"); ok {
		fmt.Println("apple =", v)
	}
	if _, ok := m.Get("banana"); !ok {
		fmt.Println("banana was removed")
	}

	// Atomic batch update: all operations become visible at one instant —
	// no reader can ever observe the restock half-applied.
	restock := core.NewBatch[string, int](3).
		Put("apple", 10).
		Put("banana", 10).
		Remove("cherry")
	m.BatchUpdate(restock)

	// O(1) consistent snapshot: a frozen view of the map as of now.
	snap := m.Snapshot()
	defer snap.Close()

	m.Put("apple", 999) // the snapshot will not see this

	fmt.Println("--- snapshot scan ---")
	snap.All(func(k string, v int) bool {
		fmt.Printf("  %-6s = %d\n", k, v)
		return true
	})

	if v, _ := snap.Get("apple"); v != 10 {
		panic("snapshot drifted")
	}
	if v, _ := m.Get("apple"); v != 999 {
		panic("live map lost an update")
	}

	// Bounded range scans run on an ephemeral snapshot.
	fmt.Println("--- live range [a, c) ---")
	m.Range("a", "c", func(k string, v int) bool {
		fmt.Printf("  %-6s = %d\n", k, v)
		return true
	})
}
