// Example durable demonstrates kill-and-recover with jiffy/durable: a
// durable map absorbs writes and a non-blocking checkpoint, "crashes"
// (the process state is abandoned, and the log's final record is torn the
// way a power cut mid-append would), and a fresh Open reconstructs every
// acknowledged operation from the checkpoint plus the replayed log tail.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/jiffy"
	"repro/jiffy/durable"
)

func codec() durable.Codec[string, string] {
	return durable.Codec[string, string]{Key: durable.StringEnc(), Value: durable.StringEnc()}
}

func main() {
	dir, err := os.MkdirTemp("", "jiffy-durable-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1: a process writes, checkpoints mid-stream, writes more.
	d, err := durable.Open(dir, codec())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := d.Put(fmt.Sprintf("user-%04d", i), fmt.Sprintf("v%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	ver, err := d.Checkpoint() // O(1) snapshot cut; writers would keep going
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint at version %d; log below it truncated\n", ver)

	// Post-checkpoint tail: an atomic batch and some removes — these live
	// only in the write-ahead log.
	b := jiffy.NewBatch[string, string](3).
		Put("user-0001", "updated").
		Put("session-abc", "alive").
		Remove("user-0002")
	if err := d.BatchUpdate(b); err != nil {
		log.Fatal(err)
	}

	// Phase 2: crash. The process dies without Close; worse, the power
	// cut tears the record that was being appended at that instant.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0); err == nil {
		f.Write([]byte{200, 0, 0, 0, 0xff, 0xff, 0x01, 0x02}) // half a record
		f.Close()
	}
	fmt.Println("crash: process gone, final log record torn")

	// Phase 3: recovery. Open loads the checkpoint, replays the log tail
	// in commit-version order, and drops the torn record (never acked).
	r, err := durable.Open(dir, codec())
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	fmt.Printf("recovered %d entries\n", r.Len())
	for _, k := range []string{"user-0001", "user-0002", "session-abc", "user-0999"} {
		if v, ok := r.Get(k); ok {
			fmt.Printf("  %-12s = %s\n", k, v)
		} else {
			fmt.Printf("  %-12s   (removed)\n", k)
		}
	}
}
