// Sharded: the multi-shard Jiffy frontend in one small program — keys
// hash-partitioned across shards, a batch update that stays atomic across
// shards, one consistent snapshot spanning all of them, and a merged range
// scan in global key order.
package main

import (
	"fmt"
	"runtime"

	"repro/jiffy"
)

func main() {
	// A Sharded map spreads write contention across independent Jiffy
	// shards; near-GOMAXPROCS shard counts suit write-heavy loads.
	s := jiffy.NewSharded[string, int](runtime.GOMAXPROCS(0))
	fmt.Printf("running with %d shards\n", s.NumShards())

	// Point operations route to the owning shard.
	s.Put("apple", 3)
	s.Put("banana", 7)
	s.Put("cherry", 2)
	s.Remove("banana")

	// This batch's keys hash to different shards, yet no reader can ever
	// observe it half-applied: the shards commit it at one shared
	// linearization point.
	restock := jiffy.NewBatch[string, int](3).
		Put("apple", 10).
		Put("banana", 10).
		Remove("cherry")
	s.BatchUpdate(restock)

	// One snapshot spans every shard, frozen at one version of the
	// shards' shared clock.
	snap := s.Snapshot()
	defer snap.Close()

	s.Put("apple", 999) // invisible to the snapshot

	fmt.Println("--- snapshot scan (merged across shards, ascending) ---")
	snap.All(func(k string, v int) bool {
		fmt.Printf("  %-6s = %d\n", k, v)
		return true
	})

	if v, _ := snap.Get("apple"); v != 10 {
		panic("snapshot drifted")
	}
	if v, _ := s.Get("apple"); v != 999 {
		panic("live map lost an update")
	}

	// Merged range scans keep global key order despite hash routing.
	fmt.Println("--- live range [a, c) ---")
	s.Range("a", "c", func(k string, v int) bool {
		fmt.Printf("  %-6s = %d\n", k, v)
		return true
	})
}
