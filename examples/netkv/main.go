// Command netkv is a small client workload against a running jiffyd: it
// puts a block of keys, reads them back, applies an atomic cross-shard
// batch, and walks a snapshot session with a cursored scan, verifying
// every step. The CI server-smoke step runs it against a freshly started
// jiffyd and then asserts the server shuts down cleanly.
//
//	jiffyd -addr 127.0.0.1:7421 &
//	go run ./examples/netkv -addr 127.0.0.1:7421
//
// For replicated deployments, -replicas routes reads through replica
// connections (exercising the read-your-writes floor), -record writes
// every acked key with its final value to a file, and -verify replays
// such a file against a server — the replication smoke test records
// against the primary, SIGKILLs it, promotes the replica, and verifies
// zero acked keys were lost:
//
//	go run ./examples/netkv -addr primary:7420 -record acked.txt
//	kill -9 <primary>; jiffyctl -ctl replica:7423 promote
//	go run ./examples/netkv -addr replica:7430 -verify acked.txt
//
// With -trace-sample a fraction of requests carry a wire-propagated
// trace ID (DESIGN.md §13); the server's /trace endpoint (and `jiffyctl
// trace`) then shows their per-stage latency breakdown, stitched from
// client enqueue to WAL fsync to replica apply.
//
// With a fleet running -auto-failover no promote step is needed:
// -rediscover makes the workload itself ride through the failover —
// writes that hit a dead or fenced server probe the fleet for the
// elected primary and retry there, so the recorded acked set can be
// verified against whatever node ends up primary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "jiffyd address")
	n := flag.Int("n", 1000, "keys to write")
	conns := flag.Int("conns", 4, "client connections")
	replicas := flag.String("replicas", "", "comma-separated replica addresses; reads route through them at the client's write floor")
	record := flag.String("record", "", "write every acked key and its final value to this file (consumed by -verify)")
	verify := flag.String("verify", "", "verify every key in this file against the server and exit (non-zero on any lost or stale key)")
	rediscover := flag.Bool("rediscover", false, "survive failovers: writes hitting a dead, read-only or fenced server probe the fleet for the current primary and retry there")
	traceSample := flag.Float64("trace-sample", 0, "propagate a trace ID on this fraction of requests (0..1); the server's /trace endpoint then stitches their spans end to end")
	flag.Parse()

	codec := durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
	opts := client.Options{Conns: *conns}
	var rec *trace.Recorder
	if *traceSample > 0 {
		rec = trace.NewRecorder(0)
		opts.Tracer = rec
		opts.TraceSample = *traceSample
	}
	if *replicas != "" {
		opts.Replicas = strings.Split(*replicas, ",")
	}
	if *rediscover {
		opts.Rediscover = true
		opts.DialRetry = true
	}
	if *verify != "" {
		// The verify target is often a freshly promoted replica; give it a
		// moment to come up.
		opts.DialRetry = true
	}
	c, err := client.Dial(*addr, codec, opts)
	if err != nil {
		log.Fatalf("netkv: dial %s: %v", *addr, err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		log.Fatalf("netkv: ping: %v", err)
	}

	if *verify != "" {
		verifyAcked(c, *verify)
		return
	}

	key := func(i int) string { return fmt.Sprintf("user:%06d", i) }
	acked := map[string]string{}

	// Point puts, concurrently pipelined through the pool.
	for i := 0; i < *n; i++ {
		if err := c.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatalf("netkv: put: %v", err)
		}
		acked[key(i)] = fmt.Sprintf("v%d", i)
	}
	for i := 0; i < *n; i += 97 {
		v, ok, err := c.Get(key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			log.Fatalf("netkv: get %s = %q/%v/%v, want v%d", key(i), v, ok, err, i)
		}
	}

	// One atomic batch spanning the key space (and so, the shards).
	step := *n / 10
	if step < 1 {
		step = 1
	}
	var ops []jiffy.BatchOp[string, []byte]
	for i := 0; i < *n; i += step {
		ops = append(ops, jiffy.BatchOp[string, []byte]{Key: key(i), Val: []byte("batched")})
	}
	if err := c.BatchUpdate(ops); err != nil {
		log.Fatalf("netkv: batch: %v", err)
	}
	for _, op := range ops {
		acked[op.Key] = string(op.Val)
	}

	// A snapshot session: frozen reads plus a cursored scan of everything.
	snap, err := c.Snapshot()
	if err != nil {
		log.Fatalf("netkv: snapshot: %v", err)
	}
	if v, ok, err := snap.Get(key(0)); err != nil || !ok || string(v) != "batched" {
		log.Fatalf("netkv: snap get = %q/%v/%v, want batched", v, ok, err)
	}
	seen := 0
	sc := snap.ScanAll()
	for sc.Next() {
		seen++
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("netkv: scan: %v", err)
	}
	sc.Close()
	if err := snap.Close(); err != nil {
		log.Fatalf("netkv: snap close: %v", err)
	}
	if seen != *n {
		log.Fatalf("netkv: scanned %d entries, want %d", seen, *n)
	}

	if *record != "" {
		var sb strings.Builder
		keys := make([]string, 0, len(acked))
		for k := range acked {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s\t%s\n", k, acked[k])
		}
		if err := os.WriteFile(*record, []byte(sb.String()), 0o644); err != nil {
			log.Fatalf("netkv: record: %v", err)
		}
	}

	if rec != nil {
		// The client records its own spans (round trip, queue wait) into
		// its local recorder; report how many requests carried a trace ID
		// so smoke tests can assert propagation actually happened.
		traced := map[uint64]bool{}
		for _, sp := range rec.Snapshot() {
			if sp.Trace != 0 {
				traced[sp.Trace] = true
			}
		}
		fmt.Printf("netkv: traced %d requests end to end\n", len(traced))
	}
	fmt.Printf("netkv: ok (%d keys written, %d scanned at version %d)\n", *n, seen, snap.Version())
	os.Exit(0)
}

// verifyAcked asserts every key recorded by a -record run is present with
// its recorded value — the lost-ack check the failover smoke greps for.
func verifyAcked(c *client.Client[string, []byte], path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("netkv: verify: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	lost := 0
	for _, line := range lines {
		k, want, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		got, found, err := c.Get(k)
		if err != nil {
			log.Fatalf("netkv: verify get %s: %v", k, err)
		}
		if !found || string(got) != want {
			log.Printf("netkv: LOST acked key %s = %q (found=%v), want %q", k, got, found, want)
			lost++
		}
	}
	if lost > 0 {
		log.Fatalf("netkv: verify FAILED: %d of %d acked keys lost", lost, len(lines))
	}
	// A promoted replica must also accept new writes: probe one round trip.
	if err := c.Put("netkv:verify-probe", []byte("ok")); err != nil {
		log.Fatalf("netkv: verify probe put: %v", err)
	}
	if got, found, err := c.Get("netkv:verify-probe"); err != nil || !found || string(got) != "ok" {
		log.Fatalf("netkv: verify probe get = %q, %v, %v", got, found, err)
	}
	fmt.Printf("netkv: verify ok (%d acked keys intact, writes accepted)\n", len(lines))
}
