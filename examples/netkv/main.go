// Command netkv is a small client workload against a running jiffyd: it
// puts a block of keys, reads them back, applies an atomic cross-shard
// batch, and walks a snapshot session with a cursored scan, verifying
// every step. The CI server-smoke step runs it against a freshly started
// jiffyd and then asserts the server shuts down cleanly.
//
//	jiffyd -addr 127.0.0.1:7421 &
//	go run ./examples/netkv -addr 127.0.0.1:7421
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7420", "jiffyd address")
	n := flag.Int("n", 1000, "keys to write")
	conns := flag.Int("conns", 4, "client connections")
	flag.Parse()

	codec := durable.Codec[string, []byte]{Key: durable.StringEnc(), Value: durable.BytesEnc()}
	c, err := client.Dial(*addr, codec, client.Options{Conns: *conns})
	if err != nil {
		log.Fatalf("netkv: dial %s: %v", *addr, err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		log.Fatalf("netkv: ping: %v", err)
	}

	key := func(i int) string { return fmt.Sprintf("user:%06d", i) }

	// Point puts, concurrently pipelined through the pool.
	for i := 0; i < *n; i++ {
		if err := c.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatalf("netkv: put: %v", err)
		}
	}
	for i := 0; i < *n; i += 97 {
		v, ok, err := c.Get(key(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			log.Fatalf("netkv: get %s = %q/%v/%v, want v%d", key(i), v, ok, err, i)
		}
	}

	// One atomic batch spanning the key space (and so, the shards).
	step := *n / 10
	if step < 1 {
		step = 1
	}
	var ops []jiffy.BatchOp[string, []byte]
	for i := 0; i < *n; i += step {
		ops = append(ops, jiffy.BatchOp[string, []byte]{Key: key(i), Val: []byte("batched")})
	}
	if err := c.BatchUpdate(ops); err != nil {
		log.Fatalf("netkv: batch: %v", err)
	}

	// A snapshot session: frozen reads plus a cursored scan of everything.
	snap, err := c.Snapshot()
	if err != nil {
		log.Fatalf("netkv: snapshot: %v", err)
	}
	if v, ok, err := snap.Get(key(0)); err != nil || !ok || string(v) != "batched" {
		log.Fatalf("netkv: snap get = %q/%v/%v, want batched", v, ok, err)
	}
	seen := 0
	sc := snap.ScanAll()
	for sc.Next() {
		seen++
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("netkv: scan: %v", err)
	}
	sc.Close()
	if err := snap.Close(); err != nil {
		log.Fatalf("netkv: snap close: %v", err)
	}
	if seen != *n {
		log.Fatalf("netkv: scanned %d entries, want %d", seen, *n)
	}

	fmt.Printf("netkv: ok (%d keys written, %d scanned at version %d)\n", *n, seen, snap.Version())
	os.Exit(0)
}
