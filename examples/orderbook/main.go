// Orderbook: a price-ordered index under a bursty trading workload — the
// "batch updates" use case. Market-data ticks arrive as whole book deltas
// (dozens of price levels added, changed and removed at once) that must be
// applied atomically, while readers take best-bid/ask lookups and depth
// scans off consistent snapshots.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Level is one side of the book at one price (price keys ascending).
type Level struct {
	Qty  int64
	Side byte // 'B' bid, 'A' ask
}

const (
	midPrice = 50_000
	runFor   = 2 * time.Second
)

func main() {
	book := core.New[uint64, Level]()

	// Seed a plausible book: bids below mid, asks above.
	seed := core.NewBatch[uint64, Level](2000)
	for i := uint64(1); i <= 1000; i++ {
		seed.Put(midPrice-i, Level{Qty: int64(i%97 + 1), Side: 'B'})
		seed.Put(midPrice+i, Level{Qty: int64(i%89 + 1), Side: 'A'})
	}
	book.BatchUpdate(seed)

	var stop atomic.Bool
	var ticks, reads, torn atomic.Int64
	var wg sync.WaitGroup

	// Each tick atomically rewrites the fixed band [mid-16, mid+16): every
	// level it writes carries the tick's sequence number, so within any
	// consistent snapshot all surviving band levels must agree.
	const bandLo, bandHi = uint64(midPrice - 16), uint64(midPrice + 16)
	applyTick := func(rng *rand.Rand, seqNo int64) {
		b := core.NewBatch[uint64, Level](32)
		for p := bandLo; p < bandHi; p++ {
			side := byte('B')
			if p >= midPrice {
				side = 'A'
			}
			if rng.IntN(8) == 0 {
				b.Remove(p)
			} else {
				b.Put(p, Level{Qty: seqNo, Side: side})
			}
		}
		book.BatchUpdate(b)
		ticks.Add(1)
	}
	feedRng := rand.New(rand.NewPCG(1, 2))
	applyTick(feedRng, 0) // replace the seed band before readers start

	// Feed handler: one tick after another.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seqNo := int64(1); !stop.Load(); seqNo++ {
			applyTick(feedRng, seqNo)
		}
	}()

	// Depth readers: within one snapshot, every surviving level of the
	// band must carry the same tick number — a torn tick would be a
	// batch-atomicity violation.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap := book.Snapshot()
				var first int64 = -1
				ok := true
				snap.Range(bandLo, bandHi, func(p uint64, l Level) bool {
					if first == -1 {
						first = l.Qty
					} else if l.Qty != first {
						ok = false
						return false
					}
					return true
				})
				snap.Close()
				if !ok {
					torn.Add(1)
				}
				reads.Add(1)
			}
		}()
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	if torn.Load() > 0 {
		panic(fmt.Sprintf("observed %d torn ticks", torn.Load()))
	}
	fmt.Printf("ticks applied atomically: %d\n", ticks.Load())
	fmt.Printf("consistent depth reads:   %d\n", reads.Load())

	// Best bid / best ask off one final snapshot.
	snap := book.Snapshot()
	defer snap.Close()
	var bestBid, bestAsk uint64
	snap.All(func(p uint64, l Level) bool {
		if l.Side == 'B' {
			bestBid = p
		} else if bestAsk == 0 {
			bestAsk = p
		}
		return true
	})
	fmt.Printf("best bid %d / best ask %d (spread %d)\n", bestBid, bestAsk, bestAsk-bestBid)
}
