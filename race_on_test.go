//go:build race

package repro

// raceEnabled reports whether the race detector is instrumenting this test
// binary; the alloc-budget checks skip under it (instrumentation changes
// allocation behavior).
const raceEnabled = true
