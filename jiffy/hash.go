package jiffy

import (
	"cmp"
	"fmt"
	"math"
	"reflect"
)

// shardHash picks the 64-bit shard-routing hash for the common ordered key
// types. It deliberately uses different mixing constants than internal/
// core's 16-bit per-revision hash: were the two correlated, every key in a
// shard would share its low hash bits and the in-revision hash buckets
// would skew. The type switch runs once per Sharded map; the returned
// closures assert through any, which the compiler devirtualizes for the
// concrete K.
func shardHash[K cmp.Ordered]() func(K) uint64 {
	var zero K
	switch any(zero).(type) {
	case int:
		return func(k K) uint64 { return splitmix(uint64(any(k).(int))) }
	case int8:
		return func(k K) uint64 { return splitmix(uint64(any(k).(int8))) }
	case int16:
		return func(k K) uint64 { return splitmix(uint64(any(k).(int16))) }
	case int32:
		return func(k K) uint64 { return splitmix(uint64(any(k).(int32))) }
	case int64:
		return func(k K) uint64 { return splitmix(uint64(any(k).(int64))) }
	case uint:
		return func(k K) uint64 { return splitmix(uint64(any(k).(uint))) }
	case uint8:
		return func(k K) uint64 { return splitmix(uint64(any(k).(uint8))) }
	case uint16:
		return func(k K) uint64 { return splitmix(uint64(any(k).(uint16))) }
	case uint32:
		return func(k K) uint64 { return splitmix(uint64(any(k).(uint32))) }
	case uint64:
		return func(k K) uint64 { return splitmix(any(k).(uint64)) }
	case uintptr:
		return func(k K) uint64 { return splitmix(uint64(any(k).(uintptr))) }
	case float32:
		return func(k K) uint64 {
			return splitmix(uint64(math.Float32bits(any(k).(float32))))
		}
	case float64:
		return func(k K) uint64 {
			return splitmix(math.Float64bits(any(k).(float64)))
		}
	case string:
		return func(k K) uint64 { return fnv64(any(k).(string)) }
	default:
		// Defined key types (type ID uint64, type Name string, ...)
		// miss every concrete case above — a type switch matches
		// dynamic types exactly — yet are valid cmp.Ordered
		// instantiations. Dispatch once on the reflect kind so such
		// keys still distribute instead of silently all routing to
		// shard 0.
		switch reflect.TypeOf(zero).Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return func(k K) uint64 { return splitmix(uint64(reflect.ValueOf(k).Int())) }
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
			return func(k K) uint64 { return splitmix(reflect.ValueOf(k).Uint()) }
		case reflect.Float32, reflect.Float64:
			return func(k K) uint64 {
				return splitmix(math.Float64bits(reflect.ValueOf(k).Float()))
			}
		case reflect.String:
			return func(k K) uint64 { return fnv64(reflect.ValueOf(k).String()) }
		}
		// cmp.Ordered admits no other kinds. Fail loudly if one ever
		// slips through: a constant fallback hash would silently route
		// every key to shard 0, degrading Sharded to a single hot
		// shard with no signal.
		panic(fmt.Sprintf("jiffy: unsupported shard key kind %v", reflect.TypeOf(zero).Kind()))
	}
}

// splitmix is the splitmix64 finalizer, a strong 64-bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 is FNV-1a over the string bytes, for string keys.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
