package jiffy

import (
	"cmp"

	"repro/internal/core"
)

// Iterator is a pull-style cursor over one consistent view: Seek positions
// it, Next advances it, Key/Value read the current entry. All four views
// (Map, Snapshot, Sharded, ShardedSnapshot) hand one out through Iter.
//
// Iterators exist for bounded and early-exit scans: unlike Range/All,
// which materialize the walk behind a callback and hold a reclamation
// epoch pin for the whole scan, an iterator copies entries out in small
// chunks and pins the epoch only inside each refill — a consumer that
// processes one entry per second never stalls payload reclamation. The
// iterator's snapshot registration alone keeps its version readable.
//
// The usual loop:
//
//	it := m.Iter()
//	defer it.Close()
//	it.Seek(lo)
//	for it.Next() {
//		use(it.Key(), it.Value())
//	}
//
// A fresh iterator (no Seek) starts before the smallest key. Iterators
// are not safe for concurrent use; Close recycles their state. Key and
// Value are valid only after a Next that returned true. On a closed
// iterator Seek is a no-op and Next reports false — but the object may
// already be serving another scan (Close pools it), so treat use after
// Close as a bug, not a feature.
type Iterator[K cmp.Ordered, V any] interface {
	// Seek repositions the iterator just before the first entry with
	// key >= key; the following Next moves onto it.
	Seek(key K)
	// Next advances to the next entry and reports whether one exists.
	Next() bool
	// Key returns the current entry's key.
	Key() K
	// Value returns the current entry's value.
	Value() V
	// Close releases the iterator's pooled state and any snapshot it
	// owns. Using a closed iterator is a bug.
	Close()
}

// The core iterator and the sharded merge iterator both satisfy the
// public contract.
var (
	_ Iterator[int, int] = (*core.Iterator[int, int])(nil)
	_ Iterator[int, int] = (*shardedIter[int, int])(nil)
)

// Iter returns an iterator over a consistent snapshot of the map taken at
// call time. The snapshot is owned by the iterator and released by Close.
func (m *Map[K, V]) Iter() Iterator[K, V] { return m.m.Iter() }

// Iter returns an iterator over the snapshot. The snapshot must stay open
// while the iterator is in use; Close releases only the iterator.
func (s *Snapshot[K, V]) Iter() Iterator[K, V] { return s.s.Iter() }

// Iter returns an iterator over a consistent cross-shard snapshot taken
// at call time, yielding entries in globally ascending key order through
// the pooled loser-tree merge. The snapshot spans every shard and is
// owned by the iterator; Close releases it.
func (s *Sharded[K, V]) Iter() Iterator[K, V] {
	it := s.getShardedIter()
	it.ss = s.Snapshot()
	it.owned = true
	return it
}

// Iter returns an iterator over the sharded snapshot. The snapshot must
// stay open while the iterator is in use; Close releases only the
// iterator.
func (ss *ShardedSnapshot[K, V]) Iter() Iterator[K, V] {
	it := ss.s.getShardedIter()
	it.ss = ss
	return it
}

// getShardedIter takes a merge iterator from the frontend's pool.
func (s *Sharded[K, V]) getShardedIter() *shardedIter[K, V] {
	if it, _ := s.iterPool.Get().(*shardedIter[K, V]); it != nil {
		return it
	}
	return &shardedIter[K, V]{}
}

// shardedIter drives the same shard cursors and loser tree as
// ShardedSnapshot's merged scans, pull-style: every Next emits the tree's
// winner and replays its leaf. Long iterations escalate to per-shard
// prefetch exactly like the push-style merge (see mergeState.maybeEscalate).
type shardedIter[K cmp.Ordered, V any] struct {
	ss    *ShardedSnapshot[K, V]
	owned bool // ss was created by Sharded.Iter and is closed on Close

	st     *mergeState[K, V]
	primed bool

	lo    K
	hasLo bool
}

// Seek repositions the iterator just before the first entry with key >=
// key, re-priming every shard cursor there. Seeking a closed iterator is
// a no-op.
func (it *shardedIter[K, V]) Seek(key K) {
	if it.ss == nil {
		return // closed
	}
	it.lo = key
	it.hasLo = true
	if it.st != nil {
		it.st.release()
	}
	it.primed = false
}

// prime binds the merge state to the snapshot's sub-snapshots, fills every
// cursor at the current lower bound and builds the loser tree.
func (it *shardedIter[K, V]) prime() {
	if it.st == nil {
		st, _ := it.ss.s.scanPool.Get().(*mergeState[K, V])
		if st == nil {
			st = &mergeState[K, V]{}
		}
		it.st = st
	}
	var lo *K
	if it.hasLo {
		lo = &it.lo
	}
	it.st.reset(it.ss.subs, lo, nil)
	it.st.build()
	it.primed = true
}

// Next advances to the next entry in globally ascending key order. On a
// closed iterator Next reports false.
func (it *shardedIter[K, V]) Next() bool {
	if it.ss == nil {
		return false // closed
	}
	if !it.primed {
		it.prime()
		st := it.st
		w := st.tree[0]
		if st.curs[w].empty() {
			return false
		}
		st.maybeEscalate()
		return true
	}
	st := it.st
	w := st.tree[0]
	c := &st.curs[w]
	if c.empty() {
		return false
	}
	c.pos++
	if c.empty() {
		c.fill(nil, nil)
	}
	st.replay(w)
	w = st.tree[0]
	if st.curs[w].empty() {
		return false
	}
	st.maybeEscalate()
	return true
}

// Key returns the current entry's key.
func (it *shardedIter[K, V]) Key() K {
	c := &it.st.curs[it.st.tree[0]]
	return c.keys[c.pos]
}

// Value returns the current entry's value.
func (it *shardedIter[K, V]) Value() V {
	c := &it.st.curs[it.st.tree[0]]
	return c.vals[c.pos]
}

// Close releases the merge state back to the scan pool, the owned
// snapshot (Sharded.Iter) and the iterator itself. A second Close is a
// no-op.
func (it *shardedIter[K, V]) Close() {
	if it.ss == nil {
		return // already closed
	}
	s := it.ss.s
	if it.st != nil {
		it.st.release()
		s.scanPool.Put(it.st)
		it.st = nil
	}
	if it.owned {
		it.ss.Close()
	}
	it.ss = nil
	it.owned = false
	it.primed = false
	it.hasLo = false
	s.iterPool.Put(it)
}
