package jiffy

import "repro/internal/core"

// Stats is a point-in-time structural summary of a map: how many nodes the
// index holds, how big revisions are, how long revision lists grow. It is
// gathered by an O(n) walk concurrent with other operations, so the
// numbers are a consistent-enough sample, not a snapshot — intended for
// diagnostics and capacity monitoring, not hot paths. The fields back the
// structural claims of EXPERIMENTS.md §4.3 (revision sizes settling near
// ~35 under write-heavy load vs ~130 under read-mostly load; revision
// lists staying 2-4 long).
type Stats struct {
	Nodes           int     // base-level nodes (including each shard's base node)
	Entries         int     // entries in head revisions (newest state size)
	Revisions       int     // revisions reachable from heads (all branches)
	MaxRevisionList int     // longest revision list observed
	AvgRevisionSize float64 // mean entries per head revision
	MaxRevisionSize int
	MinRevisionSize int
	PendingOps      int // head revisions awaiting a final version
	IndexLevels     int // height of the skip-list index lanes

	// Payload-recycling diagnostics: allocations served by the free pools
	// vs the heap, cumulative buffer bytes returned to the pools, and the
	// current global reclamation epoch (see DESIGN.md §6). The hit rate is
	// PoolHits / (PoolHits + PoolMisses).
	PoolHits      uint64
	PoolMisses    uint64
	RecycledBytes uint64
	Epoch         uint64

	// Version-seek telemetry (DESIGN.md §7): roughly one in 64 snapshot
	// point reads is sampled, recording how many revision-chain hops its
	// boundary seek took. The mean sampled seek depth is
	// SeekSteps / SeekSamples; with the back-skip pointers it stays
	// logarithmic in the chain length (MaxRevisionList) instead of
	// tracking it linearly.
	SeekSamples uint64
	SeekSteps   uint64
}

func fromCore(s core.Stats) Stats {
	return Stats{
		Nodes:           s.Nodes,
		Entries:         s.Entries,
		Revisions:       s.Revisions,
		MaxRevisionList: s.MaxRevisionList,
		AvgRevisionSize: s.AvgRevisionSize,
		MaxRevisionSize: s.MaxRevisionSize,
		MinRevisionSize: s.MinRevisionSize,
		PendingOps:      s.PendingOps,
		IndexLevels:     s.IndexLevels,
		PoolHits:        s.PoolHits,
		PoolMisses:      s.PoolMisses,
		RecycledBytes:   s.RecycledBytes,
		Epoch:           s.Epoch,
		SeekSamples:     s.SeekSamples,
		SeekSteps:       s.SeekSteps,
	}
}

// Stats walks the map and returns its structural summary.
func (m *Map[K, V]) Stats() Stats { return fromCore(m.m.Stats()) }

// Stats walks every shard and returns an aggregated summary: counters
// (Nodes, Entries, Revisions, PendingOps) are summed across shards,
// extrema (MaxRevisionList, MaxRevisionSize, MinRevisionSize, IndexLevels)
// are the worst shard's, and AvgRevisionSize is the entry-weighted mean.
func (s *Sharded[K, V]) Stats() Stats {
	var agg Stats
	agg.MinRevisionSize = int(^uint(0) >> 1)
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.Nodes += st.Nodes
		agg.Entries += st.Entries
		agg.Revisions += st.Revisions
		agg.PendingOps += st.PendingOps
		agg.MaxRevisionList = max(agg.MaxRevisionList, st.MaxRevisionList)
		agg.MaxRevisionSize = max(agg.MaxRevisionSize, st.MaxRevisionSize)
		agg.MinRevisionSize = min(agg.MinRevisionSize, st.MinRevisionSize)
		agg.IndexLevels = max(agg.IndexLevels, st.IndexLevels)
		agg.PoolHits += st.PoolHits
		agg.PoolMisses += st.PoolMisses
		agg.RecycledBytes += st.RecycledBytes
		agg.Epoch = max(agg.Epoch, st.Epoch)
		agg.SeekSamples += st.SeekSamples
		agg.SeekSteps += st.SeekSteps
	}
	if agg.Nodes > 0 {
		agg.AvgRevisionSize = float64(agg.Entries) / float64(agg.Nodes)
	}
	if agg.MinRevisionSize == int(^uint(0)>>1) {
		agg.MinRevisionSize = 0
	}
	return agg
}
