package jiffy

import (
	"cmp"
	"sync"

	"repro/internal/core"
	"repro/internal/tsc"
)

// Sharded is a hash-partitioned frontend over N independent Jiffy maps. It
// keeps Jiffy's whole contract — linearizable point operations, atomic
// multi-key batch updates, consistent snapshots and ordered range scans —
// while spreading structurally conflicting work (node splits and merges,
// revision-list CASes, index-lane maintenance) across shards so that write
// throughput scales with cores.
//
// Three mechanisms make the composition sound:
//
//   - All shards share one version clock, so one clock read defines a
//     consistent global cut across every shard.
//   - Snapshot pin-registers a snapshot on every shard and only then reads
//     the shared clock to fix one cut version published to all of them
//     (core.MultiSnapshot); a still-pinned registration holds every
//     revision at or above its pin floor, and the cut is >= every floor,
//     so the state at the cut can never be collected out from under the
//     reader. The result is one linearizable view spanning all shards.
//   - BatchUpdate partitions the batch by shard and applies the per-shard
//     sub-batches through core.MultiBatchUpdate's two-phase visible/commit
//     protocol: every sub-batch's revisions are installed pending first,
//     then one shared version number commits them all at a single
//     linearization point. Readers that encounter a pending revision help
//     both phases, so cross-shard batches are non-blocking end to end.
//
// Range scans merge the per-shard snapshot streams through a k-way merge,
// yielding globally ascending key order even though keys are hash-routed.
type Sharded[K cmp.Ordered, V any] struct {
	shards []*core.Map[K, V]
	hash   func(K) uint64

	// scanPool recycles merged-scan states (cursors, chunk buffers and the
	// loser tree) across range scans (see ShardedSnapshot.merge); iterPool
	// recycles the pull-style merge iterators layered on top of them
	// (iterator.go).
	scanPool sync.Pool
	iterPool sync.Pool
}

// NewSharded returns an empty Sharded map with the given number of shards
// (values < 1 are raised to 1). Pass no options for the paper's defaults.
// A one-shard Sharded map behaves exactly like a Map with routing overhead;
// shard counts near GOMAXPROCS are the sweet spot for write-heavy loads.
func NewSharded[K cmp.Ordered, V any](shards int, opts ...Options[K]) *Sharded[K, V] {
	if shards < 1 {
		shards = 1
	}
	var o Options[K]
	if len(opts) > 0 {
		o = opts[0]
	}
	co := o.coreOptions()
	// One clock shared by every shard (rebased above ClockStart when the
	// durability layer recovers an existing store, or replaced outright
	// by Options.Clock).
	if co.Clock == nil {
		co.Clock = tsc.NewMonotonicAt(o.ClockStart)
	}
	s := &Sharded[K, V]{
		shards: make([]*core.Map[K, V], shards),
		hash:   shardHash[K](),
	}
	for i := range s.shards {
		s.shards[i] = core.New[K, V](co)
	}
	return s
}

// NumShards returns the number of shards.
func (s *Sharded[K, V]) NumShards() int { return len(s.shards) }

// ShardOf reports the shard index key routes to: deterministic for a given
// key type and shard count, in [0, NumShards()). Diagnostics and the
// durability layer (which keeps one write-ahead log per shard) use it;
// ordinary operations route automatically.
func (s *Sharded[K, V]) ShardOf(key K) int { return s.shardOf(key) }

// shardOf routes key to its shard index.
func (s *Sharded[K, V]) shardOf(key K) int {
	return int(s.hash(key) % uint64(len(s.shards)))
}

// Get returns the most recent value stored for key.
func (s *Sharded[K, V]) Get(key K) (V, bool) {
	return s.shards[s.shardOf(key)].Get(key)
}

// Put sets the value for key, overwriting any previous value.
func (s *Sharded[K, V]) Put(key K, val V) {
	s.shards[s.shardOf(key)].Put(key, val)
}

// PutVersioned is Put, but additionally reports the version number the
// update committed at on the shared clock (see Map.PutVersioned).
func (s *Sharded[K, V]) PutVersioned(key K, val V) int64 {
	return s.shards[s.shardOf(key)].PutVersioned(key, val)
}

// Remove deletes key and reports whether it was present.
func (s *Sharded[K, V]) Remove(key K) bool {
	return s.shards[s.shardOf(key)].Remove(key)
}

// RemoveVersioned is Remove, but additionally reports the version number
// the remove committed at on the shared clock (zero when key was absent).
func (s *Sharded[K, V]) RemoveVersioned(key K) (int64, bool) {
	return s.shards[s.shardOf(key)].RemoveVersioned(key)
}

// Len counts the entries visible in an ephemeral snapshot. O(n); intended
// for tests and diagnostics.
func (s *Sharded[K, V]) Len() int {
	snap := s.Snapshot()
	defer snap.Close()
	n := 0
	snap.All(func(K, V) bool { n++; return true })
	return n
}

// BatchUpdate applies every operation in b in one atomic, linearizable
// step, even when the batch's keys span multiple shards: no reader or
// snapshot — on any shard — can observe the batch half-applied. If a key
// appears more than once the last operation wins. The batch may be reused
// afterwards.
//
// Batches that land entirely in one shard take that shard's ordinary batch
// path; cross-shard batches run the two-phase visible/commit protocol of
// core.MultiBatchUpdate over the involved shards only.
func (s *Sharded[K, V]) BatchUpdate(b *Batch[K, V]) {
	s.BatchUpdateVersioned(b)
}

// BatchUpdateVersioned is BatchUpdate, but additionally reports the version
// number the whole (possibly cross-shard) batch committed at — its single
// linearization point on the shared clock. An empty batch performs no
// update and reports version zero.
func (s *Sharded[K, V]) BatchUpdateVersioned(b *Batch[K, V]) int64 {
	if len(b.ops) == 0 {
		return 0
	}
	if len(s.shards) == 1 {
		return s.shards[0].BatchUpdateVersioned(b.core())
	}
	// Partition by shard, preserving op order so last-wins semantics
	// survive (equal keys always route to the same shard). Routing is
	// computed once per op and counted first, so each sub-batch is
	// allocated at its exact size instead of shard-count-fold over.
	route := make([]int32, len(b.ops))
	counts := make([]int, len(s.shards))
	for j, op := range b.ops {
		i := s.shardOf(op.Key)
		route[j] = int32(i)
		counts[i]++
	}
	subs := make([]*core.Batch[K, V], len(s.shards))
	for j, op := range b.ops {
		i := route[j]
		if subs[i] == nil {
			subs[i] = core.NewBatch[K, V](counts[i])
		}
		if op.Remove {
			subs[i].Remove(op.Key)
		} else {
			subs[i].Put(op.Key, op.Val)
		}
	}
	parts := make([]core.MapBatch[K, V], 0, len(s.shards))
	for i, sub := range subs {
		if sub != nil {
			parts = append(parts, core.MapBatch[K, V]{Map: s.shards[i], Batch: sub})
		}
	}
	return core.MultiBatchUpdateVersioned(parts...)
}

// Snapshot registers and returns a consistent snapshot spanning every
// shard. The cost is O(shards): one pinned registration per shard plus one
// shared clock read that fixes the global cut (core.MultiSnapshot; because
// the clock is shared, "final version <= cut" selects one consistent
// prefix of updates on every shard). Close it when done.
func (s *Sharded[K, V]) Snapshot() *ShardedSnapshot[K, V] {
	subs := core.MultiSnapshot(s.shards...)
	return &ShardedSnapshot[K, V]{s: s, subs: subs, ver: subs[0].Version()}
}

// Range calls fn for every entry with lo <= key < hi, in globally
// ascending key order, on an ephemeral snapshot, until fn returns false.
func (s *Sharded[K, V]) Range(lo, hi K, fn func(key K, val V) bool) {
	snap := s.Snapshot()
	defer snap.Close()
	snap.Range(lo, hi, fn)
}

// RangeFrom calls fn for every entry with key >= lo, ascending, on an
// ephemeral snapshot, until fn returns false.
func (s *Sharded[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	snap := s.Snapshot()
	defer snap.Close()
	snap.RangeFrom(lo, fn)
}

// All calls fn for every entry, ascending, on an ephemeral snapshot, until
// fn returns false.
func (s *Sharded[K, V]) All(fn func(key K, val V) bool) {
	snap := s.Snapshot()
	defer snap.Close()
	snap.All(fn)
}
