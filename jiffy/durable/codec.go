package durable

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
)

// Enc encodes and decodes one type to and from bytes. Append writes v's
// encoding onto dst (append-style, so encoders can reuse buffers); Decode
// parses an encoding produced by Append. Decode must not retain src — the
// durability layer reuses the buffer between calls — so reference types
// (like byte slices) must copy.
type Enc[T any] struct {
	Append func(dst []byte, v T) []byte
	Decode func(src []byte) (T, error)
}

// Codec pairs the key and value encodings of one durable map. The encoding
// must be stable across process runs: checkpoint files and log records
// written by one run are decoded by the next.
type Codec[K cmp.Ordered, V any] struct {
	Key   Enc[K]
	Value Enc[V]
}

func (c Codec[K, V]) validate() error {
	if c.Key.Append == nil || c.Key.Decode == nil || c.Value.Append == nil || c.Value.Decode == nil {
		return errors.New("durable: Codec must provide Append and Decode for both key and value")
	}
	return nil
}

// StringEnc encodes strings as their raw bytes.
func StringEnc() Enc[string] {
	return Enc[string]{
		Append: func(dst []byte, v string) []byte { return append(dst, v...) },
		Decode: func(src []byte) (string, error) { return string(src), nil },
	}
}

// BytesEnc encodes byte slices verbatim (Decode copies, as required).
func BytesEnc() Enc[[]byte] {
	return Enc[[]byte]{
		Append: func(dst []byte, v []byte) []byte { return append(dst, v...) },
		Decode: func(src []byte) ([]byte, error) { return append([]byte(nil), src...), nil },
	}
}

// Uint64Enc encodes uint64 little endian, fixed 8 bytes.
func Uint64Enc() Enc[uint64] {
	return Enc[uint64]{
		Append: func(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) },
		Decode: func(src []byte) (uint64, error) {
			if len(src) != 8 {
				return 0, fmt.Errorf("durable: uint64 encoding is %d bytes, want 8", len(src))
			}
			return binary.LittleEndian.Uint64(src), nil
		},
	}
}

// Int64Enc encodes int64 little endian, fixed 8 bytes.
func Int64Enc() Enc[int64] {
	u := Uint64Enc()
	return Enc[int64]{
		Append: func(dst []byte, v int64) []byte { return u.Append(dst, uint64(v)) },
		Decode: func(src []byte) (int64, error) {
			v, err := u.Decode(src)
			return int64(v), err
		},
	}
}

// Uint32Enc encodes uint32 little endian, fixed 4 bytes.
func Uint32Enc() Enc[uint32] {
	return Enc[uint32]{
		Append: func(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) },
		Decode: func(src []byte) (uint32, error) {
			if len(src) != 4 {
				return 0, fmt.Errorf("durable: uint32 encoding is %d bytes, want 4", len(src))
			}
			return binary.LittleEndian.Uint32(src), nil
		},
	}
}

// IntEnc encodes int as int64 (fixed 8 bytes), portable across word sizes.
func IntEnc() Enc[int] {
	i := Int64Enc()
	return Enc[int]{
		Append: func(dst []byte, v int) []byte { return i.Append(dst, int64(v)) },
		Decode: func(src []byte) (int, error) {
			v, err := i.Decode(src)
			return int(v), err
		},
	}
}
