package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/jiffy"
)

func u64Codec() Codec[uint64, uint64] {
	return Codec[uint64, uint64]{Key: Uint64Enc(), Value: Uint64Enc()}
}

func strCodec() Codec[string, string] {
	return Codec[string, string]{Key: StringEnc(), Value: StringEnc()}
}

// testOpts keeps unit tests fast: small segments force rotation, NoSync
// skips media flushes (the crash tests operate on the written files, which
// OS-level writes already make visible).
func testOpts() Options[uint64] {
	return Options[uint64]{SegmentBytes: 1 << 12, NoSync: true}
}

func TestMapRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	oracle := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		k := i % 97
		if i%7 == 3 {
			if _, err := d.Remove(k); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			delete(oracle, k)
			continue
		}
		if err := d.Put(k, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
		oracle[k] = i
	}
	b := jiffy.NewBatch[uint64, uint64](3).Put(1000, 1).Put(2000, 2).Remove(1)
	if err := d.BatchUpdate(b); err != nil {
		t.Fatalf("BatchUpdate: %v", err)
	}
	oracle[1000], oracle[2000] = 1, 2
	delete(oracle, 1)
	d.Close()

	r, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	checkOracle(t, r.All, r.Len(), oracle)
}

func TestMapCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	oracle := map[uint64]uint64{}
	for i := uint64(0); i < 300; i++ {
		d.Put(i, i*10)
		oracle[i] = i * 10
	}
	ver, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if ver <= 0 {
		t.Fatalf("checkpoint version = %d", ver)
	}
	if n := d.wal.SealedSegments(); n != 0 {
		t.Fatalf("checkpoint left %d sealed segments", n)
	}
	// Tail after the checkpoint, including removes of checkpointed keys.
	for i := uint64(0); i < 100; i++ {
		d.Put(i+1000, i)
		oracle[i+1000] = i
	}
	for i := uint64(0); i < 50; i++ {
		d.Remove(i * 2)
		delete(oracle, i*2)
	}
	d.Close()

	r, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	checkOracle(t, r.All, r.Len(), oracle)

	// A second checkpoint after recovery must supersede the first.
	ver2, err := r.Checkpoint()
	if err != nil {
		t.Fatalf("post-recovery Checkpoint: %v", err)
	}
	if ver2 <= ver {
		t.Fatalf("post-recovery checkpoint version %d <= pre-crash %d", ver2, ver)
	}
}

func TestMapTornFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	oracle := map[uint64]uint64{}
	for i := uint64(0); i < 64; i++ {
		d.Put(i, i)
		oracle[i] = i
	}
	d.Close()

	// Simulate a crash mid-append: a partial record (plausible length
	// prefix, missing body) at the end of the newest segment.
	appendGarbage(t, filepath.Join(dir, "wal"))

	r, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer r.Close()
	checkOracle(t, r.All, r.Len(), oracle)
}

// appendGarbage writes a partial record to the newest WAL segment in dir.
func appendGarbage(t *testing.T, walDir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s: %v", walDir, err)
	}
	newest := names[len(names)-1]
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Length says 64 bytes, but only 5 arrive before the "crash".
	if _, err := f.Write([]byte{64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestVersionsMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	v1 := d.m.PutVersioned(1, 1)
	d.Put(2, 2)
	d.Close()

	r, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	v2 := r.m.PutVersioned(3, 3)
	if v2 <= v1 {
		t.Fatalf("post-restart version %d <= pre-restart %d: clock not rebased", v2, v1)
	}
}

func TestShardedRecoverAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenSharded(dir, 4, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	oracle := map[uint64]uint64{}
	for i := uint64(0); i < 400; i++ {
		d.Put(i, i+1)
		oracle[i] = i + 1
	}
	// Cross-shard batch: one log record, atomic across the crash.
	b := jiffy.NewBatch[uint64, uint64](8)
	for i := uint64(0); i < 8; i++ {
		b.Put(i*1000+500, 42)
		oracle[i*1000+500] = 42
	}
	if err := d.BatchUpdate(b); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := uint64(0); i < 100; i++ {
		d.Remove(i * 3)
		delete(oracle, i*3)
	}
	d.Close()

	// Recover with a different shard count: keys re-route by hash.
	r, err := OpenSharded(dir, 2, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("reopen with 2 shards: %v", err)
	}
	checkOracle(t, r.All, r.Len(), oracle)
	r.Close()

	// And back to a larger count, reading the leftover shard dirs.
	r2, err := OpenSharded(dir, 6, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("reopen with 6 shards: %v", err)
	}
	defer r2.Close()
	checkOracle(t, r2.All, r2.Len(), oracle)
}

func TestStringCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, strCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	d.Put("alpha", "a")
	d.Put("", "empty key is legal")
	d.Put("beta", "b")
	d.Remove("alpha")
	d.Close()

	r, err := Open(dir, strCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Get(""); !ok || v != "empty key is legal" {
		t.Fatalf("empty key: %q %v", v, ok)
	}
	if _, ok := r.Get("alpha"); ok {
		t.Fatal("removed key resurrected")
	}
	if v, ok := r.Get("beta"); !ok || v != "b" {
		t.Fatalf("beta: %q %v", v, ok)
	}
}

func TestOpenRejectsBadCodec(t *testing.T) {
	if _, err := Open(t.TempDir(), Codec[uint64, uint64]{}); err == nil {
		t.Fatal("Open accepted a nil codec")
	}
}

func TestEmptyBatchLogsNothing(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.BatchUpdate(jiffy.NewBatch[uint64, uint64](0)); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if ok, err := d.Remove(12345); ok || err != nil {
		t.Fatalf("absent remove: %v %v", ok, err)
	}
}

// checkOracle compares a recovered view against the expected contents.
func checkOracle(t *testing.T, all func(func(uint64, uint64) bool), gotLen int, oracle map[uint64]uint64) {
	t.Helper()
	if gotLen != len(oracle) {
		t.Fatalf("recovered %d entries, want %d", gotLen, len(oracle))
	}
	all(func(k, v uint64) bool {
		want, ok := oracle[k]
		if !ok {
			t.Fatalf("recovered unexpected key %d=%d", k, v)
		}
		if v != want {
			t.Fatalf("recovered %d=%d, want %d", k, v, want)
		}
		return true
	})
}

func TestMapLenAndSnapshotLen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := uint64(0); i < 25; i++ {
		d.Put(i, i)
	}
	snap := d.Snapshot()
	defer snap.Close()
	d.Put(100, 100)
	if n := snap.Len(); n != 25 {
		t.Fatalf("snapshot Len = %d, want 25 (snapshot must exclude later put)", n)
	}
	if n := d.Len(); n != 26 {
		t.Fatalf("map Len = %d, want 26", n)
	}
	_ = fmt.Sprint(d.Stats()) // exercised: delegation compiles and runs
}
