package durable

import (
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The crash-recovery property: with writers running, the log is "killed"
// at an arbitrary point — the crash image is a byte-level copy of the
// store taken concurrently with appends, so it ends at an arbitrary record
// boundary or mid-record, exactly like a power cut — and recovery from the
// image must reconstruct every acknowledged operation. Per key the oracle
// allows the states after any per-key op prefix that includes all
// operations acknowledged before the copy began (later ops raced the copy
// and may or may not have reached the image; earlier ones must have).
//
// Writers use disjoint key ranges so each key's operation history is
// sequential, which is what makes the per-key prefix check sound.

type histOp struct {
	remove bool
	val    uint64
	preCut bool // acknowledged before the crash copy began
}

type crashWriter struct {
	base uint64
	keys uint64
	hist map[uint64][]histOp
}

func runCrashRound(t *testing.T, shards int, tearTail bool, seed uint64) {
	t.Helper()
	dir := t.TempDir()
	opts := Options[uint64]{SegmentBytes: 1 << 11, NoSync: true}

	type store interface {
		Put(uint64, uint64) error
		Remove(uint64) (bool, error)
		Get(uint64) (uint64, bool)
		All(func(uint64, uint64) bool)
		Close() error
	}
	open := func(d string) store {
		t.Helper()
		if shards > 1 {
			s, err := OpenSharded(d, shards, u64Codec(), opts)
			if err != nil {
				t.Fatalf("OpenSharded(%s): %v", d, err)
			}
			return s
		}
		m, err := Open(d, u64Codec(), opts)
		if err != nil {
			t.Fatalf("Open(%s): %v", d, err)
		}
		return m
	}
	d := open(dir)

	const writers = 3
	const keysPer = 64
	var stop, cutStarted atomic.Bool
	var wg sync.WaitGroup
	ws := make([]*crashWriter, writers)
	for g := 0; g < writers; g++ {
		w := &crashWriter{base: uint64(g) * 100000, keys: keysPer, hist: map[uint64][]histOp{}}
		ws[g] = w
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(g)))
			for i := uint64(1); !stop.Load(); i++ {
				k := w.base + rng.Uint64N(w.keys)
				if rng.IntN(4) == 0 {
					w.hist[k] = append(w.hist[k], histOp{remove: true})
					if _, err := d.Remove(k); err != nil {
						t.Errorf("Remove: %v", err)
						return
					}
				} else {
					w.hist[k] = append(w.hist[k], histOp{val: i})
					if err := d.Put(k, i); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
				// Acknowledged now; pre-cut if the copy has not begun.
				h := w.hist[k]
				h[len(h)-1].preCut = !cutStarted.Load()
			}
		}(g)
	}

	// Let the writers build history, then take the crash image while they
	// are still appending.
	time.Sleep(time.Duration(30+seed%40) * time.Millisecond)
	cutStarted.Store(true)
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)
	stop.Store(true)
	wg.Wait()
	d.Close()

	if tearTail {
		// Additionally tear the image's newest record mid-record.
		if shards > 1 {
			appendGarbage(t, shardWALDir(crashDir, 0))
		} else {
			appendGarbage(t, filepath.Join(crashDir, "wal"))
		}
	}

	r := open(crashDir)
	defer r.Close()

	recovered := map[uint64]uint64{}
	r.All(func(k, v uint64) bool { recovered[k] = v; return true })

	checked := 0
	for _, w := range ws {
		for k, h := range w.hist {
			got, ok := recovered[k]
			delete(recovered, k)
			if !keyStateAllowed(h, got, ok) {
				t.Fatalf("key %d: recovered (%d,%v) matches no allowed prefix of %d ops (shards=%d tear=%v)",
					k, got, ok, len(h), shards, tearTail)
			}
			checked++
		}
	}
	for k, v := range recovered {
		t.Fatalf("recovered unknown key %d=%d", k, v)
	}
	if checked == 0 {
		t.Fatal("no keys written; round proved nothing")
	}
}

// keyStateAllowed reports whether (got, ok) equals the state after some
// prefix of h that contains every pre-cut-acknowledged op.
func keyStateAllowed(h []histOp, got uint64, ok bool) bool {
	minLen := 0
	for i, op := range h {
		if op.preCut {
			minLen = i + 1
		}
	}
	var val uint64
	present := false
	match := func() bool {
		if present != ok {
			return false
		}
		return !present || val == got
	}
	if minLen == 0 && match() {
		return true
	}
	for i, op := range h {
		if op.remove {
			present = false
		} else {
			present, val = true, op.val
		}
		if i+1 >= minLen && match() {
			return true
		}
	}
	return false
}

// copyTree copies src into dst byte-wise, tolerating files that grow while
// being read — the copy of a growing segment is a prefix, which is exactly
// a crash image.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.OpenFile(target, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatalf("copyTree: %v", err)
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		runCrashRound(t, 1, false, seed)
	}
	// Once with the final record torn mid-record, as the acceptance
	// criterion demands.
	runCrashRound(t, 1, true, 7)
}

func TestCrashRecoveryPropertySharded(t *testing.T) {
	runCrashRound(t, 4, false, 11)
	runCrashRound(t, 4, true, 13)
}

// A checkpoint taken under concurrent write load must complete without
// blocking writers — they keep committing while the checkpoint streams —
// and must truncate the log segments it covers.
func TestCheckpointUnderLoadNonBlockingAndTruncates(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), Options[uint64]{SegmentBytes: 1 << 11, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Prefill through the in-memory map only (no log records): makes the
	// checkpoint stream long enough to observe writer progress during it,
	// and doubles as a check that a checkpoint captures state even when
	// the log never saw it.
	for i := uint64(0); i < 20000; i++ {
		d.m.PutVersioned(i, i)
	}

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); !stop.Load(); i++ {
				if err := d.Put(uint64(g)*1_000_000+i%512, i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				ops.Add(1)
			}
		}(g)
	}
	// Let the log grow some sealed segments.
	for d.wal.SealedSegments() < 3 && !t.Failed() {
		time.Sleep(time.Millisecond)
	}

	// A single checkpoint can finish inside one scheduler quantum on a
	// one-CPU box, so "no writer ran during it" does not imply blocking.
	// Checkpoint repeatedly until writers have demonstrably progressed
	// during checkpointing; if the checkpoint actually blocked writers,
	// no amount of repetition would let them through and the deadline
	// fails the test.
	before := ops.Load()
	deadline := time.Now().Add(5 * time.Second)
	ckpts := 0
	for (ckpts < 3 || ops.Load() == before) && time.Now().Before(deadline) {
		ver, err := d.Checkpoint()
		if err != nil {
			t.Fatalf("Checkpoint under load: %v", err)
		}
		if ver <= 0 {
			t.Fatalf("checkpoint version %d", ver)
		}
		ckpts++
	}
	if during := ops.Load() - before; during == 0 {
		t.Fatalf("writers made no progress across %d checkpoints: checkpointing blocks writers", ckpts)
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent checkpoint truncates everything: the log drains.
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := d.wal.SealedSegments(); n != 0 {
		t.Fatalf("%d sealed segments survive a quiescent checkpoint", n)
	}
	d.Close()

	// And the store still recovers to the live state.
	live := map[uint64]uint64{}
	d.All(func(k, v uint64) bool { live[k] = v; return true })
	r, err := Open(dir, u64Codec(), Options[uint64]{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	checkOracle(t, r.All, r.Len(), live)
}
