package durable

import (
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkDurable_Put measures the durably logged update path. The
// "nosync" variant isolates the logging machinery (encode, group commit,
// file write); the "sync" variant adds the media flush, whose cost group
// commit amortizes across concurrent committers (compare the parallel
// numbers against sequential ones).
func BenchmarkDurable_Put(b *testing.B) {
	for _, mode := range []struct {
		name   string
		nosync bool
	}{{"nosync", true}, {"sync", false}} {
		b.Run(mode.name, func(b *testing.B) {
			d, err := Open(b.TempDir(), u64Codec(), Options[uint64]{NoSync: mode.nosync})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			var seq atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					if err := d.Put(i%(1<<16), i); err != nil {
						b.Error(err) // Fatal is not legal off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// BenchmarkMem_DurableAppend measures the allocation profile of the durable
// append path (encode + group commit + file write, fsync elided) — the
// BenchmarkMem_* family's durable member; see bench_test.go at the repo
// root for the in-memory members.
func BenchmarkMem_DurableAppend(b *testing.B) {
	d, err := Open(b.TempDir(), u64Codec(), Options[uint64]{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(uint64(i)%(1<<16), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurable_CheckpointWhileWriting measures the tentpole scenario:
// checkpoints streamed off O(1) snapshots while writers keep committing.
// Each iteration takes one checkpoint of a ~100k-entry store under
// concurrent write load; the reported writer-ops/checkpoint metric shows
// the writers were never stalled.
func BenchmarkDurable_CheckpointWhileWriting(b *testing.B) {
	d, err := Open(b.TempDir(), u64Codec(), Options[uint64]{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	const entries = 100_000
	for i := uint64(0); i < entries; i++ {
		d.m.PutVersioned(i, i) // prefill the index; no need to log it
	}

	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); !stop.Load(); i++ {
				if err := d.Put(uint64(g)<<32|i%entries, i); err != nil {
					b.Error(err)
					return
				}
				ops.Add(1)
			}
		}()
	}

	b.ResetTimer()
	start := ops.Load()
	for i := 0; i < b.N; i++ {
		if _, err := d.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ops.Load()-start)/float64(b.N), "writer-ops/checkpoint")
	stop.Store(true)
	wg.Wait()
}
