package durable

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/jiffy"
)

// Fencing-epoch history tests: the EPOCH file is what makes failover
// safe, so its invariants — implicit first epoch, monotone advance,
// persistence across reopen and across the primary→replica demote — get
// direct coverage here.

func epochCodec() Codec[string, string] {
	return Codec[string, string]{Key: StringEnc(), Value: StringEnc()}
}

// TestEpochImplicitFirst: every store is born into epoch 1 at start 0
// with an empty history — no EPOCH file is written until a promote.
func TestEpochImplicitFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 2, epochCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer s.Close()
	if e := s.Epoch(); e != 1 {
		t.Fatalf("fresh store epoch %d, want 1", e)
	}
	if st := s.EpochStart(); st != 0 {
		t.Fatalf("fresh store epoch start %d, want 0", st)
	}
	if b := s.EpochBoundaryAbove(1); b != math.MaxInt64 {
		t.Fatalf("boundaryAbove(1) %d on an empty history, want MaxInt64", b)
	}
	if _, err := os.Stat(filepath.Join(dir, EpochFile)); !os.IsNotExist(err) {
		t.Fatalf("EPOCH file exists before any promote (stat err %v)", err)
	}
}

// TestEpochPromotePersists: PromoteAt records (epoch, watermark) in the
// history, and both the epoch and the boundary survive close/reopen.
func TestEpochPromotePersists(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenReplica(dir, 2, epochCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	if err := r.ApplyRecord(7, encodePutRecord(t, "k", "v")); err != nil {
		t.Fatalf("ApplyRecord: %v", err)
	}
	r.AdvanceTo(7)
	wm, err := r.PromoteAt(3)
	if err != nil {
		t.Fatalf("PromoteAt: %v", err)
	}
	if wm != 7 {
		t.Fatalf("promoted at watermark %d, want 7", wm)
	}
	if e := r.Epoch(); e != 3 {
		t.Fatalf("epoch %d after PromoteAt(3)", e)
	}
	// Promoting to a lower or equal epoch must refuse: the fleet already
	// moved past it.
	if _, err := r.PromoteAt(3); err != nil {
		t.Fatalf("idempotent re-promote at the current epoch: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A promoted replica's directory is a primary directory now.
	s, err := OpenSharded(dir, 2, epochCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatalf("OpenSharded after promote: %v", err)
	}
	defer s.Close()
	if e := s.Epoch(); e != 3 {
		t.Fatalf("epoch %d after reopen, want 3", e)
	}
	// A peer still at epoch 2 shares history only up to the promote
	// point; one at epoch 3 has no boundary above it.
	if b := s.EpochBoundaryAbove(2); b != 7 {
		t.Fatalf("boundaryAbove(2) = %d, want the promote watermark 7", b)
	}
	if b := s.EpochBoundaryAbove(3); b != math.MaxInt64 {
		t.Fatalf("boundaryAbove(3) = %d, want MaxInt64", b)
	}
	if got, ok := s.Get("k"); !ok || got != "v" {
		t.Fatalf("key k after reopen: %q/%v", got, ok)
	}
}

// TestEpochAdopt: a replica adopts the primary's higher epoch from the
// stream handshake; adopting a lower one is a no-op; and the adoption
// persists.
func TestEpochAdopt(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenReplica(dir, 2, epochCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	if err := r.AdoptEpoch(4, 100); err != nil {
		t.Fatalf("AdoptEpoch(4): %v", err)
	}
	if err := r.AdoptEpoch(2, 50); err != nil {
		t.Fatalf("AdoptEpoch(2) below current should no-op, got %v", err)
	}
	if e := r.Epoch(); e != 4 {
		t.Fatalf("epoch %d after adopting 4 then 2, want 4", e)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, err := OpenReplica(dir, 2, epochCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if e := r2.Epoch(); e != 4 {
		t.Fatalf("epoch %d after reopen, want 4", e)
	}
}

// TestEpochDemoteCycle is the fenced ex-primary's rejoin path: a primary
// with data and history is closed, marked with MarkReplica, and reopened
// as a replica — keeping its data, its exact versions, and its epoch
// history, so the new primary can judge how much is still common.
func TestEpochDemoteCycle(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 2, epochCodec(), Options[string]{NoSync: true, StrictClock: true})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	var last int64
	for _, k := range []string{"a", "b", "c"} {
		v, err := s.PutV(k, "primary-"+k)
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if err := MarkReplica(dir); err != nil {
		t.Fatalf("MarkReplica: %v", err)
	}
	r, err := OpenReplica(dir, 2, epochCodec(), Options[string]{NoSync: true})
	if err != nil {
		t.Fatalf("OpenReplica after demote: %v", err)
	}
	defer r.Close()
	if wm := r.Watermark(); wm != last {
		t.Fatalf("demoted replica watermark %d, want the primary's last version %d", wm, last)
	}
	if e := r.Epoch(); e != 1 {
		t.Fatalf("demoted replica epoch %d, want 1", e)
	}
	for _, k := range []string{"a", "b", "c"} {
		if got, ok := r.Get(k); !ok || got != "primary-"+k {
			t.Fatalf("key %s after demote: %q/%v", k, got, ok)
		}
	}
	if r.Promoted() {
		t.Fatal("demoted replica reports Promoted")
	}
}

// encodePutRecord builds one WAL record payload holding a single put
// (ApplyRecord consumes the WAL record encoding).
func encodePutRecord(t *testing.T, k, v string) []byte {
	t.Helper()
	e := &encBuf{}
	return append([]byte(nil),
		encodeOps(e, []jiffy.BatchOp[string, string]{{Key: k, Val: v}}, epochCodec())...)
}
