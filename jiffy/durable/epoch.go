package durable

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// EpochFile is the fencing-epoch history a replicated store keeps next to
// its WALs. Each line is "<epoch> <startVersion>": epoch N began when a
// node promoted at startVersion (every version <= startVersion predates
// the promote and is common to all histories that include epoch N). An
// absent or empty file means the implicit first epoch — epoch 1,
// starting at version 0 — which every store is born into; only a promote
// ever appends an entry, so an empty history also proves no divergence
// point exists.
//
// The history is what makes rejoin-after-fencing exact: a replica at
// epoch e and watermark w may RESUME (ring or disk catch-up) against a
// primary iff w <= the start version of the first epoch above e in the
// primary's history — below that boundary the two histories are
// guaranteed identical; above it the replica may hold records a promote
// discarded, and only a full bootstrap is safe.
const EpochFile = "EPOCH"

// EpochEntry is one line of the epoch history.
type EpochEntry struct {
	Epoch int64 // fencing epoch number
	Start int64 // version the epoch began at (the promote watermark)
}

// epochLog is the in-memory mirror of a directory's EpochFile, with
// atomic (write-temp-then-rename) persistence.
type epochLog struct {
	mu      sync.Mutex
	dir     string
	entries []EpochEntry
}

// loadEpochLog reads dir's EpochFile (absent: the implicit first epoch).
func loadEpochLog(dir string) (*epochLog, error) {
	l := &epochLog{dir: dir}
	f, err := os.Open(filepath.Join(dir, EpochFile))
	if os.IsNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e EpochEntry
		if _, err := fmt.Sscanf(line, "%d %d", &e.Epoch, &e.Start); err != nil {
			return nil, fmt.Errorf("durable: corrupt epoch history line %q: %w", line, err)
		}
		l.entries = append(l.entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(l.entries, func(i, j int) bool { return l.entries[i].Epoch < l.entries[j].Epoch })
	return l, nil
}

// current returns the newest epoch in the history (1 when empty: the
// implicit first epoch).
func (l *epochLog) current() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return 1
	}
	return l.entries[len(l.entries)-1].Epoch
}

// currentStart returns the start version of the current epoch (0 when
// the history is empty — the implicit first epoch began at version 0).
func (l *epochLog) currentStart() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return 0
	}
	return l.entries[len(l.entries)-1].Start
}

// boundaryAbove returns the smallest start version among entries with
// epoch strictly above e — the version bound below which a replica at
// epoch e shares this store's history. MaxInt64 when no such entry
// exists: promotes are the only divergence points, and none above e is
// recorded.
func (l *epochLog) boundaryAbove(e int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ent := range l.entries {
		if ent.Epoch > e {
			return ent.Start
		}
	}
	return math.MaxInt64
}

// advance appends (epoch, start) to the history and persists it,
// refusing to move backwards. Appending the current epoch again is a
// no-op (idempotent adopt/promote retries).
func (l *epochLog) advance(epoch, start int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) > 0 {
		last := l.entries[len(l.entries)-1]
		if epoch == last.Epoch && start == last.Start {
			return nil
		}
		if epoch <= last.Epoch {
			return fmt.Errorf("durable: epoch history cannot go from %d back to %d", last.Epoch, epoch)
		}
	}
	entries := append(l.entries, EpochEntry{Epoch: epoch, Start: start})
	var buf strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&buf, "%d %d\n", e.Epoch, e.Start)
	}
	tmp := filepath.Join(l.dir, EpochFile+".tmp")
	if err := os.WriteFile(tmp, []byte(buf.String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, EpochFile)); err != nil {
		return err
	}
	l.entries = entries
	return nil
}

// history returns a copy of the entries (diagnostics and tests).
func (l *epochLog) history() []EpochEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]EpochEntry(nil), l.entries...)
}
