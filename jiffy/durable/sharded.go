package durable

import (
	"cmp"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/trace"
	"repro/internal/tsc"
	"repro/jiffy"
)

// Sharded is a durable jiffy.Sharded: the hash-partitioned multi-core
// frontend, plus one write-ahead log per shard and checkpoints cut on one
// cross-shard snapshot. Updates log to their shard's WAL, so group commit
// contention scales with shards like the in-memory work does; a
// cross-shard batch occupies a single record in one shard's log (the
// lowest involved shard's), so its atomicity survives a crash without any
// cross-log commit protocol. Recovery merges every shard's records, sorts
// by commit version — all shards share one clock, so versions form one
// total order — and replays through the frontend, which re-routes each key
// to its shard.
type Sharded[K cmp.Ordered, V any] struct {
	s     *jiffy.Sharded[K, V]
	wals  []*persist.WAL // index i: shard i's log; extras beyond NumShards are drained legacy dirs
	codec Codec[K, V]
	dir   string
	opts  Options[K]

	ckptMu sync.Mutex
	ckpt   ckptMark    // newest checkpoint, for DurStats
	closed atomic.Bool // set by the first Close; updates then fail fast

	floor int64                      // recovered version floor (max of checkpoint cut and replayed records)
	feed  atomic.Pointer[feedHolder] // replication tap; nil when not replicating
	elog  *epochLog                  // fencing-epoch history (epoch.go)
}

func shardWALDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%03d", i))
}

// OpenSharded opens (creating if needed) the durable sharded map stored in
// dir with the given shard count, recovering its pre-crash state exactly
// like Open. The shard count may differ from the one the store was written
// with: records and checkpoint entries are re-routed by key on recovery
// (logs from extra old shard directories are still read, and drained by
// the next checkpoint).
func OpenSharded[K cmp.Ordered, V any](dir string, shards int, codec Codec[K, V], opts ...Options[K]) (*Sharded[K, V], error) {
	if shards < 1 {
		shards = 1
	}
	var o Options[K]
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := codec.validate(); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, ReplicaMarker)); err == nil {
		return nil, fmt.Errorf("durable: %s is a replica directory; open it with OpenReplica, or promote the replica first", dir)
	}
	ckVer, ckPath, err := persist.LatestCheckpoint(dir)
	if errors.Is(err, persist.ErrNoCheckpoint) {
		ckVer, ckPath = 0, ""
	} else if err != nil {
		return nil, err
	}
	// No checkpoint can be in flight at open: clear any temp file a
	// crash mid-checkpoint left behind.
	if err := persist.RemoveStaleCheckpointTemps(dir); err != nil {
		return nil, err
	}

	// Open the WAL of every current shard plus any leftover shard
	// directory from a previous (larger) shard count, so no records are
	// orphaned by a resize.
	nWALs := shards
	if existing, err := filepath.Glob(filepath.Join(dir, "wal-*")); err == nil {
		for _, p := range existing {
			var i int
			if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d", &i); err == nil && i >= nWALs {
				nWALs = i + 1
			}
		}
	}
	wopts := persist.WALOptions{
		SegmentBytes: o.SegmentBytes,
		NoSync:       o.NoSync,
		Metrics:      o.Metrics,
		Tracer:       o.Tracer,
		FsyncDelay:   o.FsyncDelay,
	}
	wals := make([]*persist.WAL, nWALs)
	var recs []persist.Record
	closeAll := func() {
		for _, w := range wals {
			if w != nil {
				w.Close()
			}
		}
	}
	for i := range wals {
		w, rs, err := persist.OpenWAL(shardWALDir(dir, i), wopts)
		if err != nil {
			closeAll()
			return nil, err
		}
		wals[i] = w
		recs = append(recs, rs...)
	}

	floor := ckVer
	for _, r := range recs {
		if r.Version > floor {
			floor = r.Version
		}
	}
	so := o.Map
	if o.StrictClock && so.Clock == nil {
		so.Clock = tsc.NewStrictAt(floor)
	} else {
		so.ClockStart = floor
	}
	s := jiffy.NewSharded[K, V](shards, so)

	if ckPath != "" {
		if err := loadCheckpoint(ckPath, codec, s.BatchUpdate); err != nil {
			closeAll()
			return nil, err
		}
	}
	if err := replayRecords(recs, ckVer, codec, s.BatchUpdate); err != nil {
		closeAll()
		return nil, err
	}
	elog, err := loadEpochLog(dir)
	if err != nil {
		closeAll()
		return nil, err
	}
	d := &Sharded[K, V]{s: s, wals: wals, codec: codec, dir: dir, opts: o, floor: floor, elog: elog}
	d.ckpt.recover(ckVer, ckPath)
	return d, nil
}

// Epoch reports the store's fencing epoch: the epoch of the last
// recorded promote, or 1 — the implicit first epoch — when the store
// has never been through a failover. See EpochFile.
func (d *Sharded[K, V]) Epoch() int64 { return d.elog.current() }

// EpochStart reports the version the current epoch began at (0 for the
// implicit first epoch).
func (d *Sharded[K, V]) EpochStart() int64 { return d.elog.currentStart() }

// EpochBoundaryAbove reports the version bound below which a replica at
// epoch e shares this store's history (math.MaxInt64 when no promote
// above e is recorded — no divergence point exists). The replication
// source forces a bootstrap on replicas whose watermark exceeds it.
func (d *Sharded[K, V]) EpochBoundaryAbove(e int64) int64 { return d.elog.boundaryAbove(e) }

// AdvanceEpoch appends (epoch, start) to the persisted epoch history —
// the record that epoch began at version start. It refuses to move the
// epoch backwards and is idempotent on exact repeats.
func (d *Sharded[K, V]) AdvanceEpoch(epoch, start int64) error { return d.elog.advance(epoch, start) }

// EpochHistory returns a copy of the persisted epoch history.
func (d *Sharded[K, V]) EpochHistory() []EpochEntry { return d.elog.history() }

// RecoveredVersion reports the version floor recovery established: the
// maximum of the newest checkpoint's cut and every replayed log record's
// version. Every version issued by this store is strictly greater; a
// replication source uses it as the boundary below which only checkpoint
// bootstrap (not log shipping) can serve a replica.
func (d *Sharded[K, V]) RecoveredVersion() int64 { return d.floor }

// SetFeed installs (or, with nil, removes) the replication tap observing
// every durable update. The feed's Begin/Publish/Abort calls bracket each
// update's in-memory commit and log append; see the Feed contract. Install
// the feed before the source starts serving replicas.
func (d *Sharded[K, V]) SetFeed(f Feed) {
	if f == nil {
		d.feed.Store(nil)
		return
	}
	d.feed.Store(&feedHolder{f: f})
}

func (d *Sharded[K, V]) getFeed() Feed {
	if h := d.feed.Load(); h != nil {
		return h.f
	}
	return nil
}

// TailRecord is one log record surfaced by TailAbove: a commit version and
// the record's operation payload (record.go's encoding — the same bytes
// replication ships and a replica's ApplyRecord consumes). Tid is the
// originating request's trace ID (internal/trace); disk-recovered records
// carry 0 — trace IDs live only in the in-memory stream, never on disk.
type TailRecord struct {
	Version int64
	Payload []byte
	Tid     uint64
}

// TailAbove reads every live log record with version strictly above
// version, across all shards, sorted by version. The replication source
// uses it for disk catch-up: a replica whose resume point predates the
// in-memory ring but not the newest checkpoint is fed from the logs, then
// switched to the live stream. Payloads are freshly allocated. A
// concurrent checkpoint can truncate segments mid-read; the resulting
// error means "tail no longer on disk" and the caller falls back to a
// checkpoint bootstrap.
func (d *Sharded[K, V]) TailAbove(version int64) ([]TailRecord, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	var out []TailRecord
	for _, w := range d.wals {
		recs, err := w.TailAbove(version)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			out = append(out, TailRecord{Version: r.Version, Payload: r.Payload})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// NumShards returns the number of shards.
func (d *Sharded[K, V]) NumShards() int { return d.s.NumShards() }

// Get returns the most recent value stored for key.
func (d *Sharded[K, V]) Get(key K) (V, bool) { return d.s.Get(key) }

// Len counts the entries visible in an ephemeral snapshot (O(n)).
func (d *Sharded[K, V]) Len() int { return d.s.Len() }

// Snapshot registers and returns a consistent cross-shard snapshot of the
// in-memory state.
func (d *Sharded[K, V]) Snapshot() *jiffy.ShardedSnapshot[K, V] { return d.s.Snapshot() }

// Range calls fn for every entry with lo <= key < hi, in globally
// ascending key order, on an ephemeral snapshot, until fn returns false.
func (d *Sharded[K, V]) Range(lo, hi K, fn func(key K, val V) bool) { d.s.Range(lo, hi, fn) }

// RangeFrom calls fn for every entry with key >= lo, ascending, on an
// ephemeral snapshot, until fn returns false.
func (d *Sharded[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) { d.s.RangeFrom(lo, fn) }

// All calls fn for every entry, ascending, on an ephemeral snapshot, until
// fn returns false.
func (d *Sharded[K, V]) All(fn func(key K, val V) bool) { d.s.All(fn) }

// Iter returns a streaming iterator over a consistent cross-shard snapshot
// taken at call time; the snapshot is owned by the iterator and released
// by Close.
func (d *Sharded[K, V]) Iter() jiffy.Iterator[K, V] { return d.s.Iter() }

// Stats reports aggregated structural diagnostics across all shards.
func (d *Sharded[K, V]) Stats() jiffy.Stats { return d.s.Stats() }

// Put sets the value for key and returns once the update is durable in the
// owning shard's log.
func (d *Sharded[K, V]) Put(key K, val V) error {
	_, err := d.PutV(key, val)
	return err
}

// PutV is Put, but additionally reports the version the update committed
// at. Network servers return it to clients as the read-your-writes floor.
func (d *Sharded[K, V]) PutV(key K, val V) (int64, error) {
	return d.PutVT(key, val, nil)
}

// PutVT is PutV with the request's trace context (nil-safe): the WAL
// append is attributed to its wal stage and the trace ID rides the
// replication feed. See internal/trace.
func (d *Sharded[K, V]) PutVT(key K, val V, tc *trace.Ctx) (int64, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	f := d.getFeed()
	var tok uint64
	if f != nil {
		tok = f.Begin()
	}
	ver := d.s.PutVersioned(key, val)
	err := appendRecordFeed(d.wals[d.s.ShardOf(key)], ver, []jiffy.BatchOp[K, V]{{Key: key, Val: val}}, d.codec, f, tok, tc)
	return ver, err
}

// Remove deletes key, reporting whether it was present, and returns once
// the remove is durable. Removing an absent key writes no log record.
func (d *Sharded[K, V]) Remove(key K) (bool, error) {
	_, ok, err := d.RemoveV(key)
	return ok, err
}

// RemoveV is Remove, but additionally reports the version the remove
// committed at (zero when key was absent).
func (d *Sharded[K, V]) RemoveV(key K) (int64, bool, error) {
	return d.RemoveVT(key, nil)
}

// RemoveVT is RemoveV with the request's trace context (see PutVT).
func (d *Sharded[K, V]) RemoveVT(key K, tc *trace.Ctx) (int64, bool, error) {
	if d.closed.Load() {
		return 0, false, ErrClosed
	}
	f := d.getFeed()
	var tok uint64
	if f != nil {
		tok = f.Begin()
	}
	ver, ok := d.s.RemoveVersioned(key)
	if !ok {
		if f != nil {
			f.Abort(tok)
		}
		return 0, false, nil
	}
	err := appendRecordFeed(d.wals[d.s.ShardOf(key)], ver, []jiffy.BatchOp[K, V]{{Key: key, Remove: true}}, d.codec, f, tok, tc)
	return ver, true, err
}

// BatchUpdate applies every operation in b in one atomic step — even
// across shards — and returns once the batch is durable. The whole batch
// is one record in one log (the lowest involved shard's), so recovery
// replays it all-or-nothing; there is no window where a crash splits a
// cross-shard batch.
func (d *Sharded[K, V]) BatchUpdate(b *jiffy.Batch[K, V]) error {
	_, err := d.BatchUpdateV(b)
	return err
}

// BatchUpdateV is BatchUpdate, but additionally reports the version the
// whole batch committed at (zero for an empty batch).
func (d *Sharded[K, V]) BatchUpdateV(b *jiffy.Batch[K, V]) (int64, error) {
	return d.BatchUpdateVT(b, nil)
}

// BatchUpdateVT is BatchUpdateV with the request's trace context (see
// PutVT).
func (d *Sharded[K, V]) BatchUpdateVT(b *jiffy.Batch[K, V], tc *trace.Ctx) (int64, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	f := d.getFeed()
	var tok uint64
	if f != nil {
		tok = f.Begin()
	}
	ver := d.s.BatchUpdateVersioned(b)
	if ver == 0 {
		if f != nil {
			f.Abort(tok)
		}
		return 0, nil
	}
	ops := b.Ops()
	wi := d.s.ShardOf(ops[0].Key)
	for _, op := range ops[1:] {
		if i := d.s.ShardOf(op.Key); i < wi {
			wi = i
		}
	}
	err := appendRecordFeed(d.wals[wi], ver, ops, d.codec, f, tok, tc)
	return ver, err
}

// Checkpoint writes one checkpoint spanning every shard — cut on a single
// cross-shard snapshot version, so a cross-shard batch is either entirely
// inside or entirely outside it — and truncates every shard's log below
// the cut. Writers on all shards proceed while the checkpoint streams.
func (d *Sharded[K, V]) Checkpoint() (int64, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed.Load() {
		return 0, ErrClosed
	}
	start := time.Now()
	snap := d.s.Snapshot()
	defer snap.Close()
	ver := snap.Version()
	w, err := persist.CreateCheckpoint(d.dir, ver, d.opts.NoSync)
	if err != nil {
		return 0, err
	}
	var kbuf, vbuf []byte
	var werr error
	snap.All(func(k K, v V) bool {
		kbuf = d.codec.Key.Append(kbuf[:0], k)
		vbuf = d.codec.Value.Append(vbuf[:0], v)
		werr = w.Add(kbuf, vbuf)
		return werr == nil
	})
	if werr != nil {
		w.Abort()
		return 0, werr
	}
	if err := w.Commit(); err != nil {
		return 0, err
	}
	d.ckpt.set(ver, time.Now())
	if err := persist.DropCheckpointsBelow(d.dir, ver); err != nil {
		return ver, err
	}
	var firstErr error
	for _, wal := range d.wals {
		if err := wal.TruncateBelow(ver); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.opts.met().CheckpointSeconds.ObserveSince(start)
	return ver, firstErr
}

// Close syncs and closes every shard's log. Updates after Close fail with
// ErrClosed. Close is idempotent: the first call closes the logs and
// reports the first error, later calls are no-ops returning nil.
func (d *Sharded[K, V]) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, w := range d.wals {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
