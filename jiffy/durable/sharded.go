package durable

import (
	"cmp"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/jiffy"
)

// Sharded is a durable jiffy.Sharded: the hash-partitioned multi-core
// frontend, plus one write-ahead log per shard and checkpoints cut on one
// cross-shard snapshot. Updates log to their shard's WAL, so group commit
// contention scales with shards like the in-memory work does; a
// cross-shard batch occupies a single record in one shard's log (the
// lowest involved shard's), so its atomicity survives a crash without any
// cross-log commit protocol. Recovery merges every shard's records, sorts
// by commit version — all shards share one clock, so versions form one
// total order — and replays through the frontend, which re-routes each key
// to its shard.
type Sharded[K cmp.Ordered, V any] struct {
	s     *jiffy.Sharded[K, V]
	wals  []*persist.WAL // index i: shard i's log; extras beyond NumShards are drained legacy dirs
	codec Codec[K, V]
	dir   string
	opts  Options[K]

	ckptMu sync.Mutex
	ckpt   ckptMark    // newest checkpoint, for DurStats
	closed atomic.Bool // set by the first Close; updates then fail fast
}

func shardWALDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%03d", i))
}

// OpenSharded opens (creating if needed) the durable sharded map stored in
// dir with the given shard count, recovering its pre-crash state exactly
// like Open. The shard count may differ from the one the store was written
// with: records and checkpoint entries are re-routed by key on recovery
// (logs from extra old shard directories are still read, and drained by
// the next checkpoint).
func OpenSharded[K cmp.Ordered, V any](dir string, shards int, codec Codec[K, V], opts ...Options[K]) (*Sharded[K, V], error) {
	if shards < 1 {
		shards = 1
	}
	var o Options[K]
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := codec.validate(); err != nil {
		return nil, err
	}
	ckVer, ckPath, err := persist.LatestCheckpoint(dir)
	if errors.Is(err, persist.ErrNoCheckpoint) {
		ckVer, ckPath = 0, ""
	} else if err != nil {
		return nil, err
	}
	// No checkpoint can be in flight at open: clear any temp file a
	// crash mid-checkpoint left behind.
	if err := persist.RemoveStaleCheckpointTemps(dir); err != nil {
		return nil, err
	}

	// Open the WAL of every current shard plus any leftover shard
	// directory from a previous (larger) shard count, so no records are
	// orphaned by a resize.
	nWALs := shards
	if existing, err := filepath.Glob(filepath.Join(dir, "wal-*")); err == nil {
		for _, p := range existing {
			var i int
			if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d", &i); err == nil && i >= nWALs {
				nWALs = i + 1
			}
		}
	}
	wopts := persist.WALOptions{SegmentBytes: o.SegmentBytes, NoSync: o.NoSync, Metrics: o.Metrics}
	wals := make([]*persist.WAL, nWALs)
	var recs []persist.Record
	closeAll := func() {
		for _, w := range wals {
			if w != nil {
				w.Close()
			}
		}
	}
	for i := range wals {
		w, rs, err := persist.OpenWAL(shardWALDir(dir, i), wopts)
		if err != nil {
			closeAll()
			return nil, err
		}
		wals[i] = w
		recs = append(recs, rs...)
	}

	floor := ckVer
	for _, r := range recs {
		if r.Version > floor {
			floor = r.Version
		}
	}
	so := o.Map
	so.ClockStart = floor
	s := jiffy.NewSharded[K, V](shards, so)

	if ckPath != "" {
		if err := loadCheckpoint(ckPath, codec, s.BatchUpdate); err != nil {
			closeAll()
			return nil, err
		}
	}
	if err := replayRecords(recs, ckVer, codec, s.BatchUpdate); err != nil {
		closeAll()
		return nil, err
	}
	d := &Sharded[K, V]{s: s, wals: wals, codec: codec, dir: dir, opts: o}
	d.ckpt.recover(ckVer, ckPath)
	return d, nil
}

// NumShards returns the number of shards.
func (d *Sharded[K, V]) NumShards() int { return d.s.NumShards() }

// Get returns the most recent value stored for key.
func (d *Sharded[K, V]) Get(key K) (V, bool) { return d.s.Get(key) }

// Len counts the entries visible in an ephemeral snapshot (O(n)).
func (d *Sharded[K, V]) Len() int { return d.s.Len() }

// Snapshot registers and returns a consistent cross-shard snapshot of the
// in-memory state.
func (d *Sharded[K, V]) Snapshot() *jiffy.ShardedSnapshot[K, V] { return d.s.Snapshot() }

// Range calls fn for every entry with lo <= key < hi, in globally
// ascending key order, on an ephemeral snapshot, until fn returns false.
func (d *Sharded[K, V]) Range(lo, hi K, fn func(key K, val V) bool) { d.s.Range(lo, hi, fn) }

// RangeFrom calls fn for every entry with key >= lo, ascending, on an
// ephemeral snapshot, until fn returns false.
func (d *Sharded[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) { d.s.RangeFrom(lo, fn) }

// All calls fn for every entry, ascending, on an ephemeral snapshot, until
// fn returns false.
func (d *Sharded[K, V]) All(fn func(key K, val V) bool) { d.s.All(fn) }

// Iter returns a streaming iterator over a consistent cross-shard snapshot
// taken at call time; the snapshot is owned by the iterator and released
// by Close.
func (d *Sharded[K, V]) Iter() jiffy.Iterator[K, V] { return d.s.Iter() }

// Stats reports aggregated structural diagnostics across all shards.
func (d *Sharded[K, V]) Stats() jiffy.Stats { return d.s.Stats() }

// Put sets the value for key and returns once the update is durable in the
// owning shard's log.
func (d *Sharded[K, V]) Put(key K, val V) error {
	if d.closed.Load() {
		return ErrClosed
	}
	ver := d.s.PutVersioned(key, val)
	return appendRecord(d.wals[d.s.ShardOf(key)], ver, []jiffy.BatchOp[K, V]{{Key: key, Val: val}}, d.codec)
}

// Remove deletes key, reporting whether it was present, and returns once
// the remove is durable. Removing an absent key writes no log record.
func (d *Sharded[K, V]) Remove(key K) (bool, error) {
	if d.closed.Load() {
		return false, ErrClosed
	}
	ver, ok := d.s.RemoveVersioned(key)
	if !ok {
		return false, nil
	}
	err := appendRecord(d.wals[d.s.ShardOf(key)], ver, []jiffy.BatchOp[K, V]{{Key: key, Remove: true}}, d.codec)
	return true, err
}

// BatchUpdate applies every operation in b in one atomic step — even
// across shards — and returns once the batch is durable. The whole batch
// is one record in one log (the lowest involved shard's), so recovery
// replays it all-or-nothing; there is no window where a crash splits a
// cross-shard batch.
func (d *Sharded[K, V]) BatchUpdate(b *jiffy.Batch[K, V]) error {
	if d.closed.Load() {
		return ErrClosed
	}
	ver := d.s.BatchUpdateVersioned(b)
	if ver == 0 {
		return nil
	}
	ops := b.Ops()
	wi := d.s.ShardOf(ops[0].Key)
	for _, op := range ops[1:] {
		if i := d.s.ShardOf(op.Key); i < wi {
			wi = i
		}
	}
	return appendRecord(d.wals[wi], ver, ops, d.codec)
}

// Checkpoint writes one checkpoint spanning every shard — cut on a single
// cross-shard snapshot version, so a cross-shard batch is either entirely
// inside or entirely outside it — and truncates every shard's log below
// the cut. Writers on all shards proceed while the checkpoint streams.
func (d *Sharded[K, V]) Checkpoint() (int64, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed.Load() {
		return 0, ErrClosed
	}
	start := time.Now()
	snap := d.s.Snapshot()
	defer snap.Close()
	ver := snap.Version()
	w, err := persist.CreateCheckpoint(d.dir, ver, d.opts.NoSync)
	if err != nil {
		return 0, err
	}
	var kbuf, vbuf []byte
	var werr error
	snap.All(func(k K, v V) bool {
		kbuf = d.codec.Key.Append(kbuf[:0], k)
		vbuf = d.codec.Value.Append(vbuf[:0], v)
		werr = w.Add(kbuf, vbuf)
		return werr == nil
	})
	if werr != nil {
		w.Abort()
		return 0, werr
	}
	if err := w.Commit(); err != nil {
		return 0, err
	}
	d.ckpt.set(ver, time.Now())
	if err := persist.DropCheckpointsBelow(d.dir, ver); err != nil {
		return ver, err
	}
	var firstErr error
	for _, wal := range d.wals {
		if err := wal.TruncateBelow(ver); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.opts.met().CheckpointSeconds.ObserveSince(start)
	return ver, firstErr
}

// Close syncs and closes every shard's log. Updates after Close fail with
// ErrClosed. Close is idempotent: the first call closes the logs and
// reports the first error, later calls are no-ops returning nil.
func (d *Sharded[K, V]) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, w := range d.wals {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
