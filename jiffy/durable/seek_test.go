package durable

import "testing"

// TestIterSeekEdgesMap drives Iterator.Seek through its edge cases on the
// durable map wrapper: seek past the last key, seek before the first,
// seek on an empty map, and seek on a closed iterator.
func TestIterSeekEdgesMap(t *testing.T) {
	d, err := Open(t.TempDir(), u64Codec())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Empty map: a fresh iterator and a seeked one both report nothing.
	it := d.Iter()
	if it.Next() {
		t.Fatal("Next on empty map reported an entry")
	}
	it.Seek(0)
	if it.Next() {
		t.Fatal("Seek(0)+Next on empty map reported an entry")
	}
	it.Close()

	for i := uint64(10); i <= 50; i += 10 {
		if err := d.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}

	it = d.Iter()
	defer it.Close()

	// Seek before the first key lands on the first key.
	it.Seek(1)
	if !it.Next() || it.Key() != 10 {
		t.Fatalf("Seek(1): key %d, want 10", it.Key())
	}
	// Seek onto an existing key is inclusive.
	it.Seek(30)
	if !it.Next() || it.Key() != 30 {
		t.Fatalf("Seek(30): key %d, want 30", it.Key())
	}
	// Seek between keys lands on the next one.
	it.Seek(31)
	if !it.Next() || it.Key() != 40 {
		t.Fatalf("Seek(31): key %d, want 40", it.Key())
	}
	// Seek exactly past the last key: exhausted.
	it.Seek(51)
	if it.Next() {
		t.Fatalf("Seek(51) past last key delivered %d", it.Key())
	}
	// Seek far past the last key: exhausted, and restartable afterwards.
	it.Seek(1 << 60)
	if it.Next() {
		t.Fatal("Seek(1<<60) delivered an entry")
	}
	it.Seek(50)
	if !it.Next() || it.Key() != 50 || it.Next() {
		t.Fatal("restart after past-the-end seek failed")
	}
}

// TestIterSeekEdgesSharded mirrors the edge cases on the durable sharded
// wrapper, where Seek must re-prime every shard cursor.
func TestIterSeekEdgesSharded(t *testing.T) {
	d, err := OpenSharded(t.TempDir(), 4, u64Codec())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Empty shards: nothing to deliver, seeked or not.
	it := d.Iter()
	if it.Next() {
		t.Fatal("Next on empty sharded map reported an entry")
	}
	it.Seek(7)
	if it.Next() {
		t.Fatal("Seek(7)+Next on empty sharded map reported an entry")
	}
	it.Close()

	for i := uint64(10); i <= 50; i += 10 {
		if err := d.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	it = d.Iter()
	defer it.Close()
	it.Seek(1) // before the first key
	if !it.Next() || it.Key() != 10 {
		t.Fatalf("Seek(1): key %d, want 10", it.Key())
	}
	it.Seek(35) // between keys, mid-stream reposition
	if !it.Next() || it.Key() != 40 {
		t.Fatalf("Seek(35): key %d, want 40", it.Key())
	}
	it.Seek(51) // past the last key
	if it.Next() {
		t.Fatalf("Seek(51) past last key delivered %d", it.Key())
	}
	it.Seek(10) // restart from the front after exhaustion
	n := 0
	for it.Next() {
		n++
	}
	if n != 5 {
		t.Fatalf("restarted scan saw %d entries, want 5", n)
	}
}

// TestIterSeekClosed checks Seek and Next on closed iterators are defined
// no-ops on both durable wrappers (no panic, no entries).
func TestIterSeekClosed(t *testing.T) {
	dm, err := Open(t.TempDir(), u64Codec())
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()
	if err := dm.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	it := dm.Iter()
	it.Close()
	it.Seek(0) // must not panic
	if it.Next() {
		t.Fatal("closed map iterator delivered an entry")
	}

	ds, err := OpenSharded(t.TempDir(), 4, u64Codec())
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if err := ds.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	sit := ds.Iter()
	sit.Close()
	sit.Seek(0) // must not panic
	if sit.Next() {
		t.Fatal("closed sharded iterator delivered an entry")
	}
}
