package durable

import (
	"os"
	"sync/atomic"
	"time"

	"repro/internal/persist"
)

// DurStats is a point-in-time census of a durable map's on-disk state:
// how much log is live (what recovery would have to replay) and how
// recent the newest checkpoint is (how far truncation has caught up).
// jiffyd exposes it through the jiffy_wal_* / jiffy_checkpoint_* gauges.
type DurStats struct {
	// WALSegments counts live segments — sealed plus active — summed
	// across shards for a Sharded map.
	WALSegments int

	// WALLiveBytes is the bytes those segments hold on disk.
	WALLiveBytes int64

	// CheckpointVersion is the commit version of the newest checkpoint
	// (0: never checkpointed).
	CheckpointVersion int64

	// CheckpointTime is when that checkpoint was committed (recovered
	// from the file's mtime after a restart); zero when never
	// checkpointed.
	CheckpointTime time.Time

	// ReplWatermark is a replica's applied replication watermark: every
	// primary update with version <= it is applied and durable locally.
	// Zero on primaries and on a replica that has never synced.
	ReplWatermark int64
}

// ckptMark tracks the newest checkpoint's version and wall-clock time,
// written by Checkpoint (and at Open, from the recovered file) and read
// by DurStats without any lock.
type ckptMark struct {
	version atomic.Int64
	unixNS  atomic.Int64
}

func (c *ckptMark) set(version int64, t time.Time) {
	c.version.Store(version)
	c.unixNS.Store(t.UnixNano())
}

// recover seeds the mark from the checkpoint file recovery loaded, using
// the file's mtime as the commit time; a missing stat leaves the time
// zero (age renders as unknown, not as garbage).
func (c *ckptMark) recover(version int64, path string) {
	if path == "" {
		return
	}
	c.version.Store(version)
	if fi, err := os.Stat(path); err == nil {
		c.unixNS.Store(fi.ModTime().UnixNano())
	}
}

func (c *ckptMark) read() (int64, time.Time) {
	v := c.version.Load()
	ns := c.unixNS.Load()
	if ns == 0 {
		return v, time.Time{}
	}
	return v, time.Unix(0, ns)
}

// DurStats reports the map's log and checkpoint state.
func (d *Map[K, V]) DurStats() DurStats {
	ws := d.wal.Stats()
	st := DurStats{WALSegments: ws.Segments, WALLiveBytes: ws.Bytes}
	st.CheckpointVersion, st.CheckpointTime = d.ckpt.read()
	return st
}

// DurStats reports log and checkpoint state aggregated across shards.
func (d *Sharded[K, V]) DurStats() DurStats {
	var st DurStats
	for _, w := range d.wals {
		ws := w.Stats()
		st.WALSegments += ws.Segments
		st.WALLiveBytes += ws.Bytes
	}
	st.CheckpointVersion, st.CheckpointTime = d.ckpt.read()
	return st
}

// met returns the configured durability metrics panel, or an all-nil one
// whose observations are no-ops.
func (o Options[K]) met() *persist.Metrics {
	if o.Metrics != nil {
		return o.Metrics
	}
	return &persist.Metrics{}
}
