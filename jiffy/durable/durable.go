// Package durable adds crash durability to jiffy's in-memory maps without
// giving up their concurrency story. Every update is applied to the
// in-memory index first, then appended — tagged with the version number it
// committed at — to a segmented write-ahead log whose group commit
// coalesces concurrent appends into one fsync. Checkpoints exploit the
// paper's flagship capability: an O(1) snapshot (one consistent cut, even
// across shards) is registered and streamed to a checkpoint file while
// writers proceed at full speed, after which log segments below the
// checkpoint version are deleted.
//
// Recovery inverts the pipeline: load the newest valid checkpoint, then
// replay the log records whose version exceeds the checkpoint's cut, in
// version order, through atomic batch updates. The invariant is
//
//	state(checkpoint C) ⊔ replay{records with version > C} = pre-crash state
//
// for every acknowledged operation: an operation acknowledged before the
// crash is either at or below the cut (in the checkpoint) or above it (in
// a fsynced log record). A torn final record — the append that was in
// flight when the machine died — fails its checksum and is dropped; it was
// never acknowledged. See DESIGN.md §5 for the file formats.
package durable

import (
	"cmp"
	"errors"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/trace"
	"repro/internal/tsc"
	"repro/jiffy"
)

// Options tunes a durable map. The zero value selects defaults.
type Options[K cmp.Ordered] struct {
	// Map configures the underlying in-memory index. ClockStart is
	// overridden on recovery (versions must stay above everything already
	// logged).
	Map jiffy.Options[K]

	// SegmentBytes is the log's rotation threshold (default 4 MiB).
	SegmentBytes int64

	// NoSync skips every fsync in the log and checkpoint paths:
	// acknowledged operations survive process crashes (the OS holds the
	// writes) but not machine crashes. Benchmarks use it to separate
	// logging cost from media cost.
	NoSync bool

	// Metrics, when non-nil, receives the durability layer's
	// instrumentation (WAL group commit, fsync latency, checkpoint
	// duration). A Sharded map shares one panel across every shard's log.
	Metrics *persist.Metrics

	// StrictClock runs the in-memory index on a strictly increasing
	// version clock (tsc.Strict) floored above everything recovered,
	// instead of the default time-based monotonic clock whose reads can
	// tie across shards. Replicated primaries set it: unique commit
	// versions make a replica's resume point ("send everything above my
	// watermark") exact, with no tie at the boundary to double-apply or
	// drop. Ignored when Map.Clock is set explicitly.
	StrictClock bool

	// Tracer, when non-nil, receives the durability layer's flight-recorder
	// spans: per-request wal stages (via the *VT update variants) and
	// batch-level fsync stages from the log's group-commit leader.
	Tracer *trace.Recorder

	// FsyncDelay injects an artificial sleep into every log fsync (fault
	// injection for trace-attribution tests and demos). Zero disables.
	FsyncDelay time.Duration
}

// ErrClosed is returned by updates on a closed durable map.
var ErrClosed = errors.New("durable: map is closed")

// replayBatchSize bounds the batch size used to bulk-load checkpoints and
// replay log tails.
const replayBatchSize = 1024

// Map is a durable jiffy.Map: the same linearizable in-memory index, plus
// a write-ahead log and snapshot-consistent checkpoints. Reads and scans
// are exactly as fast as the in-memory map's; updates return once their
// log record is durable. All methods are safe for concurrent use.
type Map[K cmp.Ordered, V any] struct {
	m     *jiffy.Map[K, V]
	wal   *persist.WAL
	codec Codec[K, V]
	dir   string
	opts  Options[K]

	ckptMu sync.Mutex  // one checkpoint at a time
	ckpt   ckptMark    // newest checkpoint, for DurStats
	closed atomic.Bool // set by the first Close; updates then fail fast
}

// Open opens (creating if needed) the durable map stored in dir,
// recovering its pre-crash state: the newest valid checkpoint is loaded
// and the log tail above its version is replayed through atomic batch
// updates, in commit-version order.
func Open[K cmp.Ordered, V any](dir string, codec Codec[K, V], opts ...Options[K]) (*Map[K, V], error) {
	var o Options[K]
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := codec.validate(); err != nil {
		return nil, err
	}
	ckVer, ckPath, err := persist.LatestCheckpoint(dir)
	if errors.Is(err, persist.ErrNoCheckpoint) {
		ckVer, ckPath = 0, ""
	} else if err != nil {
		return nil, err
	}
	// No checkpoint can be in flight at open: clear any temp file a
	// crash mid-checkpoint left behind.
	if err := persist.RemoveStaleCheckpointTemps(dir); err != nil {
		return nil, err
	}
	wal, recs, err := persist.OpenWAL(filepath.Join(dir, "wal"), persist.WALOptions{
		SegmentBytes: o.SegmentBytes,
		NoSync:       o.NoSync,
		Metrics:      o.Metrics,
		Tracer:       o.Tracer,
		FsyncDelay:   o.FsyncDelay,
	})
	if err != nil {
		return nil, err
	}

	// Versions issued after recovery must exceed every version recorded
	// before the crash, so the log stays totally ordered across restarts.
	floor := ckVer
	for _, r := range recs {
		if r.Version > floor {
			floor = r.Version
		}
	}
	mo := o.Map
	if o.StrictClock && mo.Clock == nil {
		mo.Clock = tsc.NewStrictAt(floor)
	} else {
		mo.ClockStart = floor
	}
	m := jiffy.New[K, V](mo)

	if ckPath != "" {
		if err := loadCheckpoint(ckPath, codec, m.BatchUpdate); err != nil {
			wal.Close()
			return nil, err
		}
	}
	if err := replayRecords(recs, ckVer, codec, m.BatchUpdate); err != nil {
		wal.Close()
		return nil, err
	}
	d := &Map[K, V]{m: m, wal: wal, codec: codec, dir: dir, opts: o}
	d.ckpt.recover(ckVer, ckPath)
	return d, nil
}

// loadCheckpoint bulk-loads a (pre-validated) checkpoint through apply.
func loadCheckpoint[K cmp.Ordered, V any](path string, codec Codec[K, V], apply func(*jiffy.Batch[K, V])) error {
	b := jiffy.NewBatch[K, V](replayBatchSize)
	_, err := persist.ReadCheckpoint(path, func(k, v []byte) error {
		key, err := codec.Key.Decode(k)
		if err != nil {
			return err
		}
		val, err := codec.Value.Decode(v)
		if err != nil {
			return err
		}
		b.Put(key, val)
		if b.Len() >= replayBatchSize {
			apply(b)
			b.Reset()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if b.Len() > 0 {
		apply(b)
	}
	return nil
}

// replayRecords applies the log tail above ckVer in commit-version order.
// Records are chunked into batch updates, flushing only at record
// boundaries so a record — one atomic pre-crash unit — is never split.
func replayRecords[K cmp.Ordered, V any](recs []persist.Record, ckVer int64, codec Codec[K, V], apply func(*jiffy.Batch[K, V])) error {
	tail := make([]persist.Record, 0, len(recs))
	for _, r := range recs {
		if r.Version > ckVer {
			tail = append(tail, r)
		}
	}
	// Log order within a file tracks acknowledgement order, not commit
	// order — group commit writes concurrent operations in queue order —
	// so replay sorts by the recorded commit version. The stable sort
	// keeps log order for equal versions.
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].Version < tail[j].Version })
	b := jiffy.NewBatch[K, V](replayBatchSize)
	for _, r := range tail {
		if err := decodeOps(r.Payload, codec, b); err != nil {
			return err
		}
		if b.Len() >= replayBatchSize {
			apply(b)
			b.Reset()
		}
	}
	if b.Len() > 0 {
		apply(b)
	}
	return nil
}

// Get returns the most recent value stored for key.
func (d *Map[K, V]) Get(key K) (V, bool) { return d.m.Get(key) }

// Len counts the entries visible in an ephemeral snapshot (O(n)).
func (d *Map[K, V]) Len() int { return d.m.Len() }

// Snapshot registers and returns a consistent snapshot of the in-memory
// state (which includes operations not yet acknowledged durable).
func (d *Map[K, V]) Snapshot() *jiffy.Snapshot[K, V] { return d.m.Snapshot() }

// Range calls fn for every entry with lo <= key < hi, ascending, on an
// ephemeral snapshot, until fn returns false.
func (d *Map[K, V]) Range(lo, hi K, fn func(key K, val V) bool) { d.m.Range(lo, hi, fn) }

// RangeFrom calls fn for every entry with key >= lo, ascending, on an
// ephemeral snapshot, until fn returns false.
func (d *Map[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) { d.m.RangeFrom(lo, fn) }

// All calls fn for every entry, ascending, on an ephemeral snapshot, until
// fn returns false.
func (d *Map[K, V]) All(fn func(key K, val V) bool) { d.m.All(fn) }

// Iter returns a streaming iterator over a consistent snapshot taken at
// call time; the snapshot is owned by the iterator and released by Close.
func (d *Map[K, V]) Iter() jiffy.Iterator[K, V] { return d.m.Iter() }

// Stats reports the structural diagnostics of the underlying index.
func (d *Map[K, V]) Stats() jiffy.Stats { return d.m.Stats() }

// Put sets the value for key and returns once the update is durable. The
// update is visible to concurrent readers as soon as it commits in memory,
// before it is durable; Put returning bounds the durability point.
func (d *Map[K, V]) Put(key K, val V) error {
	if d.closed.Load() {
		return ErrClosed
	}
	ver := d.m.PutVersioned(key, val)
	return appendRecord(d.wal, ver, []jiffy.BatchOp[K, V]{{Key: key, Val: val}}, d.codec)
}

// Remove deletes key, reporting whether it was present, and returns once
// the remove is durable. Removing an absent key changes nothing and writes
// no log record.
func (d *Map[K, V]) Remove(key K) (bool, error) {
	if d.closed.Load() {
		return false, ErrClosed
	}
	ver, ok := d.m.RemoveVersioned(key)
	if !ok {
		return false, nil
	}
	err := appendRecord(d.wal, ver, []jiffy.BatchOp[K, V]{{Key: key, Remove: true}}, d.codec)
	return true, err
}

// BatchUpdate applies every operation in b in one atomic, linearizable
// step and returns once the batch is durable. The batch occupies one log
// record, so recovery replays it all-or-nothing: atomicity survives the
// crash.
func (d *Map[K, V]) BatchUpdate(b *jiffy.Batch[K, V]) error {
	if d.closed.Load() {
		return ErrClosed
	}
	ver := d.m.BatchUpdateVersioned(b)
	if ver == 0 {
		return nil // empty batch: no update, nothing to log
	}
	return appendRecord(d.wal, ver, b.Ops(), d.codec)
}

// Checkpoint writes a snapshot-consistent checkpoint and truncates the log
// below its version, returning the checkpoint's cut version. Writers are
// never blocked: the snapshot is O(1) to take and pins the cut's history
// while concurrent updates proceed on newer revisions; their log records
// carry versions above the cut, so nothing the checkpoint misses is
// truncated. One checkpoint runs at a time (concurrent calls serialize).
func (d *Map[K, V]) Checkpoint() (int64, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.closed.Load() {
		return 0, ErrClosed
	}
	start := time.Now()
	snap := d.m.Snapshot()
	defer snap.Close()
	ver := snap.Version()
	w, err := persist.CreateCheckpoint(d.dir, ver, d.opts.NoSync)
	if err != nil {
		return 0, err
	}
	var kbuf, vbuf []byte
	var werr error
	snap.All(func(k K, v V) bool {
		kbuf = d.codec.Key.Append(kbuf[:0], k)
		vbuf = d.codec.Value.Append(vbuf[:0], v)
		werr = w.Add(kbuf, vbuf)
		return werr == nil
	})
	if werr != nil {
		w.Abort()
		return 0, werr
	}
	if err := w.Commit(); err != nil {
		return 0, err
	}
	d.ckpt.set(ver, time.Now())
	if err := persist.DropCheckpointsBelow(d.dir, ver); err != nil {
		return ver, err
	}
	err = d.wal.TruncateBelow(ver)
	d.opts.met().CheckpointSeconds.ObserveSince(start)
	return ver, err
}

// Close syncs and closes the log. Updates after Close fail with ErrClosed;
// in-flight updates must have returned. Reads remain valid (the in-memory
// index survives) but the map should be discarded. Close is idempotent:
// the first call closes the log and reports its result, later calls are
// no-ops returning nil.
func (d *Map[K, V]) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	return d.wal.Close()
}

// Map and Sharded keep the full read surface of the views they wrap.
var (
	_ jiffy.View[int, int] = (*Map[int, int])(nil)
	_ jiffy.View[int, int] = (*Sharded[int, int])(nil)
)
