package durable

// Feed is the replication tap a durable store publishes every update
// through (internal/repl implements it). The durability layer calls it in
// a strict bracket around each update:
//
//	tok := f.Begin()          // before the in-memory commit
//	ver := <commit in-memory> // version issued by the store's clock
//	<append to WAL>
//	f.Publish(tok, ver, payload, tid) on success, f.Abort(tok) on failure
//
// Begin is called before the update's commit version exists, so the feed
// can record a lower bound: every version this update can commit at is
// strictly greater than the maximum version published before Begin
// returned (the store runs on a strictly increasing clock — see
// Options.StrictClock). The feed's frontier — the version below which no
// publication can still arrive — is the minimum lower bound over in-flight
// tokens, and replicas may apply everything at or below it.
//
// Publish's payload is the WAL record payload (record.go's encoding) and
// is only valid for the duration of the call: the buffer is pooled.
// Publish may block (bounded) when the source runs synchronous acks.
// tid is the originating request's trace ID (internal/trace; 0 when
// untraced), carried through the stream so a replica's apply span joins
// the primary-side spans of the same write.
// Abort retires a token whose update never produced a record (a remove of
// an absent key, an empty batch, a failed log append).
type Feed interface {
	Begin() (token uint64)
	Publish(token uint64, version int64, payload []byte, tid uint64)
	Abort(token uint64)
}

// feedHolder wraps a Feed so it can sit in an atomic.Pointer (interfaces
// cannot).
type feedHolder struct{ f Feed }
