package durable

import (
	"cmp"
	"encoding/binary"
	"fmt"

	"repro/jiffy"
)

// Log-record payload encoding. A record's version lives in the WAL framing
// (internal/persist); the payload is the operation list:
//
//	uvarint nops | op*
//	op: u8 kind (0 put, 1 remove) | uvarint klen | key | put: uvarint vlen | val
//
// One record holds one atomic unit — a single put or remove, or one whole
// batch — so a record is either fully replayed or (torn tail) fully absent,
// preserving batch atomicity across crashes.
const (
	opPut    = 0
	opRemove = 1
)

// appendOps encodes ops onto dst using c.
func appendOps[K cmp.Ordered, V any](dst []byte, ops []jiffy.BatchOp[K, V], c Codec[K, V]) []byte {
	var kbuf, vbuf []byte
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		kbuf = c.Key.Append(kbuf[:0], op.Key)
		if op.Remove {
			dst = append(dst, opRemove)
			dst = binary.AppendUvarint(dst, uint64(len(kbuf)))
			dst = append(dst, kbuf...)
			continue
		}
		vbuf = c.Value.Append(vbuf[:0], op.Val)
		dst = append(dst, opPut)
		dst = binary.AppendUvarint(dst, uint64(len(kbuf)))
		dst = append(dst, kbuf...)
		dst = binary.AppendUvarint(dst, uint64(len(vbuf)))
		dst = append(dst, vbuf...)
	}
	return dst
}

// decodeOps parses a record payload, appending each operation to b.
func decodeOps[K cmp.Ordered, V any](payload []byte, c Codec[K, V], b *jiffy.Batch[K, V]) error {
	nops, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("durable: record payload missing op count")
	}
	p := payload[n:]
	take := func() ([]byte, error) {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return nil, fmt.Errorf("durable: record payload truncated")
		}
		b := p[n : n+int(l)]
		p = p[n+int(l):]
		return b, nil
	}
	for i := uint64(0); i < nops; i++ {
		if len(p) < 1 {
			return fmt.Errorf("durable: record payload truncated")
		}
		kind := p[0]
		p = p[1:]
		kb, err := take()
		if err != nil {
			return err
		}
		key, err := c.Key.Decode(kb)
		if err != nil {
			return err
		}
		switch kind {
		case opRemove:
			b.Remove(key)
		case opPut:
			vb, err := take()
			if err != nil {
				return err
			}
			val, err := c.Value.Decode(vb)
			if err != nil {
				return err
			}
			b.Put(key, val)
		default:
			return fmt.Errorf("durable: unknown op kind %#x", kind)
		}
	}
	return nil
}
