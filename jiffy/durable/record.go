package durable

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/persist"
	"repro/internal/trace"
	"repro/jiffy"
)

// Log-record payload encoding. A record's version lives in the WAL framing
// (internal/persist); the payload is the operation list:
//
//	uvarint nops | op*
//	op: u8 kind (0 put, 1 remove) | uvarint klen | key | put: uvarint vlen | val
//
// One record holds one atomic unit — a single put or remove, or one whole
// batch — so a record is either fully replayed or (torn tail) fully absent,
// preserving batch atomicity across crashes.
const (
	opPut    = 0
	opRemove = 1
)

// encBuf is one pooled record-encoding workspace: the record payload plus
// the per-field key/value scratch. An update borrows one, encodes into it,
// appends to the WAL (which copies the payload into its group-commit
// buffer before acknowledging) and returns it — so the steady-state append
// path allocates nothing.
type encBuf struct {
	payload []byte
	kbuf    []byte
	vbuf    []byte
}

var encPool = sync.Pool{New: func() any { return new(encBuf) }}

// encodeOps encodes ops into e's payload buffer using c and returns it.
// The returned slice is valid until e is released back to the pool.
func encodeOps[K cmp.Ordered, V any](e *encBuf, ops []jiffy.BatchOp[K, V], c Codec[K, V]) []byte {
	dst := e.payload[:0]
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		e.kbuf = c.Key.Append(e.kbuf[:0], op.Key)
		if op.Remove {
			dst = append(dst, opRemove)
			dst = binary.AppendUvarint(dst, uint64(len(e.kbuf)))
			dst = append(dst, e.kbuf...)
			continue
		}
		e.vbuf = c.Value.Append(e.vbuf[:0], op.Val)
		dst = append(dst, opPut)
		dst = binary.AppendUvarint(dst, uint64(len(e.kbuf)))
		dst = append(dst, e.kbuf...)
		dst = binary.AppendUvarint(dst, uint64(len(e.vbuf)))
		dst = append(dst, e.vbuf...)
	}
	e.payload = dst
	return dst
}

// appendRecord encodes ops through a pooled buffer and appends the record
// to w at version ver. The WAL copies the payload into its group-commit
// buffer before acknowledging, so the encode buffer cycles straight back
// to the pool.
func appendRecord[K cmp.Ordered, V any](w *persist.WAL, ver int64, ops []jiffy.BatchOp[K, V], c Codec[K, V]) error {
	e := encPool.Get().(*encBuf)
	err := w.Append(ver, encodeOps(e, ops, c))
	encPool.Put(e)
	return err
}

// appendRecordFeed is appendRecord with the replication tap spliced in:
// after a successful append the payload is published to the feed (which
// copies it — the buffer is about to be pooled, and Publish may block for
// synchronous replica acks), and a failed append aborts the feed token so
// the source's frontier does not stall on a write that never happened. A
// nil feed degrades to plain appendRecord.
//
// tc is the originating request's trace context (nil-safe): the WAL
// append — queue wait plus group-commit fsync, as this one request
// experienced it — is attributed to trace.StageWAL, and the trace ID
// rides the feed into the replication stream.
func appendRecordFeed[K cmp.Ordered, V any](w *persist.WAL, ver int64, ops []jiffy.BatchOp[K, V], c Codec[K, V], f Feed, tok uint64, tc *trace.Ctx) error {
	e := encPool.Get().(*encBuf)
	payload := encodeOps(e, ops, c)
	start := time.Now()
	err := w.Append(ver, payload)
	tc.Observe(trace.StageWAL, start)
	if f != nil {
		if err != nil {
			f.Abort(tok)
		} else {
			f.Publish(tok, ver, payload, tc.ID())
		}
	}
	encPool.Put(e)
	return err
}

// decodeOps parses a record payload, appending each operation to b.
func decodeOps[K cmp.Ordered, V any](payload []byte, c Codec[K, V], b *jiffy.Batch[K, V]) error {
	nops, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("durable: record payload missing op count")
	}
	p := payload[n:]
	take := func() ([]byte, error) {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return nil, fmt.Errorf("durable: record payload truncated")
		}
		b := p[n : n+int(l)]
		p = p[n+int(l):]
		return b, nil
	}
	for i := uint64(0); i < nops; i++ {
		if len(p) < 1 {
			return fmt.Errorf("durable: record payload truncated")
		}
		kind := p[0]
		p = p[1:]
		kb, err := take()
		if err != nil {
			return err
		}
		key, err := c.Key.Decode(kb)
		if err != nil {
			return err
		}
		switch kind {
		case opRemove:
			b.Remove(key)
		case opPut:
			vb, err := take()
			if err != nil {
				return err
			}
			val, err := c.Value.Decode(vb)
			if err != nil {
				return err
			}
			b.Put(key, val)
		default:
			return fmt.Errorf("durable: unknown op kind %#x", kind)
		}
	}
	return nil
}
