package durable

import (
	"testing"
	"time"
)

// TestMapDurStats pins the durable stats panel across the full lifecycle:
// fresh open, WAL growth and rotation, checkpoint (version + time + log
// truncation), and recovery of the checkpoint mark from disk at reopen.
func TestMapDurStats(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	st := d.DurStats()
	if st.WALSegments != 1 {
		t.Fatalf("fresh store WAL segments = %d, want 1 (the active one)", st.WALSegments)
	}
	if st.CheckpointVersion != 0 || !st.CheckpointTime.IsZero() {
		t.Fatalf("fresh store checkpoint mark = (%d, %v), want zero",
			st.CheckpointVersion, st.CheckpointTime)
	}

	// Enough traffic to roll past the 4 KiB test segments.
	for i := uint64(0); i < 600; i++ {
		if err := d.Put(i%97, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st = d.DurStats()
	if st.WALSegments < 2 {
		t.Fatalf("WAL segments after 600 puts = %d, want rotation (>= 2)", st.WALSegments)
	}
	if st.WALLiveBytes == 0 {
		t.Fatal("WAL live bytes = 0 after 600 puts")
	}

	before := time.Now()
	ver, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st = d.DurStats()
	if st.CheckpointVersion != ver {
		t.Fatalf("checkpoint version = %d, want %d", st.CheckpointVersion, ver)
	}
	if st.CheckpointTime.Before(before) || st.CheckpointTime.After(time.Now()) {
		t.Fatalf("checkpoint time %v outside [%v, now]", st.CheckpointTime, before)
	}
	if st.WALSegments != 1 {
		t.Fatalf("WAL segments after checkpoint = %d, want 1 (sealed logs truncated)", st.WALSegments)
	}
	d.Close()

	// A reopened store must recover the mark from the checkpoint file, with
	// the file's mtime standing in for the original wall-clock stamp.
	r, err := Open(dir, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	st = r.DurStats()
	if st.CheckpointVersion != ver {
		t.Fatalf("recovered checkpoint version = %d, want %d", st.CheckpointVersion, ver)
	}
	if st.CheckpointTime.IsZero() {
		t.Fatal("recovered checkpoint time is zero; mtime recovery failed")
	}
}

// TestShardedDurStats asserts the sharded frontend aggregates per-shard
// WALs into one panel and stamps one checkpoint mark for the whole store.
func TestShardedDurStats(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenSharded(dir, 4, u64Codec(), testOpts())
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer d.Close()

	st := d.DurStats()
	if st.WALSegments != 4 {
		t.Fatalf("fresh 4-shard store WAL segments = %d, want 4", st.WALSegments)
	}
	for i := uint64(0); i < 400; i++ {
		if err := d.Put(i, i); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if st = d.DurStats(); st.WALLiveBytes == 0 {
		t.Fatal("sharded WAL live bytes = 0 after 400 puts")
	}
	ver, err := d.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st = d.DurStats()
	if st.CheckpointVersion != ver || st.CheckpointTime.IsZero() {
		t.Fatalf("sharded checkpoint mark = (%d, %v), want (%d, recent)",
			st.CheckpointVersion, st.CheckpointTime, ver)
	}
	if st.WALSegments != 4 {
		t.Fatalf("sharded WAL segments after checkpoint = %d, want 4", st.WALSegments)
	}
}
