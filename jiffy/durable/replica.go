package durable

import (
	"cmp"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/persist"
	"repro/internal/tsc"
	"repro/jiffy"
)

// ReplicaMarker is the file a replica-owned directory carries. It keeps an
// unpromoted replica's data from being opened as a primary by mistake
// (OpenSharded refuses marked directories); Promote removes it, after
// which the directory is an ordinary durable store.
const ReplicaMarker = "REPLICA"

var (
	// ErrNotPromoted is returned by a Replica's write methods before
	// Promote: a replica's state is the primary's, applied at the
	// primary's versions, and local writes would fork it.
	ErrNotPromoted = errors.New("durable: replica is read-only until promoted")

	// ErrPromoted is returned by a Replica's apply methods after Promote:
	// a promoted replica issues its own versions and must not apply a
	// stale primary's records on top.
	ErrPromoted = errors.New("durable: replica already promoted")
)

// replClock drives a replica's version clock through its two lives. While
// replicating it is a manual clock the apply path sets to each record's
// version just before committing it, so the replica's history carries the
// primary's exact version numbers and its watermark means the same thing
// on both ends. Promote swaps in a strict clock floored at the watermark,
// so locally issued versions continue the same total order — and a later
// replica of the promoted node inherits unique versions.
type replClock struct {
	manual tsc.Manual
	strict atomic.Pointer[tsc.Strict]
}

func (c *replClock) Read() int64 {
	if s := c.strict.Load(); s != nil {
		return s.Read()
	}
	return c.manual.Read()
}

func (c *replClock) ReadAtLeast(min int64) int64 {
	if s := c.strict.Load(); s != nil {
		return s.ReadAtLeast(min)
	}
	return c.manual.ReadAtLeast(min)
}

// Replica is the apply side of replication: a durable sharded map whose
// state is a replicated prefix of a primary's history. It serves the full
// read API (snapshots, scans, point gets) at its watermark — the version
// below which every primary update is applied and locally durable — and
// refuses writes until Promote turns it into a primary.
//
// The inner store sits behind an atomic pointer rather than being
// embedded: when the primary can no longer serve the replica's resume
// point (its log was truncated past it), the stream falls back to a
// checkpoint bootstrap, and BeginBootstrap wipes the directory and swaps
// in a fresh store. Readers holding snapshots of the old store keep them
// (the in-memory index survives its WALs' close) until they close.
type Replica[K cmp.Ordered, V any] struct {
	dir    string
	shards int
	codec  Codec[K, V]
	opts   Options[K]

	// mu serializes state transitions — record apply, bootstrap,
	// checkpoint, promote — against each other. Reads never take it.
	mu        sync.Mutex
	cur       atomic.Pointer[Sharded[K, V]]
	clk       *replClock
	elog      *epochLog
	watermark atomic.Int64
	promoted  atomic.Bool
	closed    atomic.Bool
	batch     *jiffy.Batch[K, V] // apply scratch, guarded by mu
}

// OpenReplica opens (creating if needed) the replica store in dir,
// recovering its pre-crash state at the primary's exact versions. The
// recovered watermark — Watermark() — is the resume point the replication
// runner hands the primary: unique versions (the primary commits on a
// strict clock) make "every record strictly above it" a gap-free,
// duplicate-free resume.
//
// A directory holding primary data (no marker) is refused unless empty:
// pointing a replica at an existing primary store would silently fork two
// version histories.
func OpenReplica[K cmp.Ordered, V any](dir string, shards int, codec Codec[K, V], opts ...Options[K]) (*Replica[K, V], error) {
	if shards < 1 {
		shards = 1
	}
	var o Options[K]
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := codec.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	marker := filepath.Join(dir, ReplicaMarker)
	if _, err := os.Stat(marker); err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		for _, pat := range []string{"wal-*", "ckpt-*"} {
			if m, _ := filepath.Glob(filepath.Join(dir, pat)); len(m) > 0 {
				return nil, fmt.Errorf("durable: %s holds primary data; refusing to open it as a replica", dir)
			}
		}
		if err := os.WriteFile(marker, []byte("replica store; do not open as a primary\n"), 0o644); err != nil {
			return nil, err
		}
	}
	d, clk, wm, err := openReplicaStore[K, V](dir, shards, codec, o)
	if err != nil {
		return nil, err
	}
	elog, err := loadEpochLog(dir)
	if err != nil {
		d.Close()
		return nil, err
	}
	r := &Replica[K, V]{
		dir:    dir,
		shards: shards,
		codec:  codec,
		opts:   o,
		clk:    clk,
		elog:   elog,
		batch:  jiffy.NewBatch[K, V](16),
	}
	r.cur.Store(d)
	r.watermark.Store(wm)
	return r, nil
}

// MarkReplica writes the replica marker into dir, demoting a primary
// store directory to a replica one: the next OpenReplica recovers its
// state at the primary's exact versions and resumes (or re-bootstraps,
// when its history diverged past a promote boundary) from the fleet's
// current primary. This is the rejoin step for a fenced ex-primary; its
// epoch history survives, so the new primary can judge exactly how much
// of its state is still common history.
func MarkReplica(dir string) error {
	marker := filepath.Join(dir, ReplicaMarker)
	if _, err := os.Stat(marker); err == nil {
		return nil
	}
	return os.WriteFile(marker, []byte("replica store; do not open as a primary\n"), 0o644)
}

// openReplicaStore is OpenSharded with replica recovery semantics: the
// store runs on a manual clock and every log record replays as its own
// batch committed at the record's own version, so the recovered state —
// and the watermark derived from it — carries the primary's version
// numbers exactly. (OpenSharded replays whole-tail batches at fresh local
// versions, which is fine for a primary but would corrupt a resume point.)
func openReplicaStore[K cmp.Ordered, V any](dir string, shards int, codec Codec[K, V], o Options[K]) (*Sharded[K, V], *replClock, int64, error) {
	ckVer, ckPath, err := persist.LatestCheckpoint(dir)
	if errors.Is(err, persist.ErrNoCheckpoint) {
		ckVer, ckPath = 0, ""
	} else if err != nil {
		return nil, nil, 0, err
	}
	if err := persist.RemoveStaleCheckpointTemps(dir); err != nil {
		return nil, nil, 0, err
	}
	nWALs := shards
	if existing, err := filepath.Glob(filepath.Join(dir, "wal-*")); err == nil {
		for _, p := range existing {
			var i int
			if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d", &i); err == nil && i >= nWALs {
				nWALs = i + 1
			}
		}
	}
	wopts := persist.WALOptions{SegmentBytes: o.SegmentBytes, NoSync: o.NoSync, Metrics: o.Metrics}
	wals := make([]*persist.WAL, nWALs)
	var recs []persist.Record
	closeAll := func() {
		for _, w := range wals {
			if w != nil {
				w.Close()
			}
		}
	}
	for i := range wals {
		w, rs, err := persist.OpenWAL(shardWALDir(dir, i), wopts)
		if err != nil {
			closeAll()
			return nil, nil, 0, err
		}
		wals[i] = w
		recs = append(recs, rs...)
	}

	clk := &replClock{}
	clk.manual.Set(ckVer)
	so := o.Map
	so.Clock = clk
	s := jiffy.NewSharded[K, V](shards, so)

	// Checkpoint entries commit at the cut version itself: the manual
	// clock reads ckVer until the record replay advances it.
	if ckPath != "" {
		if err := loadCheckpoint(ckPath, codec, s.BatchUpdate); err != nil {
			closeAll()
			return nil, nil, 0, err
		}
	}
	tail := make([]persist.Record, 0, len(recs))
	for _, r := range recs {
		if r.Version > ckVer {
			tail = append(tail, r)
		}
	}
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].Version < tail[j].Version })
	wm := ckVer
	b := jiffy.NewBatch[K, V](16)
	for _, rec := range tail {
		b.Reset()
		if err := decodeOps(rec.Payload, codec, b); err != nil {
			closeAll()
			return nil, nil, 0, err
		}
		clk.manual.Set(rec.Version)
		s.BatchUpdate(b)
		if rec.Version > wm {
			wm = rec.Version
		}
	}
	d := &Sharded[K, V]{s: s, wals: wals, codec: codec, dir: dir, opts: o, floor: wm}
	d.ckpt.recover(ckVer, ckPath)
	return d, clk, wm, nil
}

// Watermark reports the replica's applied watermark: every primary update
// with version <= it is applied and locally durable, and nothing above it
// is visible to readers' floors. Zero means never synced (a fresh or
// mid-bootstrap replica), and the server refuses floor-bearing reads.
func (r *Replica[K, V]) Watermark() int64 { return r.watermark.Load() }

// Promoted reports whether Promote has run.
func (r *Replica[K, V]) Promoted() bool { return r.promoted.Load() }

// ApplyRecord applies one primary log record — ver is its commit version,
// payload its operation list in the WAL record encoding — and appends it
// to the local log at the same version. Records at or below the watermark
// (resume overlap) are skipped. The caller (internal/repl's runner) must
// apply records in ascending version order and only up to the primary's
// frontier; AdvanceTo then publishes the new watermark.
func (r *Replica[K, V]) ApplyRecord(ver int64, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	if r.promoted.Load() {
		return ErrPromoted
	}
	if ver <= r.watermark.Load() {
		return nil
	}
	d := r.cur.Load()
	b := r.batch.Reset()
	if err := decodeOps(payload, r.codec, b); err != nil {
		return err
	}
	ops := b.Ops()
	if len(ops) == 0 {
		return nil
	}
	// Set-then-commit pins the commit version to ver exactly: the manual
	// clock reads ver, and versions only ascend (the runner applies in
	// order), so no other read can interleave a larger value.
	r.clk.manual.Set(ver)
	d.s.BatchUpdate(b)
	wi := d.s.ShardOf(ops[0].Key)
	for _, op := range ops[1:] {
		if i := d.s.ShardOf(op.Key); i < wi {
			wi = i
		}
	}
	return appendRecord(d.wals[wi], ver, ops, r.codec)
}

// AdvanceTo raises the watermark to frontier — the primary's guarantee
// that every record at or below it has been delivered — and advances the
// clock with it so snapshots cut at the watermark even when the last
// applied record is older.
func (r *Replica[K, V]) AdvanceTo(frontier int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() || r.promoted.Load() {
		return
	}
	if frontier > r.watermark.Load() {
		r.clk.manual.Set(frontier)
		r.watermark.Store(frontier)
	}
}

// BeginBootstrap discards the replica's state ahead of a checkpoint
// bootstrap: the watermark drops to zero (reads are refused until the
// bootstrap completes), the directory is wiped — the marker survives —
// and a fresh empty store is swapped in. Snapshots of the old store
// remain readable until closed.
func (r *Replica[K, V]) BeginBootstrap() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	if r.promoted.Load() {
		return ErrPromoted
	}
	// Watermark first: if the wipe fails partway the replica claims
	// nothing rather than claiming state whose disk is half gone.
	r.watermark.Store(0)
	r.cur.Load().Close()
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Name() == ReplicaMarker || e.Name() == EpochFile {
			// The epoch history survives a bootstrap: the post-bootstrap
			// state is the primary's cut, and the adopted history entries
			// describe exactly that history.
			continue
		}
		if err := os.RemoveAll(filepath.Join(r.dir, e.Name())); err != nil {
			return err
		}
	}
	d, clk, _, err := openReplicaStore[K, V](r.dir, r.shards, r.codec, r.opts)
	if err != nil {
		return err
	}
	r.clk = clk
	r.cur.Store(d)
	return nil
}

// ApplyBootstrap applies one chunk of a checkpoint bootstrap: entries of
// the primary's consistent cut at version, committed at exactly that
// version. Chunks are not logged — FinishBootstrap makes the whole cut
// durable as a local checkpoint in one step.
func (r *Replica[K, V]) ApplyBootstrap(version int64, ops []jiffy.BatchOp[K, V]) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	if r.promoted.Load() {
		return ErrPromoted
	}
	if len(ops) == 0 {
		return nil
	}
	d := r.cur.Load()
	b := r.batch.Reset()
	for _, op := range ops {
		b.Add(op)
	}
	r.clk.manual.Set(version)
	d.s.BatchUpdate(b)
	return nil
}

// FinishBootstrap completes a bootstrap: the applied cut is checkpointed
// locally (crash before this point re-bootstraps from scratch; after it,
// recovery resumes from version), and the watermark becomes version.
func (r *Replica[K, V]) FinishBootstrap(version int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return ErrClosed
	}
	if r.promoted.Load() {
		return ErrPromoted
	}
	d := r.cur.Load()
	r.clk.manual.Set(version)
	if _, err := d.Checkpoint(); err != nil {
		return err
	}
	r.watermark.Store(version)
	return nil
}

// Promote turns the replica into a primary: applies are refused from here
// on, the clock switches to a strict clock floored at the current version
// — locally issued versions continue the primary's total order, uniquely
// — and the marker file is removed so a restart opens the directory as an
// ordinary durable store. It returns the watermark the node promoted at.
// The caller (internal/repl's runner) must first apply every record it
// has buffered, acknowledged or not: synchronous acks mean anything the
// old primary acked to a client has reached this replica's buffer.
// Promote is idempotent. It bumps the fencing epoch by one; automatic
// failover uses PromoteAt to promote under a specific epoch instead.
func (r *Replica[K, V]) Promote() (int64, error) {
	return r.PromoteAt(r.elog.current() + 1)
}

// PromoteAt is Promote under an explicit fencing epoch: the promote
// boundary (the watermark) is recorded in the persisted epoch history
// BEFORE the node starts issuing versions, so any store that later
// compares histories can tell exactly where this node's writes depart
// from the old primary's. epoch must exceed the replica's current epoch.
// Idempotent once promoted (the epoch argument is then ignored).
func (r *Replica[K, V]) PromoteAt(epoch int64) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return 0, ErrClosed
	}
	wm := r.watermark.Load()
	if r.promoted.Load() {
		return wm, nil
	}
	if cur := r.elog.current(); epoch <= cur {
		return 0, fmt.Errorf("durable: promote epoch %d not above current epoch %d", epoch, cur)
	}
	// History first: a crash between the two steps leaves an unpromoted
	// replica claiming a high epoch — it rejoins as a replica and the
	// claim is harmless noise. The reverse order could leave a promoted
	// primary at a stale epoch: unfenceable split-brain.
	if err := r.elog.advance(epoch, wm); err != nil {
		return 0, err
	}
	r.clk.strict.Store(tsc.NewStrictAt(r.clk.manual.Read()))
	r.promoted.Store(true)
	if err := os.Remove(filepath.Join(r.dir, ReplicaMarker)); err != nil && !os.IsNotExist(err) {
		return wm, err
	}
	return wm, nil
}

// Epoch reports the replica's fencing epoch — the newest epoch it has
// adopted from a primary or promoted under (1: the implicit first
// epoch).
func (r *Replica[K, V]) Epoch() int64 { return r.elog.current() }

// EpochStart reports the version the current epoch began at.
func (r *Replica[K, V]) EpochStart() int64 { return r.elog.currentStart() }

// EpochBoundaryAbove reports the divergence bound for a peer at epoch e
// (see Sharded.EpochBoundaryAbove); meaningful once promoted and
// serving replicas of its own.
func (r *Replica[K, V]) EpochBoundaryAbove(e int64) int64 { return r.elog.boundaryAbove(e) }

// AdoptEpoch records the primary's (epoch, start) pair in the local
// epoch history. The replication runner calls it with every
// OpReplEpoch frame; an epoch at or below the current one is a no-op
// (reconnects re-announce), and adopting is refused after promotion —
// a promoted node only moves its epoch by promoting again.
func (r *Replica[K, V]) AdoptEpoch(epoch, start int64) error {
	if r.closed.Load() {
		return ErrClosed
	}
	if r.promoted.Load() {
		return ErrPromoted
	}
	if epoch <= r.elog.current() {
		return nil
	}
	return r.elog.advance(epoch, start)
}

// EpochHistory returns a copy of the persisted epoch history.
func (r *Replica[K, V]) EpochHistory() []EpochEntry { return r.elog.history() }

// NumShards returns the number of shards.
func (r *Replica[K, V]) NumShards() int { return r.cur.Load().NumShards() }

// Get returns the most recent replicated value stored for key.
func (r *Replica[K, V]) Get(key K) (V, bool) { return r.cur.Load().Get(key) }

// Len counts the entries visible in an ephemeral snapshot (O(n)).
func (r *Replica[K, V]) Len() int { return r.cur.Load().Len() }

// Snapshot registers and returns a consistent cross-shard snapshot of the
// replicated state; its version is at most the watermark.
func (r *Replica[K, V]) Snapshot() *jiffy.ShardedSnapshot[K, V] { return r.cur.Load().Snapshot() }

// Range calls fn for every entry with lo <= key < hi, in globally
// ascending key order, on an ephemeral snapshot, until fn returns false.
func (r *Replica[K, V]) Range(lo, hi K, fn func(key K, val V) bool) { r.cur.Load().Range(lo, hi, fn) }

// RangeFrom calls fn for every entry with key >= lo, ascending, on an
// ephemeral snapshot, until fn returns false.
func (r *Replica[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) { r.cur.Load().RangeFrom(lo, fn) }

// All calls fn for every entry, ascending, on an ephemeral snapshot,
// until fn returns false.
func (r *Replica[K, V]) All(fn func(key K, val V) bool) { r.cur.Load().All(fn) }

// Iter returns a streaming iterator over a consistent snapshot taken at
// call time.
func (r *Replica[K, V]) Iter() jiffy.Iterator[K, V] { return r.cur.Load().Iter() }

// Stats reports aggregated structural diagnostics across all shards.
func (r *Replica[K, V]) Stats() jiffy.Stats { return r.cur.Load().Stats() }

// DurStats reports log and checkpoint state, with ReplWatermark set.
func (r *Replica[K, V]) DurStats() DurStats {
	st := r.cur.Load().DurStats()
	st.ReplWatermark = r.watermark.Load()
	return st
}

// Checkpoint writes one checkpoint of the replicated state and truncates
// the local logs below it. Serialized with the apply path so the cut
// always lands on a watermark, never between a record and its frontier.
func (r *Replica[K, V]) Checkpoint() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return 0, ErrClosed
	}
	return r.cur.Load().Checkpoint()
}

// Put sets the value for key (promoted replicas only).
func (r *Replica[K, V]) Put(key K, val V) error {
	_, err := r.PutV(key, val)
	return err
}

// PutV is Put, reporting the commit version (promoted replicas only).
func (r *Replica[K, V]) PutV(key K, val V) (int64, error) {
	if !r.promoted.Load() {
		return 0, ErrNotPromoted
	}
	return r.cur.Load().PutV(key, val)
}

// Remove deletes key (promoted replicas only).
func (r *Replica[K, V]) Remove(key K) (bool, error) {
	_, ok, err := r.RemoveV(key)
	return ok, err
}

// RemoveV is Remove, reporting the commit version (promoted replicas
// only).
func (r *Replica[K, V]) RemoveV(key K) (int64, bool, error) {
	if !r.promoted.Load() {
		return 0, false, ErrNotPromoted
	}
	return r.cur.Load().RemoveV(key)
}

// BatchUpdate applies b atomically (promoted replicas only).
func (r *Replica[K, V]) BatchUpdate(b *jiffy.Batch[K, V]) error {
	_, err := r.BatchUpdateV(b)
	return err
}

// BatchUpdateV is BatchUpdate, reporting the commit version (promoted
// replicas only).
func (r *Replica[K, V]) BatchUpdateV(b *jiffy.Batch[K, V]) (int64, error) {
	if !r.promoted.Load() {
		return 0, ErrNotPromoted
	}
	return r.cur.Load().BatchUpdateV(b)
}

// SetFeed installs a replication tap on a promoted replica, letting it
// serve replicas of its own (see Sharded.SetFeed).
func (r *Replica[K, V]) SetFeed(f Feed) { r.cur.Load().SetFeed(f) }

// TailAbove streams the local log's records above version (see
// Sharded.TailAbove).
func (r *Replica[K, V]) TailAbove(version int64) ([]TailRecord, error) {
	return r.cur.Load().TailAbove(version)
}

// RecoveredVersion reports the version floor below which every update is
// already durable locally: the replicated watermark once the stream has
// applied records (each applied record is WAL-durable before the
// watermark advances past it), else the floor recovery established. A
// freshly promoted node hands this to its own replication tap, so the
// frontier it announces to clients and replicas starts at the history it
// actually holds rather than at the open-time floor (a replica that
// booted empty has floor 0 — announcing that would make rediscovering
// clients refuse the new primary as behind their acked writes).
func (r *Replica[K, V]) RecoveredVersion() int64 {
	if wm := r.watermark.Load(); wm > 0 {
		return wm
	}
	return r.cur.Load().RecoveredVersion()
}

// Close syncs and closes the local logs. Idempotent.
func (r *Replica[K, V]) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Swap(true) {
		return nil
	}
	return r.cur.Load().Close()
}
