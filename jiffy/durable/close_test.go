package durable

import (
	"errors"
	"testing"

	"repro/jiffy"
)

// TestMapCloseIdempotent checks double-Close on durable.Map is clean and
// post-close updates fail fast with ErrClosed while reads keep working.
func TestMapCloseIdempotent(t *testing.T) {
	d, err := Open(t.TempDir(), u64Codec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v (want nil: Close must be idempotent)", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("third close: %v", err)
	}

	// Updates after close fail with ErrClosed, before touching memory.
	if err := d.Put(2, 20); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: err = %v, want ErrClosed", err)
	}
	if _, err := d.Remove(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("remove after close: err = %v, want ErrClosed", err)
	}
	if err := d.BatchUpdate(jiffy.NewBatch[uint64, uint64](1).Put(3, 30)); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: err = %v, want ErrClosed", err)
	}
	if _, err := d.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: err = %v, want ErrClosed", err)
	}
	if _, ok := d.Get(2); ok {
		t.Fatal("post-close put landed in memory despite ErrClosed")
	}

	// Reads survive close (the in-memory index is intact).
	if v, ok := d.Get(1); !ok || v != 10 {
		t.Fatalf("get after close = %d/%v, want 10", v, ok)
	}
}

// TestShardedCloseIdempotent is the sharded mirror of the double-close
// contract.
func TestShardedCloseIdempotent(t *testing.T) {
	d, err := OpenSharded(t.TempDir(), 4, u64Codec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v (want nil: Close must be idempotent)", err)
	}
	if err := d.Put(2, 20); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: err = %v, want ErrClosed", err)
	}
	if _, err := d.Remove(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("remove after close: err = %v, want ErrClosed", err)
	}
	if err := d.BatchUpdate(jiffy.NewBatch[uint64, uint64](1).Put(3, 30)); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: err = %v, want ErrClosed", err)
	}
	if _, err := d.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: err = %v, want ErrClosed", err)
	}
	if v, ok := d.Get(1); !ok || v != 10 {
		t.Fatalf("get after close = %d/%v, want 10", v, ok)
	}
}
