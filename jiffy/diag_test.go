package jiffy

import "testing"

func TestMapStats(t *testing.T) {
	m := New[uint64, int]()
	for i := uint64(0); i < 2000; i++ {
		m.Put(i, int(i))
	}
	s := m.Stats()
	if s.Entries != 2000 {
		t.Fatalf("Entries = %d, want 2000", s.Entries)
	}
	if s.Nodes <= 1 {
		t.Fatalf("Nodes = %d: 2000 entries cannot fit one node", s.Nodes)
	}
	if s.MinRevisionSize < 0 || s.MaxRevisionSize < s.MinRevisionSize {
		t.Fatalf("revision size bounds inconsistent: %d..%d", s.MinRevisionSize, s.MaxRevisionSize)
	}
	if s.AvgRevisionSize <= 0 || s.IndexLevels < 1 {
		t.Fatalf("avg %f levels %d", s.AvgRevisionSize, s.IndexLevels)
	}
	// Recycling diagnostics: after 2000 puts the payload allocator has
	// been exercised (hits + misses > 0), bytes have cycled through the
	// pools, and the global epoch is at or past its initial value.
	if s.PoolHits+s.PoolMisses == 0 {
		t.Fatalf("no payload allocations recorded: %+v", s)
	}
	if s.PoolHits == 0 || s.RecycledBytes == 0 {
		t.Fatalf("recycler never engaged: hits=%d recycled=%d", s.PoolHits, s.RecycledBytes)
	}
	if s.Epoch < 2 {
		t.Fatalf("epoch = %d, below initial", s.Epoch)
	}
}

func TestShardedStatsAggregates(t *testing.T) {
	s := NewSharded[uint64, int](4)
	for i := uint64(0); i < 3000; i++ {
		s.Put(i, int(i))
	}
	agg := s.Stats()
	if agg.Entries != 3000 {
		t.Fatalf("aggregated Entries = %d, want 3000", agg.Entries)
	}
	if agg.PoolHits+agg.PoolMisses == 0 || agg.Epoch < 2 {
		t.Fatalf("recycling diagnostics not aggregated: %+v", agg)
	}
	// Sums across shards must cover every shard's contribution: the
	// aggregate node count is at least the shard count (each shard has a
	// base node) and the extrema are at least one shard's.
	if agg.Nodes < 4 {
		t.Fatalf("aggregated Nodes = %d with 4 shards", agg.Nodes)
	}
	one := s.shards[0].Stats()
	if agg.MaxRevisionSize < one.MaxRevisionSize || agg.IndexLevels < one.IndexLevels {
		t.Fatal("aggregate extrema below a single shard's")
	}
	if agg.AvgRevisionSize <= 0 {
		t.Fatalf("AvgRevisionSize = %f", agg.AvgRevisionSize)
	}
}

func TestSnapshotLenIsolation(t *testing.T) {
	m := New[int, int]()
	for i := 0; i < 100; i++ {
		m.Put(i, i)
	}
	snap := m.Snapshot()
	defer snap.Close()
	for i := 100; i < 150; i++ {
		m.Put(i, i)
	}
	if n := snap.Len(); n != 100 {
		t.Fatalf("snapshot Len = %d, want 100", n)
	}
	if n := m.Len(); n != 150 {
		t.Fatalf("map Len = %d, want 150", n)
	}

	s := NewSharded[int, int](3)
	for i := 0; i < 100; i++ {
		s.Put(i, i)
	}
	ss := s.Snapshot()
	defer ss.Close()
	s.Put(1000, 1)
	if n := ss.Len(); n != 100 {
		t.Fatalf("sharded snapshot Len = %d, want 100", n)
	}
}

func TestClockStartFloorsVersions(t *testing.T) {
	const floor = 1 << 40
	m := New[int, int](Options[int]{ClockStart: floor})
	m.Put(1, 1)
	snap := m.Snapshot()
	defer snap.Close()
	if v := snap.Version(); v <= floor {
		t.Fatalf("version %d not above ClockStart %d", v, floor)
	}
	s := NewSharded[int, int](2, Options[int]{ClockStart: floor})
	s.Put(1, 1)
	ss := s.Snapshot()
	defer ss.Close()
	if v := ss.Version(); v <= floor {
		t.Fatalf("sharded version %d not above ClockStart %d", v, floor)
	}
}
