// Package jiffy is the public API of this repository's reproduction of
// Jiffy (Kobus, Kokociński, Wojciechowski: "Jiffy: a lock-free skip list
// with batch updates and snapshots", PPoPP 2022): a linearizable, lock-free
// ordered key-value map with atomic multi-key batch updates and O(1)
// consistent snapshots.
//
// Two frontends are provided:
//
//   - Map is the single-structure Jiffy index of the paper. Every operation
//     is lock-free and safe for concurrent use by any number of goroutines.
//   - Sharded hash-partitions keys across N independent Jiffy maps so that
//     updates scale across cores, while batch updates stay atomic across
//     shards and snapshots and range scans stay consistent across shards.
//
// The implementation lives in internal/core; this package is the stable
// surface outside code should build against. See README.md for a tour and
// DESIGN.md for the internals.
package jiffy

import (
	"cmp"

	"repro/internal/core"
	"repro/internal/tsc"
)

// Map is a Jiffy ordered key-value map. It supports point reads and
// updates, atomic batch updates, O(1) consistent snapshots, and snapshot
// range scans, all linearizable and safe for concurrent use. Create one
// with New; the zero value is not usable.
type Map[K cmp.Ordered, V any] struct {
	m *core.Map[K, V]
}

// Options tunes a Map or a Sharded map. The zero value selects the paper's
// defaults, which are right for almost every workload.
type Options[K cmp.Ordered] struct {
	// Hash maps a key to the 16-bit hash used by the per-revision hash
	// index (§3.3.5 of the paper). The default is a type-appropriate
	// mixer for every ordered key type; set it only for key types whose
	// natural encoding collides badly.
	Hash func(K) uint16

	// MinRevisionSize and MaxRevisionSize bound the autoscaler's target
	// revision size (defaults 25 and 300, the paper's §3.3.6 bounds).
	MinRevisionSize int
	MaxRevisionSize int

	// FixedRevisionSize, when > 0, pins the revision size and disables
	// the autoscaling policy.
	FixedRevisionSize int

	// DisableHashIndex turns off the per-revision hash index so point
	// lookups fall back to binary search.
	DisableHashIndex bool

	// DisableRecycling turns off the epoch-protected recycling of pruned
	// revisions' payload buffers (every update then allocates fresh
	// arrays). A safety valve and ablation knob; leave it off for the
	// allocation-frugal default.
	DisableRecycling bool

	// DisableChainSeek turns off the per-revision back-skip pointers that
	// give snapshot reads and scans O(log k) seeks into long revision
	// chains, so every version lookup walks the chain linearly from the
	// head. An ablation knob (and the baseline the deep-chain benchmarks
	// compare against); leave it off.
	DisableChainSeek bool

	// ClockStart, when > 0, rebases the map's version clock so that every
	// version it issues is strictly greater than ClockStart. The
	// durability layer (jiffy/durable) sets it on recovery so versions
	// stay monotonic across restarts — replayed history and new updates
	// must share one total order. Most callers leave it zero.
	ClockStart int64

	// Clock, when non-nil, replaces the version clock entirely and
	// ClockStart is ignored — the caller owns flooring. The replication
	// layer uses it: a replicated primary commits on a strictly
	// increasing clock (tsc.Strict) so versions are unique and a
	// replica's resume watermark is unambiguous, and a replica drives a
	// manual clock so records apply at the primary's exact versions.
	// Everything else should leave it nil.
	Clock tsc.Clock
}

// coreOptions converts the public options into internal/core's options.
func (o Options[K]) coreOptions() core.Options[K] {
	co := core.Options[K]{
		Hash:              o.Hash,
		MinRevisionSize:   o.MinRevisionSize,
		MaxRevisionSize:   o.MaxRevisionSize,
		FixedRevisionSize: o.FixedRevisionSize,
		DisableHashIndex:  o.DisableHashIndex,
		DisableRecycling:  o.DisableRecycling,
		DisableChainSeek:  o.DisableChainSeek,
	}
	switch {
	case o.Clock != nil:
		co.Clock = o.Clock
	case o.ClockStart > 0:
		co.Clock = tsc.NewMonotonicAt(o.ClockStart)
	}
	return co
}

// New returns an empty Map. Pass no argument for the paper's defaults.
func New[K cmp.Ordered, V any](opts ...Options[K]) *Map[K, V] {
	var o Options[K]
	if len(opts) > 0 {
		o = opts[0]
	}
	return &Map[K, V]{m: core.New[K, V](o.coreOptions())}
}

// Get returns the most recent value stored for key. Get is linearizable:
// it observes every update that completed before it and never observes a
// half-applied batch.
func (m *Map[K, V]) Get(key K) (V, bool) { return m.m.Get(key) }

// Put sets the value for key, overwriting any previous value.
func (m *Map[K, V]) Put(key K, val V) { m.m.Put(key, val) }

// PutVersioned is Put, but additionally reports the version number the
// update committed at: every snapshot with Version() >= the returned value
// observes the update, every older snapshot does not. The durability layer
// uses it to tag write-ahead-log records.
func (m *Map[K, V]) PutVersioned(key K, val V) int64 { return m.m.PutVersioned(key, val) }

// Remove deletes key and reports whether it was present.
func (m *Map[K, V]) Remove(key K) bool { return m.m.Remove(key) }

// RemoveVersioned is Remove, but additionally reports the version number
// the remove committed at (see PutVersioned). Removing an absent key
// performs no update and reports version zero.
func (m *Map[K, V]) RemoveVersioned(key K) (int64, bool) { return m.m.RemoveVersioned(key) }

// Len counts the entries visible in an ephemeral snapshot. It is O(n) and
// intended for tests and diagnostics, not hot paths.
func (m *Map[K, V]) Len() int { return m.m.Len() }

// BatchUpdate applies every operation in b in one atomic, linearizable
// step: a concurrent reader or snapshot observes either all of the batch's
// effects or none of them. If a key appears more than once in the batch the
// last operation wins. The batch may be reused afterwards.
func (m *Map[K, V]) BatchUpdate(b *Batch[K, V]) {
	m.m.BatchUpdate(b.core())
}

// BatchUpdateVersioned is BatchUpdate, but additionally reports the version
// number the batch committed at — its single linearization point (see
// PutVersioned). An empty batch performs no update and reports version
// zero.
func (m *Map[K, V]) BatchUpdateVersioned(b *Batch[K, V]) int64 {
	return m.m.BatchUpdateVersioned(b.core())
}

// Snapshot registers and returns a consistent read-only view of the map as
// of the call. Taking a snapshot is O(1) and never blocks updates. Close
// the snapshot when done so the internal garbage collector can reclaim the
// history it pins.
func (m *Map[K, V]) Snapshot() *Snapshot[K, V] {
	return &Snapshot[K, V]{s: m.m.Snapshot()}
}

// Range calls fn for every entry with lo <= key < hi, in ascending key
// order, on an ephemeral snapshot taken at call time, until fn returns
// false.
func (m *Map[K, V]) Range(lo, hi K, fn func(key K, val V) bool) { m.m.Range(lo, hi, fn) }

// RangeFrom calls fn for every entry with key >= lo, ascending, on an
// ephemeral snapshot, until fn returns false.
func (m *Map[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) { m.m.RangeFrom(lo, fn) }

// All calls fn for every entry, ascending, on an ephemeral snapshot, until
// fn returns false.
func (m *Map[K, V]) All(fn func(key K, val V) bool) { m.m.All(fn) }
