package jiffy

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectRange gathers a view's entries via the push-style Range surface.
func collectRange(v View[uint64, uint64], lo uint64, limit int) (keys, vals []uint64) {
	v.RangeFrom(lo, func(k, val uint64) bool {
		keys = append(keys, k)
		vals = append(vals, val)
		return len(keys) < limit
	})
	return keys, vals
}

// collectIter gathers the same entries via the view's iterator.
func collectIter(v View[uint64, uint64], lo uint64, limit int) (keys, vals []uint64) {
	it := v.Iter()
	defer it.Close()
	it.Seek(lo)
	for len(keys) < limit && it.Next() {
		keys = append(keys, it.Key())
		vals = append(vals, it.Value())
	}
	return keys, vals
}

func assertSame(t *testing.T, label string, k1, v1, k2, v2 []uint64) {
	t.Helper()
	if len(k1) != len(k2) {
		t.Fatalf("%s: Range saw %d entries, Iter saw %d", label, len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] || v1[i] != v2[i] {
			t.Fatalf("%s: entry %d: Range (%d,%d), Iter (%d,%d)", label, i, k1[i], v1[i], k2[i], v2[i])
		}
	}
}

// TestIteratorEquivalence checks, on every view flavor, that the streaming
// iterator delivers exactly the entries (and order) of the push-style
// scans: full scans, bounded windows, mid-range seeks and re-seeks on one
// pooled iterator.
func TestIteratorEquivalence(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewPCG(1, 2))
	m := New[uint64, uint64]()
	s := NewSharded[uint64, uint64](4)
	for i := 0; i < n; i++ {
		k := rng.Uint64() % (3 * n)
		m.Put(k, k*2+1)
		s.Put(k, k*2+1)
	}
	ms := m.Snapshot()
	defer ms.Close()
	ss := s.Snapshot()
	defer ss.Close()

	views := map[string]View[uint64, uint64]{
		"map": m, "sharded": s, "snapshot": ms, "sharded-snapshot": ss,
	}
	for label, v := range views {
		for _, tc := range []struct {
			lo    uint64
			limit int
		}{
			{0, int(^uint(0) >> 1)}, // everything
			{0, 100},                // bounded prefix
			{n, 250},                // mid-range window
			{3*n - 10, 100},         // tail, fewer entries than asked
			{3 * n, 10},             // beyond the last key
		} {
			k1, v1 := collectRange(v, tc.lo, tc.limit)
			k2, v2 := collectIter(v, tc.lo, tc.limit)
			assertSame(t, label, k1, v1, k2, v2)
		}

		// Re-seek on one iterator: positions must fully reset.
		it := v.Iter()
		it.Seek(n)
		for i := 0; i < 10 && it.Next(); i++ {
		}
		it.Seek(0)
		var k3, v3 []uint64
		for len(k3) < 50 && it.Next() {
			k3 = append(k3, it.Key())
			v3 = append(v3, it.Value())
		}
		it.Close()
		k1, v1 := collectRange(v, 0, 50)
		assertSame(t, label+"/reseek", k1, v1, k3, v3)
	}
}

// TestIteratorUnseeked checks that a fresh iterator (no Seek) starts at
// the smallest key, matching All.
func TestIteratorUnseeked(t *testing.T) {
	m := New[uint64, uint64]()
	s := NewSharded[uint64, uint64](3)
	for i := uint64(0); i < 500; i++ {
		m.Put(i*7%501, i)
		s.Put(i*7%501, i)
	}
	for label, v := range map[string]View[uint64, uint64]{"map": m, "sharded": s} {
		var want []uint64
		v.All(func(k, _ uint64) bool { want = append(want, k); return true })
		it := v.Iter()
		var got []uint64
		for it.Next() {
			got = append(got, it.Key())
		}
		it.Close()
		if len(got) != len(want) {
			t.Fatalf("%s: unseeked iterator saw %d entries, All saw %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: entry %d: iterator %d, All %d", label, i, got[i], want[i])
			}
		}
	}
}

// TestIteratorDoubleClose checks that a second Close is a no-op on both
// iterator flavors: double-pooling one iterator would hand the same
// object to two later scans.
func TestIteratorDoubleClose(t *testing.T) {
	m := New[uint64, uint64]()
	s := NewSharded[uint64, uint64](3)
	for i := uint64(0); i < 300; i++ {
		m.Put(i, i)
		s.Put(i, i)
	}
	for label, v := range map[string]View[uint64, uint64]{"map": m, "sharded": s} {
		it := v.Iter()
		it.Seek(0)
		it.Next()
		it.Close()
		it.Close() // must not double-pool
		a, b := v.Iter(), v.Iter()
		if a == b {
			t.Fatalf("%s: double Close handed one pooled iterator to two scans", label)
		}
		a.Close()
		b.Close()
	}
}

// TestIteratorSnapshotIsolation checks that an iterator over a snapshot
// (and one owned by a live map's Iter) does not observe updates applied
// after it was created, even across its chunked refills.
func TestIteratorSnapshotIsolation(t *testing.T) {
	m := New[uint64, uint64]()
	for i := uint64(0); i < 1000; i++ {
		m.Put(i*2, i) // even keys only
	}
	it := m.Iter()
	defer it.Close()
	it.Seek(0)
	seen := 0
	for it.Next() {
		if it.Key()%2 != 0 {
			t.Fatalf("iterator observed post-creation key %d", it.Key())
		}
		seen++
		if seen == 1 {
			// Interleave updates between refills: odd keys and
			// overwrites must stay invisible.
			for i := uint64(0); i < 1000; i++ {
				m.Put(i*2+1, i)
			}
		}
	}
	if seen != 1000 {
		t.Fatalf("iterator saw %d entries, want the original 1000", seen)
	}
}

// TestParallelMergedScan forces the prefetch escalation (GOMAXPROCS > 1,
// scans much longer than the threshold) and checks that long merged scans
// remain exact and consistent, that early exits shut the producers down,
// and that no goroutines leak across many scans.
func TestParallelMergedScan(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const n = 20000
	s := NewSharded[uint64, uint64](4)
	for i := uint64(0); i < n; i++ {
		s.Put(i, i+1)
	}
	snap := s.Snapshot()
	defer snap.Close()

	base := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		// Full scan: every key in order (well past the escalation
		// threshold, so the prefetch stage carries most of it).
		next := uint64(0)
		snap.All(func(k, v uint64) bool {
			if k != next || v != k+1 {
				t.Fatalf("round %d: got (%d,%d), want (%d,%d)", round, k, v, next, next+1)
			}
			next++
			return true
		})
		if next != n {
			t.Fatalf("round %d: full scan saw %d entries, want %d", round, next, n)
		}

		// Early exit just past the threshold: producers must be stopped
		// and joined by the scan's release.
		seen := 0
		snap.RangeFrom(3, func(uint64, uint64) bool {
			seen++
			return seen < 700
		})
		if seen != 700 {
			t.Fatalf("round %d: early-exit scan saw %d entries", round, seen)
		}

		// Iterator flavor, abandoned mid-stream.
		it := snap.Iter()
		it.Seek(0)
		for i := 0; i < 800 && it.Next(); i++ {
		}
		it.Close()
	}
	// All producer goroutines must have exited (allow scheduler slack).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Fatalf("goroutine leak: %d running, baseline %d", g, base)
	}
}

// TestParallelMergedScanUnderWriters runs long escalated scans while
// writers mutate every shard: the snapshot cut must stay exact. Run with
// -race to exercise the producer/consumer hand-off.
func TestParallelMergedScanUnderWriters(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const n = 8000
	s := NewSharded[uint64, uint64](4)
	for i := uint64(0); i < n; i++ {
		s.Put(i*2, i) // even keys
	}
	// The cut is fixed before any writer starts, so every odd key is a
	// post-cut update and must stay invisible to the scans below.
	snap := s.Snapshot()
	var stop atomic.Bool
	var bg sync.WaitGroup
	for w := 0; w < 2; w++ {
		bg.Add(1)
		go func(seed uint64) {
			defer bg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^7))
			for !stop.Load() {
				k := rng.Uint64() % (4 * n)
				s.Put(k*2+1, k) // odd keys: must stay invisible to the cut
			}
		}(uint64(w + 1))
	}
	for round := 0; round < 10; round++ {
		count := 0
		snap.All(func(k, _ uint64) bool {
			if k%2 != 0 {
				t.Errorf("round %d: scan leaked post-cut key %d", round, k)
				return false
			}
			count++
			return true
		})
		if count != n {
			t.Errorf("round %d: scan saw %d entries, want %d", round, count, n)
		}
	}
	snap.Close()
	stop.Store(true)
	bg.Wait()
}
