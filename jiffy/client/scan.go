package client

import (
	"cmp"
	"encoding/binary"
	"fmt"

	"repro/internal/wire"
)

// Scanner streams entries in ascending key order by pulling cursored
// pages from the server: each page is one OpScan round trip, and between
// pages the server holds no iterator, no buffer and no epoch pin for this
// scan — a Scanner consumed arbitrarily slowly costs the server nothing
// beyond its session's snapshot registration (nothing at all for live
// scans). The method set matches jiffy.Iterator:
//
//	sc := snap.Scan(lo)
//	defer sc.Close()
//	for sc.Next() {
//		use(sc.Key(), sc.Value())
//	}
//	if err := sc.Err(); err != nil { ... }
//
// plus Err, which reports the transport or decode error that ended the
// scan early (Next returns false on error). A Scanner is not safe for
// concurrent use.
type Scanner[K cmp.Ordered, V any] struct {
	c      *Client[K, V]
	nc     *netConn
	snapID uint64

	keys []K
	vals []V
	pos  int

	mode    byte // wire.ScanFromStart / ScanInclusive / ScanExclusive
	cursor  K
	replica bool // nc is a replica connection; pages fall back to the primary on failure
	done    bool
	err     error

	body []byte // request scratch
	page []byte // response scratch
}

// newScanner builds a scanner bound to nc (or a fresh connection when nc
// is nil — a replica when the client has them, else a primary pool
// connection), scanning snapID (0: live).
func newScanner[K cmp.Ordered, V any](c *Client[K, V], nc *netConn, snapID uint64) *Scanner[K, V] {
	sc := &Scanner[K, V]{c: c, nc: nc, snapID: snapID, mode: wire.ScanFromStart}
	if sc.nc == nil {
		sc.pickConn()
	}
	return sc
}

// pickConn binds a live scanner to a connection: a replica when
// configured, else a primary pool connection.
func (sc *Scanner[K, V]) pickConn() {
	if nc, err := sc.c.replicaConn(); err == nil {
		sc.nc, sc.replica = nc, true
		return
	}
	sc.replica = false
	sc.nc, sc.err = sc.c.conn()
	sc.done = sc.err != nil
}

// Seek repositions the scanner just before the first entry with key >=
// key; the following Next moves onto it. Seeking an exhausted or errored
// scanner restarts it.
func (sc *Scanner[K, V]) Seek(key K) {
	sc.keys = sc.keys[:0]
	sc.vals = sc.vals[:0]
	sc.pos = 0
	sc.mode = wire.ScanInclusive
	sc.cursor = key
	sc.done = false
	sc.err = nil
	// Live scans may hop to a healthy connection on restart; a session
	// scan must stay on the connection owning its session.
	if sc.nc == nil || (sc.snapID == 0 && sc.nc.broken()) {
		sc.pickConn()
	}
}

// Next advances to the next entry, fetching the next page when the buffer
// runs dry, and reports whether an entry is available. It returns false at
// the end of the key range and on error (check Err).
func (sc *Scanner[K, V]) Next() bool {
	if sc.pos+1 < len(sc.keys) {
		sc.pos++
		return true
	}
	if sc.done {
		sc.keys = sc.keys[:0]
		sc.vals = sc.vals[:0]
		sc.pos = 0
		return false
	}
	sc.fetchPage()
	return len(sc.keys) > 0
}

// Key returns the current entry's key. Valid only after a Next that
// returned true.
func (sc *Scanner[K, V]) Key() K { return sc.keys[sc.pos] }

// Value returns the current entry's value. Valid only after a Next that
// returned true.
func (sc *Scanner[K, V]) Value() V { return sc.vals[sc.pos] }

// Err returns the error that terminated the scan, if any. A scan that
// ran off the end of the key range reports nil.
func (sc *Scanner[K, V]) Err() error { return sc.err }

// Close releases the scanner. Cursored scans hold no server-side state,
// so Close is purely local; it exists to satisfy the iterator contract
// (and callers' habits). Using a closed scanner restarts it via Seek.
func (sc *Scanner[K, V]) Close() {
	sc.done = true
	sc.keys = sc.keys[:0]
	sc.vals = sc.vals[:0]
	sc.pos = 0
}

// fetchPage pulls and decodes the next cursored page into the scanner's
// buffers.
func (sc *Scanner[K, V]) fetchPage() {
	sc.keys = sc.keys[:0]
	sc.vals = sc.vals[:0]
	sc.pos = 0

	var floor int64
	if sc.snapID == 0 && sc.replica {
		floor = sc.c.floor.Load()
	}
	body := sc.body[:0]
	body = binary.LittleEndian.AppendUint64(body, sc.snapID)
	body = binary.LittleEndian.AppendUint64(body, uint64(floor))
	body = binary.LittleEndian.AppendUint32(body, uint32(sc.c.opts.ScanPageSize))
	body = append(body, sc.mode)
	if sc.mode != wire.ScanFromStart {
		var kbuf [16]byte
		body = wire.AppendBytes(body, sc.c.codec.Key.Append(kbuf[:0], sc.cursor))
	}
	sc.body = body

	status, resp, err := sc.nc.roundTrip(wire.OpScan, body, sc.page)
	sc.page = resp
	if (err != nil || status != wire.StatusOK) && sc.replica {
		// The replica failed this page (transport drop, lagging behind
		// the floor, mid-scan re-bootstrap): finish the scan against the
		// primary. Cursor state is untouched, so the page re-fetches from
		// the same position.
		sc.replica = false
		sc.nc, err = sc.c.conn()
		if err != nil {
			sc.fail(err)
			return
		}
		binary.LittleEndian.PutUint64(body[8:16], 0) // no floor on the primary
		status, resp, err = sc.nc.roundTrip(wire.OpScan, body, sc.page)
		sc.page = resp
	}
	if err != nil {
		sc.fail(err)
		return
	}
	if status != wire.StatusOK {
		sc.fail(remoteErr(status, resp))
		return
	}
	if len(resp) < 5 {
		sc.fail(fmt.Errorf("client: scan page header is %d bytes, want 5", len(resp)))
		return
	}
	more := resp[0] == 1
	count := binary.LittleEndian.Uint32(resp[1:5])
	p := resp[5:]
	for i := uint32(0); i < count; i++ {
		kb, rest, err := wire.TakeBytes(p)
		if err != nil {
			sc.fail(err)
			return
		}
		vb, rest, err := wire.TakeBytes(rest)
		if err != nil {
			sc.fail(err)
			return
		}
		p = rest
		key, err := sc.c.codec.Key.Decode(kb)
		if err != nil {
			sc.fail(err)
			return
		}
		val, err := sc.c.codec.Value.Decode(vb)
		if err != nil {
			sc.fail(err)
			return
		}
		sc.keys = append(sc.keys, key)
		sc.vals = append(sc.vals, val)
	}
	if n := len(sc.keys); n > 0 {
		sc.cursor = sc.keys[n-1]
		sc.mode = wire.ScanExclusive
	}
	if !more {
		sc.done = true
	}
}

// fail records err and empties the scanner.
func (sc *Scanner[K, V]) fail(err error) {
	sc.err = err
	sc.done = true
	sc.keys = sc.keys[:0]
	sc.vals = sc.vals[:0]
	sc.pos = 0
}
