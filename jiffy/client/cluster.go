package client

import (
	"encoding/binary"

	"repro/internal/failover"
	"repro/internal/wire"
)

// Member is one fleet member as reported by Cluster: its stable node id,
// client-serving address, and replication-stream address.
type Member struct {
	ID       string
	Addr     string
	ReplAddr string
}

// ClusterInfo is a server's view of the fleet: its role and fencing
// epoch, its applied watermark, and the member list (when the fleet is
// configured with one).
type ClusterInfo struct {
	Epoch     int64
	Role      string // "primary", "replica" or "fenced"
	Watermark int64
	Members   []Member
}

// Cluster asks the server this client's pool points at for its cluster
// view, announcing the highest fencing epoch the client has seen (which
// fences a stale primary on contact). The member list and epoch are
// remembered for rediscovery.
func (c *Client[K, V]) Cluster() (ClusterInfo, error) {
	nc, err := c.conn()
	if err != nil {
		return ClusterInfo{}, err
	}
	var body []byte
	if e := c.epoch.Load(); e > 0 {
		body = binary.LittleEndian.AppendUint64(nil, uint64(e))
	}
	status, resp, err := nc.roundTrip(wire.OpCluster, body, nil)
	if err != nil {
		return ClusterInfo{}, err
	}
	if status != wire.StatusOK {
		return ClusterInfo{}, remoteErr(status, resp)
	}
	ci, err := wire.DecodeClusterInfo(resp)
	if err != nil {
		return ClusterInfo{}, err
	}
	c.absorb(ci)
	out := ClusterInfo{
		Epoch:     ci.Epoch,
		Role:      wire.RoleName(ci.Role),
		Watermark: ci.Watermark,
		Members:   make([]Member, len(ci.Members)),
	}
	for i, m := range ci.Members {
		out.Members[i] = Member{ID: m.ID, Addr: m.Addr, ReplAddr: m.ReplAddr}
	}
	return out, nil
}

// absorb folds one ClusterInfo into the client's fleet knowledge.
func (c *Client[K, V]) absorb(ci wire.ClusterInfo) {
	c.noteEpoch(ci.Epoch)
	if len(ci.Members) > 0 {
		ms := ci.Members
		c.members.Store(&ms)
	}
}

// noteEpoch raises the highest-observed-epoch watermark.
func (c *Client[K, V]) noteEpoch(e int64) {
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// rediscover probes every address the client knows — the current primary
// address, the configured replicas, and the members learned from past
// OpCluster responses — for the fleet's current primary, and repoints
// the pool at it. Probes announce the client's highest observed epoch,
// so a stale primary the client can still reach is fenced as a side
// effect. A primary whose watermark is below the client's acked-version
// floor is refused: repointing there could silently lose acknowledged
// writes, and a just-promoted real winner is ahead of the floor by the
// promotion rank.
func (c *Client[K, V]) rediscover() {
	known := c.epoch.Load()
	seen := map[string]bool{}
	var addrs []string
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			addrs = append(addrs, a)
		}
	}
	c.remu.Lock()
	add(c.addr)
	c.remu.Unlock()
	for _, a := range c.opts.Replicas {
		add(a)
	}
	if ms := c.members.Load(); ms != nil {
		for _, m := range *ms {
			add(m.Addr)
		}
	}
	var (
		best     wire.ClusterInfo
		bestAddr string
		found    bool
	)
	for _, a := range addrs {
		ci, err := failover.Probe(a, known, c.opts.DialTimeout)
		if err != nil {
			continue
		}
		c.absorb(ci)
		if ci.Role == wire.RolePrimary && (!found || ci.Epoch > best.Epoch) {
			best, bestAddr, found = ci, a, true
		}
	}
	if !found || best.Watermark < c.floor.Load() {
		return
	}
	c.repoint(bestAddr, best)
}

// repoint re-targets the pool at addr and refreshes replica routing from
// ci's member list. Pool connections to the old primary are discarded;
// the next use of each slot redials the new address.
func (c *Client[K, V]) repoint(addr string, ci wire.ClusterInfo) {
	var olds []*netConn
	c.remu.Lock()
	if c.closed.Load() {
		c.remu.Unlock()
		return
	}
	if c.addr != addr {
		c.addr = addr
		for i := range c.conns {
			if nc := c.conns[i].Load(); nc != nil {
				olds = append(olds, nc)
				c.conns[i].Store(nil)
			}
		}
	}
	c.remu.Unlock()
	for _, nc := range olds {
		nc.close()
	}
	if len(ci.Members) > 0 {
		raddrs := make([]string, 0, len(ci.Members)-1)
		for _, m := range ci.Members {
			if m.Addr != addr {
				raddrs = append(raddrs, m.Addr)
			}
		}
		c.setReplicas(raddrs)
	}
}
