package client_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/jiffy/client"
)

// TestProxySeverFailsInflightCleanly routes a client through a
// fault-injection proxy and severs every relayed connection while
// requests are in flight. Each in-flight request must fail with an error
// (never hang, never resolve with another request's response), and the
// pool must redial through the still-listening proxy so the next
// operations succeed.
func TestProxySeverFailsInflightCleanly(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startServer(t)
	proxy, err := testutil.NewProxy(addr, testutil.Faults{})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()

	c, err := client.Dial(proxy.Addr(), codec(), client.Options{Conns: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Put(1, 100); err != nil {
		t.Fatalf("put: %v", err)
	}

	for round := 0; round < 3; round++ {
		// Keep a stream of requests in flight while the proxy severs.
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, _, err := c.Get(1); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		time.Sleep(10 * time.Millisecond)
		proxy.Sever()
		close(stop)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: in-flight requests hung after sever\n%s", round, testutil.DumpGoroutines())
		}
		close(errs)
		for err := range errs {
			if err == nil {
				t.Fatalf("round %d: nil error from failed round trip", round)
			}
		}

		// The pool redials through the proxy: reads see the committed
		// value again.
		testutil.Eventually(t, func() bool {
			v, ok, err := c.Get(1)
			return err == nil && ok && v == 100
		}, "round %d: client did not recover after sever", round)
	}
}

// TestFlakyTransportStillCorrect pushes a full read-your-writes workload
// through a proxy that fragments every server-bound write into 1–3 byte
// dribbles and stalls periodically. Correctness must be unaffected:
// every committed write reads back, every response matches its request.
func TestFlakyTransportStillCorrect(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startServer(t)
	proxy, err := testutil.NewProxy(addr, testutil.Faults{
		ShortWrites: 3,
		StallEvery:  50,
		Stall:       time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()

	c, err := client.Dial(proxy.Addr(), codec(), client.Options{Conns: 2})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for g := uint64(0); g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := g * 1000
			for i := uint64(0); i < 50; i++ {
				k := base + i
				if err := c.Put(k, k*3); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
				v, ok, err := c.Get(k)
				if err != nil || !ok || v != k*3 {
					t.Errorf("get %d = %d/%v/%v, want %d", k, v, ok, err, k*3)
					return
				}
			}
		}()
	}
	wg.Wait()
}
