package client_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/testutil"
	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

func codec() durable.Codec[uint64, uint64] {
	return durable.Codec[uint64, uint64]{Key: durable.Uint64Enc(), Value: durable.Uint64Enc()}
}

func startServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, uint64](4)), codec(), server.Options{})
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// TestMultiplexingCorrelation is the pipelining correctness core: many
// goroutines share ONE connection, each reading keys it wrote, so any
// misrouted response — a future resolved with another request's frame —
// shows up as a wrong value.
func TestMultiplexingCorrelation(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startServer(t)
	c, err := client.Dial(addr, codec(), client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < perWorker; i++ {
				k := base + i
				if err := c.Put(k, k^0xabcdef); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				v, ok, err := c.Get(k)
				if err != nil || !ok || v != k^0xabcdef {
					t.Errorf("get %d = %d/%v/%v, want %d — response misrouted?", k, v, ok, err, k^0xabcdef)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCloseFailsInflight closes the client under load: every outstanding
// request must return an error promptly, none may hang.
func TestCloseFailsInflight(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startServer(t)
	c, err := client.Dial(addr, codec(), client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				if err := c.Put(i, i); err != nil {
					return // expected once Close lands
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	c.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight requests hung after Close")
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping on closed client succeeded")
	}
}

// TestScannerSeekRestart checks Seek restarts a scanner — mid-stream,
// after exhaustion, and after Close.
func TestScannerSeekRestart(t *testing.T) {
	testutil.LeakCheck(t)
	addr := startServer(t)
	c, err := client.Dial(addr, codec(), client.Options{Conns: 1, ScanPageSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(0); i < 64; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	sc := snap.Scan(10)
	for i := 0; i < 5; i++ {
		if !sc.Next() {
			t.Fatal("early dry")
		}
	}
	sc.Seek(50) // mid-stream reposition
	if !sc.Next() || sc.Key() != 50 {
		t.Fatalf("after Seek(50): key %d", sc.Key())
	}
	for sc.Next() {
	} // exhaust
	sc.Seek(0) // restart from scratch
	n := 0
	for sc.Next() {
		n++
	}
	if n != 64 {
		t.Fatalf("restarted scan saw %d, want 64", n)
	}
	sc.Close()
	sc.Seek(63) // restart a closed scanner
	if !sc.Next() || sc.Key() != 63 || sc.Next() {
		t.Fatal("restart after Close failed")
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sc.Close()
}

// TestDialFailure checks a refused dial reports an error, not a hang.
func TestDialFailure(t *testing.T) {
	testutil.LeakCheck(t)
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := client.Dial(addr, codec(), client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

// TestServerGoneMidFlight severs the server under load: requests fail
// with transport errors instead of hanging.
func TestServerGoneMidFlight(t *testing.T) {
	testutil.LeakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, uint64](2)), codec(), server.Options{})
	c, err := client.Dial(srv.Addr().String(), codec(), client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ping(); err != nil {
			break // transport error surfaced
		}
		if time.Now().After(deadline) {
			t.Fatal("no error after server close")
		}
	}
}

// TestPoolRedialsAfterServerRestart checks one transient disconnect does
// not degrade the pool permanently: after the server comes back on the
// same address, the client recovers by redialing broken connections.
func TestPoolRedialsAfterServerRestart(t *testing.T) {
	testutil.LeakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, uint64](2)), codec(), server.Options{})
	c, err := client.Dial(addr, codec(), client.Options{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Wait for the breakage to surface, then restart on the same address.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ping(); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no transport error after server close")
		}
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := server.Serve(ln2, server.NewMemStore(jiffy.NewSharded[uint64, uint64](2)), codec(), server.Options{})
	defer srv2.Close()

	// Every pool slot must come back (round-robin hits them all).
	deadline = time.Now().Add(5 * time.Second)
	healthy := 0
	for healthy < 6 {
		if err := c.Put(2, 2); err == nil {
			healthy++
		} else if time.Now().After(deadline) {
			t.Fatalf("pool did not recover after restart: %v", err)
		}
	}
	if v, ok, err := c.Get(2); err != nil || !ok || v != 2 {
		t.Fatalf("get after recovery = %d/%v/%v", v, ok, err)
	}
}

// TestOversizeRequestRejectedLocally checks a request beyond the frame
// limit fails with a descriptive error and does NOT poison the
// connection for subsequent (and concurrent pipelined) requests.
func TestOversizeRequestRejectedLocally(t *testing.T) {
	testutil.LeakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bcodec := durable.Codec[uint64, []byte]{Key: durable.Uint64Enc(), Value: durable.BytesEnc()}
	srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, []byte](2)), bcodec, server.Options{})
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String(), bcodec, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	huge := make([]byte, 17<<20) // > wire.MaxFrameBytes
	err = c.Put(1, huge)
	if err == nil {
		t.Fatal("oversized put succeeded")
	}
	if !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("oversized put error %q does not explain the frame limit", err)
	}
	// The connection survives: normal traffic proceeds.
	if err := c.Put(2, []byte("ok")); err != nil {
		t.Fatalf("put after rejected oversize: %v", err)
	}
	if v, ok, err := c.Get(2); err != nil || !ok || string(v) != "ok" {
		t.Fatalf("get after rejected oversize = %q/%v/%v", v, ok, err)
	}
}

// TestTeardownBufferReuse hammers one pipelined connection while the
// server dies, then immediately reuses the callers' request buffers (the
// Scanner restart pattern). Under -race this guards the teardown
// ordering: the reader's failure sweep must not resolve callers while
// the writer could still read their request buffers.
func TestTeardownBufferReuse(t *testing.T) {
	testutil.LeakCheck(t)
	for round := 0; round < 5; round++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		bcodec := durable.Codec[uint64, []byte]{Key: durable.Uint64Enc(), Value: durable.BytesEnc()}
		srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, []byte](2)), bcodec, server.Options{})
		c, err := client.Dial(srv.Addr().String(), bcodec, client.Options{Conns: 1})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		val := make([]byte, 4096)
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := c.Scan(0)
				for i := uint64(0); ; i++ {
					if err := c.Put(i, val); err != nil {
						// Immediately reuse buffers: restart the scanner
						// (rebuilds its request body) and issue fresh puts.
						sc.Seek(i)
						sc.Next()
						sc.Close()
						c.Put(i, val)
						return
					}
				}
			}()
		}
		time.Sleep(10 * time.Millisecond)
		srv.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("teardown hung")
		}
		c.Close()
	}
}
