// Package client is the typed network client for jiffyd (internal/server):
// it speaks the length-prefixed binary protocol of internal/wire over a
// pool of TCP connections and exposes the jiffy surface remotely — point
// operations, atomic cross-shard batch updates, snapshot sessions frozen
// at one version, and cursored streaming scans.
//
// Every connection multiplexes requests: callers' requests are assigned
// correlation ids, queued to the connection's writer goroutine — which
// coalesces everything already queued into one socket write, the client
// half of the server's group-commit idiom — and the reader goroutine
// matches response frames back to per-request futures by id. Any number of
// goroutines can share one Client; with pipelining enabled (the default) a
// connection carries many requests in flight at once, so throughput is not
// bounded by one round trip per request per connection.
//
// Keys and values are typed: a jiffy/durable.Codec translates them to and
// from their wire form, the same encoding the durability layer logs. The
// server decodes with its own codec, so client and server must agree on it
// (jiffyd serves string keys and raw []byte values).
package client

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/repl"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// Options tunes a Client. The zero value selects defaults.
type Options struct {
	// Conns is the connection pool size (default 1). Requests spread
	// round-robin across the pool; snapshot sessions pin themselves to
	// the connection that opened them (sessions are per-connection
	// server-side).
	Conns int

	// NoPipeline serializes each connection: a request holds its
	// connection exclusively for its full round trip, so at most one
	// request per connection is ever in flight. The benchmark baseline
	// pipelining is measured against; leave it off.
	NoPipeline bool

	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration

	// DialRetry makes failed dials to the primary retry with capped
	// jittered exponential backoff — the same schedule replicas use to
	// re-reach their primary — instead of surfacing the first error.
	// Default off. DialTimeout still bounds each individual attempt;
	// DialRetryBudget bounds the whole retry loop.
	DialRetry bool

	// DialRetryBudget is how long one dial may keep retrying before the
	// last error surfaces (default 15s). Meaningful only with DialRetry.
	DialRetryBudget time.Duration

	// ScanPageSize is how many entries each cursored scan request asks
	// for (default 512, capped server-side).
	ScanPageSize int

	// Replicas lists replica addresses to route reads to. When non-empty,
	// live Gets, Snapshots and live Scans go to a replica round-robin,
	// carrying the client's read-your-writes floor (the highest commit
	// version any write on this client was acknowledged at); a replica
	// that has not replicated that far answers StatusBehind and the
	// client transparently retries against the primary, as it does on
	// any replica transport failure. Writes always go to the primary.
	// Replica connections are dialed lazily and never retried with
	// backoff — a dead replica just costs one failed dial before the
	// primary serves the read.
	Replicas []string

	// Rediscover makes writes that hit a dead, read-only or fenced
	// server probe the fleet (the primary address, the replicas, and any
	// member list learned from OpCluster) for the current primary,
	// repoint the pool at it, and retry with capped jittered backoff
	// until RetryBudget elapses. Retried writes are value-idempotent —
	// re-applying a put or remove converges to the same state — and the
	// client only accepts a primary whose watermark has reached its
	// acked-version floor, so a retry can never land on a primary that
	// would silently miss this client's acknowledged writes. Replica
	// read routing is refreshed from the member list as a side effect.
	// Default off.
	Rediscover bool

	// RetryBudget bounds one write's rediscovery retry loop (default
	// 10s). Meaningful only with Rediscover.
	RetryBudget time.Duration

	// Tracer, when non-nil, receives the client's flight-recorder spans:
	// client (full round trip, retries included) and client_enqueue (time
	// a request waited in the connection's write queue). Sampled requests
	// additionally propagate their trace ID on the wire (wire.FlagTraced),
	// so the server's and replicas' spans join the client's.
	//
	// Propagation is opt-in per request by sampling: a pre-tracing server
	// rejects the flagged op, so only enable it against servers that
	// understand it (this repo's, since the flag was introduced).
	Tracer *trace.Recorder

	// TraceSample is the fraction of requests (0..1) sampled for tracing
	// when Tracer is set. 0 disables sampling; 1 traces everything.
	TraceSample float64
}

func (o Options) withDefaults() Options {
	if o.Conns < 1 {
		o.Conns = 1
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DialRetryBudget <= 0 {
		o.DialRetryBudget = 15 * time.Second
	}
	if o.ScanPageSize < 1 {
		o.ScanPageSize = 512
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 10 * time.Second
	}
	return o
}

// ErrClosed is returned by operations on a closed Client.
var ErrClosed = errors.New("client: closed")

// RemoteError is a failure reported by the server (StatusErr or
// StatusBadRequest), as opposed to a transport failure.
type RemoteError struct {
	Status byte
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: remote error (status %d): %s", e.Status, e.Msg)
}

// Client is a pooled, pipelining jiffyd client. All methods are safe for
// concurrent use. Create one with Dial; Close it when done.
type Client[K cmp.Ordered, V any] struct {
	codec   durable.Codec[K, V]
	opts    Options
	conns   []atomic.Pointer[netConn]
	next    atomic.Uint64
	closed  atomic.Bool
	closeCh chan struct{} // closed by Close; cancels dial-retry and retry sleeps
	remu    sync.Mutex    // serializes redials/repoints (and fences them against Close)
	addr    string        // current primary address; written only under remu

	// Replica read routing: the current replica set, swapped whole when
	// rediscovery learns a new topology. Nil slots dial lazily.
	reps    atomic.Pointer[repSet]
	repNext atomic.Uint64

	// epoch is the highest fencing epoch observed anywhere (announced in
	// OpCluster probes so stale primaries fence on contact); members is
	// the last member list learned from any OpCluster response.
	epoch   atomic.Int64
	members atomic.Pointer[[]wire.Member]

	// floor is the read-your-writes bound: the highest commit version a
	// write through this client was acknowledged at. Replica reads carry
	// it so a lagging replica answers StatusBehind instead of hiding the
	// caller's own writes; rediscovery refuses any primary whose
	// watermark has not reached it.
	floor atomic.Int64
}

// repSet is one immutable replica routing table: parallel addresses and
// lazily dialed connections.
type repSet struct {
	addrs []string
	conns []atomic.Pointer[netConn]
}

func newRepSet(addrs []string) *repSet {
	return &repSet{addrs: addrs, conns: make([]atomic.Pointer[netConn], len(addrs))}
}

func (rs *repSet) closeAll() error {
	var firstErr error
	for i := range rs.conns {
		if nc := rs.conns[i].Load(); nc != nil {
			if err := nc.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Dial connects the pool and returns a ready Client.
func Dial[K cmp.Ordered, V any](addr string, codec durable.Codec[K, V], opts ...Options) (*Client[K, V], error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()
	c := &Client[K, V]{
		codec: codec, opts: o, addr: addr,
		conns:   make([]atomic.Pointer[netConn], o.Conns),
		closeCh: make(chan struct{}),
	}
	c.reps.Store(newRepSet(o.Replicas))
	for i := 0; i < o.Conns; i++ {
		nc, err := dialWithRetry(addr, o, c.closeCh)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns[i].Store(nc)
	}
	return c, nil
}

// Close severs every connection. In-flight requests fail with a transport
// error; a dial-retry loop or write-retry sleep in progress is cancelled
// rather than slept out. Close is idempotent.
func (c *Client[K, V]) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.closeCh) // wake retry sleeps before queueing on remu
	}
	c.remu.Lock() // no redial may race the sweep or outlive it
	defer c.remu.Unlock()
	var firstErr error
	for i := range c.conns {
		if nc := c.conns[i].Load(); nc != nil {
			if err := nc.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if rs := c.reps.Load(); rs != nil {
		if err := rs.closeAll(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// conn picks the next pool connection round-robin. A connection that has
// suffered a transport failure is replaced by a fresh dial first, so one
// dropped connection (or a server restart) degrades the pool only until
// the next use instead of permanently.
func (c *Client[K, V]) conn() (*netConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	i := int(c.next.Add(1) % uint64(len(c.conns)))
	nc := c.conns[i].Load()
	if nc != nil && !nc.broken() {
		return nc, nil
	}
	c.remu.Lock()
	defer c.remu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if nc = c.conns[i].Load(); nc != nil && !nc.broken() {
		return nc, nil // another caller already redialed this slot
	}
	fresh, err := dialWithRetry(c.addr, c.opts, c.closeCh)
	if err != nil {
		return nil, err
	}
	if old := c.conns[i].Load(); old != nil {
		old.close()
	}
	c.conns[i].Store(fresh)
	return fresh, nil
}

// errNoReplicas means no replica addresses are configured; callers fall
// through to the primary.
var errNoReplicas = errors.New("client: no replicas configured")

// replicaConn picks the next replica connection round-robin, dialing
// its slot lazily (and redialing a broken one). Replica dials never
// retry: a dead replica costs one failed dial and the read falls back
// to the primary.
func (c *Client[K, V]) replicaConn() (*netConn, error) {
	rs := c.reps.Load()
	if rs == nil || len(rs.addrs) == 0 {
		return nil, errNoReplicas
	}
	if c.closed.Load() {
		return nil, ErrClosed
	}
	i := int(c.repNext.Add(1) % uint64(len(rs.addrs)))
	nc := rs.conns[i].Load()
	if nc != nil && !nc.broken() {
		return nc, nil
	}
	c.remu.Lock()
	defer c.remu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if c.reps.Load() != rs {
		return nil, errNoReplicas // routing changed underfoot; the next read uses the new set
	}
	if nc = rs.conns[i].Load(); nc != nil && !nc.broken() {
		return nc, nil
	}
	fresh, err := dialConn(rs.addrs[i], c.opts)
	if err != nil {
		return nil, err
	}
	if old := rs.conns[i].Load(); old != nil {
		old.close()
	}
	rs.conns[i].Store(fresh)
	return fresh, nil
}

// setReplicas swaps the replica routing table for addrs, closing the old
// set's connections. A no-op when the addresses are unchanged.
func (c *Client[K, V]) setReplicas(addrs []string) {
	if old := c.reps.Load(); old != nil && slicesEqual(old.addrs, addrs) {
		return
	}
	if old := c.reps.Swap(newRepSet(addrs)); old != nil {
		old.closeAll()
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Floor returns the client's read-your-writes floor: the highest commit
// version any write through this client was acknowledged at. Replica
// reads carry it automatically.
func (c *Client[K, V]) Floor() int64 { return c.floor.Load() }

// traceArm decides whether this request is sampled for tracing. For a
// sampled request it returns the op with wire.FlagTraced set, the body
// prefixed with the fresh trace ID, and the ID; otherwise op and body come
// back untouched with ID 0.
func (c *Client[K, V]) traceArm(op byte, body []byte) (byte, []byte, uint64) {
	if c.opts.Tracer == nil || c.opts.TraceSample <= 0 || rand.Float64() >= c.opts.TraceSample {
		return op, body, 0
	}
	tid := rand.Uint64() | 1 // never 0: 0 means untraced everywhere
	pre := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint64(pre, tid)
	return op | wire.FlagTraced, append(pre, body...), tid
}

// noteVersion folds a write acknowledgement's commit version into the
// read-your-writes floor.
func (c *Client[K, V]) noteVersion(resp []byte) {
	if len(resp) != 8 {
		return // no-op write (absent remove, empty batch) or old server
	}
	ver := int64(binary.LittleEndian.Uint64(resp))
	for {
		cur := c.floor.Load()
		if ver <= cur || c.floor.CompareAndSwap(cur, ver) {
			return
		}
	}
}

// Ping round-trips an empty frame on one pool connection.
func (c *Client[K, V]) Ping() error {
	nc, err := c.conn()
	if err != nil {
		return err
	}
	_, _, err = nc.roundTrip(wire.OpPing, nil, nil)
	return err
}

// Get returns the live value for key. With replicas configured the read
// goes to a replica first, carrying the client's read-your-writes floor;
// StatusBehind or a replica transport failure transparently retries
// against the primary.
func (c *Client[K, V]) Get(key K) (V, bool, error) {
	if rc, err := c.replicaConn(); err == nil {
		v, ok, err := c.get(rc, 0, c.floor.Load(), key)
		if err == nil {
			return v, ok, nil
		}
	}
	nc, err := c.conn()
	if err != nil {
		var zero V
		return zero, false, err
	}
	return c.get(nc, 0, 0, key)
}

// get issues OpGet for key against snapID (0: live) on nc, demanding
// the server has replicated at least to floor.
func (c *Client[K, V]) get(nc *netConn, snapID uint64, floor int64, key K) (V, bool, error) {
	var zero V
	body := make([]byte, 16, 16+16)
	binary.LittleEndian.PutUint64(body, snapID)
	binary.LittleEndian.PutUint64(body[8:], uint64(floor))
	body = c.codec.Key.Append(body, key)
	op, body, tid := c.traceArm(wire.OpGet, body)
	var start time.Time
	if tid != 0 {
		start = time.Now()
	}
	status, resp, err := nc.roundTrip(op, body, nil)
	if tid != 0 {
		c.opts.Tracer.Record(trace.StageClient, tid, wire.OpGet, start, time.Since(start), int64(len(resp)))
	}
	if err != nil {
		return zero, false, err
	}
	switch status {
	case wire.StatusOK:
		v, err := c.codec.Value.Decode(resp)
		return v, err == nil, err
	case wire.StatusNotFound:
		return zero, false, nil
	}
	return zero, false, remoteErr(status, resp)
}

// Put sets the value for key; on a durable server it returns once the
// update is logged.
func (c *Client[K, V]) Put(key K, val V) error {
	var kbuf [16]byte
	kb := c.codec.Key.Append(kbuf[:0], key)
	body := wire.AppendBytes(make([]byte, 0, len(kb)+17), kb)
	body = c.codec.Value.Append(body, val)
	status, resp, err := c.writeTrip(wire.OpPut, body)
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return remoteErr(status, resp)
	}
	c.noteVersion(resp)
	return nil
}

// Remove deletes key, reporting whether it was present.
func (c *Client[K, V]) Remove(key K) (bool, error) {
	body := c.codec.Key.Append(make([]byte, 0, 16), key)
	status, resp, err := c.writeTrip(wire.OpDel, body)
	if err != nil {
		return false, err
	}
	switch status {
	case wire.StatusOK:
		c.noteVersion(resp)
		return true, nil
	case wire.StatusNotFound:
		return false, nil
	}
	return false, remoteErr(status, resp)
}

// writeTrip performs one write round trip on a pool connection. With
// Options.Rediscover, a write that hits a dead connection, a read-only
// replica or a fenced ex-primary triggers fleet rediscovery and a
// capped-backoff retry until RetryBudget elapses. Safe to retry because
// the ops are value-idempotent (a re-applied put or remove converges)
// and rediscovery only accepts a primary caught up to the client's
// acked-version floor.
func (c *Client[K, V]) writeTrip(op byte, body []byte) (status byte, resp []byte, err error) {
	wop, wbody, tid := c.traceArm(op, body)
	var start time.Time
	if tid != 0 {
		start = time.Now()
		// The client span covers the whole trip, rediscovery retries
		// included: it is the latency the caller observed.
		defer func() {
			c.opts.Tracer.Record(trace.StageClient, tid, op, start, time.Since(start), int64(len(resp)))
		}()
	}
	attempt := func() (byte, []byte, error) {
		nc, cerr := c.conn()
		if cerr != nil {
			return 0, nil, cerr
		}
		return nc.roundTrip(wop, wbody, nil)
	}
	status, resp, err = attempt()
	if !c.opts.Rediscover || !retryableWrite(status, err) {
		return status, resp, err
	}
	var bo repl.Backoff
	deadline := time.Now().Add(c.opts.RetryBudget)
	for {
		if c.closed.Load() {
			return 0, nil, ErrClosed
		}
		c.rediscover()
		d := bo.Next()
		remain := time.Until(deadline)
		if remain <= 0 {
			return status, resp, err // budget spent: surface the last failure
		}
		if d > remain {
			d = remain
		}
		if !sleepOrCancel(d, c.closeCh) {
			return 0, nil, ErrClosed
		}
		status, resp, err = attempt()
		if !retryableWrite(status, err) {
			return status, resp, err
		}
	}
}

// retryableWrite reports whether a write outcome is worth rediscovery: a
// transport failure (dead conn, dial failure — but not ErrClosed), or a
// server that cannot take writes at all (read-only replica, fenced
// ex-primary). Real remote errors (bad request, store failure) are not.
func retryableWrite(status byte, err error) bool {
	if err != nil {
		return !errors.Is(err, ErrClosed)
	}
	return status == wire.StatusReadOnly || status == wire.StatusFenced
}

// BatchUpdate applies ops — puts and removes spanning any keys — in one
// atomic step on the server: no remote reader, snapshot or scan observes
// the batch half-applied, even when its keys span shards. An empty batch
// is a no-op.
func (c *Client[K, V]) BatchUpdate(ops []jiffy.BatchOp[K, V]) error {
	if len(ops) == 0 {
		return nil
	}
	body := binary.AppendUvarint(make([]byte, 0, 16+16*len(ops)), uint64(len(ops)))
	var kbuf, vbuf []byte
	for _, op := range ops {
		kbuf = c.codec.Key.Append(kbuf[:0], op.Key)
		if op.Remove {
			body = append(body, wire.BatchRemove)
			body = wire.AppendBytes(body, kbuf)
			continue
		}
		vbuf = c.codec.Value.Append(vbuf[:0], op.Val)
		body = append(body, wire.BatchPut)
		body = wire.AppendBytes(body, kbuf)
		body = wire.AppendBytes(body, vbuf)
	}
	status, resp, err := c.writeTrip(wire.OpBatch, body)
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return remoteErr(status, resp)
	}
	c.noteVersion(resp)
	return nil
}

// Snap is a handle on a server-side snapshot session: a consistent view of
// the whole store frozen at Version. Gets and scans through it observe
// exactly the state at that version, however long the session lives —
// subject to the server's idle TTL, which every operation on the session
// resets. Close it promptly: an open session pins multiversion history on
// the server.
type Snap[K cmp.Ordered, V any] struct {
	c   *Client[K, V]
	nc  *netConn // sessions are per-connection server-side
	id  uint64
	ver int64
}

// Snapshot opens a snapshot session and returns its handle. With
// replicas configured the session opens on a replica, pinned at a
// version no older than the client's read-your-writes floor; a replica
// that cannot satisfy the floor (or fails) falls back to the primary.
func (c *Client[K, V]) Snapshot() (*Snap[K, V], error) {
	if rc, err := c.replicaConn(); err == nil {
		if s, err := c.snapshot(rc, c.floor.Load()); err == nil {
			return s, nil
		}
	}
	nc, err := c.conn()
	if err != nil {
		return nil, err
	}
	return c.snapshot(nc, 0)
}

// snapshot opens a session on nc, demanding version >= floor.
func (c *Client[K, V]) snapshot(nc *netConn, floor int64) (*Snap[K, V], error) {
	var body []byte
	if floor > 0 {
		var fb [8]byte
		binary.LittleEndian.PutUint64(fb[:], uint64(floor))
		body = fb[:]
	}
	status, resp, err := nc.roundTrip(wire.OpSnap, body, nil)
	if err != nil {
		return nil, err
	}
	if status != wire.StatusOK {
		return nil, remoteErr(status, resp)
	}
	if len(resp) != 16 {
		return nil, fmt.Errorf("client: snap response is %d bytes, want 16", len(resp))
	}
	return &Snap[K, V]{
		c:   c,
		nc:  nc,
		id:  binary.LittleEndian.Uint64(resp[0:8]),
		ver: int64(binary.LittleEndian.Uint64(resp[8:16])),
	}, nil
}

// Version returns the session's frozen version on the server's clock.
func (s *Snap[K, V]) Version() int64 { return s.ver }

// Get returns the value key had at the session's version.
func (s *Snap[K, V]) Get(key K) (V, bool, error) {
	return s.c.get(s.nc, s.id, 0, key)
}

// Scan returns a Scanner streaming the session's entries from lo upward in
// ascending key order, page by page.
func (s *Snap[K, V]) Scan(lo K) *Scanner[K, V] {
	sc := newScanner(s.c, s.nc, s.id)
	sc.Seek(lo)
	return sc
}

// ScanAll returns a Scanner streaming every entry of the session.
func (s *Snap[K, V]) ScanAll() *Scanner[K, V] {
	return newScanner(s.c, s.nc, s.id)
}

// Close ends the session, releasing the history it pinned on the server.
// Closing an already-reaped session is not an error.
func (s *Snap[K, V]) Close() error {
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], s.id)
	status, resp, err := s.nc.roundTrip(wire.OpSnapClose, body[:], nil)
	if err != nil {
		return err
	}
	switch status {
	case wire.StatusOK, wire.StatusUnknownSnap:
		return nil
	}
	return remoteErr(status, resp)
}

// Scan returns a Scanner streaming the live map's entries from lo upward.
// Each page reads its own ephemeral server-side snapshot: pages are
// individually consistent (and each sees every update that committed
// before the page was requested), but the scan as a whole is not one
// frozen cut — use Snapshot().Scan for that.
func (c *Client[K, V]) Scan(lo K) *Scanner[K, V] {
	sc := newScanner(c, nil, 0)
	sc.Seek(lo)
	return sc
}

// ScanAll returns a live Scanner over the whole key range (see Scan).
func (c *Client[K, V]) ScanAll() *Scanner[K, V] {
	return newScanner(c, nil, 0)
}

// remoteErr converts a non-OK response into an error.
func remoteErr(status byte, body []byte) error {
	switch status {
	case wire.StatusUnknownSnap:
		return ErrUnknownSnap
	case wire.StatusReadOnly:
		return ErrReadOnly
	case wire.StatusBehind:
		return ErrBehind
	case wire.StatusFenced:
		return ErrFenced
	}
	return &RemoteError{Status: status, Msg: string(body)}
}

// ErrUnknownSnap is returned when an operation names a snapshot session
// the server no longer holds (closed, TTL-reaped, or from another
// connection).
var ErrUnknownSnap = errors.New("client: unknown snapshot session (closed or idle-reaped)")

// ErrReadOnly is returned when a write reaches a read-only replica.
// Writes go to the primary; a replica accepts them only after promotion.
var ErrReadOnly = errors.New("client: server is a read-only replica")

// ErrBehind is returned when a read carried a version floor above the
// serving replica's watermark. The routing layer normally retries such
// reads on the primary; it surfaces only when no primary is reachable.
var ErrBehind = errors.New("client: replica is behind the read floor")

// ErrFenced is returned when a write reaches an ex-primary that has been
// fenced — another node holds a higher fencing epoch. With
// Options.Rediscover the client handles it by finding the new primary
// and retrying; it surfaces only when rediscovery is off or exhausted.
var ErrFenced = errors.New("client: server is fenced (superseded by a newer primary)")

// dialConn dials one pooled connection (single attempt).
func dialConn(addr string, o Options) (*netConn, error) {
	nc, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelined frames coalesce in our writer, not the kernel's
	}
	return newNetConn(nc, o.NoPipeline, o.Tracer), nil
}

// dialWithRetry dials a primary connection, retrying with capped
// jittered exponential backoff when Options.DialRetry is set — the same
// schedule replicas use to re-reach their primary — until
// DialRetryBudget elapses or cancel is closed. Cancellation returns
// ErrClosed immediately: Close must never wait out another caller's
// retry budget.
func dialWithRetry(addr string, o Options, cancel <-chan struct{}) (*netConn, error) {
	nc, err := dialConn(addr, o)
	if err == nil || !o.DialRetry {
		return nc, err
	}
	var bo repl.Backoff
	deadline := time.Now().Add(o.DialRetryBudget)
	for {
		d := bo.Next()
		if remain := time.Until(deadline); remain <= 0 {
			return nil, err
		} else if d > remain {
			d = remain
		}
		if !sleepOrCancel(d, cancel) {
			return nil, ErrClosed
		}
		if nc, nerr := dialConn(addr, o); nerr == nil {
			return nc, nil
		} else {
			err = nerr
		}
	}
}

// sleepOrCancel sleeps d, reporting false if cancel closed first.
func sleepOrCancel(d time.Duration, cancel <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-cancel:
		return false
	case <-t.C:
		return true
	}
}
