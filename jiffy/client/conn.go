package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// netConn is one pooled connection. In pipelined mode (the default) it
// runs two goroutines mirroring the server's split: a writer that drains
// the request queue into coalesced socket writes, and a reader that
// matches response frames to waiting calls by correlation id — so any
// number of requests ride the connection concurrently. In NoPipeline mode
// there are no goroutines at all: a request takes the connection's
// exclusive lock for its full round trip, the strictest
// one-request-per-connection discipline, kept as the benchmark baseline.
type netConn struct {
	c      net.Conn
	noPipe bool
	tracer *trace.Recorder // client_enqueue spans; nil disables
	seq    atomic.Uint64

	// Pipelined mode. rstop is closed by the reader on a terminal error
	// and wdone when the writer exits: the reader's failure sweep runs
	// only after the writer is provably gone, so a swept call — and the
	// caller's request buffer it aliases — can never be touched by a
	// straggling writer.
	writeq  chan *call
	stopc   chan struct{}
	rstop   chan struct{}
	wdone   chan struct{}
	wg      sync.WaitGroup
	pmu     sync.Mutex // guards pending, rerr, closed
	pending map[uint64]*call
	rerr    error
	closed  bool

	// NoPipeline mode: xmu serializes round trips; xbuf is the frame
	// read/write scratch it guards; xbroken marks a transport failure
	// (the pipelined mode records failures in rerr instead).
	xmu     sync.Mutex
	xbuf    []byte
	xbroken atomic.Bool
}

// broken reports whether the connection has suffered a transport failure
// or been closed — i.e. whether the pool should replace it.
func (nc *netConn) broken() bool {
	if nc.noPipe {
		return nc.xbroken.Load()
	}
	nc.pmu.Lock()
	defer nc.pmu.Unlock()
	return nc.closed || nc.rerr != nil
}

// call is one in-flight request: the correlation state between a caller,
// the writer and the reader. done carries exactly one signal per round
// trip, so pooled reuse is race-free. tid and enq feed the writer's
// client_enqueue spans for traced requests; the writer copies them out
// before the socket write, after which the call may be resolved and
// recycled at any moment.
type call struct {
	id     uint64
	op     byte
	body   []byte
	status byte
	resp   []byte // response body, copied into the call's own buffer
	err    error
	tid    uint64 // trace ID (0: untraced)
	enq    int64  // queue-entry time, unix nanos (traced only)
	done   chan struct{}
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

// errConnBroken is the transport error for requests cut off by a
// connection failure or Close.
var errConnBroken = errors.New("client: connection broken")

func newNetConn(c net.Conn, noPipe bool, tracer *trace.Recorder) *netConn {
	nc := &netConn{c: c, noPipe: noPipe, tracer: tracer}
	if !noPipe {
		nc.writeq = make(chan *call, 1024)
		nc.stopc = make(chan struct{})
		nc.rstop = make(chan struct{})
		nc.wdone = make(chan struct{})
		nc.pending = map[uint64]*call{}
		nc.wg.Add(2)
		go nc.writeLoop()
		go nc.readLoop()
	}
	return nc
}

// close severs the connection, failing every in-flight request, and joins
// the connection's goroutines.
func (nc *netConn) close() error {
	if nc.noPipe {
		nc.xbroken.Store(true)
		return nc.c.Close()
	}
	nc.pmu.Lock()
	if nc.closed {
		nc.pmu.Unlock()
		nc.wg.Wait()
		return nil
	}
	nc.closed = true
	nc.pmu.Unlock()
	close(nc.stopc)
	err := nc.c.Close() // unblocks the reader, which fails all pending calls
	nc.wg.Wait()
	return err
}

// roundTrip issues one request and blocks for its response. The response
// body is copied into respBuf (grown as needed) so it stays valid after
// the connection moves on; callers reuse their scratch across calls. An
// oversized request is rejected locally — the server would sever the
// connection on it, poisoning every pipelined neighbor.
func (nc *netConn) roundTrip(op byte, body, respBuf []byte) (status byte, resp []byte, err error) {
	if len(body)+wire.FrameOverhead > wire.MaxFrameBytes {
		return 0, nil, fmt.Errorf("client: request body is %d bytes; the frame limit is %d (split the batch)",
			len(body), wire.MaxFrameBytes)
	}
	if nc.noPipe {
		return nc.roundTripSerial(op, body, respBuf)
	}
	cl := callPool.Get().(*call)
	cl.op, cl.body, cl.err = op, body, nil
	cl.tid, cl.enq = 0, 0
	if nc.tracer != nil && op&wire.FlagTraced != 0 && len(body) >= 8 {
		cl.tid = binary.LittleEndian.Uint64(body)
		cl.enq = time.Now().UnixNano()
	}
	id := nc.seq.Add(1)
	cl.id = id

	nc.pmu.Lock()
	if nc.closed || nc.rerr != nil {
		err := nc.rerr
		nc.pmu.Unlock()
		callPool.Put(cl)
		if err == nil {
			err = ErrClosed
		}
		return 0, nil, err
	}
	nc.pending[id] = cl
	nc.pmu.Unlock()

	select {
	case nc.writeq <- cl:
	case <-cl.done:
		// The connection died before the request could even queue (a
		// full writeq whose writer hit a write error and exited): the
		// reader's failure sweep already resolved this call.
		err := cl.err
		cl.body, cl.resp = nil, cl.resp[:0]
		callPool.Put(cl)
		return 0, nil, err
	case <-nc.stopc:
		nc.pmu.Lock()
		_, mine := nc.pending[id]
		if mine {
			delete(nc.pending, id)
		}
		nc.pmu.Unlock()
		if !mine {
			<-cl.done // the reader already took it; consume the signal
		}
		cl.body, cl.resp = nil, cl.resp[:0]
		callPool.Put(cl)
		return 0, nil, errConnBroken
	}
	<-cl.done
	// Whether resolved by a response or by the reader's failure sweep,
	// the call is exclusively ours again: a response implies the writer
	// sent the frame, and the sweep runs only after the writer has exited
	// (readLoop waits on wdone), so no straggler can still read cl — or
	// the caller's request buffer cl.body aliases.
	status, err = cl.status, cl.err
	resp = append(respBuf[:0], cl.resp...)
	cl.body, cl.resp = nil, cl.resp[:0]
	callPool.Put(cl)
	return status, resp, err
}

// roundTripSerial is the NoPipeline path: one exclusive write-then-read.
func (nc *netConn) roundTripSerial(op byte, body, respBuf []byte) (status byte, resp []byte, err error) {
	nc.xmu.Lock()
	defer nc.xmu.Unlock()
	id := nc.seq.Add(1)
	nc.xbuf = wire.AppendFrame(nc.xbuf[:0], id, op, body)
	if _, err := nc.c.Write(nc.xbuf); err != nil {
		nc.xbroken.Store(true)
		return 0, nil, err
	}
	for {
		rid, st, rbody, buf, err := wire.ReadFrame(nc.c, nc.xbuf)
		nc.xbuf = buf
		if err != nil {
			nc.xbroken.Store(true)
			return 0, nil, err
		}
		if rid != id {
			continue // stale response from a request cut off mid-read; drop
		}
		return st, append(respBuf[:0], rbody...), nil
	}
}

// writeLoop drains the request queue into coalesced writes: one blocking
// receive, then everything else already queued, one Write for the lot.
// It exits on Close (stopc), on its own write error, or when the reader
// hits a terminal error (rstop); wdone announces the exit so the reader's
// failure sweep can wait until no call can be touched here anymore.
func (nc *netConn) writeLoop() {
	defer nc.wg.Done()
	defer close(nc.wdone)
	var wbuf []byte
	// Traced calls' (tid, enqueue time), copied out at encode time: once
	// the frame is written the server may respond and the reader recycle
	// the call, so the span is recorded from these copies only.
	var traced []struct{ tid, enq uint64 }
	for {
		var cl *call
		select {
		case cl = <-nc.writeq:
		case <-nc.stopc:
			return
		case <-nc.rstop:
			return
		}
		traced = traced[:0]
		if cl.tid != 0 {
			traced = append(traced, struct{ tid, enq uint64 }{cl.tid, uint64(cl.enq)})
		}
		wbuf = wire.AppendFrame(wbuf[:0], cl.id, cl.op, cl.body)
	drain:
		for len(wbuf) < 256<<10 {
			select {
			case cl2 := <-nc.writeq:
				if cl2.tid != 0 {
					traced = append(traced, struct{ tid, enq uint64 }{cl2.tid, uint64(cl2.enq)})
				}
				wbuf = wire.AppendFrame(wbuf, cl2.id, cl2.op, cl2.body)
			default:
				break drain
			}
		}
		if _, err := nc.c.Write(wbuf); err != nil {
			// Sever the connection: the reader unblocks with an error and
			// fails every pending call, including the ones just encoded.
			nc.c.Close()
			return
		}
		if len(traced) > 0 {
			now := time.Now()
			for _, t := range traced {
				enq := time.Unix(0, int64(t.enq))
				nc.tracer.Record(trace.StageClientEnqueue, t.tid, 0, enq, now.Sub(enq), 0)
			}
		}
	}
}

// readLoop matches response frames to pending calls until the connection
// drops, then fails everything still in flight.
func (nc *netConn) readLoop() {
	defer nc.wg.Done()
	var rbuf []byte
	for {
		id, status, body, buf, err := wire.ReadFrame(nc.c, rbuf)
		rbuf = buf
		if err != nil {
			// Terminal: sever the socket (unblocking any in-flight write),
			// stop the writer and wait for it to exit, and only then fail
			// everything pending — after wdone no goroutine but the
			// resolved callers can reach a call again, so they may recycle
			// call objects and reuse request buffers immediately.
			nc.c.Close()
			close(nc.rstop)
			<-nc.wdone
			nc.pmu.Lock()
			nc.rerr = errConnBroken
			for id, cl := range nc.pending {
				delete(nc.pending, id)
				cl.err = errConnBroken
				cl.done <- struct{}{}
			}
			nc.pmu.Unlock()
			return
		}
		nc.pmu.Lock()
		cl := nc.pending[id]
		delete(nc.pending, id)
		nc.pmu.Unlock()
		if cl == nil {
			continue // response to a request whose caller gave up; drop
		}
		cl.status = status
		cl.resp = append(cl.resp[:0], body...)
		cl.done <- struct{}{}
	}
}
