package client_test

import (
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/testutil"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/client"
)

// Client-side failover tests: Close cancelling an in-flight dial-retry
// loop, ErrFenced surfacing, and write rediscovery repointing the pool
// at the fleet's new primary.

// startClusterServer serves a mem store that reports the given role and
// epoch over OpCluster (mutable via the returned server's SetFenced and
// the hooks' closure state).
func startClusterServer(t *testing.T, ci func() wire.ClusterInfo) (*server.Server[uint64, uint64], *jiffy.Sharded[uint64, uint64], string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mem := jiffy.NewSharded[uint64, uint64](4)
	srv := server.Serve(ln, server.NewMemStore(mem), codec(), server.Options{
		Epoch:   func() int64 { return ci().Epoch },
		Cluster: ci,
	})
	t.Cleanup(func() { srv.Close() })
	return srv, mem, srv.Addr().String()
}

// TestCloseCancelsDialRetry: a Close racing a dial-retry loop must
// cancel it immediately — not wait out the retry budget. (Regression:
// the retry loop used to sleep through plain time.Sleep, so a Close
// could block behind tens of seconds of doomed redial attempts.)
func TestCloseCancelsDialRetry(t *testing.T) {
	testutil.LeakCheck(t)
	srv, _, addr := startClusterServer(t, func() wire.ClusterInfo {
		return wire.ClusterInfo{Epoch: 1, Role: wire.RolePrimary}
	})
	c, err := client.Dial(addr, codec(), client.Options{
		DialRetry:       true,
		DialRetryBudget: 30 * time.Second,
		DialTimeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 1); err != nil {
		t.Fatalf("put: %v", err)
	}

	// Kill the server: the next operation's redial spins in the retry
	// loop (connection refused, sleep, retry) for up to 30s.
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}

	// The first Put surfaces the broken pooled connection; the one after
	// it redials and blocks inside the retry loop. Loop until the Put
	// that Close cancels comes back with ErrClosed.
	done := make(chan error, 1)
	go func() {
		for {
			err := c.Put(2, 2)
			if err == nil || errors.Is(err, client.ErrClosed) {
				done <- err
				return
			}
		}
	}()
	time.Sleep(150 * time.Millisecond) // let a Put reach the retry sleep
	start := time.Now()
	// Close may surface the dead connection's close error; what matters
	// is that it returns promptly and unblocks the Put.
	_ = c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, client.ErrClosed) {
			t.Fatalf("put during close returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("put still blocked 5s after Close — dial retry not cancelled")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("Close took %v against a 30s retry budget", waited)
	}
}

// TestFencedSurfacesWithoutRediscover: a write hitting a fenced server
// returns ErrFenced when rediscovery is off — the operator's signal that
// the fleet moved on without this client being configured to follow.
func TestFencedSurfacesWithoutRediscover(t *testing.T) {
	testutil.LeakCheck(t)
	srv, _, addr := startClusterServer(t, func() wire.ClusterInfo {
		return wire.ClusterInfo{Epoch: 1, Role: wire.RolePrimary}
	})
	c, err := client.Dial(addr, codec())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 1); err != nil {
		t.Fatalf("put: %v", err)
	}
	srv.SetFenced(true)
	if err := c.Put(2, 2); !errors.Is(err, client.ErrFenced) {
		t.Fatalf("put on a fenced server returned %v, want ErrFenced", err)
	}
}

// TestWriteRediscoversNewPrimary: a write hitting a fenced ex-primary
// probes the fleet, repoints at the member claiming primacy under the
// highest epoch, and retries there — invisible to the caller.
func TestWriteRediscoversNewPrimary(t *testing.T) {
	testutil.LeakCheck(t)
	var bAddr string
	// Old primary A: epoch 1 — and its member list names B, which is how
	// the client learns where to probe.
	srvA, memA, aAddr := startClusterServer(t, func() wire.ClusterInfo {
		return wire.ClusterInfo{
			Epoch: 1, Role: wire.RolePrimary, Watermark: math.MaxInt64,
			Members: []wire.Member{{ID: "b", Addr: bAddr}},
		}
	})
	// New primary B: epoch 2, caught up past any floor.
	_, memB, bAddr2 := startClusterServer(t, func() wire.ClusterInfo {
		return wire.ClusterInfo{Epoch: 2, Role: wire.RolePrimary, Watermark: math.MaxInt64}
	})
	bAddr = bAddr2

	c, err := client.Dial(aAddr, codec(), client.Options{
		Rediscover:  true,
		RetryBudget: 10 * time.Second,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 10); err != nil {
		t.Fatalf("put via A: %v", err)
	}
	if _, ok := memA.Get(1); !ok {
		t.Fatal("write did not land on A")
	}
	// Teach the client the member list (it also learns it lazily from
	// rediscovery probes; Cluster makes the test deterministic).
	if _, err := c.Cluster(); err != nil {
		t.Fatalf("cluster: %v", err)
	}

	// A is fenced; the same client must land the next write on B.
	srvA.SetFenced(true)
	if err := c.Put(2, 20); err != nil {
		t.Fatalf("put after fencing: %v", err)
	}
	if v, ok := memB.Get(2); !ok || v != 20 {
		t.Fatalf("write after fencing landed elsewhere (B has %d/%v)", v, ok)
	}
	// And the client's notion of the fleet epoch advanced.
	ci, err := c.Cluster()
	if err != nil {
		t.Fatalf("cluster after repoint: %v", err)
	}
	if ci.Epoch != 2 || ci.Role != "primary" {
		t.Fatalf("post-repoint cluster view: epoch %d role %s", ci.Epoch, ci.Role)
	}
}
