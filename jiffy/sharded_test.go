package jiffy

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardedBasic(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		s := NewSharded[uint64, uint64](shards)
		if s.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", s.NumShards(), shards)
		}
		const n = 1000
		for i := uint64(0); i < n; i++ {
			s.Put(i, i*3)
		}
		if s.Len() != n {
			t.Fatalf("shards=%d: Len = %d", shards, s.Len())
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := s.Get(i); !ok || v != i*3 {
				t.Fatalf("shards=%d: Get(%d) = %d,%v", shards, i, v, ok)
			}
		}
		if !s.Remove(500) || s.Remove(500) {
			t.Fatalf("shards=%d: remove semantics", shards)
		}
		if _, ok := s.Get(500); ok {
			t.Fatalf("shards=%d: removed key present", shards)
		}
	}
}

// keysSpanningShards returns n keys that cover at least two distinct
// shards of s (all of them, for n >= a small multiple of the shard count).
func keysSpanningShards(s *Sharded[uint64, uint64], n int) []uint64 {
	keys := make([]uint64, 0, n)
	seen := map[int]bool{}
	for k := uint64(0); len(keys) < n; k++ {
		keys = append(keys, k*7919)
		seen[s.shardOf(k*7919)] = true
	}
	if len(seen) < 2 && s.NumShards() > 1 {
		panic("test keys failed to span shards")
	}
	return keys
}

// TestShardedCrossShardBatchAtomicity is the acceptance-criteria test: a
// multi-key BatchUpdate spanning at least two shards must be observed
// atomically by concurrent Snapshots. Writers flip a set of cross-shard
// keys between generations; readers snapshot and require every key to
// carry the same generation.
func TestShardedCrossShardBatchAtomicity(t *testing.T) {
	s := NewSharded[uint64, uint64](4)
	keys := keysSpanningShards(s, 16)

	// Verify the batch really spans >= 2 shards.
	shardsHit := map[int]bool{}
	for _, k := range keys {
		shardsHit[s.shardOf(k)] = true
	}
	if len(shardsHit) < 2 {
		t.Fatalf("test keys hit %d shard(s), need >= 2", len(shardsHit))
	}

	write := func(gen uint64) {
		b := NewBatch[uint64, uint64](len(keys))
		for _, k := range keys {
			b.Put(k, gen)
		}
		s.BatchUpdate(b)
	}
	write(0)

	const (
		writers    = 2
		readers    = 4
		iterations = 400
	)
	var stop atomic.Bool
	var writersWG, readersWG sync.WaitGroup
	var gen atomic.Uint64
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < iterations; i++ {
				write(gen.Add(1))
			}
		}()
	}
	errs := make(chan string, readers*2)
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for !stop.Load() {
				snap := s.Snapshot()
				var first uint64
				ok := true
				for i, k := range keys {
					v, present := snap.Get(k)
					if !present {
						errs <- "key missing from snapshot"
						ok = false
						break
					}
					if i == 0 {
						first = v
					} else if v != first {
						errs <- "torn batch: generations differ within one snapshot"
						ok = false
						break
					}
				}
				// The merged scan must agree with the point reads.
				if ok {
					snap.RangeFrom(0, func(k, v uint64) bool {
						if v != first {
							errs <- "torn batch: scan saw a different generation"
							return false
						}
						return true
					})
				}
				snap.Close()
			}
		}()
	}
	writersWG.Wait()
	stop.Store(true)
	readersWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestShardedScanOracle cross-checks Sharded's merged scans against a
// single-shard Jiffy map fed the identical operation stream.
func TestShardedScanOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	s := NewSharded[uint64, uint64](5)
	oracle := New[uint64, uint64]()

	const keySpace = 4096
	for i := 0; i < 20000; i++ {
		k := rng.Uint64N(keySpace)
		switch rng.IntN(3) {
		case 0:
			s.Put(k, k+1)
			oracle.Put(k, k+1)
		case 1:
			s.Remove(k)
			oracle.Remove(k)
		case 2:
			b, ob := NewBatch[uint64, uint64](8), NewBatch[uint64, uint64](8)
			for j := 0; j < 8; j++ {
				bk := rng.Uint64N(keySpace)
				if rng.IntN(2) == 0 {
					b.Put(bk, bk+2)
					ob.Put(bk, bk+2)
				} else {
					b.Remove(bk)
					ob.Remove(bk)
				}
			}
			s.BatchUpdate(b)
			oracle.BatchUpdate(ob)
		}
	}

	type kv struct{ k, v uint64 }
	collect := func(v View[uint64, uint64], f func(View[uint64, uint64], func(uint64, uint64) bool)) []kv {
		var out []kv
		f(v, func(k, val uint64) bool {
			out = append(out, kv{k, val})
			return true
		})
		return out
	}
	check := func(name string, got, want []kv) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d entries, oracle has %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: entry %d = %v, oracle %v", name, i, got[i], want[i])
			}
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].k < got[j].k }) {
			t.Fatalf("%s: output not in ascending key order", name)
		}
	}

	check("All",
		collect(s, func(v View[uint64, uint64], fn func(uint64, uint64) bool) { v.All(fn) }),
		collect(oracle, func(v View[uint64, uint64], fn func(uint64, uint64) bool) { v.All(fn) }))

	for trial := 0; trial < 50; trial++ {
		lo := rng.Uint64N(keySpace)
		hi := lo + rng.Uint64N(keySpace-lo) + 1
		check("Range",
			collect(s, func(v View[uint64, uint64], fn func(uint64, uint64) bool) { v.Range(lo, hi, fn) }),
			collect(oracle, func(v View[uint64, uint64], fn func(uint64, uint64) bool) { v.Range(lo, hi, fn) }))
		check("RangeFrom",
			collect(s, func(v View[uint64, uint64], fn func(uint64, uint64) bool) { v.RangeFrom(lo, fn) }),
			collect(oracle, func(v View[uint64, uint64], fn func(uint64, uint64) bool) { v.RangeFrom(lo, fn) }))
	}

	// Early termination must stop the merge mid-stream.
	n := 0
	s.All(func(uint64, uint64) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early-terminated scan visited %d entries", n)
	}
}

// TestShardHashDefinedKeyTypes: defined ordered key types miss the type
// switch's concrete cases; the reflect fallback must still distribute them
// across shards instead of constant-routing everything to shard 0.
func TestShardHashDefinedKeyTypes(t *testing.T) {
	type userID uint64
	type name string
	type score float64

	hu := shardHash[userID]()
	hn := shardHash[name]()
	hs := shardHash[score]()
	seenU, seenN, seenS := map[uint64]bool{}, map[uint64]bool{}, map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seenU[hu(userID(i))%8] = true
		seenN[hn(name(string(rune('a'+i%26))))%8] = true
		seenS[hs(score(float64(i)*1.5))%8] = true
	}
	if len(seenU) < 2 || len(seenN) < 2 || len(seenS) < 2 {
		t.Fatalf("defined key types collapsed to too few shards: uint64-kind=%d string-kind=%d float-kind=%d",
			len(seenU), len(seenN), len(seenS))
	}

	// End to end: a Sharded map over a defined key type must actually use
	// more than one shard.
	s := NewSharded[userID, int](4)
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[s.shardOf(userID(i))] = true
	}
	if len(used) < 2 {
		t.Fatalf("Sharded over a defined key type used %d shard(s)", len(used))
	}
}

// TestShardedSnapshotIsolation: a sharded snapshot must not observe
// updates, on any shard, that complete after it was taken.
func TestShardedSnapshotIsolation(t *testing.T) {
	s := NewSharded[uint64, uint64](4)
	for i := uint64(0); i < 500; i++ {
		s.Put(i, 1)
	}
	snap := s.Snapshot()
	defer snap.Close()

	for i := uint64(0); i < 500; i++ {
		s.Put(i, 2)
	}
	s.Put(1000, 2) // new key, invisible to the snapshot

	n := 0
	snap.All(func(k, v uint64) bool {
		if v != 1 {
			t.Fatalf("snapshot saw post-snapshot value %d at key %d", v, k)
		}
		n++
		return true
	})
	if n != 500 {
		t.Fatalf("snapshot holds %d entries, want 500", n)
	}
	if _, ok := snap.Get(1000); ok {
		t.Fatal("snapshot saw a key inserted after the cut")
	}

	snap.Refresh()
	if v, _ := snap.Get(3); v != 2 {
		t.Fatal("refreshed snapshot did not advance")
	}
}

// TestShardedSnapshotRefreshAtomicity is the regression test for the
// refresh GC race: a long-lived sharded snapshot, refreshed while
// cross-shard batch writers and the per-shard GCs run, must land each
// refresh on a consistent cut — never a stale shard (a pruned revision)
// and never a torn batch.
func TestShardedSnapshotRefreshAtomicity(t *testing.T) {
	s := NewSharded[uint64, uint64](4)
	keys := keysSpanningShards(s, 16)
	write := func(gen uint64) {
		b := NewBatch[uint64, uint64](len(keys))
		for _, k := range keys {
			b.Put(k, gen)
		}
		s.BatchUpdate(b)
	}
	write(0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := uint64(1); !stop.Load(); gen++ {
			write(gen)
		}
	}()
	snap := s.Snapshot()
	defer snap.Close()
	prevGen := uint64(0)
	for round := 0; round < 3000; round++ {
		snap.Refresh()
		gen, ok := snap.Get(keys[0])
		if !ok {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("round %d: key missing after refresh", round)
		}
		if gen < prevGen {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("round %d: refresh went backwards: generation %d after %d", round, gen, prevGen)
		}
		prevGen = gen
		for _, k := range keys[1:] {
			if v, ok := snap.Get(k); !ok || v != gen {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("round %d: key %d = %d,%v want generation %d (stale shard after refresh)",
					round, k, v, ok, gen)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestShardedConcurrentMixed hammers every surface at once under the race
// detector: point ops, cross-shard batches, snapshots and merged scans.
func TestShardedConcurrentMixed(t *testing.T) {
	s := NewSharded[uint64, uint64](4)
	const keySpace = 1 << 12
	var writersWG, scannersWG sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < 4; w++ {
		writersWG.Add(1)
		go func(seed uint64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewPCG(seed, seed))
			for i := 0; i < 4000; i++ {
				k := rng.Uint64N(keySpace)
				switch rng.IntN(4) {
				case 0:
					s.Put(k, k)
				case 1:
					s.Remove(k)
				case 2:
					b := NewBatch[uint64, uint64](16)
					for j := 0; j < 16; j++ {
						b.Put(rng.Uint64N(keySpace), k)
					}
					s.BatchUpdate(b)
				case 3:
					s.Get(k)
				}
			}
		}(uint64(w + 1))
	}
	for r := 0; r < 2; r++ {
		scannersWG.Add(1)
		go func() {
			defer scannersWG.Done()
			for !stop.Load() {
				snap := s.Snapshot()
				prev := uint64(0)
				first := true
				snap.All(func(k, v uint64) bool {
					if !first && k <= prev {
						t.Error("merged scan out of order")
						return false
					}
					prev, first = k, false
					return true
				})
				snap.Close()
			}
		}()
	}
	writersWG.Wait()
	stop.Store(true)
	scannersWG.Wait()
}

// TestLoserTreeMergeShardCounts sweeps the k-way merge over shard counts —
// including 1 (degenerate tree), non-powers of two (uneven tree shapes) and
// larger fan-in — against a sorted oracle, reusing each map's pooled merge
// state across scans to cover the recycled-cursor path.
func TestLoserTreeMergeShardCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8, 16} {
		rng := rand.New(rand.NewPCG(uint64(shards), 77))
		s := NewSharded[uint64, uint64](shards)
		want := map[uint64]uint64{}
		for i := 0; i < 5000; i++ {
			k := rng.Uint64N(2048)
			s.Put(k, k*10)
			want[k] = k * 10
		}
		keys := make([]uint64, 0, len(want))
		for k := range want {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		snap := s.Snapshot()
		for scan := 0; scan < 3; scan++ { // repeat: exercise the pooled state
			i := 0
			snap.All(func(k, v uint64) bool {
				if i >= len(keys) || k != keys[i] || v != want[k] {
					t.Fatalf("shards=%d scan=%d: entry %d = (%d,%d), want key %d", shards, scan, i, k, v, keys[i])
				}
				i++
				return true
			})
			if i != len(keys) {
				t.Fatalf("shards=%d scan=%d: %d entries, want %d", shards, scan, i, len(keys))
			}
		}

		// Bounded ranges land exactly, including mid-chunk refill points.
		for trial := 0; trial < 20; trial++ {
			lo := rng.Uint64N(2048)
			hi := lo + rng.Uint64N(2048-lo) + 1
			wi := sort.Search(len(keys), func(i int) bool { return keys[i] >= lo })
			snap.Range(lo, hi, func(k, v uint64) bool {
				if wi >= len(keys) || keys[wi] >= hi || k != keys[wi] {
					t.Fatalf("shards=%d: range [%d,%d) diverged at %d", shards, lo, hi, k)
				}
				wi++
				return true
			})
			if wi < len(keys) && keys[wi] < hi {
				t.Fatalf("shards=%d: range [%d,%d) stopped before %d", shards, lo, hi, keys[wi])
			}
		}

		// Nested scans: a callback scanning the same snapshot must get its
		// own pooled state, not scribble over the outer one.
		outer := 0
		snap.All(func(k, v uint64) bool {
			outer++
			if outer == 3 {
				inner := 0
				snap.All(func(uint64, uint64) bool { inner++; return inner < 5 })
				if inner != min(5, len(keys)) {
					t.Fatalf("shards=%d: nested scan saw %d", shards, inner)
				}
			}
			return outer < 10
		})
		snap.Close()
	}
}
