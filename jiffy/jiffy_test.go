package jiffy

import (
	"testing"
)

// The two snapshot types must satisfy the shared read-only View surface.
var (
	_ View[int, string] = (*Snapshot[int, string])(nil)
	_ View[int, string] = (*ShardedSnapshot[int, string])(nil)
	_ View[int, string] = (*Map[int, string])(nil)
	_ View[int, string] = (*Sharded[int, string])(nil)
)

func TestMapFacade(t *testing.T) {
	m := New[string, int]()
	m.Put("apple", 3)
	m.Put("banana", 7)
	m.Put("cherry", 2)
	if !m.Remove("banana") || m.Remove("banana") {
		t.Fatal("remove semantics")
	}
	if v, ok := m.Get("apple"); !ok || v != 3 {
		t.Fatalf("Get(apple) = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}

	m.BatchUpdate(NewBatch[string, int](3).
		Put("apple", 10).
		Put("banana", 10).
		Remove("cherry"))

	snap := m.Snapshot()
	defer snap.Close()
	m.Put("apple", 999)

	if v, _ := snap.Get("apple"); v != 10 {
		t.Fatalf("snapshot Get(apple) = %d", v)
	}
	if v, _ := m.Get("apple"); v != 999 {
		t.Fatalf("live Get(apple) = %d", v)
	}
	var keys []string
	snap.All(func(k string, v int) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 2 || keys[0] != "apple" || keys[1] != "banana" {
		t.Fatalf("snapshot keys = %v", keys)
	}

	snap.Refresh()
	if v, _ := snap.Get("apple"); v != 999 {
		t.Fatalf("refreshed snapshot Get(apple) = %d", v)
	}
}

func TestBatchBuilder(t *testing.T) {
	b := BatchOf(
		BatchOp[int, int]{Key: 1, Val: 10},
		BatchOp[int, int]{Key: 2, Val: 20},
	).Add(BatchOp[int, int]{Key: 1, Remove: true})
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	m := New[int, int]()
	m.BatchUpdate(b)
	if _, ok := m.Get(1); ok {
		t.Fatal("later remove should win over earlier put")
	}
	if v, _ := m.Get(2); v != 20 {
		t.Fatal("batched put lost")
	}
	if b.Reset().Len() != 0 {
		t.Fatal("Reset did not empty the batch")
	}
	m.BatchUpdate(b) // empty batch must be a no-op
	if m.Len() != 1 {
		t.Fatalf("Len after empty batch = %d", m.Len())
	}
}

func TestMapRangeBounds(t *testing.T) {
	m := New[int, int]()
	for i := 0; i < 100; i++ {
		m.Put(i, i*i)
	}
	var got []int
	m.Range(10, 20, func(k, v int) bool {
		if v != k*k {
			t.Fatalf("val mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("Range[10,20) = %v", got)
	}
	n := 0
	m.RangeFrom(95, func(int, int) bool { n++; return true })
	if n != 5 {
		t.Fatalf("RangeFrom(95) visited %d", n)
	}
}
