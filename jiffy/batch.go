package jiffy

import (
	"cmp"

	"repro/internal/core"
)

// BatchOp is one operation inside an atomic batch update: a put of Val
// under Key, or, when Remove is set, a deletion of Key.
type BatchOp[K cmp.Ordered, V any] struct {
	Key    K
	Val    V
	Remove bool
}

// Batch accumulates put and remove operations to be applied atomically by
// Map.BatchUpdate or Sharded.BatchUpdate. A Batch is not safe for
// concurrent mutation: build it on one goroutine, then hand it off.
type Batch[K cmp.Ordered, V any] struct {
	ops []BatchOp[K, V]

	// cb is the cached internal builder core() refills on every apply, so
	// a reused Batch stops allocating one conversion copy per update.
	cb *core.Batch[K, V]
}

// NewBatch returns an empty batch; sizeHint pre-allocates capacity.
func NewBatch[K cmp.Ordered, V any](sizeHint int) *Batch[K, V] {
	return &Batch[K, V]{ops: make([]BatchOp[K, V], 0, sizeHint)}
}

// BatchOf returns a batch holding the given operations, in order (on
// duplicate keys the later operation wins when the batch is applied).
func BatchOf[K cmp.Ordered, V any](ops ...BatchOp[K, V]) *Batch[K, V] {
	return &Batch[K, V]{ops: ops}
}

// Put schedules key to be set to val. It returns the batch for chaining.
func (b *Batch[K, V]) Put(key K, val V) *Batch[K, V] {
	b.ops = append(b.ops, BatchOp[K, V]{Key: key, Val: val})
	return b
}

// Remove schedules key to be deleted. Removing an absent key is permitted
// and has no effect beyond the batch's atomicity guarantee.
func (b *Batch[K, V]) Remove(key K) *Batch[K, V] {
	b.ops = append(b.ops, BatchOp[K, V]{Key: key, Remove: true})
	return b
}

// Add schedules op. It returns the batch for chaining.
func (b *Batch[K, V]) Add(op BatchOp[K, V]) *Batch[K, V] {
	b.ops = append(b.ops, op)
	return b
}

// Len returns the number of scheduled operations.
func (b *Batch[K, V]) Len() int { return len(b.ops) }

// Ops returns the scheduled operations in the order they were added. The
// returned slice is the batch's backing storage: read it, do not mutate
// it. The durability layer uses it to encode batches into log records.
func (b *Batch[K, V]) Ops() []BatchOp[K, V] { return b.ops }

// Reset empties the batch, keeping its capacity for reuse.
func (b *Batch[K, V]) Reset() *Batch[K, V] {
	b.ops = b.ops[:0]
	return b
}

// core converts the batch into internal/core's builder form, reusing one
// cached builder across applies (a Batch is single-goroutine by contract,
// and core.BatchUpdate copies the operations before returning).
func (b *Batch[K, V]) core() *core.Batch[K, V] {
	if b.cb == nil {
		b.cb = core.NewBatch[K, V](len(b.ops))
	} else {
		b.cb.Reset()
	}
	for _, op := range b.ops {
		if op.Remove {
			b.cb.Remove(op.Key)
		} else {
			b.cb.Put(op.Key, op.Val)
		}
	}
	return b.cb
}
