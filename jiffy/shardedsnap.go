package jiffy

import (
	"cmp"
	"runtime"
	"sync"

	"repro/internal/core"
)

// ShardedSnapshot is a consistent read-only view spanning every shard of a
// Sharded map, frozen at one version of the shared clock. Point reads
// route to the owning shard's snapshot; range scans merge the per-shard
// streams through a loser-tree k-way merge so entries arrive in globally
// ascending key order. Close it (or Refresh it periodically) when it is
// long-lived, as it pins multiversion history on every shard.
type ShardedSnapshot[K cmp.Ordered, V any] struct {
	s    *Sharded[K, V]
	subs []*core.Snapshot[K, V]
	ver  int64
}

// Version returns the snapshot's cut version on the shared clock.
func (ss *ShardedSnapshot[K, V]) Version() int64 { return ss.ver }

// Get returns the value key had at the snapshot's version.
func (ss *ShardedSnapshot[K, V]) Get(key K) (V, bool) {
	return ss.subs[ss.s.shardOf(key)].Get(key)
}

// Range calls fn for every entry with lo <= key < hi at the snapshot's
// version, in globally ascending key order, until fn returns false.
func (ss *ShardedSnapshot[K, V]) Range(lo, hi K, fn func(key K, val V) bool) {
	ss.merge(&lo, &hi, fn)
}

// RangeFrom calls fn for every entry with key >= lo, ascending, until fn
// returns false.
func (ss *ShardedSnapshot[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	ss.merge(&lo, nil, fn)
}

// All calls fn for every entry in the snapshot, ascending, until fn
// returns false.
func (ss *ShardedSnapshot[K, V]) All(fn func(key K, val V) bool) {
	ss.merge(nil, nil, fn)
}

// Len counts the entries in the snapshot across every shard. It is O(n) —
// a full merged scan at the snapshot's cut — and intended for tests and
// diagnostics.
func (ss *ShardedSnapshot[K, V]) Len() int {
	n := 0
	ss.All(func(K, V) bool { n++; return true })
	return n
}

// Refresh advances the snapshot to a fresh cut of the shared clock,
// releasing the history pinned by the old one (core.MultiRefresh: every
// per-shard entry is re-pinned before the new cut is read, so no shard's
// GC can prune state the new cut reads). It must not race with concurrent
// use of the same snapshot.
func (ss *ShardedSnapshot[K, V]) Refresh() {
	core.MultiRefresh(ss.subs...)
	ss.ver = ss.subs[0].Version()
}

// Close unregisters the snapshot on every shard. Using a closed snapshot
// is a bug.
func (ss *ShardedSnapshot[K, V]) Close() {
	for _, sub := range ss.subs {
		sub.Close()
	}
}

// mergeChunk is the number of entries a shard cursor buffers per refill.
// Each refill re-seeks the shard's snapshot (an O(log n) descent), so the
// chunk amortizes seeks without holding more than shards x mergeChunk
// entries in memory.
const mergeChunk = 128

// prefetchAfter is the emitted-entry threshold past which a merged scan
// escalates to one prefetch goroutine per shard. Short scans (the paper's
// 100-entry windows, ScanHeavy's 500-entry windows mostly) stay on the
// serial, allocation-free path; long scans amortize the goroutine spawn
// over thousands of entries and overlap the per-shard snapshot walks with
// the merge. Escalation is skipped entirely under GOMAXPROCS=1, where the
// goroutines could only interleave, not overlap.
const prefetchAfter = 512

// shardCursor pulls one shard's snapshot stream in chunks, turning the
// push-style snapshot scan into a resumable pull iterator for the k-way
// merge. Resumption is by key: the next refill re-seeks at the last key
// the previous chunk delivered and skips it. Snapshots are immutable, so
// re-seeking is exact. The keys/vals chunk buffers are reused across
// refills, and — because the whole merge state is pooled on the parent
// Sharded map — across scans too.
type shardCursor[K cmp.Ordered, V any] struct {
	snap    *core.Snapshot[K, V]
	keys    []K
	vals    []V
	pos     int
	last    K    // last key delivered into the buffer
	hasLast bool // false until the first refill delivers an entry
	short   bool // last refill was short: the stream is exhausted
	done    bool

	// hi is the scan's upper bound for the duration of one merge; collect
	// is the buffer-filling callback, built once per cursor (it captures
	// only the cursor) and reused across refills and pooled scans so fill
	// allocates nothing.
	hi      *K
	collect func(K, V) bool

	// pf, when non-nil, is the cursor's prefetch stage: a goroutine
	// filling chunks ahead of the merge (mergeState.maybeEscalate).
	pf *prefetcher[K, V]
}

// chunkMsg is one prefetched chunk in flight between a prefetch goroutine
// and its cursor.
type chunkMsg[K cmp.Ordered, V any] struct {
	keys  []K
	vals  []V
	short bool
}

// prefetcher carries the two channels of one shard's prefetch stage: out
// delivers filled chunks to the cursor, free returns consumed buffers to
// the producer. Two buffers circulate, so the producer runs at most one
// chunk ahead of the merge and the stage holds a bounded amount of memory.
type prefetcher[K cmp.Ordered, V any] struct {
	out  chan chunkMsg[K, V]
	free chan chunkMsg[K, V]
}

// initCollect builds the cursor's reusable scan callback.
func (c *shardCursor[K, V]) initCollect() {
	c.collect = func(k K, v V) bool {
		if c.hasLast && k == c.last {
			return true // the resume key itself; already delivered
		}
		if c.hi != nil && k >= *c.hi {
			c.short = true
			return false
		}
		c.keys = append(c.keys, k)
		c.vals = append(c.vals, v)
		return len(c.keys) < mergeChunk
	}
}

// fill replenishes the cursor's buffer with the next chunk of entries in
// (last, hi), or from lo on the first fill. With an active prefetch stage
// the chunk is received from the producer instead of walked inline.
func (c *shardCursor[K, V]) fill(lo, hi *K) {
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	c.pos = 0
	if c.done || c.short {
		c.done = true
		return
	}
	if c.pf != nil {
		c.fillFromPrefetch()
		return
	}
	c.hi = hi
	switch {
	case c.hasLast:
		c.snap.RangeFrom(c.last, c.collect)
	case lo != nil:
		c.snap.RangeFrom(*lo, c.collect)
	default:
		c.snap.All(c.collect)
	}
	if len(c.keys) == 0 {
		c.done = true
		return
	}
	if len(c.keys) < mergeChunk {
		c.short = true // exhausted (or hi reached); this buffer is the tail
	}
	c.last = c.keys[len(c.keys)-1]
	c.hasLast = true
}

// fillFromPrefetch swaps the cursor onto the next prefetched chunk: the
// consumed buffers — the cursor's warm serial pair on the first swap,
// the producer's pair afterwards — go back through free (never blocking:
// exactly two buffer pairs circulate and free has room for both), and
// the next chunk is received from out. A closed out means the producer
// delivered its tail in an earlier chunk.
func (c *shardCursor[K, V]) fillFromPrefetch() {
	c.pf.free <- chunkMsg[K, V]{keys: c.keys[:0], vals: c.vals[:0]}
	msg, ok := <-c.pf.out
	if !ok {
		c.done = true
		c.keys = c.keys[:0]
		c.vals = c.vals[:0]
		return
	}
	c.keys = msg.keys
	c.vals = msg.vals
	if len(msg.keys) == 0 {
		c.done = true
		return
	}
	c.short = msg.short
	c.last = c.keys[len(c.keys)-1]
}

// empty reports whether the cursor has no buffered entry to offer.
func (c *shardCursor[K, V]) empty() bool { return c.pos >= len(c.keys) }

// mergeState is the reusable engine behind every sharded range scan: one
// cursor per shard plus the loser tree over them. Instances cycle through
// the parent Sharded map's scanPool, so a scan allocates nothing once the
// pool is warm — cursor chunk buffers included.
type mergeState[K cmp.Ordered, V any] struct {
	curs []shardCursor[K, V]
	tree []int32 // loser tree: tree[0] winner, tree[1..k-1] match losers

	// Prefetch escalation state: emitted counts entries delivered by this
	// scan, canPar caches the escalation preconditions, and — once the
	// threshold trips — stop/wg coordinate the per-shard prefetch
	// goroutines' shutdown. hi is the scan's upper bound, kept for the
	// producers.
	emitted  int
	canPar   bool
	parallel bool
	hi       *K
	stop     chan struct{}
	wg       sync.WaitGroup
}

// reset binds the state to a snapshot's sub-snapshots and primes every
// cursor.
func (st *mergeState[K, V]) reset(subs []*core.Snapshot[K, V], lo, hi *K) {
	if cap(st.curs) < len(subs) {
		st.curs = make([]shardCursor[K, V], len(subs))
		st.tree = make([]int32, len(subs))
	}
	st.curs = st.curs[:len(subs)]
	st.tree = st.tree[:len(subs)]
	st.emitted = 0
	st.parallel = false
	st.canPar = len(subs) > 1 && runtime.GOMAXPROCS(0) > 1
	st.hi = hi
	for i, sub := range subs {
		c := &st.curs[i]
		keys, vals, collect := c.keys, c.vals, c.collect // keep buffers + callback
		*c = shardCursor[K, V]{snap: sub, keys: keys, vals: vals, collect: collect}
		if c.collect == nil {
			c.initCollect()
		}
		c.fill(lo, hi)
	}
}

// maybeEscalate counts one emitted entry and, past the threshold, attaches
// a prefetch goroutine to every still-active cursor: each producer walks
// its shard's snapshot ahead of the merge into the two circulating chunk
// buffers of its prefetcher, so the per-shard snapshot scans overlap with
// each other and with the merge itself. The producers bound themselves by
// the scan's upper bound captured at reset.
func (st *mergeState[K, V]) maybeEscalate() {
	st.emitted++
	if st.parallel || !st.canPar || st.emitted < prefetchAfter {
		return
	}
	st.parallel = true
	hi := st.hi
	st.stop = make(chan struct{})
	for i := range st.curs {
		c := &st.curs[i]
		if c.done || c.short || !c.hasLast {
			continue // tail already buffered locally; nothing to prefetch
		}
		// One fresh buffer pair seeds the stage; the cursor's warm pair
		// joins the circulation at its first fillFromPrefetch swap, for
		// two pairs total per shard.
		pf := &prefetcher[K, V]{
			out:  make(chan chunkMsg[K, V], 1),
			free: make(chan chunkMsg[K, V], 2),
		}
		pf.free <- chunkMsg[K, V]{keys: make([]K, 0, mergeChunk), vals: make([]V, 0, mergeChunk)}
		c.pf = pf
		st.wg.Add(1)
		go prefetchShard(c.snap, c.last, hi, pf, st.stop, &st.wg)
	}
}

// prefetchShard is one shard's prefetch goroutine: it resumes the shard's
// snapshot stream above last and keeps one chunk in flight until the
// stream dries up, the upper bound is reached, or the merge stops. Every
// channel interaction selects on stop, so release never waits longer than
// one in-flight chunk walk.
func prefetchShard[K cmp.Ordered, V any](
	snap *core.Snapshot[K, V], last K, hi *K,
	pf *prefetcher[K, V], stop <-chan struct{}, wg *sync.WaitGroup,
) {
	defer wg.Done()
	defer close(pf.out)
	// One reusable buffer variable and collect closure for the whole
	// producer: the loop itself allocates nothing beyond the two chunk
	// buffers seeded into free.
	var buf chunkMsg[K, V]
	collect := func(k K, v V) bool {
		if k == last {
			return true // the resume key itself; already delivered
		}
		if hi != nil && k >= *hi {
			buf.short = true
			return false
		}
		buf.keys = append(buf.keys, k)
		buf.vals = append(buf.vals, v)
		return len(buf.keys) < mergeChunk
	}
	for {
		select {
		case buf = <-pf.free:
		case <-stop:
			return
		}
		buf.keys = buf.keys[:0]
		buf.vals = buf.vals[:0]
		buf.short = false
		snap.RangeFrom(last, collect)
		short := buf.short || len(buf.keys) < mergeChunk
		buf.short = short
		if n := len(buf.keys); n > 0 {
			last = buf.keys[n-1]
		}
		select {
		case pf.out <- buf:
		case <-stop:
			return
		}
		if short {
			return
		}
	}
}

// release drops references into the snapshot so the pooled state never
// pins shard history, keeping the chunk buffers for the next scan. An
// active prefetch stage is stopped first and its goroutines joined, so no
// producer outlives the scan (or keeps reading a snapshot the caller is
// about to close).
func (st *mergeState[K, V]) release() {
	if st.parallel {
		close(st.stop)
		st.wg.Wait()
		st.stop = nil
		st.parallel = false
	}
	for i := range st.curs {
		c := &st.curs[i]
		c.snap = nil
		c.hi = nil
		c.pf = nil
		c.keys = c.keys[:0]
		c.vals = c.vals[:0]
	}
	st.hi = nil
}

// lessCur reports whether cursor a's next key beats cursor b's: an
// exhausted cursor loses to any non-empty one, and keys are unique across
// shards (each key lives in exactly one shard), so no tie-break is needed.
func (st *mergeState[K, V]) lessCur(a, b int32) bool {
	ca, cb := &st.curs[a], &st.curs[b]
	ae, be := !ca.empty(), !cb.empty()
	if !ae || !be {
		return ae
	}
	return ca.keys[ca.pos] < cb.keys[cb.pos]
}

// build initializes the loser tree by inserting each leaf and carrying the
// winner of every match up its path; the k-th insertion — the one that
// finds no empty internal node — is the overall winner.
func (st *mergeState[K, V]) build() {
	k := len(st.curs)
	if k == 1 {
		st.tree[0] = 0
		return
	}
	for i := range st.tree {
		st.tree[i] = -1
	}
	for i := 0; i < k; i++ {
		w := int32(i)
		claimed := false
		for n := (k + i) / 2; n > 0; n /= 2 {
			if st.tree[n] == -1 {
				st.tree[n] = w
				claimed = true
				break
			}
			if st.lessCur(st.tree[n], w) {
				st.tree[n], w = w, st.tree[n] // loser stays, winner rises
			}
		}
		if !claimed {
			st.tree[0] = w
		}
	}
}

// replay re-plays leaf i's path to the root after its cursor advanced or
// refilled, restoring the loser-tree invariant in O(log k) comparisons —
// the step that replaces the old O(k) linear minimum scan.
func (st *mergeState[K, V]) replay(i int32) {
	k := len(st.curs)
	if k == 1 {
		return
	}
	w := i
	for n := (k + int(i)) / 2; n > 0; n /= 2 {
		if st.lessCur(st.tree[n], w) {
			st.tree[n], w = w, st.tree[n]
		}
	}
	st.tree[0] = w
}

// merge drives a sharded range scan: repeatedly emit the tree's winner and
// replay its leaf. With k shard cursors each emission costs O(log k)
// comparisons instead of the linear minimum the first version of this file
// used — at 8 shards that is 3 comparisons per entry instead of 8, and the
// gap widens with shard count. Long scans escalate to per-shard prefetch
// goroutines (maybeEscalate) so the shard walks overlap with the merge.
func (ss *ShardedSnapshot[K, V]) merge(lo, hi *K, fn func(K, V) bool) {
	st, _ := ss.s.scanPool.Get().(*mergeState[K, V])
	if st == nil {
		st = &mergeState[K, V]{}
	}
	st.reset(ss.subs, lo, hi)
	defer func() {
		st.release()
		ss.s.scanPool.Put(st)
	}()
	st.build()
	for {
		w := st.tree[0]
		c := &st.curs[w]
		if c.empty() {
			return // the winner is exhausted: all streams are dry
		}
		if !fn(c.keys[c.pos], c.vals[c.pos]) {
			return
		}
		st.maybeEscalate()
		c.pos++
		if c.empty() {
			c.fill(lo, hi)
		}
		st.replay(w)
	}
}
