package jiffy

import (
	"cmp"

	"repro/internal/core"
)

// ShardedSnapshot is a consistent read-only view spanning every shard of a
// Sharded map, frozen at one version of the shared clock. Point reads
// route to the owning shard's snapshot; range scans merge the per-shard
// streams through a k-way merge so entries arrive in globally ascending
// key order. Close it (or Refresh it periodically) when it is long-lived,
// as it pins multiversion history on every shard.
type ShardedSnapshot[K cmp.Ordered, V any] struct {
	s    *Sharded[K, V]
	subs []*core.Snapshot[K, V]
	ver  int64
}

// Version returns the snapshot's cut version on the shared clock.
func (ss *ShardedSnapshot[K, V]) Version() int64 { return ss.ver }

// Get returns the value key had at the snapshot's version.
func (ss *ShardedSnapshot[K, V]) Get(key K) (V, bool) {
	return ss.subs[ss.s.shardOf(key)].Get(key)
}

// Range calls fn for every entry with lo <= key < hi at the snapshot's
// version, in globally ascending key order, until fn returns false.
func (ss *ShardedSnapshot[K, V]) Range(lo, hi K, fn func(key K, val V) bool) {
	ss.merge(&lo, &hi, fn)
}

// RangeFrom calls fn for every entry with key >= lo, ascending, until fn
// returns false.
func (ss *ShardedSnapshot[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	ss.merge(&lo, nil, fn)
}

// All calls fn for every entry in the snapshot, ascending, until fn
// returns false.
func (ss *ShardedSnapshot[K, V]) All(fn func(key K, val V) bool) {
	ss.merge(nil, nil, fn)
}

// Len counts the entries in the snapshot across every shard. It is O(n) —
// a full merged scan at the snapshot's cut — and intended for tests and
// diagnostics.
func (ss *ShardedSnapshot[K, V]) Len() int {
	n := 0
	ss.All(func(K, V) bool { n++; return true })
	return n
}

// Refresh advances the snapshot to a fresh cut of the shared clock,
// releasing the history pinned by the old one (core.MultiRefresh: every
// per-shard entry is re-pinned before the new cut is read, so no shard's
// GC can prune state the new cut reads). It must not race with concurrent
// use of the same snapshot.
func (ss *ShardedSnapshot[K, V]) Refresh() {
	core.MultiRefresh(ss.subs...)
	ss.ver = ss.subs[0].Version()
}

// Close unregisters the snapshot on every shard. Using a closed snapshot
// is a bug.
func (ss *ShardedSnapshot[K, V]) Close() {
	for _, sub := range ss.subs {
		sub.Close()
	}
}

// mergeChunk is the number of entries a shard cursor buffers per refill.
// Each refill re-seeks the shard's snapshot (an O(log n) descent), so the
// chunk amortizes seeks without holding more than shards x mergeChunk
// entries in memory.
const mergeChunk = 128

// shardCursor pulls one shard's snapshot stream in chunks, turning the
// push-style snapshot scan into a resumable pull iterator for the k-way
// merge. Resumption is by key: the next refill re-seeks at the last key
// the previous chunk delivered and skips it. Snapshots are immutable, so
// re-seeking is exact.
type shardCursor[K cmp.Ordered, V any] struct {
	snap    *core.Snapshot[K, V]
	keys    []K
	vals    []V
	pos     int
	last    K    // last key delivered into the buffer
	hasLast bool // false until the first refill delivers an entry
	short   bool // last refill was short: the stream is exhausted
	done    bool
}

// fill replenishes the cursor's buffer with the next chunk of entries in
// (last, hi), or from lo on the first fill.
func (c *shardCursor[K, V]) fill(lo, hi *K) {
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	c.pos = 0
	if c.done || c.short {
		c.done = true
		return
	}
	collect := func(k K, v V) bool {
		if c.hasLast && k == c.last {
			return true // the resume key itself; already delivered
		}
		if hi != nil && k >= *hi {
			c.short = true
			return false
		}
		c.keys = append(c.keys, k)
		c.vals = append(c.vals, v)
		return len(c.keys) < mergeChunk
	}
	switch {
	case c.hasLast:
		c.snap.RangeFrom(c.last, collect)
	case lo != nil:
		c.snap.RangeFrom(*lo, collect)
	default:
		c.snap.All(collect)
	}
	if len(c.keys) == 0 {
		c.done = true
		return
	}
	if len(c.keys) < mergeChunk {
		c.short = true // exhausted (or hi reached); this buffer is the tail
	}
	c.last = c.keys[len(c.keys)-1]
	c.hasLast = true
}

// merge is the k-way merge driving every sharded range scan: it keeps one
// cursor per shard and repeatedly emits the smallest buffered key. Keys
// are unique across shards (each key lives in exactly one shard), so no
// tie-breaking is needed. With a handful of shards a linear minimum scan
// beats a heap; shard counts are expected to be near GOMAXPROCS.
func (ss *ShardedSnapshot[K, V]) merge(lo, hi *K, fn func(K, V) bool) {
	curs := make([]shardCursor[K, V], len(ss.subs))
	for i, sub := range ss.subs {
		curs[i].snap = sub
		curs[i].fill(lo, hi)
	}
	for {
		best := -1
		for i := range curs {
			c := &curs[i]
			if c.pos >= len(c.keys) {
				c.fill(lo, hi)
				if c.pos >= len(c.keys) {
					continue
				}
			}
			if best < 0 || c.keys[c.pos] < curs[best].keys[curs[best].pos] {
				best = i
			}
		}
		if best < 0 {
			return
		}
		c := &curs[best]
		if !fn(c.keys[c.pos], c.vals[c.pos]) {
			return
		}
		c.pos++
	}
}
