package jiffy

import (
	"cmp"

	"repro/internal/core"
)

// View is the read surface shared by live maps and snapshots of both
// frontends: Map, Sharded, Snapshot and ShardedSnapshot all satisfy it
// (asserted at compile time below). Code that only reads can accept a
// View and work against any of them.
type View[K cmp.Ordered, V any] interface {
	// Get returns the value stored for key in this view.
	Get(key K) (V, bool)
	// Range visits entries with lo <= key < hi, ascending, until fn
	// returns false.
	Range(lo, hi K, fn func(key K, val V) bool)
	// RangeFrom visits entries with key >= lo, ascending, until fn
	// returns false.
	RangeFrom(lo K, fn func(key K, val V) bool)
	// All visits every entry, ascending, until fn returns false.
	All(fn func(key K, val V) bool)
	// Iter returns a streaming iterator over this view; see Iterator.
	// On live maps the iterator owns an internal snapshot released by
	// its Close; on snapshots it borrows the snapshot, which must stay
	// open while the iterator is in use.
	Iter() Iterator[K, V]
}

// All four view types promised by the View doc satisfy it.
var (
	_ View[int, int] = (*Map[int, int])(nil)
	_ View[int, int] = (*Sharded[int, int])(nil)
	_ View[int, int] = (*Snapshot[int, int])(nil)
	_ View[int, int] = (*ShardedSnapshot[int, int])(nil)
)

// Snapshot is a consistent read-only view of a Map frozen at the moment it
// was taken. Creating one is O(1) and never blocks or slows down updates;
// scans over it never restart. A snapshot pins multiversion history, so
// Close it (or Refresh it periodically) when it is long-lived.
type Snapshot[K cmp.Ordered, V any] struct {
	s *core.Snapshot[K, V]
}

// Version returns the snapshot's version number. Versions are drawn from
// the map's internal clock and totally order snapshots of one map (or of
// one Sharded map's shards).
func (s *Snapshot[K, V]) Version() int64 { return s.s.Version() }

// Get returns the value key had at the snapshot's version.
func (s *Snapshot[K, V]) Get(key K) (V, bool) { return s.s.Get(key) }

// Range calls fn for every entry with lo <= key < hi at the snapshot's
// version, ascending, until fn returns false.
func (s *Snapshot[K, V]) Range(lo, hi K, fn func(key K, val V) bool) { s.s.Range(lo, hi, fn) }

// RangeFrom calls fn for every entry with key >= lo at the snapshot's
// version, ascending, until fn returns false.
func (s *Snapshot[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) { s.s.RangeFrom(lo, fn) }

// All calls fn for every entry in the snapshot, ascending, until fn
// returns false.
func (s *Snapshot[K, V]) All(fn func(key K, val V) bool) { s.s.All(fn) }

// Len counts the entries in the snapshot. It is O(n) — a full scan at the
// snapshot's version — and intended for tests and diagnostics.
func (s *Snapshot[K, V]) Len() int {
	n := 0
	s.All(func(K, V) bool { n++; return true })
	return n
}

// Refresh advances the snapshot to the present, releasing the history the
// old version pinned. It must not race with concurrent use of the same
// snapshot.
func (s *Snapshot[K, V]) Refresh() { s.s.Refresh() }

// Close unregisters the snapshot so the garbage collector can reclaim the
// history it pinned. Using a closed snapshot is a bug.
func (s *Snapshot[K, V]) Close() { s.s.Close() }
