// Package obs is jiffyd's zero-dependency observability layer: counters,
// gauges and fixed-bucket histograms cheap enough to live on the server's
// inline-execution hot path, plus a registry that renders them in the
// Prometheus text exposition format (version 0.0.4).
//
// The write-side design borrows internal/core's epoch-census idiom: every
// high-frequency metric is backed by cache-line-padded atomic cells,
// striped a power of two comfortably above the core count, and a writer
// picks its stripe with the per-P cheap random source (math/rand/v2's
// runtime-backed Uint64) — two or three nanoseconds, no shared cache line,
// no mutex, no allocation. Instrumenting a request therefore costs a
// handful of uncontended atomic adds, which is what lets the event-loop
// core keep its metrics on while staying within noise of the
// uninstrumented build (BENCH_0007 vs BENCH_0006).
//
// The read side (scrape) sums the stripes with atomic loads. A scrape is
// not a consistent cut: stripe sums race concurrent writers, so two
// counters incremented together may render one apart, and a histogram's
// _sum may trail its _count by in-flight observations. Each individual
// counter is still monotonic, bucket counts are cumulative and internally
// consistent (they are computed from one load pass), and everything
// converges when writers pause — exactly the guarantees Prometheus
// assumes. See DESIGN.md §10.
//
// All metric methods are nil-receiver safe no-ops, so a subsystem can
// carry an optional metrics struct (e.g. persist.Metrics) and call through
// it unconditionally: the unwired configuration costs one predicted
// branch per event, not a conditional at every call site.
package obs

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// numStripes is the stripe count shared by every striped metric: the
// smallest power of two >= GOMAXPROCS at package init, clamped to [4, 64].
// More stripes than cores buys nothing but scrape work; fewer invites
// cache-line ping-pong between writers.
var numStripes = func() int {
	n := 4
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}()

// stripe returns a stripe index drawn from the per-P fast random source.
// The draw is the same one internal/core's epochEnter uses: no shared
// state, so concurrent writers on different Ps never contend on the
// selector itself, and collisions on a cell are transient.
func stripe() int { return int(rand.Uint64()) & (numStripes - 1) }

// cell64 is one striped counter cell, padded to a cache line so
// neighboring stripes do not false-share.
type cell64 struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing striped counter.
type Counter struct {
	cells []cell64
	series
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[stripe()].n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. Concurrent adds may or may not be included.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// icell64 is one striped signed cell, padded like cell64.
type icell64 struct {
	n atomic.Int64
	_ [56]byte
}

// UpDown is a striped gauge moved by deltas (connection counts, inflight
// requests, open sessions): Add(+1)/Add(-1) land on independent stripes,
// Value sums them. It has no Set — a value that is set rather than
// counted belongs in a Gauge.
type UpDown struct {
	cells []icell64
	series
}

// Add moves the gauge by delta (negative to decrease).
func (g *UpDown) Add(delta int64) {
	if g == nil {
		return
	}
	g.cells[stripe()].n.Add(delta)
}

// Value sums the stripes.
func (g *UpDown) Value() int64 {
	if g == nil {
		return 0
	}
	var sum int64
	for i := range g.cells {
		sum += g.cells[i].n.Load()
	}
	return sum
}

// Gauge is a last-write-wins float gauge for values sampled rather than
// counted (store statistics set by a scrape hook, configuration values).
// It is a single atomic cell: Set frequency is scrape-scale, not
// request-scale.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
	series
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the last value Set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// histStripe is one stripe of a histogram: a count per bucket (the last
// slot is the +Inf bucket), plus the float sum of observed values, padded
// against false sharing with the neighboring stripe's first bucket.
type histStripe struct {
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	_       [56]byte
}

// Histogram is a fixed-bucket striped histogram. Buckets are cumulative
// upper bounds in the metric's unit (seconds for latencies, bytes for
// sizes); an observation lands in the first bucket whose bound it does
// not exceed, or the implicit +Inf bucket. Observe is a linear scan over
// the bounds (they are few and the branch predictor learns the
// distribution) plus two uncontended atomics — no allocation, no lock.
type Histogram struct {
	bounds  []float64
	stripes []histStripe
	series
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s := &h.stripes[stripe()]
	s.counts[i].Add(1)
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// snapshot sums the stripes: per-bucket counts (last is +Inf), total
// count and value sum. Bucket counts and the total are computed from one
// load pass, so count == Σ buckets always holds in a rendered histogram.
func (h *Histogram) snapshot() (buckets []uint64, count uint64, sum float64) {
	buckets = make([]uint64, len(h.bounds)+1)
	for i := range h.stripes {
		s := &h.stripes[i]
		for j := range s.counts {
			buckets[j] += s.counts[j].Load()
		}
		sum += bitsFloat(s.sumBits.Load())
	}
	for _, b := range buckets {
		count += b
	}
	return buckets, count, sum
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	_, count, _ := h.snapshot()
	return count
}

// ExpBuckets returns n exponential bucket bounds starting at start, each
// factor times the previous — the standard shape for latency and size
// distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets spans 1µs to ~4s: wide enough for loopback request
// handling (microseconds) and fsync stalls (milliseconds) on one scale.
var LatencyBuckets = ExpBuckets(1e-6, 2, 22)

// SizeBuckets spans 64 bytes to ~16 MiB for byte-size distributions
// (writev flushes, WAL group-commit writes).
var SizeBuckets = ExpBuckets(64, 4, 10)

// CountBuckets spans 1 to 512 for small cardinality distributions (group
// commit batch sizes, dirty-queue depths, iovec counts).
var CountBuckets = ExpBuckets(1, 2, 10)
