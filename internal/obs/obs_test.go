package obs

import (
	"math"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact exposition bytes for one of every
// metric kind: family grouping under one HELP/TYPE pair, label handling,
// histogram bucket/sum/count rendering, float formatting. A format drift
// that would break a Prometheus scraper fails here first.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`t_requests_total{op="get"}`, "Requests by op.")
	b := r.Counter(`t_requests_total{op="put"}`, "ignored: family help comes from first registration")
	c := r.UpDown("t_inflight", "Inflight requests.")
	g := r.Gauge("t_ratio", "A sampled ratio.")
	r.Func("t_func", "A computed value.", func() float64 { return 42 })
	h := r.Histogram(`t_seconds{op="get"}`, "Latency.", []float64{0.001, 0.25, 4})

	a.Add(3)
	b.Inc()
	c.Add(5)
	c.Add(-2)
	g.Set(0.5)
	// Powers of two: the stripe-summation order varies run to run, and
	// only exactly-representable values sum identically in every order.
	h.Observe(0.0009765625) // first bucket
	h.Observe(0.125)        // second
	h.Observe(0.125)        // second
	h.Observe(128)          // +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_requests_total Requests by op.
# TYPE t_requests_total counter
t_requests_total{op="get"} 3
t_requests_total{op="put"} 1
# HELP t_inflight Inflight requests.
# TYPE t_inflight gauge
t_inflight 3
# HELP t_ratio A sampled ratio.
# TYPE t_ratio gauge
t_ratio 0.5
# HELP t_func A computed value.
# TYPE t_func gauge
t_func 42
# HELP t_seconds Latency.
# TYPE t_seconds histogram
t_seconds_bucket{op="get",le="0.001"} 1
t_seconds_bucket{op="get",le="0.25"} 3
t_seconds_bucket{op="get",le="4"} 3
t_seconds_bucket{op="get",le="+Inf"} 4
t_seconds_sum{op="get"} 128.2509765625
t_seconds_count{op="get"} 4
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestConcurrentWritersExactTotals hammers every striped metric kind from
// GOMAXPROCS writers while a scraper renders concurrently, then asserts
// the totals are exact once the writers join: striping must never lose an
// increment, and rendering must never disturb the cells. Run under -race
// this is also the memory-model check for the whole package.
func TestConcurrentWritersExactTotals(t *testing.T) {
	r := NewRegistry()
	cnt := r.Counter("c_total", "c")
	ud := r.UpDown("u", "u")
	h := r.Histogram("h", "h", []float64{1, 10, 100})

	writers := runtime.GOMAXPROCS(0) * 2
	const perWriter = 20000
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() { // concurrent scraper
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				cnt.Inc()
				ud.Add(1)
				if i%2 == 1 {
					ud.Add(-1)
				}
				h.Observe(float64(seed%200) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	total := uint64(writers * perWriter)
	if got := cnt.Value(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	if got := ud.Value(); got != int64(writers)*perWriter/2 {
		t.Fatalf("updown = %d, want %d", got, int64(writers)*perWriter/2)
	}
	buckets, count, sum := h.snapshot()
	if count != total {
		t.Fatalf("histogram count = %d, want %d", count, total)
	}
	var bsum uint64
	for _, b := range buckets {
		bsum += b
	}
	if bsum != count {
		t.Fatalf("bucket sum %d != count %d", bsum, count)
	}
	// Each writer observed a fixed value perWriter times; recompute.
	var wantSum float64
	for w := 0; w < writers; w++ {
		wantSum += (float64(w%200) + 0.5) * perWriter
	}
	if math.Abs(sum-wantSum) > wantSum*1e-9 {
		t.Fatalf("histogram sum = %g, want %g", sum, wantSum)
	}
}

// TestNilReceiversAreNoOps asserts every metric method tolerates a nil
// receiver: unwired optional metrics (persist.Metrics) call through
// unconditionally.
func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var u *UpDown
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	u.Add(-1)
	g.Set(3)
	h.Observe(1)
	h.ObserveSince(time.Now())
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || u.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

// TestHandlerServesExposition drives the HTTP surface end to end and
// checks the scrape hook runs per request.
func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	hooked := 0
	g := r.Gauge("hooked", "set by hook")
	r.OnScrape(func() { hooked++; g.Set(float64(hooked)) })
	r.Counter("reqs_total", "x").Add(7)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for i := 1; i <= 2; i++ {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("content type %q lacks exposition version", ct)
		}
		s := string(body[:n])
		if !strings.Contains(s, "reqs_total 7") {
			t.Fatalf("scrape %d missing counter:\n%s", i, s)
		}
		if !strings.Contains(s, "hooked "+string(rune('0'+i))) {
			t.Fatalf("scrape %d: hook did not run (hooked=%d):\n%s", i, hooked, s)
		}
	}
}

// TestDuplicateRegistrationPanics pins the wiring-bug guard.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "x")
}

// TestTypeMismatchPanics: one family, two metric types.
func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter(`mixed{op="a"}`, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge(`mixed{op="b"}`, "x")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if len(LatencyBuckets) == 0 || LatencyBuckets[0] != 1e-6 {
		t.Fatal("LatencyBuckets must start at 1µs")
	}
}

// The sample-path benchmarks put a number on the "instrumentation is
// effectively free" claim: a request in the serving loop costs ~10µs, a
// metric sample must cost nanoseconds. Run with -cpu 1,8 to see the
// striping absorb parallel writers.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter did not move")
	}
}

func BenchmarkUpDownAdd(b *testing.B) {
	r := NewRegistry()
	g := r.UpDown("bench_inflight", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g.Add(1)
			g.Add(-1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench", LatencyBuckets)
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-6
		for pb.Next() {
			h.Observe(v)
			v *= 1.0001
			if v > 4 {
				v = 1e-6
			}
		}
	})
	if h.Count() == 0 {
		b.Fatal("histogram did not move")
	}
}
