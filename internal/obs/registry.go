package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// series is the registration identity every metric embeds: the family
// (base) name, and the label pairs (without braces) distinguishing this
// series within it.
type series struct {
	name   string // family name, e.g. "jiffyd_requests_total"
	labels string // label pairs, e.g. `op="get"`; empty for unlabeled
}

// renderable is one registered series as the exposition writer sees it.
type renderable interface {
	id() series
	render(b []byte) []byte // append exposition line(s), \n-terminated
}

func (s series) id() series { return s }

// family groups every series sharing a base name under one # HELP/# TYPE
// pair, as the exposition format requires.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	metrics []renderable
}

// Registry holds metrics and renders them. Registration is
// mutex-guarded and expected at setup time; the metrics themselves are
// lock-free and safe to write from any goroutine. A scrape (Write) locks
// only the registry structure, never the metric hot paths.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	byKey map[string]bool // "name{labels}" dedup
	hooks []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]bool{}}
}

// OnScrape registers fn to run at the start of every scrape, before any
// metric is rendered. Hooks are how scraped-on-demand diagnostics (the
// store's O(n) Stats walk, runtime.ReadMemStats) land in plain gauges
// without paying their cost anywhere but the scrape.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// splitName separates "name{labels}" into its family name and label
// pairs. Metrics are registered with the labels inline — the set of
// series is fixed at wiring time, so there is no runtime label lookup.
func splitName(full string) (name, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		if !strings.HasSuffix(full, "}") {
			panic("obs: malformed metric name " + full)
		}
		return full[:i], full[i+1 : len(full)-1]
	}
	return full, ""
}

// register files m under its family, creating the family on first sight
// of the base name. Duplicate series and families re-registered with a
// different type are wiring bugs and panic.
func (r *Registry) register(full, help, typ string, m renderable) {
	name, _ := splitName(full)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byKey[full] {
		panic("obs: duplicate metric " + full)
	}
	r.byKey[full] = true
	for _, f := range r.fams {
		if f.name == name {
			if f.typ != typ {
				panic("obs: metric " + full + " re-registered as " + typ + ", family is " + f.typ)
			}
			f.metrics = append(f.metrics, m)
			return
		}
	}
	r.fams = append(r.fams, &family{name: name, help: help, typ: typ, metrics: []renderable{m}})
}

// Counter registers and returns a counter. The name may carry inline
// labels: Counter(`x_total{op="get"}`, ...).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{cells: make([]cell64, numStripes)}
	c.name, c.labels = splitName(name)
	r.register(name, help, "counter", c)
	return c
}

// UpDown registers and returns a delta-moved gauge.
func (r *Registry) UpDown(name, help string) *UpDown {
	g := &UpDown{cells: make([]icell64, numStripes)}
	g.name, g.labels = splitName(name)
	r.register(name, help, "gauge", g)
	return g
}

// Gauge registers and returns a set-style gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	g.name, g.labels = splitName(name)
	r.register(name, help, "gauge", g)
	return g
}

// funcGauge renders a callback's value at scrape time.
type funcGauge struct {
	series
	fn func() float64
}

// Func registers a gauge computed by fn at every scrape.
func (r *Registry) Func(name, help string, fn func() float64) {
	g := &funcGauge{fn: fn}
	g.name, g.labels = splitName(name)
	r.register(name, help, "gauge", g)
}

// Histogram registers and returns a histogram with the given cumulative
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending: " + name)
		}
	}
	h := &Histogram{bounds: bounds, stripes: make([]histStripe, numStripes)}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	h.name, h.labels = splitName(name)
	r.register(name, help, "histogram", h)
	return h
}

// WritePrometheus runs the scrape hooks, then renders every family in
// registration order in the Prometheus text format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := append([]*family{}, r.fams...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		for _, m := range f.metrics {
			buf = m.render(buf)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition (a GET /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// appendSeries appends "name{labels} " (or "name " when unlabeled).
func appendSeries(b []byte, name, labels string) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	return append(b, ' ')
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func (c *Counter) render(b []byte) []byte {
	b = appendSeries(b, c.name, c.labels)
	b = strconv.AppendUint(b, c.Value(), 10)
	return append(b, '\n')
}

func (g *UpDown) render(b []byte) []byte {
	b = appendSeries(b, g.name, g.labels)
	b = strconv.AppendInt(b, g.Value(), 10)
	return append(b, '\n')
}

func (g *Gauge) render(b []byte) []byte {
	b = appendSeries(b, g.name, g.labels)
	b = appendFloat(b, g.Value())
	return append(b, '\n')
}

func (g *funcGauge) render(b []byte) []byte {
	b = appendSeries(b, g.name, g.labels)
	b = appendFloat(b, g.fn())
	return append(b, '\n')
}

// render writes the conventional histogram triplet: cumulative
// _bucket{le="..."} series ending at le="+Inf", then _sum and _count.
func (h *Histogram) render(b []byte) []byte {
	buckets, count, sum := h.snapshot()
	var cum uint64
	for i := range buckets {
		cum += buckets[i]
		b = append(b, h.name...)
		b = append(b, "_bucket{"...)
		if h.labels != "" {
			b = append(b, h.labels...)
			b = append(b, ',')
		}
		b = append(b, `le="`...)
		if i < len(h.bounds) {
			b = appendFloat(b, h.bounds[i])
		} else {
			b = append(b, "+Inf"...)
		}
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = appendSeries(b, h.name+"_sum", h.labels)
	b = appendFloat(b, sum)
	b = append(b, '\n')
	b = appendSeries(b, h.name+"_count", h.labels)
	b = strconv.AppendUint(b, count, 10)
	return append(b, '\n')
}

// RegisterRuntime registers process-level diagnostics: goroutine count,
// heap numbers (one ReadMemStats per scrape, via a hook), GC cycles, open
// file descriptors (Linux: a /proc/self/fd count; -1 elsewhere) and
// uptime. The soak harness asserts steady state on exactly these.
func RegisterRuntime(r *Registry) {
	start := time.Now()
	r.Func("go_goroutines", "Number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.Func("go_gomaxprocs", "GOMAXPROCS.", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	heapAlloc := r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapObjects := r.Gauge("go_heap_objects", "Number of allocated heap objects.")
	heapSys := r.Gauge("go_heap_sys_bytes", "Bytes of heap obtained from the OS.")
	gcCycles := r.Gauge("go_gc_cycles_total", "Completed GC cycles.")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		heapSys.Set(float64(ms.HeapSys))
		gcCycles.Set(float64(ms.NumGC))
	})
	r.Func("process_open_fds", "Open file descriptors (-1 where unsupported).", func() float64 {
		return float64(CountOpenFDs())
	})
	r.Func("process_uptime_seconds", "Seconds since the process registered its metrics.", func() float64 {
		return time.Since(start).Seconds()
	})
}

// CountOpenFDs counts the process's open file descriptors via
// /proc/self/fd, returning -1 where that interface does not exist.
func CountOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
