// Package workload generates the microbenchmark workloads of §4.2: key
// streams (uniform or Zipfian with the YCSB default skew 0.99 over a 20M
// key space), per-thread operation roles (updater / lookup / scanner), and
// batch shapes (sequential or random 10- and 100-operation batches).
package workload

import (
	mrand "math/rand"
	"math/rand/v2"
)

// Distribution selects how keys are drawn.
type Distribution int

const (
	Uniform Distribution = iota
	Zipf                 // skew 0.99, as in YCSB's default (§4.2)
)

func (d Distribution) String() string {
	if d == Zipf {
		return "zipf"
	}
	return "uniform"
}

// KeyGen produces keys from a distribution over [0, Space). Each goroutine
// must own its KeyGen (not safe for concurrent use).
type KeyGen struct {
	space uint64
	rng   *rand.Rand
	zipf  *mrand.Zipf
}

// NewKeyGen returns a generator over [0, space) with the given distribution
// and per-thread seed.
func NewKeyGen(dist Distribution, space uint64, seed uint64) *KeyGen {
	g := &KeyGen{space: space, rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
	if dist == Zipf {
		// math/rand's Zipf implements the power-law generator used by
		// YCSB; s = 1.01 approximates skew 0.99 closely enough while
		// satisfying the s > 1 requirement.
		src := mrand.New(mrand.NewSource(int64(seed | 1)))
		g.zipf = mrand.NewZipf(src, 1.01, 1, space-1)
	}
	return g
}

// Next returns the next key.
func (g *KeyGen) Next() uint64 {
	if g.zipf != nil {
		// Scramble so hot keys scatter across the key space instead of
		// clustering at 0 (YCSB does the same with FNV).
		return scramble(g.zipf.Uint64()) % g.space
	}
	return g.rng.Uint64N(g.space)
}

// NextN returns n keys.
func (g *KeyGen) NextN(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Coin returns true with probability p.
func (g *KeyGen) Coin(p float64) bool { return g.rng.Float64() < p }

// IntN returns a uniform int in [0, n).
func (g *KeyGen) IntN(n int) int { return g.rng.IntN(n) }

func scramble(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// BatchMode describes how update operations are grouped (§4.2).
type BatchMode struct {
	Size int  // 0 or 1 = single put/remove operations
	Seq  bool // sequential (consecutive keys) vs random batches
}

func (b BatchMode) String() string {
	switch {
	case b.Size <= 1:
		return "simple"
	case b.Seq:
		return "b" + itoa(b.Size) + "-seq"
	default:
		return "b" + itoa(b.Size) + "-rand"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BatchKeys fills keys for one batch: sequential batches update consecutive
// keys from a random start; random batches draw every key independently.
func (g *KeyGen) BatchKeys(mode BatchMode, out []uint64) []uint64 {
	out = out[:0]
	if mode.Seq {
		start := g.Next()
		for i := 0; i < mode.Size; i++ {
			out = append(out, (start+uint64(i))%g.space)
		}
		return out
	}
	for i := 0; i < mode.Size; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Role is the operation type a benchmark thread issues exclusively (§4.2:
// "each microbenchmark thread issues only one type of operations").
type Role int

const (
	Updater Role = iota
	Lookup
	Scanner
)

// Mix describes what fraction of threads run each role and the scan length.
type Mix struct {
	Name       string
	UpdateFrac float64
	LookupFrac float64
	ScanFrac   float64
	ScanLen    int
}

// The four test scenarios of §4.2: update-only; update-lookup (25 % / 75 %);
// and the two mixed scenarios (25 % updates, 50 % lookups, 25 % scans) with
// short (100-entry) or long (10 000-entry) range scans. MixScanHeavy goes
// beyond the paper: a scan-dominated concordance-style scenario — most
// threads read a bounded window of entries around every key they hit, as a
// keyword-in-context index does — with just enough updates to keep
// multiversion history churning. It is the workload the streaming
// iterators and parallel merged scans are measured under.
var (
	MixUpdateOnly   = Mix{Name: "w", UpdateFrac: 1}
	MixUpdateLookup = Mix{Name: "ul", UpdateFrac: 0.25, LookupFrac: 0.75}
	MixShortScans   = Mix{Name: "ms", UpdateFrac: 0.25, LookupFrac: 0.50, ScanFrac: 0.25, ScanLen: 100}
	MixLongScans    = Mix{Name: "ml", UpdateFrac: 0.25, LookupFrac: 0.50, ScanFrac: 0.25, ScanLen: 10000}
	MixScanHeavy    = Mix{Name: "sh", UpdateFrac: 0.10, LookupFrac: 0.15, ScanFrac: 0.75, ScanLen: 500}
)

// Mixes lists the paper's scenarios in the order its figures use; AllMixes
// adds this repo's extra scenarios (jiffybench accepts any of them via
// -mix).
var (
	Mixes    = []Mix{MixUpdateOnly, MixUpdateLookup, MixShortScans, MixLongScans}
	AllMixes = []Mix{MixUpdateOnly, MixUpdateLookup, MixShortScans, MixLongScans, MixScanHeavy}
)

// Assign distributes roles over n threads, matching the paper's
// thread-fraction scheme: the first UpdateFrac*n threads update, the next
// LookupFrac*n look up, the rest scan. At least one updater is always
// assigned when UpdateFrac > 0.
func (m Mix) Assign(n int) []Role {
	roles := make([]Role, n)
	nu := int(m.UpdateFrac * float64(n))
	if m.UpdateFrac > 0 && nu == 0 {
		nu = 1
	}
	nl := int(m.LookupFrac * float64(n))
	for i := range roles {
		switch {
		case i < nu:
			roles[i] = Updater
		case i < nu+nl:
			roles[i] = Lookup
		default:
			roles[i] = Scanner
		}
	}
	if m.ScanFrac == 0 {
		// No scanners: any remainder threads become lookups (or
		// updaters in the update-only mix).
		for i := nu + nl; i < n; i++ {
			if m.LookupFrac > 0 {
				roles[i] = Lookup
			} else {
				roles[i] = Updater
			}
		}
	}
	return roles
}
