package workload

import "testing"

func TestUniformKeysInRange(t *testing.T) {
	g := NewKeyGen(Uniform, 1000, 1)
	for i := 0; i < 10000; i++ {
		if k := g.Next(); k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfSkewed(t *testing.T) {
	g := NewKeyGen(Zipf, 1<<20, 7)
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		k := g.Next()
		if k >= 1<<20 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// A Zipf(1.01) stream over 1M keys concentrates mass heavily: the
	// most frequent key should hold far more than the uniform share.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < n/1000 {
		t.Fatalf("distribution looks uniform: hottest key has %d/%d", maxC, n)
	}
}

func TestZipfScrambleSpreadsHotKeys(t *testing.T) {
	g := NewKeyGen(Zipf, 1<<20, 9)
	low := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next() < 1<<10 {
			low++
		}
	}
	// Without scrambling, nearly all mass sits below 2^10. With it, the
	// hot keys scatter across the space.
	if low > n/10 {
		t.Fatalf("hot keys clustered at the bottom: %d/%d below 2^10", low, n)
	}
}

func TestBatchKeysSeqAndRand(t *testing.T) {
	g := NewKeyGen(Uniform, 1<<30, 3)
	seq := g.BatchKeys(BatchMode{Size: 10, Seq: true}, nil)
	if len(seq) != 10 {
		t.Fatalf("len=%d", len(seq))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatalf("not consecutive at %d: %v", i, seq)
		}
	}
	rnd := g.BatchKeys(BatchMode{Size: 10, Seq: false}, nil)
	consecutive := true
	for i := 1; i < len(rnd); i++ {
		if rnd[i] != rnd[i-1]+1 {
			consecutive = false
		}
	}
	if consecutive {
		t.Fatal("random batch came out consecutive")
	}
}

func TestBatchModeString(t *testing.T) {
	cases := map[string]BatchMode{
		"simple":    {},
		"b10-seq":   {Size: 10, Seq: true},
		"b100-rand": {Size: 100},
	}
	for want, mode := range cases {
		if got := mode.String(); got != want {
			t.Errorf("%+v.String() = %q want %q", mode, got, want)
		}
	}
}

func TestMixAssign(t *testing.T) {
	roles := MixShortScans.Assign(8)
	var u, l, s int
	for _, r := range roles {
		switch r {
		case Updater:
			u++
		case Lookup:
			l++
		case Scanner:
			s++
		}
	}
	if u != 2 || l != 4 || s != 2 {
		t.Fatalf("mix 25/50/25 over 8 threads gave %d/%d/%d", u, l, s)
	}
	roles = MixUpdateOnly.Assign(5)
	for _, r := range roles {
		if r != Updater {
			t.Fatal("update-only mix produced a non-updater")
		}
	}
	roles = MixUpdateLookup.Assign(4)
	if roles[0] != Updater {
		t.Fatal("no updater assigned")
	}
	// Remainder threads fall to lookups, not scanners.
	for _, r := range roles[1:] {
		if r == Scanner {
			t.Fatal("scanner in a scan-free mix")
		}
	}
}

func TestMixAssignAlwaysHasUpdater(t *testing.T) {
	roles := MixUpdateLookup.Assign(2) // 0.25*2 = 0 -> forced to 1
	if roles[0] != Updater {
		t.Fatalf("tiny thread count lost its updater: %v", roles)
	}
}
