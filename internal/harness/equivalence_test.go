package harness

import (
	"cmp"
	"math/rand/v2"
	"testing"

	"repro/internal/index"
)

// TestAllIndicesAgreeSequentially drives every competitor through the same
// sequential operation stream and verifies they produce identical results —
// the semantic baseline underneath the performance comparison. (KiWi is
// covered by the B-configuration variant below.)
func TestAllIndicesAgreeSequentially(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		indices := make([]index.Index[uint64, *Payload], len(IndicesA))
		for i, name := range IndicesA {
			indices[i] = NewIndexA(name)
		}
		defer closeAll(indices)
		rng := rand.New(rand.NewPCG(seed, 0xe10))
		for op := 0; op < 2000; op++ {
			k := rng.Uint64N(512)
			switch rng.IntN(4) {
			case 0:
				v := ValA(k)
				for _, idx := range indices {
					idx.Put(k, v)
				}
			case 1:
				ref := indices[0].Remove(k)
				for i, idx := range indices[1:] {
					if got := idx.Remove(k); got != ref {
						t.Fatalf("seed %d op %d: %s Remove(%d)=%v, jiffy=%v",
							seed, op, IndicesA[i+1], k, got, ref)
					}
				}
			case 2:
				refV, refOK := indices[0].Get(k)
				for i, idx := range indices[1:] {
					v, ok := idx.Get(k)
					if ok != refOK || (ok && v != refV) {
						t.Fatalf("seed %d op %d: %s Get(%d) disagrees with jiffy",
							seed, op, IndicesA[i+1], k)
					}
				}
			default:
				var refKeys []uint64
				n := 0
				indices[0].RangeFrom(k, func(kk uint64, _ *Payload) bool {
					refKeys = append(refKeys, kk)
					n++
					return n < 20
				})
				for i, idx := range indices[1:] {
					var got []uint64
					n := 0
					idx.RangeFrom(k, func(kk uint64, _ *Payload) bool {
						got = append(got, kk)
						n++
						return n < 20
					})
					if len(got) != len(refKeys) {
						t.Fatalf("seed %d op %d: %s scan len %d vs jiffy %d",
							seed, op, IndicesA[i+1], len(got), len(refKeys))
					}
					for j := range got {
						if got[j] != refKeys[j] {
							t.Fatalf("seed %d op %d: %s scan[%d]=%d vs jiffy %d",
								seed, op, IndicesA[i+1], j, got[j], refKeys[j])
						}
					}
				}
			}
		}
	}
}

// TestBIndicesAgreeSequentially is the 4/4 B variant including KiWi.
func TestBIndicesAgreeSequentially(t *testing.T) {
	for seed := uint64(10); seed < 13; seed++ {
		indices := make([]index.Index[uint32, uint32], len(IndicesB))
		for i, name := range IndicesB {
			indices[i] = NewIndexB(name)
		}
		defer closeAll(indices)
		rng := rand.New(rand.NewPCG(seed, 77))
		for op := 0; op < 2000; op++ {
			k := uint32(rng.IntN(512))
			switch rng.IntN(3) {
			case 0:
				for _, idx := range indices {
					idx.Put(k, uint32(op))
				}
			case 1:
				ref := indices[0].Remove(k)
				for i, idx := range indices[1:] {
					if got := idx.Remove(k); got != ref {
						t.Fatalf("seed %d op %d: %s Remove(%d)=%v, jiffy=%v",
							seed, op, IndicesB[i+1], k, got, ref)
					}
				}
			default:
				refV, refOK := indices[0].Get(k)
				for i, idx := range indices[1:] {
					v, ok := idx.Get(k)
					if ok != refOK || (ok && v != refV) {
						t.Fatalf("seed %d op %d: %s Get(%d)=(%d,%v), jiffy=(%d,%v)",
							seed, op, IndicesB[i+1], k, v, ok, refV, refOK)
					}
				}
			}
		}
	}
}

// closeAll releases every index that holds resources (jiffy-durable's
// scratch store and open log).
func closeAll[K cmp.Ordered, V any](indices []index.Index[K, V]) {
	for _, idx := range indices {
		CloseIndex(idx)
	}
}

// TestBatchersAgree drives the three batch-capable indices through the same
// batch streams.
func TestBatchersAgree(t *testing.T) {
	names := BatchIndices
	for seed := uint64(0); seed < 5; seed++ {
		indices := make([]index.Index[uint64, *Payload], len(names))
		batchers := make([]index.Batcher[uint64, *Payload], len(names))
		for i, name := range names {
			idx := NewIndexA(name)
			indices[i] = idx
			batchers[i] = idx.(index.Batcher[uint64, *Payload])
		}
		defer closeAll(indices)
		rng := rand.New(rand.NewPCG(seed, 0xba7c4))
		for round := 0; round < 100; round++ {
			ops := make([]index.BatchOp[uint64, *Payload], 0, 16)
			for j := 0; j < 16; j++ {
				k := rng.Uint64N(256)
				if rng.IntN(3) == 0 {
					ops = append(ops, index.BatchOp[uint64, *Payload]{Key: k, Remove: true})
				} else {
					ops = append(ops, index.BatchOp[uint64, *Payload]{Key: k, Val: ValA(k)})
				}
			}
			for _, b := range batchers {
				b.BatchUpdate(ops)
			}
		}
		for k := uint64(0); k < 256; k++ {
			_, ref := indices[0].Get(k)
			for i, idx := range indices[1:] {
				if _, ok := idx.Get(k); ok != ref {
					t.Fatalf("seed %d: %s presence of %d = %v, jiffy = %v",
						seed, names[i+1], k, ok, ref)
				}
			}
		}
	}
}
