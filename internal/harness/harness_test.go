package harness

import (
	"io"
	"testing"
	"time"

	"repro/internal/workload"
)

func smallConfig(threads int) Config {
	return Config{
		Mix:      workload.MixUpdateOnly,
		Dist:     workload.Uniform,
		KeySpace: 1 << 14,
		Prefill:  1 << 13,
		Threads:  threads,
		Duration: 50 * time.Millisecond,
		Seed:     42,
	}
}

// measureUntil re-measures with doubled windows until ok accepts the
// result, returning the last result either way. The 50 ms default window
// is enough on an idle multi-core box, but on one CPU under -race a single
// role's goroutine can starve for a whole window, producing a zero-ops
// reading that says nothing about the accounting under test.
func measureUntil(t *testing.T, run func(d time.Duration) Result, ok func(Result) bool) Result {
	t.Helper()
	var res Result
	for d := 50 * time.Millisecond; d <= 800*time.Millisecond; d *= 2 {
		res = run(d)
		if ok(res) {
			break
		}
	}
	return res
}

func TestRunProducesThroughputEveryIndexA(t *testing.T) {
	for _, name := range IndicesA {
		name := name
		t.Run(name, func(t *testing.T) {
			idx := NewIndexA(name)
			defer CloseIndex(idx)
			cfg := smallConfig(4)
			Prefill(idx, cfg, KeyA, ValA)
			res := measureUntil(t, func(d time.Duration) Result {
				cfg.Duration = d
				return Run(idx, cfg, KeyA, ValA)
			}, func(r Result) bool { return r.TotalOps > 0 })
			if res.TotalOps == 0 {
				t.Fatalf("%s made no progress", name)
			}
			if res.UpdateOps != res.TotalOps {
				t.Fatalf("update-only mix: update %d != total %d", res.UpdateOps, res.TotalOps)
			}
		})
	}
}

func TestRunProducesThroughputEveryIndexB(t *testing.T) {
	for _, name := range IndicesB {
		name := name
		t.Run(name, func(t *testing.T) {
			idx := NewIndexB(name)
			defer CloseIndex(idx)
			cfg := smallConfig(4)
			cfg.Mix = workload.MixUpdateLookup
			Prefill(idx, cfg, KeyB, ValB)
			res := measureUntil(t, func(d time.Duration) Result {
				cfg.Duration = d
				return Run(idx, cfg, KeyB, ValB)
			}, func(r Result) bool { return r.UpdateOps > 0 && r.UpdateOps < r.TotalOps })
			if res.TotalOps == 0 {
				t.Fatalf("%s made no progress", name)
			}
			if res.UpdateOps == 0 || res.UpdateOps >= res.TotalOps {
				t.Fatalf("mixed run accounting broken: update %d total %d", res.UpdateOps, res.TotalOps)
			}
		})
	}
}

func TestScansCountAsBasicOps(t *testing.T) {
	idx := NewIndexA("jiffy")
	cfg := smallConfig(4)
	cfg.Mix = workload.MixShortScans
	Prefill(idx, cfg, KeyA, ValA)
	res := Run(idx, cfg, KeyA, ValA)
	// With 25% updaters and scans counting per entry, total must exceed
	// updates substantially.
	if res.TotalOps <= res.UpdateOps*2 {
		t.Fatalf("scan accounting suspicious: total %d update %d", res.TotalOps, res.UpdateOps)
	}
}

func TestBatchRowsRunOnBatchers(t *testing.T) {
	for _, name := range BatchIndices {
		name := name
		t.Run(name, func(t *testing.T) {
			idx := NewIndexA(name)
			defer CloseIndex(idx)
			cfg := smallConfig(2)
			cfg.Batch = workload.BatchMode{Size: 10, Seq: false}
			Prefill(idx, cfg, KeyA, ValA)
			res := Run(idx, cfg, KeyA, ValA)
			if res.TotalOps < 10 {
				t.Fatalf("%s batch run made no progress", name)
			}
			if res.TotalOps%1 != 0 || res.UpdateOps != res.TotalOps {
				t.Fatalf("batch accounting: %+v", res)
			}
		})
	}
}

func TestRunFigureSmoke(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Duration = 20 * time.Millisecond
	only := map[string]bool{"jiffy": true, "ca-avl": true}
	res := RunFigure(io.Discard, Figures["5"], "b10", []int{1, 2}, cfg, only)
	// 2 modes (seq+rand) x 2 indices x 2 thread counts.
	if len(res) != 8 {
		t.Fatalf("expected 8 results, got %d", len(res))
	}
	res = RunFigure(io.Discard, Figures["6"], "simple", []int{2}, cfg, map[string]bool{"kiwi": true})
	if len(res) != 1 || res[0].Index != "kiwi" {
		t.Fatalf("kiwi point missing: %+v", res)
	}
}

func TestZipfFigureSmoke(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Duration = 20 * time.Millisecond
	res := RunFigure(io.Discard, Figures["8"], "simple", []int{2}, cfg, map[string]bool{"jiffy": true})
	if len(res) != 1 || res[0].Config.Dist != workload.Zipf {
		t.Fatalf("zipf figure misconfigured: %+v", res)
	}
}
