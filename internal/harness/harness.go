// Package harness drives any index.Index through the microbenchmark of
// §4.2 and reports throughput in basic operations per second, where a scan
// over n entries counts as n get operations, exactly as the paper accounts.
//
// Each benchmark thread issues only one type of operation (update, lookup
// or range scan); the thread-role mix, key distribution, batch shape and
// key/value sizes are the experiment's axes. The figures of the paper are
// all instances of one parameterised run; see DESIGN.md §4 for the mapping.
package harness

import (
	"cmp"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/workload"
)

// Config parameterises one measurement point.
type Config struct {
	Mix      workload.Mix
	Dist     workload.Distribution
	Batch    workload.BatchMode
	KeySpace uint64 // unique keys (paper: 20M)
	Prefill  int    // entries inserted before measuring (paper: 10M)
	Threads  int
	Duration time.Duration
	Seed     uint64
}

// Result is one measurement point.
type Result struct {
	Index     string
	Config    Config
	TotalOps  uint64
	UpdateOps uint64
	Elapsed   time.Duration
}

// TotalMops returns total throughput in millions of basic ops per second.
func (r Result) TotalMops() float64 {
	return float64(r.TotalOps) / 1e6 / r.Elapsed.Seconds()
}

// UpdateMops returns update-only throughput (the appendix figures).
func (r Result) UpdateMops() float64 {
	return float64(r.UpdateOps) / 1e6 / r.Elapsed.Seconds()
}

// Row renders the result as one harness output row.
func (r Result) Row() string {
	return fmt.Sprintf("%-13s %-3s %-9s %-8s threads=%-3d total=%8.3f Mops/s update=%8.3f Mops/s",
		r.Index, r.Config.Mix.Name, r.Config.Batch.String(), r.Config.Dist.String(),
		r.Config.Threads, r.TotalMops(), r.UpdateMops())
}

// Prefill loads the initial dataset: Prefill distinct keys spread evenly
// over the key space (the paper's 10M-entry dataset over 20M keys), so
// updaters hit present and absent keys with equal probability. Keys are
// inserted in a shuffled order — ascending insertion is a known worst case
// for unbalanced leaf-oriented trees (k-ary) and would bias the comparison.
func Prefill[K cmp.Ordered, V any](idx index.Index[K, V], cfg Config, keyOf func(uint64) K, valOf func(uint64) V) {
	if cfg.Prefill == 0 {
		return
	}
	stride := cfg.KeySpace / uint64(cfg.Prefill)
	if stride == 0 {
		stride = 1
	}
	order := rand.Perm(cfg.Prefill)
	// Parallel prefill: even on one core this overlaps allocation and
	// index work; on many cores it shortens setup substantially.
	workers := 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < cfg.Prefill; i += workers {
				k := uint64(order[i]) * stride
				idx.Put(keyOf(k), valOf(k))
			}
		}()
	}
	wg.Wait()
}

// ScanWindow performs one bounded window scan of want entries starting at
// lo, pulling through the index's streaming iterator when it offers one
// (pass the result of the index's Iterable assertion) and falling back to
// the push-style RangeFrom callback otherwise. It reports the entries
// seen. The harness scanner role and bench_test's mirror both drive scans
// through it, so they measure identical behavior.
func ScanWindow[K cmp.Ordered, V any](idx index.Index[K, V], iterable index.Iterable[K, V], lo K, want int) int {
	seen := 0
	if iterable != nil {
		it := iterable.Iter()
		it.Seek(lo)
		for seen < want && it.Next() {
			seen++
		}
		it.Close()
		return seen
	}
	idx.RangeFrom(lo, func(K, V) bool {
		seen++
		return seen < want
	})
	return seen
}

// Run measures one point: cfg.Threads goroutines issue their role's
// operations for cfg.Duration. keyOf/valOf map the generated uint64 key
// stream into the index's key and value types (uint64 keys with 100-byte
// payload values for the 16/100 B configuration; uint32/uint32 for 4/4 B).
func Run[K cmp.Ordered, V any](idx index.Index[K, V], cfg Config, keyOf func(uint64) K, valOf func(uint64) V) Result {
	roles := cfg.Mix.Assign(cfg.Threads)
	batcher, _ := any(idx).(index.Batcher[K, V])
	useBatch := cfg.Batch.Size > 1 && batcher != nil
	iterable, _ := any(idx).(index.Iterable[K, V])

	var stop atomic.Bool
	var started, ready sync.WaitGroup
	totals := make([]uint64, cfg.Threads)
	updates := make([]uint64, cfg.Threads)

	started.Add(1) // released to start the measurement
	for t := 0; t < cfg.Threads; t++ {
		t := t
		ready.Add(1)
		go func() {
			gen := workload.NewKeyGen(cfg.Dist, cfg.KeySpace, cfg.Seed+uint64(t)*1e6+1)
			batchBuf := make([]uint64, 0, cfg.Batch.Size)
			ops := make([]index.BatchOp[K, V], 0, cfg.Batch.Size)
			started.Wait()
			defer ready.Done()
			var n, nu uint64
			for !stop.Load() {
				switch roles[t] {
				case workload.Updater:
					if useBatch {
						batchBuf = gen.BatchKeys(cfg.Batch, batchBuf)
						ops = ops[:0]
						for _, k := range batchBuf {
							if gen.Coin(0.5) {
								ops = append(ops, index.BatchOp[K, V]{Key: keyOf(k), Val: valOf(k)})
							} else {
								ops = append(ops, index.BatchOp[K, V]{Key: keyOf(k), Remove: true})
							}
						}
						batcher.BatchUpdate(ops)
						n += uint64(len(ops))
						nu += uint64(len(ops))
					} else {
						k := gen.Next()
						if gen.Coin(0.5) {
							idx.Put(keyOf(k), valOf(k))
						} else {
							idx.Remove(keyOf(k))
						}
						n++
						nu++
					}
				case workload.Lookup:
					idx.Get(keyOf(gen.Next()))
					n++
				case workload.Scanner:
					// Bounded window scans prefer the streaming iterator
					// when the index offers one: the scan stops pulling
					// at the count limit instead of cancelling a
					// push-style callback mid-walk.
					n += uint64(ScanWindow(idx, iterable, keyOf(gen.Next()), cfg.Mix.ScanLen))
				}
			}
			totals[t] = n
			updates[t] = nu
		}()
	}

	start := time.Now()
	started.Done()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	ready.Wait()
	elapsed := time.Since(start)

	res := Result{Index: name(idx), Config: cfg, Elapsed: elapsed}
	for t := range totals {
		res.TotalOps += totals[t]
		res.UpdateOps += updates[t]
	}
	return res
}

func name(idx any) string {
	if n, ok := idx.(index.Named); ok {
		return n.Name()
	}
	return fmt.Sprintf("%T", idx)
}
