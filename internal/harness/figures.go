package harness

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/baseline/catree"
	"repro/internal/baseline/cslm"
	"repro/internal/baseline/kary"
	"repro/internal/baseline/lfca"
	"repro/internal/baseline/snaptree"
	"repro/internal/index"
	"repro/internal/workload"
	"repro/jiffy/durable"
)

// Payload is the boxed 100-byte value of the 16/100 B configuration: like
// the Java original, indices store references to the value objects, not the
// bytes themselves (paper footnote 7).
type Payload [100]byte

// KeyA/ValA map generated keys into the 16/100 B configuration ("config A":
// 8-byte comparable keys standing in for the paper's 16 B keys — Go's
// uint64 is the largest cheaply comparable integer key — with 100 B
// heap-allocated payloads).
func KeyA(k uint64) uint64 { return k }

// ValA allocates the 100-byte payload for key k.
func ValA(k uint64) *Payload {
	var p Payload
	p[0] = byte(k)
	p[1] = byte(k >> 8)
	return &p
}

// KeyB/ValB map into the 4/4 B configuration.
func KeyB(k uint64) uint32 { return uint32(k) }

// ValB returns the 4-byte value for key k.
func ValB(k uint64) uint32 { return uint32(k) }

// IndicesA are the competitors in the 16/100 B configuration (Figures 5, 7
// and 8), plus this repo's sharded and durable Jiffy frontends. KiWi is
// absent: its codebase supports only 4 B integer keys.
var IndicesA = []string{"jiffy", "jiffy-sharded", "jiffy-durable", "snaptree", "k-ary", "ca-avl", "ca-sl", "ca-imm", "lfca", "cslm"}

// IndicesB adds KiWi for the 4/4 B configuration (Figures 6, 9 and 10).
var IndicesB = []string{"jiffy", "jiffy-sharded", "jiffy-durable", "snaptree", "k-ary", "ca-avl", "ca-sl", "ca-imm", "lfca", "cslm", "kiwi"}

// BatchIndices are the indices supporting atomic batch updates: the batch
// rows of every figure compare exactly these (§4.2), plus the sharded and
// durable frontends, whose batches stay atomic across shards and crashes
// respectively.
var BatchIndices = []string{"jiffy", "jiffy-sharded", "jiffy-durable", "ca-avl", "ca-sl"}

// ShardCount is the shard count "jiffy-sharded" runs with. It defaults to
// the number of schedulable CPUs (minimum 2, so the sharded paths are
// actually exercised); cmd/jiffybench's -shards flag overrides it.
var ShardCount = defaultShardCount()

func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

// CloseIndex releases an index that holds resources beyond memory
// (jiffy-durable: an open log and a scratch directory). Call it after a
// measurement point; it is a no-op for purely in-memory indices.
func CloseIndex(idx any) {
	if c, ok := idx.(interface{ Close() error }); ok {
		c.Close()
	}
}

// durableDir allocates a scratch store directory for one jiffy-durable
// measurement point. Each point opens a fresh store, exactly as each point
// builds a fresh in-memory index.
func durableDir() string {
	dir, err := os.MkdirTemp("", "jiffy-durable-")
	if err != nil {
		panic("harness: scratch dir for jiffy-durable: " + err.Error())
	}
	return dir
}

// payloadEnc encodes the boxed 100-byte payload of configuration A.
func payloadEnc() durable.Enc[*Payload] {
	return durable.Enc[*Payload]{
		Append: func(dst []byte, v *Payload) []byte { return append(dst, v[:]...) },
		Decode: func(src []byte) (*Payload, error) {
			var p Payload
			copy(p[:], src)
			return &p, nil
		},
	}
}

// NewIndexA constructs a named index in the 16/100 B configuration.
func NewIndexA(name string) index.Index[uint64, *Payload] {
	switch name {
	case "jiffy":
		return index.NewJiffy[uint64, *Payload]()
	case "jiffy-sharded":
		return index.NewShardedJiffy[uint64, *Payload](ShardCount)
	case "jiffy-durable":
		return index.NewDurableJiffy(durableDir(),
			durable.Codec[uint64, *Payload]{Key: durable.Uint64Enc(), Value: payloadEnc()},
			durable.Options[uint64]{NoSync: true})
	case "snaptree":
		return snaptree.New[uint64, *Payload]()
	case "k-ary":
		return kary.New[uint64, *Payload]()
	case "ca-avl":
		return catree.New[uint64, *Payload](catree.AVL)
	case "ca-sl":
		return catree.New[uint64, *Payload](catree.SL)
	case "ca-imm":
		return catree.New[uint64, *Payload](catree.Imm)
	case "lfca":
		return lfca.New[uint64, *Payload]()
	case "cslm":
		return cslm.New[uint64, *Payload]()
	}
	panic("unknown index " + name)
}

// NewIndexB constructs a named index in the 4/4 B configuration.
func NewIndexB(name string) index.Index[uint32, uint32] {
	switch name {
	case "jiffy":
		return index.NewJiffy[uint32, uint32]()
	case "jiffy-sharded":
		return index.NewShardedJiffy[uint32, uint32](ShardCount)
	case "jiffy-durable":
		return index.NewDurableJiffy(durableDir(),
			durable.Codec[uint32, uint32]{Key: durable.Uint32Enc(), Value: durable.Uint32Enc()},
			durable.Options[uint32]{NoSync: true})
	case "snaptree":
		return snaptree.New[uint32, uint32]()
	case "k-ary":
		return kary.New[uint32, uint32]()
	case "ca-avl":
		return catree.New[uint32, uint32](catree.AVL)
	case "ca-sl":
		return catree.New[uint32, uint32](catree.SL)
	case "ca-imm":
		return catree.New[uint32, uint32](catree.Imm)
	case "lfca":
		return lfca.New[uint32, uint32]()
	case "cslm":
		return cslm.New[uint32, uint32]()
	case "kiwi":
		return index.NewKiwi()
	}
	panic("unknown index " + name)
}

// Figure describes one of the paper's figures.
type Figure struct {
	ID     string
	Small  bool // false: 16/100 B (config A); true: 4/4 B (config B)
	Dist   workload.Distribution
	Update bool // also report update-only throughput (Figures 7-10)
}

// Figures maps figure numbers to their axes (DESIGN.md §4).
var Figures = map[string]Figure{
	"5":  {ID: "5", Small: false, Dist: workload.Uniform},
	"6":  {ID: "6", Small: true, Dist: workload.Uniform},
	"7":  {ID: "7", Small: false, Dist: workload.Uniform, Update: true},
	"8":  {ID: "8", Small: false, Dist: workload.Zipf, Update: true},
	"9":  {ID: "9", Small: true, Dist: workload.Uniform, Update: true},
	"10": {ID: "10", Small: true, Dist: workload.Zipf, Update: true},
}

// Rows are the three figure rows: simple put/remove operations and the two
// batch-update sizes, each in sequential and random variants.
var Rows = map[string][]workload.BatchMode{
	"simple": {{}},
	"b10":    {{Size: 10, Seq: true}, {Size: 10, Seq: false}},
	"b100":   {{Size: 100, Seq: true}, {Size: 100, Seq: false}},
}

// RunFigure regenerates one row of one figure: every index × every thread
// count × every batch variant, printing one harness row per point. A fresh
// index is built and prefilled per point, as in the paper's methodology.
func RunFigure(w io.Writer, fig Figure, row string, threads []int, base Config, only map[string]bool) []Result {
	var out []Result
	modes, ok := Rows[row]
	if !ok {
		panic("unknown row " + row)
	}
	names := IndicesA
	if fig.Small {
		names = IndicesB
	}
	if row != "simple" {
		names = BatchIndices
	}
	base.Dist = fig.Dist
	for _, mode := range modes {
		for _, name := range names {
			if only != nil && !only[name] {
				continue
			}
			for _, th := range threads {
				cfg := base
				cfg.Batch = mode
				cfg.Threads = th
				var res Result
				if fig.Small {
					idx := NewIndexB(name)
					Prefill(idx, cfg, KeyB, ValB)
					res = Run(idx, cfg, KeyB, ValB)
					CloseIndex(idx)
				} else {
					idx := NewIndexA(name)
					Prefill(idx, cfg, KeyA, ValA)
					res = Run(idx, cfg, KeyA, ValA)
					CloseIndex(idx)
				}
				fmt.Fprintf(w, "fig%-3s %s\n", fig.ID, res.Row())
				out = append(out, res)
			}
		}
	}
	return out
}
