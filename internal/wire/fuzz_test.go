package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame decoder. The
// invariants: it never panics, never allocates more than the announced
// (bounded) length, and classifies every input as exactly one of — a
// clean EOF, a partial frame, a corrupt header, or a well-formed frame
// whose fields round-trip through AppendFrame.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                            // length below FrameOverhead
	f.Add([]byte{9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1}) // minimal ping
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})           // absurd length
	f.Add(AppendFrame(nil, 42, OpGet, []byte("\x00\x00\x00\x00\x00\x00\x00\x00k")))
	f.Add(AppendFrame(AppendFrame(nil, 1, OpPing, nil), 2, OpPing, nil)) // two frames
	long := AppendFrame(nil, 7, OpPut, bytes.Repeat([]byte{0xab}, 300))
	f.Add(long[:len(long)-10]) // truncated mid-body

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			id, op, body, nbuf, err := ReadFrame(r, buf)
			buf = nbuf
			if err != nil {
				// A clean EOF is only legal at a frame boundary: ReadFrame
				// promises io.EOF means zero header bytes were available.
				if err == io.EOF && r.Len() != 0 {
					t.Fatalf("io.EOF with %d bytes unconsumed", r.Len())
				}
				return
			}
			// A decoded frame must re-encode to a prefix-compatible frame.
			re := AppendFrame(nil, id, op, body)
			if len(re) != 4+FrameOverhead+len(body) {
				t.Fatalf("re-encoded frame length %d, want %d", len(re), 4+FrameOverhead+len(body))
			}
			rid, rop, rbody, _, rerr := ReadFrame(bytes.NewReader(re), nil)
			if rerr != nil || rid != id || rop != op || !bytes.Equal(rbody, body) {
				t.Fatalf("round trip mismatch: (%d %d %x %v) vs (%d %d %x)", rid, rop, rbody, rerr, id, op, body)
			}
		}
	})
}

// FuzzRoundTrip builds frames from fuzzed fields and asserts the decoder
// returns them bit-exactly, including through BeginFrame/EndFrame and
// with uvarint byte strings in the body.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), byte(OpPing), []byte{}, []byte{})
	f.Add(uint64(1<<63), byte(OpScan), []byte("key"), []byte("value"))
	f.Add(uint64(12345), byte(OpBatch), bytes.Repeat([]byte{0}, 1000), []byte{0xff})

	f.Fuzz(func(t *testing.T, id uint64, op byte, k, v []byte) {
		if len(k)+len(v) > 1<<20 {
			return // keep the corpus fast; size limits are FuzzReadFrame's job
		}
		// Body built the way handlers build scan pages: in place.
		buf, lenAt := BeginFrame(nil, id, op)
		buf = AppendBytes(buf, k)
		buf = AppendBytes(buf, v)
		buf = EndFrame(buf, lenAt)

		gid, gop, body, _, err := ReadFrame(bytes.NewReader(buf), nil)
		if err != nil {
			t.Fatalf("decode built frame: %v", err)
		}
		if gid != id || gop != op {
			t.Fatalf("id/op mismatch: got (%d,%d) want (%d,%d)", gid, gop, id, op)
		}
		gk, rest, err := TakeBytes(body)
		if err != nil || !bytes.Equal(gk, k) {
			t.Fatalf("key mismatch: %x vs %x (%v)", gk, k, err)
		}
		gv, rest, err := TakeBytes(rest)
		if err != nil || !bytes.Equal(gv, v) {
			t.Fatalf("value mismatch: %x vs %x (%v)", gv, v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes after body", len(rest))
		}
		// The announced length must match what EndFrame patched.
		if n := binary.LittleEndian.Uint32(buf); int(n) != len(buf)-4 {
			t.Fatalf("length header %d, frame data %d", n, len(buf)-4)
		}
	})
}
