package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestFrameRoundTrip checks AppendFrame and the BeginFrame/EndFrame pair
// both produce frames ReadFrame parses back intact.
func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	stream = AppendFrame(stream, 7, OpGet, []byte("hello"))
	buf, lenAt := BeginFrame(stream, 8, OpPut)
	buf = append(buf, "worldly"...)
	stream = EndFrame(buf, lenAt)
	stream = AppendFrame(stream, 9, OpPing, nil)

	r := bytes.NewReader(stream)
	var rbuf []byte
	want := []struct {
		id   uint64
		op   byte
		body string
	}{{7, OpGet, "hello"}, {8, OpPut, "worldly"}, {9, OpPing, ""}}
	for _, w := range want {
		id, op, body, nbuf, err := ReadFrame(r, rbuf)
		rbuf = nbuf
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if id != w.id || op != w.op || string(body) != w.body {
			t.Fatalf("frame = (%d, %d, %q), want (%d, %d, %q)", id, op, body, w.id, w.op, w.body)
		}
	}
	if _, _, _, _, err := ReadFrame(r, rbuf); err != io.EOF {
		t.Fatalf("end of stream: err = %v, want io.EOF", err)
	}
}

// TestReadFrameErrors checks the corruption and truncation paths.
func TestReadFrameErrors(t *testing.T) {
	// Truncated mid-body.
	full := AppendFrame(nil, 1, OpGet, []byte("body"))
	_, _, _, _, err := ReadFrame(bytes.NewReader(full[:len(full)-2]), nil)
	if err != io.ErrUnexpectedEOF {
		t.Errorf("torn body: err = %v, want io.ErrUnexpectedEOF", err)
	}

	// Truncated mid-header.
	_, _, _, _, err = ReadFrame(bytes.NewReader(full[:2]), nil)
	if err == nil || err == io.EOF {
		t.Errorf("torn header: err = %v, want unexpected-EOF error", err)
	}

	// Length below the id+op minimum.
	_, _, _, _, err = ReadFrame(strings.NewReader("\x01\x00\x00\x00x"), nil)
	if err == nil {
		t.Error("undersized frame: want error")
	}

	// Length beyond MaxFrameBytes.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	_, _, _, _, err = ReadFrame(bytes.NewReader(huge), nil)
	if err != ErrFrameTooBig {
		t.Errorf("oversized frame: err = %v, want ErrFrameTooBig", err)
	}
}

// TestBytesRoundTrip checks the length-prefixed byte-string helpers,
// including empty strings and consumption order.
func TestBytesRoundTrip(t *testing.T) {
	var p []byte
	p = AppendBytes(p, []byte("key"))
	p = AppendBytes(p, nil)
	p = AppendBytes(p, bytes.Repeat([]byte{0xab}, 300)) // 2-byte uvarint length

	b1, p, err := TakeBytes(p)
	if err != nil || string(b1) != "key" {
		t.Fatalf("first = %q, %v", b1, err)
	}
	b2, p, err := TakeBytes(p)
	if err != nil || len(b2) != 0 {
		t.Fatalf("second = %q, %v", b2, err)
	}
	b3, p, err := TakeBytes(p)
	if err != nil || len(b3) != 300 || b3[0] != 0xab {
		t.Fatalf("third = %d bytes, %v", len(b3), err)
	}
	if len(p) != 0 {
		t.Fatalf("%d bytes left over", len(p))
	}
	if _, _, err := TakeBytes(p); err == nil {
		t.Error("TakeBytes on empty input: want error")
	}
	if _, _, err := TakeBytes([]byte{0x05, 'a'}); err == nil {
		t.Error("TakeBytes with short body: want error")
	}
}
