package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Cluster roles, as reported in a ClusterInfo.
const (
	// RolePrimary: the node accepts writes and serves the replication
	// stream.
	RolePrimary = byte(iota)

	// RoleReplica: the node follows a primary and serves watermark-gated
	// reads; writes answer StatusReadOnly.
	RoleReplica

	// RoleFenced: the node was a primary but observed a higher fencing
	// epoch; writes answer StatusFenced until it rejoins as a replica.
	RoleFenced
)

// RoleName returns a human-readable role name.
func RoleName(r byte) string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	case RoleFenced:
		return "fenced"
	}
	return fmt.Sprintf("role(%d)", r)
}

// Member is one fleet member as described by a ClusterInfo: its stable
// node id, its client-serving address, and its replication-stream
// address (empty when the node cannot serve the stream).
type Member struct {
	ID       string
	Addr     string
	ReplAddr string
}

// ClusterInfo is the OpCluster response payload: the serving node's view
// of the fleet. Clients use it for primary rediscovery (find the member
// whose role is primary at the highest epoch) and replica read routing;
// failover detectors use Epoch and Watermark to rank candidates.
//
// Encoding: i64 epoch | u8 role | i64 watermark | u16 n | member*,
// where each member is three uvarint-length-prefixed strings
// (id, addr, replAddr). Members includes the serving node itself.
type ClusterInfo struct {
	Epoch     int64
	Role      byte
	Watermark int64
	Members   []Member
}

// AppendClusterInfo appends the encoded form of ci to dst.
func AppendClusterInfo(dst []byte, ci ClusterInfo) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ci.Epoch))
	dst = append(dst, ci.Role)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ci.Watermark))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ci.Members)))
	for _, m := range ci.Members {
		dst = AppendBytes(dst, []byte(m.ID))
		dst = AppendBytes(dst, []byte(m.Addr))
		dst = AppendBytes(dst, []byte(m.ReplAddr))
	}
	return dst
}

// DecodeClusterInfo decodes a ClusterInfo encoded by AppendClusterInfo.
func DecodeClusterInfo(p []byte) (ClusterInfo, error) {
	var ci ClusterInfo
	if len(p) < 19 {
		return ci, errors.New("wire: short cluster info")
	}
	ci.Epoch = int64(binary.LittleEndian.Uint64(p))
	ci.Role = p[8]
	ci.Watermark = int64(binary.LittleEndian.Uint64(p[9:]))
	n := int(binary.LittleEndian.Uint16(p[17:]))
	p = p[19:]
	ci.Members = make([]Member, 0, n)
	for i := 0; i < n; i++ {
		var id, addr, repl []byte
		var err error
		if id, p, err = TakeBytes(p); err != nil {
			return ci, fmt.Errorf("wire: cluster member id: %w", err)
		}
		if addr, p, err = TakeBytes(p); err != nil {
			return ci, fmt.Errorf("wire: cluster member addr: %w", err)
		}
		if repl, p, err = TakeBytes(p); err != nil {
			return ci, fmt.Errorf("wire: cluster member repl addr: %w", err)
		}
		ci.Members = append(ci.Members, Member{
			ID: string(id), Addr: string(addr), ReplAddr: string(repl),
		})
	}
	return ci, nil
}
