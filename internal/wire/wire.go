// Package wire defines the length-prefixed binary protocol spoken between
// cmd/jiffyd (internal/server) and jiffy/client. The framing is shared by
// both ends so the encoders and decoders cannot drift apart; the payload
// semantics — which ops exist, what their bodies mean — are documented here
// and in DESIGN.md §8.
//
// A frame is
//
//	u32 n | data[n]        (little endian)
//
// where data is
//
//	u64 id | u8 op | body
//
// On requests, id is a client-chosen correlation number echoed verbatim in
// the response — responses to pipelined requests are matched by id, not by
// order — and op is an Op* code. On responses, the op byte carries a
// Status* code instead. The body layout depends on the op; keys and values
// travel as uvarint-length-prefixed byte strings encoded by the caller's
// codec (jiffy/durable.Codec), exactly as the durability layer encodes log
// records, so a store's WAL and its wire form share one encoding.
//
// The protocol is deliberately minimal: no compression, no TLS (those
// belong to a fronting proxy), and versioning only where a stream needs
// it. The client/server half has no handshake at all — a server rejects
// malformed frames by closing the connection — while the replication
// half carries an explicit protocol number in OpReplHello. Extensions
// follow one convention, the proto bump: a new field is appended to an
// existing frame layout and announced by a higher hello protocol number
// (proto 2 added the fencing epoch to the hello, proto 3 added the trace
// ID to streamed records), so an old peer keeps speaking the old layout
// and a new peer only uses the new field with a peer that announced it.
// On the request path, where there is no hello, the same idea rides the
// op byte instead: FlagTraced marks a request whose body is prefixed
// with an optional trace ID, set only by clients explicitly opted into
// tracing, and servers that predate it reject the unknown op byte — the
// failure is confined to the caller who opted in.
//
// This layer's job is to move the paper's operations — point ops, atomic
// batches, snapshot sessions and cursored scans — with as little framing
// overhead as possible.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request opcodes.
const (
	// OpPing has an empty body; the response body is empty. Liveness
	// probes and smoke tests use it.
	OpPing = byte(iota + 1)

	// OpGet body: u64 snapID | i64 floor | key. snapID 0 reads the live
	// map; a non-zero snapID reads that snapshot session's frozen
	// version. floor is the caller's read-your-writes bound: a replica
	// whose replicated watermark is below it answers StatusBehind instead
	// of stale data (0: no bound; primaries ignore it). Response body:
	// val (present only when status is StatusOK).
	OpGet

	// OpPut body: key | val. Response body: i64 version — the commit
	// version of the update, which the client folds into its
	// read-your-writes floor. A replica answers StatusReadOnly.
	OpPut

	// OpDel body: key. Response: StatusOK when the key was present,
	// StatusNotFound when absent; body: i64 version when present (see
	// OpPut), else empty.
	OpDel

	// OpBatch body: uvarint nops | op*, where op is
	//
	//	u8 kind (0 put, 1 remove) | key | put: val
	//
	// — the durability layer's record payload layout. The whole batch is
	// applied as one atomic cross-shard update. Response body: i64
	// version (see OpPut; 0 for an empty batch).
	OpBatch

	// OpSnap body: empty, or i64 floor. The server registers a snapshot
	// session and responds with u64 snapID | i64 version. The session
	// pins the store's history at that version until closed or
	// TTL-reaped. A floor demands version >= floor: a replica that
	// cannot satisfy it answers StatusBehind and registers nothing.
	OpSnap

	// OpSnapClose body: u64 snapID. Response body: empty; closing an
	// unknown (already reaped) session reports StatusUnknownSnap.
	OpSnapClose

	// OpScan body: u64 snapID | i64 floor | u32 maxEntries |
	// u8 cursor mode | key?. Cursor modes: ScanFromStart (no key),
	// ScanInclusive (first page of a bounded scan: the key itself is
	// included) and ScanExclusive (continuation: the key was the last one
	// delivered and is skipped). snapID 0 scans an ephemeral snapshot
	// taken for this page only — pages are then individually consistent
	// but not mutually; a session id freezes every page at the session's
	// version. floor is as in OpGet, checked against the page's snapshot.
	// Response body:
	//
	//	u8 more | u32 n | (key | val)*
	//
	// more=1 means the snapshot has entries past this page; continue with
	// ScanExclusive from the last key.
	OpScan

	// Replication stream opcodes. A replica dials the primary's -repl-addr
	// listener and the two sides exchange frames on the same framing as
	// the client protocol, but as a stream, not request/response: ids are
	// zero and unused. See DESIGN.md §11.

	// OpReplHello, replica → primary, opens the stream. Body:
	// u32 protocol | i64 wantVersion | proto >= 2: i64 epoch.
	// wantVersion is the replica's durable watermark; the primary
	// resumes with records strictly above it (from its in-memory ring or
	// its on-disk segments), or falls back to a checkpoint bootstrap
	// when the tail below wantVersion is gone — or when the replica's
	// fencing epoch proves its history may have diverged past the
	// promote boundary. Proto 1 omits the epoch (pre-failover peers);
	// proto >= 2 peers receive an OpReplEpoch frame before the catch-up
	// tier. Proto 3 additionally selects the traced OpReplBatch record
	// layout (each record carries its uvarint trace ID). A hello whose epoch
	// is HIGHER than the serving primary's is fencing evidence: the
	// primary refuses the stream and fences itself.
	OpReplHello

	// OpReplSnapBegin, primary → replica: a state bootstrap follows.
	// Body: i64 snapVersion — the consistent cut the chunks were read
	// at. The replica discards its local state and applies the chunks
	// at exactly this version.
	OpReplSnapBegin

	// OpReplSnapChunk, primary → replica. Body: u32 n | (key | val)*,
	// keys and values uvarint-length-prefixed in codec encoding.
	OpReplSnapChunk

	// OpReplSnapEnd, primary → replica: the bootstrap is complete; the
	// replica checkpoints locally and sets its watermark to snapVersion.
	// Body: empty. Tail batches follow.
	OpReplSnapEnd

	// OpReplBatch, primary → replica: a batch of WAL records riding the
	// group-commit boundary, also the heartbeat (n = 0). Body:
	//
	//	i64 frontier | u64 lastSeq | u32 n | record*
	//
	// where a record is, by the hello's protocol number,
	//
	//	proto <= 2:  i64 version | uvarint plen | payload
	//	proto 3:     i64 version | uvarint traceID | uvarint plen | payload
	//
	// (traceID 0 — a single byte — when the originating write was
	// untraced or the record was recovered from disk, where trace IDs
	// are not persisted; sampling keeps traced records the exception,
	// so the layout change costs one byte per record, not eight).
	//
	// frontier is the primary's stability bound: every record with
	// version <= frontier has been delivered on this stream (or was
	// covered by wantVersion/snapVersion), so the replica may apply all
	// buffered records up to it, in version order, and advance its
	// watermark to it. lastSeq is the stream sequence number of the last
	// record in the batch (0 during disk catch-up), echoed in acks for
	// the primary's synchronous-ack accounting.
	OpReplBatch

	// OpReplAck, replica → primary, sent after each applied batch and
	// periodically. Body: u64 lastSeq | i64 watermark. lastSeq echoes
	// the newest OpReplBatch received; watermark reports the replica's
	// applied version bound, which feeds the primary's lag gauges.
	OpReplAck

	// OpReplEpoch, primary → replica, the first frame after a proto-2
	// OpReplHello is accepted. Body: i64 epoch | i64 epochStart — the
	// primary's current fencing epoch and the version that epoch began
	// at. The replica persists the pair so that, were it promoted later,
	// its own epoch history carries the boundary.
	OpReplEpoch

	// OpCluster, client → server, on the ordinary request/response
	// protocol. Body: empty, or i64 knownEpoch — the highest fencing
	// epoch the caller has observed anywhere in the fleet. A server that
	// believes itself primary at a LOWER epoch treats the announcement as
	// fencing evidence (a newer primary exists) and fences itself.
	// Response body: an encoded ClusterInfo (cluster.go) — the server's
	// role, epoch, watermark and member list — which clients use for
	// primary rediscovery and replica read routing.
	OpCluster
)

// FlagTraced marks a traced request: set on the op byte of any request
// opcode, it announces that the body is prefixed with a u64 trace ID
// (little endian) stitching this request's spans across processes (see
// internal/trace). The server strips the flag and the prefix before
// dispatch; responses are unchanged (they are matched by id, not trace).
// Clients set the flag only when tracing is explicitly enabled
// (-trace-sample), so a pre-trace server that rejects the unknown op
// byte only ever affects a caller who opted in — the request-path analog
// of the repl hello's proto bump.
const FlagTraced = byte(0x80)

// OpMask recovers the opcode from a request's op byte (strips FlagTraced).
const OpMask = byte(0x7f)

// Scan cursor modes (OpScan body).
const (
	ScanFromStart = byte(iota)
	ScanInclusive
	ScanExclusive
)

// Response status codes.
const (
	// StatusOK: the operation succeeded; the body is the op's result.
	StatusOK = byte(iota)

	// StatusNotFound: a get missed or a delete found nothing. Not an
	// error; the body is empty.
	StatusNotFound

	// StatusUnknownSnap: the request named a snapshot session the server
	// does not hold (never created, closed, or TTL-reaped).
	StatusUnknownSnap

	// StatusBadRequest: the server could not decode the request. The body
	// is a human-readable message.
	StatusBadRequest

	// StatusErr: the operation failed server-side (e.g. a durable store's
	// log append). The body is a human-readable message.
	StatusErr

	// StatusBehind: a read carried a version floor the serving replica's
	// replicated watermark has not reached. Not an error — the client
	// retries against the primary (or waits). The body is empty.
	StatusBehind

	// StatusReadOnly: a write reached a replica. Writes go to the
	// primary; a replica only accepts them after promotion. The body is
	// empty.
	StatusReadOnly

	// StatusFenced: a write reached a node that was a primary but has
	// observed a higher fencing epoch — another node was promoted in its
	// place (it was partitioned away, or slow to die). Unlike
	// StatusReadOnly this is terminal for the serving node's primacy:
	// the client must rediscover the fleet's current primary (OpCluster)
	// and retry there. The body is empty.
	StatusFenced
)

// Batch op kinds (OpBatch body), matching jiffy/durable's record encoding.
const (
	BatchPut    = byte(0)
	BatchRemove = byte(1)
)

// MaxFrameBytes bounds a frame's data length; length prefixes beyond it
// are treated as protocol corruption rather than allocated. One batch or
// one scan page must fit a frame.
const MaxFrameBytes = 16 << 20

// FrameOverhead is the fixed overhead inside a frame's data: the u64 id
// plus the u8 op byte. A frame's data length is FrameOverhead plus its
// body length; peers reject announced lengths below it.
const FrameOverhead = 8 + 1

// ErrFrameTooBig is returned when a peer announces a frame larger than
// MaxFrameBytes.
var ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrameBytes")

// AppendFrame appends one complete frame carrying id, op and body to dst
// and returns the extended slice. Use it when the body is already encoded;
// BeginFrame/EndFrame avoid the copy when encoding the body in place.
func AppendFrame(dst []byte, id uint64, op byte, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(8+1+len(body)))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, op)
	return append(dst, body...)
}

// BeginFrame appends a frame header with a length placeholder to dst,
// returning the extended slice and the placeholder's offset. Encode the
// body directly onto the returned slice, then call EndFrame with the same
// offset to patch the length in.
func BeginFrame(dst []byte, id uint64, op byte) (buf []byte, lenAt int) {
	lenAt = len(dst)
	dst = append(dst, 0, 0, 0, 0) // length placeholder
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, op)
	return dst, lenAt
}

// EndFrame patches the length of the frame begun at lenAt, completing it.
func EndFrame(buf []byte, lenAt int) []byte {
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf
}

// ReadFrame reads one frame from r into buf (grown as needed) and returns
// the frame's id, op byte and body. The body aliases buf — it is valid
// only until the next ReadFrame with the same buffer. A clean EOF before
// the first header byte returns io.EOF; a partial frame returns
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) (id uint64, op byte, body, bufOut []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < FrameOverhead {
		return 0, 0, nil, buf, fmt.Errorf("wire: frame data length %d below header minimum", n)
	}
	if n > MaxFrameBytes {
		return 0, 0, nil, buf, ErrFrameTooBig
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, buf, err
	}
	id = binary.LittleEndian.Uint64(buf[0:8])
	return id, buf[8], buf[9:], buf, nil
}

// AppendBytes appends a uvarint-length-prefixed byte string to dst.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// TakeBytes consumes one uvarint-length-prefixed byte string from p,
// returning the string (aliasing p) and the remainder.
func TakeBytes(p []byte) (b, rest []byte, err error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return nil, p, errors.New("wire: truncated byte string")
	}
	return p[n : n+int(l)], p[n+int(l):], nil
}
