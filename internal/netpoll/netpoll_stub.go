//go:build !linux

package netpoll

// Supported reports whether this platform has a readiness-polling
// implementation. When it returns false the server serves every
// connection with its portable goroutine-per-connection core instead;
// none of the functions below are reached.
func Supported() bool { return false }

// Poller is the unsupported-platform stub.
type Poller struct{}

// New fails with ErrUnsupported.
func New() (*Poller, error) { return nil, ErrUnsupported }

func (p *Poller) Close() error                { return ErrUnsupported }
func (p *Poller) Add(fd int, r, w bool) error { return ErrUnsupported }
func (p *Poller) Mod(fd int, r, w bool) error { return ErrUnsupported }
func (p *Poller) Del(fd int) error            { return ErrUnsupported }
func (p *Poller) Wake() error                 { return ErrUnsupported }
func (p *Poller) Wait(evs []Event) (int, bool, error) {
	return 0, false, ErrUnsupported
}
func (p *Poller) Writev(fd int, bufs [][]byte) (int, error) {
	return 0, ErrUnsupported
}

// SetNonblock fails with ErrUnsupported.
func SetNonblock(fd int) error { return ErrUnsupported }

// Read fails with ErrUnsupported.
func Read(fd int, p []byte) (int, error) { return 0, ErrUnsupported }
