// Package netpoll is a small readiness-polling shim for the event-loop
// server core (internal/server): an epoll(7) wrapper on Linux and an
// explicit "unsupported" stub elsewhere, so the server compiles portably
// and falls back to its goroutine-per-connection core where readiness
// polling is unavailable.
//
// The shim is deliberately minimal — one Poller per event loop, owned by
// exactly one goroutine. Only Wake is safe to call from other goroutines
// (it is how the server nudges a loop to shut down or to notice an
// externally requested connection close); Add/Mod/Del are additionally
// safe from the acceptor because epoll_ctl is thread-safe against a
// concurrent epoll_wait. Level-triggered notification is used throughout:
// the loop may stop reading a socket mid-burst (fairness budgets, output
// backpressure) and rely on the next Wait re-reporting the readiness.
//
// Raw fd I/O lives here too (Read, Writev), so internal/server contains
// no build-tagged syscall code: on non-Linux builds these return
// ErrUnsupported and are never reached, because Supported() steers the
// server onto net.Conn readers instead.
package netpoll

import "errors"

// ErrAgain is returned by Read and Writev when the operation would block
// (EAGAIN/EWOULDBLOCK): the caller should wait for the next readiness
// event on the fd.
var ErrAgain = errors.New("netpoll: operation would block")

// ErrUnsupported is returned by every operation on platforms without a
// readiness-polling implementation. Supported() reports it up front.
var ErrUnsupported = errors.New("netpoll: not supported on this platform")

// Event is one readiness report. Readable is set for incoming data and
// for every hangup/error condition — the reader discovers peer closes and
// socket errors as a read result, which keeps teardown on one path.
// Writable reports that a previously full socket drained. Hup is set
// alongside Readable for hangup/error conditions (peer half-close, reset,
// socket error): a caller that has suspended reading would otherwise see
// the same Readable report every Wait with no read to discover the close
// through, so Hup is its signal to tear the connection down.
type Event struct {
	FD       int
	Readable bool
	Writable bool
	Hup      bool
}

// maxIovecs caps one Writev call's vector length (IOV_MAX is 1024 on
// Linux; stay safely under it).
const maxIovecs = 512
