package netpoll

import (
	"bytes"
	"io"
	"syscall"
	"testing"
	"time"
)

// socketPair returns a connected non-blocking AF_UNIX stream pair.
func socketPair(t *testing.T) (int, int) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	for _, fd := range fds {
		if err := SetNonblock(fd); err != nil {
			t.Fatalf("nonblock: %v", err)
		}
	}
	t.Cleanup(func() { syscall.Close(fds[0]); syscall.Close(fds[1]) })
	return fds[0], fds[1]
}

func TestSupportedMatchesBuild(t *testing.T) {
	if !Supported() {
		t.Skip("netpoll unsupported on this platform; the server falls back to goroutine conns")
	}
}

// TestReadinessRoundTrip registers one end of a socket pair, proves Wait
// blocks until data arrives, and that Read drains exactly what was sent
// then reports ErrAgain.
func TestReadinessRoundTrip(t *testing.T) {
	if !Supported() {
		t.Skip("unsupported")
	}
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, b := socketPair(t)
	if err := p.Add(a, true, false); err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		syscall.Write(b, []byte("hello"))
	}()
	evs := make([]Event, 8)
	n, woken, err := p.Wait(evs)
	if err != nil || woken || n != 1 {
		t.Fatalf("Wait = %d/%v/%v, want 1 readable event", n, woken, err)
	}
	if evs[0].FD != a || !evs[0].Readable || evs[0].Writable {
		t.Fatalf("event = %+v, want readable on %d", evs[0], a)
	}
	buf := make([]byte, 16)
	rn, err := Read(a, buf)
	if err != nil || !bytes.Equal(buf[:rn], []byte("hello")) {
		t.Fatalf("Read = %q/%v", buf[:rn], err)
	}
	if _, err := Read(a, buf); err != ErrAgain {
		t.Fatalf("drained Read err = %v, want ErrAgain", err)
	}
}

// TestWake proves Wake unblocks Wait with no fd events, and that wakes
// coalesce rather than error when the pipe is full.
func TestWake(t *testing.T) {
	if !Supported() {
		t.Skip("unsupported")
	}
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 100000; i++ { // overflow the wake pipe: must stay nil
		if err := p.Wake(); err != nil {
			t.Fatalf("wake %d: %v", i, err)
		}
	}
	evs := make([]Event, 4)
	n, woken, err := p.Wait(evs)
	if err != nil || !woken || n != 0 {
		t.Fatalf("Wait = %d/%v/%v, want pure wake", n, woken, err)
	}
	// The drain leaves the next Wait blocking again.
	done := make(chan struct{})
	go func() {
		p.Wait(evs)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned with no pending wake")
	case <-time.After(50 * time.Millisecond):
	}
	p.Wake()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wake did not unblock Wait")
	}
}

// TestPeerCloseIsReadable proves a peer close surfaces as readability and
// then io.EOF from Read — the single teardown path the loop relies on.
func TestPeerCloseIsReadable(t *testing.T) {
	if !Supported() {
		t.Skip("unsupported")
	}
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, b := socketPair(t)
	if err := p.Add(a, true, false); err != nil {
		t.Fatal(err)
	}
	syscall.Write(b, []byte("tail"))
	syscall.Close(b)
	evs := make([]Event, 4)
	n, _, err := p.Wait(evs)
	if err != nil || n < 1 || !evs[0].Readable {
		t.Fatalf("Wait after peer close = %d/%v (%+v)", n, err, evs[:n])
	}
	buf := make([]byte, 16)
	rn, err := Read(a, buf)
	if err != nil || string(buf[:rn]) != "tail" {
		t.Fatalf("buffered tail Read = %q/%v", buf[:rn], err)
	}
	if _, err := Read(a, buf); err != io.EOF {
		t.Fatalf("Read after peer close err = %v, want io.EOF", err)
	}
}

// TestWritevPartialAndWritable fills a socket until ErrAgain, registers
// write interest, drains the peer, and expects a Writable event; the
// writev path must also report partial progress correctly.
func TestWritevPartialAndWritable(t *testing.T) {
	if !Supported() {
		t.Skip("unsupported")
	}
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, b := socketPair(t)

	chunk := make([]byte, 32<<10)
	total := 0
	for {
		n, err := p.Writev(a, [][]byte{chunk[:8<<10], chunk[8<<10:]})
		if err == ErrAgain {
			break
		}
		if err != nil {
			t.Fatalf("writev: %v", err)
		}
		total += n
		if total > 64<<20 {
			t.Fatal("socket never filled")
		}
	}
	if total == 0 {
		t.Fatal("no bytes written before ErrAgain")
	}
	if err := p.Add(a, false, true); err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := syscall.Read(b, buf); err != nil && err != syscall.EAGAIN {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	evs := make([]Event, 4)
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, _, err := p.Wait(evs)
		if err != nil {
			t.Fatal(err)
		}
		writable := false
		for _, ev := range evs[:n] {
			if ev.FD == a && ev.Writable {
				writable = true
			}
		}
		if writable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no writable event after peer drained")
		}
	}
	if n, err := p.Writev(a, [][]byte{chunk[:16]}); err != nil || n != 16 {
		t.Fatalf("post-drain writev = %d/%v", n, err)
	}
}

// TestMoreReadyThanSlots registers more simultaneously-ready fds than one
// Wait can report (the kernel event buffer holds len(evs)+1 entries so a
// wake never crowds out an fd event — the overflow entry must be dropped,
// not written past evs). Level-triggered polling re-reports the dropped
// fds, so repeated Waits still deliver every one, and an interleaved Wake
// is never lost.
func TestMoreReadyThanSlots(t *testing.T) {
	if !Supported() {
		t.Skip("unsupported")
	}
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const fds = 9 // evs below holds 4: three Waits' worth plus overflow
	ready := map[int]bool{}
	for i := 0; i < fds; i++ {
		a, b := socketPair(t)
		if err := p.Add(a, true, false); err != nil {
			t.Fatal(err)
		}
		if _, err := syscall.Write(b, []byte{1}); err != nil {
			t.Fatal(err)
		}
		ready[a] = false
	}
	if err := p.Wake(); err != nil {
		t.Fatal(err)
	}

	evs := make([]Event, 4)
	sawWake := false
	for round := 0; round < 2*fds; round++ {
		n, woken, err := p.Wait(evs)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		sawWake = sawWake || woken
		for _, ev := range evs[:n] {
			if !ev.Readable {
				t.Fatalf("event %+v not readable", ev)
			}
			seen, ok := ready[ev.FD]
			if !ok {
				t.Fatalf("unknown fd %d reported", ev.FD)
			}
			if !seen {
				ready[ev.FD] = true
				var buf [8]byte
				if _, err := Read(ev.FD, buf[:]); err != nil {
					t.Fatalf("drain fd %d: %v", ev.FD, err)
				}
			}
		}
		done := 0
		for _, seen := range ready {
			if seen {
				done++
			}
		}
		if done == fds {
			if !sawWake {
				t.Fatal("wake lost while fd events overflowed")
			}
			return
		}
	}
	t.Fatalf("not all ready fds reported: %+v", ready)
}
