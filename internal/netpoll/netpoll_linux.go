//go:build linux

package netpoll

import (
	"io"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// Supported reports whether this platform has a readiness-polling
// implementation.
func Supported() bool { return true }

// Poller multiplexes readiness over one epoll instance plus a wake pipe.
// One goroutine owns Wait; Wake may be called from anywhere; Add/Mod/Del
// may be called concurrently with Wait (epoll_ctl is thread-safe).
type Poller struct {
	epfd  int
	wakeR int
	wakeW int

	// epf wraps epfd as an *os.File registered with the Go runtime's own
	// netpoller (an epoll instance is itself pollable, and epoll nesting
	// is kernel-supported): raw.Read parks the waiting GOROUTINE until
	// epfd has events, instead of parking the OS thread in a blocking
	// epoll_wait. A thread blocked in a raw syscall pins its P until
	// sysmon retakes it — up to 10ms of nothing-runs with GOMAXPROCS=1 —
	// which is the difference between an event loop that keeps pace with
	// the runtime-integrated goroutine core and one that stalls the
	// whole process on every quiet moment. raw is nil when registration
	// is unavailable; Wait then falls back to blocking epoll_wait.
	epf *os.File
	raw syscall.RawConn

	eevs []syscall.EpollEvent
	iov  []syscall.Iovec
}

// New creates a Poller.
func New() (*Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	p := &Poller{epfd: epfd, wakeR: pipe[0], wakeW: pipe[1]}
	if err := p.ctl(syscall.EPOLL_CTL_ADD, p.wakeR, syscall.EPOLLIN); err != nil {
		p.Close()
		return nil, err
	}
	// Non-blocking first, so os.NewFile registers epfd with the runtime
	// poller rather than treating it as a blocking file.
	syscall.SetNonblock(epfd, true)
	p.epf = os.NewFile(uintptr(epfd), "epoll")
	if p.epf != nil {
		if rc, err := p.epf.SyscallConn(); err == nil {
			p.raw = rc
		}
	}
	return p, nil
}

// Close releases the epoll instance and the wake pipe. Registered fds are
// not closed (their owners close them), only deregistered implicitly.
func (p *Poller) Close() error {
	var err error
	if p.epf != nil {
		err = p.epf.Close() // owns epfd; also deregisters from the runtime poller
	} else {
		err = syscall.Close(p.epfd)
	}
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
	return err
}

func (p *Poller) ctl(op, fd int, events uint32) error {
	ev := syscall.EpollEvent{Events: events, Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, op, fd, &ev)
}

// evbits builds the epoll interest set. EPOLLRDHUP is always included so
// a peer half-close surfaces as readability even while reads are paused
// for backpressure — the loop still tears such connections down promptly.
func evbits(read, write bool) uint32 {
	e := uint32(syscall.EPOLLRDHUP)
	if read {
		e |= syscall.EPOLLIN
	}
	if write {
		e |= syscall.EPOLLOUT
	}
	return e
}

// Add registers fd with the given interest.
func (p *Poller) Add(fd int, read, write bool) error {
	return p.ctl(syscall.EPOLL_CTL_ADD, fd, evbits(read, write))
}

// Mod changes fd's interest.
func (p *Poller) Mod(fd int, read, write bool) error {
	return p.ctl(syscall.EPOLL_CTL_MOD, fd, evbits(read, write))
}

// Del deregisters fd.
func (p *Poller) Del(fd int) error {
	return p.ctl(syscall.EPOLL_CTL_DEL, fd, 0)
}

// Wait blocks until at least one registered fd is ready or Wake is
// called, filling evs and returning the count plus whether a wake was
// consumed. Spurious wakeups are absorbed internally.
//
// Before blocking, Wait runs zero-timeout polls with a scheduler yield
// between them. A blocking epoll_wait parks this OS thread and — with
// GOMAXPROCS=1 especially — forces a P handoff on entry and a P
// reacquisition on wakeup, a cost the runtime's own netpoller never pays;
// under pipelined load the peer has usually produced more data by the
// time a flush completes, and the yield lets same-process peers (tests
// and loopback benchmarks drive client and server in one process) run
// and produce it. epoll_wait with timeout 0 cannot block, so the fast
// path may use a raw syscall that skips the runtime's syscall
// bookkeeping entirely. Only after two empty polls does Wait pay for
// parking the thread.
func (p *Poller) Wait(evs []Event) (n int, woken bool, err error) {
	if cap(p.eevs) < len(evs)+1 {
		p.eevs = make([]syscall.EpollEvent, len(evs)+1)
	}
	eevs := p.eevs[:len(evs)+1]
	for {
		for spin := 0; ; spin++ {
			// epoll_pwait rather than epoll_wait: the latter has no
			// syscall number on newer Linux ports (arm64). NULL sigmask.
			r, _, errno := syscall.RawSyscall6(syscall.SYS_EPOLL_PWAIT, uintptr(p.epfd),
				uintptr(unsafe.Pointer(&eevs[0])), uintptr(len(eevs)), 0, 0, 0)
			if errno != 0 && errno != syscall.EINTR {
				return 0, false, errno
			}
			if errno == 0 && r > 0 {
				if n, woken := p.collect(evs, eevs[:r]); n > 0 || woken {
					return n, woken, nil
				}
			}
			if spin >= 1 {
				break
			}
			runtime.Gosched()
		}
		if p.raw != nil {
			n, woken, err, ok := p.waitParked(evs, eevs)
			if ok {
				return n, woken, err
			}
			p.raw = nil // runtime-poller registration unusable; block from now on
		}
		ne, err := syscall.EpollWait(p.epfd, eevs, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return 0, false, err
		}
		if n, woken := p.collect(evs, eevs[:ne]); n > 0 || woken {
			return n, woken, nil
		}
	}
}

// waitParked blocks until epfd has events by parking the calling
// goroutine on the Go runtime's netpoller (epfd itself is registered
// there — see Poller.raw). The callback only ever runs zero-timeout
// polls, so no OS thread blocks and no P is pinned. ok=false reports
// that the registration does not work on this kernel/runtime (e.g. the
// runtime refused the nested-epoll add) and the caller must fall back.
func (p *Poller) waitParked(evs []Event, eevs []syscall.EpollEvent) (n int, woken bool, err error, ok bool) {
	rerr := p.raw.Read(func(fd uintptr) bool {
		r, _, errno := syscall.RawSyscall6(syscall.SYS_EPOLL_PWAIT, fd,
			uintptr(unsafe.Pointer(&eevs[0])), uintptr(len(eevs)), 0, 0, 0)
		if errno == syscall.EINTR {
			return false
		}
		if errno != 0 {
			err = errno
			return true
		}
		if r == 0 {
			return false // spurious readiness: park again
		}
		n, woken = p.collect(evs, eevs[:r])
		return n > 0 || woken
	})
	if err != nil {
		return n, woken, err, true
	}
	if rerr != nil {
		if n > 0 || woken {
			return n, woken, nil, true
		}
		// "waiting for unsupported file type" (epfd not in the runtime
		// poller) or the file was closed under us: hand off to the caller.
		return 0, false, nil, false
	}
	return n, woken, nil, true
}

// collect translates raw epoll events into evs, draining the wake pipe
// when it fired. HUP/ERR/RDHUP map to Readable so every teardown flows
// through the read path.
func (p *Poller) collect(evs []Event, eevs []syscall.EpollEvent) (n int, woken bool) {
	out := 0
	for _, e := range eevs {
		fd := int(e.Fd)
		if fd == p.wakeR {
			woken = true
			p.drainWake()
			continue
		}
		if out == len(evs) {
			// More ready fds than evs slots (the kernel buffer holds one
			// extra so a wake never crowds out an fd event): drop the
			// overflow — level-triggered polling re-reports it next Wait —
			// but keep scanning so a trailing wake entry is not lost.
			continue
		}
		ev := Event{FD: fd}
		if e.Events&(syscall.EPOLLIN|syscall.EPOLLPRI|syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
			ev.Readable = true
		}
		if e.Events&(syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
			ev.Hup = true
		}
		if e.Events&syscall.EPOLLOUT != 0 {
			ev.Writable = true
		}
		evs[out] = ev
		out++
	}
	return out, woken
}

// Wake nudges a blocked Wait. A full wake pipe means a wake is already
// pending, which is success.
func (p *Poller) Wake() error {
	b := [1]byte{1}
	for {
		_, err := syscall.Write(p.wakeW, b[:])
		switch err {
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return nil
		default:
			return err
		}
	}
}

func (p *Poller) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(p.wakeR, buf[:])
		if err != nil || n < len(buf) {
			return
		}
	}
}

// SetNonblock puts fd into non-blocking mode.
func SetNonblock(fd int) error { return syscall.SetNonblock(fd, true) }

// Read reads from a non-blocking fd. It returns ErrAgain when the socket
// has no data, io.EOF on a clean peer close, and maps EINTR to a retry.
func Read(fd int, p []byte) (int, error) {
	for {
		n, err := syscall.Read(fd, p)
		switch err {
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return 0, ErrAgain
		case nil:
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		default:
			return 0, err
		}
	}
}

// Writev gathers bufs into one writev(2) on a non-blocking fd, returning
// the bytes written (possibly a partial prefix) or ErrAgain when the
// socket buffer is full. The iovec scratch lives on the Poller, so Writev
// is for the owning loop goroutine only.
func (p *Poller) Writev(fd int, bufs [][]byte) (int, error) {
	p.iov = p.iov[:0]
	for _, b := range bufs {
		if len(b) == 0 {
			continue
		}
		var v syscall.Iovec
		v.Base = &b[0]
		v.SetLen(len(b))
		p.iov = append(p.iov, v)
		if len(p.iov) == maxIovecs {
			break
		}
	}
	if len(p.iov) == 0 {
		return 0, nil
	}
	for {
		r, _, errno := syscall.Syscall(syscall.SYS_WRITEV,
			uintptr(fd), uintptr(unsafe.Pointer(&p.iov[0])), uintptr(len(p.iov)))
		switch errno {
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return 0, ErrAgain
		case 0:
			return int(r), nil
		default:
			return 0, errno
		}
	}
}
