package core

import (
	"cmp"
	"math"
	"sort"
)

// performGC is Jiffy's inner garbage collector (§3.3.4): after an update
// completes at a node it removes, from that node's revision list, every
// revision that can never be read again. A revision survives only if it is
// the newest one (the head of the chain being pruned) or it is the newest
// revision visible to some registered snapshot — everything else is snipped
// out mid-chain and reclaimed by Go's collector, exactly as the Java
// original delegates reclamation to the JVM.
func (m *Map[K, V]) performGC(head *revision[K, V]) {
	if head == nil {
		return
	}
	// horizon is read before the registry scan: any snapshot registration
	// this GC fails to observe publishes a version read after its push,
	// hence after this horizon read (the clock is machine-wide monotonic),
	// so it is >= horizon and revisions at or above the horizon's boundary
	// must all survive. Registrations the scan does observe either carry a
	// published version (protected by the snaps list) or are still pinned
	// at a floor — such an entry may yet publish any version >= its floor,
	// so everything at or above the floor's boundary is kept (pinFloor),
	// while history below the floor stays collectable.
	horizon := m.clock.Read()
	snaps, pinFloor := m.snaps.versions()
	pruneRevList(head, horizon, snaps, pinFloor)
}

// versions returns the registered snapshot versions in ascending order,
// plus the smallest pin floor among entries that are still pinned (whose
// eventual version is not yet published; math.MaxInt64 when none are),
// pruning closed entries on the way. The common cases (no snapshots, or a
// handful) dominate; the slice is freshly allocated per call.
func (r *snapRegistry) versions() (snaps []int64, pinFloor int64) {
	pinFloor = math.MaxInt64
	var prev *snapEntry
	cur := r.head.Load()
	for cur != nil {
		next := cur.next.Load()
		if cur.closed.Load() {
			if prev != nil {
				prev.next.CompareAndSwap(cur, next)
			} else {
				r.head.CompareAndSwap(cur, next)
			}
			cur = next
			continue
		}
		if v := cur.version.Load(); v < 0 {
			pinFloor = min(pinFloor, -v)
		} else {
			snaps = append(snaps, v)
		}
		prev = cur
		cur = next
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return snaps, pinFloor
}

// anySnapIn reports whether some registered snapshot version s satisfies
// lo <= s < hi (snaps ascending).
func anySnapIn(snaps []int64, lo, hi int64) bool {
	i := sort.Search(len(snaps), func(i int) bool { return snaps[i] >= lo })
	return i < len(snaps) && snaps[i] < hi
}

// anySnapBelow reports whether some registered snapshot version is < hi.
func anySnapBelow(snaps []int64, hi int64) bool {
	return len(snaps) > 0 && snaps[0] < hi
}

// pruneRevList prunes the chain hanging off head (which is itself always
// kept: it is the newest revision, or a pending one every future reader may
// need). A deeper revision r, with the nearest kept newer revision at
// version keptVer, is needed iff some registered snapshot s satisfies
// r.ver <= s < keptVer — then r is exactly what a reader at s retrieves —
// or keptVer > pinFloor: a pinned registration may publish any version v
// >= its floor, and any v in [max(r.ver, pinFloor), keptVer) retrieves r.
// Kept merge revisions recurse into their right branch (the only route to
// the merged-away node's history); pending batch revisions and everything
// below them are left untouched.
func pruneRevList[K cmp.Ordered, V any](head *revision[K, V], horizon int64, snaps []int64, pinFloor int64) {
	prevKept := head
	keptVer := head.ver()
	if keptVer < 0 {
		// head is still pending (a concurrent writer's revision batchGC
		// happened to load): its final version will be a clock read taken
		// in the future — at least |optimistic| but unbounded above — and
		// every reader whose version lands below that final value reads
		// the chain beneath it. Treating |optimistic| as the frontier
		// would let the tail-drop below free the newest committed
		// revision while a snapshot between |optimistic| and the eventual
		// final version still needs it. Treat the frontier as infinitely
		// new instead: the newest committed revision below survives
		// unconditionally and pruning continues normally beneath it.
		keptVer = math.MaxInt64
	}
	pruneBranches(head, keptVer, horizon, snaps, pinFloor)
	r := head.next.Load()
	for r != nil {
		if keptVer <= horizon && keptVer <= pinFloor && !anySnapBelow(snaps, keptVer) {
			// The kept frontier is at or below the horizon and no
			// registered snapshot or pinned registration can see past
			// it: drop the whole remaining tail.
			prevKept.next.Store(nil)
			return
		}
		v := r.ver()
		if v < 0 {
			// A pending revision mid-chain (a batch that has not
			// linearized yet): stop here, conservatively.
			prevKept.next.Store(r)
			return
		}
		// Keep r if (a) it is newer than the horizon or is the
		// horizon's boundary — an unobserved concurrent registration
		// (version >= horizon) may need exactly r; (b) it is the
		// boundary some registered snapshot reads; (c) a pinned
		// registration (eventual version >= its floor) may land in
		// [r.ver, keptVer); or (d) it is a merge revision (the only
		// route into the merged node's history) while anything below
		// the frontier is still live.
		needed := v > horizon ||
			(keptVer > horizon && v <= horizon) ||
			anySnapIn(snaps, v, keptVer) ||
			keptVer > pinFloor ||
			r.kind == revMerge
		if needed {
			prevKept.next.Store(r)
			if r.kind == revMerge {
				pruneBranches(r, v, horizon, snaps, pinFloor)
			}
			prevKept = r
			keptVer = v
		}
		r = r.next.Load()
	}
	prevKept.next.Store(nil)
}

// pruneBranches prunes the right branch of a kept merge revision: drops it
// entirely when no snapshot or pinned registration is old enough to look
// below the revision's own version, otherwise prunes it recursively (the
// branch head is the newest revision any such snapshot retrieves on that
// side).
func pruneBranches[K cmp.Ordered, V any](r *revision[K, V], ver int64, horizon int64, snaps []int64, pinFloor int64) {
	if r.kind != revMerge {
		return
	}
	right := r.rightNext.Load()
	if right == nil {
		return
	}
	if ver <= horizon && ver <= pinFloor && !anySnapBelow(snaps, ver) {
		r.rightNext.Store(nil)
		return
	}
	pruneRevList(right, horizon, snaps, pinFloor)
}
