package core

import (
	"cmp"
	"math"
	"runtime"
	"sort"
)

// performGC is Jiffy's inner garbage collector (§3.3.4): after an update
// completes at a node it removes, from that node's revision list, every
// revision that can never be read again. A revision survives only if it is
// the newest one (the head of the chain being pruned) or it is the newest
// revision visible to some registered snapshot — everything else is snipped
// out mid-chain. Unlike the Java original, which delegates all reclamation
// to the JVM, pruned revisions' payload buffers are retired into the
// epoch-gated recycler (recycle.go) so the next updates reuse them instead
// of allocating.
//
// Recycling is only sound if an unlink is definitive — a concurrent pruner
// of the same chain could otherwise re-store a pointer to a revision whose
// buffers were already handed out (and epoch advance would not save the
// reader that follows it). Two rules establish that:
//
//   - pruning a node's chain requires the node's gcBusy flag (a trylock; a
//     busy node simply skips this GC round — pruning is opportunistic), so
//     at most one pruner walks a node's chain at a time;
//   - retirement stops at the first revision marked shared (the pre-split
//     head both split revisions reference): below it the chain is reachable
//     from two nodes' chains, whose pruners hold different locks. Those
//     revisions — and non-regular revisions, whose payloads can be reached
//     through sibling or branch pointers — are left to Go's collector.
//
// Merge right branches are pruned under the merged-away node's own gcBusy
// (pruneBranches): the node object outlives the merge precisely so its flag
// keeps excluding the stale pruner of a pre-merge update.
func (m *Map[K, V]) performGC(nd *node[K, V], head *revision[K, V]) {
	if nd == nil || head == nil {
		return
	}
	m.pruneNodeChain(nd, head)
}

// pruneNodeChain is the exclusive per-node prune shared by performGC and
// batchGC. The gcWant handshake: demand is recorded before trying the
// lock, so if the holder is mid-prune (possibly descheduled), it re-prunes
// from the fresh head before quitting and a skipped GC never leaves the
// chain's growth behind. The order closes the lost-wakeup race — a failed
// CAS implies the holder releases afterwards, hence re-checks gcWant
// after this store.
func (m *Map[K, V]) pruneNodeChain(nd *node[K, V], head *revision[K, V]) {
	nd.gcWant.Store(true)
	for try := 0; !nd.gcBusy.CompareAndSwap(false, true); try++ {
		if try >= 2 {
			return // the holder will observe gcWant and catch up
		}
		// Yield before giving up: on an oversubscribed scheduler the
		// holder is likely descheduled mid-prune, and donating the
		// quantum lets it finish (and observe gcWant) instead of letting
		// the chain grow for a whole scheduling round.
		runtime.Gosched()
	}
	for attempt := 0; ; attempt++ {
		nd.gcWant.Store(false)
		// horizon is read before the registry scan: any snapshot
		// registration this GC fails to observe publishes a version read
		// after its push, hence after this horizon read (the clock is
		// machine-wide monotonic), so it is >= horizon and revisions at or
		// above the horizon's boundary must all survive. Registrations the
		// scan does observe either carry a published version (protected by
		// the snaps list) or are still pinned at a floor — such an entry
		// may yet publish any version >= its floor, so everything at or
		// above the floor's boundary is kept (pinFloor), while history
		// below the floor stays collectable.
		horizon := m.clock.Read()
		snaps, pinFloor := m.snaps.versions()
		var rs retireSet[K, V]
		if head.kind == revRightSplit {
			// The whole chain below this head is the pre-split node's
			// history (see the ownership barrier in pruneRevList, which
			// only guards *successor* right splits): walk it only under
			// the owner's lock too, or skip — nothing above the barrier
			// belongs to this node anyway.
			if owner := head.sibling.node; owner != nil && owner.gcBusy.CompareAndSwap(false, true) {
				m.pruneRevList(head, horizon, snaps, pinFloor, &rs)
				owner.gcBusy.Store(false)
			}
		} else {
			m.pruneRevList(head, horizon, snaps, pinFloor, &rs)
		}
		nd.gcBusy.Store(false)
		// Hand the claimed payloads to the recycler only now: the flag is
		// free, every unlink has committed, and the retire path's locks
		// and drains run outside the prune's critical section.
		m.rec.retireMany(rs.pls[:rs.n])
		// Catch up on growth that skipped past us while we held the flag
		// (bounded: each round starts from the then-current head).
		if attempt >= 8 || !nd.gcWant.Load() || nd.terminated.Load() {
			return
		}
		if !nd.gcBusy.CompareAndSwap(false, true) {
			return // a new holder took over; it saw (or will see) gcWant
		}
		if h := nd.head.Load(); h.kind != revTerminator {
			head = h
		} else {
			nd.gcBusy.Store(false)
			return
		}
	}
}

// versions returns the registered snapshot versions in ascending order,
// plus the smallest pin floor among entries that are still pinned (whose
// eventual version is not yet published; math.MaxInt64 when none are),
// pruning closed entries on the way. The common cases (no snapshots, or a
// handful) dominate; the slice is freshly allocated per call.
func (r *snapRegistry) versions() (snaps []int64, pinFloor int64) {
	pinFloor = math.MaxInt64
	var prev *snapEntry
	cur := r.head.Load()
	for cur != nil {
		next := cur.next.Load()
		if cur.closed.Load() {
			if prev != nil {
				prev.next.CompareAndSwap(cur, next)
			} else {
				r.head.CompareAndSwap(cur, next)
			}
			cur = next
			continue
		}
		if v := cur.version.Load(); v < 0 {
			pinFloor = min(pinFloor, -v)
		} else {
			snaps = append(snaps, v)
		}
		prev = cur
		cur = next
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return snaps, pinFloor
}

// anySnapIn reports whether some registered snapshot version s satisfies
// lo <= s < hi (snaps ascending).
func anySnapIn(snaps []int64, lo, hi int64) bool {
	i := searchKeys(snaps, lo)
	return i < len(snaps) && snaps[i] < hi
}

// anySnapBelow reports whether some registered snapshot version is < hi.
func anySnapBelow(snaps []int64, hi int64) bool {
	return len(snaps) > 0 && snaps[0] < hi
}

// retireSet collects, across one GC pass, the payloads of every revision
// the prune dropped. The collector is handed to the recycler only after
// the pass releases its gcBusy flags: first, every unlink store has then
// committed, so the epoch tag taken at hand-off covers every reader that
// could still reach the buffers; second, the retire path's stripe mutex
// and limbo drains stay out of the prune's critical section — a pruner
// descheduled while holding gcBusy would otherwise block a node's pruning
// for whole scheduling rounds while updates pile up revisions.
//
// Claiming (the reclaimed CAS) happens at drop-decision time; that only
// assigns ownership, the payload enters circulation at hand-off. Fixed
// capacity: prunes seldom drop more than a handful of revisions, and
// overflow merely leaves the excess to Go's GC.
type retireSet[K cmp.Ordered, V any] struct {
	pls [64]*payload[K, V]
	n   int
}

// add claims r for this collector if it is retire-eligible: a regular,
// unshared revision with a pooled payload, not yet claimed by anyone.
func (s *retireSet[K, V]) add(r *revision[K, V]) {
	if s == nil || s.n == len(s.pls) {
		return
	}
	if r.kind != revRegular || r.pl == nil || r.pl.class == 0 || r.shared() {
		return
	}
	if r.reclaimed.CompareAndSwap(false, true) {
		s.pls[s.n] = r.pl
		s.n++
	}
}

// pruneRevList prunes the chain hanging off head (which is itself always
// kept: it is the newest revision, or a pending one every future reader may
// need). A deeper revision r, with the nearest kept newer revision at
// version keptVer, is needed iff some registered snapshot s satisfies
// r.ver <= s < keptVer — then r is exactly what a reader at s retrieves —
// or keptVer > pinFloor: a pinned registration may publish any version v
// >= its floor, and any v in [max(r.ver, pinFloor), keptVer) retrieves r.
// Kept merge revisions recurse into their right branch (the only route to
// the merged-away node's history); pending batch revisions and everything
// below them are left untouched.
//
// rs, when non-nil, reports that the caller holds the chain's gcBusy flag:
// unlinks here are definitive and dropped revisions' payloads are claimed
// into rs for retirement once the caller releases the flag. Retirement is
// switched off past the first shared revision; see performGC.
func (m *Map[K, V]) pruneRevList(head *revision[K, V], horizon int64, snaps []int64, pinFloor int64, rs *retireSet[K, V]) {
	retireOK := rs != nil && !head.shared()
	prevKept := head
	keptVer := head.ver()
	if keptVer < 0 {
		// head is still pending (a concurrent writer's revision batchGC
		// happened to load): its final version will be a clock read taken
		// in the future — at least |optimistic| but unbounded above — and
		// every reader whose version lands below that final value reads
		// the chain beneath it. Treating |optimistic| as the frontier
		// would let the tail-drop below free the newest committed
		// revision while a snapshot between |optimistic| and the eventual
		// final version still needs it. Treat the frontier as infinitely
		// new instead: the newest committed revision below survives
		// unconditionally and pruning continues normally beneath it.
		keptVer = math.MaxInt64
	}
	m.pruneBranches(head, keptVer, horizon, snaps, pinFloor, rs)
	r := head.next.Load()
	for r != nil {
		if keptVer <= horizon && keptVer <= pinFloor && !anySnapBelow(snaps, keptVer) {
			// The kept frontier is at or below the horizon and no
			// registered snapshot or pinned registration can see past
			// it: drop the whole remaining tail.
			prevKept.next.Store(nil)
			if retireOK {
				m.retireTail(r, rs)
			}
			return
		}
		v := r.ver()
		if v < 0 {
			// A pending revision mid-chain (a batch that has not
			// linearized yet): stop here, conservatively.
			prevKept.next.Store(r)
			return
		}
		if r.kind == revRightSplit {
			// Ownership barrier: everything below a right split revision
			// is the pre-split node's history, pruned (and possibly
			// retired) under the *left* sibling's node lock. Walking on
			// under this node's lock — even without retiring — could
			// re-link a revision the owner's pruner just claimed. Keep
			// the revision, and continue below it only if the owner's
			// lock is free (the same trylock discipline pruneBranches
			// uses for merge branches); otherwise the owner catches up.
			prevKept.next.Store(r)
			owner := r.sibling.node
			if owner != nil && owner.gcBusy.CompareAndSwap(false, true) {
				m.pruneRevList(r, horizon, snaps, pinFloor, rs)
				owner.gcBusy.Store(false)
			}
			return
		}
		// Keep r if (a) it is newer than the horizon or is the
		// horizon's boundary — an unobserved concurrent registration
		// (version >= horizon) may need exactly r; (b) it is the
		// boundary some registered snapshot reads; (c) a pinned
		// registration (eventual version >= its floor) may land in
		// [r.ver, keptVer); or (d) it is a merge revision (the only
		// route into the merged node's history) while anything below
		// the frontier is still live.
		needed := v > horizon ||
			(keptVer > horizon && v <= horizon) ||
			anySnapIn(snaps, v, keptVer) ||
			keptVer > pinFloor ||
			r.kind == revMerge
		if needed {
			prevKept.next.Store(r)
			if r.kind == revMerge {
				m.pruneBranches(r, v, horizon, snaps, pinFloor, rs)
			}
			prevKept = r
			keptVer = v
		} else if retireOK {
			rs.add(r)
		}
		if r.shared() {
			// Whether r was kept or dropped, the chain below it is
			// reachable from a second node's chain: stop retiring.
			// (Revisions already claimed sit above r and stay eligible.)
			retireOK = false
		}
		r = r.next.Load()
	}
	prevKept.next.Store(nil)
}

// retireTail retires the recyclable prefix of a fully dropped tail: regular,
// unshared revisions up to the first shared or structural one (whose
// payloads stay reachable through sibling or branch pointers and are left
// to Go's GC).
func (m *Map[K, V]) retireTail(r *revision[K, V], rs *retireSet[K, V]) {
	for ; r != nil; r = r.next.Load() {
		if r.kind != revRegular || r.shared() {
			return
		}
		rs.add(r)
	}
}

// pruneBranches prunes the right branch of a kept merge revision: drops it
// entirely when no snapshot or pinned registration is old enough to look
// below the revision's own version, otherwise prunes it recursively (the
// branch head is the newest revision any such snapshot retrieves on that
// side). The branch is the merged-away node's old chain; its gcBusy flag —
// the node object outlives the merge for exactly this — serializes the
// recursion against the stale performGC of an update that committed there
// just before the merge. If the flag is busy the branch is skipped; a later
// GC returns.
func (m *Map[K, V]) pruneBranches(r *revision[K, V], ver int64, horizon int64, snaps []int64, pinFloor int64, rs *retireSet[K, V]) {
	if r.kind != revMerge {
		return
	}
	right := r.rightNext.Load()
	if right == nil {
		return
	}
	if ver <= horizon && ver <= pinFloor && !anySnapBelow(snaps, ver) {
		// Dropping the branch pointer makes the branch unreachable from
		// this chain, but scans routed through the merge terminator still
		// reach it via prevRev: no retirement, Go's GC owns it.
		r.rightNext.Store(nil)
		return
	}
	o := r.mt.node
	if !o.gcBusy.CompareAndSwap(false, true) {
		return
	}
	// The branch walk claims into the caller's collector; hand-off to the
	// recycler happens after every flag in the pass is released.
	m.pruneRevList(right, horizon, snaps, pinFloor, rs)
	o.gcBusy.Store(false)
}
