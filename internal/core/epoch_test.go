package core

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEpochPinBlocksAdvance checks the protocol invariant everything else
// rests on: a validated pin at epoch e blocks the global epoch below e+2
// until released, and releases it afterwards.
func TestEpochPinBlocksAdvance(t *testing.T) {
	slot, e := epochEnter()
	for i := 0; i < 5; i++ {
		if now := epochTryAdvance(); now > e+1 {
			epochExit(slot, e)
			t.Fatalf("epoch advanced to %d past pinned %d+1", now, e)
		}
	}
	epochExit(slot, e)
	for i := 0; i < 5 && epochClock.Load() < e+2; i++ {
		epochTryAdvance()
	}
	if now := epochClock.Load(); now < e+2 {
		t.Fatalf("epoch stuck at %d after exit (pinned at %d)", now, e)
	}
}

// TestEpochEnterRevalidates drives enter/exit from many goroutines while
// another thread advances aggressively; every counter must return to zero,
// proving no pin was stranded in a slot the advancer already passed.
func TestEpochEnterRevalidates(t *testing.T) {
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			epochTryAdvance()
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				slot, e := epochEnter()
				epochExit(slot, e)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	for i := range epochRing {
		for j := range epochRing[i].cnt {
			if n := epochRing[i].cnt[j].Load(); n != 0 {
				t.Fatalf("stripe %d slot %d left at %d", i, j, n)
			}
		}
	}
}

// TestEpochReclamationRace is the reclamation soundness test the recycler
// is judged by: readers pin an epoch, capture a revision-chain pointer,
// deliberately linger across scheduling points while writers prune, retire
// and recycle those revisions' buffers, then read the captured payloads.
// Under -race, any reuse of a buffer still reachable by a pinned reader is
// a detected write/read race; without the epoch protocol this fails
// immediately. The sortedness check additionally catches torn payloads on
// non-race runs.
func TestEpochReclamationRace(t *testing.T) {
	m := New[uint64, uint64]()
	const span = 64
	for i := uint64(0); i < span; i++ {
		m.Put(i, i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		seed := uint64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xfeed))
			for !stop.Load() {
				m.Put(uint64(rng.IntN(span)), rng.Uint64())
			}
		}()
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				slot, e := epochEnter()
				nd := m.findNodeForKey(uint64(rand.IntN(span)))
				if nd.kind == nodeTempSplit {
					epochExit(slot, e)
					continue
				}
				head := nd.head.Load()
				// Linger: pruners may now unlink and retire revisions in
				// this chain; the pin must keep their buffers readable.
				runtime.Gosched()
				for rev := head; rev != nil; rev = rev.next.Load() {
					keys := rev.keys
					for i := 1; i < len(keys); i++ {
						if keys[i-1] >= keys[i] {
							t.Errorf("torn payload: keys[%d]=%d >= keys[%d]=%d",
								i-1, keys[i-1], i, keys[i])
							stop.Store(true)
							break
						}
					}
				}
				epochExit(slot, e)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// The workload must actually have exercised recycling, or the test
	// proves nothing.
	if s := m.rec.stats(); s.PoolHits == 0 {
		t.Fatalf("no pool hits — recycling never engaged: %+v", s)
	}
	for i := uint64(0); i < span; i++ {
		if _, ok := m.Get(i); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

// TestRecyclingRoundTrip checks the steady-state promise: a warmed-up
// update loop is served from the pools (hits dominate misses) and the
// recycled-bytes counter moves.
func TestRecyclingRoundTrip(t *testing.T) {
	m := New[uint64, uint64]()
	for i := 0; i < 20_000; i++ {
		m.Put(uint64(i%512), uint64(i))
	}
	s := m.rec.stats()
	if s.PoolHits == 0 || s.RecycledBytes == 0 {
		t.Fatalf("recycler idle after 20k puts: %+v", s)
	}
	if s.PoolHits < s.PoolMisses {
		t.Fatalf("pool misses dominate at steady state: %+v", s)
	}
	if s.Epoch < 2 {
		t.Fatalf("epoch below initial value: %+v", s)
	}
}

// TestDisableRecyclingAblation: with recycling off, nothing is pooled and
// correctness is unaffected.
func TestDisableRecyclingAblation(t *testing.T) {
	m := New[uint64, uint64](Options[uint64]{DisableRecycling: true})
	for i := 0; i < 5000; i++ {
		m.Put(uint64(i%128), uint64(i))
	}
	if s := m.rec.stats(); s.PoolHits != 0 || s.RecycledBytes != 0 {
		t.Fatalf("recycler active despite DisableRecycling: %+v", s)
	}
	for i := uint64(0); i < 128; i++ {
		if _, ok := m.Get(i); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

// TestBuildSlotsEdgeSizes covers the hash-index builder's boundary sizes:
// empty, single entry, and exact powers of two (where the bucket count
// equals the entry count and every slot pair is in play).
func TestBuildSlotsEdgeSizes(t *testing.T) {
	m := testMap()
	for _, n := range []int{0, 1, 2, 4, 16, 64} {
		keys := make([]uint64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = uint64(i * 3)
			vals[i] = i
		}
		r := m.newRevision(revRegular, keys, vals)
		if n == 0 {
			if r.slots != nil {
				t.Fatalf("n=0: slots built for empty revision")
			}
		} else if len(r.slots) < 2 || len(r.slots)%2 != 0 {
			t.Fatalf("n=%d: slots length %d", n, len(r.slots))
		}
		for i, k := range keys {
			if v, ok := r.get(k, m.opts.Hash); !ok || v != vals[i] {
				t.Fatalf("n=%d: get(%d) = %d,%v", n, k, v, ok)
			}
		}
		for _, probe := range []uint64{1, 5, 1 << 40} {
			if _, ok := r.get(probe, m.opts.Hash); ok {
				t.Fatalf("n=%d: phantom at %d", n, probe)
			}
		}
	}
}

// TestBuildSlotsReuseClearsStale: a pooled payload's slots buffer carries
// the previous revision's index; buildSlots must fully clear the prefix it
// reuses or stale slot entries would alias wrong keys.
func TestBuildSlotsReuseClearsStale(t *testing.T) {
	m := testMap()
	// Big revision first, to leave a large dirty slots buffer in the pool.
	big := make([]uint64, 200)
	bigv := make([]int, 200)
	for i := range big {
		big[i], bigv[i] = uint64(i), i
	}
	r := m.newRevision(revRegular, big, bigv)
	pl := r.pl
	// Simulate recycling: rebuild a much smaller revision over the same
	// payload's slots buffer.
	small := m.rec.alloc(3)
	small.slots = pl.slots // adopt the dirty buffer
	copy(small.keys, []uint64{7, 9, 11})
	copy(small.vals, []int{1, 2, 3})
	if small.hashes != nil {
		for i, k := range small.keys {
			small.hashes[i] = m.opts.Hash(k)
		}
	}
	r2 := m.newRevisionPl(revRegular, small)
	for i, k := range []uint64{7, 9, 11} {
		if v, ok := r2.get(k, m.opts.Hash); !ok || v != i+1 {
			t.Fatalf("get(%d) = %d,%v after slots reuse", k, v, ok)
		}
	}
	for _, probe := range []uint64{0, 1, 2, 8, 100} {
		if _, ok := r2.get(probe, m.opts.Hash); ok {
			t.Fatalf("stale slot produced phantom at %d", probe)
		}
	}
}

// TestRevisionGetDoubleCollisionOverflow pins down the §3.3.5 fallback: when
// both slots of a bucket are taken by other keys, get must fall through to
// binary search and still find overflowed keys (and reject absent ones).
func TestRevisionGetDoubleCollisionOverflow(t *testing.T) {
	m := New[uint64, int](Options[uint64]{Hash: func(uint64) uint16 { return 3 }})
	// Five keys, one shared bucket: slots hold the first two, the other
	// three overflow.
	r := m.newRevision(revRegular, []uint64{10, 20, 30, 40, 50}, []int{1, 2, 3, 4, 5})
	for i, k := range []uint64{10, 20, 30, 40, 50} {
		if v, ok := r.get(k, m.opts.Hash); !ok || v != i+1 {
			t.Fatalf("get(%d) = %d,%v want %d,true", k, v, ok, i+1)
		}
	}
	for _, probe := range []uint64{5, 15, 25, 35, 45, 55} {
		if _, ok := r.get(probe, m.opts.Hash); ok {
			t.Fatalf("phantom at %d under full collision", probe)
		}
	}
}

// TestSearchKeysMatchesSpec: the branchless binary search agrees with the
// first-index-geq contract on boundaries.
func TestSearchKeysMatchesSpec(t *testing.T) {
	keys := []uint64{2, 4, 6, 8}
	cases := map[uint64]int{0: 0, 2: 0, 3: 1, 4: 1, 7: 3, 8: 3, 9: 4}
	for k, want := range cases {
		if got := searchKeys(keys, k); got != want {
			t.Fatalf("searchKeys(%v, %d) = %d want %d", keys, k, got, want)
		}
	}
	if got := searchKeys(nil, uint64(5)); got != 0 {
		t.Fatalf("searchKeys(nil) = %d", got)
	}
}
