package core

// helpSplit drives a node split to completion after the left split revision
// lsr has been installed at nd's head (Figure 3, steps c-f). It is
// idempotent and may be called by any number of helpers concurrently; on
// return the new node is installed (or was installed by someone else).
//
// ABA protection (§3.3.1): the temp-split node is retracted, never acted
// upon, once lsr.splitDone is observed. splitDone is set by the thread that
// installs the real node, strictly before any merge could remove that node
// again (merging requires the split revisions to be finalized first, which
// happens after splitDone). Because a stale temp-split node can only be
// re-inserted after the split completed, reading nd.next before splitDone
// guarantees we notice the staleness.
func (m *Map[K, V]) helpSplit(nd *node[K, V], lsr *revision[K, V]) {
	rsr := lsr.sibling
	splitKey := lsr.splitKey
	for {
		next := nd.next.Load()

		// Step f (or its observation): the real node is in place.
		if next != nil && next.kind == nodeNormal && next.key == splitKey && !next.terminated.Load() &&
			next.head.Load() == rsr {
			lsr.splitDone.Store(true)
			return
		}

		if next != nil && next.kind == nodeTempSplit && next.lrev == lsr {
			// Steps e-f: replace the temp-split node with the
			// real node.
			if lsr.splitDone.Load() {
				// Stale (zombie) temp-split node: retract it.
				nd.next.CompareAndSwap(next, next.next.Load())
				return
			}
			o := &node[K, V]{key: splitKey}
			o.head.Store(rsr)
			o.next.Store(next.next.Load())
			if nd.next.CompareAndSwap(next, o) {
				lsr.splitDone.Store(true)
				m.addIndexForNode(o)
				return
			}
			continue
		}

		if lsr.splitDone.Load() {
			return // split completed via some other path
		}

		if next != nil && next.kind == nodeTempSplit && next.lrev != lsr {
			// A foreign temp-split node at nd.next is necessarily a
			// zombie from an earlier, completed split (two live
			// splits of one node cannot coexist: ours holds the
			// pending head). Retract it rather than splice in front
			// of it; if it was in fact a live one racing us, its own
			// helpers re-insert it.
			nd.next.CompareAndSwap(next, next.next.Load())
			continue
		}

		if next != nil && next.terminated.Load() {
			// Unlink a merged-away successor before splicing.
			m.unlinkTerminated(nd, next)
			continue
		}

		// Steps c-d: install the temp-split node.
		tsn := &node[K, V]{kind: nodeTempSplit, key: splitKey, parent: nd, lrev: lsr}
		tsn.head.Store(rsr)
		tsn.next.Store(next)
		if nd.next.CompareAndSwap(next, tsn) {
			// Recover from the ABA race: if the split completed
			// while we were installing, our temp-split node is a
			// zombie and must be retracted (§3.3.1).
			if lsr.splitDone.Load() {
				nd.next.CompareAndSwap(tsn, tsn.next.Load())
				return
			}
		}
	}
}
