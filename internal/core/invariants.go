package core

import (
	"cmp"
	"fmt"
)

// CheckInvariants sweeps a quiescent Map and reports violations of the
// structural invariants the algorithm maintains (§3.1, §3.4). It must only
// be called while no operations are in flight; concurrent activity would
// legitimately expose transient states (pending revisions, temp-split
// nodes) that are errors only at quiescence. Intended for tests and the
// jiffycheck tool.
func CheckInvariants[K cmp.Ordered, V any](m *Map[K, V]) []error {
	slot, epoch := epochEnter()
	defer epochExit(slot, epoch)
	var errs []error
	first := true
	var prevKey K
	for nd := m.base; nd != nil; nd = nd.next.Load() {
		if nd.terminated.Load() {
			continue
		}
		if nd.kind == nodeTempSplit {
			errs = append(errs, fmt.Errorf("temp-split node (key %v) present at quiescence", nd.key))
			continue
		}
		if !nd.isBase {
			if !first && nd.key <= prevKey {
				errs = append(errs, fmt.Errorf("node keys not strictly increasing: %v after %v", nd.key, prevKey))
			}
			prevKey = nd.key
			first = false
		}
		head := nd.head.Load()
		if head.kind == revTerminator {
			errs = append(errs, fmt.Errorf("merge terminator at head of live node %v", nd.key))
			continue
		}
		if head.pending() {
			errs = append(errs, fmt.Errorf("pending revision at node %v at quiescence", nd.key))
		}
		next := nd.next.Load()
		for i, k := range head.keys {
			if !nd.isBase && k < nd.key {
				errs = append(errs, fmt.Errorf("key %v below its node key %v", k, nd.key))
			}
			if next != nil && k >= next.key {
				errs = append(errs, fmt.Errorf("key %v at or above successor node key %v", k, next.key))
			}
			if i > 0 && head.keys[i-1] >= k {
				errs = append(errs, fmt.Errorf("revision keys unsorted at %v (node %v)", k, nd.key))
			}
			if v, ok := head.get(k, m.opts.Hash); !ok {
				errs = append(errs, fmt.Errorf("hash index lost key %v (node %v)", k, nd.key))
			} else {
				_ = v
			}
		}
		if len(errs) > 32 {
			errs = append(errs, fmt.Errorf("too many violations; stopping sweep"))
			return errs
		}
	}
	return errs
}
