package core

import "cmp"

// Stats is a point-in-time structural summary of the index, gathered by an
// O(n) walk of the base list. It powers the §4.3 claims in EXPERIMENTS.md
// (revision sizes settling around 35 under write-only load vs ~130 under
// read-mostly load; revision lists staying 2-4 long) and is intended for
// diagnostics, not hot paths.
type Stats struct {
	Nodes           int     // base-level nodes (including the base node)
	Entries         int     // entries in head revisions (newest state size)
	Revisions       int     // revisions reachable from heads (all branches)
	MaxRevisionList int     // longest revision list observed
	AvgRevisionSize float64 // mean entries per head revision
	MaxRevisionSize int
	MinRevisionSize int
	PendingOps      int // head revisions awaiting a final version
	IndexLevels     int // height of the skip-list index lanes

	// Payload-recycling diagnostics (recycle.go / epoch.go): pool hit and
	// miss counts for payload allocations, cumulative buffer bytes
	// returned to the pools, and the current global reclamation epoch.
	PoolHits      uint64
	PoolMisses    uint64
	RecycledBytes uint64
	Epoch         uint64

	// Version-seek telemetry (seek.go): roughly one in 64 snapshot point
	// reads is sampled, recording how many chain hops its boundary seek
	// took. The mean sampled seek depth is SeekSteps / SeekSamples; with
	// the back-skip pointers it stays logarithmic in the chain length
	// (MaxRevisionList) instead of tracking it linearly.
	SeekSamples uint64
	SeekSteps   uint64
}

// Stats walks the structure concurrently with other operations; the numbers
// are a consistent-enough sample, not a snapshot.
func (m *Map[K, V]) Stats() Stats {
	var s Stats
	s.MinRevisionSize = int(^uint(0) >> 1)
	for nd := m.base; nd != nil; nd = nd.next.Load() {
		if nd.terminated.Load() || nd.kind == nodeTempSplit {
			continue
		}
		s.Nodes++
		head := nd.head.Load()
		if head.kind == revTerminator {
			continue
		}
		if head.pending() {
			s.PendingOps++
		}
		sz := head.size()
		s.Entries += sz
		if sz > s.MaxRevisionSize {
			s.MaxRevisionSize = sz
		}
		if sz < s.MinRevisionSize {
			s.MinRevisionSize = sz
		}
		depth := chainDepth(head, 1024)
		s.Revisions += depth
		if depth > s.MaxRevisionList {
			s.MaxRevisionList = depth
		}
	}
	if s.Nodes > 0 {
		s.AvgRevisionSize = float64(s.Entries) / float64(s.Nodes)
	}
	if s.MinRevisionSize == int(^uint(0)>>1) {
		s.MinRevisionSize = 0
	}
	for h := m.topIndex.Load(); h != nil; h = h.down {
		s.IndexLevels++
	}
	rs := m.rec.stats()
	s.PoolHits = rs.PoolHits
	s.PoolMisses = rs.PoolMisses
	s.RecycledBytes = rs.RecycledBytes
	s.Epoch = rs.Epoch
	s.SeekSamples = m.seekSamples.Load()
	s.SeekSteps = m.seekSteps.Load()
	return s
}

// chainDepth counts revisions on the (left) chain from r, bounded to keep
// the walk cheap under races. The bound is high enough that the
// snapshot-pinned deep chains the version-seek structure targets still
// show their real length in MaxRevisionList.
func chainDepth[K cmp.Ordered, V any](r *revision[K, V], limit int) int {
	n := 0
	for r != nil && n < limit {
		n++
		r = r.next.Load()
	}
	return n
}
