package core

import (
	"math/rand/v2"
	"sync/atomic"
)

// Epoch-based reclamation for revision payload buffers.
//
// The inner GC (gc.go) proves that a pruned revision can never be reached by
// a *future* reader: no registered snapshot needs it and it has been
// unlinked from its chain. That is enough for Go's collector, but not for
// buffer recycling — a reader that loaded the revision pointer just before
// the unlink may still be walking its keys/vals arrays. The epoch scheme
// below closes exactly that window: every operation that can touch payload
// buffers pins the current epoch in a sharded reader census for its
// duration, and a pruned revision's buffers only re-enter circulation once
// the global epoch has advanced two steps past the epoch in which they were
// retired — by which point every reader that could have seen the revision
// has provably exited.
//
// The census is process-global and striped (epochStripes cache-line-padded
// counter triples) so that pinning costs two uncontended atomic adds on a
// random stripe. One global domain, rather than one per Map, is load-bearing
// for cross-map batches: a helper pinned while operating on map A may be
// pulled into completing map B's part of a MultiBatchUpdate group, and its
// pin must protect the payloads it reads there too.
//
// Protocol invariants:
//
//   - A reader pins epoch e only after validating that the global epoch
//     still equals e (epochEnter re-checks after incrementing; on mismatch
//     it rolls back and retries). A validated pin in slot e%3 blocks the
//     advance e+1 -> e+2, which inspects exactly that slot. Hence while any
//     reader is pinned at e, the global epoch cannot exceed e+1.
//   - Buffers retired while the global epoch read r become reusable once
//     the epoch reaches r+2. Any reader that could have loaded the pruned
//     revision was pinned at some epoch p <= r (the epoch is monotonic and
//     the unlink precedes the retire), and p's pin blocks the epoch below
//     p+2 <= r+2 until that reader exits.
//   - Slot recycling (epoch e and e+3 share slot e%3) is safe because the
//     advance to e+2 verified slot e%3 empty, and no reader can pin e%3
//     again before the epoch reaches e+3.
//
// Epoch advancing is lazy and opportunistic: retiring threads attempt it
// when their limbo shard grows (recycler.retire). A failed attempt is free;
// a stalled advance (a long-running scan holding a pin) only delays reuse,
// never correctness — limbo buffers are ordinary heap objects the Go GC
// can reclaim if the process drops the map.

// epochStripes is the number of census shards; a power of two comfortably
// above typical core counts so concurrent pins rarely collide.
const epochStripes = 32

// epochStripe is one shard of the reader census: a counter per epoch
// residue class, padded so neighboring stripes do not share a cache line.
type epochStripe struct {
	cnt [3]atomic.Int64
	_   [40]byte
}

var (
	// epochClock is the global reclamation epoch. It starts at 2 so the
	// r+2 reuse arithmetic never wraps below zero.
	epochClock atomic.Uint64
	epochRing  [epochStripes]epochStripe
)

func init() { epochClock.Store(2) }

// epochEnter pins the current epoch and returns the stripe and epoch to
// pass to epochExit. It never blocks: the retry loop only runs when the
// epoch advances concurrently, which the pin itself then prevents.
func epochEnter() (slot int, e uint64) {
	slot, e, _ = epochEnterRand()
	return slot, e
}

// epochEnterRand is epochEnter, additionally handing back the full random
// draw the stripe choice consumed only five bits of. Hot read paths reuse
// the spare bits for their sampling decisions (noteRead, noteSeek) instead
// of drawing a second random number per operation.
func epochEnterRand() (slot int, e uint64, rnd uint64) {
	rnd = rand.Uint64()
	slot = int(rnd & (epochStripes - 1))
	c := &epochRing[slot]
	for {
		e = epochClock.Load()
		c.cnt[e%3].Add(1)
		if epochClock.Load() == e {
			return slot, e, rnd
		}
		// The epoch moved between the load and the increment: the pin
		// may be in a slot the advancer already inspected. Roll back
		// and pin the new epoch instead.
		c.cnt[e%3].Add(-1)
	}
}

// epochExit releases a pin taken by epochEnter.
func epochExit(slot int, e uint64) {
	epochRing[slot].cnt[e%3].Add(-1)
}

// epochTryAdvance advances the global epoch by one step if no reader is
// still pinned in the previous epoch, and returns the (possibly unchanged)
// current epoch. Safe to call from any thread at any time.
func epochTryAdvance() uint64 {
	e := epochClock.Load()
	prev := (e - 1) % 3
	for i := range epochRing {
		if epochRing[i].cnt[prev].Load() != 0 {
			return e
		}
	}
	epochClock.CompareAndSwap(e, e+1)
	return epochClock.Load()
}
