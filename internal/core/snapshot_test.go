package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/tsc"
)

// TestSnapshotHistoryDeterministic replays a random operation sequence on a
// manual clock, recording the reference state at every tick, then verifies
// that a snapshot taken at each tick reproduces exactly the state the
// reference had then — the multiversion store as a time machine.
func TestSnapshotHistoryDeterministic(t *testing.T) {
	clk := tsc.NewManual(10)
	m := New[uint64, int](Options[uint64]{Clock: clk, FixedRevisionSize: 4})
	rng := rand.New(rand.NewPCG(7, 9))

	type stateSnap struct {
		snap *Snapshot[uint64, int]
		ref  map[uint64]int
	}
	var snaps []stateSnap
	ref := map[uint64]int{}

	for tick := 0; tick < 60; tick++ {
		// A few operations per tick.
		for i := 0; i < 5; i++ {
			k := uint64(rng.IntN(30))
			if rng.IntN(3) == 0 {
				m.Remove(k)
				delete(ref, k)
			} else {
				v := tick*10 + i
				m.Put(k, v)
				ref[k] = v
			}
		}
		// Snapshot the current state; it must stay frozen forever.
		cp := make(map[uint64]int, len(ref))
		for k, v := range ref {
			cp[k] = v
		}
		snaps = append(snaps, stateSnap{m.Snapshot(), cp})
		clk.Advance(100)
	}

	// All snapshots must still read their recorded state, despite all the
	// later updates (their registrations block the GC from pruning).
	for i, s := range snaps {
		for k := uint64(0); k < 30; k++ {
			want, wantOK := s.ref[k]
			got, ok := s.snap.Get(k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("snapshot %d key %d: got %d,%v want %d,%v", i, k, got, ok, want, wantOK)
			}
		}
		n := 0
		s.snap.All(func(k uint64, v int) bool {
			if s.ref[k] != v {
				t.Fatalf("snapshot %d scan: key %d = %d want %d", i, k, v, s.ref[k])
			}
			n++
			return true
		})
		if n != len(s.ref) {
			t.Fatalf("snapshot %d scan saw %d entries, want %d", i, n, len(s.ref))
		}
	}
	for _, s := range snaps {
		s.snap.Close()
	}
}

// TestSnapshotAfterBatchSeesAllOrNothing: snapshots interleaved with batch
// updates on a manual clock observe batches atomically at exact versions.
func TestSnapshotAfterBatchSeesAllOrNothing(t *testing.T) {
	clk := tsc.NewManual(10)
	m := New[uint64, int](Options[uint64]{Clock: clk, FixedRevisionSize: 3})
	pre := m.Snapshot()
	defer pre.Close()

	b := NewBatch[uint64, int](10)
	for i := uint64(0); i < 10; i++ {
		b.Put(i*7, int(i))
	}
	m.BatchUpdate(b)
	post := m.Snapshot()
	defer post.Close()

	for i := uint64(0); i < 10; i++ {
		if _, ok := pre.Get(i * 7); ok {
			t.Fatalf("pre-batch snapshot sees key %d", i*7)
		}
		if v, ok := post.Get(i * 7); !ok || v != int(i) {
			t.Fatalf("post-batch snapshot missing key %d: %d,%v", i*7, v, ok)
		}
	}
}

// TestClosedSnapshotReleasesGC: after the only snapshot closes, subsequent
// updates prune history down to the newest revisions again.
func TestClosedSnapshotReleasesGC(t *testing.T) {
	m := testMap()
	s := m.Snapshot()
	for i := 0; i < 50; i++ {
		m.Put(9, i)
	}
	s.Close()
	for i := 0; i < 50; i++ {
		m.Put(9, 100+i)
	}
	if st := m.Stats(); st.MaxRevisionList > 3 {
		t.Fatalf("history not released after Close: list length %d", st.MaxRevisionList)
	}
}

// TestManySnapshotsMinVersionWins: the GC must respect the OLDEST open
// snapshot, not the newest.
func TestManySnapshotsMinVersionWins(t *testing.T) {
	clk := tsc.NewManual(10)
	m := New[uint64, int](Options[uint64]{Clock: clk})
	m.Put(1, 100)
	old := m.Snapshot()
	defer old.Close()
	clk.Advance(50)
	for i := 0; i < 20; i++ {
		m.Put(1, 200+i)
		clk.Advance(10)
		s := m.Snapshot()
		s.Close()
	}
	if v, ok := old.Get(1); !ok || v != 100 {
		t.Fatalf("oldest snapshot lost its value: %d,%v", v, ok)
	}
}

// TestSnapshotRefreshReleasesHistory: refreshing moves the pin forward.
func TestSnapshotRefreshReleasesHistory(t *testing.T) {
	m := testMap()
	s := m.Snapshot()
	defer s.Close()
	for i := 0; i < 100; i++ {
		m.Put(5, i)
	}
	s.Refresh()
	for i := 0; i < 100; i++ {
		m.Put(5, 1000+i)
	}
	if st := m.Stats(); st.MaxRevisionList > 3 {
		t.Fatalf("refresh did not release history: list length %d", st.MaxRevisionList)
	}
	if v, _ := s.Get(5); v < 99 {
		t.Fatalf("refreshed snapshot too old: %d", v)
	}
}

// TestSnapshotVersionsMonotonic: snapshot versions never decrease.
func TestSnapshotVersionsMonotonic(t *testing.T) {
	m := testMap()
	prev := int64(0)
	for i := 0; i < 100; i++ {
		s := m.Snapshot()
		if s.Version() < prev {
			t.Fatalf("snapshot version went backwards: %d after %d", s.Version(), prev)
		}
		prev = s.Version()
		s.Close()
	}
}

// TestRegistryPrunesClosedEntries: closed snapshot entries are physically
// unlinked by min-version scans.
func TestRegistryPrunesClosedEntries(t *testing.T) {
	m := testMap()
	for i := 0; i < 100; i++ {
		s := m.Snapshot()
		s.Close()
	}
	m.Put(1, 1) // triggers a minVersion scan in GC
	n := 0
	for e := m.snaps.head.Load(); e != nil; e = e.next.Load() {
		n++
	}
	if n > 2 {
		t.Fatalf("registry kept %d closed entries", n)
	}
}
