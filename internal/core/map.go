package core

import (
	"cmp"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/internal/tsc"
)

// Map is a Jiffy index: a linearizable, lock-free ordered key-value map
// with atomic batch updates (BatchUpdate) and O(1) consistent snapshots
// (Snapshot). All methods are safe for concurrent use by any number of
// goroutines. Create one with New.
type Map[K cmp.Ordered, V any] struct {
	opts  Options[K]
	clock tsc.Clock

	// seq is a process-wide unique creation sequence number. It gives
	// cross-map batches (MultiBatchUpdate) a canonical map order, which
	// keeps concurrent groups' help chains acyclic (see batchGroup).
	seq uint64

	// base is the first node of the lowest-level list. It is never
	// merged away or removed and manages (-inf, successor).
	base *node[K, V]

	// topIndex is the head tower of the probabilistic index lanes. The
	// lanes are an accelerator over the base list, which remains the
	// ground truth; a lost index insertion is harmless.
	topIndex atomic.Pointer[indexHead[K, V]]

	// rec is the payload allocator: size-classed free lists fed by the
	// epoch-gated retirement of pruned revisions (recycle.go).
	rec *recycler[K, V]

	// fragPool recycles the per-scan fragment scratch (scan.go); iterPool
	// recycles streaming-iterator states (iter.go).
	fragPool sync.Pool
	iterPool sync.Pool

	// seekSamples/seekSteps are the sampled version-seek telemetry
	// (seek.go): roughly one in 64 snapshot point reads records how many
	// chain hops its boundary seek took. Stats() exposes both.
	seekSamples atomic.Uint64
	seekSteps   atomic.Uint64

	snaps snapRegistry
}

const defaultMaxLevel = 24

// mapSeq issues Map.seq values.
var mapSeq atomic.Uint64

// indexItem is an element of one index lane, pointing at a base-level node.
type indexItem[K cmp.Ordered, V any] struct {
	n     *node[K, V]
	down  *indexItem[K, V]
	right atomic.Pointer[indexItem[K, V]]
}

// indexHead anchors one index lane; head towers are stacked via down.
type indexHead[K cmp.Ordered, V any] struct {
	right atomic.Pointer[indexItem[K, V]]
	down  *indexHead[K, V]
	level int
}

// New returns an empty Map configured by opts (pass no argument for paper
// defaults).
func New[K cmp.Ordered, V any](opts ...Options[K]) *Map[K, V] {
	var o Options[K]
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()
	m := &Map[K, V]{opts: o, clock: o.Clock, seq: mapSeq.Add(1)}
	m.rec = newRecycler[K, V](o.DisableRecycling, !o.DisableHashIndex)
	m.base = &node[K, V]{isBase: true}
	empty := m.newRevision(revRegular, nil, nil)
	empty.version.Store(1)
	m.base.head.Store(empty)
	m.topIndex.Store(&indexHead[K, V]{level: 1})
	return m
}

// Clock exposes the Map's version-number source (snapshots and tests need
// it; see Snapshot).
func (m *Map[K, V]) Clock() tsc.Clock { return m.clock }

// indexSeek descends the index lanes and returns a base-level node from
// which a rightward walk reaches key's covering node: the rightmost indexed
// node with node.key <= key (strict: < key), or the base node. Index items
// pointing at terminated nodes are unlinked on the way down.
func (m *Map[K, V]) indexSeek(key K, strict bool) *node[K, V] {
	h := m.topIndex.Load()
	var item *indexItem[K, V] // current left neighbor; nil while on the head tower
	for {
		var right *indexItem[K, V]
		if item != nil {
			right = item.right.Load()
		} else {
			right = h.right.Load()
		}
		for right != nil {
			n := right.n
			if n.terminated.Load() {
				after := right.right.Load()
				if item != nil {
					item.right.CompareAndSwap(right, after)
					right = item.right.Load()
				} else {
					h.right.CompareAndSwap(right, after)
					right = h.right.Load()
				}
				continue
			}
			if strict {
				if n.key >= key {
					break
				}
			} else if n.key > key {
				break
			}
			item = right
			right = item.right.Load()
		}
		if item != nil {
			if item.down == nil {
				return item.n
			}
			item = item.down
		} else {
			if h.down == nil {
				return m.base
			}
			h = h.down
		}
	}
}

// findNodeForKey returns the base-level node whose range covers key: the
// node n with n.key <= key and no successor n' with n'.key <= key. The
// returned node may be a temp-split node (callers help and retry). While
// traversing, terminated nodes are physically unlinked (§3.3.2).
func (m *Map[K, V]) findNodeForKey(key K) *node[K, V] {
	cur := m.indexSeek(key, false)
	for {
		next := cur.next.Load()
		if next == nil || !next.covers(key) {
			return cur
		}
		if next.terminated.Load() {
			m.unlinkTerminated(cur, next)
			continue
		}
		cur = next
	}
}

// findPredOf returns the base-level node with the greatest key strictly
// below key (the base node if none). The merge path uses it to locate the
// node directly preceding the node under merge (§3.3.1: merges happen
// towards lower keys). The result may be a temp-split node.
func (m *Map[K, V]) findPredOf(key K) *node[K, V] {
	cur := m.indexSeek(key, true)
	for {
		next := cur.next.Load()
		if next == nil || next.key >= key {
			return cur
		}
		if next.terminated.Load() {
			m.unlinkTerminated(cur, next)
			continue
		}
		cur = next
	}
}

// unlinkTerminated removes a terminated node that directly follows pred.
// On CAS failure somebody else repaired the list; callers simply re-read.
func (m *Map[K, V]) unlinkTerminated(pred, dead *node[K, V]) {
	after := dead.next.Load()
	pred.next.CompareAndSwap(dead, after)
}

// lanePos addresses one position in an index lane: either a head tower slot
// or an item, whichever the descent last passed at that level.
type lanePos[K cmp.Ordered, V any] struct {
	h  *indexHead[K, V]
	it *indexItem[K, V]
}

func (p lanePos[K, V]) right() *indexItem[K, V] {
	if p.it != nil {
		return p.it.right.Load()
	}
	return p.h.right.Load()
}

func (p lanePos[K, V]) casRight(old, nu *indexItem[K, V]) bool {
	if p.it != nil {
		return p.it.right.CompareAndSwap(old, nu)
	}
	return p.h.right.CompareAndSwap(old, nu)
}

// walkLane advances a lane position to the rightmost point with key < target,
// unlinking items whose nodes were merged away.
func walkLane[K cmp.Ordered, V any](p lanePos[K, V], key K) lanePos[K, V] {
	for {
		r := p.right()
		if r == nil {
			return p
		}
		if r.n.terminated.Load() {
			p.casRight(r, r.right.Load())
			continue
		}
		if r.n.key >= key {
			return p
		}
		p = lanePos[K, V]{it: r}
	}
}

// addIndexForNode links index items for a freshly installed node at a
// random level (§3.1: index nodes are inserted probabilistically, p = 1/2
// per level as in ConcurrentSkipListMap), descending once from the top to
// collect per-level predecessors. Index maintenance is best-effort: a
// failed CAS leaves the node reachable via the base list, which is the
// ground truth.
func (m *Map[K, V]) addIndexForNode(n *node[K, V]) {
	level := 1
	for level < defaultMaxLevel && rand.Uint64()&1 == 0 {
		level++
	}
	if level == 1 {
		return // present on the base list only
	}

	// Grow the head tower if needed.
	top := m.topIndex.Load()
	for top.level < level {
		nh := &indexHead[K, V]{down: top, level: top.level + 1}
		if m.topIndex.CompareAndSwap(top, nh) {
			top = nh
		} else {
			top = m.topIndex.Load()
		}
	}

	// Collect predecessors at levels [2, level] in one descent.
	preds := make([]lanePos[K, V], level+1)
	h := m.topIndex.Load()
	pos := lanePos[K, V]{h: h}
	lvl := h.level
	for {
		pos = walkLane(pos, n.key)
		if lvl <= level {
			preds[lvl] = pos
		}
		if lvl == 2 {
			break
		}
		if pos.it != nil {
			pos = lanePos[K, V]{it: pos.it.down}
		} else {
			pos = lanePos[K, V]{h: pos.h.down}
		}
		lvl--
	}

	// Link bottom-up from the recorded positions.
	var down *indexItem[K, V]
	for l := 2; l <= level; l++ {
		it := &indexItem[K, V]{n: n, down: down}
		p := preds[l]
		ok := false
		for attempt := 0; attempt < 4; attempt++ {
			if n.terminated.Load() {
				return
			}
			p = walkLane(p, n.key)
			r := p.right()
			if r != nil && r.n == n {
				ok = true
				break
			}
			it.right.Store(r)
			if p.casRight(r, it) {
				ok = true
				break
			}
		}
		if !ok {
			return // stop above a failed level; harmless
		}
		down = it
	}
}
