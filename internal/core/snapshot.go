package core

import (
	"cmp"
	"sync/atomic"
)

// snapEntry is one registered reader on the lock-free snapshot list
// (§3.3.4). It is pushed *pinned* — carrying the negation of a pin floor,
// a clock value read before the push — and its real version is published
// afterwards, so the inner garbage collector can never free a revision
// the reader might still need. The version a pinned entry eventually
// publishes is a clock read taken after the push, hence >= the floor; a
// GC therefore either observes the pin (and treats the entry as a reader
// at every version >= the floor, keeping the floor's boundary revision
// and everything newer while staying free to prune below the floor — so
// pins cannot starve pruning), observes the published version (and keeps
// its boundary), or misses the entry entirely — then the push, and hence
// the clock read published into the entry, happened after that GC's
// horizon read, so the published version is >= its horizon and the
// horizon rule keeps every revision the reader can reach.
type snapEntry struct {
	version atomic.Int64
	closed  atomic.Bool
	next    atomic.Pointer[snapEntry]
}

// snapRegistry is the shared snapshot list. Entries are pushed at the head;
// closed entries are physically unlinked during min-version scans. Because
// insertions happen only at the head, unlinking a closed entry mid-list can
// at worst transiently resurrect another closed entry, never skip an open
// one.
type snapRegistry struct {
	head atomic.Pointer[snapEntry]
}

// registerPinned pushes a new entry pinned at floor, which the caller
// must have read from the map's clock before calling (argument evaluation
// order suffices): the publish that follows reads the clock after the
// push and so can never fall below the floor. Pins are stored negated —
// clock values are always positive, so the sign distinguishes a pin from
// a published version. The caller must publish a real version promptly
// (Snapshot.publish): while the pin is visible the GC keeps all history
// at or above the floor's boundary.
func (r *snapRegistry) registerPinned(floor int64) *snapEntry {
	e := &snapEntry{}
	e.version.Store(-floor)
	for {
		h := r.head.Load()
		e.next.Store(h)
		if r.head.CompareAndSwap(h, e) {
			return e
		}
	}
}

// Snapshot is a consistent, read-only view of the Map as of the moment
// Snapshot() was called. Creating one is an O(1) operation (a clock read
// plus a list push) that never blocks or slows down concurrent updates.
//
// A Snapshot pins multiversion history: the internal garbage collector
// cannot prune revisions at or above the oldest live snapshot version, so
// long-lived snapshots should be Refreshed periodically or Closed when no
// longer needed (§3.3.4).
type Snapshot[K cmp.Ordered, V any] struct {
	m   *Map[K, V]
	e   *snapEntry
	ver int64
}

// pinnedSnapshot registers a snapshot whose version is not chosen yet; the
// caller must publish one.
func (m *Map[K, V]) pinnedSnapshot() *Snapshot[K, V] {
	return &Snapshot[K, V]{m: m, e: m.snaps.registerPinned(m.clock.Read())}
}

// publish fixes the snapshot's version, collapsing a pinned registration
// to an ordinary reader at v (releasing, on refresh, the history below
// the previous version). The clock read supplying v must happen after the
// entry was (re-)pinned — that ordering is what makes the protocol immune
// to the GC: see the snapEntry comment.
func (s *Snapshot[K, V]) publish(v int64) {
	s.ver = v
	s.e.version.Store(v)
}

// Snapshot registers and returns a new consistent snapshot of the map.
func (m *Map[K, V]) Snapshot() *Snapshot[K, V] {
	s := m.pinnedSnapshot()
	s.publish(m.clock.Read())
	return s
}

// Version returns the snapshot's version number.
func (s *Snapshot[K, V]) Version() int64 { return s.ver }

// Get returns the value key had at the snapshot's version.
func (s *Snapshot[K, V]) Get(key K) (V, bool) {
	return s.m.get(key, s.ver)
}

// Range calls fn for every entry with lo <= key < hi at the snapshot's
// version, in ascending key order, until fn returns false.
func (s *Snapshot[K, V]) Range(lo, hi K, fn func(key K, val V) bool) {
	s.m.scan(&lo, &hi, s.ver, fn)
}

// RangeFrom calls fn for every entry with key >= lo, ascending, until fn
// returns false. Use it for count-limited scans (the paper's "scan N
// subsequent entries" workloads).
func (s *Snapshot[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	s.m.scan(&lo, nil, s.ver, fn)
}

// All calls fn for every entry in the snapshot, ascending.
func (s *Snapshot[K, V]) All(fn func(key K, val V) bool) {
	s.m.scan(nil, nil, s.ver, fn)
}

// Refresh advances the snapshot to the present, releasing the history
// pinned by the old version. A refreshed snapshot observes every operation
// that completed before Refresh returned. Refresh is cheap (two atomic
// stores and two clock reads — the re-pin floor and the published version
// are deliberately distinct reads; no CAS, §3.3.4) but must not race with
// concurrent use of the same Snapshot value.
func (s *Snapshot[K, V]) Refresh() {
	// Re-pin before choosing the new version. Storing a clock read
	// directly would race the GC: between the read (yielding newVer) and
	// the store, a writer can commit w then x with oldVer < w <= newVer <
	// x, and a GC still seeing oldVer with a horizon >= x prunes w — the
	// revision this snapshot needs at newVer. While pinned at the floor
	// read below, the GC keeps everything at or above the floor's
	// boundary (and newVer >= floor); a GC that saw oldVer instead
	// scanned before the re-pin, hence read its horizon before the
	// publish's clock read: newVer >= horizon, and the horizon rule keeps
	// everything newVer reads.
	s.e.version.Store(-s.m.clock.Read())
	s.publish(s.m.clock.Read())
}

// Close unregisters the snapshot, letting the garbage collector reclaim the
// history it pinned. Using a closed snapshot is a bug: the revisions it
// would read may already be gone.
func (s *Snapshot[K, V]) Close() {
	s.e.closed.Store(true)
}

// MultiSnapshot registers one snapshot per map, all frozen at a single
// version cut of the shared clock, so the set forms one consistent view
// spanning every map: a cross-map batch (MultiBatchUpdate) is either
// visible in all of the returned snapshots or in none. All maps must share
// the same Clock (as the shards of a sharded frontend do); MultiSnapshot
// panics otherwise. Snapshots of the same map obtained any other way are
// not aligned with the set.
//
// The protocol pins first and cuts second: every entry is pushed pinned
// at a clock floor — while a pin is visible, that map's GC keeps all
// history at or above the floor's boundary — and only then is the cut
// read and published to all entries (so cut >= every floor). Reading the
// cut before the entries pin would let a concurrent GC prune a revision
// the cut is entitled to read: a writer committing w then x with
// v < w <= cut < x, against a registry still showing only an older
// version v, lets a GC with horizon >= x drop w.
func MultiSnapshot[K cmp.Ordered, V any](ms ...*Map[K, V]) []*Snapshot[K, V] {
	if len(ms) == 0 {
		return nil
	}
	clock := ms[0].clock
	for _, m := range ms {
		if m.clock != clock {
			panic("core: MultiSnapshot requires all maps to share one Clock")
		}
	}
	subs := make([]*Snapshot[K, V], len(ms))
	for i, m := range ms {
		subs[i] = m.pinnedSnapshot()
	}
	cut := clock.Read()
	for _, s := range subs {
		s.publish(cut)
	}
	return subs
}

// MultiRefresh advances a set of snapshots taken by MultiSnapshot to a
// fresh common cut of their shared clock, releasing the history pinned by
// the old one. It follows the same pin-then-cut protocol as MultiSnapshot
// and the same rules as Refresh: it must not race with concurrent use of
// the same snapshots, and it panics if the snapshots' maps do not share
// one Clock.
func MultiRefresh[K cmp.Ordered, V any](snaps ...*Snapshot[K, V]) {
	if len(snaps) == 0 {
		return
	}
	clock := snaps[0].m.clock
	for _, s := range snaps {
		if s.m.clock != clock {
			panic("core: MultiRefresh requires all snapshots to share one Clock")
		}
	}
	floor := -clock.Read() // one floor for all: read before any re-pin store
	for _, s := range snaps {
		s.e.version.Store(floor)
	}
	cut := clock.Read()
	for _, s := range snaps {
		s.publish(cut)
	}
}
