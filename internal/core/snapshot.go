package core

import (
	"cmp"
	"math"
	"sync/atomic"

	"repro/internal/tsc"
)

// snapEntry is one registered reader on the lock-free snapshot list
// (§3.3.4). version is published with a +inf placeholder and immediately
// refreshed after registration, so the inner garbage collector can never
// free a revision the reader might still need.
type snapEntry struct {
	version atomic.Int64
	closed  atomic.Bool
	next    atomic.Pointer[snapEntry]
}

// snapRegistry is the shared snapshot list. Entries are pushed at the head;
// closed entries are physically unlinked during min-version scans. Because
// insertions happen only at the head, unlinking a closed entry mid-list can
// at worst transiently resurrect another closed entry, never skip an open
// one.
type snapRegistry struct {
	head atomic.Pointer[snapEntry]
}

func (r *snapRegistry) register(clock tsc.Clock) *snapEntry {
	e := &snapEntry{}
	e.version.Store(math.MaxInt64) // placeholder: constrains nothing yet
	for {
		h := r.head.Load()
		e.next.Store(h)
		if r.head.CompareAndSwap(h, e) {
			break
		}
	}
	// Refresh immediately after registering (§3.3.4): any GC that ran
	// before this store used a min version <= the value stored here, so
	// every revision this snapshot can need survives.
	e.version.Store(clock.Read())
	return e
}

// Snapshot is a consistent, read-only view of the Map as of the moment
// Snapshot() was called. Creating one is an O(1) operation (a clock read
// plus a list push) that never blocks or slows down concurrent updates.
//
// A Snapshot pins multiversion history: the internal garbage collector
// cannot prune revisions at or above the oldest live snapshot version, so
// long-lived snapshots should be Refreshed periodically or Closed when no
// longer needed (§3.3.4).
type Snapshot[K cmp.Ordered, V any] struct {
	m   *Map[K, V]
	e   *snapEntry
	ver int64
}

// Snapshot registers and returns a new consistent snapshot of the map.
func (m *Map[K, V]) Snapshot() *Snapshot[K, V] {
	e := m.snaps.register(m.clock)
	return &Snapshot[K, V]{m: m, e: e, ver: e.version.Load()}
}

// Version returns the snapshot's version number.
func (s *Snapshot[K, V]) Version() int64 { return s.ver }

// Get returns the value key had at the snapshot's version.
func (s *Snapshot[K, V]) Get(key K) (V, bool) {
	return s.m.get(key, s.ver)
}

// Range calls fn for every entry with lo <= key < hi at the snapshot's
// version, in ascending key order, until fn returns false.
func (s *Snapshot[K, V]) Range(lo, hi K, fn func(key K, val V) bool) {
	s.m.scan(&lo, &hi, s.ver, fn)
}

// RangeFrom calls fn for every entry with key >= lo, ascending, until fn
// returns false. Use it for count-limited scans (the paper's "scan N
// subsequent entries" workloads).
func (s *Snapshot[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	s.m.scan(&lo, nil, s.ver, fn)
}

// All calls fn for every entry in the snapshot, ascending.
func (s *Snapshot[K, V]) All(fn func(key K, val V) bool) {
	s.m.scan(nil, nil, s.ver, fn)
}

// Refresh advances the snapshot to the present, releasing the history
// pinned by the old version. A refreshed snapshot observes every operation
// that completed before Refresh returned. Refresh is cheap (one clock read
// and one atomic store; no CAS, §3.3.4) but must not race with concurrent
// use of the same Snapshot value.
func (s *Snapshot[K, V]) Refresh() {
	s.RefreshTo(s.m.clock.Read())
}

// RefreshTo advances the snapshot to version v, releasing the history
// pinned below it; it is a no-op unless v is ahead of the snapshot's
// current version. Like Refresh, it must not race with concurrent use of
// the same Snapshot value. Sharded frontends use it to align a set of
// per-shard snapshots on one global cut: register a snapshot per shard,
// read the shared clock once, then RefreshTo that value on every one — the
// per-shard registrations pin history from their own (earlier) versions, so
// the state at the cut can never be collected out from under the reader.
func (s *Snapshot[K, V]) RefreshTo(v int64) {
	if v > s.ver {
		s.ver = v
		s.e.version.Store(v)
	}
}

// Close unregisters the snapshot, letting the garbage collector reclaim the
// history it pinned. Using a closed snapshot is a bug: the revisions it
// would read may already be gone.
func (s *Snapshot[K, V]) Close() {
	s.e.closed.Store(true)
}
