package core

import (
	"cmp"
	"math/bits"
	"math/rand/v2"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// payload is the fused allocation backing one revision: the keys, values,
// hashes and hash-index slots arrays are carved from a single size-classed
// unit that travels through the recycler as one object. Fusing them turns
// the 3-4 per-update heap allocations of the old cloneAndPut/cloneAndRemove
// path into at most one pool miss, and gives retirement a single handle to
// recycle.
//
// A payload's slices are written only between allocation and the publishing
// CAS of the revision that adopts it; afterwards they are immutable until
// the revision is retired by the inner GC and the epoch advances past every
// possible reader (see epoch.go).
type payload[K cmp.Ordered, V any] struct {
	keys   []K
	vals   []V
	hashes []uint16 // nil when the hash index is disabled
	slots  []int32  // managed by buildSlots; len 2*b for b buckets
	class  int      // pooled capacity (power of two); 0 = not recyclable
}

// truncate shrinks the payload's logical length to n (entries beyond n stay
// in the buffers until overwritten by the next user — they are never read).
func (pl *payload[K, V]) truncate(n int) {
	pl.keys = pl.keys[:n]
	pl.vals = pl.vals[:n]
	if pl.hashes != nil {
		pl.hashes = pl.hashes[:n]
	}
}

const (
	// payloadMinClass and payloadMaxClass bound the pooled size classes
	// (powers of two). Requests above the max are served by plain make and
	// never recycled: they come from oversized batch applies that a split
	// immediately breaks up, so pooling them would only pin memory.
	payloadMinClass = 16
	payloadMaxClass = 4096

	// limboDrainLen is the per-shard retirement backlog that triggers an
	// epoch-advance attempt and a drain into the free pools. After a drain
	// the trigger escalates to current-backlog + limboDrainLen, so a shard
	// full of not-yet-matured buffers is rescanned once per limboDrainLen
	// retires, not once per retire (an oversubscribed scheduler can stall
	// the epoch for whole scheduling rounds; rescanning the backlog every
	// retire then turns quadratic).
	limboDrainLen = 64

	// limboMaxLen caps a shard's backlog: beyond it, the newest retirees
	// are dropped to Go's GC instead of being parked. Recycling degrades
	// to ordinary collection under epoch starvation rather than growing
	// an unbounded (and unboundedly rescanned) queue.
	limboMaxLen = 256
)

// numPayloadClasses is the number of pooled size classes.
var numPayloadClasses = bits.TrailingZeros(payloadMaxClass) - bits.TrailingZeros(payloadMinClass) + 1

// classFor returns the pool index and capacity class for a payload of n
// entries, or (-1, 0) when n is beyond the pooled range.
func classFor(n int) (idx, class int) {
	if n > payloadMaxClass {
		return -1, 0
	}
	c := payloadMinClass
	i := 0
	for c < n {
		c <<= 1
		i++
	}
	return i, c
}

// classReserve is one size class's bounded, GC-immune free list. sync.Pool
// alone is the wrong sole store for recycled payloads: the epoch protocol
// parks a retired buffer for two advances before it may re-enter
// circulation, and on allocation-heavy workloads the garbage collector
// often wipes the pool within that window — so buffers cycle park → pool →
// wiped and the hit rate collapses exactly when recycling matters most.
// The reserve holds a small fixed complement per class that survives GC;
// the pool handles overflow (and keeps the no-lock fast path).
type classReserve[K cmp.Ordered, V any] struct {
	mu    sync.Mutex
	items []*payload[K, V] // capacity fixed at construction
}

// reserveCap bounds a class's reserve so the retained memory per class
// stays in the tens-of-kilobytes range regardless of class size.
func reserveCap(class int) int {
	c := 4096 / class
	if c < 4 {
		return 4
	}
	if c > 64 {
		return 64
	}
	return c
}

// limboItem is one retired payload awaiting its reuse epoch.
type limboItem[K cmp.Ordered, V any] struct {
	epoch uint64
	pl    *payload[K, V]
}

// limboShard is one stripe of a recycler's retirement backlog. nextDrain is
// the backlog length that triggers the next drain attempt (escalated after
// unproductive drains; guarded by mu).
type limboShard[K cmp.Ordered, V any] struct {
	mu        sync.Mutex
	items     []limboItem[K, V]
	nextDrain int
}

// recycler is a Map's payload allocator: size-classed sync.Pool free lists
// fed by an epoch-gated limbo of retired buffers. Construction-side scratch
// (combined pre-split arrays, merge remove-clones, revisions whose
// publishing CAS failed) bypasses the limbo via recycleNow — no reader ever
// saw those buffers, so they are immediately reusable.
type recycler[K cmp.Ordered, V any] struct {
	disabled bool
	withHash bool
	// fuseKeys/fuseVals: the element type is pointer-free, so its buffer
	// is part of the fused, recyclable unit. Pointer-bearing components
	// (string keys, pointer or struct-with-pointer values) are allocated
	// fresh per revision and never parked: a retired buffer full of
	// pointers would sit in the limbo pinning dead entries and being
	// re-scanned by the garbage collector every cycle, which costs more
	// than the allocation it saves. Pooled buffers are therefore always
	// pointer-free (noscan spans), making the pools and limbo nearly
	// invisible to the GC.
	fuseKeys bool
	fuseVals bool
	keySize  uintptr
	valSize  uintptr
	pools    []sync.Pool
	reserves []classReserve[K, V]
	limbo    []limboShard[K, V]

	hits     atomic.Uint64 // allocations served from a pool
	misses   atomic.Uint64 // allocations that hit the heap
	recycled atomic.Uint64 // payload bytes returned to the pools
}

func newRecycler[K cmp.Ordered, V any](disabled, withHash bool) *recycler[K, V] {
	var k K
	var v V
	rc := &recycler[K, V]{
		disabled: disabled,
		withHash: withHash,
		fuseKeys: !typeHasPointers(reflect.TypeOf(&k).Elem()),
		fuseVals: !typeHasPointers(reflect.TypeOf(&v).Elem()),
		keySize:  unsafe.Sizeof(k),
		valSize:  unsafe.Sizeof(v),
		pools:    make([]sync.Pool, numPayloadClasses),
		reserves: make([]classReserve[K, V], numPayloadClasses),
		limbo:    make([]limboShard[K, V], epochStripes),
	}
	for i := range rc.reserves {
		rc.reserves[i].items = make([]*payload[K, V], 0, reserveCap(payloadMinClass<<i))
	}
	return rc
}

// typeHasPointers reports whether values of t embed pointers the garbage
// collector must chase (computed once per Map at construction).
func typeHasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return t.Len() > 0 && typeHasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if typeHasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		// Pointers, strings, slices, maps, chans, funcs, interfaces.
		return true
	}
}

// alloc returns a payload with logical length n, from the free pools when
// possible. The caller owns it exclusively until it publishes the adopting
// revision.
func (rc *recycler[K, V]) alloc(n int) *payload[K, V] {
	if rc.disabled {
		return rc.fresh(n, 0)
	}
	idx, class := classFor(n)
	if idx < 0 {
		return rc.fresh(n, 0)
	}
	pl, _ := rc.pools[idx].Get().(*payload[K, V])
	if pl == nil {
		// The pool is empty (cold, or wiped by a GC cycle): fall back to
		// the GC-immune reserve.
		r := &rc.reserves[idx]
		r.mu.Lock()
		if len(r.items) > 0 {
			pl = r.items[len(r.items)-1]
			r.items[len(r.items)-1] = nil
			r.items = r.items[:len(r.items)-1]
		}
		r.mu.Unlock()
	}
	if pl != nil {
		rc.hits.Add(1)
		if rc.fuseKeys {
			pl.keys = pl.keys[:n]
		} else {
			pl.keys = make([]K, n)
		}
		if rc.fuseVals {
			pl.vals = pl.vals[:n]
		} else {
			pl.vals = make([]V, n)
		}
		if pl.hashes != nil {
			pl.hashes = pl.hashes[:n]
		}
		return pl
	}
	rc.misses.Add(1)
	// Opportunistically nudge the epoch and move one limbo shard's matured
	// buffers into the pools so a warming map stops missing. Sampled 1/16:
	// when the epoch is starved (an oversubscribed scheduler parking
	// pinned goroutines), misses dominate, and paying a census scan plus a
	// backlog walk on every one of them would cost more than the heap
	// allocation it tries to avoid.
	r := rand.Uint64()
	if r&0xf == 0 {
		// Gate and shard index use disjoint bits, so every limbo shard is
		// reachable from the sampled drains.
		rc.drainShard(&rc.limbo[int(r>>8)&(epochStripes-1)], epochTryAdvance())
	}
	return rc.fresh(n, class)
}

// fresh heap-allocates a payload of length n. Fused (pointer-free) buffers
// get capacity class so they are poolable; unfused ones are sized exactly —
// they are discarded with the revision either way.
func (rc *recycler[K, V]) fresh(n, class int) *payload[K, V] {
	c := class
	if c == 0 {
		c = n
	}
	pl := &payload[K, V]{class: class}
	if rc.fuseKeys {
		pl.keys = make([]K, n, c)
	} else {
		pl.keys = make([]K, n)
	}
	if rc.fuseVals {
		pl.vals = make([]V, n, c)
	} else {
		pl.vals = make([]V, n)
	}
	if rc.withHash {
		pl.hashes = make([]uint16, n, c)
	}
	return pl
}

// recycleNow returns a payload that was never published (scratch, or a
// failed CAS) straight to the free pools.
func (rc *recycler[K, V]) recycleNow(pl *payload[K, V]) {
	if pl == nil || pl.class == 0 || rc.disabled {
		return
	}
	rc.put(pl)
}

// retire parks a pruned revision's payload in the limbo until the epoch
// advances past every reader that could still hold the revision. The caller
// must have definitively unlinked the revision first (exclusive per-node
// prune, gc.go) — the epoch tag is read after the unlink, so any reader
// able to reach the buffers is pinned at an epoch <= the tag.
func (rc *recycler[K, V]) retire(pl *payload[K, V]) {
	rc.retireMany([]*payload[K, V]{pl})
}

// retireMany parks a batch of retired payloads with one stripe lock — the
// inner GC's prune hands over everything it dropped at a node in one call.
// Payloads must already be definitively unlinked (see retire's contract).
func (rc *recycler[K, V]) retireMany(pls []*payload[K, V]) {
	if rc.disabled || len(pls) == 0 {
		return
	}
	// Drop pointer-bearing components before parking: readers reach the
	// buffers through the revision's own slice headers, never through the
	// payload struct, so the arrays stay alive exactly as long as the
	// revision itself — and the limbo parks only pointer-free (noscan)
	// memory the garbage collector never has to walk.
	if !rc.fuseKeys {
		for _, pl := range pls {
			pl.keys = nil
		}
	}
	if !rc.fuseVals {
		for _, pl := range pls {
			pl.vals = nil
		}
	}
	e := epochClock.Load()
	sh := &rc.limbo[int(rand.Uint64())&(epochStripes-1)]
	sh.mu.Lock()
	if sh.nextDrain == 0 {
		sh.nextDrain = limboDrainLen
	}
	for _, pl := range pls {
		if pl.class == 0 {
			continue // unpooled (oversized) buffer: Go's GC owns it
		}
		if len(sh.items) >= limboMaxLen {
			// Epoch starvation — shed the rest to Go's GC rather than
			// growing (and rescanning) the backlog without bound.
			break
		}
		sh.items = append(sh.items, limboItem[K, V]{epoch: e, pl: pl})
	}
	// Drain when the backlog crosses its escalating threshold, or when the
	// epoch has moved two steps past the oldest parked buffer (so a capped
	// or quiet shard still empties once its contents mature).
	trigger := len(sh.items) >= sh.nextDrain ||
		(len(sh.items) > 0 && e >= sh.items[0].epoch+2)
	sh.mu.Unlock()
	if trigger {
		rc.drainShard(sh, epochTryAdvance())
	}
}

// drainShard moves the shard's matured buffers (retired at epoch e with
// e+2 <= now) into the free pools and escalates the shard's next drain
// trigger past whatever could not be freed yet.
func (rc *recycler[K, V]) drainShard(sh *limboShard[K, V], now uint64) {
	sh.mu.Lock()
	items := sh.items
	w := 0
	for _, it := range items {
		if it.epoch+2 <= now {
			rc.put(it.pl)
		} else {
			items[w] = it
			w++
		}
	}
	for i := w; i < len(items); i++ {
		items[i] = limboItem[K, V]{}
	}
	sh.items = items[:w]
	sh.nextDrain = w + limboDrainLen
	sh.mu.Unlock()
}

// put files a payload under its size class, dropping any pointer-bearing
// component first so parked buffers never pin entries or cost GC scans.
// Stale scalars beyond the next user's length are never read, and the
// retained memory is bounded by the pool itself (sync.Pool drops items on
// GC).
func (rc *recycler[K, V]) put(pl *payload[K, V]) {
	if pl.class == 0 {
		return // unpooled (oversized) buffer: Go's GC owns it
	}
	idx, _ := classFor(pl.class)
	if idx < 0 {
		return
	}
	if !rc.fuseKeys {
		pl.keys = nil
	}
	if !rc.fuseVals {
		pl.vals = nil
	}
	rc.recycled.Add(uint64(rc.payloadBytes(pl)))
	r := &rc.reserves[idx]
	r.mu.Lock()
	if len(r.items) < cap(r.items) {
		r.items = append(r.items, pl)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	rc.pools[idx].Put(pl)
}

// payloadBytes estimates the buffer capacity a payload carries.
func (rc *recycler[K, V]) payloadBytes(pl *payload[K, V]) uintptr {
	b := uintptr(cap(pl.keys))*rc.keySize + uintptr(cap(pl.vals))*rc.valSize
	b += uintptr(cap(pl.hashes)) * 2
	b += uintptr(cap(pl.slots)) * 4
	return b
}

// RecyclerStats is a point-in-time summary of a Map's payload recycling.
type RecyclerStats struct {
	PoolHits      uint64 // payload allocations served from the free pools
	PoolMisses    uint64 // payload allocations that hit the heap
	RecycledBytes uint64 // cumulative buffer bytes returned to the pools
	Epoch         uint64 // current global reclamation epoch
}

func (rc *recycler[K, V]) stats() RecyclerStats {
	return RecyclerStats{
		PoolHits:      rc.hits.Load(),
		PoolMisses:    rc.misses.Load(),
		RecycledBytes: rc.recycled.Load(),
		Epoch:         epochClock.Load(),
	}
}
