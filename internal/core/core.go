package core
