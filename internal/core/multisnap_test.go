package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tsc"
)

// TestMultiSnapshotAlignsOnOneCut: snapshots of maps sharing one manual
// clock land on a single cut version, stay frozen there, and MultiRefresh
// moves them all to a fresh common cut.
func TestMultiSnapshotAlignsOnOneCut(t *testing.T) {
	clk := tsc.NewManual(10)
	a := New[int, int](Options[int]{Clock: clk})
	b := New[int, int](Options[int]{Clock: clk})
	a.Put(1, 100)
	b.Put(2, 200)
	clk.Advance(100)

	subs := MultiSnapshot(a, b)
	sa, sb := subs[0], subs[1]
	defer sa.Close()
	defer sb.Close()
	if sa.Version() != sb.Version() {
		t.Fatalf("sub-snapshot versions differ: %d vs %d", sa.Version(), sb.Version())
	}

	clk.Advance(100)
	a.Put(1, 101)
	b.Put(2, 201)
	if v, _ := sa.Get(1); v != 100 {
		t.Fatalf("sa sees post-cut value %d", v)
	}
	if v, _ := sb.Get(2); v != 200 {
		t.Fatalf("sb sees post-cut value %d", v)
	}

	old := sa.Version()
	MultiRefresh(sa, sb)
	if sa.Version() != sb.Version() {
		t.Fatalf("refreshed versions differ: %d vs %d", sa.Version(), sb.Version())
	}
	if sa.Version() < old {
		t.Fatalf("refresh went backwards: %d after %d", sa.Version(), old)
	}
	if v, _ := sa.Get(1); v != 101 {
		t.Fatalf("refreshed sa = %d want 101", v)
	}
	if v, _ := sb.Get(2); v != 201 {
		t.Fatalf("refreshed sb = %d want 201", v)
	}
}

// TestMultiSnapshotClockMismatchPanics: maps with distinct clocks cannot be
// aligned on one cut.
func TestMultiSnapshotClockMismatchPanics(t *testing.T) {
	a := New[int, int]()
	b := New[int, int]() // different clock
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched clocks")
		}
	}()
	MultiSnapshot(a, b)
}

// TestMultiRefreshClockMismatchPanics: mixing snapshots of unrelated maps
// in one MultiRefresh is a bug, not a silent misalignment.
func TestMultiRefreshClockMismatchPanics(t *testing.T) {
	a := New[int, int]()
	b := New[int, int]() // different clock
	sa, sb := a.Snapshot(), b.Snapshot()
	defer sa.Close()
	defer sb.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched clocks")
		}
	}()
	MultiRefresh(sa, sb)
}

// TestMultiSnapshotEmpty: the degenerate calls are no-ops.
func TestMultiSnapshotEmpty(t *testing.T) {
	if subs := MultiSnapshot[int, int](); subs != nil {
		t.Fatalf("MultiSnapshot() = %v, want nil", subs)
	}
	MultiRefresh[int, int]() // must not panic
}

// TestPinnedRegistrationBlocksGC: while a registration is still pinned (a
// snapshot mid-creation or mid-refresh), the GC must keep everything at
// or above the pin floor's boundary — the entry may yet publish any
// version >= its floor — while history below the floor stays collectable,
// so pins cannot starve pruning. Publishing a version collapses the pin
// to an ordinary snapshot.
func TestPinnedRegistrationBlocksGC(t *testing.T) {
	clk := tsc.NewManual(10)
	m := New[uint64, int](Options[uint64]{Clock: clk})
	const before, after = 10, 40
	for i := 0; i < before; i++ {
		clk.Advance(10)
		m.Put(9, i)
	}
	e := m.snaps.registerPinned(clk.Read())
	for i := 0; i < after; i++ {
		clk.Advance(10)
		m.Put(9, before+i)
	}
	// Everything the pin can reach survives: the floor's boundary
	// revision plus every revision committed after the floor. History
	// below the floor (the first `before` puts, minus the boundary) must
	// have been pruned despite the pin.
	st := m.Stats()
	if st.MaxRevisionList < after+1 {
		t.Fatalf("pinned registration did not retain post-floor history: list length %d, want >= %d",
			st.MaxRevisionList, after+1)
	}
	if st.MaxRevisionList > after+3 {
		t.Fatalf("pin starves pruning below its floor: list length %d, want <= %d",
			st.MaxRevisionList, after+3)
	}
	// Publish the current clock value: the pin collapses to an ordinary
	// snapshot at that version and the next update's GC prunes everything
	// the snapshot cannot read.
	e.version.Store(clk.Read())
	clk.Advance(10)
	m.Put(9, 999)
	if st := m.Stats(); st.MaxRevisionList > 4 {
		t.Fatalf("published registration still blocks pruning: list length %d", st.MaxRevisionList)
	}
	e.closed.Store(true)
}

// TestMultiSnapshotGCRace is the cross-map analogue of
// TestGCHorizonProtectsConcurrentRegistration and the regression test for
// the aligned-snapshot GC race: taking the cut before the per-map entries
// pin let a concurrent GC prune a revision the cut was entitled to read,
// so one map of the pair served stale state. Writers apply cross-map
// batches that keep every key at one generation; every MultiSnapshot must
// read a single generation across both maps.
func TestMultiSnapshotGCRace(t *testing.T) {
	clock := tsc.NewMonotonic()
	a := New[uint64, int](Options[uint64]{Clock: clock, FixedRevisionSize: 4})
	b := New[uint64, int](Options[uint64]{Clock: clock, FixedRevisionSize: 4})
	const keys = 16
	write := func(gen int) {
		ba, bb := NewBatch[uint64, int](keys/2), NewBatch[uint64, int](keys/2)
		for k := uint64(0); k < keys; k++ {
			if k%2 == 0 {
				ba.Put(k, gen)
			} else {
				bb.Put(k, gen)
			}
		}
		MultiBatchUpdate(
			MapBatch[uint64, int]{Map: a, Batch: ba},
			MapBatch[uint64, int]{Map: b, Batch: bb},
		)
	}
	write(0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 1; !stop.Load(); gen++ {
			write(gen)
		}
	}()
	for round := 0; round < 3000; round++ {
		subs := MultiSnapshot(a, b)
		sa, sb := subs[0], subs[1]
		gen, genOK := sa.Get(0)
		for k := uint64(0); k < keys; k++ {
			var v int
			var ok bool
			if k%2 == 0 {
				v, ok = sa.Get(k)
			} else {
				v, ok = sb.Get(k)
			}
			if !ok || !genOK || v != gen {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("round %d: key %d = %d,%v want generation %d (stale or torn aligned snapshot)",
					round, k, v, ok, gen)
			}
		}
		sa.Close()
		sb.Close()
	}
	stop.Store(true)
	wg.Wait()
}
