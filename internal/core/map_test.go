package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/tsc"
)

// tinyMap forces frequent node splits and merges so structure-modification
// code paths are exercised even by small sequential tests.
func tinyMap() *Map[uint64, int] {
	return New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
}

func TestPutGetBasic(t *testing.T) {
	m := testMap()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map returned a value")
	}
	m.Put(1, 100)
	if v, ok := m.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	m.Put(1, 200)
	if v, _ := m.Get(1); v != 200 {
		t.Fatalf("overwrite failed: %d", v)
	}
}

func TestRemoveBasic(t *testing.T) {
	m := testMap()
	m.Put(5, 50)
	if !m.Remove(5) {
		t.Fatal("Remove(5) = false for present key")
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("key survived removal")
	}
	if m.Remove(5) {
		t.Fatal("Remove(5) = true for absent key")
	}
	if m.Remove(99) {
		t.Fatal("Remove(99) = true on empty range")
	}
}

func TestManyKeysAcrossSplits(t *testing.T) {
	m := tinyMap()
	const n = 2000
	for i := 0; i < n; i++ {
		m.Put(uint64(i*7%n), i)
	}
	for i := 0; i < n; i++ {
		k := uint64(i * 7 % n)
		if v, ok := m.Get(k); !ok {
			t.Fatalf("lost key %d", k)
		} else if v != i {
			t.Fatalf("Get(%d) = %d want %d", k, v, i)
		}
	}
	st := m.Stats()
	if st.Nodes < 10 {
		t.Fatalf("expected many nodes after splits, got %d", st.Nodes)
	}
	if st.Entries != n {
		t.Fatalf("entries = %d want %d", st.Entries, n)
	}
}

func TestRemoveTriggersMerges(t *testing.T) {
	m := tinyMap()
	const n = 500
	for i := 0; i < n; i++ {
		m.Put(uint64(i), i)
	}
	grown := m.Stats().Nodes
	for i := 0; i < n; i++ {
		if !m.Remove(uint64(i)) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	if got := m.Len(); got != 0 {
		t.Fatalf("Len = %d after removing everything", got)
	}
	shrunk := m.Stats().Nodes
	if shrunk >= grown {
		t.Fatalf("merges never shrank the index: %d -> %d nodes", grown, shrunk)
	}
	// The map must remain fully usable after heavy structure changes.
	for i := 0; i < n; i++ {
		m.Put(uint64(i), -i)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(uint64(i)); !ok || v != -i {
			t.Fatalf("reuse after merges: Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestSequentialMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^42))
		m := tinyMap()
		ref := map[uint64]int{}
		for i := 0; i < 800; i++ {
			k := uint64(rng.IntN(200))
			switch rng.IntN(3) {
			case 0:
				m.Put(k, i)
				ref[k] = i
			case 1:
				got := m.Remove(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			default:
				v, ok := m.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRangePartitionInvariant(t *testing.T) {
	// Node keys must stay strictly increasing along the base list and
	// every stored key must live in the node covering it.
	m := tinyMap()
	for i := 0; i < 3000; i += 3 {
		m.Put(uint64(i), i)
	}
	for i := 0; i < 3000; i += 9 {
		m.Remove(uint64(i))
	}
	checkPartition(t, m)
}

func checkPartition(t *testing.T, m *Map[uint64, int]) {
	t.Helper()
	first := true
	var prevKey uint64
	for nd := m.base; nd != nil; nd = nd.next.Load() {
		if nd.terminated.Load() {
			continue
		}
		if nd.kind == nodeTempSplit {
			t.Fatal("temp-split node present in quiescent index")
		}
		if !nd.isBase {
			if !first && nd.key <= prevKey {
				t.Fatalf("node keys not strictly increasing: %d after %d", nd.key, prevKey)
			}
			prevKey = nd.key
			first = false
		}
		head := nd.head.Load()
		if head.pending() {
			t.Fatal("pending revision in quiescent index")
		}
		next := nd.next.Load()
		for i, k := range head.keys {
			if !nd.isBase && k < nd.key {
				t.Fatalf("key %d below node key %d", k, nd.key)
			}
			if next != nil && k >= next.key {
				t.Fatalf("key %d at or above successor key %d", k, next.key)
			}
			if i > 0 && head.keys[i-1] >= k {
				t.Fatalf("revision keys unsorted at %d", k)
			}
		}
	}
}

func TestScanAscendingAndBounded(t *testing.T) {
	m := tinyMap()
	var want []uint64
	for i := 0; i < 1000; i += 2 {
		m.Put(uint64(i), i)
		want = append(want, uint64(i))
	}
	var got []uint64
	m.All(func(k uint64, v int) bool {
		if int(k) != v {
			t.Fatalf("scan value mismatch at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("All() visited %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order broken at %d: %d != %d", i, got[i], want[i])
		}
	}

	var sub []uint64
	m.Range(100, 200, func(k uint64, _ int) bool {
		sub = append(sub, k)
		return true
	})
	if len(sub) != 50 || sub[0] != 100 || sub[len(sub)-1] != 198 {
		t.Fatalf("Range[100,200): n=%d first=%v last=%v", len(sub), sub[0], sub[len(sub)-1])
	}

	count := 0
	m.RangeFrom(500, func(k uint64, _ int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early-stop scan visited %d", count)
	}
}

func TestScanEmptyAndMissBounds(t *testing.T) {
	m := testMap()
	calls := 0
	m.All(func(uint64, int) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("empty map scan visited %d", calls)
	}
	m.Put(10, 1)
	m.Range(20, 30, func(uint64, int) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("out-of-range scan visited %d", calls)
	}
	m.Range(10, 10, func(uint64, int) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("empty range visited %d", calls)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := tinyMap()
	for i := 0; i < 100; i++ {
		m.Put(uint64(i), i)
	}
	snap := m.Snapshot()
	defer snap.Close()

	// Mutate heavily after the snapshot.
	for i := 0; i < 100; i++ {
		m.Put(uint64(i), i+1000)
	}
	for i := 0; i < 50; i++ {
		m.Remove(uint64(i * 2))
	}
	for i := 100; i < 200; i++ {
		m.Put(uint64(i), i)
	}

	for i := 0; i < 100; i++ {
		v, ok := snap.Get(uint64(i))
		if !ok || v != i {
			t.Fatalf("snapshot Get(%d) = %d,%v want %d,true", i, v, ok, i)
		}
	}
	if _, ok := snap.Get(150); ok {
		t.Fatal("snapshot sees a future key")
	}
	n := 0
	snap.All(func(k uint64, v int) bool {
		if int(k) != v {
			t.Fatalf("snapshot scan sees new value at %d: %d", k, v)
		}
		n++
		return true
	})
	if n != 100 {
		t.Fatalf("snapshot scan visited %d entries, want 100", n)
	}
}

func TestSnapshotRefresh(t *testing.T) {
	m := testMap()
	m.Put(1, 1)
	s := m.Snapshot()
	defer s.Close()
	m.Put(1, 2)
	if v, _ := s.Get(1); v != 1 {
		t.Fatalf("pre-refresh Get = %d", v)
	}
	s.Refresh()
	if v, _ := s.Get(1); v != 2 {
		t.Fatalf("post-refresh Get = %d", v)
	}
}

func TestSnapshotRepeatedReadsStable(t *testing.T) {
	m := tinyMap()
	for i := 0; i < 300; i++ {
		m.Put(uint64(i), i)
	}
	s := m.Snapshot()
	defer s.Close()
	sum := func() int {
		tot := 0
		s.All(func(_ uint64, v int) bool { tot += v; return true })
		return tot
	}
	want := sum()
	for round := 0; round < 5; round++ {
		for i := 0; i < 300; i++ {
			m.Put(uint64(i), i*7+round)
		}
		if got := sum(); got != want {
			t.Fatalf("snapshot drifted: %d -> %d (round %d)", want, got, round)
		}
	}
}

func TestOldSnapshotPinsHistoryAcrossGC(t *testing.T) {
	m := tinyMap()
	m.Put(42, 1)
	s := m.Snapshot()
	defer s.Close()
	// Many subsequent updates each trigger GC; the snapshot's revision
	// must survive all pruning.
	for i := 0; i < 1000; i++ {
		m.Put(42, i+2)
	}
	if v, ok := s.Get(42); !ok || v != 1 {
		t.Fatalf("pinned history lost: Get = %d,%v", v, ok)
	}
}

func TestGCPrunesWithoutSnapshots(t *testing.T) {
	m := testMap()
	for i := 0; i < 200; i++ {
		m.Put(7, i)
	}
	st := m.Stats()
	if st.MaxRevisionList > 3 {
		t.Fatalf("revision list grew to %d without any snapshot", st.MaxRevisionList)
	}
}

func TestBatchUpdateBasic(t *testing.T) {
	m := testMap()
	m.Put(1, 1)
	m.Put(2, 2)
	b := NewBatch[uint64, int](3).Put(2, 20).Put(3, 30).Remove(1)
	m.BatchUpdate(b)
	if _, ok := m.Get(1); ok {
		t.Fatal("batched remove not applied")
	}
	if v, _ := m.Get(2); v != 20 {
		t.Fatalf("batched overwrite: %d", v)
	}
	if v, _ := m.Get(3); v != 30 {
		t.Fatalf("batched insert: %d", v)
	}
}

func TestBatchUpdateEmptyAndDuplicates(t *testing.T) {
	m := testMap()
	m.BatchUpdate(NewBatch[uint64, int](0)) // no-op
	b := NewBatch[uint64, int](4).Put(5, 1).Put(5, 2).Remove(5).Put(5, 3)
	m.BatchUpdate(b)
	if v, ok := m.Get(5); !ok || v != 3 {
		t.Fatalf("last-wins dedup: %d,%v", v, ok)
	}
}

func TestBatchRemoveAbsentKeyStillAtomic(t *testing.T) {
	// §3.3.3 point 5: a batched remove of an absent key must create a
	// revision so a concurrent lower-versioned put cannot resurrect it.
	// Sequentially we can only check it doesn't corrupt anything.
	m := tinyMap()
	for i := 0; i < 50; i++ {
		m.Put(uint64(i), i)
	}
	b := NewBatch[uint64, int](2).Remove(1000).Remove(2000)
	m.BatchUpdate(b)
	if m.Len() != 50 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestBatchSpanningManyNodes(t *testing.T) {
	m := tinyMap()
	for i := 0; i < 1000; i++ {
		m.Put(uint64(i), i)
	}
	b := NewBatch[uint64, int](200)
	for i := 0; i < 1000; i += 5 {
		b.Put(uint64(i), -i)
	}
	m.BatchUpdate(b)
	for i := 0; i < 1000; i++ {
		v, ok := m.Get(uint64(i))
		if !ok {
			t.Fatalf("lost key %d", i)
		}
		want := i
		if i%5 == 0 {
			want = -i
		}
		if v != want {
			t.Fatalf("Get(%d) = %d want %d", i, v, want)
		}
	}
}

func TestBatchTriggersSplits(t *testing.T) {
	m := tinyMap()
	b := NewBatch[uint64, int](100)
	for i := 0; i < 100; i++ {
		b.Put(uint64(i), i)
	}
	m.BatchUpdate(b)
	// A node splits at most once per batch application (the halves are
	// frozen until the batch linearizes), so one big batch yields one
	// split; follow-up updates keep splitting oversized nodes.
	if m.Stats().Nodes < 2 {
		t.Fatalf("large batch did not split the base node: %+v", m.Stats())
	}
	for i := 0; i < 100; i++ {
		if v, ok := m.Get(uint64(i)); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	for i := 0; i < 100; i++ {
		m.Put(uint64(i), i)
	}
	if st := m.Stats(); st.Nodes < 10 {
		t.Fatalf("follow-up updates did not refine oversized nodes: %+v", st)
	}
	checkPartition(t, m)
}

func TestBatchVsReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*3))
		m := tinyMap()
		ref := map[uint64]int{}
		for round := 0; round < 20; round++ {
			b := NewBatch[uint64, int](10)
			staged := map[uint64]*int{}
			for i := 0; i < 10; i++ {
				k := uint64(rng.IntN(100))
				if rng.IntN(3) == 0 {
					b.Remove(k)
					staged[k] = nil
				} else {
					v := round*100 + i
					b.Put(k, v)
					staged[k] = &v
				}
			}
			m.BatchUpdate(b)
			for k, pv := range staged {
				if pv == nil {
					delete(ref, k)
				} else {
					ref[k] = *pv
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if v, ok := m.Get(k); !ok || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeys(t *testing.T) {
	m := New[string, string](Options[string]{FixedRevisionSize: 4})
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	for i, w := range words {
		m.Put(w, fmt.Sprintf("v%d", i))
	}
	for i, w := range words {
		if v, ok := m.Get(w); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q,%v", w, v, ok)
		}
	}
	var got []string
	m.All(func(k, _ string) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) || len(got) != len(words) {
		t.Fatalf("scan over string keys: %v", got)
	}
}

func TestManualClockDeterministic(t *testing.T) {
	clk := tsc.NewManual(100)
	m := New[uint64, int](Options[uint64]{Clock: clk})
	m.Put(1, 1)
	s1 := m.Snapshot()
	defer s1.Close()
	clk.Advance(10)
	m.Put(1, 2)
	if v, _ := s1.Get(1); v != 1 {
		t.Fatalf("snapshot at manual time sees %d", v)
	}
	if v, _ := m.Get(1); v != 2 {
		t.Fatalf("newest read sees %d", v)
	}
}

func TestZeroAndMaxKeys(t *testing.T) {
	m := tinyMap()
	m.Put(0, 10)
	m.Put(^uint64(0), 20)
	if v, ok := m.Get(0); !ok || v != 10 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
	if v, ok := m.Get(^uint64(0)); !ok || v != 20 {
		t.Fatalf("Get(max) = %d,%v", v, ok)
	}
	if !m.Remove(0) || !m.Remove(^uint64(0)) {
		t.Fatal("boundary removes failed")
	}
}

func TestStatsSane(t *testing.T) {
	m := tinyMap()
	for i := 0; i < 100; i++ {
		m.Put(uint64(i), i)
	}
	st := m.Stats()
	if st.Entries != 100 || st.Nodes < 2 || st.IndexLevels < 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PendingOps != 0 {
		t.Fatalf("pending ops in quiescent map: %+v", st)
	}
}
