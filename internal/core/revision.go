package core

import (
	"cmp"
	"sort"
	"sync/atomic"
)

// revKind distinguishes the revision roles from §3.3.1. A single struct with
// a kind tag keeps the revision list CAS-able through one head pointer.
type revKind uint8

const (
	revRegular revKind = iota
	revLeftSplit
	revRightSplit
	revMerge
	revTerminator // merge terminator: carries no payload
)

// revision is an immutable bundle of key-value entries in a concrete
// version (§3.3.5), plus the mutable coordination fields that drive the
// lock-free protocol. Payload fields (keys, vals, hashes, slots and the
// structural constants kind, sibling, splitKey, rightKey, node, prevRev,
// remKey, remHasKey, desc) are written before the revision is published via
// CAS and never change afterwards. Only version, next, rightNext, splitDone,
// mergeRev and the autoscaler stats mutate after publication, all through
// atomics.
type revision[K cmp.Ordered, V any] struct {
	kind revKind

	// version holds the optimistic (negative) then final (positive)
	// version number — unless desc is non-nil, in which case the version
	// lives in the shared batch descriptor (§3.3.3).
	version atomic.Int64
	desc    *batchDesc[K, V]

	// Payload: entries sorted by key. hashes[i] is Hash(keys[i]); slots
	// is the lightweight hash index (2 slots per bucket, §3.3.5), nil
	// when the index is disabled or the revision is empty.
	keys   []K
	vals   []V
	hashes []uint16
	slots  []int32

	// next is the (left) successor in the revision list.
	next atomic.Pointer[revision[K, V]]

	// Merge-revision fields: rightNext is the right successor (the merged
	// node's old revision chain), rightKey the key of the node that was
	// merged away, mt the terminator this revision resolves.
	rightNext atomic.Pointer[revision[K, V]]
	rightKey  K
	mt        *revision[K, V]

	// Split-revision fields: the two split revisions reference each other
	// through sibling; splitKey is the key of the new node (the lower
	// bound of the right half). splitDone is set once the real new node
	// has been installed, guarding against the ABA scenario of §3.3.1.
	sibling   *revision[K, V]
	splitKey  K
	splitDone atomic.Bool

	// Merge-terminator fields: node is the node being merged away,
	// prevRev its revision list at termination time, remKey/remHasKey the
	// remove operation folded into the merge, mergeRev the merge revision
	// once installed (set exactly once via CAS).
	node      *node[K, V]
	prevRev   *revision[K, V]
	remKey    K
	remHasKey bool
	mergeRev  atomic.Pointer[revision[K, V]]

	stats revStats
}

// ver resolves the revision's current version number, indirecting through
// the batch descriptor (and, for cross-map batches, its group's shared
// cell) when the revision was created by a batch update.
func (r *revision[K, V]) ver() int64 {
	if r.desc != nil {
		return r.desc.ver()
	}
	if r.kind == revRightSplit {
		// Both split revisions share one linearization point: the
		// version is stored only in the left sibling, so a lookup can
		// never observe one half of a split as final and the other as
		// pending.
		return r.sibling.version.Load()
	}
	return r.version.Load()
}

// pending reports whether the update that created r has not linearized yet.
func (r *revision[K, V]) pending() bool { return r.ver() < 0 }

// size returns the number of entries in the revision.
func (r *revision[K, V]) size() int { return len(r.keys) }

// newRevision builds a revision over the given sorted, deduplicated arrays
// and populates the hash index. The caller owns the arrays exclusively.
func (m *Map[K, V]) newRevision(kind revKind, keys []K, vals []V) *revision[K, V] {
	r := &revision[K, V]{kind: kind, keys: keys, vals: vals}
	if !m.opts.DisableHashIndex && len(keys) > 0 {
		r.hashes = make([]uint16, len(keys))
		for i, k := range keys {
			r.hashes[i] = m.opts.Hash(k)
		}
		r.buildSlots()
	}
	return r
}

// newRevisionFromHashes is newRevision for callers that already hold the
// hash array (copied alongside keys/vals, §3.3.5: "the hashes array can be
// efficiently copied").
func (m *Map[K, V]) newRevisionFromHashes(kind revKind, keys []K, vals []V, hashes []uint16) *revision[K, V] {
	r := &revision[K, V]{kind: kind, keys: keys, vals: vals}
	if !m.opts.DisableHashIndex && len(keys) > 0 {
		r.hashes = hashes
		r.buildSlots()
	}
	return r
}

// buildSlots populates the 2-slot-per-bucket hash index: entry i lands in
// slot 2t or 2t+1 where t = hashes[i] masked to the bucket count (the next
// power of two >= len(keys), so the bucket computation is a mask, not a
// division); overflow entries are found by the binary-search fallback.
// Slots store entry index + 1 so that make()'s zeroing doubles as the
// empty marker.
func (r *revision[K, V]) buildSlots() {
	n := len(r.keys)
	b := 1
	for b < n {
		b <<= 1
	}
	mask := uint16(b - 1)
	slots := make([]int32, 2*b)
	for i := 0; i < n; i++ {
		t := int(r.hashes[i] & mask)
		if slots[2*t] == 0 {
			slots[2*t] = int32(i) + 1
		} else if slots[2*t+1] == 0 {
			slots[2*t+1] = int32(i) + 1
		}
	}
	r.slots = slots
}

// get returns the value stored for key in this revision. It first probes
// the hash index (two slots), declaring the key absent if a probed slot is
// empty, and falls back to binary search only on double collision (§3.3.5).
func (r *revision[K, V]) get(key K, hash func(K) uint16) (V, bool) {
	var zero V
	n := len(r.keys)
	if n == 0 {
		return zero, false
	}
	if r.slots != nil {
		t := int(hash(key) & uint16(len(r.slots)/2-1))
		i := r.slots[2*t]
		if i == 0 {
			return zero, false
		}
		if r.keys[i-1] == key {
			return r.vals[i-1], true
		}
		j := r.slots[2*t+1]
		if j == 0 {
			return zero, false
		}
		if r.keys[j-1] == key {
			return r.vals[j-1], true
		}
		// Both slots taken by other keys: the key may have overflowed.
	}
	i := sort.Search(n, func(i int) bool { return r.keys[i] >= key })
	if i < n && r.keys[i] == key {
		return r.vals[i], true
	}
	return zero, false
}

// find returns the index of key in the sorted keys array, or (insertion
// point, false).
func (r *revision[K, V]) find(key K) (int, bool) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
	return i, i < len(r.keys) && r.keys[i] == key
}

// cloneAndPut returns fresh arrays equal to r's payload with key set to val.
func (r *revision[K, V]) cloneAndPut(key K, val V, hash func(K) uint16, withHashes bool) (keys []K, vals []V, hashes []uint16) {
	i, found := r.find(key)
	if found {
		keys = make([]K, len(r.keys))
		vals = make([]V, len(r.vals))
		copy(keys, r.keys)
		copy(vals, r.vals)
		vals[i] = val
		if withHashes && r.hashes != nil {
			hashes = make([]uint16, len(r.hashes))
			copy(hashes, r.hashes)
		}
		return keys, vals, hashes
	}
	n := len(r.keys)
	keys = make([]K, n+1)
	vals = make([]V, n+1)
	copy(keys, r.keys[:i])
	copy(vals, r.vals[:i])
	keys[i] = key
	vals[i] = val
	copy(keys[i+1:], r.keys[i:])
	copy(vals[i+1:], r.vals[i:])
	if withHashes {
		hashes = make([]uint16, n+1)
		if r.hashes != nil {
			copy(hashes, r.hashes[:i])
			copy(hashes[i+1:], r.hashes[i:])
		} else {
			for j, k := range keys {
				hashes[j] = hash(k)
			}
		}
		hashes[i] = hash(key)
	}
	return keys, vals, hashes
}

// cloneAndRemove returns fresh arrays equal to r's payload with key removed.
// The caller must have checked that key is present.
func (r *revision[K, V]) cloneAndRemove(key K) (keys []K, vals []V, hashes []uint16) {
	i, found := r.find(key)
	if !found {
		keys = make([]K, len(r.keys))
		vals = make([]V, len(r.vals))
		copy(keys, r.keys)
		copy(vals, r.vals)
		if r.hashes != nil {
			hashes = make([]uint16, len(r.hashes))
			copy(hashes, r.hashes)
		}
		return keys, vals, hashes
	}
	n := len(r.keys)
	keys = make([]K, n-1)
	vals = make([]V, n-1)
	copy(keys, r.keys[:i])
	copy(vals, r.vals[:i])
	copy(keys[i:], r.keys[i+1:])
	copy(vals[i:], r.vals[i+1:])
	if r.hashes != nil {
		hashes = make([]uint16, n-1)
		copy(hashes, r.hashes[:i])
		copy(hashes[i:], r.hashes[i+1:])
	}
	return keys, vals, hashes
}

// applyBatch returns fresh arrays equal to r's payload with every entry in
// ops applied (ops sorted ascending by key, unique keys). Removes of absent
// keys are no-ops in the arrays but still force a new revision (§3.3.3
// point 5: the lost-remove anomaly).
func (r *revision[K, V]) applyBatch(ops []batchEntry[K, V]) (keys []K, vals []V) {
	keys = make([]K, 0, len(r.keys)+len(ops))
	vals = make([]V, 0, len(r.vals)+len(ops))
	i, j := 0, 0
	for i < len(r.keys) && j < len(ops) {
		switch {
		case r.keys[i] < ops[j].key:
			keys = append(keys, r.keys[i])
			vals = append(vals, r.vals[i])
			i++
		case r.keys[i] > ops[j].key:
			if !ops[j].remove {
				keys = append(keys, ops[j].key)
				vals = append(vals, ops[j].val)
			}
			j++
		default:
			if !ops[j].remove {
				keys = append(keys, ops[j].key)
				vals = append(vals, ops[j].val)
			}
			i++
			j++
		}
	}
	for ; i < len(r.keys); i++ {
		keys = append(keys, r.keys[i])
		vals = append(vals, r.vals[i])
	}
	for ; j < len(ops); j++ {
		if !ops[j].remove {
			keys = append(keys, ops[j].key)
			vals = append(vals, ops[j].val)
		}
	}
	return keys, vals
}

// splitArrays halves sorted arrays for a node split (§3.3.1: "a new node
// inherits the upper half of the key range"). It returns the two halves and
// the new node's key (the first key of the right half). len(keys) must be
// >= 2.
func splitArrays[K cmp.Ordered, V any](keys []K, vals []V) (lk []K, lv []V, rk []K, rv []V, splitKey K) {
	mid := len(keys) / 2
	lk = keys[:mid:mid]
	lv = vals[:mid:mid]
	rk = keys[mid:]
	rv = vals[mid:]
	return lk, lv, rk, rv, rk[0]
}

// unionArrays concatenates two disjoint sorted runs (left strictly below
// right), producing fresh arrays for a merge revision.
func unionArrays[K cmp.Ordered, V any](lk []K, lv []V, rk []K, rv []V) ([]K, []V) {
	keys := make([]K, 0, len(lk)+len(rk))
	vals := make([]V, 0, len(lv)+len(rv))
	keys = append(append(keys, lk...), rk...)
	vals = append(append(vals, lv...), rv...)
	return keys, vals
}
