package core

import (
	"cmp"
	"sync/atomic"
)

// revKind distinguishes the revision roles from §3.3.1. A single struct with
// a kind tag keeps the revision list CAS-able through one head pointer.
type revKind uint8

const (
	revRegular revKind = iota
	revLeftSplit
	revRightSplit
	revMerge
	revTerminator // merge terminator: carries no payload
)

// revision is an immutable bundle of key-value entries in a concrete
// version (§3.3.5), plus the mutable coordination fields that drive the
// lock-free protocol. Payload fields (keys, vals, hashes, slots — views
// into pl's fused buffers — and the structural constants kind, sibling,
// splitKey, rightKey, node, prevRev, remKey, remHasKey, desc) are written
// before the revision is published via CAS and never change afterwards.
// Only version, next, rightNext, splitDone, mergeRev, shared, reclaimed and
// the autoscaler stats mutate after publication, all through atomics.
type revision[K cmp.Ordered, V any] struct {
	kind revKind

	// version holds the optimistic (negative) then final (positive)
	// version number — unless desc is non-nil, in which case the version
	// lives in the shared batch descriptor (§3.3.3).
	version atomic.Int64
	desc    *batchDesc[K, V]

	// Payload: entries sorted by key. hashes[i] is Hash(keys[i]); slots
	// is the lightweight hash index (2 slots per bucket, §3.3.5), nil
	// when the index is disabled or the revision is empty. pl is the
	// fused allocation backing all four slices (nil for empty revisions
	// and test-constructed ones); the inner GC retires it through the
	// epoch-gated recycler once the revision is pruned.
	keys   []K
	vals   []V
	hashes []uint16
	slots  []int32
	pl     *payload[K, V]

	// sharedCnt marks a revision referenced (or about to be referenced) by
	// more than one revision chain: the pre-split head both split
	// revisions point at. Its buffers (and everything below it, reachable
	// from both chains) are left to Go's collector — the exclusive
	// per-node prune that justifies recycling does not hold across chains
	// (see gc.go). It is a counter, not a flag, because the mark must be
	// visible before the split's installing CAS: a failed attempt
	// decrements its own mark without erasing a concurrent attempt's.
	sharedCnt atomic.Int32

	// reclaimed guards retirement: the first pruner to claim it owns the
	// payload's trip through the recycler.
	reclaimed atomic.Bool

	// next is the (left) successor in the revision list.
	next atomic.Pointer[revision[K, V]]

	// skip and skipPos form the version-seek accelerator (seek.go): skip
	// points a power-of-two number of revisions further down the same
	// chain (Fenwick spacing over skipPos, the revision's position within
	// its run of consecutive regular revisions). Both are written by
	// linkSkip before the revision is published and never change; skip is
	// nil on structural revisions and when chain seeking is disabled.
	skip    *revision[K, V]
	skipPos uint32

	// Merge-revision fields: rightNext is the right successor (the merged
	// node's old revision chain), rightKey the key of the node that was
	// merged away, mt the terminator this revision resolves.
	rightNext atomic.Pointer[revision[K, V]]
	rightKey  K
	mt        *revision[K, V]

	// Split-revision fields: the two split revisions reference each other
	// through sibling; splitKey is the key of the new node (the lower
	// bound of the right half). splitDone is set once the real new node
	// has been installed, guarding against the ABA scenario of §3.3.1.
	sibling   *revision[K, V]
	splitKey  K
	splitDone atomic.Bool

	// Merge-terminator fields: node is the node being merged away,
	// prevRev its revision list at termination time, remKey/remHasKey the
	// remove operation folded into the merge, mergeRev the merge revision
	// once installed (set exactly once via CAS).
	node      *node[K, V]
	prevRev   *revision[K, V]
	remKey    K
	remHasKey bool
	mergeRev  atomic.Pointer[revision[K, V]]

	stats revStats
}

// ver resolves the revision's current version number, indirecting through
// the batch descriptor (and, for cross-map batches, its group's shared
// cell) when the revision was created by a batch update.
func (r *revision[K, V]) ver() int64 {
	if r.desc != nil {
		return r.desc.ver()
	}
	if r.kind == revRightSplit {
		// Both split revisions share one linearization point: the
		// version is stored only in the left sibling, so a lookup can
		// never observe one half of a split as final and the other as
		// pending.
		return r.sibling.version.Load()
	}
	return r.version.Load()
}

// pending reports whether the update that created r has not linearized yet.
func (r *revision[K, V]) pending() bool { return r.ver() < 0 }

// shared reports whether a second chain references (or is about to
// reference) this revision; see sharedCnt.
func (r *revision[K, V]) shared() bool { return r.sharedCnt.Load() > 0 }

// size returns the number of entries in the revision.
func (r *revision[K, V]) size() int { return len(r.keys) }

// searchKeys returns the first index i with keys[i] >= key: the sort.Search
// loop with the closure and its per-iteration indirect call flattened into
// a branch-predictable inline loop — this runs on every get, find and scan
// seek.
func searchKeys[K cmp.Ordered](keys []K, key K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		h := int(uint(lo+hi) >> 1)
		if keys[h] < key {
			lo = h + 1
		} else {
			hi = h
		}
	}
	return lo
}

// newRevision builds a revision over caller-owned sorted, deduplicated
// arrays, computing hashes from scratch. It serves construction paths that
// do not go through the recycler (the initial empty revision, tests);
// update hot paths use newRevisionPl with a pooled payload instead.
func (m *Map[K, V]) newRevision(kind revKind, keys []K, vals []V) *revision[K, V] {
	r := &revision[K, V]{kind: kind, keys: keys, vals: vals}
	if !m.opts.DisableHashIndex && len(keys) > 0 {
		pl := &payload[K, V]{keys: keys, vals: vals, hashes: make([]uint16, len(keys))}
		for i, k := range keys {
			pl.hashes[i] = m.opts.Hash(k)
		}
		r.hashes = pl.hashes
		r.buildSlots(pl)
		r.pl = pl
	}
	return r
}

// newRevisionPl builds a revision adopting a (usually pooled) payload whose
// keys, vals and hashes are already populated. The caller transfers
// ownership: the payload is published with the revision and only the inner
// GC may reclaim it afterwards.
func (m *Map[K, V]) newRevisionPl(kind revKind, pl *payload[K, V]) *revision[K, V] {
	r := &revision[K, V]{kind: kind}
	if pl == nil {
		return r
	}
	r.pl = pl
	r.keys = pl.keys
	r.vals = pl.vals
	if pl.hashes != nil && len(pl.keys) > 0 {
		r.hashes = pl.hashes
		r.buildSlots(pl)
	}
	return r
}

// buildSlots populates the 2-slot-per-bucket hash index into pl's slots
// buffer (grown or cleared as needed): entry i lands in slot 2t or 2t+1
// where t = hashes[i] masked to the bucket count (the next power of two >=
// len(keys), so the bucket computation is a mask, not a division); overflow
// entries are found by the binary-search fallback. Slots store entry index
// + 1 so that zeroing doubles as the empty marker.
func (r *revision[K, V]) buildSlots(pl *payload[K, V]) {
	n := len(r.keys)
	b := 1
	for b < n {
		b <<= 1
	}
	need := 2 * b
	s := pl.slots
	if cap(s) < need {
		s = make([]int32, need)
	} else {
		s = s[:need]
		clear(s)
	}
	mask := uint16(b - 1)
	for i := 0; i < n; i++ {
		t := int(r.hashes[i] & mask)
		if s[2*t] == 0 {
			s[2*t] = int32(i) + 1
		} else if s[2*t+1] == 0 {
			s[2*t+1] = int32(i) + 1
		}
	}
	pl.slots = s
	r.slots = s
}

// get returns the value stored for key in this revision. It first probes
// the hash index (two slots), declaring the key absent if a probed slot is
// empty, and falls back to binary search only on double collision (§3.3.5).
func (r *revision[K, V]) get(key K, hash func(K) uint16) (V, bool) {
	var zero V
	n := len(r.keys)
	if n == 0 {
		return zero, false
	}
	if r.slots != nil {
		t := int(hash(key) & uint16(len(r.slots)/2-1))
		i := r.slots[2*t]
		if i == 0 {
			return zero, false
		}
		if r.keys[i-1] == key {
			return r.vals[i-1], true
		}
		j := r.slots[2*t+1]
		if j == 0 {
			return zero, false
		}
		if r.keys[j-1] == key {
			return r.vals[j-1], true
		}
		// Both slots taken by other keys: the key may have overflowed.
	}
	i := searchKeys(r.keys, key)
	if i < n && r.keys[i] == key {
		return r.vals[i], true
	}
	return zero, false
}

// find returns the index of key in the sorted keys array, or (insertion
// point, false).
func (r *revision[K, V]) find(key K) (int, bool) {
	i := searchKeys(r.keys, key)
	return i, i < len(r.keys) && r.keys[i] == key
}

// clonePut returns a pooled payload equal to r's with key set to val. One
// pass: the insertion point doubles as the copy split, and the parent's
// hash array is reused — only the inserted key is hashed.
func (m *Map[K, V]) clonePut(r *revision[K, V], key K, val V) *payload[K, V] {
	i, found := r.find(key)
	n := len(r.keys)
	if found {
		pl := m.rec.alloc(n)
		copy(pl.keys, r.keys)
		copy(pl.vals, r.vals)
		pl.vals[i] = val
		if pl.hashes != nil {
			copy(pl.hashes, r.hashes)
		}
		return pl
	}
	pl := m.rec.alloc(n + 1)
	copy(pl.keys[:i], r.keys[:i])
	copy(pl.vals[:i], r.vals[:i])
	pl.keys[i] = key
	pl.vals[i] = val
	copy(pl.keys[i+1:], r.keys[i:])
	copy(pl.vals[i+1:], r.vals[i:])
	if pl.hashes != nil {
		copy(pl.hashes[:i], r.hashes[:i])
		pl.hashes[i] = m.opts.Hash(key)
		copy(pl.hashes[i+1:], r.hashes[i:])
	}
	return pl
}

// cloneRemove returns a pooled payload equal to r's with key removed (an
// unchanged copy if key is absent).
func (m *Map[K, V]) cloneRemove(r *revision[K, V], key K) *payload[K, V] {
	i, found := r.find(key)
	n := len(r.keys)
	if !found {
		pl := m.rec.alloc(n)
		copy(pl.keys, r.keys)
		copy(pl.vals, r.vals)
		if pl.hashes != nil {
			copy(pl.hashes, r.hashes)
		}
		return pl
	}
	pl := m.rec.alloc(n - 1)
	copy(pl.keys[:i], r.keys[:i])
	copy(pl.vals[:i], r.vals[:i])
	copy(pl.keys[i:], r.keys[i+1:])
	copy(pl.vals[i:], r.vals[i+1:])
	if pl.hashes != nil {
		copy(pl.hashes[:i], r.hashes[:i])
		copy(pl.hashes[i:], r.hashes[i+1:])
	}
	return pl
}

// applyBatchPl returns a pooled payload equal to r's with every entry in
// ops applied (ops sorted ascending by key, unique keys). Removes of absent
// keys are no-ops in the arrays but still force a new revision (§3.3.3
// point 5: the lost-remove anomaly). Hashes are merged alongside — kept
// entries reuse the parent's, only inserted keys are hashed.
func (m *Map[K, V]) applyBatchPl(r *revision[K, V], ops []batchEntry[K, V]) *payload[K, V] {
	pl := m.rec.alloc(len(r.keys) + len(ops))
	wh := pl.hashes != nil
	w := 0
	i, j := 0, 0
	for i < len(r.keys) && j < len(ops) {
		switch {
		case r.keys[i] < ops[j].key:
			pl.keys[w], pl.vals[w] = r.keys[i], r.vals[i]
			if wh {
				pl.hashes[w] = r.hashes[i]
			}
			w++
			i++
		case r.keys[i] > ops[j].key:
			if !ops[j].remove {
				pl.keys[w], pl.vals[w] = ops[j].key, ops[j].val
				if wh {
					pl.hashes[w] = m.opts.Hash(ops[j].key)
				}
				w++
			}
			j++
		default:
			if !ops[j].remove {
				pl.keys[w], pl.vals[w] = ops[j].key, ops[j].val
				if wh {
					pl.hashes[w] = r.hashes[i]
				}
				w++
			}
			i++
			j++
		}
	}
	for ; i < len(r.keys); i++ {
		pl.keys[w], pl.vals[w] = r.keys[i], r.vals[i]
		if wh {
			pl.hashes[w] = r.hashes[i]
		}
		w++
	}
	for ; j < len(ops); j++ {
		if !ops[j].remove {
			pl.keys[w], pl.vals[w] = ops[j].key, ops[j].val
			if wh {
				pl.hashes[w] = m.opts.Hash(ops[j].key)
			}
			w++
		}
	}
	pl.truncate(w)
	return pl
}

// splitPayloads copies the two halves of a combined payload into fresh
// pooled payloads for a node split (§3.3.1: "a new node inherits the upper
// half of the key range") and returns them with the new node's key (the
// first key of the right half). The copy — rather than aliasing the halves
// into the combined buffer, as an earlier revision of this code did — is
// what lets each half's buffers be recycled independently: an aliasing
// right half would keep the entire combined array reachable (and
// unrecyclable) for the lifetime of the right node. The caller still owns
// the combined payload afterwards and recycles it as scratch. len(keys)
// must be >= 2.
func (m *Map[K, V]) splitPayloads(pl *payload[K, V]) (lpl, rpl *payload[K, V], splitKey K) {
	mid := len(pl.keys) / 2
	lpl = m.rec.alloc(mid)
	rpl = m.rec.alloc(len(pl.keys) - mid)
	copy(lpl.keys, pl.keys[:mid])
	copy(lpl.vals, pl.vals[:mid])
	copy(rpl.keys, pl.keys[mid:])
	copy(rpl.vals, pl.vals[mid:])
	if pl.hashes != nil {
		if lpl.hashes != nil {
			copy(lpl.hashes, pl.hashes[:mid])
		}
		if rpl.hashes != nil {
			copy(rpl.hashes, pl.hashes[mid:])
		}
	}
	return lpl, rpl, pl.keys[mid]
}

// unionPayload concatenates two disjoint sorted runs (left strictly below
// right) into a pooled payload for a merge revision, merging hashes when
// both sides carry them (an empty side's hashes are nil).
func (m *Map[K, V]) unionPayload(lk []K, lv []V, lh []uint16, rk []K, rv []V, rh []uint16) *payload[K, V] {
	pl := m.rec.alloc(len(lk) + len(rk))
	copy(pl.keys, lk)
	copy(pl.keys[len(lk):], rk)
	copy(pl.vals, lv)
	copy(pl.vals[len(lk):], rv)
	if pl.hashes != nil {
		copy(pl.hashes, lh)
		copy(pl.hashes[len(lk):], rh)
	}
	return pl
}
