package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/tsc"
)

// runReferenceBattery drives a map configuration through the sequential
// reference workload; used to prove every Options variant preserves
// semantics (the ablations must change performance only).
func runReferenceBattery(t *testing.T, mk func() *Map[uint64, int]) {
	t.Helper()
	for seed := uint64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xab1a))
		m := mk()
		ref := map[uint64]int{}
		for i := 0; i < 600; i++ {
			k := uint64(rng.IntN(150))
			switch rng.IntN(4) {
			case 0:
				got := m.Remove(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("seed %d: Remove(%d) = %v want %v", seed, k, got, want)
				}
				delete(ref, k)
			case 1:
				m.Put(k, i)
				ref[k] = i
			case 2:
				b := NewBatch[uint64, int](4)
				for j := 0; j < 4; j++ {
					kk := uint64(rng.IntN(150))
					if rng.IntN(3) == 0 {
						b.Remove(kk)
						delete(ref, kk)
					} else {
						b.Put(kk, i*10+j)
						ref[kk] = i*10 + j
					}
				}
				// Later ops on the same key win in both models.
				m.BatchUpdate(b)
			default:
				v, ok := m.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || (ok && v != want) {
					t.Fatalf("seed %d: Get(%d) = %d,%v want %d,%v", seed, k, v, ok, want, wantOK)
				}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("seed %d: Len = %d want %d", seed, m.Len(), len(ref))
		}
	}
}

func TestOptionsHashIndexDisabled(t *testing.T) {
	runReferenceBattery(t, func() *Map[uint64, int] {
		return New[uint64, int](Options[uint64]{DisableHashIndex: true, FixedRevisionSize: 4})
	})
}

func TestOptionsFixedRevisionSizes(t *testing.T) {
	for _, size := range []int{1, 2, 7, 64, 300} {
		size := size
		runReferenceBattery(t, func() *Map[uint64, int] {
			return New[uint64, int](Options[uint64]{FixedRevisionSize: size})
		})
	}
}

func TestOptionsCounterClock(t *testing.T) {
	runReferenceBattery(t, func() *Map[uint64, int] {
		return New[uint64, int](Options[uint64]{Clock: tsc.NewCounter(), FixedRevisionSize: 4})
	})
}

func TestOptionsCustomHash(t *testing.T) {
	// A terrible hash must not affect correctness (only the fallback
	// binary-search rate).
	runReferenceBattery(t, func() *Map[uint64, int] {
		return New[uint64, int](Options[uint64]{Hash: func(uint64) uint16 { return 3 }, FixedRevisionSize: 8})
	})
}

func TestOptionsDefaultsApplied(t *testing.T) {
	o := Options[uint64]{}.withDefaults()
	if o.Clock == nil || o.Hash == nil {
		t.Fatal("defaults missing")
	}
	if o.MinRevisionSize != DefaultMinRevisionSize || o.MaxRevisionSize != DefaultMaxRevisionSize {
		t.Fatalf("size defaults: %d..%d", o.MinRevisionSize, o.MaxRevisionSize)
	}
	f := Options[uint64]{FixedRevisionSize: 42}.withDefaults()
	if f.MinRevisionSize != 42 || f.MaxRevisionSize != 42 {
		t.Fatalf("fixed size not pinned: %d..%d", f.MinRevisionSize, f.MaxRevisionSize)
	}
	weird := Options[uint64]{MinRevisionSize: 50, MaxRevisionSize: 10}.withDefaults()
	if weird.MaxRevisionSize < weird.MinRevisionSize {
		t.Fatalf("inverted bounds survived: %d..%d", weird.MinRevisionSize, weird.MaxRevisionSize)
	}
}

// TestOptionsEdgeCases pins the documented degradation of invalid sizing
// options: after withDefaults the invariant 0 < Min <= Max always holds,
// and FixedRevisionSize > 0 overrides the bounds entirely.
func TestOptionsEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		in       Options[uint64]
		min, max int
	}{
		{"negative min", Options[uint64]{MinRevisionSize: -5}, DefaultMinRevisionSize, DefaultMaxRevisionSize},
		{"negative max", Options[uint64]{MaxRevisionSize: -5}, DefaultMinRevisionSize, DefaultMaxRevisionSize},
		{"both negative", Options[uint64]{MinRevisionSize: -1, MaxRevisionSize: -1}, DefaultMinRevisionSize, DefaultMaxRevisionSize},
		{"inverted within default", Options[uint64]{MinRevisionSize: 50, MaxRevisionSize: 10}, 50, DefaultMaxRevisionSize},
		{"inverted above default", Options[uint64]{MinRevisionSize: 500, MaxRevisionSize: 10}, 500, 500},
		{"fixed overrides bounds", Options[uint64]{FixedRevisionSize: 7, MinRevisionSize: 100, MaxRevisionSize: 200}, 7, 7},
		{"negative fixed ignored", Options[uint64]{FixedRevisionSize: -3}, DefaultMinRevisionSize, DefaultMaxRevisionSize},
	}
	for _, c := range cases {
		o := c.in.withDefaults()
		if o.MinRevisionSize != c.min || o.MaxRevisionSize != c.max {
			t.Errorf("%s: got %d..%d, want %d..%d", c.name, o.MinRevisionSize, o.MaxRevisionSize, c.min, c.max)
		}
		if o.MinRevisionSize <= 0 || o.MaxRevisionSize < o.MinRevisionSize {
			t.Errorf("%s: invariant 0 < Min <= Max violated: %d..%d", c.name, o.MinRevisionSize, o.MaxRevisionSize)
		}
	}
}

// TestFixedRevisionSizeOverridesAutoscaler proves the override reaches the
// policy, not just the stored bounds: whatever the read/update moving
// averages say, the target stays pinned.
func TestFixedRevisionSizeOverridesAutoscaler(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 8, MinRevisionSize: 100, MaxRevisionSize: 200})
	var readHeavy, writeHeavy revStats
	readHeavy.pReads.Store(floatBits(0.99))
	readHeavy.pUpdates.Store(floatBits(0.01))
	writeHeavy.pReads.Store(floatBits(0.01))
	writeHeavy.pUpdates.Store(floatBits(0.99))
	for _, s := range []*revStats{&readHeavy, &writeHeavy} {
		if got := m.targetSize(s); got != 8 {
			t.Fatalf("targetSize = %d with FixedRevisionSize 8", got)
		}
	}
	// Without the pin, the same stats must move the target inside the
	// configured bounds.
	a := New[uint64, int](Options[uint64]{MinRevisionSize: 100, MaxRevisionSize: 200})
	lo, hi := a.targetSize(&writeHeavy), a.targetSize(&readHeavy)
	if lo < 100 || hi > 200 || lo >= hi {
		t.Fatalf("autoscaler targets %d..%d outside bounds or not monotone", lo, hi)
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func TestCounterClockConcurrent(t *testing.T) {
	// The atomic-counter oracle (ablation A2) must also be correct under
	// concurrency — it is slower, not wrong.
	m := New[uint64, int](Options[uint64]{Clock: tsc.NewCounter(), FixedRevisionSize: 4})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 5))
			for i := 0; i < 2000; i++ {
				k := uint64(rng.IntN(64))
				switch rng.IntN(3) {
				case 0:
					m.Remove(k)
				case 1:
					m.Put(k, i)
				default:
					m.Get(k)
				}
			}
		}()
	}
	wg.Wait()
	checkPartition(t, m)
}

func TestDefaultHashCoversIntegerKinds(t *testing.T) {
	// Each instantiation must produce a usable hash (non-panicking,
	// lookup-consistent).
	if h := defaultHash[int]()(42); h == defaultHash[int]()(42) {
		// deterministic
	} else {
		t.Fatal("int hash nondeterministic")
	}
	_ = defaultHash[int8]()(1)
	_ = defaultHash[int16]()(1)
	_ = defaultHash[int32]()(1)
	_ = defaultHash[int64]()(1)
	_ = defaultHash[uint]()(1)
	_ = defaultHash[uint8]()(1)
	_ = defaultHash[uint16]()(1)
	_ = defaultHash[uint32]()(1)
	_ = defaultHash[uintptr]()(1)
	_ = defaultHash[float32]()(1.5)
	_ = defaultHash[float64]()(1.5)
	if defaultHash[string]()("abc") != defaultHash[string]()("abc") {
		t.Fatal("string hash nondeterministic")
	}
}
