package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tsc"
)

// TestGCKeepsExactlySnapshotBoundaries: with registered snapshots at known
// manual-clock versions, the GC must retain precisely head + one boundary
// revision per snapshot and drop every intermediate revision.
func TestGCKeepsExactlySnapshotBoundaries(t *testing.T) {
	clk := tsc.NewManual(10)
	m := New[uint64, int](Options[uint64]{Clock: clk})

	m.Put(1, 0)
	snapA := m.Snapshot() // sees value 0
	defer snapA.Close()
	clk.Advance(100)
	for i := 1; i <= 5; i++ {
		m.Put(1, i)
		clk.Advance(100)
	}
	snapB := m.Snapshot() // sees value 5
	defer snapB.Close()
	clk.Advance(100)
	for i := 6; i <= 10; i++ {
		m.Put(1, i)
		clk.Advance(100)
	}

	// Chain now needed: head (10), boundary for snapB (5), boundary for
	// snapA (0). The intermediates 1-4 and 6-9 must be gone, with slack
	// for the horizon rule (revisions newer than the last GC's clock
	// read survive one extra round).
	m.Put(1, 11) // one more GC pass at a later clock value
	nd := m.findNodeForKey(1)
	depth := 0
	for r := nd.head.Load(); r != nil; r = r.next.Load() {
		depth++
	}
	if depth > 4 {
		t.Fatalf("revision list depth %d; want <= 4 (head + two boundaries + horizon slack)", depth)
	}
	if v, _ := snapA.Get(1); v != 0 {
		t.Fatalf("snapA = %d want 0", v)
	}
	if v, _ := snapB.Get(1); v != 5 {
		t.Fatalf("snapB = %d want 5", v)
	}
	if v, _ := m.Get(1); v != 11 {
		t.Fatalf("newest = %d want 11", v)
	}
}

// TestGCHorizonProtectsConcurrentRegistration hammers the exact race fixed
// by the GC horizon: snapshots registered while GCs are in flight must
// never lose the revision they are entitled to read.
func TestGCHorizonProtectsConcurrentRegistration(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	for i := 0; i < 100; i++ {
		m.Put(uint64(i), i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 3))
			for i := 0; !stop.Load(); i++ {
				m.Put(uint64(rng.IntN(100)), i)
			}
		}()
	}
	for round := 0; round < 3000; round++ {
		s := m.Snapshot()
		n := 0
		s.All(func(uint64, int) bool { n++; return true })
		if n != 100 {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("round %d: snapshot saw %d/100 keys (GC raced registration)", round, n)
		}
		s.Close()
	}
	stop.Store(true)
	wg.Wait()
}

// TestPruneRevListPendingHead is the regression test for pruning under a
// still-pending head: batchGC can load a node head installed by a
// concurrent writer whose final version is not assigned yet. That final
// version will be a future clock read — at least |optimistic| but
// unbounded above — so a snapshot published between |optimistic| and the
// eventual final version still reads the newest committed revision below
// the pending head. Treating |optimistic| as the kept frontier used to
// let the tail-drop free exactly that revision.
func TestPruneRevListPendingHead(t *testing.T) {
	mkRev := func(ver int64, next *revision[uint64, int]) *revision[uint64, int] {
		r := &revision[uint64, int]{kind: revRegular}
		r.version.Store(ver)
		r.next.Store(next)
		return r
	}
	r0 := mkRev(5, nil)
	r1 := mkRev(10, r0)
	pending := mkRev(-22, r1) // optimistic 22; will finalize at some ver >= 22

	// A snapshot at 25 (> |optimistic|, <= the pending head's eventual
	// final version) and a horizon far past everything: r1 must survive —
	// it is what the snapshot reads until the head commits at > 25.
	m := New[uint64, int]()
	m.pruneRevList(pending, 1000, []int64{25}, math.MaxInt64, nil)
	if got := pending.next.Load(); got != r1 {
		t.Fatalf("pending head's committed successor pruned: next = %v, want r1", got)
	}
	// r0 is unreachable for every current and future reader (anything
	// >= 10 reads r1 or newer, and no snapshot is below 10): it must go.
	if got := r1.next.Load(); got != nil {
		t.Fatalf("garbage below the committed boundary survived: r1.next = %v", got)
	}
}

// TestScanSplitMergeSameRevisionNoDoubleCount is the regression test for
// the bulk-resolution double-count: take a snapshot, then force a split and
// a merge-back of the same node so the merge revision's two branches both
// bottom out in the same pre-split revision. The snapshot scan must emit
// that revision's entries exactly once.
func TestScanSplitMergeSameRevisionNoDoubleCount(t *testing.T) {
	clk := tsc.NewManual(10)
	m := New[uint64, int](Options[uint64]{Clock: clk, FixedRevisionSize: 4})
	for i := uint64(0); i < 8; i++ {
		m.Put(i, int(i))
	}
	clk.Advance(10)
	snap := m.Snapshot()
	defer snap.Close()
	clk.Advance(10)

	// Force splits: puts grow some node past the fixed size.
	for i := uint64(100); i < 130; i++ {
		m.Put(i, int(i))
	}
	// Force merges back: removals shrink the new nodes below target/4.
	for i := uint64(100); i < 130; i++ {
		m.Remove(i)
	}
	// More churn on the original keys to deepen the branchy history.
	for i := uint64(0); i < 8; i++ {
		m.Put(i, 1000+int(i))
	}

	var got []uint64
	snap.All(func(k uint64, v int) bool {
		if int(k) != v {
			t.Fatalf("snapshot sees post-snapshot value at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 8 {
		t.Fatalf("snapshot scan emitted %d entries, want 8: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan out of order (duplicate emission): %v", got)
		}
	}
}

// TestScanDoubleCountStress is the randomized version: snapshots taken
// before heavy split/merge churn must always re-scan to identical, strictly
// ascending sequences.
func TestScanDoubleCountStress(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xdead))
		m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
		for i := uint64(0); i < 64; i++ {
			m.Put(i, int(i))
		}
		snap := m.Snapshot()
		for i := 0; i < 500; i++ {
			k := uint64(rng.IntN(200))
			if rng.IntN(2) == 0 {
				m.Put(k, i)
			} else {
				m.Remove(k)
			}
		}
		count := func() int {
			n := 0
			var prev uint64
			first := true
			snap.All(func(k uint64, _ int) bool {
				if !first && k <= prev {
					t.Fatalf("seed %d: out of order/duplicate at %d", seed, k)
				}
				prev, first = k, false
				n++
				return true
			})
			return n
		}
		if n1, n2 := count(), count(); n1 != 64 || n2 != 64 {
			t.Fatalf("seed %d: scans saw %d then %d entries, want 64", seed, n1, n2)
		}
		snap.Close()
	}
}
