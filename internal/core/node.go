package core

import (
	"cmp"
	"sync/atomic"
)

// nodeKind distinguishes ordinary nodes from the temporary split node that
// bridges steps (c)-(e) of a node split (§3.3.1, Figure 3).
type nodeKind uint8

const (
	nodeNormal nodeKind = iota
	nodeTempSplit
)

// node is an element of the lowest-level linked list. It manages the key
// range [key, next.key); the base node's key is conceptually -infinity
// (isBase). head points at the newest revision; next at the successor,
// which may temporarily be a temp-split node.
type node[K cmp.Ordered, V any] struct {
	kind   nodeKind
	isBase bool
	key    K

	head atomic.Pointer[revision[K, V]]
	next atomic.Pointer[node[K, V]]

	// terminated is set after the node has been unlinked by a completed
	// merge; traversals physically remove terminated nodes they pass.
	terminated atomic.Bool

	// gcBusy is the chain-prune trylock: at most one pruner walks this
	// node's revision list at a time, which makes unlinks definitive and
	// payload retirement sound (see performGC). It stays meaningful after
	// termination — the merge's right-branch pruning takes it to exclude
	// the stale GC of a pre-merge update. gcWant is the handoff flag: an
	// updater that found the lock busy records that the chain has grown,
	// and the holder re-prunes from the fresh head before quitting —
	// otherwise a holder descheduled mid-prune would let the chain grow
	// unpruned for a whole scheduling round.
	gcBusy atomic.Bool
	gcWant atomic.Bool

	// Temp-split-node fields (immutable after construction): parent is
	// the node undergoing the split; lrev its left split revision. The
	// temp-split node's own head is pinned to the right split revision so
	// concurrent lookups in the upper half-range can find their entries
	// and help (§3.3.1).
	parent *node[K, V]
	lrev   *revision[K, V]
}

// covers reports whether key falls in this node's range from below, i.e.
// node.key <= key (the upper bound is checked by the traversal against the
// successor). The base node covers every key.
func (n *node[K, V]) covers(key K) bool {
	return n.isBase || n.key <= key
}
