package core

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// deepChain builds a revision chain >= depth long on one node: repeated
// puts to one key never split, and a snapshot taken after every put pins
// every boundary, so the inner GC can prune nothing. It returns the
// per-update (version, value) history and the pinning snapshots.
func deepChain(t *testing.T, m *Map[uint64, uint64], key uint64, depth int) (vers []int64, vals []uint64, snaps []*Snapshot[uint64, uint64]) {
	t.Helper()
	for i := 0; i < depth; i++ {
		v := m.PutVersioned(key, uint64(i))
		vers = append(vers, v)
		vals = append(vals, uint64(i))
		snaps = append(snaps, m.Snapshot())
	}
	return vers, vals, snaps
}

// chainLen counts the left chain under the node covering key.
func chainLen(m *Map[uint64, uint64], key uint64) int {
	nd := m.findNodeForKey(key)
	n := 0
	for r := nd.head.Load(); r != nil; r = r.next.Load() {
		n++
	}
	return n
}

// oracleAt returns the value key had at version v according to the
// recorded history: the value of the newest update with version <= v.
func oracleAt(vers []int64, vals []uint64, v int64) (uint64, bool) {
	i := searchKeys(vers, v)
	// searchKeys returns first index with vers[i] >= v; we want the last
	// index with vers[i] <= v.
	if i < len(vers) && vers[i] == v {
		return vals[i], true
	}
	if i == 0 {
		return 0, false
	}
	return vals[i-1], true
}

// TestDeepChainSeekOracle checks get(key, snap) against the recorded
// history on a >= 1024-deep chain, at every recorded version and at
// versions between them, both before any pruning and after a mid-chain
// prune has dropped half the boundaries.
func TestDeepChainSeekOracle(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "seek"
		if disable {
			name = "linear"
		}
		t.Run(name, func(t *testing.T) {
			const depth = 1500
			m := New[uint64, uint64](Options[uint64]{DisableChainSeek: disable})
			vers, vals, snaps := deepChain(t, m, 7, depth)
			if got := chainLen(m, 7); got < 1024 {
				t.Fatalf("chain length = %d, want >= 1024", got)
			}

			check := func(stage string) {
				t.Helper()
				for i, s := range snaps {
					if s == nil {
						continue
					}
					got, ok := s.Get(7)
					want, wantOK := oracleAt(vers, vals, s.Version())
					if ok != wantOK || got != want {
						t.Fatalf("%s: snapshot %d (ver %d): got (%d,%v), oracle (%d,%v)",
							stage, i, s.Version(), got, ok, want, wantOK)
					}
				}
				// Versions between and beyond the recorded points, read
				// through live registered snapshots (get at an arbitrary
				// unregistered version has no GC protection).
				for i, s := range snaps {
					if s == nil {
						continue
					}
					got, ok := m.get(7, s.Version())
					want, wantOK := oracleAt(vers, vals, s.Version())
					if ok != wantOK || got != want {
						t.Fatalf("%s: direct get at ver %d (snap %d): got (%d,%v), oracle (%d,%v)",
							stage, s.Version(), i, got, ok, want, wantOK)
					}
				}
			}
			check("pre-prune")

			// Mid-prune: release every other snapshot and force a GC pass
			// on the node (any update to it prunes). The surviving
			// snapshots must still read their exact boundaries.
			for i := range snaps {
				if i%2 == 1 {
					snaps[i].Close()
					snaps[i] = nil
				}
			}
			m.Put(7, 1<<40)
			check("mid-prune")

			if !disable {
				st := m.Stats()
				if st.SeekSamples > 0 {
					avg := float64(st.SeekSteps) / float64(st.SeekSamples)
					if avg > 128 {
						t.Fatalf("mean sampled seek depth %.1f on a %d-deep chain; skips not engaged?", avg, depth)
					}
				}
			}
		})
	}
}

// TestSkipPointerInvariants walks a deep chain and checks every back-skip
// pointer: the target must be reachable from its owner by pure next steps
// without crossing a merge revision (whose branches are key-dependent),
// and versions along the chain must not increase.
func TestSkipPointerInvariants(t *testing.T) {
	const depth = 600
	m := New[uint64, uint64]()
	_, _, snaps := deepChain(t, m, 3, depth)
	defer func() {
		for _, s := range snaps {
			s.Close()
		}
	}()
	nd := m.findNodeForKey(3)
	var chain []*revision[uint64, uint64]
	index := map[*revision[uint64, uint64]]int{}
	for r := nd.head.Load(); r != nil; r = r.next.Load() {
		index[r] = len(chain)
		chain = append(chain, r)
	}
	seen := 0
	for i, r := range chain {
		s := r.skip
		if s == nil {
			continue
		}
		seen++
		if sv, rv := s.ver(), r.ver(); sv > 0 && rv > 0 && sv > rv {
			t.Fatalf("skip target version %d above owner version %d", sv, rv)
		}
		j, live := index[s]
		if !live {
			// The target was pruned off the live chain; a seek only
			// follows it when the target is invisible, in which case the
			// frozen path below it rejoins the live boundaries (see
			// seek.go). Nothing further to assert structurally.
			continue
		}
		if j <= i {
			t.Fatalf("skip target of pos %d points upward (chain index %d -> %d)", r.skipPos, i, j)
		}
		for _, c := range chain[i+1 : j] {
			if c.kind == revMerge {
				t.Fatalf("skip pointer at pos %d crosses a merge revision", r.skipPos)
			}
		}
	}
	if seen < depth/2 {
		t.Fatalf("only %d of ~%d revisions carry skip pointers", seen, depth)
	}
}

// TestDeepChainSeekRace exercises seeks while the chain is concurrently
// grown and pruned: writers hammer one node's keys, a churner opens and
// closes snapshots (so GC alternately keeps and drops boundaries), and
// readers verify that values read through live snapshots never violate
// the per-key monotonic history. Run with -race.
func TestDeepChainSeekRace(t *testing.T) {
	m := New[uint64, uint64]()
	const iters = 300
	var stop atomic.Bool
	var bg, wg sync.WaitGroup

	// Writer: monotone values per key on a tiny key range (one node).
	bg.Add(1)
	go func() {
		defer bg.Done()
		for i := uint64(1); !stop.Load(); i++ {
			m.Put(i%4, i)
		}
	}()

	// Churner: short-lived snapshots keep the GC's kept-set shifting.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for !stop.Load() {
			s := m.Snapshot()
			s.Close()
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed))
			for i := 0; i < iters; i++ {
				s := m.Snapshot()
				key := rng.Uint64() % 4
				v1, ok1 := s.Get(key)
				v2, ok2 := s.Get(key) // snapshot reads must be stable
				if ok1 != ok2 || v1 != v2 {
					t.Errorf("snapshot read not repeatable: (%d,%v) then (%d,%v)", v1, ok1, v2, ok2)
				}
				s.Close()
			}
		}(uint64(r + 1))
	}
	wg.Wait() // readers finish first; then stop the background load
	stop.Store(true)
	bg.Wait()
}

// TestIndexLaneRepair simulates the total loss of the skip-index lanes (a
// lost index insertion is the same failure, smaller) and checks that (a)
// the base list alone still serves every read correctly — the lanes are an
// accelerator, not ground truth — and (b) continued updates re-index the
// structure: new nodes from later splits re-populate the lanes.
func TestIndexLaneRepair(t *testing.T) {
	m := New[uint64, uint64](Options[uint64]{FixedRevisionSize: 4})
	const n = 2000
	for i := uint64(0); i < n; i++ {
		m.Put(i*2, i)
	}

	// Lose every index insertion at once.
	m.topIndex.Store(&indexHead[uint64, uint64]{level: 1})

	// Seeks fall back to the base list and stay correct.
	for i := uint64(0); i < n; i += 17 {
		if v, ok := m.Get(i * 2); !ok || v != i {
			t.Fatalf("Get(%d) after lane loss = (%d,%v), want (%d,true)", i*2, v, ok, i)
		}
		if _, ok := m.Get(i*2 + 1); ok {
			t.Fatalf("Get(%d) after lane loss reported a phantom key", i*2+1)
		}
	}
	count := 0
	m.Range(0, n*2, func(uint64, uint64) bool { count++; return true })
	if count != n {
		t.Fatalf("Range after lane loss visited %d entries, want %d", count, n)
	}

	// Eventually re-indexed: later splits insert their new nodes into the
	// lanes (probabilistically, so allow a generous number of updates).
	indexed := func() int {
		items := 0
		for h := m.topIndex.Load(); h != nil; h = h.down {
			for it := h.right.Load(); it != nil; it = it.right.Load() {
				items++
			}
		}
		return items
	}
	for i := uint64(0); i < 64*1024; i++ {
		m.Put(n*2+i, i)
		if i%256 == 0 && indexed() >= 8 {
			break
		}
	}
	if got := indexed(); got < 8 {
		t.Fatalf("index lanes hold %d items after sustained updates; repair not happening", got)
	}
}
