package core

import (
	"cmp"
	"sort"
	"sync/atomic"

	"repro/internal/tsc"
)

// Batch accumulates put and remove operations to be applied atomically by
// Map.BatchUpdate: either every operation in the batch is visible to a
// reader (or snapshot) or none is. A Batch is not safe for concurrent
// mutation; build it on one goroutine, then hand it to BatchUpdate.
type Batch[K cmp.Ordered, V any] struct {
	ops []batchEntry[K, V]
}

// NewBatch returns an empty batch. sizeHint pre-allocates capacity.
func NewBatch[K cmp.Ordered, V any](sizeHint int) *Batch[K, V] {
	return &Batch[K, V]{ops: make([]batchEntry[K, V], 0, sizeHint)}
}

// Put schedules key to be set to val.
func (b *Batch[K, V]) Put(key K, val V) *Batch[K, V] {
	b.ops = append(b.ops, batchEntry[K, V]{key: key, val: val})
	return b
}

// Remove schedules key to be deleted. Removing an absent key is permitted
// and has no effect beyond the atomicity guarantee (§3.3.3, point 5).
func (b *Batch[K, V]) Remove(key K) *Batch[K, V] {
	b.ops = append(b.ops, batchEntry[K, V]{key: key, remove: true})
	return b
}

// Len returns the number of scheduled operations.
func (b *Batch[K, V]) Len() int { return len(b.ops) }

// Reset empties the batch, keeping its capacity for reuse.
func (b *Batch[K, V]) Reset() *Batch[K, V] {
	b.ops = b.ops[:0]
	return b
}

type batchEntry[K cmp.Ordered, V any] struct {
	key    K
	val    V
	remove bool
}

// batchDesc is the batch descriptor (§3.3.3): the shared record through
// which every revision created by one batch update reads its version
// number, making all of the batch's effects visible atomically when the
// final version is assigned. remaining counts the entries not yet applied;
// helpers process entries strictly from the highest key downward (rule 3).
type batchDesc[K cmp.Ordered, V any] struct {
	version   atomic.Int64
	entries   []batchEntry[K, V] // ascending by key, unique keys
	remaining atomic.Int64

	// group, when non-nil, makes this descriptor one part of a cross-map
	// batch (MultiBatchUpdate): the version lives in the group's shared
	// cell, not in the version field above. After the group commits, the
	// final version is cached into the version field and group is cleared
	// (releaseGroup), so revisions surviving in the shards' histories stop
	// pinning every sibling shard's entries and maps.
	group atomic.Pointer[batchGroup[K, V]]
}

// ver reads the descriptor's current version number, indirecting through
// the group's shared cell for cross-map batches.
func (d *batchDesc[K, V]) ver() int64 {
	if g := d.group.Load(); g != nil {
		return g.version.Load()
	}
	return d.version.Load()
}

// batchGroup coordinates one cross-map batch update (MultiBatchUpdate). It
// generalizes the descriptor's visible/commit split across maps: all parts
// share one version cell, and the shared version cannot turn final until
// every part has installed its revisions on its map. Any thread that
// encounters one pending revision of the group helps drive every part to
// completion, so the whole multi-map update is non-blocking.
//
// parts are sorted by the maps' canonical order (Map.seq), and every
// helper applies them in that order. This extends the single-map
// descending-key rule to a global processing order (map seq ascending,
// keys descending within a map), which keeps concurrent groups' help
// chains acyclic: a group blocked at position p has installed pending
// revisions only at positions before p, so the group it helps — whose
// pending revision sits at p — has remaining work strictly after p and can
// never need this group's own positions. Without the canonical order, two
// groups applying the same maps in opposite orders each hold the revision
// the other needs and mutual helping recurses forever.
type batchGroup[K cmp.Ordered, V any] struct {
	version atomic.Int64
	clock   tsc.Clock
	parts   []groupPart[K, V]
}

// groupPart binds one map to its share of a cross-map batch.
type groupPart[K cmp.Ordered, V any] struct {
	m    *Map[K, V]
	desc *batchDesc[K, V]
}

// finalize is the group's commit protocol. Phase one (visible): every
// part's entries are applied, installing pending revisions on all maps.
// Phase two (commit): one final version number is CASed into the shared
// cell — the single linearization point of the whole cross-map update.
// Idempotent; raced finalizers agree on the version the first CAS set.
//
// The atomicity argument mirrors the single-map one (see applyBatchDesc):
// because the final version is drawn from the shared clock only after every
// part's revisions are installed, a snapshot that read its version before
// some part was installed observes a commit version at or above its own cut
// and excludes the batch on every map, while a snapshot whose version
// covers the commit finds the batch's revisions present on every map.
func (g *batchGroup[K, V]) finalize() int64 {
	if v := g.version.Load(); v > 0 {
		return v
	}
	for _, p := range g.parts {
		p.m.applyBatchDesc(p.desc)
	}
	return commitVersion(&g.version, g.clock)
}

// MapBatch names one map's share of a MultiBatchUpdate.
type MapBatch[K cmp.Ordered, V any] struct {
	Map   *Map[K, V]
	Batch *Batch[K, V]
}

// MultiBatchUpdate applies the given per-map batches as one atomic,
// linearizable update spanning all of the maps: no reader or snapshot on
// any of the maps can observe a state where some parts have taken effect
// and others have not. All maps must share the same Clock (as the shards of
// a sharded frontend do); MultiBatchUpdate panics otherwise. Parts aimed at
// the same map are coalesced (later parts win on key conflicts), and empty
// parts are ignored; a call whose live operations all land on one map
// degenerates to that map's ordinary BatchUpdate.
func MultiBatchUpdate[K cmp.Ordered, V any](parts ...MapBatch[K, V]) {
	MultiBatchUpdateVersioned(parts...)
}

// MultiBatchUpdateVersioned is MultiBatchUpdate, but additionally reports
// the final version number the whole cross-map batch committed at (see
// PutVersioned for what the version means; here one version covers every
// map). A call with no live operations reports version zero.
func MultiBatchUpdateVersioned[K cmp.Ordered, V any](parts ...MapBatch[K, V]) int64 {
	// Coalesce parts aimed at the same map: two pending descriptors of one
	// group on one map would block each other (nothing can stack on a
	// pending revision, and neither part could finalize without the other).
	type acc struct {
		m     *Map[K, V]
		ops   []batchEntry[K, V]
		owned bool // ops is a private copy, not an alias of a caller's Batch
	}
	var accs []acc
outer:
	for _, p := range parts {
		if p.Map == nil || p.Batch == nil || len(p.Batch.ops) == 0 {
			continue
		}
		for i := range accs {
			if accs[i].m == p.Map {
				// First duplicate of this map: copy before appending so
				// the caller's Batch backing array is never written. In
				// the common all-distinct case ops stay aliased — they
				// are only read, and normalizeBatch copies anyway.
				if !accs[i].owned {
					cp := make([]batchEntry[K, V], len(accs[i].ops), len(accs[i].ops)+len(p.Batch.ops))
					copy(cp, accs[i].ops)
					accs[i].ops = cp
					accs[i].owned = true
				}
				accs[i].ops = append(accs[i].ops, p.Batch.ops...)
				continue outer
			}
		}
		accs = append(accs, acc{m: p.Map, ops: p.Batch.ops})
	}
	if len(accs) == 0 {
		return 0
	}
	if len(accs) == 1 {
		return accs[0].m.BatchUpdateVersioned(&Batch[K, V]{ops: accs[0].ops})
	}
	// Canonical map order: see the batchGroup comment for why this is
	// required for progress, not a nicety.
	sort.Slice(accs, func(i, j int) bool { return accs[i].m.seq < accs[j].m.seq })
	clock := accs[0].m.clock
	g := &batchGroup[K, V]{clock: clock}
	for _, a := range accs {
		if a.m.clock != clock {
			panic("core: MultiBatchUpdate requires all maps to share one Clock")
		}
		desc := &batchDesc[K, V]{entries: normalizeBatch(a.ops)}
		desc.group.Store(g)
		desc.remaining.Store(int64(len(desc.entries)))
		g.parts = append(g.parts, groupPart[K, V]{m: a.m, desc: desc})
	}
	g.version.Store(-(clock.Read() + 1))
	// Pin the reclamation epoch across application and GC: the group's
	// helpers read (and retire) payload buffers on every involved map, and
	// the epoch domain is process-global for exactly this reason.
	slot, epoch := epochEnter()
	fin := g.finalize()
	for _, p := range g.parts {
		p.m.batchGC(p.desc)
	}
	epochExit(slot, epoch)
	// Release: cache the final version in every descriptor, then drop the
	// cross-map references. A batch revision surviving in some shard's
	// history afterwards pins only its own descriptor's entries — parity
	// with single-map batches — instead of every sibling shard's entries
	// and map. Readers racing this see either the group (whose version is
	// final) or the cached version; each descriptor's version is stored
	// strictly before its group pointer is cleared.
	for _, p := range g.parts {
		p.desc.version.Store(fin)
		p.desc.group.Store(nil)
	}
	return fin
}

// BatchUpdate applies all of b's operations atomically, in one linearizable
// step. If the same key appears multiple times in the batch, the last
// scheduled operation wins. The batch object may be reused afterwards.
//
// Like put and remove, a batch update never aborts; concurrent threads that
// encounter its pending revisions help drive it to completion.
func (m *Map[K, V]) BatchUpdate(b *Batch[K, V]) {
	m.BatchUpdateVersioned(b)
}

// BatchUpdateVersioned is BatchUpdate, but additionally reports the final
// version number the batch committed at — the batch's single linearization
// point (see PutVersioned for what the version means). An empty batch
// performs no update and reports version zero.
func (m *Map[K, V]) BatchUpdateVersioned(b *Batch[K, V]) int64 {
	entries := normalizeBatch(b.ops)
	if len(entries) == 0 {
		return 0
	}
	slot, epoch := epochEnter()
	defer epochExit(slot, epoch)
	desc := &batchDesc[K, V]{entries: entries}
	desc.version.Store(-(m.clock.Read() + 1))
	desc.remaining.Store(int64(len(entries)))
	m.applyBatchDesc(desc)
	ver := m.finalizeDesc(desc)
	m.batchGC(desc)
	return ver
}

// normalizeBatch sorts ops ascending by key, deduplicating so the last
// operation on each key wins.
func normalizeBatch[K cmp.Ordered, V any](ops []batchEntry[K, V]) []batchEntry[K, V] {
	if len(ops) == 0 {
		return nil
	}
	out := make([]batchEntry[K, V], len(ops))
	copy(out, ops)
	sort.SliceStable(out, func(i, j int) bool { return out[i].key < out[j].key })
	w := 0
	for i := 1; i < len(out); i++ {
		if out[i].key == out[w].key {
			out[w] = out[i] // later op wins
		} else {
			w++
			out[w] = out[i]
		}
	}
	return out[:w+1]
}

// helpBatch drives the batch update that created desc to completion:
// application, then version assignment. For a cross-map batch every part of
// the group is driven, so helping a single pending revision completes the
// whole multi-map update. Idempotent; any thread that encounters one of the
// batch's pending revisions runs it (§3.3.3, point 4).
func (m *Map[K, V]) helpBatch(desc *batchDesc[K, V]) {
	if g := desc.group.Load(); g != nil {
		g.finalize()
		return
	}
	m.applyBatchDesc(desc)
	m.finalizeDesc(desc)
}

// applyBatchDesc applies desc's entries node by node from the highest
// remaining key downward (rule 3). It installs revisions but never assigns
// the final version number — that is the caller's (or the group's) commit
// step.
//
// Progress accounting: desc.remaining is only a starting hint (it never
// advances past unapplied entries, so starting from it is sound, and a
// stale high value merely revisits nodes that are skipped). Correctness
// rests on three facts, not on the counter:
//
//  1. A node holding one of this batch's revisions is frozen — nothing can
//     stack on a pending revision (rule 2), so the revision stays at head,
//     the node cannot split or take part in a merge, and key coverage of
//     its range cannot move — until the batch finalizes. Hence
//     "head.desc == desc" is a sound and complete applied-here test while
//     the descriptor is pending.
//  2. Each application takes every remaining entry >= the node's key, so a
//     node is applied at most once and that application covers all of the
//     batch's entries in its range.
//  3. Re-reading desc.version after loading the head closes the stale-
//     helper race: if the version is still optimistic at that point, any
//     earlier application that could affect this node's range froze its
//     node through the present, so this find either sees that node (and
//     skips) or the head CAS fails against the intervening change.
func (m *Map[K, V]) applyBatchDesc(desc *batchDesc[K, V]) {
	cursor := desc.remaining.Load() // entries[cursor:] are already applied
	for cursor > 0 {
		topKey := desc.entries[cursor-1].key
		nd := m.findNodeForKey(topKey)
		if nd.kind == nodeTempSplit {
			m.helpSplit(nd.parent, nd.lrev)
			continue
		}
		nextNode := nd.next.Load()
		headRev := nd.head.Load()
		if desc.ver() > 0 {
			return // the batch linearized while we were looking
		}
		if nd.terminated.Load() {
			continue
		}
		if headRev.kind == revTerminator {
			m.helpMergeTerminator(headRev)
			continue
		}
		lo := batchRunStart(desc.entries[:cursor], nd)
		if headRev.desc == desc {
			// Already applied here (fact 1); skip the node's run.
			desc.remaining.CompareAndSwap(cursor, lo)
			cursor = lo
			continue
		}
		if headRev.pending() {
			m.helpPendingUpdate(headRev)
			continue
		}
		if nx := nd.next.Load(); nx != nextNode || (nx != nil && nx.covers(topKey)) {
			continue
		}

		run := desc.entries[lo:cursor]
		pl := m.applyBatchPl(headRev, run)

		if m.shouldSplit(headRev, len(pl.keys)) {
			lsr := m.makeSplitPair(nd, headRev, pl, 0, desc)
			if nd.head.CompareAndSwap(headRev, lsr) {
				m.helpSplit(nd, lsr)
				desc.remaining.CompareAndSwap(cursor, lo)
				cursor = lo
			} else {
				m.recycleSplitPair(lsr)
			}
			continue
		}
		nr := m.newRevisionPl(revRegular, pl)
		nr.desc = desc
		nr.next.Store(headRev)
		m.linkSkip(nr, headRev)
		m.carryUpdateStats(&nr.stats, &headRev.stats)
		if nd.head.CompareAndSwap(headRev, nr) {
			desc.remaining.CompareAndSwap(cursor, lo)
			cursor = lo
		} else {
			// Never published: the payload goes straight back to the pool.
			m.rec.recycleNow(pl)
		}
	}
}

// batchRunStart returns the index of the first remaining entry that falls
// in nd's key range; entries below it belong to lower nodes.
func batchRunStart[K cmp.Ordered, V any](entries []batchEntry[K, V], nd *node[K, V]) int64 {
	if nd.isBase {
		return 0
	}
	return int64(searchEntries(entries, nd.key))
}

// searchEntries returns the first index i with entries[i].key >= key (the
// inlined binary search of searchKeys, over batch entries).
func searchEntries[K cmp.Ordered, V any](entries []batchEntry[K, V], key K) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		h := int(uint(lo+hi) >> 1)
		if entries[h].key < key {
			lo = h + 1
		} else {
			hi = h
		}
	}
	return lo
}

// finalizeDesc assigns the batch's final version number once every entry
// has been applied — the batch's single linearization point. Cross-map
// descriptors route through the group, which first makes sure every sibling
// part has been applied.
func (m *Map[K, V]) finalizeDesc(desc *batchDesc[K, V]) int64 {
	if g := desc.group.Load(); g != nil {
		return g.finalize()
	}
	return commitVersion(&desc.version, m.clock)
}

// commitVersion is the shared commit dance of finalizeDesc and
// batchGroup.finalize: turn the optimistic (negative) version in cell
// into a final one drawn from clock. The final version must not run ahead
// of the machine-wide clock (waitUntil, Algorithm 1 lines 66-68), so if
// the optimistic value exceeds the clock the clock is first driven up to
// it. Idempotent; raced committers agree on the version the first CAS
// set.
func commitVersion(cell *atomic.Int64, clock tsc.Clock) int64 {
	v := cell.Load()
	if v > 0 {
		return v
	}
	fin := clock.Read()
	if o := -v; o > fin {
		fin = o
		clock.ReadAtLeast(fin)
	}
	if cell.CompareAndSwap(v, fin) {
		return fin
	}
	return cell.Load()
}

// batchGC prunes the revision lists of the nodes the batch touched, one
// find per distinct node, mirroring the per-update GC of single-key
// operations (including the per-node prune trylock that makes payload
// retirement sound; a busy node is simply skipped).
func (m *Map[K, V]) batchGC(desc *batchDesc[K, V]) {
	i := 0
	for i < len(desc.entries) {
		key := desc.entries[i].key
		nd := m.findNodeForKey(key)
		if nd.kind == nodeTempSplit {
			m.helpSplit(nd.parent, nd.lrev)
			continue
		}
		head := nd.head.Load()
		if head.kind != revTerminator {
			// Full handshake (want flag, catch-up rounds, deferred
			// retirement) — an inline trylock here would drop the
			// catch-up promise pruneNodeChain's skippers rely on.
			m.pruneNodeChain(nd, head)
		}
		// Skip every entry this node covers.
		next := nd.next.Load()
		if next == nil {
			return
		}
		i = searchEntries(desc.entries, next.key)
	}
}
