package core

import (
	"cmp"
	"sort"
	"sync/atomic"
)

// Batch accumulates put and remove operations to be applied atomically by
// Map.BatchUpdate: either every operation in the batch is visible to a
// reader (or snapshot) or none is. A Batch is not safe for concurrent
// mutation; build it on one goroutine, then hand it to BatchUpdate.
type Batch[K cmp.Ordered, V any] struct {
	ops []batchEntry[K, V]
}

// NewBatch returns an empty batch. sizeHint pre-allocates capacity.
func NewBatch[K cmp.Ordered, V any](sizeHint int) *Batch[K, V] {
	return &Batch[K, V]{ops: make([]batchEntry[K, V], 0, sizeHint)}
}

// Put schedules key to be set to val.
func (b *Batch[K, V]) Put(key K, val V) *Batch[K, V] {
	b.ops = append(b.ops, batchEntry[K, V]{key: key, val: val})
	return b
}

// Remove schedules key to be deleted. Removing an absent key is permitted
// and has no effect beyond the atomicity guarantee (§3.3.3, point 5).
func (b *Batch[K, V]) Remove(key K) *Batch[K, V] {
	b.ops = append(b.ops, batchEntry[K, V]{key: key, remove: true})
	return b
}

// Len returns the number of scheduled operations.
func (b *Batch[K, V]) Len() int { return len(b.ops) }

type batchEntry[K cmp.Ordered, V any] struct {
	key    K
	val    V
	remove bool
}

// batchDesc is the batch descriptor (§3.3.3): the shared record through
// which every revision created by one batch update reads its version
// number, making all of the batch's effects visible atomically when the
// final version is assigned. remaining counts the entries not yet applied;
// helpers process entries strictly from the highest key downward (rule 3).
type batchDesc[K cmp.Ordered, V any] struct {
	version   atomic.Int64
	entries   []batchEntry[K, V] // ascending by key, unique keys
	remaining atomic.Int64
}

// BatchUpdate applies all of b's operations atomically, in one linearizable
// step. If the same key appears multiple times in the batch, the last
// scheduled operation wins. The batch object may be reused afterwards.
//
// Like put and remove, a batch update never aborts; concurrent threads that
// encounter its pending revisions help drive it to completion.
func (m *Map[K, V]) BatchUpdate(b *Batch[K, V]) {
	entries := normalizeBatch(b.ops)
	if len(entries) == 0 {
		return
	}
	desc := &batchDesc[K, V]{entries: entries}
	desc.version.Store(-(m.clock.Read() + 1))
	desc.remaining.Store(int64(len(entries)))
	m.helpBatch(desc)
	m.batchGC(desc)
}

// normalizeBatch sorts ops ascending by key, deduplicating so the last
// operation on each key wins.
func normalizeBatch[K cmp.Ordered, V any](ops []batchEntry[K, V]) []batchEntry[K, V] {
	if len(ops) == 0 {
		return nil
	}
	out := make([]batchEntry[K, V], len(ops))
	copy(out, ops)
	sort.SliceStable(out, func(i, j int) bool { return out[i].key < out[j].key })
	w := 0
	for i := 1; i < len(out); i++ {
		if out[i].key == out[w].key {
			out[w] = out[i] // later op wins
		} else {
			w++
			out[w] = out[i]
		}
	}
	return out[:w+1]
}

// helpBatch drives a batch update to completion: apply revisions node by
// node from the highest remaining key downward (rule 3), then assign the
// final version number to the descriptor. Idempotent; any thread that
// encounters one of the batch's pending revisions runs it (§3.3.3, point 4).
//
// Progress accounting: desc.remaining is only a starting hint (it never
// advances past unapplied entries, so starting from it is sound, and a
// stale high value merely revisits nodes that are skipped). Correctness
// rests on three facts, not on the counter:
//
//  1. A node holding one of this batch's revisions is frozen — nothing can
//     stack on a pending revision (rule 2), so the revision stays at head,
//     the node cannot split or take part in a merge, and key coverage of
//     its range cannot move — until the batch finalizes. Hence
//     "head.desc == desc" is a sound and complete applied-here test while
//     the descriptor is pending.
//  2. Each application takes every remaining entry >= the node's key, so a
//     node is applied at most once and that application covers all of the
//     batch's entries in its range.
//  3. Re-reading desc.version after loading the head closes the stale-
//     helper race: if the version is still optimistic at that point, any
//     earlier application that could affect this node's range froze its
//     node through the present, so this find either sees that node (and
//     skips) or the head CAS fails against the intervening change.
func (m *Map[K, V]) helpBatch(desc *batchDesc[K, V]) {
	cursor := desc.remaining.Load() // entries[cursor:] are already applied
	for cursor > 0 {
		topKey := desc.entries[cursor-1].key
		nd := m.findNodeForKey(topKey)
		if nd.kind == nodeTempSplit {
			m.helpSplit(nd.parent, nd.lrev)
			continue
		}
		nextNode := nd.next.Load()
		headRev := nd.head.Load()
		if desc.version.Load() > 0 {
			return // the batch linearized while we were looking
		}
		if nd.terminated.Load() {
			continue
		}
		if headRev.kind == revTerminator {
			m.helpMergeTerminator(headRev)
			continue
		}
		lo := batchRunStart(desc.entries[:cursor], nd)
		if headRev.desc == desc {
			// Already applied here (fact 1); skip the node's run.
			desc.remaining.CompareAndSwap(cursor, lo)
			cursor = lo
			continue
		}
		if headRev.pending() {
			m.helpPendingUpdate(headRev)
			continue
		}
		if nx := nd.next.Load(); nx != nextNode || (nx != nil && nx.covers(topKey)) {
			continue
		}

		run := desc.entries[lo:cursor]
		keys, vals := headRev.applyBatch(run)

		if m.shouldSplit(headRev, len(keys)) {
			lsr := m.makeSplitPair(nd, headRev, keys, vals, 0, desc)
			if nd.head.CompareAndSwap(headRev, lsr) {
				m.helpSplit(nd, lsr)
				desc.remaining.CompareAndSwap(cursor, lo)
				cursor = lo
			}
			continue
		}
		nr := m.newRevision(revRegular, keys, vals)
		nr.desc = desc
		nr.next.Store(headRev)
		m.carryUpdateStats(&nr.stats, &headRev.stats)
		if nd.head.CompareAndSwap(headRev, nr) {
			desc.remaining.CompareAndSwap(cursor, lo)
			cursor = lo
		}
	}
	m.finalizeDesc(desc)
}

// batchRunStart returns the index of the first remaining entry that falls
// in nd's key range; entries below it belong to lower nodes.
func batchRunStart[K cmp.Ordered, V any](entries []batchEntry[K, V], nd *node[K, V]) int64 {
	if nd.isBase {
		return 0
	}
	key := nd.key
	return int64(sort.Search(len(entries), func(i int) bool { return entries[i].key >= key }))
}

// finalizeDesc assigns the batch's final version number once every entry
// has been applied — the batch's single linearization point.
func (m *Map[K, V]) finalizeDesc(desc *batchDesc[K, V]) int64 {
	v := desc.version.Load()
	if v > 0 {
		return v
	}
	fin := m.clock.Read()
	if o := -v; o > fin {
		fin = o
		m.clock.ReadAtLeast(fin)
	}
	if desc.version.CompareAndSwap(v, fin) {
		return fin
	}
	return desc.version.Load()
}

// batchGC prunes the revision lists of the nodes the batch touched, one
// find per distinct node, mirroring the per-update GC of single-key
// operations.
func (m *Map[K, V]) batchGC(desc *batchDesc[K, V]) {
	horizon := m.clock.Read()
	snaps := m.snaps.versions()
	i := 0
	for i < len(desc.entries) {
		key := desc.entries[i].key
		nd := m.findNodeForKey(key)
		if nd.kind == nodeTempSplit {
			m.helpSplit(nd.parent, nd.lrev)
			continue
		}
		head := nd.head.Load()
		if head.kind != revTerminator {
			pruneRevList(head, horizon, snaps)
		}
		// Skip every entry this node covers.
		next := nd.next.Load()
		if next == nil {
			return
		}
		bound := next.key
		e := desc.entries
		i = sort.Search(len(e), func(j int) bool { return e[j].key >= bound })
	}
}
