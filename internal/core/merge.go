package core

// helpMergeTerminator drives a node merge to completion after the merge
// terminator mt has been installed at the head of the node being merged
// away (Figure 4, steps c-e). Idempotent; any number of helpers may run it
// concurrently. On return the merge revision exists, the node is unlinked
// and terminated, and the merge has linearized.
func (m *Map[K, V]) helpMergeTerminator(mt *revision[K, V]) {
	o := mt.node
	for mt.mergeRev.Load() == nil {
		// Find the node directly preceding o (§3.3.1: merges happen
		// towards lower keys; the base node never merges, so o is
		// never the base and a predecessor always exists).
		pred := m.findPredOf(o.key)
		if pred.kind == nodeTempSplit {
			m.helpSplit(pred.parent, pred.lrev)
			continue
		}
		headRev := pred.head.Load()
		if pred.terminated.Load() {
			continue
		}
		if headRev.kind == revTerminator {
			// The predecessor is itself being merged away; help it
			// first. Helping chains move strictly towards lower
			// keys and bottom out at the base node.
			m.helpMergeTerminator(headRev)
			continue
		}
		if headRev.pending() {
			m.helpPendingUpdate(headRev)
			continue
		}
		if pred.next.Load() != o {
			// Either the structure changed (re-find) or the merge
			// already completed and o was unlinked (the loop
			// condition will observe mergeRev).
			continue
		}

		// Step c: build the merge revision joining both revision
		// lists. It inherits the entries of pred's head and of o's
		// list at termination time, with the remove operation that
		// triggered the merge applied. The remove-clone is pure
		// scratch (the union copies it), so it cycles straight back
		// through the pool.
		oKeys, oVals, oHashes := mt.prevRev.keys, mt.prevRev.vals, mt.prevRev.hashes
		var scratch *payload[K, V]
		if mt.remHasKey {
			scratch = m.cloneRemove(mt.prevRev, mt.remKey)
			oKeys, oVals, oHashes = scratch.keys, scratch.vals, scratch.hashes
		}
		pl := m.unionPayload(headRev.keys, headRev.vals, headRev.hashes, oKeys, oVals, oHashes)
		m.rec.recycleNow(scratch)
		mr := m.newRevisionPl(revMerge, pl)
		mr.rightKey = o.key
		mr.mt = mt
		mr.node = pred
		mr.next.Store(headRev)         // left successor: pred's old list
		mr.rightNext.Store(mt.prevRev) // right successor: o's old list
		mr.version.Store(mt.version.Load())
		m.carryUpdateStats(&mr.stats, &headRev.stats)
		if pred.head.CompareAndSwap(headRev, mr) {
			mt.mergeRev.CompareAndSwap(nil, mr)
			break
		}
		// CAS failed: mr was never published, so its payload is
		// immediately reusable. Maybe another helper installed the
		// merge revision under a different head; adopt it if so.
		m.rec.recycleNow(mr.pl)
		if h := pred.head.Load(); h.kind == revMerge && h.mt == mt {
			mt.mergeRev.CompareAndSwap(nil, h)
		}
	}
	m.completeMerge(mt)
}

// completeMerge performs steps d-e of Figure 4: unlink the merged node from
// the index, mark it terminated, and assign the merge's final version
// number (the linearization point of the remove that triggered it).
func (m *Map[K, V]) completeMerge(mt *revision[K, V]) {
	mr := mt.mergeRev.Load()
	o := mt.node
	pred := mr.node
	if !o.terminated.Load() {
		// Step d: unlink o. Nothing can be inserted between pred and
		// o while the merge revision is pending (pred cannot split
		// and o cannot change), so a CAS failure means another
		// helper already unlinked o.
		pred.next.CompareAndSwap(o, o.next.Load())
		o.terminated.Store(true)
	}
	m.finalize(mr)
}

// findMergeRevision resolves the merge revision a terminator was completed
// with, helping the merge first if necessary (used by snapshot reads that
// must observe the merge's effect, Algorithm 2 line 45).
func (m *Map[K, V]) findMergeRevision(mt *revision[K, V]) *revision[K, V] {
	m.helpMergeTerminator(mt)
	return mt.mergeRev.Load()
}
