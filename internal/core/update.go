package core

// Put sets the value for key, overwriting any previous value. Put is
// linearizable; its linearization point is the assignment of the final
// version number to the revision it creates (§3.4).
func (m *Map[K, V]) Put(key K, val V) { m.PutVersioned(key, val) }

// PutVersioned is Put, but additionally reports the final version number
// the update committed at. The version ties the update to the snapshot
// order: every snapshot whose version is >= the returned value observes
// the update, every older snapshot does not. The durability layer relies
// on this to tag write-ahead-log records so that replay agrees with a
// checkpoint's snapshot cut.
func (m *Map[K, V]) PutVersioned(key K, val V) int64 {
	slot, epoch := epochEnter()
	defer epochExit(slot, epoch)
	var newRev *revision[K, V]
	var gcNode *node[K, V]
	for {
		nd := m.findNodeForKey(key)
		if nd.kind == nodeTempSplit {
			m.helpSplit(nd.parent, nd.lrev) // Figure 3e-f
			continue
		}
		nextNode := nd.next.Load()
		headRev := nd.head.Load()
		if nd.terminated.Load() {
			continue // ready to unlink; find again
		}
		if headRev.kind == revTerminator {
			m.helpMergeTerminator(headRev) // Figure 4c-e
			continue
		}
		if headRev.pending() {
			m.helpPendingUpdate(headRev)
			continue
		}
		// A concurrent split may have completed between the find and
		// the head load, in which case key now belongs to the new
		// node: re-validate coverage (Algorithm 1, line 15).
		if nx := nd.next.Load(); nx != nextNode || (nx != nil && nx.covers(key)) {
			continue
		}

		optVer := -(m.clock.Read() + 1)
		_, present := headRev.find(key)
		newLen := headRev.size()
		if !present {
			newLen++
		}
		if m.shouldSplit(headRev, newLen) {
			lsr := m.makePutSplit(nd, headRev, key, val, optVer)
			if nd.head.CompareAndSwap(headRev, lsr) {
				m.helpSplit(nd, lsr) // Figure 3c-f
				newRev, gcNode = lsr, nd
				break
			}
			m.recycleSplitPair(lsr)
			continue
		}
		pl := m.clonePut(headRev, key, val)
		nr := m.newRevisionPl(revRegular, pl)
		nr.version.Store(optVer)
		nr.next.Store(headRev)
		m.linkSkip(nr, headRev)
		m.carryUpdateStats(&nr.stats, &headRev.stats)
		if nd.head.CompareAndSwap(headRev, nr) {
			newRev, gcNode = nr, nd
			break
		}
		// CAS failed: nobody saw our attempt; the payload was never
		// published and goes straight back to the pool (§3.3.2).
		m.rec.recycleNow(pl)
	}
	ver := m.finalize(newRev)
	m.performGC(gcNode, newRev)
	return ver
}

// Remove deletes key and reports whether it was present. Like put, its
// linearization point is the final version-number assignment; a remove of
// an absent key linearizes at the head-revision read that observed absence.
func (m *Map[K, V]) Remove(key K) bool {
	_, present := m.RemoveVersioned(key)
	return present
}

// RemoveVersioned is Remove, but additionally reports the final version
// number the remove committed at (see PutVersioned for what the version
// means). A remove of an absent key performs no update and reports version
// zero.
func (m *Map[K, V]) RemoveVersioned(key K) (int64, bool) {
	slot, epoch := epochEnter()
	defer epochExit(slot, epoch)
	var newRev *revision[K, V]
	var gcNode *node[K, V]
	for {
		nd := m.findNodeForKey(key)
		if nd.kind == nodeTempSplit {
			m.helpSplit(nd.parent, nd.lrev)
			continue
		}
		nextNode := nd.next.Load()
		headRev := nd.head.Load()
		if nd.terminated.Load() {
			continue
		}
		if headRev.kind == revTerminator {
			m.helpMergeTerminator(headRev)
			continue
		}
		if headRev.pending() {
			m.helpPendingUpdate(headRev)
			continue
		}
		if nx := nd.next.Load(); nx != nextNode || (nx != nil && nx.covers(key)) {
			continue
		}
		if _, present := headRev.find(key); !present {
			return 0, false // nothing to do (Algorithm 1, line 39)
		}

		optVer := -(m.clock.Read() + 1)
		newLen := headRev.size() - 1
		if m.shouldMerge(nd, headRev, newLen) {
			mt := &revision[K, V]{kind: revTerminator, node: nd, prevRev: headRev, remKey: key, remHasKey: true}
			mt.version.Store(optVer)
			if nd.head.CompareAndSwap(headRev, mt) {
				m.helpMergeTerminator(mt) // Figure 4c-e
				newRev = mt.mergeRev.Load()
				gcNode = newRev.node // the predecessor the node merged into
				break
			}
			continue
		}
		pl := m.cloneRemove(headRev, key)
		nr := m.newRevisionPl(revRegular, pl)
		nr.version.Store(optVer)
		nr.next.Store(headRev)
		m.linkSkip(nr, headRev)
		m.carryUpdateStats(&nr.stats, &headRev.stats)
		if nd.head.CompareAndSwap(headRev, nr) {
			newRev, gcNode = nr, nd
			break
		}
		m.rec.recycleNow(pl)
	}
	ver := m.finalize(newRev)
	m.performGC(gcNode, newRev)
	return ver, true
}

// finalize assigns the final version number to a (non-batch) revision: the
// paper's lines 29-31 of Algorithm 1. It is idempotent and safe to race;
// the first trySetVersion CAS wins and is the operation's linearization
// point. Right split revisions share their sibling's version field, so
// finalization always targets the left sibling.
func (m *Map[K, V]) finalize(rev *revision[K, V]) int64 {
	if rev == nil {
		return 0
	}
	if rev.desc != nil {
		return m.finalizeDesc(rev.desc)
	}
	if rev.kind == revRightSplit {
		rev = rev.sibling
	}
	v := rev.version.Load()
	if v > 0 {
		return v
	}
	fin := m.clock.Read()
	if o := -v; o > fin {
		// Ensure the invariant fin >= |optVer| (§3.2) and wait until
		// the clock catches up (waitUntil; with a nanosecond clock
		// this branch is effectively never taken, as the paper
		// observes).
		fin = o
		m.clock.ReadAtLeast(fin)
	}
	if rev.version.CompareAndSwap(v, fin) {
		return fin
	}
	return rev.version.Load()
}

// helpPendingUpdate completes the update operation that created rev, using
// the same logic as put, remove or batch update (§3.3.2). On return the
// operation has linearized (its final version number is set).
func (m *Map[K, V]) helpPendingUpdate(rev *revision[K, V]) {
	if rev.desc != nil {
		m.helpBatch(rev.desc)
		return
	}
	switch rev.kind {
	case revRegular:
		m.finalize(rev)
	case revLeftSplit:
		m.helpSplit(rev.node, rev)
		m.finalize(rev)
	case revRightSplit:
		m.helpSplit(rev.sibling.node, rev.sibling)
		m.finalize(rev.sibling)
	case revMerge:
		m.completeMerge(rev.mt)
	case revTerminator:
		m.helpMergeTerminator(rev)
	}
}

// makePutSplit builds the pair of split revisions for a put that triggers a
// node split: the update is folded into one of the halves so no revision is
// created unnecessarily (§3.3.1). It returns the left split revision, ready
// to be CASed in; the right sibling is reachable through it.
func (m *Map[K, V]) makePutSplit(nd *node[K, V], headRev *revision[K, V], key K, val V, optVer int64) *revision[K, V] {
	combined := m.clonePut(headRev, key, val)
	return m.makeSplitPair(nd, headRev, combined, optVer, nil)
}

// makeSplitPair builds left/right split revisions over the given combined
// payload, which it consumes (the halves are copied out and the combined
// buffer recycled as scratch — it was never published). Exactly one of
// optVer (single-key ops) and desc (batch updates) carries the version.
func (m *Map[K, V]) makeSplitPair(nd *node[K, V], headRev *revision[K, V], combined *payload[K, V], optVer int64, desc *batchDesc[K, V]) *revision[K, V] {
	// Both split revisions will reference headRev as their successor, so
	// headRev's tail becomes reachable from two chains: mark it before the
	// installing CAS can publish the second entry point, so no pruner ever
	// retires at or below it. A failed CAS removes its own mark in
	// recycleSplitPair; writes below the head stay exclusive either way,
	// because pruners reach that region only under this node's gcBusy
	// (right-node pruners recurse through the ownership barrier, gc.go).
	headRev.sharedCnt.Add(1)
	lpl, rpl, splitKey := m.splitPayloads(combined)
	m.rec.recycleNow(combined)
	lsr := m.newRevisionPl(revLeftSplit, lpl)
	rsr := m.newRevisionPl(revRightSplit, rpl)
	lsr.sibling, rsr.sibling = rsr, lsr
	lsr.splitKey, rsr.splitKey = splitKey, splitKey
	lsr.node = nd
	lsr.desc, rsr.desc = desc, desc
	if desc == nil {
		lsr.version.Store(optVer)
		// rsr's version is read through the sibling (single
		// linearization point for both halves).
	}
	lsr.next.Store(headRev)
	rsr.next.Store(headRev)
	m.carryUpdateStats(&lsr.stats, &headRev.stats)
	m.carryUpdateStats(&rsr.stats, &headRev.stats)
	return lsr
}

// recycleSplitPair returns both halves' payloads of a split pair whose
// installing CAS failed — neither revision was ever published — and
// removes this attempt's shared mark from the would-be successor (a
// concurrent attempt's mark, if any, stays: the count only reaches zero
// when no attempt against that head is in flight or succeeded).
func (m *Map[K, V]) recycleSplitPair(lsr *revision[K, V]) {
	if headRev := lsr.next.Load(); headRev != nil {
		headRev.sharedCnt.Add(-1)
	}
	m.rec.recycleNow(lsr.pl)
	m.rec.recycleNow(lsr.sibling.pl)
}
