package core

import (
	"cmp"
	"math"
)

// newestVersion makes get() read the most recent committed state
// (Algorithm 2: NEWEST_VERSION).
const newestVersion = math.MaxInt64

// Get returns the most recent value stored for key. Get is linearizable:
// it returns the value of the last update whose final version number was
// assigned before Get's own linearization point, and never observes a
// pending (not yet linearized) update.
func (m *Map[K, V]) Get(key K) (V, bool) {
	return m.get(key, newestVersion)
}

// get implements both lookup variants of Algorithm 2. Reads help complete
// pending structure modifications they encounter (temp-split nodes, merge
// terminators) but — on the newest-version path — never regular updates.
// The epoch pin brackets every payload access: revisions pruned and
// retired concurrently stay readable until the pin is released (epoch.go).
func (m *Map[K, V]) get(key K, snap int64) (V, bool) {
	slot, epoch, rnd := epochEnterRand()
	defer epochExit(slot, epoch)
	var headRev *revision[K, V]
	for {
		nd := m.findNodeForKey(key)
		if nd.kind == nodeTempSplit {
			m.helpSplit(nd.parent, nd.lrev) // Figure 3e-f
			continue
		}
		nextNode := nd.next.Load()
		headRev = nd.head.Load()
		if headRev.kind == revTerminator {
			m.helpMergeTerminator(headRev) // Figure 4c-e
			continue
		}
		// Re-validate that the node still covers key: a concurrent
		// split may have moved key's range to a new node between the
		// find and the head load (Algorithm 2, lines 14-15).
		if nx := nd.next.Load(); nx != nextNode || (nx != nil && nx.covers(key)) {
			continue
		}
		break
	}
	var rev *revision[K, V]
	if snap == newestVersion {
		rev = m.getNewestRevision(headRev, key)
	} else {
		var steps int
		rev, steps = m.seekRevision(headRev, key, snap)
		m.noteSeek(steps, rnd)
	}
	m.noteRead(headRev, rnd)
	if rev == nil {
		var zero V
		return zero, false
	}
	return rev.get(key, m.opts.Hash)
}

// getNewestRevision walks the revision list and returns the first revision
// from a completed update (positive version). Merge revisions route the
// walk into the branch that owns key (Algorithm 2, lines 25-34).
func (m *Map[K, V]) getNewestRevision(headRev *revision[K, V], key K) *revision[K, V] {
	rev := headRev
	for rev != nil {
		if rev.ver() > 0 {
			return redirectSplit(rev, key)
		}
		if rev.kind == revMerge && key >= rev.rightKey {
			rev = rev.rightNext.Load()
		} else {
			rev = rev.next.Load()
		}
	}
	return nil
}

// redirectSplit routes a lookup that resolved to a split revision into the
// sibling that owns key. The two halves share one version (the left
// sibling's field), so whichever half the walk lands on, the sibling is
// equally visible; only the payload differs.
func redirectSplit[K cmp.Ordered, V any](rev *revision[K, V], key K) *revision[K, V] {
	switch rev.kind {
	case revLeftSplit:
		if key >= rev.splitKey {
			return rev.sibling
		}
	case revRightSplit:
		if key < rev.splitKey {
			return rev.sibling
		}
	}
	return rev
}
