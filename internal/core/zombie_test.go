package core

import (
	"testing"
)

// plantZombie fabricates the ABA state of §3.3.1: a temp-split node from a
// long-completed split re-inserted into the list by a stale helper. It
// performs a real split (so a genuine left/right split revision pair with
// splitDone set exists), waits for completion, then splices a fresh
// temp-split node referencing that stale pair after nd.
func plantZombie(t *testing.T, m *Map[uint64, int]) (nd *node[uint64, int], zombie *node[uint64, int]) {
	t.Helper()
	// Build enough entries that a put forces a split of the base node.
	for i := uint64(0); i < 8; i++ {
		m.Put(i*10, int(i))
	}
	// Find a node whose head chain contains a completed left split
	// revision (the split that created its successor).
	for n := m.base; n != nil; n = n.next.Load() {
		for r := n.head.Load(); r != nil; r = r.next.Load() {
			if r.kind == revLeftSplit && r.splitDone.Load() && !r.pending() {
				// Re-insert a zombie for this stale split.
				z := &node[uint64, int]{kind: nodeTempSplit, key: r.splitKey, parent: r.node, lrev: r}
				z.head.Store(r.sibling)
				succ := r.node.next.Load()
				z.next.Store(succ)
				if r.node.next.CompareAndSwap(succ, z) {
					return r.node, z
				}
			}
		}
	}
	t.Skip("no completed split revision retained; structure GC'd it")
	return nil, nil
}

func zombieMap() *Map[uint64, int] {
	// A snapshot pin keeps old split revisions alive so plantZombie can
	// find one.
	return New[uint64, int](Options[uint64]{FixedRevisionSize: 2})
}

func TestZombieTempSplitRecoveredByGet(t *testing.T) {
	m := zombieMap()
	pin := m.Snapshot()
	defer pin.Close()
	nd, zombie := plantZombie(t, m)
	_ = nd
	// Lookups for keys in the zombie's claimed range must return current
	// values, not the stale split revision's.
	for i := uint64(0); i < 8; i++ {
		if v, ok := m.Get(i * 10); !ok || v != int(i) {
			t.Fatalf("Get(%d) through zombie = %d,%v", i*10, v, ok)
		}
	}
	// Point operations route past a zombie to the real node (which has
	// the same key) without needing to retract it; a scan's bound
	// validation actively removes it. Verify the scan-side cleanup.
	m.All(func(uint64, int) bool { return true })
	for n := m.base; n != nil; n = n.next.Load() {
		if n == zombie {
			t.Fatal("zombie temp-split node still linked after a scan")
		}
	}
	checkPartition(t, m)
}

func TestZombieTempSplitRecoveredByScan(t *testing.T) {
	m := zombieMap()
	pin := m.Snapshot()
	defer pin.Close()
	plantZombie(t, m)
	// A fresh snapshot scan must see exactly the current entries, once
	// each, in order — the zombie must neither clamp nor contribute.
	var got []uint64
	m.All(func(k uint64, v int) bool {
		if v != int(k/10) {
			t.Fatalf("scan sees stale value at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 8 {
		t.Fatalf("scan saw %d entries, want 8: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("scan unsorted through zombie: %v", got)
		}
	}
}

func TestZombieTempSplitRecoveredByUpdate(t *testing.T) {
	m := zombieMap()
	pin := m.Snapshot()
	defer pin.Close()
	_, zombie := plantZombie(t, m)
	// Updates in the zombie's range must land in the real node.
	m.Put(zombie.key, 4242)
	if v, ok := m.Get(zombie.key); !ok || v != 4242 {
		t.Fatalf("update through zombie lost: %d,%v", v, ok)
	}
	if !m.Remove(zombie.key) {
		t.Fatal("remove through zombie failed")
	}
	m.All(func(uint64, int) bool { return true }) // scan retracts the zombie
	checkPartition(t, m)
}

func TestZombieTempSplitRecoveredByBatch(t *testing.T) {
	m := zombieMap()
	pin := m.Snapshot()
	defer pin.Close()
	_, zombie := plantZombie(t, m)
	b := NewBatch[uint64, int](3).
		Put(zombie.key, 1).
		Put(zombie.key+1, 2).
		Remove(zombie.key + 2)
	m.BatchUpdate(b)
	if v, _ := m.Get(zombie.key); v != 1 {
		t.Fatalf("batch through zombie: %d", v)
	}
	if v, _ := m.Get(zombie.key + 1); v != 2 {
		t.Fatalf("batch through zombie: %d", v)
	}
	m.All(func(uint64, int) bool { return true }) // scan retracts the zombie
	checkPartition(t, m)
}
