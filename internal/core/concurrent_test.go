package core

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// stress parameters are kept modest so -race runs stay fast; the loops are
// long enough that goroutine preemption interleaves every protocol phase.
const (
	stressGoroutines = 8
	stressOps        = 3000
	stressKeySpace   = 256
)

// TestConcurrentPutGetRemoveMatchesReference runs a mixed workload against
// the map and a mutex-protected reference applying the same per-key
// last-writer-wins operations, then compares final states. Per-key
// determinism is achieved by sharding keys across goroutines.
func TestConcurrentPutGetRemoveMatchesReference(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 8})
	type final struct {
		val     int
		present bool
	}
	finals := make([]final, stressKeySpace)
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 7))
			for i := 0; i < stressOps; i++ {
				// Shard: goroutine g owns keys with k % stressGoroutines == g.
				k := uint64(rng.IntN(stressKeySpace/stressGoroutines))*stressGoroutines + uint64(g)
				switch rng.IntN(4) {
				case 0:
					m.Remove(k)
					finals[k] = final{}
				case 3:
					m.Get(k)
				default:
					v := g*stressOps + i
					m.Put(k, v)
					finals[k] = final{val: v, present: true}
				}
			}
		}()
	}
	wg.Wait()
	for k, want := range finals {
		got, ok := m.Get(uint64(k))
		if ok != want.present || (ok && got != want.val) {
			t.Fatalf("key %d: got %d,%v want %d,%v", k, got, ok, want.val, want.present)
		}
	}
	checkPartition(t, m)
}

// TestConcurrentContendedKeysNoCorruption hammers a tiny key space from all
// goroutines (no sharding): final values are nondeterministic but must be
// ones that some thread actually wrote, and the structure must stay sound.
func TestConcurrentContendedKeysNoCorruption(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	const keys = 8
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 13))
			for i := 0; i < stressOps; i++ {
				k := uint64(rng.IntN(keys))
				switch rng.IntN(3) {
				case 0:
					m.Remove(k)
				default:
					m.Put(k, int(k)*1_000_000+g*stressOps+i)
				}
			}
		}()
	}
	wg.Wait()
	for k := uint64(0); k < keys; k++ {
		if v, ok := m.Get(k); ok {
			if v/1_000_000 != int(k) {
				t.Fatalf("key %d holds a value written for another key: %d", k, v)
			}
		}
	}
	checkPartition(t, m)
}

// TestConcurrentSnapshotStability verifies the core snapshot guarantee: a
// snapshot taken at any moment returns identical results no matter how many
// times it is re-read while updates storm past it.
func TestConcurrentSnapshotStability(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 8})
	for i := 0; i < 200; i++ {
		m.Put(uint64(i), i)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		writers.Add(1)
		go func() {
			defer writers.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 99))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.IntN(300))
				if rng.IntN(4) == 0 {
					m.Remove(k)
				} else {
					m.Put(k, i)
				}
			}
		}()
	}

	for round := 0; round < 40; round++ {
		s := m.Snapshot()
		read := func() (n int, sum uint64) {
			s.All(func(k uint64, v int) bool {
				n++
				sum += k*31 + uint64(v)
				return true
			})
			return
		}
		n1, sum1 := read()
		n2, sum2 := read()
		if n1 != n2 || sum1 != sum2 {
			s.Close()
			close(stop)
			writers.Wait()
			t.Fatalf("snapshot unstable: (%d,%d) then (%d,%d)", n1, sum1, n2, sum2)
		}
		s.Close()
	}
	close(stop)
	writers.Wait()
}

// TestConcurrentBatchAtomicity: each batch writes the same stamp to a fixed
// set of scattered keys (forcing multi-node application). Snapshot readers
// must never observe two different stamps — half-applied batches are the
// bug this test hunts.
func TestConcurrentBatchAtomicity(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	// Scatter the batch keys so they land in different nodes.
	batchKeys := []uint64{5, 60, 115, 170, 225, 280}
	for i := 0; i < 320; i++ {
		m.Put(uint64(i), -1)
	}
	b0 := NewBatch[uint64, int](len(batchKeys))
	for _, k := range batchKeys {
		b0.Put(k, 0)
	}
	m.BatchUpdate(b0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stamp atomic.Int64
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := int(stamp.Add(1))
				b := NewBatch[uint64, int](len(batchKeys))
				for _, k := range batchKeys {
					b.Put(k, st)
				}
				m.BatchUpdate(b)
			}
		}()
	}
	// One goroutine keeps unrelated keys churning so splits/merges hit
	// the same nodes the batches use.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(4, 4))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.IntN(320))
			skip := false
			for _, bk := range batchKeys {
				if k == bk {
					skip = true
				}
			}
			if skip {
				continue
			}
			if rng.IntN(5) == 0 {
				m.Remove(k)
			} else {
				m.Put(k, i)
			}
		}
	}()

	for round := 0; round < 300; round++ {
		s := m.Snapshot()
		var seen = -2
		consistent := true
		for _, k := range batchKeys {
			v, ok := s.Get(k)
			if !ok {
				consistent = false
				break
			}
			if seen == -2 {
				seen = v
			} else if v != seen {
				consistent = false
				break
			}
		}
		s.Close()
		if !consistent {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: torn batch observed (stamp %d)", round, seen)
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentBatchAtomicityViaScan is the scan-side variant: a range
// scan must see one single stamp across all batch keys.
func TestConcurrentBatchAtomicityViaScan(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	batchKeys := []uint64{10, 50, 90, 130, 170}
	isBatchKey := func(k uint64) bool { return k >= 10 && k <= 170 && (k-10)%40 == 0 }
	for i := 0; i < 200; i++ {
		m.Put(uint64(i), -1)
	}
	b0 := NewBatch[uint64, int](len(batchKeys))
	for _, k := range batchKeys {
		b0.Put(k, 0)
	}
	m.BatchUpdate(b0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stamp atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := int(stamp.Add(1))
				b := NewBatch[uint64, int](len(batchKeys))
				for _, k := range batchKeys {
					b.Put(k, st)
				}
				m.BatchUpdate(b)
			}
		}()
	}

	for round := 0; round < 300; round++ {
		var got []int
		m.Range(0, 200, func(k uint64, v int) bool {
			if isBatchKey(k) {
				got = append(got, v)
			}
			return true
		})
		if len(got) != len(batchKeys) {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: scan saw %d/%d batch keys", round, len(got), len(batchKeys))
		}
		for _, v := range got[1:] {
			if v != got[0] {
				close(stop)
				wg.Wait()
				t.Fatalf("round %d: torn batch in scan: %v", round, got)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentBatchesIntersecting runs overlapping batches from many
// goroutines (the hardest case for the descending-key protocol: helpers
// complete each other's batches) and checks final-state plausibility plus
// structural soundness.
func TestConcurrentBatchesIntersecting(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 21))
			for i := 0; i < 300; i++ {
				b := NewBatch[uint64, int](12)
				for j := 0; j < 12; j++ {
					k := uint64(rng.IntN(150))
					if rng.IntN(4) == 0 {
						b.Remove(k)
					} else {
						b.Put(k, g*1000000+i)
					}
				}
				m.BatchUpdate(b)
			}
		}()
	}
	wg.Wait()
	checkPartition(t, m)
	// Every surviving value must be a value some goroutine actually wrote.
	m.All(func(k uint64, v int) bool {
		if v/1000000 >= stressGoroutines || v%1000000 >= 300 {
			t.Fatalf("key %d holds impossible value %d", k, v)
		}
		return true
	})
}

// TestConcurrentGetMonotonicPerKey checks a linearizability corollary: with
// one writer increasing a key's value monotonically, no reader may ever
// observe the value decrease.
func TestConcurrentGetMonotonicPerKey(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	const key = 77
	// Surround the key with churn to force splits/merges around it.
	for i := 0; i < 64; i++ {
		m.Put(uint64(i), 0)
	}
	m.Put(key, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < 20000; i++ {
			m.Put(key, i)
		}
		close(stop)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(5, 6))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.IntN(64))
			if k == key {
				continue
			}
			if rng.IntN(3) == 0 {
				m.Remove(k)
			} else {
				m.Put(k, 1)
			}
		}
	}()
	errs := make(chan string, 4)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, ok := m.Get(key)
				if !ok {
					errs <- "key vanished"
					return
				}
				if v < prev {
					errs <- "value went backwards"
					return
				}
				prev = v
			}
		}()
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// TestConcurrentScansDontMissCommittedKeys: keys inserted before a scan
// starts and never removed must always be seen by the scan, regardless of
// concurrent splits and merges around them.
func TestConcurrentScansDontMissCommittedKeys(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	// Stable keys: multiples of 10. Churn keys: everything else.
	var stable []uint64
	for i := uint64(0); i < 500; i += 10 {
		m.Put(i, int(i))
		stable = append(stable, i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 31))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.IntN(500))
				if k%10 == 0 {
					continue
				}
				if rng.IntN(3) == 0 {
					m.Remove(k)
				} else {
					m.Put(k, i)
				}
			}
		}()
	}
	for round := 0; round < 200; round++ {
		seen := map[uint64]bool{}
		m.All(func(k uint64, v int) bool {
			if k%10 == 0 {
				if v != int(k) {
					t.Errorf("stable key %d has value %d", k, v)
				}
				seen[k] = true
			}
			return true
		})
		if len(seen) != len(stable) {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: scan saw %d/%d stable keys", round, len(seen), len(stable))
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentMixedEverything exercises every operation type at once with
// tiny revisions (maximum structure churn), then checks structural
// soundness. This is the workload most likely to hit rare helping paths
// (zombie temp-split nodes, merge helping chains, batch helpers).
func TestConcurrentMixedEverything(t *testing.T) {
	m := New[uint64, int](Options[uint64]{FixedRevisionSize: 4})
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 77))
			for i := 0; i < 1200; i++ {
				k := uint64(rng.IntN(200))
				switch rng.IntN(10) {
				case 0, 1, 2:
					m.Put(k, i)
				case 3, 4:
					m.Remove(k)
				case 5, 6:
					m.Get(k)
				case 7:
					b := NewBatch[uint64, int](6)
					for j := 0; j < 6; j++ {
						kk := uint64(rng.IntN(200))
						if rng.IntN(3) == 0 {
							b.Remove(kk)
						} else {
							b.Put(kk, i)
						}
					}
					m.BatchUpdate(b)
				case 8:
					n := 0
					m.RangeFrom(k, func(uint64, int) bool {
						n++
						return n < 50
					})
				default:
					s := m.Snapshot()
					s.Get(k)
					s.Range(k, k+20, func(uint64, int) bool { return true })
					s.Close()
				}
			}
		}()
	}
	wg.Wait()
	checkPartition(t, m)
}
