package core

import "cmp"

// Range calls fn for every entry with lo <= key < hi, ascending, on an
// ephemeral snapshot taken at call time. Equivalent to
// Snapshot().Range(...) followed by Close.
func (m *Map[K, V]) Range(lo, hi K, fn func(key K, val V) bool) {
	s := m.Snapshot()
	defer s.Close()
	s.Range(lo, hi, fn)
}

// RangeFrom calls fn for every entry with key >= lo, ascending, on an
// ephemeral snapshot, until fn returns false.
func (m *Map[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	s := m.Snapshot()
	defer s.Close()
	s.RangeFrom(lo, fn)
}

// All calls fn for every entry, ascending, on an ephemeral snapshot.
func (m *Map[K, V]) All(fn func(key K, val V) bool) {
	s := m.Snapshot()
	defer s.Close()
	s.All(fn)
}

// Len counts the entries visible in an ephemeral snapshot. O(n); intended
// for tests and diagnostics.
func (m *Map[K, V]) Len() int {
	n := 0
	m.All(func(K, V) bool { n++; return true })
	return n
}

// frag is one resolved fragment of a node's state at a snapshot: a visible
// revision clamped to the key range its branch of the revision DAG is
// responsible for. The bounds matter when a merge revision newer than the
// snapshot branches into histories that both bottom out in the same
// pre-split revision: without them the shared revision would be emitted
// once per branch.
type frag[K cmp.Ordered, V any] struct {
	rev    *revision[K, V]
	lo, hi *K // nil = unbounded on that side
}

// getFragScratch takes a fragment scratch slice from the map's scan pool
// (fresh on a cold pool); putFragScratch clears it — the pooled slice must
// not pin revisions — and returns it. One scratch per in-flight scan, so
// nested scans (a callback scanning again) each get their own.
func (m *Map[K, V]) getFragScratch() *[]frag[K, V] {
	if fp, _ := m.fragPool.Get().(*[]frag[K, V]); fp != nil {
		return fp
	}
	fp := new([]frag[K, V])
	*fp = make([]frag[K, V], 0, 8)
	return fp
}

func (m *Map[K, V]) putFragScratch(fp *[]frag[K, V]) {
	s := (*fp)[:cap(*fp)]
	clear(s)
	*fp = s[:0]
	m.fragPool.Put(fp)
}

// scan is the range-scan engine (§3.3.4). It walks base-level nodes from
// lo's covering node, and for each node resolves the set of revision
// fragments visible at snap — recursing through both successors of merge
// revisions that are newer than the snapshot (the paper's bulk revisions)
// — then emits the fragments clamped to the node's range at traversal
// time. Scans help pending updates that belong to the snapshot but are
// never restarted.
func (m *Map[K, V]) scan(lo, hi *K, snap int64, fn func(K, V) bool) {
	// Pin the reclamation epoch for the scan's whole lifetime: every
	// fragment's keys/vals are read under it, so concurrent pruning can
	// retire but never recycle the buffers mid-scan (epoch.go).
	slot, epoch := epochEnter()
	defer epochExit(slot, epoch)
	var nd *node[K, V]
	fp := m.getFragScratch()
	defer m.putFragScratch(fp)
	if lo != nil {
		for {
			nd = m.findNodeForKey(*lo)
			if nd.kind == nodeTempSplit {
				m.helpSplit(nd.parent, nd.lrev)
				continue
			}
			break
		}
	} else {
		nd = m.base
	}

	for nd != nil {
		if hi != nil && !nd.isBase && nd.key >= *hi {
			return
		}
		// The successor must be captured before resolving the head:
		// any structure change that completes afterwards is newer
		// than the snapshot, and the captured pointer still leads to
		// the node (live or terminated) holding the remainder of the
		// range's history.
		//
		// A temp-split successor is only trustworthy while its split
		// is incomplete (then its pinned right split revision is the
		// authoritative history for the upper half-range). A zombie
		// temp-split node — re-inserted by a stale helper after the
		// split completed, the ABA recovery case of §3.3.1 — is born
		// with splitDone already set; trusting it would clamp this
		// node's range wrongly and serve stale data. Retract it and
		// re-read.
		bound := nd.next.Load()
		if bound != nil && bound.kind == nodeTempSplit && bound.lrev.splitDone.Load() {
			m.helpSplit(bound.parent, bound.lrev)
			continue
		}
		headRev := nd.head.Load()

		*fp = (*fp)[:0]
		if headRev.kind == revTerminator {
			// A node that is being (or has been) merged away: the
			// merge is invisible at snap (a merge visible at snap
			// would have unlinked the node before this scan could
			// reach it), so the node's own pre-merge history is
			// authoritative.
			m.resolveFrags(headRev.prevRev, snap, nil, nil, fp)
		} else {
			m.resolveFrags(headRev, snap, nil, nil, fp)
			m.noteScanRead(headRev)
		}

		// Clamp to the node's current range and the scan bounds.
		var low *K
		if !nd.isBase {
			k := nd.key
			low = &k
		}
		if lo != nil && (low == nil || *lo > *low) {
			low = lo
		}
		var high *K
		if bound != nil {
			k := bound.key
			high = &k
		}
		if hi != nil && (high == nil || *hi < *high) {
			high = hi
		}
		for _, fr := range *fp {
			flo, fhi := low, high
			if fr.lo != nil && (flo == nil || *fr.lo > *flo) {
				flo = fr.lo
			}
			if fr.hi != nil && (fhi == nil || *fr.hi < *fhi) {
				fhi = fr.hi
			}
			keys := fr.rev.keys
			i := 0
			if flo != nil {
				i = searchKeys(keys, *flo)
			}
			for ; i < len(keys); i++ {
				k := keys[i]
				if fhi != nil && k >= *fhi {
					break
				}
				if !fn(k, fr.rev.vals[i]) {
					return
				}
			}
		}
		nd = bound
	}
}

// resolveFrags appends, in ascending key order, the revision fragments that
// together hold this chain's state at snapshot snap within the key range
// [lo, hi). A merge revision newer than the snapshot contributes both of
// its branches, partitioned at its rightKey (left first: lower keys); one
// visible revision terminates each branch. Without the partition, two
// branches that bottom out in one shared pre-split revision would
// double-count it.
func (m *Map[K, V]) resolveFrags(rev *revision[K, V], snap int64, lo, hi *K, out *[]frag[K, V]) {
	for rev != nil {
		v := rev.ver()
		if v < 0 && -v <= snap {
			m.helpPendingUpdate(rev)
			v = rev.ver()
		}
		if v > 0 && v <= snap {
			*out = append(*out, frag[K, V]{rev: rev, lo: lo, hi: hi})
			return
		}
		if rev.kind == revMerge {
			rk := rev.rightKey
			lhi := hi
			if lhi == nil || rk < *lhi {
				lhi = &rk
			}
			m.resolveFrags(rev.next.Load(), snap, lo, lhi, out)
			rlo := lo
			if rlo == nil || rk > *rlo {
				rlo = &rk
			}
			lo = rlo
			rev = rev.rightNext.Load()
			continue
		}
		// Version seek (seek.go): jump the back-skip pointer while its
		// target — and hence everything in between — is invisible at
		// snap. Skips never cross merge revisions, so the branch above
		// is always taken explicitly.
		if s := rev.skip; s != nil && invisibleAt(s.ver(), snap) {
			rev = s
			continue
		}
		rev = rev.next.Load()
	}
}
