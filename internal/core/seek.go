package core

// Version seeks: O(log k) access into long revision chains.
//
// A node's revision list is sorted by (eventual) final version, newest
// first: an update installs its revision only after the previous head has
// linearized, and final versions are clock reads taken after installation.
// Snapshot reads, snapshot scans and the iterator refill path all need the
// *boundary* revision for a version v — the newest revision with final
// version <= v — and previously found it by walking the chain one link at
// a time, O(chain) per lookup. Long chains are exactly the snapshot-heavy
// case (every live snapshot pins one boundary, so k snapshots can hold a
// k-deep chain), which made the paper's snapshot workloads quadratic-ish.
//
// Every regular revision therefore carries one extra pointer, skip, laid
// out in Fenwick spacing: the revision at run position n points n-lowbit(n)
// positions down the chain. A seek jumps through skip whenever the jump
// target is still invisible to the version being sought, and falls back to
// single next steps otherwise — the classic Fenwick prefix descent,
// O(log k) hops on an intact run. Positions restart at structural (split,
// merge, terminator) revisions and skips never cross them, so the
// key-dependent branch at merge revisions is always taken explicitly.
//
// Why jumping is safe against the inner GC (gc.go) and the payload
// recycler (recycle.go):
//
//   - A jump is taken only when the target is invisible at the sought
//     version v (final or eventual version > v). Versions descend along
//     the chain, so everything jumped over is invisible too — including
//     pending revisions, whose final version is bounded below by their
//     optimistic value.
//   - Skip pointers may lead into revisions the GC has already unlinked
//     ("frozen" paths). That is harmless: revision structs are never
//     recycled (only payload buffers are), and intermediate hops read
//     only version fields and chain pointers. The first *visible*
//     revision reached on any frozen path is provably the live boundary:
//     a dropped revision d with d.ver <= v had, at drop time, a kept
//     revision k with d.ver < k.ver <= v above it (otherwise the GC's
//     snapshot/horizon/pin-floor rules — v is registered, or v >= the
//     GC's horizon — would have kept d), and k is on every frozen path
//     that still reaches d, so the walk stops at k (or something newer)
//     first and never returns d. Hence the returned revision is live,
//     its payload protected by the reader's registration, and the
//     reader's epoch pin covers the unlink race as before.
//
// linkSkip costs O(1) amortized per update (the walk from the previous
// head to the Fenwick target retraces low-bit hops) and zero allocations.
//
// Memory: a live revision's skip pointer can retain pruned revision
// *structs* — the frozen path from its target down to the next live
// revision (dropped revisions' next pointers are deliberately never
// severed; the frozen-path lemma above depends on them). The retained
// shells are payload-free (their buffers were recycled at retirement) and
// the retention is transient — the web becomes unreachable when the
// retaining revision is itself pruned — but in the worst case (a long
// pinned chain released at once) one GC pass can leave a whole dropped
// segment, O(chain at drop time), reachable until the next prune of that
// node. In steady state chains are 2-4 long and the overhang is a few
// ~100-byte structs per node.

// invisibleAt reports whether a revision whose ver() returned v is
// certainly invisible to version snap: committed above snap, or pending
// with an optimistic bound above snap (the final version can only land
// higher). Pending revisions that may yet commit at or below snap report
// false and must be helped by the caller.
func invisibleAt(v, snap int64) bool {
	return v > snap || (v < 0 && -v > snap)
}

// linkSkip assigns nr's run position and back-skip pointer, given that nr
// is about to be published on top of head. Must run before the installing
// CAS (the fields are immutable after publication); a failed CAS simply
// discards them with the revision. Structural heads (and disabled seeking)
// leave nr starting a fresh run with the zero values.
func (m *Map[K, V]) linkSkip(nr, head *revision[K, V]) {
	if m.opts.DisableChainSeek || head == nil || head.kind != revRegular {
		return
	}
	pos := head.skipPos + 1
	nr.skipPos = pos
	target := pos - pos&(-pos) // clear the lowest set bit
	cur := head
	// Retrace the previous head's skip chain down to the Fenwick target.
	// Mid-chain pruning can have removed the exact position — any deeper
	// revision of the same chain is still a correct (just differently
	// spaced) target, so the walk stops at whatever it lands on. The hop
	// bound keeps a torn chain from turning an install into a long walk.
	for hops := 0; cur.skipPos > target && cur.kind == revRegular && hops < 32; hops++ {
		nxt := cur.skip
		if nxt == nil {
			nxt = cur.next.Load()
		}
		if nxt == nil {
			break
		}
		cur = nxt
	}
	nr.skip = cur
}

// seekRevision returns the boundary revision for snap on the chain hanging
// off headRev — the newest revision with final version <= snap, routed into
// the branch owning key at merge revisions and redirected across split
// pairs — or nil when the whole history is newer than snap or key was never
// present. Pending revisions that may belong to snap are helped to
// completion first (§3.2). steps counts chain hops (jumps and single steps
// alike) for the seek-depth telemetry.
func (m *Map[K, V]) seekRevision(headRev *revision[K, V], key K, snap int64) (rev *revision[K, V], steps int) {
	r := headRev
	for r != nil {
		v := r.ver()
		if v < 0 && -v <= snap {
			m.helpPendingUpdate(r)
			v = r.ver()
		}
		if v > 0 && v <= snap {
			return redirectSplit(r, key), steps
		}
		steps++
		if r.kind == revMerge && key >= r.rightKey {
			r = r.rightNext.Load()
			continue
		}
		if s := r.skip; s != nil && invisibleAt(s.ver(), snap) {
			r = s
			continue
		}
		r = r.next.Load()
	}
	return nil, steps
}

// noteSeek feeds the sampled seek-depth telemetry: rnd is the operation's
// epoch-pin random draw, reused so the read path never draws twice. Bits
// 16-21 select roughly one in 64 seeks; the two counters land in Stats as
// SeekSamples / SeekSteps.
func (m *Map[K, V]) noteSeek(steps int, rnd uint64) {
	if (rnd>>16)&63 != 0 {
		return
	}
	m.seekSamples.Add(1)
	m.seekSteps.Add(uint64(steps))
}
