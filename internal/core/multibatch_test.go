package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tsc"
)

// twoMaps returns two maps sharing one clock, as the shards of a sharded
// frontend do.
func twoMaps(t *testing.T) (*Map[int, int], *Map[int, int], tsc.Clock) {
	t.Helper()
	clock := tsc.NewMonotonic()
	a := New[int, int](Options[int]{Clock: clock})
	b := New[int, int](Options[int]{Clock: clock})
	return a, b, clock
}

func TestMultiBatchUpdateBasic(t *testing.T) {
	a, b, _ := twoMaps(t)
	MultiBatchUpdate(
		MapBatch[int, int]{Map: a, Batch: NewBatch[int, int](2).Put(1, 10).Put(2, 20)},
		MapBatch[int, int]{Map: b, Batch: NewBatch[int, int](2).Put(3, 30).Remove(4)},
	)
	if v, _ := a.Get(1); v != 10 {
		t.Fatalf("a.Get(1) = %d", v)
	}
	if v, _ := a.Get(2); v != 20 {
		t.Fatalf("a.Get(2) = %d", v)
	}
	if v, _ := b.Get(3); v != 30 {
		t.Fatalf("b.Get(3) = %d", v)
	}
	for _, errs := range [][]error{CheckInvariants(a), CheckInvariants(b)} {
		for _, err := range errs {
			t.Error(err)
		}
	}
}

func TestMultiBatchUpdateCoalescesSameMap(t *testing.T) {
	a, _, _ := twoMaps(t)
	// The same map twice: parts must coalesce, later part winning on the
	// shared key.
	MultiBatchUpdate(
		MapBatch[int, int]{Map: a, Batch: NewBatch[int, int](2).Put(1, 10).Put(2, 20)},
		MapBatch[int, int]{Map: a, Batch: NewBatch[int, int](2).Put(1, 11).Put(3, 30)},
	)
	if v, _ := a.Get(1); v != 11 {
		t.Fatalf("later part should win: a.Get(1) = %d", v)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestMultiBatchUpdateEmptyAndSingle(t *testing.T) {
	a, b, _ := twoMaps(t)
	MultiBatchUpdate[int, int]() // no parts: no-op
	MultiBatchUpdate(
		MapBatch[int, int]{Map: a, Batch: NewBatch[int, int](0)}, // empty batch
		MapBatch[int, int]{Map: b, Batch: NewBatch[int, int](1).Put(7, 70)},
	)
	if a.Len() != 0 {
		t.Fatal("empty part mutated its map")
	}
	if v, _ := b.Get(7); v != 70 {
		t.Fatal("single live part not applied")
	}
}

func TestMultiBatchUpdateClockMismatchPanics(t *testing.T) {
	a := New[int, int]()
	b := New[int, int]() // different clock
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched clocks")
		}
	}()
	MultiBatchUpdate(
		MapBatch[int, int]{Map: a, Batch: NewBatch[int, int](1).Put(1, 1)},
		MapBatch[int, int]{Map: b, Batch: NewBatch[int, int](1).Put(2, 2)},
	)
}

// TestMultiBatchUpdateOpposedPartOrders: concurrent cross-map groups whose
// callers list the maps in opposite orders must still make progress.
// Before parts were canonicalized by Map.seq, two such groups could each
// install the pending revision the other needed and mutual helping
// recursed until stack overflow.
func TestMultiBatchUpdateOpposedPartOrders(t *testing.T) {
	a, b, _ := twoMaps(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				ba, bb := NewBatch[int, int](4), NewBatch[int, int](4)
				for k := 0; k < 4; k++ {
					ba.Put(k, i)
					bb.Put(k+100, i)
				}
				if g%2 == 0 {
					MultiBatchUpdate(
						MapBatch[int, int]{Map: a, Batch: ba},
						MapBatch[int, int]{Map: b, Batch: bb})
				} else {
					MultiBatchUpdate(
						MapBatch[int, int]{Map: b, Batch: bb},
						MapBatch[int, int]{Map: a, Batch: ba})
				}
			}
		}(g)
	}
	wg.Wait()
	for _, errs := range [][]error{CheckInvariants(a), CheckInvariants(b)} {
		for _, err := range errs {
			t.Error(err)
		}
	}
}

// TestMultiBatchUpdateAtomicity: readers aligning per-map snapshots on one
// clock cut (MultiSnapshot) must never observe a cross-map batch
// half-applied, even while concurrent readers help complete pending group
// revisions.
func TestMultiBatchUpdateAtomicity(t *testing.T) {
	a, b, _ := twoMaps(t)
	const keys = 8
	write := func(gen int) {
		ba, bb := NewBatch[int, int](keys), NewBatch[int, int](keys)
		for k := 0; k < keys; k++ {
			if k%2 == 0 {
				ba.Put(k, gen)
			} else {
				bb.Put(k, gen)
			}
		}
		MultiBatchUpdate(
			MapBatch[int, int]{Map: a, Batch: ba},
			MapBatch[int, int]{Map: b, Batch: bb},
		)
	}
	write(0)

	var stop atomic.Bool
	var writersWG, readersWG sync.WaitGroup
	writersWG.Add(1)
	go func() {
		defer writersWG.Done()
		for gen := 1; gen <= 500; gen++ {
			write(gen)
		}
	}()
	fail := make(chan string, 4)
	for r := 0; r < 3; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for !stop.Load() {
				subs := MultiSnapshot(a, b)
				sa, sb := subs[0], subs[1]
				first, haveFirst := 0, false
				for k := 0; k < keys; k++ {
					var v int
					var ok bool
					if k%2 == 0 {
						v, ok = sa.Get(k)
					} else {
						v, ok = sb.Get(k)
					}
					if !ok {
						fail <- "key missing"
						break
					}
					if !haveFirst {
						first, haveFirst = v, true
					} else if v != first {
						fail <- "cross-map batch observed half-applied"
						break
					}
				}
				sa.Close()
				sb.Close()
			}
		}()
	}
	writersWG.Wait()
	stop.Store(true)
	readersWG.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	for _, errs := range [][]error{CheckInvariants(a), CheckInvariants(b)} {
		for _, err := range errs {
			t.Error(err)
		}
	}
}
