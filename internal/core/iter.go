package core

import "cmp"

// iterChunk is the number of entries an Iterator buffers per refill. Each
// refill re-seeks the snapshot at the last delivered key (an O(log n)
// index descent), so the chunk amortizes seeks while bounding both the
// buffered memory and — more importantly — the length of each epoch pin.
const iterChunk = 128

// Iterator is a pull-style cursor over one consistent version of the map:
// Seek positions it, Next advances it, Key/Value read the current entry.
// Unlike the push-style Range/All callbacks, which hold a reclamation
// epoch pin for the whole scan, an Iterator pins the epoch only inside
// each internal chunk refill (one m.scan call of at most iterChunk
// entries): between refills — and between the caller's Next calls,
// however far apart they are — no pin is held, so arbitrarily slow
// consumers never stall payload reclamation or epoch advance. The
// snapshot registration alone keeps the state at the iterator's version
// from being pruned; the bounded pin covers exactly the unlink race the
// epoch scheme exists for (epoch.go), which is why bounded pinning loses
// no safety over whole-scan pinning.
//
// An Iterator is not safe for concurrent use. Close it when done: Close
// recycles its buffers through the map's iterator pool and, for iterators
// obtained from Map.Iter, closes the internal snapshot.
type Iterator[K cmp.Ordered, V any] struct {
	m     *Map[K, V]
	snap  *Snapshot[K, V]
	owned bool // snap was created by Map.Iter and is closed on Close

	keys []K
	vals []V
	pos  int

	from      K
	hasFrom   bool
	last      K // last key delivered into the buffer; refills resume above it
	hasLast   bool
	exhausted bool

	// collect is the reusable buffer-filling callback handed to m.scan,
	// built once per pooled iterator so refills allocate nothing.
	collect func(K, V) bool
}

// Iter returns an iterator over a consistent snapshot of the map taken at
// call time; the snapshot is owned by the iterator and released by Close.
// The iterator starts before the first entry (or call Seek): the usual
// loop is
//
//	it := m.Iter()
//	defer it.Close()
//	it.Seek(lo)
//	for it.Next() {
//		use(it.Key(), it.Value())
//	}
func (m *Map[K, V]) Iter() *Iterator[K, V] {
	it := m.getIter()
	it.snap = m.Snapshot()
	it.owned = true
	return it
}

// Iter returns an iterator over the snapshot. The snapshot must stay open
// while the iterator is in use; closing the iterator does not close it.
func (s *Snapshot[K, V]) Iter() *Iterator[K, V] {
	it := s.m.getIter()
	it.snap = s
	return it
}

// getIter takes an iterator from the map's pool (fresh on a cold pool)
// with buffers allocated and the collect callback bound.
func (m *Map[K, V]) getIter() *Iterator[K, V] {
	if it, _ := m.iterPool.Get().(*Iterator[K, V]); it != nil {
		return it
	}
	it := &Iterator[K, V]{
		m:    m,
		keys: make([]K, 0, iterChunk),
		vals: make([]V, 0, iterChunk),
	}
	it.collect = func(k K, v V) bool {
		if it.hasLast && k == it.last {
			return true // the resume key itself; already delivered
		}
		it.keys = append(it.keys, k)
		it.vals = append(it.vals, v)
		return len(it.keys) < iterChunk
	}
	return it
}

// Seek repositions the iterator just before the first entry with key >=
// key; the following Next moves onto it. Seeking an exhausted or
// partially consumed iterator is permitted and restarts it at key.
// Seeking a closed iterator is a no-op (a closed iterator stays empty).
func (it *Iterator[K, V]) Seek(key K) {
	if it.snap == nil {
		return // closed
	}
	it.keys = it.keys[:0]
	it.vals = it.vals[:0]
	it.pos = 0
	it.from = key
	it.hasFrom = true
	it.hasLast = false
	it.exhausted = false
}

// Next advances to the next entry and reports whether one exists. The
// first Next after construction (or Seek) moves onto the first entry. On
// a closed iterator Next reports false.
func (it *Iterator[K, V]) Next() bool {
	if it.snap == nil {
		return false // closed
	}
	if it.pos+1 < len(it.keys) {
		it.pos++
		return true
	}
	it.refill()
	return len(it.keys) > 0
}

// Key returns the current entry's key. Valid only after a Next that
// returned true.
func (it *Iterator[K, V]) Key() K { return it.keys[it.pos] }

// Value returns the current entry's value. Valid only after a Next that
// returned true.
func (it *Iterator[K, V]) Value() V { return it.vals[it.pos] }

// refill replenishes the buffer with the next chunk of entries above the
// last delivered key (or from the Seek position on the first fill). One
// refill is one bounded m.scan call: the epoch pin it takes spans at most
// iterChunk delivered entries.
func (it *Iterator[K, V]) refill() {
	it.keys = it.keys[:0]
	it.vals = it.vals[:0]
	it.pos = 0
	if it.exhausted {
		return
	}
	switch {
	case it.hasLast:
		it.m.scan(&it.last, nil, it.snap.ver, it.collect)
	case it.hasFrom:
		it.m.scan(&it.from, nil, it.snap.ver, it.collect)
	default:
		it.m.scan(nil, nil, it.snap.ver, it.collect)
	}
	if len(it.keys) < iterChunk {
		it.exhausted = true // short fill: the stream is dry
	}
	if len(it.keys) > 0 {
		it.last = it.keys[len(it.keys)-1]
		it.hasLast = true
	}
}

// Close releases the iterator: the owned snapshot (Map.Iter) is closed,
// the buffers are cleared — a pooled iterator must not pin values — and
// the state returns to the map's pool for the next iterator. A second
// Close is a no-op: double-pooling one iterator would hand the same
// object to two later scans.
func (it *Iterator[K, V]) Close() {
	if it.snap == nil {
		return // already closed
	}
	if it.owned {
		it.snap.Close()
	}
	m := it.m
	clear(it.keys[:cap(it.keys)])
	clear(it.vals[:cap(it.vals)])
	it.keys = it.keys[:0]
	it.vals = it.vals[:0]
	it.snap = nil
	it.owned = false
	it.pos = 0
	it.hasFrom = false
	it.hasLast = false
	it.exhausted = false
	m.iterPool.Put(it)
}
