package core

import (
	"math"
	"sync/atomic"
)

// revStats carries the autoscaling policy's state (§3.3.6): two exponential
// moving averages that roughly track the share of wall-clock time threads
// spend updating vs reading this node's revisions. Races on these fields
// are harmless by design ("we are just gathering some statistics"); they go
// through atomics only so the race detector stays clean.
type revStats struct {
	pReads     atomic.Uint64 // float64 bits
	pUpdates   atomic.Uint64 // float64 bits
	lastUpdate atomic.Int64  // clock value of the last update at this node
	lastRead   atomic.Int64  // clock value of the last read-side EMA bump
}

func (s *revStats) loads() (pReads, pUpdates float64) {
	return math.Float64frombits(s.pReads.Load()), math.Float64frombits(s.pUpdates.Load())
}

// clampWeight converts a clock delta (nanoseconds on the production clock)
// to the paper's weight t in (0, 1]: the time in seconds since the thread
// last performed such an operation, saturated at one second.
func clampWeight(delta int64) float64 {
	if delta <= 0 {
		return 1e-9
	}
	t := float64(delta) / 1e9
	if t > 1 {
		return 1
	}
	return t
}

// carryUpdateStats seeds a new revision's moving averages from its
// predecessor, weighting by the time since the last update:
// pUpdates = t + (1-t)*u, pReads = (1-t)*p (§3.3.6).
func (m *Map[K, V]) carryUpdateStats(dst, src *revStats) {
	now := m.clock.Read()
	t := clampWeight(now - src.lastUpdate.Load())
	p, u := src.loads()
	dst.pUpdates.Store(math.Float64bits(t + (1-t)*u))
	dst.pReads.Store(math.Float64bits((1 - t) * p))
	dst.lastUpdate.Store(now)
	dst.lastRead.Store(src.lastRead.Load())
}

// noteRead bumps the read-side moving average on the head revision:
// pReads = t + (1-t)*p, pUpdates = (1-t)*u. To keep the read path cheap the
// bump is sampled roughly once per 128 reads (the paper throttles to one
// bump per 100 reads per thread; sampling achieves the same rate without
// thread-local state). rnd is the caller's epoch-pin random draw
// (epochEnterRand) — bits 8-14, disjoint from the stripe-choice bits —
// so the sampled-out fast path is one mask-and-compare with no second
// random draw and no shared counter.
func (m *Map[K, V]) noteRead(r *revision[K, V], rnd uint64) {
	if (rnd>>8)&127 != 0 {
		return
	}
	s := &r.stats
	now := m.clock.Read()
	t := clampWeight(now - s.lastRead.Load())
	p, u := s.loads()
	s.pReads.Store(math.Float64bits(t + (1-t)*p))
	s.pUpdates.Store(math.Float64bits((1 - t) * u))
	s.lastRead.Store(now)
}

// noteScanRead bumps the read-side average once per revision visited by a
// range scan, regardless of how many entries the scan consumes from it
// (§3.3.6: "range scans update the moving averages only once per revision").
func (m *Map[K, V]) noteScanRead(r *revision[K, V]) {
	s := &r.stats
	now := m.clock.Read()
	t := clampWeight(now - s.lastRead.Load())
	p, u := s.loads()
	s.pReads.Store(math.Float64bits(t + (1-t)*p))
	s.pUpdates.Store(math.Float64bits((1 - t) * u))
	s.lastRead.Store(now)
}

// targetSize maps the read/update time ratio to a revision size in
// [MinRevisionSize, MaxRevisionSize] with a simple linear function; mostly
// -update workloads get small revisions, mostly-read workloads large ones
// (§3.3.6).
func (m *Map[K, V]) targetSize(s *revStats) int {
	if m.opts.FixedRevisionSize > 0 {
		return m.opts.FixedRevisionSize
	}
	p, u := s.loads()
	sum := p + u
	lo, hi := m.opts.MinRevisionSize, m.opts.MaxRevisionSize
	if sum <= 0 {
		return (lo + hi) / 2
	}
	return lo + int(float64(hi-lo)*(p/sum))
}

// shouldSplit decides whether an update producing newLen entries must split
// the node instead of writing a regular revision. Splitting requires at
// least two entries per half.
func (m *Map[K, V]) shouldSplit(headRev *revision[K, V], newLen int) bool {
	if newLen < 4 {
		return false
	}
	target := m.targetSize(&headRev.stats)
	return newLen > target+target/2
}

// shouldMerge decides whether a remove producing newLen entries must merge
// the node into its predecessor. The base node never merges.
func (m *Map[K, V]) shouldMerge(nd *node[K, V], headRev *revision[K, V], newLen int) bool {
	if nd.isBase {
		return false
	}
	if newLen == 0 {
		return true
	}
	target := m.targetSize(&headRev.stats)
	return newLen < target/4
}
