package core

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func testMap() *Map[uint64, int] {
	return New[uint64, int]()
}

func mkRev(t *testing.T, m *Map[uint64, int], kv map[uint64]int) *revision[uint64, int] {
	t.Helper()
	keys := make([]uint64, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]int, len(keys))
	for i, k := range keys {
		vals[i] = kv[k]
	}
	return m.newRevision(revRegular, keys, vals)
}

func TestRevisionGetPresentAbsent(t *testing.T) {
	m := testMap()
	r := mkRev(t, m, map[uint64]int{1: 10, 5: 50, 9: 90})
	for k, want := range map[uint64]int{1: 10, 5: 50, 9: 90} {
		got, ok := r.get(k, m.opts.Hash)
		if !ok || got != want {
			t.Errorf("get(%d) = %d,%v want %d,true", k, got, ok, want)
		}
	}
	for _, k := range []uint64{0, 2, 4, 6, 8, 10, 1 << 40} {
		if _, ok := r.get(k, m.opts.Hash); ok {
			t.Errorf("get(%d) found phantom entry", k)
		}
	}
}

func TestRevisionGetEmpty(t *testing.T) {
	m := testMap()
	r := m.newRevision(revRegular, nil, nil)
	if _, ok := r.get(7, m.opts.Hash); ok {
		t.Fatal("empty revision returned a value")
	}
}

func TestRevisionHashIndexMatchesBinarySearch(t *testing.T) {
	// Property: with and without the hash index, lookups agree — for
	// every stored key and for probes around them.
	m := testMap()
	noIdx := New[uint64, int](Options[uint64]{DisableHashIndex: true})
	f := func(keysIn []uint64) bool {
		kv := make(map[uint64]int, len(keysIn))
		for i, k := range keysIn {
			kv[k] = i
		}
		r1 := mkRev(t, m, kv)
		r2 := mkRev(t, noIdx, kv)
		for _, k := range keysIn {
			for _, probe := range []uint64{k, k + 1, k - 1} {
				v1, ok1 := r1.get(probe, m.opts.Hash)
				v2, ok2 := r2.get(probe, noIdx.opts.Hash)
				if ok1 != ok2 || v1 != v2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRevisionHashIndexManyCollisions(t *testing.T) {
	// A constant hash forces every entry through the double-collision
	// binary-search fallback (§3.3.5).
	m := New[uint64, int](Options[uint64]{Hash: func(uint64) uint16 { return 7 }})
	kv := map[uint64]int{}
	for i := uint64(0); i < 100; i++ {
		kv[i*3] = int(i)
	}
	r := mkRev(t, m, kv)
	for k, want := range kv {
		got, ok := r.get(k, m.opts.Hash)
		if !ok || got != want {
			t.Fatalf("get(%d) = %d,%v want %d,true", k, got, ok, want)
		}
	}
	if _, ok := r.get(1, m.opts.Hash); ok {
		t.Fatal("found phantom under full collisions")
	}
}

func TestClonePutInsertsSorted(t *testing.T) {
	m := testMap()
	r := mkRev(t, m, map[uint64]int{10: 1, 30: 3})
	pl := m.clonePut(r, 20, 2)
	if !reflect.DeepEqual(pl.keys, []uint64{10, 20, 30}) {
		t.Fatalf("keys = %v", pl.keys)
	}
	if !reflect.DeepEqual(pl.vals, []int{1, 2, 3}) {
		t.Fatalf("vals = %v", pl.vals)
	}
	// Source arrays untouched (immutability).
	if !reflect.DeepEqual(r.keys, []uint64{10, 30}) {
		t.Fatalf("source mutated: %v", r.keys)
	}
}

func TestClonePutOverwrites(t *testing.T) {
	m := testMap()
	r := mkRev(t, m, map[uint64]int{10: 1, 30: 3})
	pl := m.clonePut(r, 30, 99)
	if !reflect.DeepEqual(pl.keys, []uint64{10, 30}) || !reflect.DeepEqual(pl.vals, []int{1, 99}) {
		t.Fatalf("keys=%v vals=%v", pl.keys, pl.vals)
	}
	if r.vals[1] != 3 {
		t.Fatal("source value mutated")
	}
}

func TestClonePutBoundaries(t *testing.T) {
	m := testMap()
	r := mkRev(t, m, map[uint64]int{10: 1, 30: 3})
	pl := m.clonePut(r, 5, 0)
	if !reflect.DeepEqual(pl.keys, []uint64{5, 10, 30}) {
		t.Fatalf("prepend: %v", pl.keys)
	}
	pl = m.clonePut(r, 40, 4)
	if !reflect.DeepEqual(pl.keys, []uint64{10, 30, 40}) {
		t.Fatalf("append: %v", pl.keys)
	}
	empty := m.newRevision(revRegular, nil, nil)
	pl = m.clonePut(empty, 7, 70)
	if !reflect.DeepEqual(pl.keys, []uint64{7}) || pl.vals[0] != 70 {
		t.Fatalf("from empty: %v %v", pl.keys, pl.vals)
	}
}

func TestCloneRemove(t *testing.T) {
	m := testMap()
	r := mkRev(t, m, map[uint64]int{10: 1, 20: 2, 30: 3})
	pl := m.cloneRemove(r, 20)
	if !reflect.DeepEqual(pl.keys, []uint64{10, 30}) || !reflect.DeepEqual(pl.vals, []int{1, 3}) {
		t.Fatalf("keys=%v vals=%v", pl.keys, pl.vals)
	}
	pl = m.cloneRemove(r, 10)
	if !reflect.DeepEqual(pl.keys, []uint64{20, 30}) {
		t.Fatalf("remove first: %v", pl.keys)
	}
	pl = m.cloneRemove(r, 30)
	if !reflect.DeepEqual(pl.keys, []uint64{10, 20}) {
		t.Fatalf("remove last: %v", pl.keys)
	}
	// Removing an absent key clones unchanged.
	pl = m.cloneRemove(r, 25)
	if !reflect.DeepEqual(pl.keys, []uint64{10, 20, 30}) {
		t.Fatalf("remove absent: %v", pl.keys)
	}
}

func TestCloneHashesStayConsistent(t *testing.T) {
	// Property: after a random chain of clone operations — each reusing
	// the parent's hash array through the pooled payload path — the
	// hash-index lookup still finds exactly the surviving entries.
	m := testMap()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e37))
		ref := map[uint64]int{}
		rev := m.newRevision(revRegular, nil, nil)
		for i := 0; i < 60; i++ {
			k := uint64(rng.IntN(40))
			if rng.IntN(3) == 0 {
				rev = m.newRevisionPl(revRegular, m.cloneRemove(rev, k))
				delete(ref, k)
			} else {
				rev = m.newRevisionPl(revRegular, m.clonePut(rev, k, i))
				ref[k] = i
			}
		}
		for k := uint64(0); k < 45; k++ {
			want, wantOK := ref[k]
			got, ok := rev.get(k, m.opts.Hash)
			if ok != wantOK || (ok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchAgainstReference(t *testing.T) {
	m := testMap()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		ref := map[uint64]int{}
		base := map[uint64]int{}
		for i := 0; i < 30; i++ {
			k := uint64(rng.IntN(50))
			base[k] = int(k) * 10
			ref[k] = int(k) * 10
		}
		rev := mkRev(t, m, base)
		var ops []batchEntry[uint64, int]
		seen := map[uint64]bool{}
		for i := 0; i < 20; i++ {
			k := uint64(rng.IntN(60))
			if seen[k] {
				continue
			}
			seen[k] = true
			if rng.IntN(2) == 0 {
				ops = append(ops, batchEntry[uint64, int]{key: k, remove: true})
				delete(ref, k)
			} else {
				ops = append(ops, batchEntry[uint64, int]{key: k, val: i})
				ref[k] = i
			}
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].key < ops[j].key })
		pl := m.applyBatchPl(rev, ops)
		if len(pl.keys) != len(ref) {
			return false
		}
		for i, k := range pl.keys {
			if i > 0 && pl.keys[i-1] >= k {
				return false // must stay strictly sorted
			}
			if ref[k] != pl.vals[i] {
				return false
			}
			if pl.hashes[i] != m.opts.Hash(k) {
				return false // merged hash array must track the keys
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchEmptyOps(t *testing.T) {
	m := testMap()
	r := mkRev(t, m, map[uint64]int{1: 1})
	pl := m.applyBatchPl(r, nil)
	if !reflect.DeepEqual(pl.keys, []uint64{1}) || pl.vals[0] != 1 {
		t.Fatalf("identity apply changed payload: %v %v", pl.keys, pl.vals)
	}
}

// mkCombined builds the combined pre-split payload a put produces, with
// hashes populated the way the real path would.
func mkCombined(t *testing.T, m *Map[uint64, int], keys []uint64, vals []int) *payload[uint64, int] {
	t.Helper()
	kv := map[uint64]int{}
	for i, k := range keys {
		kv[k] = vals[i]
	}
	rev := mkRev(t, m, kv)
	pl := m.rec.alloc(len(rev.keys))
	copy(pl.keys, rev.keys)
	copy(pl.vals, rev.vals)
	if pl.hashes != nil {
		copy(pl.hashes, rev.hashes)
	}
	return pl
}

func TestSplitPayloads(t *testing.T) {
	m := testMap()
	pl := mkCombined(t, m, []uint64{1, 2, 3, 4, 5}, []int{10, 20, 30, 40, 50})
	lpl, rpl, splitKey := m.splitPayloads(pl)
	if !reflect.DeepEqual(lpl.keys, []uint64{1, 2}) || !reflect.DeepEqual(rpl.keys, []uint64{3, 4, 5}) {
		t.Fatalf("halves: %v | %v", lpl.keys, rpl.keys)
	}
	if splitKey != 3 {
		t.Fatalf("splitKey = %d", splitKey)
	}
	if lpl.vals[1] != 20 || rpl.vals[0] != 30 {
		t.Fatalf("values misaligned: %v %v", lpl.vals, rpl.vals)
	}
	// The halves must not alias the combined buffer: retiring one later
	// must not pin (or scribble over) the other or the parent.
	if &rpl.keys[0] == &pl.keys[len(lpl.keys)] {
		t.Fatal("right half aliases the combined array")
	}
	for i, k := range lpl.keys {
		if lpl.hashes[i] != m.opts.Hash(k) {
			t.Fatalf("left hashes diverged at %d", i)
		}
	}
	for i, k := range rpl.keys {
		if rpl.hashes[i] != m.opts.Hash(k) {
			t.Fatalf("right hashes diverged at %d", i)
		}
	}
}

func TestSplitPayloadsEven(t *testing.T) {
	m := testMap()
	pl := mkCombined(t, m, []uint64{1, 2, 3, 4}, []int{1, 2, 3, 4})
	lpl, rpl, splitKey := m.splitPayloads(pl)
	if len(lpl.keys) != 2 || len(rpl.keys) != 2 || splitKey != 3 {
		t.Fatalf("even split: %v %v key=%d", lpl.keys, rpl.keys, splitKey)
	}
}

func TestUnionPayload(t *testing.T) {
	m := testMap()
	pl := m.unionPayload([]uint64{1, 2}, []int{1, 2}, []uint16{m.opts.Hash(1), m.opts.Hash(2)},
		[]uint64{5, 6}, []int{5, 6}, []uint16{m.opts.Hash(5), m.opts.Hash(6)})
	if !reflect.DeepEqual(pl.keys, []uint64{1, 2, 5, 6}) || !reflect.DeepEqual(pl.vals, []int{1, 2, 5, 6}) {
		t.Fatalf("union: %v %v", pl.keys, pl.vals)
	}
	pl = m.unionPayload(nil, nil, nil, []uint64{5}, []int{5}, []uint16{m.opts.Hash(5)})
	if !reflect.DeepEqual(pl.keys, []uint64{5}) {
		t.Fatalf("union with empty left: %v", pl.keys)
	}
}

func TestSplitThenUnionRoundTrips(t *testing.T) {
	m := testMap()
	f := func(n uint8) bool {
		size := int(n%60) + 4
		keys := make([]uint64, size)
		vals := make([]int, size)
		for i := range keys {
			keys[i] = uint64(i * 2)
			vals[i] = i
		}
		pl := mkCombined(t, m, keys, vals)
		lpl, rpl, _ := m.splitPayloads(pl)
		upl := m.unionPayload(lpl.keys, lpl.vals, lpl.hashes, rpl.keys, rpl.vals, rpl.hashes)
		return reflect.DeepEqual(upl.keys, keys) && reflect.DeepEqual(upl.vals, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultHashStrings(t *testing.T) {
	m := New[string, int]()
	r := m.newRevision(revRegular, []string{"a", "bb", "ccc"}, []int{1, 2, 3})
	for k, want := range map[string]int{"a": 1, "bb": 2, "ccc": 3} {
		if got, ok := r.get(k, m.opts.Hash); !ok || got != want {
			t.Fatalf("get(%q) = %d,%v", k, got, ok)
		}
	}
	if _, ok := r.get("zz", m.opts.Hash); ok {
		t.Fatal("phantom string key")
	}
}

func TestNormalizeBatchLastWins(t *testing.T) {
	ops := []batchEntry[uint64, int]{
		{key: 5, val: 1},
		{key: 3, val: 2},
		{key: 5, remove: true},
		{key: 3, val: 9},
		{key: 7, val: 7},
	}
	out := normalizeBatch(ops)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3 (%v)", len(out), out)
	}
	if out[0].key != 3 || out[0].val != 9 || out[0].remove {
		t.Fatalf("key 3: %+v", out[0])
	}
	if out[1].key != 5 || !out[1].remove {
		t.Fatalf("key 5 should be a remove: %+v", out[1])
	}
	if out[2].key != 7 || out[2].val != 7 {
		t.Fatalf("key 7: %+v", out[2])
	}
}

func TestNormalizeBatchEmpty(t *testing.T) {
	if out := normalizeBatch[uint64, int](nil); out != nil {
		t.Fatalf("normalize(nil) = %v", out)
	}
}
