// Package core implements Jiffy (Kobus, Kokociński, Wojciechowski, PPoPP
// 2022): a linearizable, lock-free, multiversioned ordered key-value index
// with atomic batch updates and O(1) consistent snapshots.
//
// The index is a skip list whose lowest-level nodes each manage a contiguous
// key range. Key-value entries live in immutable objects called revisions,
// tagged with version numbers drawn from a contention-free clock
// (internal/tsc). The index grows and shrinks by lock-free node split and
// merge operations that are streamlined with updates; every operation helps
// complete structure modifications it encounters, so the index returns to a
// stable state as quickly as possible.
//
// The public surface is Map, Snapshot and Batch. All operations are safe for
// concurrent use and linearizable; range scans run on snapshots and never
// restart.
package core

import (
	"cmp"
	"math"

	"repro/internal/tsc"
)

// Default revision-size bounds from the paper (§3.3.6): "the sizes of
// revisions should be between 25-300 entries, depending on the workload".
const (
	DefaultMinRevisionSize = 25
	DefaultMaxRevisionSize = 300
)

// Options configures a Map. The zero value selects paper defaults.
type Options[K cmp.Ordered] struct {
	// Clock supplies version numbers. Defaults to tsc.NewMonotonic().
	Clock tsc.Clock

	// Hash maps a key to the 16-bit hash used by the in-revision hash
	// index (§3.3.5). Defaults to a type-appropriate mixer for integer
	// and string keys.
	Hash func(K) uint16

	// MinRevisionSize and MaxRevisionSize bound the autoscaler's target
	// revision size. Defaults: 25 and 300. Invalid values degrade to the
	// defaults rather than panic: a Min <= 0 becomes 25, a Max below Min
	// becomes 300 (or Min itself if Min exceeds 300), so the invariant
	// 0 < Min <= Max always holds after construction.
	MinRevisionSize int
	MaxRevisionSize int

	// FixedRevisionSize, when > 0, disables the autoscaling policy and
	// pins the target revision size (ablation A3), overriding Min/Max
	// entirely. Values <= 0 leave autoscaling on.
	FixedRevisionSize int

	// DisableHashIndex turns off the per-revision hash index so lookups
	// fall back to binary search (ablation A1).
	DisableHashIndex bool

	// DisableRecycling turns off the epoch-protected recycling of pruned
	// revisions' payload buffers, so every update allocates fresh arrays
	// (ablation A4, and a safety valve). Reads and updates still pin the
	// reclamation epoch — the cost is two striped atomic adds — but
	// nothing is ever retired or reused.
	DisableRecycling bool

	// DisableChainSeek turns off the per-revision back-skip pointers that
	// give snapshot reads and scans O(log k) seeks into long revision
	// chains (seek.go), so every version lookup walks the chain linearly
	// from the head (ablation A5, and the baseline the BENCH_0004
	// deep-chain claim is measured against).
	DisableChainSeek bool
}

func (o Options[K]) withDefaults() Options[K] {
	if o.Clock == nil {
		o.Clock = tsc.NewMonotonic()
	}
	if o.Hash == nil {
		o.Hash = defaultHash[K]()
	}
	if o.MinRevisionSize <= 0 {
		o.MinRevisionSize = DefaultMinRevisionSize
	}
	if o.MaxRevisionSize < o.MinRevisionSize {
		o.MaxRevisionSize = DefaultMaxRevisionSize
		if o.MaxRevisionSize < o.MinRevisionSize {
			o.MaxRevisionSize = o.MinRevisionSize
		}
	}
	if o.FixedRevisionSize > 0 {
		o.MinRevisionSize = o.FixedRevisionSize
		o.MaxRevisionSize = o.FixedRevisionSize
	}
	return o
}

// defaultHash picks a hash function for the common ordered key types. The
// type switch runs once per Map, not per operation; the returned closures
// assert through any, which the compiler devirtualizes for the concrete K.
func defaultHash[K cmp.Ordered]() func(K) uint16 {
	var zero K
	switch any(zero).(type) {
	case int:
		return func(k K) uint16 { return mix64(uint64(any(k).(int))) }
	case int8:
		return func(k K) uint16 { return mix64(uint64(any(k).(int8))) }
	case int16:
		return func(k K) uint16 { return mix64(uint64(any(k).(int16))) }
	case int32:
		return func(k K) uint16 { return mix64(uint64(any(k).(int32))) }
	case int64:
		return func(k K) uint16 { return mix64(uint64(any(k).(int64))) }
	case uint:
		return func(k K) uint16 { return mix64(uint64(any(k).(uint))) }
	case uint8:
		return func(k K) uint16 { return mix64(uint64(any(k).(uint8))) }
	case uint16:
		return func(k K) uint16 { return mix64(uint64(any(k).(uint16))) }
	case uint32:
		return func(k K) uint16 { return mix64(uint64(any(k).(uint32))) }
	case uint64:
		return func(k K) uint16 { return mix64(any(k).(uint64)) }
	case uintptr:
		return func(k K) uint16 { return mix64(uint64(any(k).(uintptr))) }
	case float32:
		return func(k K) uint16 {
			return mix64(uint64(math.Float32bits(any(k).(float32))))
		}
	case float64:
		return func(k K) uint16 {
			return mix64(math.Float64bits(any(k).(float64)))
		}
	case string:
		return func(k K) uint16 { return fnv16(any(k).(string)) }
	default:
		// cmp.Ordered covers exactly the cases above; this is
		// unreachable but keeps the function total.
		return func(K) uint16 { return 0 }
	}
}

// mix64 is a Fibonacci/xorshift mixer folding a 64-bit key to 16 bits.
func mix64(x uint64) uint16 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint16(x)
}

// fnv16 is FNV-1a folded to 16 bits, for string keys.
func fnv16(s string) uint16 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return uint16(h ^ h>>16 ^ h>>32 ^ h>>48)
}
