package persist

import "repro/internal/obs"

// Metrics is the durability layer's instrument panel. Every field is an
// optional striped metric from internal/obs; a nil *Metrics (or any nil
// field) makes the corresponding observation a no-op, so the logging hot
// path carries its instrumentation unconditionally and an unwired WAL
// pays one predicted branch per event.
//
// One Metrics struct may be shared by several WALs (durable.Sharded wires
// all shard logs to one panel): the striped cells absorb the concurrency,
// and the aggregated numbers are what an operator wants anyway.
type Metrics struct {
	Appends           *obs.Counter   // records appended (acknowledged)
	Flushes           *obs.Counter   // group-commit flushes (one write + one fsync)
	FlushRecords      *obs.Histogram // records coalesced per flush (group-commit width)
	BytesWritten      *obs.Counter   // encoded record bytes written to segments
	FsyncSeconds      *obs.Histogram // fsync latency (data-path syncs; absent under NoSync)
	Rotations         *obs.Counter   // segments sealed by rotation
	SegmentsDeleted   *obs.Counter   // sealed segments deleted by truncation
	CheckpointSeconds *obs.Histogram // whole-checkpoint duration (observed by jiffy/durable)
}

// NewMetrics registers the durability panel's series on r under the
// jiffy_wal_* / jiffy_checkpoint_* names and returns it.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Appends: r.Counter("jiffy_wal_appends_total",
			"WAL records appended and acknowledged."),
		Flushes: r.Counter("jiffy_wal_flushes_total",
			"WAL group-commit flushes (one file write, at most one fsync)."),
		FlushRecords: r.Histogram("jiffy_wal_flush_records",
			"Records coalesced per group-commit flush.", obs.CountBuckets),
		BytesWritten: r.Counter("jiffy_wal_bytes_written_total",
			"Encoded record bytes written to WAL segments."),
		FsyncSeconds: r.Histogram("jiffy_wal_fsync_seconds",
			"WAL data fsync latency.", obs.LatencyBuckets),
		Rotations: r.Counter("jiffy_wal_rotations_total",
			"WAL segments sealed by rotation."),
		SegmentsDeleted: r.Counter("jiffy_wal_segments_deleted_total",
			"Sealed WAL segments deleted by checkpoint truncation."),
		CheckpointSeconds: r.Histogram("jiffy_checkpoint_seconds",
			"Checkpoint duration, snapshot through truncation.", obs.LatencyBuckets),
	}
}

// WALStats is a point-in-time size census of one log: segment count
// (sealed plus the active one) and the bytes they hold on disk.
type WALStats struct {
	Segments int
	Bytes    int64
}

// Stats reports the log's current segment count and byte footprint.
func (w *WAL) Stats() WALStats {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	st := WALStats{Segments: len(w.sealed) + 1, Bytes: w.size}
	for _, s := range w.sealed {
		st.Bytes += s.size
	}
	return st
}
