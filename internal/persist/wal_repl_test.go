package persist

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWALRotateHook asserts OnRotate fires once per seal with the sealed
// segment's sequence number and its maximum record version — the
// notification replication's log tailer keys on instead of polling the
// directory.
func TestWALRotateHook(t *testing.T) {
	dir := t.TempDir()
	type seal struct {
		seq    uint64
		maxVer int64
	}
	var mu sync.Mutex
	var seals []seal
	w, _ := openTestWAL(t, dir, WALOptions{
		SegmentBytes: 256,
		OnRotate: func(seq uint64, maxVer int64) {
			mu.Lock()
			seals = append(seals, seal{seq, maxVer})
			mu.Unlock()
		},
	})
	payload := bytes.Repeat([]byte{'r'}, 64)
	for i := 0; i < 40; i++ {
		if err := w.Append(int64(i+1), payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(seals) == 0 {
		t.Fatal("no OnRotate callback at 256-byte segments")
	}
	if len(seals) != w.SealedSegments() {
		// Close happened after the loop; every sealed segment must have
		// announced itself exactly once.
		t.Fatalf("%d OnRotate calls for %d sealed segments", len(seals), w.SealedSegments())
	}
	var prevSeq uint64
	var prevMax int64
	for i, s := range seals {
		if i > 0 && s.seq <= prevSeq {
			t.Fatalf("seal %d: seq %d not increasing past %d", i, s.seq, prevSeq)
		}
		if s.maxVer <= prevMax {
			t.Fatalf("seal %d: maxVer %d not increasing past %d", i, s.maxVer, prevMax)
		}
		if s.maxVer < 1 || s.maxVer > 40 {
			t.Fatalf("seal %d: maxVer %d outside appended range", i, s.maxVer)
		}
		prevSeq, prevMax = s.seq, s.maxVer
	}
}

// TestWALAppendCloseRace hammers Append from many goroutines while Close
// runs concurrently. The regression: an append racing Close used to reach
// file state already torn down instead of surfacing ErrWALClosed. Run
// under -race, every append must either succeed or report ErrWALClosed —
// never panic, never another error.
func TestWALAppendCloseRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		dir := t.TempDir()
		w, _ := openTestWAL(t, dir, WALOptions{})
		var wg sync.WaitGroup
		var closedSeen atomic.Int64
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					err := w.Append(int64(g*1000+i+1), []byte("race"))
					if err == nil {
						continue
					}
					if !errors.Is(err, ErrWALClosed) {
						t.Errorf("Append: %v, want nil or ErrWALClosed", err)
						return
					}
					closedSeen.Add(1)
					return
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := w.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		// The log must still be replayable: whatever was acked is intact.
		w2, recs := openTestWAL(t, dir, WALOptions{})
		seen := map[int64]bool{}
		for _, r := range recs {
			if seen[r.Version] {
				t.Fatalf("round %d: duplicate version %d after race", round, r.Version)
			}
			seen[r.Version] = true
		}
		w2.Close()
	}
}

// TestWALTailAbove covers the disk-side tailing API replication's
// catch-up uses: records strictly above the watermark come back (across
// sealed and active segments), records at or below it never do, and
// truncation below the watermark does not disturb the tail.
func TestWALTailAbove(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{SegmentBytes: 256})
	payload := bytes.Repeat([]byte{'t'}, 64)
	for i := 0; i < 40; i++ {
		if err := w.Append(int64(i+1), payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	recs, err := w.TailAbove(25)
	if err != nil {
		t.Fatalf("TailAbove: %v", err)
	}
	got := map[int64]bool{}
	for _, r := range recs {
		if r.Version <= 25 {
			t.Fatalf("TailAbove(25) returned version %d", r.Version)
		}
		if got[r.Version] {
			t.Fatalf("TailAbove(25) duplicated version %d", r.Version)
		}
		got[r.Version] = true
	}
	for v := int64(26); v <= 40; v++ {
		if !got[v] {
			t.Fatalf("TailAbove(25) missing version %d", v)
		}
	}

	// A checkpoint-style truncation below the tail point must leave the
	// tail fully readable.
	if err := w.TruncateBelow(20); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	recs, err = w.TailAbove(25)
	if err != nil {
		t.Fatalf("TailAbove after truncation: %v", err)
	}
	got = map[int64]bool{}
	for _, r := range recs {
		got[r.Version] = true
	}
	for v := int64(26); v <= 40; v++ {
		if !got[v] {
			t.Fatalf("TailAbove(25) after truncation missing version %d", v)
		}
	}

	// TailAbove on a closed log reports ErrWALClosed, not a read of
	// deleted files.
	w.Close()
	if _, err := w.TailAbove(0); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("TailAbove after Close: %v, want ErrWALClosed", err)
	}
}

// TestWALTailAboveConcurrentAppends interleaves TailAbove with live
// appends: every tail snapshot must be internally consistent (no
// duplicates, nothing at or below the floor) even as segments rotate
// underneath it.
func TestWALTailAboveConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{SegmentBytes: 512})
	defer w.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := w.Append(v, []byte(fmt.Sprintf("v-%d", v))); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		recs, err := w.TailAbove(int64(i * 3))
		if err != nil {
			t.Fatalf("TailAbove: %v", err)
		}
		seen := map[int64]bool{}
		for _, r := range recs {
			if r.Version <= int64(i*3) {
				t.Fatalf("TailAbove(%d) returned version %d", i*3, r.Version)
			}
			if seen[r.Version] {
				t.Fatalf("TailAbove(%d) duplicated version %d", i*3, r.Version)
			}
			seen[r.Version] = true
		}
	}
	close(stop)
	wg.Wait()
}
