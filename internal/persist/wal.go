// Package persist implements the byte-level durability primitives under
// jiffy/durable: a segmented write-ahead log with group commit, and
// snapshot-consistent checkpoint files. The package is deliberately
// untyped — records and checkpoint entries are []byte — so one
// implementation serves every key/value instantiation; jiffy/durable's
// Codec does the encoding. See DESIGN.md §5 for the file formats and the
// recovery invariant.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// WAL file format. A segment is
//
//	magic "JFWAL001" | record*
//
// and a record is
//
//	u32 n | u32 crc | data[n]      (little endian)
//
// where data = i64 version | payload, n = len(data), and crc is IEEE
// CRC-32 over data. A record is valid only if its length fits the file and
// its checksum matches; the first invalid record ends the segment (a torn
// tail from a crash mid-append loses only records that were never
// acknowledged, because acknowledgement happens after fsync).
const (
	walMagic = "JFWAL001"

	// DefaultSegmentBytes is the rotation threshold when WALOptions
	// leaves SegmentBytes zero.
	DefaultSegmentBytes = 4 << 20

	// maxRecordBytes bounds a single record; length prefixes beyond it
	// are treated as corruption rather than allocated.
	maxRecordBytes = 1 << 30
)

// ErrWALClosed is returned by appends to a closed WAL.
var ErrWALClosed = errors.New("persist: WAL is closed")

// Record is one durable log entry: an opaque payload tagged with the
// version number its operation committed at. Versions order replay;
// payload encoding is the caller's business.
type Record struct {
	Version int64
	Payload []byte
}

// WALOptions tunes a WAL.
type WALOptions struct {
	// SegmentBytes is the rotation threshold (default 4 MiB): once the
	// active segment exceeds it, the segment is sealed and a new one
	// started. Sealed segments are the unit of truncation.
	SegmentBytes int64

	// NoSync skips every fsync. Appends then acknowledge after the OS
	// write only — crash durability is lost, but the full logging path
	// is exercised; benchmarks use it to separate encoding cost from
	// media cost.
	NoSync bool

	// Metrics, when non-nil, receives the log's instrumentation (see
	// Metrics). Nil leaves every observation a no-op.
	Metrics *Metrics

	// OnRotate, when non-nil, is called each time the active segment is
	// sealed by rotation, with the sealed segment's sequence number and
	// the maximum record version it holds. Log tailers (replication) use
	// it instead of polling the directory. It runs with the WAL's file
	// lock held: it must return quickly and must not call back into the
	// WAL (a channel send or condition signal is the intended body).
	OnRotate func(seq uint64, maxVer int64)

	// Tracer, when non-nil, receives a batch-level fsync-stage span (trace
	// ID 0, Extra = records flushed) from each group-commit leader. The
	// per-request wal stage — queue wait plus this fsync, as one appender
	// experienced it — is recorded a layer up, around Append.
	Tracer *trace.Recorder

	// FsyncDelay injects an artificial sleep before every fsync (fault
	// injection: makes the wal/fsync stages dominate a request so trace
	// attribution can be demonstrated and tested). Zero disables.
	FsyncDelay time.Duration
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// WAL is a segmented write-ahead log with group commit: concurrent Append
// calls coalesce into one file write and one fsync. Safe for concurrent
// use by any number of appenders; Close only after appenders are done.
type WAL struct {
	dir  string
	opts WALOptions
	met  *Metrics // never nil; fields may be (nil-safe no-ops)

	// qmu guards the queue of appends awaiting a leader. qspare is the
	// previous leader's drained queue slice, recycled so steady-state
	// queueing never allocates.
	qmu    sync.Mutex
	queue  []*appendReq
	qspare []*appendReq

	// fmu serializes leaders and every other file-state mutation
	// (rotation, truncation, close).
	fmu    sync.Mutex
	f      *os.File
	seq    uint64
	size   int64
	curMax int64  // max record version in the active segment
	wbuf   []byte // group-commit coalescing buffer, reused across flushes
	sealed []sealedSegment
	closed bool

	// closing mirrors closed for the lock-free fast path in Append: an
	// appender that races Close must surface ErrWALClosed, never touch
	// closed file state. The authoritative flag stays closed (under fmu).
	closing atomic.Bool
}

type sealedSegment struct {
	seq    uint64
	path   string
	maxVer int64 // max record version in the segment (0: no records)
	size   int64 // bytes on disk, including the magic header
}

type appendReq struct {
	version int64
	payload []byte
	done    chan error
}

// reqPool recycles append requests (and their one-slot done channels): a
// request's channel holds exactly one send per Append, received by exactly
// one waiter before the request is pooled again, so a recycled channel is
// always empty.
var reqPool = sync.Pool{
	New: func() any { return &appendReq{done: make(chan error, 1)} },
}

func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// OpenWAL opens (creating if needed) the log in dir and returns every
// record it holds, in segment order then file order, tolerating a torn
// final record per segment. All pre-existing segments are sealed — even
// the last, which may be torn — and appends go to a fresh segment, so a
// recovered process never writes after a torn tail.
func OpenWAL(dir string, opts WALOptions) (*WAL, []Record, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names) // fixed-width decimal seq: lexical order is numeric order

	w := &WAL{dir: dir, opts: opts, met: opts.Metrics}
	if w.met == nil {
		w.met = &Metrics{}
	}
	var all []Record
	for _, path := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "wal-%d.log", &seq); err != nil {
			continue // foreign file; leave it alone
		}
		recs, maxVer, size, err := readSegment(path)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, recs...)
		w.sealed = append(w.sealed, sealedSegment{seq: seq, path: path, maxVer: maxVer, size: size})
		if seq > w.seq {
			w.seq = seq
		}
	}
	if err := w.openSegment(w.seq + 1); err != nil {
		return nil, nil, err
	}
	return w, all, nil
}

// readSegment parses one segment file, stopping at the first invalid
// record (torn tail). A missing or short magic yields no records.
func readSegment(path string) (recs []Record, maxVer, size int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	size = int64(len(buf))
	if len(buf) < len(walMagic) || string(buf[:len(walMagic)]) != walMagic {
		return nil, 0, size, nil
	}
	rest := buf[len(walMagic):]
	for len(rest) >= 8 {
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n < 8 || n > maxRecordBytes || int(n) > len(rest)-8 {
			break // torn or corrupt tail
		}
		data := rest[8 : 8+int(n)]
		if crc32.ChecksumIEEE(data) != crc {
			break
		}
		ver := int64(binary.LittleEndian.Uint64(data[0:8]))
		recs = append(recs, Record{Version: ver, Payload: data[8:]})
		if ver > maxVer {
			maxVer = ver
		}
		rest = rest[8+int(n):]
	}
	return recs, maxVer, size, nil
}

// openSegment creates and becomes the active segment seq. Caller holds fmu
// (or is the constructor).
func (w *WAL) openSegment(seq uint64) error {
	path := filepath.Join(w.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return err
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return err
		}
	}
	w.f, w.seq, w.size, w.curMax = f, seq, int64(len(walMagic)), 0
	return nil
}

// rotate seals the active segment and starts the next one. Caller holds
// fmu.
func (w *WAL) rotate() error {
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, sealedSegment{
		seq:    w.seq,
		path:   filepath.Join(w.dir, segmentName(w.seq)),
		maxVer: w.curMax,
		size:   w.size,
	})
	w.met.Rotations.Inc()
	if w.opts.OnRotate != nil {
		w.opts.OnRotate(w.seq, w.curMax)
	}
	return w.openSegment(w.seq + 1)
}

// Append durably logs one record and returns once it (and every record
// batched with it) has been written and — unless NoSync — fsynced. Under
// concurrency, appends queue up while a leader holds the file: the next
// leader writes the whole queue with one write and one fsync (group
// commit), so the fsync cost amortizes across concurrent committers.
func (w *WAL) Append(version int64, payload []byte) error {
	if w.closing.Load() {
		return ErrWALClosed
	}
	req := reqPool.Get().(*appendReq)
	req.version, req.payload = version, payload
	w.qmu.Lock()
	if w.queue == nil {
		w.queue = w.qspare
		w.qspare = nil
	}
	w.queue = append(w.queue, req)
	w.qmu.Unlock()

	w.fmu.Lock()
	// A previous leader may have flushed our request already — it signals
	// done before releasing fmu, so the check cannot race the signal.
	select {
	case err := <-req.done:
		w.fmu.Unlock()
		req.payload = nil
		reqPool.Put(req)
		return err
	default:
	}
	w.qmu.Lock()
	batch := w.queue
	w.queue = nil
	w.qmu.Unlock()
	err := w.writeBatch(batch)
	for _, r := range batch {
		r.done <- err
	}
	// Recycle the drained queue slice for the next leader's batch. Each
	// waiter recycles its own request after receiving from done.
	for i := range batch {
		batch[i] = nil
	}
	w.qmu.Lock()
	if w.qspare == nil || cap(batch) > cap(w.qspare) {
		w.qspare = batch[:0]
	}
	w.qmu.Unlock()
	w.fmu.Unlock()
	ferr := <-req.done
	req.payload = nil
	reqPool.Put(req)
	return ferr
}

// writeBatch writes a group of records as one file write plus one fsync,
// rotating first if the active segment is already past the threshold,
// encoding into the WAL's reused coalescing buffer (caller holds fmu, so
// at most one flush owns it at a time).
func (w *WAL) writeBatch(batch []*appendReq) error {
	if w.closed {
		return ErrWALClosed
	}
	var n int
	for _, r := range batch {
		n += 8 + 8 + len(r.payload)
	}
	if w.size > int64(len(walMagic)) && w.size+int64(n) > w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if cap(w.wbuf) < n {
		w.wbuf = make([]byte, 0, n)
	}
	buf := w.wbuf[:0]
	maxVer := w.curMax
	for _, r := range batch {
		data := 8 + len(r.payload)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(data))
		crcAt := len(buf)
		buf = append(buf, 0, 0, 0, 0) // crc placeholder
		dataAt := len(buf)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.version))
		buf = append(buf, r.payload...)
		binary.LittleEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[dataAt:]))
		if r.version > maxVer {
			maxVer = r.version
		}
	}
	w.wbuf = buf[:0]
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if !w.opts.NoSync {
		start := time.Now()
		if d := w.opts.FsyncDelay; d > 0 {
			time.Sleep(d) // fault injection; counted in the fsync stage
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.met.FsyncSeconds.ObserveSince(start)
		if tr := w.opts.Tracer; tr != nil {
			tr.Record(trace.StageFsync, 0, 0, start, time.Since(start), int64(len(batch)))
		}
	}
	w.size += int64(len(buf))
	w.curMax = maxVer
	w.met.Flushes.Inc()
	w.met.FlushRecords.Observe(float64(len(batch)))
	w.met.Appends.Add(uint64(len(batch)))
	w.met.BytesWritten.Add(uint64(len(buf)))
	return nil
}

// TruncateBelow deletes every sealed segment whose records all committed
// at or below version — they are fully covered by a checkpoint at that
// version and can never be replayed. The active segment is first sealed
// too if the checkpoint covers it, so a quiescent log truncates to
// (almost) nothing. Concurrent appends are safe: they land in the active
// segment, which is never deleted.
func (w *WAL) TruncateBelow(version int64) error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if w.size > int64(len(walMagic)) && w.curMax <= version {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	// Collect survivors into a fresh slice: a failed remove keeps its
	// segment tracked (it will be retried by the next truncation) instead
	// of corrupting the list with a partially shifted in-place filter.
	var firstErr error
	kept := make([]sealedSegment, 0, len(w.sealed))
	for _, s := range w.sealed {
		if s.maxVer <= version {
			err := os.Remove(s.path)
			if err == nil || os.IsNotExist(err) {
				w.met.SegmentsDeleted.Inc()
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		kept = append(kept, s)
	}
	w.sealed = kept
	if firstErr != nil {
		return firstErr
	}
	if !w.opts.NoSync {
		return syncDir(w.dir)
	}
	return nil
}

// TailAbove reads back every record in the log whose version is strictly
// greater than version: the disk-side tailing API replication's catch-up
// path uses to close the gap between a replica's watermark and the live
// stream without re-bootstrapping. Segments are read outside the WAL's
// locks, so appends proceed concurrently; a batch mid-write in the active
// segment fails its checksum and is simply not visible yet (it will reach
// the caller through the live feed instead). A segment deleted by a
// concurrent checkpoint truncation surfaces as an error — the caller
// falls back to a checkpoint bootstrap. Records come back in segment
// order, not version order; payloads are freshly allocated.
func (w *WAL) TailAbove(version int64) ([]Record, error) {
	w.fmu.Lock()
	if w.closed {
		w.fmu.Unlock()
		return nil, ErrWALClosed
	}
	paths := make([]string, 0, len(w.sealed)+1)
	for _, s := range w.sealed {
		if s.maxVer > version {
			paths = append(paths, s.path)
		}
	}
	if w.curMax > version {
		paths = append(paths, filepath.Join(w.dir, segmentName(w.seq)))
	}
	w.fmu.Unlock()

	var out []Record
	for _, p := range paths {
		recs, _, _, err := readSegment(p)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if r.Version > version {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// SealedSegments reports how many sealed (rotation-completed) segments the
// log currently retains; diagnostics and tests use it to observe
// truncation.
func (w *WAL) SealedSegments() int {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return len(w.sealed)
}

// Close syncs and closes the active segment. Appends after Close fail with
// ErrWALClosed; Close must not race in-flight appends.
func (w *WAL) Close() error {
	w.closing.Store(true)
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
