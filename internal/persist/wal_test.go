package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func openTestWAL(t *testing.T, dir string, opts WALOptions) (*WAL, []Record) {
	t.Helper()
	opts.NoSync = true // tests exercise format and concurrency, not media
	w, recs, err := OpenWAL(dir, opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w, recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs := openTestWAL(t, dir, WALOptions{})
	if len(recs) != 0 {
		t.Fatalf("fresh WAL has %d records", len(recs))
	}
	for i := 0; i < 100; i++ {
		if err := w.Append(int64(i+1), []byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, recs = openTestWAL(t, dir, WALOptions{})
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Version != int64(i+1) || string(r.Payload) != fmt.Sprintf("payload-%03d", i) {
			t.Fatalf("record %d = (%d, %q)", i, r.Version, r.Payload)
		}
	}
}

func TestWALConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{})
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := int64(g*per + i + 1)
				if err := w.Append(v, []byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	w.Close()

	_, recs := openTestWAL(t, dir, WALOptions{})
	if len(recs) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*per)
	}
	seen := map[int64]bool{}
	for _, r := range recs {
		if seen[r.Version] {
			t.Fatalf("duplicate version %d", r.Version)
		}
		seen[r.Version] = true
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{SegmentBytes: 256})
	payload := bytes.Repeat([]byte{'x'}, 64)
	for i := 0; i < 40; i++ {
		if err := w.Append(int64(i+1), payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if w.SealedSegments() == 0 {
		t.Fatal("no rotation happened at 256-byte segments")
	}

	// Truncating below version 20 must delete only fully covered segments
	// and keep every record above 20 replayable.
	if err := w.TruncateBelow(20); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	w.Close()
	_, recs := openTestWAL(t, dir, WALOptions{})
	got := map[int64]bool{}
	for _, r := range recs {
		got[r.Version] = true
	}
	for v := int64(21); v <= 40; v++ {
		if !got[v] {
			t.Fatalf("version %d lost by truncation", v)
		}
	}

	// Truncating at the max version leaves nothing sealed.
	w2, _ := openTestWAL(t, dir, WALOptions{})
	if err := w2.TruncateBelow(40); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	if n := w2.SealedSegments(); n != 0 {
		t.Fatalf("%d sealed segments survive full truncation", n)
	}
	w2.Close()
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, WALOptions{})
	for i := 0; i < 10; i++ {
		if err := w.Append(int64(i+1), []byte("intact")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()

	// Simulate a crash mid-append: chop bytes off the record that was
	// being written, in three degrees of tearing.
	names, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	sort.Strings(names)
	seg := names[0]
	for _, chop := range []int64{1, 5, 11} {
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, info.Size()-chop); err != nil {
			t.Fatal(err)
		}
		recs, _, _, err := readSegment(seg)
		if err != nil {
			t.Fatalf("readSegment after %d-byte tear: %v", chop, err)
		}
		want := 9 // the torn record is dropped, all earlier survive
		if len(recs) < want {
			t.Fatalf("after tearing, %d records survive, want >= %d", len(recs), want)
		}
	}

	// Garbage appended past the valid records (a torn record whose length
	// field is junk) must also be ignored.
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3})
	f.Close()
	recs, _, _, err := readSegment(seg)
	if err != nil {
		t.Fatalf("readSegment with garbage tail: %v", err)
	}
	if len(recs) < 8 {
		t.Fatalf("garbage tail destroyed valid records: %d left", len(recs))
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	w, _ := openTestWAL(t, t.TempDir(), WALOptions{})
	w.Close()
	if err := w.Append(1, []byte("x")); err != ErrWALClosed {
		t.Fatalf("Append after Close: %v, want ErrWALClosed", err)
	}
}
