package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeTestCheckpoint(t *testing.T, dir string, version int64, n int) {
	t.Helper()
	w, err := CreateCheckpoint(dir, version, true)
	if err != nil {
		t.Fatalf("CreateCheckpoint: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := w.Add([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d@%d", i, version))); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTestCheckpoint(t, dir, 77, 500)
	ver, path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if ver != 77 {
		t.Fatalf("version = %d, want 77", ver)
	}
	i := 0
	if _, err := ReadCheckpoint(path, func(k, v []byte) error {
		if string(k) != fmt.Sprintf("k%04d", i) || string(v) != fmt.Sprintf("v%d@77", i) {
			t.Fatalf("entry %d = (%q, %q)", i, k, v)
		}
		i++
		return nil
	}); err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if i != 500 {
		t.Fatalf("streamed %d entries, want 500", i)
	}
}

func TestCheckpointEmpty(t *testing.T) {
	dir := t.TempDir()
	writeTestCheckpoint(t, dir, 5, 0)
	ver, _, err := LatestCheckpoint(dir)
	if err != nil || ver != 5 {
		t.Fatalf("empty checkpoint: ver=%d err=%v", ver, err)
	}
}

func TestCheckpointNewestValidWins(t *testing.T) {
	dir := t.TempDir()
	writeTestCheckpoint(t, dir, 10, 3)
	writeTestCheckpoint(t, dir, 20, 3)

	// Corrupt the newest by flipping a byte mid-file: the loader must fall
	// back to version 10.
	path := filepath.Join(dir, checkpointName(20))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	ver, _, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint with corrupt newest: %v", err)
	}
	if ver != 10 {
		t.Fatalf("fell back to version %d, want 10", ver)
	}

	// A truncated newest (crash during rename-window write) is also skipped.
	writeTestCheckpoint(t, dir, 30, 100)
	p30 := filepath.Join(dir, checkpointName(30))
	info, _ := os.Stat(p30)
	os.Truncate(p30, info.Size()/2)
	ver, _, err = LatestCheckpoint(dir)
	if err != nil || ver != 10 {
		t.Fatalf("after truncating v30: ver=%d err=%v, want 10", ver, err)
	}
}

func TestCheckpointNone(t *testing.T) {
	if _, _, err := LatestCheckpoint(t.TempDir()); err != ErrNoCheckpoint {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestDropCheckpointsBelow(t *testing.T) {
	dir := t.TempDir()
	writeTestCheckpoint(t, dir, 10, 1)
	writeTestCheckpoint(t, dir, 20, 1)
	writeTestCheckpoint(t, dir, 30, 1)
	if err := DropCheckpointsBelow(dir, 30); err != nil {
		t.Fatalf("DropCheckpointsBelow: %v", err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "ckpt-*"+ckptSuffix))
	if len(names) != 1 {
		t.Fatalf("%d checkpoints survive, want 1 (%v)", len(names), names)
	}
	ver, _, err := LatestCheckpoint(dir)
	if err != nil || ver != 30 {
		t.Fatalf("ver=%d err=%v, want 30", ver, err)
	}
}

func TestRemoveStaleCheckpointTemps(t *testing.T) {
	dir := t.TempDir()
	writeTestCheckpoint(t, dir, 10, 2)
	// A crash mid-checkpoint leaves a .tmp behind; Abort was never run.
	stale := filepath.Join(dir, checkpointName(20)+".tmp")
	if err := os.WriteFile(stale, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RemoveStaleCheckpointTemps(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived: %v", err)
	}
	// The committed checkpoint is untouched.
	if ver, _, err := LatestCheckpoint(dir); err != nil || ver != 10 {
		t.Fatalf("ver=%d err=%v after temp cleanup", ver, err)
	}
}

func TestCheckpointAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateCheckpoint(dir, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Add([]byte("k"), []byte("v"))
	w.Abort()
	if _, _, err := LatestCheckpoint(dir); err != ErrNoCheckpoint {
		t.Fatalf("aborted checkpoint visible: %v", err)
	}
}
