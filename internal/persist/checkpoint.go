package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint file format:
//
//	magic "JFCKPT01" | i64 version | entry* | 0x00 | u64 count | u32 crc
//
// where an entry is
//
//	0x01 | uvarint klen | key | uvarint vlen | val
//
// (integers little endian, varints standard Go uvarints) and crc is IEEE
// CRC-32 over everything before the crc field. A checkpoint is written to
// a .tmp file, fsynced, and renamed into place, so a crash mid-write
// leaves no half-valid checkpoint; the loader additionally verifies count
// and checksum and falls back to the next-newest file, so even a corrupted
// rename survivor is skipped, not trusted.
const (
	ckptMagic  = "JFCKPT01"
	ckptSuffix = ".ck"

	tagEntry = 0x01
	tagEnd   = 0x00
)

// ErrNoCheckpoint is returned by LatestCheckpoint when dir holds no valid
// checkpoint file.
var ErrNoCheckpoint = errors.New("persist: no valid checkpoint")

func checkpointName(version int64) string {
	return fmt.Sprintf("ckpt-%016x%s", uint64(version), ckptSuffix)
}

// CheckpointWriter streams one checkpoint file. Create it with
// CreateCheckpoint, Add every entry, then Commit (or Abort). Not safe for
// concurrent use.
type CheckpointWriter struct {
	dir, tmpPath, finalPath string
	f                       *os.File
	bw                      *bufio.Writer
	h                       hash.Hash32
	count                   uint64
	nosync                  bool
	scratch                 []byte
}

// CreateCheckpoint starts a checkpoint at the given snapshot version,
// writing to a temporary file in dir.
func CreateCheckpoint(dir string, version int64, nosync bool) (*CheckpointWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	tmp := filepath.Join(dir, checkpointName(version)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &CheckpointWriter{
		dir:       dir,
		tmpPath:   tmp,
		finalPath: filepath.Join(dir, checkpointName(version)),
		f:         f,
		bw:        bufio.NewWriterSize(f, 1<<16),
		h:         crc32.NewIEEE(),
		nosync:    nosync,
	}
	hdr := make([]byte, 0, len(ckptMagic)+8)
	hdr = append(hdr, ckptMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(version))
	if err := w.write(hdr); err != nil {
		w.Abort()
		return nil, err
	}
	return w, nil
}

// write sends b to both the file buffer and the running checksum.
func (w *CheckpointWriter) write(b []byte) error {
	w.h.Write(b)
	_, err := w.bw.Write(b)
	return err
}

// Add appends one key/value entry.
func (w *CheckpointWriter) Add(key, val []byte) error {
	b := w.scratch[:0]
	b = append(b, tagEntry)
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = append(b, key...)
	b = binary.AppendUvarint(b, uint64(len(val)))
	b = append(b, val...)
	w.scratch = b
	if err := w.write(b); err != nil {
		return err
	}
	w.count++
	return nil
}

// Commit writes the footer, fsyncs, and renames the checkpoint into place,
// making it the newest durable checkpoint.
func (w *CheckpointWriter) Commit() error {
	foot := make([]byte, 0, 9)
	foot = append(foot, tagEnd)
	foot = binary.LittleEndian.AppendUint64(foot, w.count)
	if err := w.write(foot); err != nil {
		w.Abort()
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], w.h.Sum32())
	if _, err := w.bw.Write(crcb[:]); err != nil {
		w.Abort()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return err
	}
	if !w.nosync {
		if err := w.f.Sync(); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmpPath)
		return err
	}
	if err := os.Rename(w.tmpPath, w.finalPath); err != nil {
		os.Remove(w.tmpPath)
		return err
	}
	if !w.nosync {
		return syncDir(w.dir)
	}
	return nil
}

// Abort discards the in-progress checkpoint.
func (w *CheckpointWriter) Abort() {
	w.f.Close()
	os.Remove(w.tmpPath)
}

// LatestCheckpoint finds the newest valid checkpoint in dir, fully
// verifying candidates (checksum and entry count) from newest to oldest
// and skipping invalid ones. It returns ErrNoCheckpoint when none
// qualifies — recovery then starts from an empty map plus the log.
func LatestCheckpoint(dir string) (version int64, path string, err error) {
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*"+ckptSuffix))
	if err != nil {
		return 0, "", err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // fixed-width hex: lexical = numeric
	for _, p := range names {
		v, err := ReadCheckpoint(p, func(_, _ []byte) error { return nil })
		if err != nil {
			continue
		}
		return v, p, nil
	}
	return 0, "", ErrNoCheckpoint
}

// DropCheckpointsBelow removes checkpoint files whose version is below
// keep; the checkpoint writer calls it after a successful Commit so only
// the newest checkpoint (and any concurrent newer one) survives.
func DropCheckpointsBelow(dir string, keep int64) error {
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*"+ckptSuffix))
	if err != nil {
		return err
	}
	for _, p := range names {
		var v uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "ckpt-%x"+ckptSuffix, &v); err != nil {
			continue
		}
		if int64(v) < keep {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// RemoveStaleCheckpointTemps deletes leftover ckpt-*.ck.tmp files — the
// residue of a process killed while streaming a checkpoint. Call it on
// open, when no checkpoint can be in flight; a crashed temp is useless
// (Commit renames before the checkpoint becomes visible) but full-store
// sized, so leaving it would grow the directory by one dead file per
// crash-mid-checkpoint.
func RemoveStaleCheckpointTemps(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*"+ckptSuffix+".tmp"))
	if err != nil {
		return err
	}
	for _, p := range names {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// crcReader reads through a bufio.Reader while hashing every byte
// delivered, so the footer checksum can be verified without buffering the
// file (the crc field itself is read around the hasher).
type crcReader struct {
	br *bufio.Reader
	h  hash.Hash32
}

func (r *crcReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.h.Write([]byte{b})
	}
	return b, err
}

func (r *crcReader) full(buf []byte) error {
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return err
	}
	r.h.Write(buf)
	return nil
}

func (r *crcReader) uvarint() (uint64, error) { return binary.ReadUvarint(r) }

// ReadCheckpoint streams the entries of the checkpoint at path into fn,
// verifying the trailing checksum and entry count; if verification fails,
// the error reports it — callers that must not observe a partial load
// should verify first with a no-op fn (as LatestCheckpoint does) and
// stream second. The key and val slices are reused between calls: fn must
// decode or copy, not retain them.
func ReadCheckpoint(path string, fn func(key, val []byte) error) (version int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := &crcReader{br: bufio.NewReaderSize(f, 1<<16), h: crc32.NewIEEE()}

	hdr := make([]byte, len(ckptMagic)+8)
	if err := r.full(hdr); err != nil {
		return 0, fmt.Errorf("persist: checkpoint %s: short header", path)
	}
	if string(hdr[:len(ckptMagic)]) != ckptMagic {
		return 0, fmt.Errorf("persist: checkpoint %s: bad magic", path)
	}
	version = int64(binary.LittleEndian.Uint64(hdr[len(ckptMagic):]))

	var count uint64
	var key, val []byte
	for {
		tag, err := r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("persist: checkpoint %s: truncated", path)
		}
		if tag == tagEnd {
			break
		}
		if tag != tagEntry {
			return 0, fmt.Errorf("persist: checkpoint %s: bad entry tag %#x", path, tag)
		}
		klen, err := r.uvarint()
		if err != nil || klen > maxRecordBytes {
			return 0, fmt.Errorf("persist: checkpoint %s: bad key length", path)
		}
		if uint64(cap(key)) < klen {
			key = make([]byte, klen)
		}
		key = key[:klen]
		if err := r.full(key); err != nil {
			return 0, fmt.Errorf("persist: checkpoint %s: truncated key", path)
		}
		vlen, err := r.uvarint()
		if err != nil || vlen > maxRecordBytes {
			return 0, fmt.Errorf("persist: checkpoint %s: bad value length", path)
		}
		if uint64(cap(val)) < vlen {
			val = make([]byte, vlen)
		}
		val = val[:vlen]
		if err := r.full(val); err != nil {
			return 0, fmt.Errorf("persist: checkpoint %s: truncated value", path)
		}
		if err := fn(key, val); err != nil {
			return 0, err
		}
		count++
	}
	var foot [8]byte
	if err := r.full(foot[:]); err != nil {
		return 0, fmt.Errorf("persist: checkpoint %s: truncated footer", path)
	}
	if got := binary.LittleEndian.Uint64(foot[:]); got != count {
		return 0, fmt.Errorf("persist: checkpoint %s: entry count %d, footer says %d", path, count, got)
	}
	want := r.h.Sum32()
	var crcb [4]byte
	if _, err := io.ReadFull(r.br, crcb[:]); err != nil {
		return 0, fmt.Errorf("persist: checkpoint %s: missing checksum", path)
	}
	if got := binary.LittleEndian.Uint32(crcb[:]); got != want {
		return 0, fmt.Errorf("persist: checkpoint %s: checksum mismatch", path)
	}
	return version, nil
}
