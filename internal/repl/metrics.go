package repl

import (
	"repro/internal/obs"
)

// Metrics is the replication layer's instrumentation panel. A process
// wires the side it plays: RegisterSourceMetrics on a primary,
// RegisterReplicaMetrics on a replica (a promoted replica keeps its
// replica panel and gains a source panel when it starts serving replicas
// of its own). All series are aggregates — no per-replica labels — so
// the series set is fixed at wiring time, as internal/obs requires.
type Metrics struct {
	// Source side.
	RecordsPublished *obs.Counter // records published through the tap
	Resyncs          *obs.Counter // subscribers severed (lag or sync timeout)
	SyncTimeouts     *obs.Counter // synchronous-ack waits that expired
	Bootstraps       *obs.Counter // checkpoint bootstraps served
	Catchups         *obs.Counter // disk catch-ups served

	// Replica side.
	RecordsApplied *obs.Counter // records applied to the local store
	Reconnects     *obs.Counter // (re)connect attempts to the primary
}

// noopMetrics returns a panel wired to a throwaway registry, so
// unconfigured taps and runners can count unconditionally.
func noopMetrics() *Metrics {
	return newMetrics(obs.NewRegistry())
}

func newMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		RecordsPublished: reg.Counter("jiffy_repl_records_published_total",
			"Records published into the replication stream."),
		Resyncs: reg.Counter("jiffy_repl_resyncs_total",
			"Replica connections severed for lagging; each resumes or re-bootstraps."),
		SyncTimeouts: reg.Counter("jiffy_repl_sync_timeouts_total",
			"Synchronous replication acks that timed out (write proceeded, laggard severed)."),
		Bootstraps: reg.Counter("jiffy_repl_bootstraps_total",
			"Checkpoint bootstraps served to replicas."),
		Catchups: reg.Counter("jiffy_repl_catchups_total",
			"Disk (WAL tail) catch-ups served to replicas."),
		RecordsApplied: reg.Counter("jiffy_repl_records_applied_total",
			"Primary records applied to the local replica store."),
		Reconnects: reg.Counter("jiffy_repl_reconnects_total",
			"Connection attempts to the primary (first and retries)."),
	}
}

// RegisterMetrics registers the replication counter panel on reg and
// returns it; pass it to TapOptions/RunnerOptions.
func RegisterMetrics(reg *obs.Registry) *Metrics {
	return newMetrics(reg)
}

// RegisterSourceGauges registers the primary-side lag gauges, computed
// from the tap's subscriber census at each scrape.
func RegisterSourceGauges(reg *obs.Registry, t *Tap) {
	RegisterSourceGaugesFunc(reg, func() *Tap { return t })
}

// RegisterSourceGaugesFunc is RegisterSourceGauges for a tap resolved at
// scrape time: a node that starts serving the stream only after a
// promotion (or stops after a demotion) registers once with a provider
// returning the current tap, nil while there is none.
func RegisterSourceGaugesFunc(reg *obs.Registry, tap func() *Tap) {
	stats := func() LagStats {
		if t := tap(); t != nil {
			return t.LagStats()
		}
		return LagStats{}
	}
	reg.Func("jiffy_repl_replicas_connected",
		"Replica connections currently subscribed (synced or catching up).",
		func() float64 { return float64(stats().Replicas) })
	reg.Func("jiffy_repl_lag_versions",
		"Largest published-version minus replica-watermark over synced replicas.",
		func() float64 { return float64(stats().MaxLagVersions) })
	reg.Func("jiffy_repl_lag_bytes",
		"Largest count of stream bytes past a synced replica's receipt ack.",
		func() float64 { return float64(stats().MaxLagBytes) })
}

// RegisterReplicaGauges registers the replica-side watermark gauge.
// watermark is typically durable.Replica's Watermark method.
func RegisterReplicaGauges(reg *obs.Registry, watermark func() int64) {
	reg.Func("jiffy_repl_watermark",
		"Replica's applied replication watermark (0: never synced).",
		func() float64 { return float64(watermark()) })
}

// RegisterEpochGauge registers the node's fencing epoch — the one series
// an operator watches during a failover: every survivor converges on the
// new epoch, and a stale primary shows the old value until it is fenced.
// epoch is durable.Sharded.Epoch or durable.Replica.Epoch.
func RegisterEpochGauge(reg *obs.Registry, epoch func() int64) {
	reg.Func("jiffy_repl_epoch",
		"Fencing epoch this node believes current (bumped by each promotion).",
		func() float64 { return float64(epoch()) })
}
