package repl

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/trace"
)

// TestReplTraceStitching proves a traced write's ID survives the stream:
// the primary's recorder holds its wal and repl_stream spans, the
// replica's recorder a repl_apply span, all under the one client ID —
// plus batch-level repl_ack spans on the source once acks flow.
func TestReplTraceStitching(t *testing.T) {
	testutil.LeakCheck(t)
	prec, rrec := trace.NewRecorder(4096), trace.NewRecorder(4096)
	store, _, addr := startSource(t, SourceOptions{Tracer: prec})
	rep, _ := startRunner(t, addr, RunnerOptions{Tracer: rrec})

	// Interleave traced and untraced writes the way a sampling client
	// would: every seventh write carries an ID.
	traced := map[uint64]bool{}
	var last int64
	for i := 0; i < 200; i++ {
		var tc *trace.Ctx
		if i%7 == 0 {
			tid := uint64(i)*2 + 3 // odd, never 0
			tc = new(trace.Ctx)
			tc.Arm(prec, tid, 1)
			traced[tid] = true
		}
		ver, err := store.PutVT(fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i), tc)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		last = ver
	}
	waitConverged(t, store, rep, last)

	// Both recorders must join the same IDs.
	idsAt := func(r *trace.Recorder, stage trace.Stage) map[uint64]bool {
		m := map[uint64]bool{}
		for _, sp := range r.Snapshot() {
			if sp.Stage == stage && sp.Trace != 0 {
				m[sp.Trace] = true
			}
		}
		return m
	}
	for _, probe := range []struct {
		name  string
		rec   *trace.Recorder
		stage trace.Stage
	}{
		{"primary wal", prec, trace.StageWAL},
		{"primary repl_stream", prec, trace.StageReplStream},
		{"replica repl_apply", rrec, trace.StageReplApply},
	} {
		got := idsAt(probe.rec, probe.stage)
		for tid := range traced {
			if !got[tid] {
				t.Errorf("%s: traced ID %x missing (have %d IDs)", probe.name, tid, len(got))
			}
		}
		for tid := range got {
			if !traced[tid] {
				t.Errorf("%s: unexpected ID %x", probe.name, tid)
			}
		}
	}

	// Ack round-trip spans are batch-level; they appear once the replica
	// has acked past the tail.
	testutil.WaitFor(t, 5*time.Second, func() bool {
		for _, sp := range prec.Snapshot() {
			if sp.Stage == trace.StageReplAck {
				return true
			}
		}
		return false
	}, "no repl_ack spans recorded on the source")
}
