// Package repl implements WAL-shipping replication for durable jiffy
// stores: a primary taps every durable update (jiffy/durable.Feed),
// buffers the tail in a bounded in-memory ring, and streams it to
// replicas over the internal/wire framing; replicas apply the records at
// the primary's exact commit versions and serve reads at a replicated
// watermark. See DESIGN.md §11 for the protocol and its safety argument.
package repl

import (
	"math"
	"math/rand"
	"time"
)

// Backoff computes capped, jittered exponential retry delays. The zero
// value uses the defaults (50ms base, 5s cap, factor 2, 50% jitter). It
// is shared by the replica runner's reconnect loop, jiffy/client's
// optional dial retry, and the failover detector's grace pacing, so
// every retrying party in the system paces the same way. A Backoff
// belongs to one retry loop — it is not safe for concurrent use; give
// each loop its own copy.
//
// Jitter draws from a per-Backoff PRNG, not the global math/rand source:
// a reconnect storm across hundreds of connections must not serialize
// every loop on one mutex. The PRNG seeds itself lazily (one global draw
// per Backoff, not per Next); Seed pins it for deterministic tests.
type Backoff struct {
	Base   time.Duration // first delay; default 50ms
	Max    time.Duration // delay cap; default 5s
	Factor float64       // per-attempt growth; default 2
	Jitter float64       // fraction of each delay randomized, in [0,1]; default 0.5

	attempt int
	rng     *rand.Rand
}

// Seed pins the backoff's jitter PRNG so the delay sequence is
// deterministic — for tests, and for deriving a node's failover grace
// jitter from its stable id.
func (b *Backoff) Seed(seed int64) { b.rng = rand.New(rand.NewSource(seed)) }

// Next returns the delay to sleep before the next attempt and advances
// the attempt counter. Jitter spreads simultaneous retriers: the returned
// delay is uniform in [d*(1-Jitter), d] for the attempt's nominal d.
func (b *Backoff) Next() time.Duration {
	base, max, factor, jitter := b.Base, b.Max, b.Factor, b.Jitter
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	if jitter <= 0 || jitter > 1 {
		jitter = 0.5
	}
	if b.rng == nil {
		// One trip through the global source to diverge from every other
		// lazily seeded Backoff; all later draws are lock-free and local.
		b.rng = rand.New(rand.NewSource(rand.Int63()))
	}
	d := float64(base) * math.Pow(factor, float64(b.attempt))
	if d >= float64(max) {
		d = float64(max)
	} else {
		b.attempt++
	}
	d -= b.rng.Float64() * jitter * d
	return time.Duration(d)
}

// Reset returns the backoff to its first-attempt delay; call it after a
// successful connection. The jitter PRNG (and any Seed) is kept.
func (b *Backoff) Reset() { b.attempt = 0 }
