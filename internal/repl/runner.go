package repl

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// ReplicaStore is what the runner needs from the local replica store;
// *durable.Replica satisfies it.
type ReplicaStore[K cmp.Ordered, V any] interface {
	Watermark() int64
	Epoch() int64
	AdoptEpoch(epoch, start int64) error
	ApplyRecord(version int64, payload []byte) error
	AdvanceTo(frontier int64)
	BeginBootstrap() error
	ApplyBootstrap(version int64, ops []jiffy.BatchOp[K, V]) error
	FinishBootstrap(version int64) error
	PromoteAt(epoch int64) (int64, error)
}

// RunnerOptions tunes a Runner. The zero value selects the defaults.
type RunnerOptions struct {
	// Backoff paces reconnect attempts (zero value: 50ms..5s, jittered).
	Backoff Backoff

	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration

	// ReadTimeout bounds the wait for the next frame (default 10s). The
	// primary heartbeats every 500ms by default, so a silent connection
	// is dead, not idle; expiry tears it down and reconnects.
	ReadTimeout time.Duration

	// WriteTimeout bounds each ack write (default 5s).
	WriteTimeout time.Duration

	// Logf receives connection lifecycle messages; nil silences them.
	Logf func(format string, args ...any)

	// Metrics receives the runner's instrumentation; nil disables it.
	Metrics *Metrics

	// Tracer, when non-nil, receives a repl_apply span for every traced
	// record applied to the local store: the replica-side half of a write's
	// end-to-end trace, joined to the primary's spans by the trace ID the
	// proto-3 stream carries.
	Tracer *trace.Recorder
}

func (o RunnerOptions) withDefaults() RunnerOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = noopMetrics()
	}
	return o
}

// Runner is the replica side of replication: it keeps one connection to
// the primary's replication listener, resuming from the local watermark
// with jittered exponential backoff after every failure — a network blip
// costs a reconnect and a (ring or disk) resume, never a re-bootstrap
// unless the primary truncated past the watermark.
//
// Records arrive in publish order, which is not version order (group
// commit interleaves shards), so the runner buffers them by version —
// versions are unique, so the buffer also de-duplicates catch-up/stream
// overlap — and applies them in version order up to each batch's
// frontier. Promote applies everything still buffered, acknowledged or
// not, then turns the store into a primary.
type Runner[K cmp.Ordered, V any] struct {
	store ReplicaStore[K, V]
	codec durable.Codec[K, V]
	addr  string
	opts  RunnerOptions
	met   *Metrics
	bo    *Backoff

	// Loop-goroutine state (owned by loop; by Promote's caller after
	// Stop).
	pending map[int64]pendingRec
	bootVer int64
	bootOps []jiffy.BatchOp[K, V]

	// lastContact is the unix-nano time of the last frame received from
	// the primary (0: none yet this process). The failover detector
	// reads it: heartbeats arrive every HeartbeatEvery while the primary
	// lives, so a stale lastContact is a dead or unreachable primary.
	lastContact atomic.Int64

	mu      sync.Mutex
	conn    net.Conn
	started bool
	stopped bool
	stopCh  chan struct{}
	done    chan struct{}
}

// NewRunner returns a Runner replicating addr's stream into store. Call
// Start to begin.
func NewRunner[K cmp.Ordered, V any](store ReplicaStore[K, V], codec durable.Codec[K, V], addr string, opts RunnerOptions) *Runner[K, V] {
	opts = opts.withDefaults()
	bo := opts.Backoff
	return &Runner[K, V]{
		store:   store,
		codec:   codec,
		addr:    addr,
		opts:    opts,
		met:     opts.Metrics,
		bo:      &bo,
		pending: make(map[int64]pendingRec),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// pendingRec is one buffered stream record awaiting its frontier: the
// copied payload plus the trace ID the proto-3 stream attached (0
// untraced).
type pendingRec struct {
	payload []byte
	tid     uint64
}

func (r *Runner[K, V]) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Start launches the replication loop.
func (r *Runner[K, V]) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started || r.stopped {
		return
	}
	r.started = true
	go r.loop()
}

// Stop terminates the loop and waits for it. Idempotent.
func (r *Runner[K, V]) Stop() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stopCh)
		if r.conn != nil {
			r.conn.Close()
		}
	}
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}

// Promote stops replication, applies every buffered record — thanks to
// synchronous acks, that includes every write the old primary
// acknowledged to a client — and promotes the local store to a primary
// under the next fencing epoch. It returns the version the node promoted
// at. Automatic failover uses PromoteAt with the epoch its election
// chose; Promote (the manual jiffyctl path) bumps by one.
func (r *Runner[K, V]) Promote() (int64, error) {
	return r.PromoteAt(r.store.Epoch() + 1)
}

// PromoteAt is Promote under an explicit fencing epoch (see
// durable.Replica.PromoteAt for the epoch-history contract).
func (r *Runner[K, V]) PromoteAt(epoch int64) (int64, error) {
	r.Stop()
	vers := make([]int64, 0, len(r.pending))
	for v := range r.pending {
		vers = append(vers, v)
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
	maxV := int64(0)
	for _, v := range vers {
		if err := r.store.ApplyRecord(v, r.pending[v].payload); err != nil {
			return 0, fmt.Errorf("repl: promote: apply buffered record at version %d: %w", v, err)
		}
		delete(r.pending, v)
		maxV = v
	}
	if maxV > 0 {
		r.store.AdvanceTo(maxV)
	}
	r.met.RecordsApplied.Add(uint64(len(vers)))
	return r.store.PromoteAt(epoch)
}

// LastContact reports when the last frame (batch, heartbeat or
// bootstrap chunk) arrived from the primary; the zero time when nothing
// has arrived since the process started. Failure detectors compare it
// against the heartbeat interval.
func (r *Runner[K, V]) LastContact() time.Time {
	ns := r.lastContact.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (r *Runner[K, V]) isStopped() bool {
	select {
	case <-r.stopCh:
		return true
	default:
		return false
	}
}

// sleep waits d or until Stop; it reports whether the loop should go on.
func (r *Runner[K, V]) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.stopCh:
		return false
	case <-t.C:
		return true
	}
}

func (r *Runner[K, V]) setConn(c net.Conn) {
	r.mu.Lock()
	r.conn = c
	if c != nil && r.stopped {
		c.Close()
	}
	r.mu.Unlock()
}

func (r *Runner[K, V]) loop() {
	defer close(r.done)
	for {
		if r.isStopped() {
			return
		}
		r.met.Reconnects.Inc()
		c, err := net.DialTimeout("tcp", r.addr, r.opts.DialTimeout)
		if err != nil {
			r.logf("repl: dial %s: %v", r.addr, err)
			if !r.sleep(r.bo.Next()) {
				return
			}
			continue
		}
		r.setConn(c)
		err = r.session(c)
		c.Close()
		r.setConn(nil)
		if r.isStopped() {
			return
		}
		r.logf("repl: stream from %s ended: %v", r.addr, err)
		if !r.sleep(r.bo.Next()) {
			return
		}
	}
}

// session speaks one connection's worth of the protocol: HELLO with the
// local watermark and fencing epoch, then frames until an error.
// Returns why it ended.
func (r *Runner[K, V]) session(c net.Conn) error {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	hello := binary.LittleEndian.AppendUint32(nil, 3)
	hello = binary.LittleEndian.AppendUint64(hello, uint64(r.store.Watermark()))
	hello = binary.LittleEndian.AppendUint64(hello, uint64(r.store.Epoch()))
	if err := r.writeFrame(c, wire.OpReplHello, hello); err != nil {
		return err
	}
	var buf, ackBuf []byte
	for {
		c.SetReadDeadline(time.Now().Add(r.opts.ReadTimeout))
		_, op, body, nbuf, err := wire.ReadFrame(c, buf)
		buf = nbuf
		if err != nil {
			return err
		}
		r.lastContact.Store(time.Now().UnixNano())
		switch op {
		case wire.OpReplEpoch:
			if len(body) < 16 {
				return fmt.Errorf("repl: short epoch body (%d bytes)", len(body))
			}
			epoch := int64(binary.LittleEndian.Uint64(body))
			start := int64(binary.LittleEndian.Uint64(body[8:]))
			if err := r.store.AdoptEpoch(epoch, start); err != nil {
				return fmt.Errorf("repl: adopt epoch %d: %w", epoch, err)
			}
		case wire.OpReplSnapBegin:
			if len(body) < 8 {
				return fmt.Errorf("repl: short SnapBegin body (%d bytes)", len(body))
			}
			vs := int64(binary.LittleEndian.Uint64(body))
			r.logf("repl: bootstrapping from %s at version %d", r.addr, vs)
			if err := r.store.BeginBootstrap(); err != nil {
				return err
			}
			r.bootVer = vs
			clear(r.pending)
		case wire.OpReplSnapChunk:
			if err := r.applyChunk(body); err != nil {
				return err
			}
		case wire.OpReplSnapEnd:
			if err := r.store.FinishBootstrap(r.bootVer); err != nil {
				return err
			}
			r.logf("repl: bootstrap complete, watermark %d", r.bootVer)
			r.bo.Reset()
			ackBuf, err = r.sendAck(c, ackBuf, 0)
			if err != nil {
				return err
			}
		case wire.OpReplBatch:
			ackBuf, err = r.applyBatch(c, ackBuf, body)
			if err != nil {
				return err
			}
			r.bo.Reset()
		default:
			return fmt.Errorf("repl: unexpected frame op %d from primary", op)
		}
	}
}

func (r *Runner[K, V]) writeFrame(c net.Conn, op byte, body []byte) error {
	c.SetWriteDeadline(time.Now().Add(r.opts.WriteTimeout))
	_, err := c.Write(wire.AppendFrame(nil, 0, op, body))
	return err
}

// sendAck writes an OpReplAck carrying lastSeq and the current watermark,
// reusing buf.
func (r *Runner[K, V]) sendAck(c net.Conn, buf []byte, lastSeq uint64) ([]byte, error) {
	frame, lenAt := wire.BeginFrame(buf[:0], 0, wire.OpReplAck)
	frame = binary.LittleEndian.AppendUint64(frame, lastSeq)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(r.store.Watermark()))
	frame = wire.EndFrame(frame, lenAt)
	c.SetWriteDeadline(time.Now().Add(r.opts.WriteTimeout))
	_, err := c.Write(frame)
	return frame, err
}

// applyChunk decodes one bootstrap chunk and applies it at the cut
// version.
func (r *Runner[K, V]) applyChunk(body []byte) error {
	if len(body) < 4 {
		return fmt.Errorf("repl: short SnapChunk body (%d bytes)", len(body))
	}
	n := binary.LittleEndian.Uint32(body)
	p := body[4:]
	ops := r.bootOps[:0]
	for i := uint32(0); i < n; i++ {
		kb, rest, err := wire.TakeBytes(p)
		if err != nil {
			return fmt.Errorf("repl: SnapChunk key: %w", err)
		}
		vb, rest, err := wire.TakeBytes(rest)
		if err != nil {
			return fmt.Errorf("repl: SnapChunk value: %w", err)
		}
		p = rest
		key, err := r.codec.Key.Decode(kb)
		if err != nil {
			return err
		}
		val, err := r.codec.Value.Decode(vb)
		if err != nil {
			return err
		}
		ops = append(ops, jiffy.BatchOp[K, V]{Key: key, Val: val})
	}
	r.bootOps = ops[:0]
	return r.store.ApplyBootstrap(r.bootVer, ops)
}

// applyBatch handles one OpReplBatch: acknowledge receipt first (a
// synchronous primary blocks on it), buffer the records by version, then
// apply everything at or below the frontier in version order and advance
// the watermark.
func (r *Runner[K, V]) applyBatch(c net.Conn, ackBuf, body []byte) ([]byte, error) {
	if len(body) < 20 {
		return ackBuf, fmt.Errorf("repl: short batch body (%d bytes)", len(body))
	}
	frontier := int64(binary.LittleEndian.Uint64(body))
	lastSeq := binary.LittleEndian.Uint64(body[8:])
	n := binary.LittleEndian.Uint32(body[16:])
	p := body[20:]
	wm := r.store.Watermark()
	for i := uint32(0); i < n; i++ {
		// Proto-3 record layout: i64 version | uvarint traceID | uvarint
		// plen | payload (the hello announced proto 3, so the source
		// always sends the trace ID; it is one byte for the untraced
		// common case).
		if len(p) < 8 {
			return ackBuf, fmt.Errorf("repl: truncated batch record header")
		}
		ver := int64(binary.LittleEndian.Uint64(p))
		tid, un := binary.Uvarint(p[8:])
		if un <= 0 {
			return ackBuf, fmt.Errorf("repl: truncated batch record trace ID")
		}
		payload, rest, err := wire.TakeBytes(p[8+un:])
		if err != nil {
			return ackBuf, fmt.Errorf("repl: batch record payload: %w", err)
		}
		p = rest
		if ver > wm {
			// Copy: payload aliases the connection's read buffer.
			r.pending[ver] = pendingRec{payload: append([]byte(nil), payload...), tid: tid}
		}
	}
	ackBuf, err := r.sendAck(c, ackBuf, lastSeq)
	if err != nil {
		return ackBuf, err
	}
	if frontier > wm && len(r.pending) > 0 {
		vers := make([]int64, 0, len(r.pending))
		for v := range r.pending {
			if v <= frontier {
				vers = append(vers, v)
			}
		}
		sort.Slice(vers, func(i, j int) bool { return vers[i] < vers[j] })
		tr := r.opts.Tracer
		for _, v := range vers {
			rec := r.pending[v]
			start := time.Now()
			if err := r.store.ApplyRecord(v, rec.payload); err != nil {
				return ackBuf, err
			}
			if tr != nil && rec.tid != 0 {
				tr.Record(trace.StageReplApply, rec.tid, 0, start, time.Since(start), int64(len(rec.payload)))
			}
			delete(r.pending, v)
		}
		r.met.RecordsApplied.Add(uint64(len(vers)))
	}
	if frontier > wm {
		r.store.AdvanceTo(frontier)
	}
	return ackBuf, nil
}
