package repl

import (
	"fmt"
	"maps"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/jiffy/durable"
)

// Fencing-epoch handshake tests: the proto-2 hello carries the replica's
// epoch, the source answers with its own (or refuses a newer peer), and
// a resume point past a promote boundary forces a full bootstrap.

// TestReplEpochAdoptedFromStream: a replica joining a primary at a later
// epoch adopts that epoch from the handshake and persists it.
func TestReplEpochAdoptedFromStream(t *testing.T) {
	testutil.LeakCheck(t)
	dir := t.TempDir()
	// A primary whose history already reached epoch 5.
	if err := os.WriteFile(filepath.Join(dir, durable.EpochFile), []byte("5 0\n"), 0o644); err != nil {
		t.Fatalf("seed EPOCH: %v", err)
	}
	store, err := durable.OpenSharded(dir, 4, strCodec(), primaryOpts())
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	src := NewSource(store, strCodec(), SourceOptions{HeartbeatEvery: 20 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go src.Serve(ln)
	defer func() {
		src.Close()
		store.Close()
	}()

	rep, _ := startRunner(t, ln.Addr().String(), RunnerOptions{})
	v, err := store.PutV("k", "v")
	if err != nil {
		t.Fatalf("PutV: %v", err)
	}
	testutil.Eventually(t, func() bool { return rep.Watermark() >= v }, "replica never synced")
	testutil.Eventually(t, func() bool { return rep.Epoch() == 5 },
		"replica epoch %d, never adopted the primary's 5", rep.Epoch())
}

// TestReplSourceRefusesStaleEpoch: a source contacted by a replica whose
// epoch is ahead of its own is the stale party — it must refuse to serve
// (serving would resurrect a fenced history) and report the evidence
// through OnPeerEpoch so the process can fence itself.
func TestReplSourceRefusesStaleEpoch(t *testing.T) {
	testutil.LeakCheck(t)
	seen := make(chan int64, 16)
	store, _, addr := startSource(t, SourceOptions{
		OnPeerEpoch: func(e int64) {
			select {
			case seen <- e:
			default:
			}
		},
	})
	if _, err := store.PutV("k", "v"); err != nil {
		t.Fatalf("PutV: %v", err)
	}

	rep, _ := startRunner(t, addr, RunnerOptions{})
	if err := rep.AdoptEpoch(7, 0); err != nil {
		t.Fatalf("AdoptEpoch: %v", err)
	}
	select {
	case e := <-seen:
		if e != 7 {
			t.Fatalf("OnPeerEpoch(%d), want 7", e)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("source never reported the newer peer epoch")
	}
	// The stale source must not have served the stream: the replica stays
	// unsynced and keeps its higher epoch.
	if wm := rep.Watermark(); wm != 0 {
		t.Fatalf("stale source served the stream (replica watermark %d)", wm)
	}
	if e := rep.Epoch(); e != 7 {
		t.Fatalf("replica epoch regressed to %d", e)
	}
}

// TestReplForcedBootstrapAcrossPromotion: B falls behind, then the old
// primary keeps committing to C alone before dying; B promotes at its
// (older) watermark, so C now holds records above B's promote boundary
// that exist in no surviving history. C's resume point lies past the
// boundary for epoch 1, so a resume could replay discarded history — the
// handshake must force a full bootstrap, after which C matches B's
// content exactly (the orphaned records gone) and adopts B's epoch.
func TestReplForcedBootstrapAcrossPromotion(t *testing.T) {
	testutil.LeakCheck(t)
	storeA, _, addrA := startSource(t, SourceOptions{})
	repB, runnerB := startRunner(t, addrA, RunnerOptions{})
	repC, runnerC := startRunner(t, addrA, RunnerOptions{})

	var last int64
	for i := 0; i < 50; i++ {
		v, err := storeA.PutV(fmt.Sprintf("k-%03d", i), "epoch1")
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}
	testutil.Eventually(t, func() bool {
		return repB.Watermark() >= last && repC.Watermark() >= last
	}, "replicas never converged on the old primary")

	// B goes silent; A commits more, replicated only to C — records that
	// will survive in no history once B promotes without them.
	runnerB.Stop()
	var orphanHigh int64
	for i := 0; i < 20; i++ {
		v, err := storeA.PutV(fmt.Sprintf("orphan-%03d", i), "doomed")
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		orphanHigh = v
	}
	testutil.Eventually(t, func() bool { return repC.Watermark() >= orphanHigh },
		"C never applied the post-sever records")

	// The primary dies; C goes quiet; B promotes to epoch 2 at its older
	// watermark — the divergence point.
	runnerC.Stop()
	if _, err := runnerB.PromoteAt(2); err != nil {
		t.Fatalf("PromoteAt: %v", err)
	}
	reg := obs.NewRegistry()
	metB := RegisterMetrics(reg)
	srcB := NewSource[string, string](repB, strCodec(), SourceOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		Metrics:        metB,
		Logf:           t.Logf,
	})
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srcB.Serve(lnB)
	defer srcB.Close()
	for i := 0; i < 20; i++ {
		v, err := repB.PutV(fmt.Sprintf("b-%03d", i), "epoch2")
		if err != nil {
			t.Fatalf("PutV on promoted node: %v", err)
		}
		last = v
	}

	t.Logf("B: epoch %d history %v | C: epoch %d watermark %d",
		repB.Epoch(), repB.EpochHistory(), repC.Epoch(), repC.Watermark())

	// C rejoins pointed at B. Its watermark lies past B's promote
	// boundary: bootstrap, not resume.
	runnerC2 := NewRunner(repC, strCodec(), lnB.Addr().String(), RunnerOptions{
		Backoff: Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Metrics: metB,
		Logf:    t.Logf,
	})
	runnerC2.Start()
	defer runnerC2.Stop()

	// Versions are clock timestamps, so C's stale watermark can already
	// exceed B's post-promote versions — converge on content, not version.
	testutil.Eventually(t, func() bool {
		return repC.Epoch() == 2 && maps.Equal(dump(repB.All), dump(repC.All))
	}, "C never converged on the new primary (epoch %d, %d keys vs %d)",
		repC.Epoch(), repC.Len(), repB.Len())
	if metB.Bootstraps.Value() == 0 {
		t.Fatal("rejoin across a promote boundary resumed instead of bootstrapping")
	}
	if e := repC.Epoch(); e != 2 {
		t.Fatalf("C's epoch %d after rejoin, want 2", e)
	}
	if got, ok := repC.Get("b-019"); !ok || got != "epoch2" {
		t.Fatalf("post-promote key on C: %q/%v", got, ok)
	}
	// The orphaned records — applied from the dead primary, never seen by
	// the survivor — must be gone: they exist in no surviving history.
	if _, ok := repC.Get("orphan-000"); ok {
		t.Fatal("orphaned record survived the forced bootstrap")
	}
}
