package repl

import (
	"testing"
	"time"
)

// publish pushes one record through the full Begin/Publish bracket.
func publish(t *Tap, ver int64, payload string) {
	tok := t.Begin()
	t.Publish(tok, ver, []byte(payload), 0)
}

func TestTapStreamDelivery(t *testing.T) {
	tap := NewTap(0, TapOptions{})
	defer tap.Close()
	sb, _ := tap.subscribe(false)
	defer tap.unsubscribe(sb)

	for v := int64(1); v <= 5; v++ {
		publish(tap, v, "p")
	}
	batch, frontier, err := sb.nextBatch(10, 1<<20, time.Second)
	if err != nil {
		t.Fatalf("nextBatch: %v", err)
	}
	if len(batch) != 5 {
		t.Fatalf("delivered %d records, want 5", len(batch))
	}
	for i, e := range batch {
		if e.ver != int64(i+1) {
			t.Fatalf("record %d has version %d", i, e.ver)
		}
	}
	if frontier != 5 {
		t.Fatalf("frontier %d after full delivery, want 5", frontier)
	}
}

// TestTapFrontierHeldByInflight: an update that has entered the commit
// path but not yet published must hold the frontier below its eventual
// version, or a replica could advance past a record still in flight.
func TestTapFrontierHeldByInflight(t *testing.T) {
	tap := NewTap(10, TapOptions{})
	defer tap.Close()

	slow := tap.Begin() // lb = 10
	publish(tap, 11, "fast")
	if f := tap.Frontier(); f != 10 {
		t.Fatalf("frontier %d with an in-flight update, want 10", f)
	}
	tap.Publish(slow, 12, []byte("slow"), 0)
	if f := tap.Frontier(); f != 12 {
		t.Fatalf("frontier %d after both published, want 12", f)
	}

	// Aborts release their hold too.
	ab := tap.Begin()
	publish(tap, 13, "x")
	if f := tap.Frontier(); f != 12 {
		t.Fatalf("frontier %d with aborted-update hold, want 12", f)
	}
	tap.Abort(ab)
	if f := tap.Frontier(); f != 13 {
		t.Fatalf("frontier %d after abort, want 13", f)
	}
}

// TestTapPerSubFrontierCap: the frontier handed to one subscriber must
// not cover records published but not yet delivered to it — otherwise
// the replica's watermark would claim a record it never received.
func TestTapPerSubFrontierCap(t *testing.T) {
	tap := NewTap(0, TapOptions{})
	defer tap.Close()
	sb, _ := tap.subscribe(false)
	defer tap.unsubscribe(sb)

	for v := int64(1); v <= 6; v++ {
		publish(tap, v, "p")
	}
	// Take only 2 of the 6: the frontier must stay below record 3.
	batch, frontier, err := sb.nextBatch(2, 1<<20, time.Second)
	if err != nil || len(batch) != 2 {
		t.Fatalf("nextBatch: %d records, err %v", len(batch), err)
	}
	if frontier >= 3 {
		t.Fatalf("frontier %d covers undelivered record 3", frontier)
	}
	// Drain the rest: now the frontier covers everything.
	batch, frontier, err = sb.nextBatch(10, 1<<20, time.Second)
	if err != nil || len(batch) != 4 {
		t.Fatalf("drain: %d records, err %v", len(batch), err)
	}
	if frontier != 6 {
		t.Fatalf("frontier %d after drain, want 6", frontier)
	}
}

// TestTapRingResumeBounds: subscribeRing must accept a watermark the
// ring still covers and refuse one below an evicted version.
func TestTapRingResumeBounds(t *testing.T) {
	tap := NewTap(0, TapOptions{RingBytes: 64, HardRingBytes: 1 << 20})
	defer tap.Close()

	// No subscribers: eviction trims freely past the 64-byte budget.
	for v := int64(1); v <= 10; v++ {
		publish(tap, v, "0123456789abcdef") // 16 bytes each
	}
	if tap.ringFloor == 0 {
		t.Fatal("nothing evicted past a 64-byte budget")
	}
	if _, ok := tap.subscribeRing(0); ok {
		t.Fatal("ring resume accepted a watermark below the evicted floor")
	}
	sb, ok := tap.subscribeRing(tap.ringFloor)
	if !ok {
		t.Fatal("ring resume refused a watermark at the floor")
	}
	// Everything still ringed and above the floor must be deliverable.
	batch, _, err := sb.nextBatch(100, 1<<20, time.Second)
	if err != nil {
		t.Fatalf("nextBatch: %v", err)
	}
	for _, e := range batch {
		if e.ver <= tap.ringFloor-1 {
			t.Fatalf("delivered version %d below the resume floor", e.ver)
		}
	}
	tap.unsubscribe(sb)
}

// TestTapHardCapSeversLaggard: a subscriber pinning the ring past the
// hard cap is severed (drop-and-resync) instead of the ring growing
// without bound.
func TestTapHardCapSeversLaggard(t *testing.T) {
	met := noopMetrics()
	tap := NewTap(0, TapOptions{RingBytes: 64, HardRingBytes: 128, Metrics: met})
	defer tap.Close()
	sb, _ := tap.subscribe(false)
	defer tap.unsubscribe(sb)

	// The laggard never consumes; push well past the hard cap.
	for v := int64(1); v <= 64; v++ {
		publish(tap, v, "0123456789abcdef")
	}
	if tap.ringBytes > 128 {
		t.Fatalf("ring holds %d bytes, past the 128-byte hard cap", tap.ringBytes)
	}
	if met.Resyncs.Value() == 0 {
		t.Fatal("no resync recorded for the severed laggard")
	}
	if _, _, err := sb.nextBatch(10, 1<<20, 10*time.Millisecond); err != errSevered {
		t.Fatalf("laggard's nextBatch: %v, want errSevered", err)
	}
}

// TestTapSyncAckGate: with SyncAcks, Publish must block until the synced
// subscriber acknowledges receipt, and sever it — letting the write
// proceed — when the ack misses the deadline.
func TestTapSyncAckGate(t *testing.T) {
	met := noopMetrics()
	tap := NewTap(0, TapOptions{SyncAcks: true, SyncTimeout: 80 * time.Millisecond, Metrics: met})
	defer tap.Close()
	sb, _ := tap.subscribe(false)
	defer tap.unsubscribe(sb)
	sb.markSynced()

	// Ack promptly from another goroutine: Publish returns well before
	// the timeout.
	go func() {
		batch, _, err := sb.nextBatch(10, 1<<20, time.Second)
		if err == nil && len(batch) == 1 {
			sb.ack(batch[0].seq, batch[0].ver)
		}
	}()
	start := time.Now()
	publish(tap, 1, "acked")
	if d := time.Since(start); d >= 80*time.Millisecond {
		t.Fatalf("acked publish blocked %v, at or past the timeout", d)
	}

	// No ack: Publish returns only after severing the laggard.
	start = time.Now()
	publish(tap, 2, "unacked")
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("unacked publish returned after %v, before the timeout", d)
	}
	if met.SyncTimeouts.Value() == 0 {
		t.Fatal("no sync timeout recorded")
	}
	if met.Resyncs.Value() == 0 {
		t.Fatal("timed-out subscriber not severed")
	}

	// With the laggard severed, writes are asynchronous again.
	start = time.Now()
	publish(tap, 3, "degraded")
	if d := time.Since(start); d >= 80*time.Millisecond {
		t.Fatalf("publish after severing blocked %v", d)
	}
}
