package repl

import "testing"

// TestBackoffSeedDeterminism: two Backoffs seeded alike draw identical
// jitter sequences (so a staggered election replays exactly in tests),
// while different seeds diverge — the point of per-instance PRNGs.
func TestBackoffSeedDeterminism(t *testing.T) {
	var a, b, c Backoff
	a.Seed(7)
	b.Seed(7)
	c.Seed(8)
	same, diff := true, false
	for i := 0; i < 32; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			same = false
		}
		if av != cv {
			diff = true
		}
	}
	if !same {
		t.Fatal("equal seeds produced different delay sequences")
	}
	if !diff {
		t.Fatal("distinct seeds produced identical delay sequences (seed ignored?)")
	}
}

// TestBackoffSeedIndependence: draws on one instance must not perturb
// another's sequence (the old global-PRNG coupling this replaced).
func TestBackoffSeedIndependence(t *testing.T) {
	var a, b Backoff
	a.Seed(7)
	b.Seed(7)
	var noise Backoff
	noise.Seed(99)
	var got, want []int64
	for i := 0; i < 16; i++ {
		want = append(want, int64(a.Next()))
	}
	for i := 0; i < 16; i++ {
		noise.Next() // interleaved draws elsewhere
		got = append(got, int64(b.Next()))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: %d != %d with interleaved draws on another instance", i, got[i], want[i])
		}
	}
}
