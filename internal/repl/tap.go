package repl

import (
	"errors"
	"math"
	"sync"
	"time"
)

// Tap is the primary's replication feed (it implements
// jiffy/durable.Feed): every durable update publishes its WAL record
// through it, and replica connections subscribe to the resulting stream.
//
// Three pieces of state make resume exact:
//
//   - The ring holds recently published records in publish (WAL-ack)
//     order, each stamped with a stream sequence number. ringFloor is the
//     largest version evicted from the ring; a replica whose watermark W
//     is >= ringFloor can resume purely from the ring (every record with
//     version > W is still buffered, because versions are unique and
//     records at or below W are already applied).
//
//   - inflight maps each in-progress update's token to its frontier lower
//     bound: the largest version published before the update began. The
//     store commits on a strictly increasing clock, so the update's
//     eventual version is strictly greater than its bound.
//
//   - The frontier is min over in-flight bounds (or the largest published
//     version when nothing is in flight): no record at or below it can
//     still arrive. A replica applies buffered records up to the frontier
//     it is handed and advances its watermark to it.
//
// When SyncAcks is set, Publish additionally blocks until every synced
// (caught-up) subscriber has acknowledged receipt of the record's
// sequence number, bounded by SyncTimeout — a laggard is severed (it
// reconnects and resumes) rather than blocking group commit forever.
// Synchronous receipt is what makes promote-on-failure lossless under a
// single failure: a write acknowledged to a client has reached every
// synced replica's buffer, so the promoted replica replays it.
type Tap struct {
	opts TapOptions

	mu        sync.Mutex
	cond      *sync.Cond
	closed    bool
	nextTok   uint64
	inflight  map[uint64]int64
	maxSeen   int64 // largest published version (floored at creation)
	ring      []entry
	firstSeq  uint64 // ring[0].seq when the ring is non-empty
	nextSeq   uint64
	ringBytes int64
	ringFloor int64 // largest version evicted (floored at creation)
	subs      map[*sub]struct{}
}

// entry is one published record in the ring. tid is the originating
// request's trace ID (0 untraced) and pub the publish time in unix nanos:
// the source turns them into repl_stream spans — publish to socket write —
// for traced records.
type entry struct {
	seq     uint64
	ver     int64
	payload []byte
	tid     uint64
	pub     int64
}

// TapOptions tunes a Tap. The zero value selects the defaults.
type TapOptions struct {
	// RingBytes is the ring's soft budget (default 8 MiB): beyond it,
	// entries no subscriber still needs are evicted from the front.
	RingBytes int64

	// HardRingBytes (default 4x RingBytes) bounds the ring even when a
	// slow subscriber still needs the front: crossing it severs the
	// laggard instead of growing without bound — it reconnects and
	// resumes (or re-bootstraps) rather than stalling the primary.
	HardRingBytes int64

	// SyncAcks makes Publish wait for every synced subscriber's receipt
	// acknowledgement (see the type comment).
	SyncAcks bool

	// SyncTimeout bounds that wait (default 2s); on expiry the laggards
	// are severed and the write proceeds.
	SyncTimeout time.Duration

	// Metrics receives the tap's instrumentation; nil disables it.
	Metrics *Metrics
}

func (o TapOptions) withDefaults() TapOptions {
	if o.RingBytes <= 0 {
		o.RingBytes = 8 << 20
	}
	if o.HardRingBytes <= 0 {
		o.HardRingBytes = 4 * o.RingBytes
	}
	if o.SyncTimeout <= 0 {
		o.SyncTimeout = 2 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = noopMetrics()
	}
	return o
}

// NewTap returns a Tap whose stream starts above floor — the store's
// recovered version: nothing at or below it can ever be published, and
// nothing below it is in the ring (ringFloor starts there, so a replica
// behind the floor takes disk catch-up or a bootstrap, never a silent
// gap).
func NewTap(floor int64, opts TapOptions) *Tap {
	t := &Tap{
		opts:      opts.withDefaults(),
		inflight:  make(map[uint64]int64),
		maxSeen:   floor,
		ringFloor: floor,
		subs:      make(map[*sub]struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Begin implements durable.Feed.
func (t *Tap) Begin() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	tok := t.nextTok
	t.nextTok++
	t.inflight[tok] = t.maxSeen
	return tok
}

// Abort implements durable.Feed.
func (t *Tap) Abort(token uint64) {
	t.mu.Lock()
	delete(t.inflight, token)
	t.cond.Broadcast() // the frontier may have advanced
	t.mu.Unlock()
}

// Publish implements durable.Feed. The payload is copied (the caller's
// buffer is pooled). With SyncAcks set it blocks — bounded by SyncTimeout
// — until every synced subscriber acknowledged receipt.
func (t *Tap) Publish(token uint64, version int64, payload []byte, tid uint64) {
	p := append([]byte(nil), payload...)
	pub := time.Now().UnixNano()
	t.opts.Metrics.RecordsPublished.Inc()
	t.mu.Lock()
	delete(t.inflight, token)
	if version > t.maxSeen {
		t.maxSeen = version
	}
	seq := t.nextSeq
	t.nextSeq++
	if len(t.ring) == 0 {
		t.firstSeq = seq
	}
	t.ring = append(t.ring, entry{seq: seq, ver: version, payload: p, tid: tid, pub: pub})
	t.ringBytes += int64(len(p))
	t.evictLocked()
	t.cond.Broadcast()
	if !t.opts.SyncAcks || t.closed {
		t.mu.Unlock()
		return
	}
	deadline := time.Now().Add(t.opts.SyncTimeout)
	timer := time.AfterFunc(t.opts.SyncTimeout, func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	for !t.closed && !t.receiptAckedLocked(seq) {
		if !time.Now().Before(deadline) {
			n := t.severUnackedLocked(seq)
			if n > 0 {
				t.opts.Metrics.SyncTimeouts.Inc()
			}
			break
		}
		t.cond.Wait()
	}
	timer.Stop()
	t.mu.Unlock()
}

// receiptAckedLocked reports whether every live, synced subscriber has
// acknowledged receipt of seq. With no synced subscriber it is trivially
// true: a primary with no caught-up replica degrades to asynchronous
// operation rather than refusing writes.
func (t *Tap) receiptAckedLocked(seq uint64) bool {
	for s := range t.subs {
		if s.synced && !s.dead && s.acked < seq {
			return false
		}
	}
	return true
}

// severUnackedLocked marks every synced subscriber still missing seq as
// dead and returns how many it severed.
func (t *Tap) severUnackedLocked(seq uint64) int {
	n := 0
	for s := range t.subs {
		if s.synced && !s.dead && s.acked < seq {
			s.dead = true
			n++
		}
	}
	if n > 0 {
		t.opts.Metrics.Resyncs.Add(uint64(n))
		t.cond.Broadcast()
	}
	return n
}

// evictLocked trims the ring to its budget. Entries every subscriber has
// consumed go first; an entry a live subscriber still needs pins the ring
// until the hard cap, past which the pinning subscribers are severed
// (drop-and-resync) and eviction proceeds.
func (t *Tap) evictLocked() {
	for t.ringBytes > t.opts.RingBytes && len(t.ring) > 0 {
		e := t.ring[0]
		if t.subFloorLocked() <= e.seq {
			if t.ringBytes <= t.opts.HardRingBytes {
				return
			}
			n := 0
			for s := range t.subs {
				if !s.dead && s.next <= e.seq {
					s.dead = true
					n++
				}
			}
			t.opts.Metrics.Resyncs.Add(uint64(n))
			t.cond.Broadcast()
			continue
		}
		t.ring[0] = entry{}
		t.ring = t.ring[1:]
		t.firstSeq = e.seq + 1
		t.ringBytes -= int64(len(e.payload))
		if e.ver > t.ringFloor {
			t.ringFloor = e.ver
		}
	}
}

// subFloorLocked is the smallest next-sequence any live subscriber still
// wants (MaxUint64 with no live subscribers).
func (t *Tap) subFloorLocked() uint64 {
	floor := uint64(math.MaxUint64)
	for s := range t.subs {
		if !s.dead && s.next < floor {
			floor = s.next
		}
	}
	return floor
}

// frontierLocked is the tap-wide stability bound (see the type comment).
func (t *Tap) frontierLocked() int64 {
	f := t.maxSeen
	for _, lb := range t.inflight {
		if lb < f {
			f = lb
		}
	}
	return f
}

// Frontier returns the current tap-wide stability bound.
func (t *Tap) Frontier() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.frontierLocked()
}

// Close wakes every blocked publisher and subscriber. Remove the tap from
// the store (SetFeed(nil)) before closing.
func (t *Tap) Close() {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// LagStats is a point-in-time census of the tap's subscribers, feeding
// the jiffy_repl_* gauges.
type LagStats struct {
	// Replicas counts live subscribers (synced or catching up).
	Replicas int

	// MaxLagVersions is the largest (published version - reported
	// replica watermark) over live synced subscribers; 0 with none.
	MaxLagVersions int64

	// MaxLagBytes is the largest number of ring payload bytes past a
	// live synced subscriber's receipt acknowledgement; 0 with none.
	MaxLagBytes int64
}

// LagStats reports the current subscriber census.
func (t *Tap) LagStats() LagStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var st LagStats
	minAcked := uint64(math.MaxUint64)
	haveSynced := false
	for s := range t.subs {
		if s.dead {
			continue
		}
		st.Replicas++
		if !s.synced {
			continue
		}
		haveSynced = true
		if lag := t.maxSeen - s.wm; lag > st.MaxLagVersions {
			st.MaxLagVersions = lag
		}
		if s.acked < minAcked {
			minAcked = s.acked
		}
	}
	if haveSynced {
		for _, e := range t.ring {
			if e.seq > minAcked {
				st.MaxLagBytes += int64(len(e.payload))
			}
		}
	}
	return st
}

// Errors surfaced by a subscriber's nextBatch.
var (
	// errSevered: the tap dropped this subscriber (it lagged past the
	// ring's hard cap or missed a synchronous-ack deadline). The serving
	// connection closes; the replica reconnects and resumes.
	errSevered = errors.New("repl: subscriber severed, replica must resync")

	errTapClosed = errors.New("repl: tap closed")
)

// sub is one subscriber's cursor into the tap's stream. All fields are
// guarded by the tap's mutex.
type sub struct {
	t      *Tap
	next   uint64 // next sequence to deliver
	acked  uint64 // newest receipt-acknowledged sequence
	wm     int64  // replica-reported watermark (lag gauges)
	synced bool   // caught up: counted by synchronous-ack waits
	dead   bool   // severed; nextBatch returns errSevered
}

// subscribe registers a subscriber starting at the current end of the
// stream (new records only) or at the ring's start, and returns it along
// with the frontier observed at the same instant — safe to attach to
// catch-up batches read outside the lock, because every record at or
// below it was published (and therefore durable) before the subscription
// point, hence covered by the catch-up read.
func (t *Tap) subscribe(fromRingStart bool) (*sub, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &sub{t: t, next: t.nextSeq}
	if fromRingStart && len(t.ring) > 0 {
		s.next = t.firstSeq
	}
	if s.next > 0 {
		s.acked = s.next - 1
	}
	t.subs[s] = struct{}{}
	return s, t.frontierLocked()
}

// subscribeRing registers a ring-resume subscriber for a replica at
// watermark w, or reports that the ring no longer covers w (a record
// above w was evicted) and the caller must catch up from disk or
// bootstrap. Checked and registered under one lock so eviction cannot
// slip between.
func (t *Tap) subscribeRing(w int64) (*sub, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w < t.ringFloor {
		return nil, false
	}
	s := &sub{t: t, next: t.nextSeq}
	if len(t.ring) > 0 {
		s.next = t.firstSeq
	}
	if s.next > 0 {
		s.acked = s.next - 1
	}
	t.subs[s] = struct{}{}
	return s, true
}

// unsubscribe removes s; the serving connection calls it on exit.
func (t *Tap) unsubscribe(s *sub) {
	t.mu.Lock()
	delete(t.subs, s)
	t.cond.Broadcast() // publishers waiting on s's ack give up on it
	t.mu.Unlock()
}

// markSynced flags s as caught up: from here on synchronous-ack waits
// include it and its acks gate Publish.
func (s *sub) markSynced() {
	t := s.t
	t.mu.Lock()
	s.synced = true
	t.mu.Unlock()
}

// ack records the replica's receipt acknowledgement and reported
// watermark.
func (s *sub) ack(seq uint64, wm int64) {
	t := s.t
	t.mu.Lock()
	if seq > s.acked {
		s.acked = seq
	}
	if wm > s.wm {
		s.wm = wm
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// nextBatch blocks until records past the cursor are available (or wait
// elapses — a heartbeat — or the subscriber is severed or the tap
// closed) and returns up to maxRecords/maxBytes of them plus the
// frontier to attach: the tap-wide frontier, capped below the smallest
// version still undelivered to THIS subscriber. The cap matters: the
// tap-wide frontier covers records this subscriber has not yet been
// sent, and a replica advancing its watermark past an undelivered record
// would declare it applied while losing it.
func (s *sub) nextBatch(maxRecords int, maxBytes int64, wait time.Duration) (batch []entry, frontier int64, err error) {
	t := s.t
	deadline := time.Now().Add(wait)
	timer := time.AfterFunc(wait, func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer timer.Stop()
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.closed {
			return nil, 0, errTapClosed
		}
		if s.dead {
			return nil, 0, errSevered
		}
		if s.next < t.nextSeq {
			break
		}
		if !time.Now().Before(deadline) {
			return nil, t.frontierLocked(), nil // heartbeat: fully caught up
		}
		t.cond.Wait()
	}
	if len(t.ring) == 0 || s.next < t.firstSeq {
		// The cursor's records were evicted out from under us (the
		// eviction path should have severed us first; be defensive).
		s.dead = true
		return nil, 0, errSevered
	}
	i := int(s.next - t.firstSeq)
	var bytes int64
	for ; i < len(t.ring); i++ {
		e := t.ring[i]
		if len(batch) > 0 && (len(batch) >= maxRecords || bytes+int64(len(e.payload)) > maxBytes) {
			break
		}
		batch = append(batch, e)
		bytes += int64(len(e.payload))
		s.next = e.seq + 1
	}
	frontier = t.frontierLocked()
	for ; i < len(t.ring); i++ {
		if v := t.ring[i].ver - 1; v < frontier {
			frontier = v
		}
	}
	return batch, frontier, nil
}
