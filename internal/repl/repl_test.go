package repl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"maps"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// End-to-end replication tests: a real durable primary, a real Source on
// a TCP listener, a real durable Replica driven by a Runner — with
// testutil's fault-injecting proxy in between where the test calls for a
// misbehaving network.

func strCodec() durable.Codec[string, string] {
	return durable.Codec[string, string]{Key: durable.StringEnc(), Value: durable.StringEnc()}
}

// primaryOpts: StrictClock is what makes resume-from-watermark exact; the
// small segments force rotation so disk catch-up crosses segment seams.
func primaryOpts() durable.Options[string] {
	return durable.Options[string]{SegmentBytes: 1 << 12, NoSync: true, StrictClock: true}
}

func replicaOpts() durable.Options[string] {
	return durable.Options[string]{SegmentBytes: 1 << 12, NoSync: true}
}

// startSource opens a primary store, installs a Source on it (before any
// write, so the tap's ring floor is honest), and serves it on a loopback
// listener. Cleanup closes source then store.
func startSource(t *testing.T, opts SourceOptions) (*durable.Sharded[string, string], *Source[string, string], string) {
	t.Helper()
	store, err := durable.OpenSharded(t.TempDir(), 4, strCodec(), primaryOpts())
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 20 * time.Millisecond
	}
	src := NewSource(store, strCodec(), opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go src.Serve(ln)
	t.Cleanup(func() {
		src.Close()
		store.Close()
	})
	return store, src, ln.Addr().String()
}

// startRunner opens a replica store and starts a Runner replicating addr
// into it. Cleanup stops the runner then closes the store.
func startRunner(t *testing.T, addr string, opts RunnerOptions) (*durable.Replica[string, string], *Runner[string, string]) {
	t.Helper()
	rep, err := durable.OpenReplica(t.TempDir(), 4, strCodec(), replicaOpts())
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	if opts.Backoff == (Backoff{}) {
		opts.Backoff = Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	}
	if opts.ReadTimeout == 0 {
		opts.ReadTimeout = 2 * time.Second
	}
	r := NewRunner(rep, strCodec(), addr, opts)
	r.Start()
	t.Cleanup(func() {
		r.Stop()
		rep.Close()
	})
	return rep, r
}

type allFunc func(fn func(key, val string) bool)

func dump(all allFunc) map[string]string {
	m := map[string]string{}
	all(func(k, v string) bool { m[k] = v; return true })
	return m
}

// waitConverged blocks until the replica's content equals the primary's
// and its watermark covers ver.
func waitConverged(t *testing.T, p *durable.Sharded[string, string], r *durable.Replica[string, string], ver int64) {
	t.Helper()
	testutil.WaitFor(t, 15*time.Second, func() bool {
		return r.Watermark() >= ver && maps.Equal(dump(p.All), dump(r.All))
	}, "replica did not converge: watermark %d (want >= %d), %d keys (primary %d)",
		r.Watermark(), ver, r.Len(), p.Len())
}

// TestReplConvergence streams puts, removes and cross-shard batches from
// a live primary and asserts the replica reaches exactly the primary's
// content — no gap, no duplicate apply (either would break map equality
// under removes) — with its watermark covering every acked write.
func TestReplConvergence(t *testing.T) {
	testutil.LeakCheck(t)
	reg := obs.NewRegistry()
	met := RegisterMetrics(reg)
	store, _, addr := startSource(t, SourceOptions{Metrics: met})
	rep, _ := startRunner(t, addr, RunnerOptions{Metrics: met})

	var last int64
	for i := 0; i < 200; i++ {
		v, err := store.PutV(fmt.Sprintf("k-%03d", i), fmt.Sprintf("v-%d", i))
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}
	for i := 0; i < 200; i += 3 {
		v, ok, err := store.RemoveV(fmt.Sprintf("k-%03d", i))
		if err != nil || !ok {
			t.Fatalf("RemoveV: %v/%v", ok, err)
		}
		last = v
	}
	batch := jiffy.NewBatch[string, string](51)
	for i := 0; i < 50; i++ {
		batch.Put(fmt.Sprintf("b-%03d", i), "batched")
	}
	batch.Remove("k-001")
	v, err := store.BatchUpdateV(batch)
	if err != nil {
		t.Fatalf("BatchUpdateV: %v", err)
	}
	last = v

	waitConverged(t, store, rep, last)
	if rep.Watermark() < last {
		t.Fatalf("watermark %d below last acked version %d", rep.Watermark(), last)
	}
	if pub, app := met.RecordsPublished.Value(), met.RecordsApplied.Value(); app != pub {
		t.Fatalf("applied %d records, published %d (gap or duplicate apply)", app, pub)
	}
}

// TestReplDiskCatchup forces the ring past a fresh replica's resume point
// (tiny ring budget) with no checkpoint taken, so catch-up must come from
// the on-disk log tail, and asserts it converges.
func TestReplDiskCatchup(t *testing.T) {
	testutil.LeakCheck(t)
	reg := obs.NewRegistry()
	met := RegisterMetrics(reg)
	store, _, addr := startSource(t, SourceOptions{
		Tap:     TapOptions{RingBytes: 512, HardRingBytes: 1 << 20},
		Metrics: met,
	})

	val := strings.Repeat("x", 64)
	var last int64
	for i := 0; i < 100; i++ {
		v, err := store.PutV(fmt.Sprintf("d-%03d", i), val)
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}

	// Now connect: watermark 0 is below the evicted ring floor, and with
	// no checkpoint (CheckpointVersion 0) the disk tier must serve it.
	rep, _ := startRunner(t, addr, RunnerOptions{Metrics: met})
	waitConverged(t, store, rep, last)
	if met.Catchups.Value() == 0 {
		t.Fatal("no disk catch-up served")
	}
	if met.Bootstraps.Value() != 0 {
		t.Fatal("bootstrap served where the disk tail sufficed")
	}

	// And the stream keeps flowing afterwards.
	v, err := store.PutV("after-catchup", "live")
	if err != nil {
		t.Fatalf("PutV: %v", err)
	}
	waitConverged(t, store, rep, v)
}

// TestReplBootstrap checkpoints the primary (truncating its log) behind a
// tiny ring, so a fresh replica can be served by neither the ring nor the
// disk tail: it must bootstrap from a snapshot cut. A second round stops
// the replica, checkpoints past its watermark again, and asserts the
// reconnect re-bootstraps (BeginBootstrap wipes) rather than resuming
// into a gap.
func TestReplBootstrap(t *testing.T) {
	testutil.LeakCheck(t)
	reg := obs.NewRegistry()
	met := RegisterMetrics(reg)
	store, src, addr := startSource(t, SourceOptions{
		Tap:     TapOptions{RingBytes: 512, HardRingBytes: 1 << 20},
		Metrics: met,
	})

	val := strings.Repeat("y", 64)
	var last int64
	for i := 0; i < 100; i++ {
		v, err := store.PutV(fmt.Sprintf("s-%03d", i), val)
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}
	if _, err := store.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	rep, runner := startRunner(t, addr, RunnerOptions{Metrics: met})
	waitConverged(t, store, rep, last)
	if met.Bootstraps.Value() != 1 {
		t.Fatalf("%d bootstraps for a fresh replica behind a checkpoint, want 1", met.Bootstraps.Value())
	}

	// Round 2: leave the replica behind a second checkpoint. Wait for the
	// source to drop the dead subscription first — a subscriber, even a
	// doomed one, pins the ring below the hard cap, and a pinned ring
	// would still cover the replica's resume point.
	runner.Stop()
	testutil.Eventually(t, func() bool {
		return src.Tap().LagStats().Replicas == 0
	}, "source still holds the stopped replica's subscription")
	for i := 0; i < 100; i++ {
		v, err := store.PutV(fmt.Sprintf("s2-%03d", i), val)
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}
	if _, err := store.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	runner2 := NewRunner(rep, strCodec(), addr, RunnerOptions{
		Backoff: Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Metrics: met,
	})
	runner2.Start()
	defer runner2.Stop()
	waitConverged(t, store, rep, last)
	if met.Bootstraps.Value() != 2 {
		t.Fatalf("%d bootstraps after truncation past the watermark, want 2", met.Bootstraps.Value())
	}
}

// TestReplResumeAfterSever cuts the replica's connection over and over
// mid-stream and asserts the replica resumes from its watermark each time
// and still lands on exactly the primary's content.
func TestReplResumeAfterSever(t *testing.T) {
	testutil.LeakCheck(t)
	reg := obs.NewRegistry()
	met := RegisterMetrics(reg)
	store, _, addr := startSource(t, SourceOptions{Metrics: met})

	proxy, err := testutil.NewProxy(addr, testutil.Faults{})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()
	rep, _ := startRunner(t, proxy.Addr(), RunnerOptions{Metrics: met})

	var last int64
	for round := 0; round < 5; round++ {
		for i := 0; i < 40; i++ {
			v, err := store.PutV(fmt.Sprintf("r%d-%03d", round, i), "sever")
			if err != nil {
				t.Fatalf("PutV: %v", err)
			}
			last = v
		}
		proxy.Sever()
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 40; i++ {
		v, err := store.PutV(fmt.Sprintf("tail-%03d", i), "sever")
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}

	waitConverged(t, store, rep, last)
	if met.Reconnects.Value() < 3 {
		t.Fatalf("%d connection attempts across 5 severs", met.Reconnects.Value())
	}
	if pub, app := met.RecordsPublished.Value(), met.RecordsApplied.Value(); app != pub {
		t.Fatalf("applied %d records, published %d, across resumes", app, pub)
	}
}

// TestReplFaultBattery runs the stream through a proxy that misbehaves
// continuously — fragmented reads and writes, injected stalls, and a
// connection reset every few KiB — while the primary keeps writing. Every
// connection dies mid-batch; every resume must make progress from the
// watermark until the replica converges.
func TestReplFaultBattery(t *testing.T) {
	testutil.LeakCheck(t)
	reg := obs.NewRegistry()
	met := RegisterMetrics(reg)
	store, _, addr := startSource(t, SourceOptions{Metrics: met})

	proxy, err := testutil.NewProxy(addr, testutil.Faults{
		ShortReads:      3,
		ShortWrites:     3,
		StallEvery:      13,
		Stall:           time.Millisecond,
		ResetAfterBytes: 8 << 10,
		Seed:            42,
	})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()
	rep, _ := startRunner(t, proxy.Addr(), RunnerOptions{Metrics: met})

	var last int64
	for i := 0; i < 300; i++ {
		v, err := store.PutV(fmt.Sprintf("f-%03d", i), strings.Repeat("z", 32))
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}

	waitConverged(t, store, rep, last)
	if met.Reconnects.Value() < 2 {
		t.Fatalf("%d connection attempts under a resetting proxy", met.Reconnects.Value())
	}
}

// TestReplPromoteLossless is the crash-the-primary property test: with
// synchronous acks on, every write the primary acknowledged to a client
// must be readable on the replica after the primary dies and the replica
// promotes. Writers hammer the primary concurrently, recording exactly
// the keys whose writes were acked; then the network is cut (no graceful
// handoff), the replica promotes, and every recorded key must be present.
func TestReplPromoteLossless(t *testing.T) {
	testutil.LeakCheck(t)
	store, src, addr := startSource(t, SourceOptions{
		Tap: TapOptions{SyncAcks: true, SyncTimeout: 10 * time.Second},
	})
	proxy, err := testutil.NewProxy(addr, testutil.Faults{})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()
	rep, runner := startRunner(t, proxy.Addr(), RunnerOptions{})

	// Wait until the replica is attached and applying before measuring:
	// a write acked with no replica connected is trivially non-replicated
	// (graceful degradation), which is not the property under test.
	v0, err := store.PutV("sentinel", "up")
	if err != nil {
		t.Fatalf("PutV: %v", err)
	}
	testutil.Eventually(t, func() bool { return rep.Watermark() >= v0 }, "replica never synced")

	var mu sync.Mutex
	acked := map[string]string{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("w-%d-%03d", g, i)
				val := fmt.Sprintf("val-%d-%d", g, i)
				if _, err := store.PutV(k, val); err != nil {
					t.Errorf("PutV(%s): %v", k, err)
					return
				}
				// The put returned: the client holds an ack.
				mu.Lock()
				acked[k] = val
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// "Crash": sever the network abruptly, then promote the replica. The
	// old primary gets no goodbye and no drain.
	proxy.Sever()
	proxy.Close()
	promotedAt, err := runner.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if promotedAt <= 0 {
		t.Fatalf("promoted at version %d", promotedAt)
	}

	for k, want := range acked {
		got, ok := rep.Get(k)
		if !ok {
			t.Fatalf("acked key %q lost across promote (promoted at %d)", k, promotedAt)
		}
		if got != want {
			t.Fatalf("acked key %q has value %q, want %q", k, got, want)
		}
	}

	// The promoted node is a primary now: writes are accepted and version
	// history continues past the promote point.
	v, err := rep.PutV("post-promote", "accepted")
	if err != nil {
		t.Fatalf("write on promoted node: %v", err)
	}
	if v <= promotedAt {
		t.Fatalf("post-promote version %d not past promote point %d", v, promotedAt)
	}
	src.Close() // quiet cleanup of the dead "old primary"
}

// TestReplPromoteAppliesPending drives applyBatch directly with a batch
// whose frontier is behind its records, so they buffer without applying —
// then asserts Promote applies them (in version order) rather than
// dropping received-but-unacknowledged-by-frontier records.
func TestReplPromoteAppliesPending(t *testing.T) {
	// Capture real record payloads from a real primary: ApplyRecord
	// consumes the WAL record encoding, so hand-crafted payloads won't do.
	store, err := durable.OpenSharded(t.TempDir(), 2, strCodec(), primaryOpts())
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	cf := &captureFeed{}
	store.SetFeed(cf)
	v1, err := store.PutV("a", "1")
	if err != nil {
		t.Fatalf("PutV: %v", err)
	}
	v2, err := store.PutV("b", "2")
	if err != nil {
		t.Fatalf("PutV: %v", err)
	}
	store.SetFeed(nil)
	store.Close()
	recs := cf.take()
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}

	rep, err := durable.OpenReplica(t.TempDir(), 2, strCodec(), replicaOpts())
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	defer rep.Close()
	r := NewRunner(rep, strCodec(), "127.0.0.1:1", RunnerOptions{})

	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go io.Copy(io.Discard, srv) // drain the receipt ack

	// Batch with frontier 0: both records stay pending, nothing applies.
	body := binary.LittleEndian.AppendUint64(nil, 0) // frontier
	body = binary.LittleEndian.AppendUint64(body, 7) // lastSeq
	body = binary.LittleEndian.AppendUint32(body, uint32(len(recs)))
	for _, rec := range recs {
		body = binary.LittleEndian.AppendUint64(body, uint64(rec.Version))
		body = binary.AppendUvarint(body, 0) // proto-3 trace ID
		body = wire.AppendBytes(body, rec.Payload)
	}
	if _, err := r.applyBatch(cli, nil, body); err != nil {
		t.Fatalf("applyBatch: %v", err)
	}
	if wm := rep.Watermark(); wm != 0 {
		t.Fatalf("watermark %d advanced past a frontier of 0", wm)
	}
	if _, ok := rep.Get("a"); ok {
		t.Fatal("record applied ahead of its frontier")
	}

	// Promote must apply the buffered records — they were received, and a
	// synchronous primary acked its client on that receipt.
	promotedAt, err := r.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got, ok := rep.Get("a"); !ok || got != "1" {
		t.Fatalf("key a after promote: %q/%v, want 1", got, ok)
	}
	if got, ok := rep.Get("b"); !ok || got != "2" {
		t.Fatalf("key b after promote: %q/%v, want 2", got, ok)
	}
	if promotedAt < v2 || v1 >= v2 {
		t.Fatalf("promoted at %d with records at %d,%d", promotedAt, v1, v2)
	}
}

// captureFeed records every published payload (copied; the buffer is
// pooled) for replay through ApplyRecord.
type captureFeed struct {
	mu   sync.Mutex
	recs []durable.TailRecord
}

func (f *captureFeed) Begin() uint64  { return 0 }
func (f *captureFeed) Abort(_ uint64) {}
func (f *captureFeed) Publish(_ uint64, ver int64, payload []byte, _ uint64) {
	f.mu.Lock()
	f.recs = append(f.recs, durable.TailRecord{Version: ver, Payload: append([]byte(nil), payload...)})
	f.mu.Unlock()
}
func (f *captureFeed) take() []durable.TailRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recs
}

// TestReplGauges wires the full observability panel and asserts the
// replication gauges move as the system runs: the replica-connected
// census rises when the runner attaches, and the replica watermark gauge
// follows the stream.
func TestReplGauges(t *testing.T) {
	testutil.LeakCheck(t)
	reg := obs.NewRegistry()
	met := RegisterMetrics(reg)
	store, src, addr := startSource(t, SourceOptions{Metrics: met})
	RegisterSourceGauges(reg, src.Tap())

	if g := scrapeGauge(t, reg, "jiffy_repl_replicas_connected"); g != 0 {
		t.Fatalf("replicas_connected %v before any replica", g)
	}

	rep, _ := startRunner(t, addr, RunnerOptions{Metrics: met})
	RegisterReplicaGauges(reg, rep.Watermark)
	if g := scrapeGauge(t, reg, "jiffy_repl_watermark"); g != 0 {
		t.Fatalf("watermark gauge %v before any write", g)
	}

	var last int64
	for i := 0; i < 50; i++ {
		v, err := store.PutV(fmt.Sprintf("g-%03d", i), "gauge")
		if err != nil {
			t.Fatalf("PutV: %v", err)
		}
		last = v
	}

	testutil.Eventually(t, func() bool {
		return scrapeGauge(t, reg, "jiffy_repl_replicas_connected") == 1
	}, "replicas_connected gauge never reached 1")
	testutil.Eventually(t, func() bool {
		return scrapeGauge(t, reg, "jiffy_repl_watermark") >= float64(last)
	}, "watermark gauge never covered version %d", last)
	if c := scrapeGauge(t, reg, "jiffy_repl_records_published_total"); c < 50 {
		t.Fatalf("published counter %v after 50 writes", c)
	}
	// Lag gauges render and are sane (≥ 0) under a connected replica.
	if g := scrapeGauge(t, reg, "jiffy_repl_lag_versions"); g < 0 {
		t.Fatalf("lag_versions %v", g)
	}
	if g := scrapeGauge(t, reg, "jiffy_repl_lag_bytes"); g < 0 {
		t.Fatalf("lag_bytes %v", g)
	}
}

// scrapeGauge renders the registry Prometheus-style and extracts one
// series' value.
func scrapeGauge(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %s value %q: %v", name, rest, err)
			}
			return f
		}
	}
	t.Fatalf("series %s not in scrape:\n%s", name, b.String())
	return 0
}
