package repl

import (
	"cmp"
	"encoding/binary"
	"net"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// SourceStore is what the replication source needs from the primary's
// store; *durable.Sharded satisfies it, and so does a promoted
// *durable.Replica (a promoted node can serve replicas of its own).
type SourceStore[K cmp.Ordered, V any] interface {
	Snapshot() *jiffy.ShardedSnapshot[K, V]
	SetFeed(durable.Feed)
	TailAbove(version int64) ([]durable.TailRecord, error)
	RecoveredVersion() int64
	DurStats() durable.DurStats

	// Epoch, EpochStart and EpochBoundaryAbove expose the store's
	// persisted fencing-epoch history (durable's EpochFile): the current
	// epoch and its start version are announced to every proto-2
	// replica, and the boundary decides whether a rejoining replica may
	// resume or must re-bootstrap.
	Epoch() int64
	EpochStart() int64
	EpochBoundaryAbove(epoch int64) int64
}

// SourceOptions tunes a Source. The zero value selects the defaults.
type SourceOptions struct {
	// Tap tunes the in-memory stream buffer (ring budget, synchronous
	// acks). Tap.Metrics defaults to Metrics below.
	Tap TapOptions

	// BatchRecords and BatchBytes cap one OpReplBatch frame (defaults
	// 512 records, 1 MiB).
	BatchRecords int
	BatchBytes   int64

	// HeartbeatEvery is the idle-stream heartbeat interval (default
	// 500ms). Heartbeats carry the frontier, so a replica's watermark
	// keeps advancing while the primary is idle.
	HeartbeatEvery time.Duration

	// WriteTimeout bounds each frame write (default 5s); a replica that
	// cannot drain the stream is disconnected rather than blocking the
	// sender goroutine forever.
	WriteTimeout time.Duration

	// HelloTimeout bounds the wait for a new connection's HELLO frame
	// (default 10s).
	HelloTimeout time.Duration

	// SnapChunkBytes caps one bootstrap chunk frame (default 256 KiB).
	SnapChunkBytes int

	// Logf receives connection lifecycle messages; nil silences them.
	Logf func(format string, args ...any)

	// Metrics receives the source's instrumentation; nil disables it.
	Metrics *Metrics

	// OnPeerEpoch, when non-nil, is called with any fencing epoch a
	// connecting replica announces that is HIGHER than the store's own —
	// proof that another node was promoted past this primary. The hook
	// fences the node (stops writes, demotes); the offending connection
	// is refused either way.
	OnPeerEpoch func(epoch int64)

	// Tracer, when non-nil, receives the source's flight-recorder spans:
	// repl_stream (a traced record's publish-to-socket-write latency) and
	// repl_ack (batch write to replica receipt acknowledgement).
	Tracer *trace.Recorder
}

func (o SourceOptions) withDefaults() SourceOptions {
	if o.BatchRecords <= 0 {
		o.BatchRecords = 512
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 1 << 20
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 500 * time.Millisecond
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 10 * time.Second
	}
	if o.SnapChunkBytes <= 0 {
		o.SnapChunkBytes = 256 << 10
	}
	if o.Metrics == nil {
		o.Metrics = noopMetrics()
	}
	if o.Tap.Metrics == nil {
		o.Tap.Metrics = o.Metrics
	}
	return o
}

// Source is the primary side of replication: it taps the store's durable
// updates and serves the stream to any number of replica connections.
// Each connection is caught up by the cheapest tier its watermark allows
// — the in-memory ring, the on-disk log tail, or a full checkpoint-style
// bootstrap cut from a live snapshot — and then follows the live stream.
type Source[K cmp.Ordered, V any] struct {
	store SourceStore[K, V]
	codec durable.Codec[K, V]
	opts  SourceOptions
	tap   *Tap
	met   *Metrics

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewSource installs a tap on store and returns a Source ready to Serve.
// Close the Source to detach the tap.
func NewSource[K cmp.Ordered, V any](store SourceStore[K, V], codec durable.Codec[K, V], opts SourceOptions) *Source[K, V] {
	opts = opts.withDefaults()
	s := &Source[K, V]{
		store: store,
		codec: codec,
		opts:  opts,
		tap:   NewTap(store.RecoveredVersion(), opts.Tap),
		met:   opts.Metrics,
		conns: make(map[net.Conn]struct{}),
	}
	store.SetFeed(s.tap)
	return s
}

// Tap returns the source's tap (for gauges and tests).
func (s *Source[K, V]) Tap() *Tap { return s.tap }

func (s *Source[K, V]) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts replica connections on ln until Close. It returns nil
// after Close, or the first non-shutdown accept error.
func (s *Source[K, V]) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close detaches the tap from the store, stops the listener, severs every
// replica connection and waits for their goroutines.
func (s *Source[K, V]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.store.SetFeed(nil)
	s.tap.Close()
	s.wg.Wait()
	return nil
}

// handle speaks the replication protocol on one connection: HELLO, a
// catch-up tier, then the live stream until the connection drops or the
// subscriber is severed.
func (s *Source[K, V]) handle(c net.Conn) {
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.SetReadDeadline(time.Now().Add(s.opts.HelloTimeout))
	_, op, body, _, err := wire.ReadFrame(c, nil)
	if err != nil || op != wire.OpReplHello || len(body) < 12 {
		s.logf("repl: %s: bad hello (op %d, err %v)", c.RemoteAddr(), op, err)
		return
	}
	proto := binary.LittleEndian.Uint32(body)
	if proto < 1 || proto > 3 {
		s.logf("repl: %s: unsupported protocol %d", c.RemoteAddr(), proto)
		return
	}
	// Proto 3 record layout carries a per-record trace ID; older replicas
	// get the proto<=2 layout on the same stream code path.
	traced := proto >= 3
	want := int64(binary.LittleEndian.Uint64(body[4:]))
	forceBootstrap := false
	if proto >= 2 {
		if len(body) < 20 {
			s.logf("repl: %s: short proto-2 hello (%d bytes)", c.RemoteAddr(), len(body))
			return
		}
		peerEpoch := int64(binary.LittleEndian.Uint64(body[12:]))
		myEpoch := s.store.Epoch()
		if peerEpoch > myEpoch {
			// The replica has seen a newer primacy than ours: we are the
			// stale primary. Refuse the stream and let the hook fence us.
			s.logf("repl: %s: replica announces epoch %d above ours (%d); fencing",
				c.RemoteAddr(), peerEpoch, myEpoch)
			if s.opts.OnPeerEpoch != nil {
				s.opts.OnPeerEpoch(peerEpoch)
			}
			return
		}
		// Announce our epoch before any catch-up tier, so the replica's
		// history records the boundary before it applies a single record.
		eb := binary.LittleEndian.AppendUint64(nil, uint64(myEpoch))
		eb = binary.LittleEndian.AppendUint64(eb, uint64(s.store.EpochStart()))
		if err := s.writeAll(c, wire.AppendFrame(nil, 0, wire.OpReplEpoch, eb)); err != nil {
			s.logf("repl: %s: epoch announce: %v", c.RemoteAddr(), err)
			return
		}
		if peerEpoch < myEpoch {
			// The replica predates at least one promote. Below the first
			// promote boundary above its epoch the histories are
			// identical and a resume is exact; past it the replica may
			// hold records the promote discarded, and only a full
			// bootstrap converges it.
			if boundary := s.store.EpochBoundaryAbove(peerEpoch); want > boundary {
				s.logf("repl: %s: watermark %d past epoch-%d boundary %d; forcing bootstrap",
					c.RemoteAddr(), want, peerEpoch, boundary)
				forceBootstrap = true
			}
		}
	}
	c.SetReadDeadline(time.Time{})

	if forceBootstrap {
		want = -1
	}
	sb, filter, err := s.catchUp(c, want, traced)
	if err != nil {
		s.logf("repl: %s: catch-up from version %d: %v", c.RemoteAddr(), want, err)
		return
	}
	defer s.tap.unsubscribe(sb)
	var at *ackTrack
	if s.opts.Tracer != nil {
		at = &ackTrack{}
	}
	go s.readAcks(c, sb, at)
	sb.markSynced()
	s.stream(c, sb, filter, traced, at)
}

// ackTrack remembers when each streamed batch hit the socket, so the
// replica's receipt acknowledgement can be turned into a repl_ack span.
// Bounded: past ackTrackWindow outstanding sends the oldest is dropped
// (its span is lost, nothing ever blocks on it). Stream goroutine pushes,
// ack goroutine pops.
type ackTrack struct {
	mu  sync.Mutex
	buf []ackSent
}

type ackSent struct {
	seq    uint64
	tid    uint64 // first traced record in the batch (0: none)
	sentAt time.Time
}

const ackTrackWindow = 64

func (a *ackTrack) push(seq, tid uint64, sentAt time.Time) {
	a.mu.Lock()
	if len(a.buf) >= ackTrackWindow {
		a.buf = append(a.buf[:0], a.buf[1:]...)
	}
	a.buf = append(a.buf, ackSent{seq: seq, tid: tid, sentAt: sentAt})
	a.mu.Unlock()
}

// pop removes every send at or below seq and records its repl_ack span.
func (a *ackTrack) pop(tr *trace.Recorder, seq uint64, now time.Time) {
	a.mu.Lock()
	n := 0
	for n < len(a.buf) && a.buf[n].seq <= seq {
		n++
	}
	acked := a.buf[:n]
	for _, e := range acked {
		tr.Record(trace.StageReplAck, e.tid, 0, e.sentAt, now.Sub(e.sentAt), 0)
	}
	a.buf = append(a.buf[:0], a.buf[n:]...)
	a.mu.Unlock()
}

// catchUp brings a replica at watermark want level with the stream and
// returns its subscribed cursor plus the version at or below which
// streamed records are redundant (covered by the catch-up) and filtered.
// In every tier the subscription is registered BEFORE the catch-up data
// is read, so any record missing from the read is published after the
// subscription point and arrives on the stream; overlap is resolved by
// the replica, which de-duplicates by version (versions are unique).
func (s *Source[K, V]) catchUp(c net.Conn, want int64, traced bool) (*sub, int64, error) {
	// Tier 1: the ring still holds every record above want.
	if sb, ok := s.tap.subscribeRing(want); ok {
		return sb, want, nil
	}
	// Tier 2: the on-disk log does (nothing above the checkpoint cut is
	// ever truncated). A checkpoint racing the read surfaces as a read
	// error, and the bootstrap tier takes over.
	if ck := s.store.DurStats().CheckpointVersion; want >= ck {
		sb, frontier := s.tap.subscribe(false)
		recs, err := s.store.TailAbove(want)
		if err == nil {
			if err := s.sendDiskTail(c, recs, frontier, traced); err != nil {
				s.tap.unsubscribe(sb)
				return nil, 0, err
			}
			s.met.Catchups.Inc()
			return sb, want, nil
		}
		s.tap.unsubscribe(sb)
		s.logf("repl: %s: disk catch-up lost to a checkpoint (%v); bootstrapping", c.RemoteAddr(), err)
	}
	// Tier 3: full state bootstrap from a live snapshot.
	sb, _ := s.tap.subscribe(false)
	vs, err := s.sendBootstrap(c)
	if err != nil {
		s.tap.unsubscribe(sb)
		return nil, 0, err
	}
	s.met.Bootstraps.Inc()
	return sb, vs, nil
}

// appendBatchFrame appends one OpReplBatch frame carrying recs (already
// filtered) to dst. traced selects the proto-3 record layout, which
// carries each record's trace ID between version and payload.
func appendBatchFrame(dst []byte, frontier int64, lastSeq uint64, recs []durable.TailRecord, traced bool) []byte {
	buf, lenAt := wire.BeginFrame(dst, 0, wire.OpReplBatch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(frontier))
	buf = binary.LittleEndian.AppendUint64(buf, lastSeq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Version))
		if traced {
			// Uvarint: the untraced common case (sampling keeps traced
			// records rare) costs one byte, not eight.
			buf = binary.AppendUvarint(buf, r.Tid)
		}
		buf = wire.AppendBytes(buf, r.Payload)
	}
	return wire.EndFrame(buf, lenAt)
}

// writeAll writes buf to c under the write deadline.
func (s *Source[K, V]) writeAll(c net.Conn, buf []byte) error {
	c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	_, err := c.Write(buf)
	return err
}

// sendDiskTail ships the log tail in batch frames. Disk batches carry
// lastSeq 0 (they predate the stream cursor) and the frontier captured
// at subscription: every record at or below it was durable before the
// subscription point and is therefore in this tail.
func (s *Source[K, V]) sendDiskTail(c net.Conn, recs []durable.TailRecord, frontier int64, traced bool) error {
	var frame []byte
	for len(recs) > 0 {
		n, bytes := 0, int64(0)
		for n < len(recs) && n < s.opts.BatchRecords {
			sz := int64(len(recs[n].Payload))
			if n > 0 && bytes+sz > s.opts.BatchBytes {
				break
			}
			bytes += sz
			n++
		}
		frame = appendBatchFrame(frame[:0], frontier, 0, recs[:n], traced)
		if err := s.writeAll(c, frame); err != nil {
			return err
		}
		recs = recs[n:]
	}
	return nil
}

// sendBootstrap streams a full consistent cut: SnapBegin, chunked
// key/value pairs, SnapEnd. Returns the cut version.
func (s *Source[K, V]) sendBootstrap(c net.Conn) (int64, error) {
	snap := s.store.Snapshot()
	defer snap.Close()
	vs := snap.Version()

	begin := wire.AppendFrame(nil, 0, wire.OpReplSnapBegin,
		binary.LittleEndian.AppendUint64(nil, uint64(vs)))
	if err := s.writeAll(c, begin); err != nil {
		return 0, err
	}

	var (
		buf        []byte
		lenAt, nAt int
		count      uint32
		kbuf, vbuf []byte
		werr       error
	)
	beginChunk := func() {
		buf, lenAt = wire.BeginFrame(buf[:0], 0, wire.OpReplSnapChunk)
		nAt = len(buf)
		buf = append(buf, 0, 0, 0, 0) // u32 n placeholder
		count = 0
	}
	flushChunk := func() error {
		if count == 0 {
			return nil
		}
		binary.LittleEndian.PutUint32(buf[nAt:], count)
		return s.writeAll(c, wire.EndFrame(buf, lenAt))
	}
	beginChunk()
	snap.All(func(k K, v V) bool {
		kbuf = s.codec.Key.Append(kbuf[:0], k)
		vbuf = s.codec.Value.Append(vbuf[:0], v)
		buf = wire.AppendBytes(buf, kbuf)
		buf = wire.AppendBytes(buf, vbuf)
		count++
		if len(buf) >= s.opts.SnapChunkBytes {
			if werr = flushChunk(); werr != nil {
				return false
			}
			beginChunk()
		}
		return true
	})
	if werr != nil {
		return 0, werr
	}
	if err := flushChunk(); err != nil {
		return 0, err
	}
	end := wire.AppendFrame(nil, 0, wire.OpReplSnapEnd, nil)
	if err := s.writeAll(c, end); err != nil {
		return 0, err
	}
	return vs, nil
}

// stream follows the live tail: batches when there is data, heartbeats
// when there is not. Records at or below filter are redundant with the
// catch-up tier and dropped (their sequence numbers are still consumed
// and acknowledged).
func (s *Source[K, V]) stream(c net.Conn, sb *sub, filter int64, traced bool, at *ackTrack) {
	var frame []byte
	recs := make([]durable.TailRecord, 0, s.opts.BatchRecords)
	pubs := make([]int64, 0, s.opts.BatchRecords) // publish nanos, parallel to recs
	lastSeq := uint64(0)
	tr := s.opts.Tracer
	for {
		batch, frontier, err := sb.nextBatch(s.opts.BatchRecords, s.opts.BatchBytes, s.opts.HeartbeatEvery)
		if err != nil {
			if err == errSevered {
				s.logf("repl: %s: severed for lagging; replica will resync", c.RemoteAddr())
			}
			return
		}
		recs, pubs = recs[:0], pubs[:0]
		for _, e := range batch {
			if e.ver > filter {
				recs = append(recs, durable.TailRecord{Version: e.ver, Payload: e.payload, Tid: e.tid})
				pubs = append(pubs, e.pub)
			}
			lastSeq = e.seq
		}
		frame = appendBatchFrame(frame[:0], frontier, lastSeq, recs, traced)
		if err := s.writeAll(c, frame); err != nil {
			s.logf("repl: %s: write: %v", c.RemoteAddr(), err)
			return
		}
		if tr != nil && len(batch) > 0 {
			now := time.Now()
			batchTid := uint64(0)
			for i, r := range recs {
				if r.Tid == 0 {
					continue
				}
				if batchTid == 0 {
					batchTid = r.Tid
				}
				// repl_stream: publish (WAL ack on the primary) to the byte
				// hitting this replica's socket.
				pub := time.Unix(0, pubs[i])
				tr.Record(trace.StageReplStream, r.Tid, 0, pub, now.Sub(pub), int64(len(r.Payload)))
			}
			if at != nil {
				at.push(lastSeq, batchTid, now)
			}
		}
	}
}

// readAcks drains OpReplAck frames, feeding the subscriber's receipt
// cursor (synchronous-ack waits) and reported watermark (lag gauges). A
// read error closes the connection, which unblocks the sender.
func (s *Source[K, V]) readAcks(c net.Conn, sb *sub, at *ackTrack) {
	var buf []byte
	for {
		_, op, body, nbuf, err := wire.ReadFrame(c, buf)
		buf = nbuf
		if err != nil {
			c.Close()
			return
		}
		if op != wire.OpReplAck || len(body) < 16 {
			s.logf("repl: %s: unexpected frame op %d on ack channel", c.RemoteAddr(), op)
			c.Close()
			return
		}
		seq := binary.LittleEndian.Uint64(body)
		sb.ack(seq, int64(binary.LittleEndian.Uint64(body[8:])))
		if at != nil {
			at.pop(s.opts.Tracer, seq, time.Now())
		}
	}
}
