// Package snaptree implements a clone-based snapshot AVL tree after Bronson
// et al.'s SnapTree (PPoPP '10), the lock-based baseline with atomic
// clone/range-scan support in the paper's evaluation.
//
// The reproduced mechanism is SnapTree's defining one: Clone marks the
// current root shared in O(1), and subsequent updates copy-on-write every
// shared node on their path (lazily propagating the shared bit downwards),
// which is exactly why "a linearizable clone operation ... can severely
// slow down concurrent update operations" (§2) — the cost Jiffy's O(1)
// snapshots avoid. Simplification versus the original (see DESIGN.md):
// Bronson's hand-over-hand optimistic validation is replaced by a
// readers-writer lock (reads and scans share, updates exclude), because the
// fine-grained protocol's benefit is multi-core read scaling, not the
// snapshot-vs-update interference measured here.
package snaptree

import (
	"cmp"
	"sync"
)

type stNode[K cmp.Ordered, V any] struct {
	key         K
	val         V
	left, right *stNode[K, V]
	height      int
	// shared marks a node reachable from a snapshot: it must never be
	// mutated again; updates replace it with a private copy.
	shared bool
}

// Tree is a snapshot-capable AVL tree.
type Tree[K cmp.Ordered, V any] struct {
	mu   sync.RWMutex
	root *stNode[K, V]
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] { return &Tree[K, V]{} }

// Name implements index.Named.
func (t *Tree[K, V]) Name() string { return "snaptree" }

// Clone returns an O(1) atomic snapshot: the current root is marked shared
// and handed out. Every later update pays the copy-on-write tax on shared
// paths.
func (t *Tree[K, V]) Clone() *SnapView[K, V] {
	t.mu.Lock()
	if t.root != nil {
		t.root.shared = true
	}
	r := t.root
	t.mu.Unlock()
	return &SnapView[K, V]{root: r}
}

// SnapView is a read-only snapshot produced by Clone. Its nodes are frozen
// (shared), so reads need no locking.
type SnapView[K cmp.Ordered, V any] struct {
	root *stNode[K, V]
}

// Get returns the value key had when the snapshot was taken.
func (s *SnapView[K, V]) Get(key K) (V, bool) { return lookup(s.root, key) }

// RangeFrom visits snapshot entries with key >= lo ascending.
func (s *SnapView[K, V]) RangeFrom(lo K, fn func(K, V) bool) {
	ascend(s.root, lo, fn)
}

func lookup[K cmp.Ordered, V any](n *stNode[K, V], key K) (V, bool) {
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

func ascend[K cmp.Ordered, V any](n *stNode[K, V], lo K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= lo {
		if !ascend(n.left, lo, fn) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
	}
	return ascend(n.right, lo, fn)
}

// Get returns the value stored for key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	t.mu.RLock()
	v, ok := lookup(t.root, key)
	t.mu.RUnlock()
	return v, ok
}

// RangeFrom performs a linearizable scan: it clones (O(1)) and reads the
// clone, so it never blocks behind more than the clone's brief exclusive
// section — SnapTree's signature scan strategy.
func (t *Tree[K, V]) RangeFrom(lo K, fn func(K, V) bool) {
	t.Clone().RangeFrom(lo, fn)
}

// priv returns a mutable version of n, copying it if it is shared. Children
// of a copied shared node become shared themselves (lazy COW propagation).
func priv[K cmp.Ordered, V any](n *stNode[K, V]) *stNode[K, V] {
	if n == nil || !n.shared {
		return n
	}
	cp := &stNode[K, V]{key: n.key, val: n.val, left: n.left, right: n.right, height: n.height}
	if cp.left != nil {
		cp.left.shared = true
	}
	if cp.right != nil {
		cp.right.shared = true
	}
	return cp
}

func height[K cmp.Ordered, V any](n *stNode[K, V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

// rebalance assumes n is private (not shared) and fixes AVL balance,
// privatizing whichever children rotations touch.
func rebalance[K cmp.Ordered, V any](n *stNode[K, V]) *stNode[K, V] {
	n.height = 1 + max(height(n.left), height(n.right))
	bf := height(n.left) - height(n.right)
	switch {
	case bf > 1:
		n.left = priv(n.left)
		if height(n.left.left) < height(n.left.right) {
			n.left.right = priv(n.left.right)
			n.left = rotL(n.left)
		}
		return rotR(n)
	case bf < -1:
		n.right = priv(n.right)
		if height(n.right.right) < height(n.right.left) {
			n.right.left = priv(n.right.left)
			n.right = rotR(n.right)
		}
		return rotL(n)
	}
	return n
}

func rotL[K cmp.Ordered, V any](n *stNode[K, V]) *stNode[K, V] {
	r := n.right // already private
	n.right = r.left
	r.left = n
	n.height = 1 + max(height(n.left), height(n.right))
	r.height = 1 + max(height(r.left), height(r.right))
	return r
}

func rotR[K cmp.Ordered, V any](n *stNode[K, V]) *stNode[K, V] {
	l := n.left // already private
	n.left = l.right
	l.right = n
	n.height = 1 + max(height(n.left), height(n.right))
	l.height = 1 + max(height(l.left), height(l.right))
	return l
}

// Put sets the value for key.
func (t *Tree[K, V]) Put(key K, val V) {
	t.mu.Lock()
	t.root = insert(t.root, key, val)
	t.mu.Unlock()
}

func insert[K cmp.Ordered, V any](n *stNode[K, V], key K, val V) *stNode[K, V] {
	if n == nil {
		return &stNode[K, V]{key: key, val: val, height: 1}
	}
	n = priv(n)
	switch {
	case key < n.key:
		n.left = insert(n.left, key, val)
	case key > n.key:
		n.right = insert(n.right, key, val)
	default:
		n.val = val
		return n
	}
	return rebalance(n)
}

// Remove deletes key, reporting whether it was present.
func (t *Tree[K, V]) Remove(key K) bool {
	t.mu.Lock()
	root, removed := remove(t.root, key)
	t.root = root
	t.mu.Unlock()
	return removed
}

func remove[K cmp.Ordered, V any](n *stNode[K, V], key K) (*stNode[K, V], bool) {
	if n == nil {
		return nil, false
	}
	n = priv(n)
	var removed bool
	switch {
	case key < n.key:
		n.left, removed = remove(n.left, key)
	case key > n.key:
		n.right, removed = remove(n.right, key)
	default:
		removed = true
		if n.left == nil {
			return n.right, true
		}
		if n.right == nil {
			return n.left, true
		}
		// Copy up the in-order successor, then delete it below.
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.key, n.val = s.key, s.val
		n.right, _ = remove(n.right, s.key)
	}
	if !removed {
		return n, false
	}
	return rebalance(n), true
}

// Len counts entries (O(n); for tests).
func (t *Tree[K, V]) Len() int {
	n := 0
	t.mu.RLock()
	var walk func(x *stNode[K, V])
	walk = func(x *stNode[K, V]) {
		if x == nil {
			return
		}
		n++
		walk(x.left)
		walk(x.right)
	}
	walk(t.root)
	t.mu.RUnlock()
	return n
}
