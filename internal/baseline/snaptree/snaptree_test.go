package snaptree

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	tr := New[uint64, int]()
	if _, ok := tr.Get(1); ok {
		t.Fatal("phantom")
	}
	tr.Put(1, 10)
	tr.Put(1, 11)
	if v, ok := tr.Get(1); !ok || v != 11 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !tr.Remove(1) || tr.Remove(1) {
		t.Fatal("remove semantics")
	}
}

func TestSequentialReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 37))
		tr := New[uint64, int]()
		ref := map[uint64]int{}
		for i := 0; i < 800; i++ {
			k := uint64(rng.IntN(128))
			switch rng.IntN(3) {
			case 0:
				got := tr.Remove(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 1:
				tr.Put(k, i)
				ref[k] = i
			default:
				v, ok := tr.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAVLBalanced(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 4096; i++ {
		tr.Put(uint64(i), i) // ascending insert: the worst case
	}
	var depth func(n *stNode[uint64, int]) int
	depth = func(n *stNode[uint64, int]) int {
		if n == nil {
			return 0
		}
		return 1 + max(depth(n.left), depth(n.right))
	}
	if d := depth(tr.root); d > 20 {
		t.Fatalf("tree depth %d for 4096 ascending inserts; AVL balancing broken", d)
	}
}

func TestCloneIsolation(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 500; i++ {
		tr.Put(uint64(i), i)
	}
	snap := tr.Clone()
	for i := 0; i < 500; i++ {
		tr.Put(uint64(i), i+1000)
	}
	for i := 500; i < 600; i++ {
		tr.Put(uint64(i), i)
	}
	for i := 0; i < 250; i++ {
		tr.Remove(uint64(i * 2))
	}
	for i := 0; i < 500; i++ {
		if v, ok := snap.Get(uint64(i)); !ok || v != i {
			t.Fatalf("snapshot Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := snap.Get(550); ok {
		t.Fatal("snapshot sees future key")
	}
	n := 0
	snap.RangeFrom(0, func(k uint64, v int) bool {
		if int(k) != v {
			t.Fatalf("snapshot scan value drift at %d: %d", k, v)
		}
		n++
		return true
	})
	if n != 500 {
		t.Fatalf("snapshot scan saw %d entries", n)
	}
}

func TestNestedClones(t *testing.T) {
	tr := New[uint64, int]()
	tr.Put(1, 1)
	s1 := tr.Clone()
	tr.Put(1, 2)
	s2 := tr.Clone()
	tr.Put(1, 3)
	if v, _ := s1.Get(1); v != 1 {
		t.Fatalf("s1 = %d", v)
	}
	if v, _ := s2.Get(1); v != 2 {
		t.Fatalf("s2 = %d", v)
	}
	if v, _ := tr.Get(1); v != 3 {
		t.Fatalf("live = %d", v)
	}
}

func TestConcurrentUpdatesWithClones(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 200; i++ {
		tr.Put(uint64(i), i)
	}
	var writers, cloner sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		writers.Add(1)
		go func() {
			defer writers.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 41))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.IntN(200))
				if rng.IntN(4) == 0 {
					tr.Remove(k)
				} else {
					tr.Put(k, i)
				}
			}
		}()
	}
	cloner.Add(1)
	go func() {
		defer cloner.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tr.Clone()
			n1, n2 := 0, 0
			s.RangeFrom(0, func(uint64, int) bool { n1++; return true })
			s.RangeFrom(0, func(uint64, int) bool { n2++; return true })
			if n1 != n2 {
				t.Errorf("clone unstable: %d vs %d", n1, n2)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	cloner.Wait()
}

func TestRangeFromLinearizableCut(t *testing.T) {
	tr := New[uint64, int]()
	tr.Put(10, 0)
	tr.Put(20, 0)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Both puts under one... no — two separate puts: a scan
			// may see (i, i-1) but never (x, y) with y > x.
			tr.Put(10, i)
			tr.Put(20, i)
		}
	}()
	for round := 0; round < 2000; round++ {
		a, b := -1, -1
		tr.RangeFrom(0, func(k uint64, v int) bool {
			if k == 10 {
				a = v
			}
			if k == 20 {
				b = v
			}
			return true
		})
		if b > a {
			close(stop)
			<-done
			t.Fatalf("scan saw effects out of order: key10=%d key20=%d", a, b)
		}
	}
	close(stop)
	<-done
}
