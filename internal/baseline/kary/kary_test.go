package kary

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	tr := New[uint64, int]()
	if _, ok := tr.Get(1); ok {
		t.Fatal("phantom")
	}
	tr.Put(1, 10)
	tr.Put(1, 11)
	if v, ok := tr.Get(1); !ok || v != 11 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !tr.Remove(1) || tr.Remove(1) {
		t.Fatal("remove semantics")
	}
}

func TestOverflowSplitsKWays(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < arity; i++ {
		tr.Put(uint64(i*10), i)
	}
	root := tr.root.Load()
	if !root.internal || root.nsep != arity-1 {
		t.Fatalf("expected k-way split at root: internal=%v nsep=%d", root.internal, root.nsep)
	}
	for i := 0; i < arity; i++ {
		if v, ok := tr.Get(uint64(i * 10)); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*10, v, ok)
		}
	}
}

func TestSequentialReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		tr := New[uint64, int]()
		ref := map[uint64]int{}
		for i := 0; i < 800; i++ {
			k := uint64(rng.IntN(128))
			switch rng.IntN(3) {
			case 0:
				got := tr.Remove(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 1:
				tr.Put(k, i)
				ref[k] = i
			default:
				v, ok := tr.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScanSortedCompleteEarlyStop(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 1500; i += 3 {
		tr.Put(uint64(i), i)
	}
	var got []uint64
	tr.RangeFrom(9, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 497 || got[0] != 9 {
		t.Fatalf("n=%d first=%d", len(got), got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("unsorted scan")
		}
	}
	n := 0
	tr.RangeFrom(0, func(uint64, int) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestConcurrentShardedReference(t *testing.T) {
	tr := New[uint64, int]()
	const goroutines, ops, space = 8, 2000, 256
	type final struct {
		val     int
		present bool
	}
	finals := make([]final, space)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 47))
			for i := 0; i < ops; i++ {
				k := uint64(rng.IntN(space/goroutines))*goroutines + uint64(g)
				switch rng.IntN(4) {
				case 0:
					tr.Remove(k)
					finals[k] = final{}
				case 1:
					tr.Get(k)
				default:
					v := g*ops + i
					tr.Put(k, v)
					finals[k] = final{v, true}
				}
			}
		}()
	}
	wg.Wait()
	for k, want := range finals {
		got, ok := tr.Get(uint64(k))
		if ok != want.present || (ok && got != want.val) {
			t.Fatalf("key %d: %d,%v want %d,%v", k, got, ok, want.val, want.present)
		}
	}
}

func TestScanUnderChurnSeesStableKeys(t *testing.T) {
	tr := New[uint64, int]()
	for i := uint64(0); i < 400; i += 4 {
		tr.Put(i, int(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 53))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.IntN(400))
				if k%4 == 0 {
					continue
				}
				if rng.IntN(3) == 0 {
					tr.Remove(k)
				} else {
					tr.Put(k, i)
				}
			}
		}()
	}
	for round := 0; round < 150; round++ {
		n := 0
		tr.RangeFrom(0, func(k uint64, v int) bool {
			if k%4 == 0 {
				if v != int(k) {
					t.Errorf("stable key %d drifted to %d", k, v)
				}
				n++
			}
			return true
		})
		if n != 100 {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: scan saw %d/100 stable keys", round, n)
		}
	}
	close(stop)
	wg.Wait()
}
