// Package kary implements a non-blocking k-ary search tree after Brown &
// Helga (OPODIS '11) with the range-query support of Brown & Avni (OPODIS
// '12): a leaf-oriented tree whose internal nodes have k-1 separator keys
// and k children, leaves hold at most k-1 entries and are immutable —
// updates replace a leaf wholesale with a CAS on the parent's child slot,
// and an overflowing leaf is replaced by a new internal node with k
// single-entry leaf children.
//
// Range scans collect the leaves covering the range and validate the
// collection by re-traversal, restarting when a concurrent update is
// detected — the paper's point of comparison with Jiffy's never-restarting
// scans ("range scans undergo a validation phase ... and are restarted when
// a concurrent update is detected", §2).
package kary

import (
	"cmp"
	"sort"
	"sync/atomic"
)

// arity is k. Leaves hold at most arity-1 entries.
const arity = 4

const maxScanRetries = 1 << 20

type kNode[K cmp.Ordered, V any] struct {
	internal bool

	// Internal: seps[i] separates children[i] (< seps[i]) from
	// children[i+1] (>= seps[i]). nsep separators are in use.
	seps     [arity - 1]K
	nsep     int
	children [arity]atomic.Pointer[kNode[K, V]]

	// Leaf payload (immutable after publication).
	keys []K
	vals []V
}

// Tree is a non-blocking k-ary search tree.
type Tree[K cmp.Ordered, V any] struct {
	root atomic.Pointer[kNode[K, V]]
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	t := &Tree[K, V]{}
	t.root.Store(&kNode[K, V]{})
	return t
}

// Name implements index.Named.
func (t *Tree[K, V]) Name() string { return "k-ary" }

// childIndex returns which child of an internal node covers key.
func (n *kNode[K, V]) childIndex(key K) int {
	i := 0
	for i < n.nsep && key >= n.seps[i] {
		i++
	}
	return i
}

// traverse descends to the leaf covering key, returning the leaf, its
// parent and child slot, and the leaf's exclusive upper bound (nil for the
// rightmost leaf).
func (t *Tree[K, V]) traverse(key K) (p *kNode[K, V], slot int, leaf *kNode[K, V], upper *K) {
	cur := t.root.Load()
	for cur.internal {
		i := cur.childIndex(key)
		if i < cur.nsep {
			k := cur.seps[i]
			upper = &k
		}
		p = cur
		slot = i
		cur = cur.children[i].Load()
	}
	return p, slot, cur, upper
}

func (l *kNode[K, V]) find(key K) (int, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	return i, i < len(l.keys) && l.keys[i] == key
}

// Get returns the value stored for key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	_, _, leaf, _ := t.traverse(key)
	if i, ok := leaf.find(key); ok {
		return leaf.vals[i], true
	}
	var zero V
	return zero, false
}

func (t *Tree[K, V]) replace(p *kNode[K, V], slot int, old, nu *kNode[K, V]) bool {
	if p == nil {
		return t.root.CompareAndSwap(old, nu)
	}
	return p.children[slot].CompareAndSwap(old, nu)
}

// Put sets the value for key.
func (t *Tree[K, V]) Put(key K, val V) {
	for {
		p, slot, leaf, _ := t.traverse(key)
		i, found := leaf.find(key)
		var keys []K
		var vals []V
		if found {
			keys = append([]K(nil), leaf.keys...)
			vals = append([]V(nil), leaf.vals...)
			vals[i] = val
		} else {
			keys = make([]K, len(leaf.keys)+1)
			vals = make([]V, len(leaf.vals)+1)
			copy(keys, leaf.keys[:i])
			copy(vals, leaf.vals[:i])
			keys[i], vals[i] = key, val
			copy(keys[i+1:], leaf.keys[i:])
			copy(vals[i+1:], leaf.vals[i:])
		}
		var nu *kNode[K, V]
		if len(keys) <= arity-1 {
			nu = &kNode[K, V]{keys: keys, vals: vals}
		} else {
			// Overflow (exactly arity entries): grow downwards into
			// an internal node with arity single-entry leaves.
			nu = &kNode[K, V]{internal: true, nsep: arity - 1}
			for j := 1; j < arity; j++ {
				nu.seps[j-1] = keys[j]
			}
			for j := 0; j < arity; j++ {
				nu.children[j].Store(&kNode[K, V]{
					keys: keys[j : j+1 : j+1],
					vals: vals[j : j+1 : j+1],
				})
			}
		}
		if t.replace(p, slot, leaf, nu) {
			return
		}
	}
}

// Remove deletes key, reporting whether it was present.
func (t *Tree[K, V]) Remove(key K) bool {
	for {
		p, slot, leaf, _ := t.traverse(key)
		i, found := leaf.find(key)
		if !found {
			return false
		}
		keys := make([]K, len(leaf.keys)-1)
		vals := make([]V, len(leaf.vals)-1)
		copy(keys, leaf.keys[:i])
		copy(vals, leaf.vals[:i])
		copy(keys[i:], leaf.keys[i+1:])
		copy(vals[i:], leaf.vals[i+1:])
		if t.replace(p, slot, leaf, &kNode[K, V]{keys: keys, vals: vals}) {
			return true
		}
	}
}

// scanWindow bounds one validated scan window, as in the lfca baseline.
const scanWindow = 16384

// RangeFrom visits entries with key >= lo ascending until fn returns false,
// validating each window by re-traversal and restarting the window when a
// concurrent update replaced any collected leaf.
func (t *Tree[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	type seg struct {
		leaf  *kNode[K, V]
		upper *K
	}
	cursor := lo
	first := true
	for {
		var segs []seg
		done := false
		for attempt := 0; attempt < maxScanRetries; attempt++ {
			segs = segs[:0]
			entries := 0
			c := cursor
			done = false
			for entries < scanWindow {
				_, _, leaf, upper := t.traverse(c)
				segs = append(segs, seg{leaf, upper})
				entries += len(leaf.keys) + 1 // +1 so empty leaves make progress
				if upper == nil {
					done = true
					break
				}
				c = *upper
			}
			valid := true
			c = cursor
			for _, s := range segs {
				_, _, leaf, _ := t.traverse(c)
				if leaf != s.leaf {
					valid = false
					break
				}
				if s.upper == nil {
					break
				}
				c = *s.upper
			}
			if valid {
				break
			}
		}
		for _, s := range segs {
			l := s.leaf
			i := 0
			if first {
				i = sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= lo })
			}
			for ; i < len(l.keys); i++ {
				if !fn(l.keys[i], l.vals[i]) {
					return
				}
			}
		}
		if done || len(segs) == 0 {
			return
		}
		first = false
		cursor = *segs[len(segs)-1].upper
	}
}

// Len counts entries (O(n); for tests).
func (t *Tree[K, V]) Len() int {
	n := 0
	var walk func(nd *kNode[K, V])
	walk = func(nd *kNode[K, V]) {
		if nd.internal {
			for i := 0; i <= nd.nsep; i++ {
				walk(nd.children[i].Load())
			}
			return
		}
		n += len(nd.keys)
	}
	walk(t.root.Load())
	return n
}
