package cslm

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicPutGetRemove(t *testing.T) {
	s := New[uint64, int]()
	if _, ok := s.Get(1); ok {
		t.Fatal("phantom on empty list")
	}
	s.Put(1, 10)
	s.Put(2, 20)
	s.Put(1, 11)
	if v, ok := s.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if !s.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if s.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("removed key still visible")
	}
	if v, ok := s.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = %d,%v", v, ok)
	}
}

func TestSequentialReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		s := New[uint64, int]()
		ref := map[uint64]int{}
		for i := 0; i < 1000; i++ {
			k := uint64(rng.IntN(128))
			switch rng.IntN(3) {
			case 0:
				if got, want := s.Remove(k), mapHas(ref, k); got != want {
					return false
				}
				delete(ref, k)
			case 1:
				s.Put(k, i)
				ref[k] = i
			default:
				v, ok := s.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		return s.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mapHas(m map[uint64]int, k uint64) bool { _, ok := m[k]; return ok }

func TestRangeFromSortedAndBounded(t *testing.T) {
	s := New[uint64, int]()
	for i := 0; i < 500; i += 2 {
		s.Put(uint64(i), i)
	}
	var got []uint64
	s.RangeFrom(100, func(k uint64, v int) bool {
		got = append(got, k)
		return len(got) < 50
	})
	if len(got) != 50 || got[0] != 100 {
		t.Fatalf("n=%d first=%d", len(got), got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

func TestConcurrentShardedReference(t *testing.T) {
	s := New[uint64, int]()
	const goroutines, ops, space = 8, 3000, 256
	type final struct {
		val     int
		present bool
	}
	finals := make([]final, space)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 3))
			for i := 0; i < ops; i++ {
				k := uint64(rng.IntN(space/goroutines))*goroutines + uint64(g)
				switch rng.IntN(4) {
				case 0:
					s.Remove(k)
					finals[k] = final{}
				case 1:
					s.Get(k)
				default:
					v := g*ops + i
					s.Put(k, v)
					finals[k] = final{v, true}
				}
			}
		}()
	}
	wg.Wait()
	for k, want := range finals {
		got, ok := s.Get(uint64(k))
		if ok != want.present || (ok && got != want.val) {
			t.Fatalf("key %d: %d,%v want %d,%v", k, got, ok, want.val, want.present)
		}
	}
}

func TestConcurrentInsertDeleteSameKeys(t *testing.T) {
	s := New[uint64, int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 5))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.IntN(8))
				if rng.IntN(2) == 0 {
					s.Put(k, i)
				} else {
					s.Remove(k)
				}
			}
		}()
	}
	wg.Wait()
	// Structure must stay sorted and marker-free at quiescence.
	var prev uint64
	first := true
	for n := s.head.next.Load(); n != nil; n = n.next.Load() {
		if n.marker {
			continue
		}
		if !n.alive() {
			continue
		}
		if !first && n.key <= prev {
			t.Fatalf("keys unsorted: %d after %d", n.key, prev)
		}
		prev, first = n.key, false
	}
}

func TestLenCountsOnlyLive(t *testing.T) {
	s := New[uint64, int]()
	for i := 0; i < 100; i++ {
		s.Put(uint64(i), i)
	}
	for i := 0; i < 100; i += 2 {
		s.Remove(uint64(i))
	}
	if got := s.Len(); got != 50 {
		t.Fatalf("Len = %d", got)
	}
}
