package cslm

import "testing"

func BenchmarkPutSeq(b *testing.B) {
	s := New[uint64, int]()
	for i := 0; i < b.N; i++ {
		s.Put(uint64(i%65536)*2, i)
	}
}
func BenchmarkPutRemove(b *testing.B) {
	s := New[uint64, int]()
	for i := 0; i < 32768; i++ {
		s.Put(uint64(i)*2, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i % 65536)
		if i&1 == 0 {
			s.Put(k, i)
		} else {
			s.Remove(k)
		}
	}
}
func BenchmarkGet(b *testing.B) {
	s := New[uint64, int]()
	for i := 0; i < 32768; i++ {
		s.Put(uint64(i)*2, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint64(i % 65536))
	}
}
