// Package cslm implements a lock-free concurrent skip list modeled on
// java.util.concurrent.ConcurrentSkipListMap (the "Java CSLM" baseline of
// the paper's evaluation, §4.1), which in turn draws on Fraser's,
// Fomitchev's and Sundell's designs.
//
// Deletion follows the CSLM protocol: a node dies by CASing its value to
// nil (the linearization point), then a marker node is appended after it so
// the unlink CAS cannot race with a concurrent insert, then predecessor
// pointers are swung past node and marker. Lookups and scans are lock-free;
// range scans are weakly consistent (no snapshot semantics — exactly the
// capability gap versus Jiffy that the paper calls out).
package cslm

import (
	"cmp"
	"math/rand/v2"
	"sync/atomic"
)

type node[K cmp.Ordered, V any] struct {
	key    K
	marker bool
	isHead bool
	val    atomic.Pointer[V] // nil = deleted (or marker/head)
	next   atomic.Pointer[node[K, V]]
}

func (n *node[K, V]) alive() bool { return n.val.Load() != nil }

// SkipList is a lock-free ordered map. The zero value is not usable; call
// New.
type SkipList[K cmp.Ordered, V any] struct {
	head     *node[K, V]
	topIndex atomic.Pointer[indexHead[K, V]]
}

const maxLevel = 24

type indexItem[K cmp.Ordered, V any] struct {
	n     *node[K, V]
	down  *indexItem[K, V]
	right atomic.Pointer[indexItem[K, V]]
}

type indexHead[K cmp.Ordered, V any] struct {
	right atomic.Pointer[indexItem[K, V]]
	down  *indexHead[K, V]
	level int
}

// New returns an empty skip list.
func New[K cmp.Ordered, V any]() *SkipList[K, V] {
	s := &SkipList[K, V]{head: &node[K, V]{isHead: true}}
	s.topIndex.Store(&indexHead[K, V]{level: 1})
	return s
}

// Name implements index.Named.
func (s *SkipList[K, V]) Name() string { return "cslm" }

// findPredecessor descends the index lanes to a base node with key < target
// (or the head sentinel).
func (s *SkipList[K, V]) findPredecessor(key K) *node[K, V] {
	h := s.topIndex.Load()
	var item *indexItem[K, V]
	for {
		var right *indexItem[K, V]
		if item != nil {
			right = item.right.Load()
		} else {
			right = h.right.Load()
		}
		for right != nil {
			n := right.n
			if !n.alive() {
				after := right.right.Load()
				if item != nil {
					item.right.CompareAndSwap(right, after)
					right = item.right.Load()
				} else {
					h.right.CompareAndSwap(right, after)
					right = h.right.Load()
				}
				continue
			}
			if n.key >= key {
				break
			}
			item = right
			right = item.right.Load()
		}
		if item != nil {
			if item.down == nil {
				return item.n
			}
			item = item.down
		} else {
			if h.down == nil {
				return s.head
			}
			h = h.down
		}
	}
}

// helpDelete advances the two-phase unlink of a logically deleted node n
// whose predecessor is b and successor f (the CSLM protocol: append marker,
// then splice past both).
func (s *SkipList[K, V]) helpDelete(b, n, f *node[K, V]) {
	if f != nil && f.marker {
		b.next.CompareAndSwap(n, f.next.Load())
		return
	}
	m := &node[K, V]{marker: true}
	m.next.Store(f)
	n.next.CompareAndSwap(f, m)
}

// Get returns the value stored for key.
func (s *SkipList[K, V]) Get(key K) (V, bool) {
	var zero V
	for {
		b := s.findPredecessor(key)
		n := b.next.Load()
		for {
			if n == nil {
				return zero, false
			}
			f := n.next.Load()
			if n != b.next.Load() {
				break // inconsistent read; retry from index
			}
			if n.marker {
				break
			}
			v := n.val.Load()
			if v == nil { // deleted: help unlink and retry
				s.helpDelete(b, n, f)
				break
			}
			if !b.isHead && b.val.Load() == nil {
				break
			}
			if n.key == key {
				return *v, true
			}
			if n.key > key {
				return zero, false
			}
			b, n = n, f
		}
	}
}

// Put sets the value for key.
func (s *SkipList[K, V]) Put(key K, val V) {
	vp := &val
	for {
		b := s.findPredecessor(key)
		n := b.next.Load()
		for {
			if n != nil {
				f := n.next.Load()
				if n != b.next.Load() {
					break
				}
				if n.marker {
					break
				}
				v := n.val.Load()
				if v == nil {
					s.helpDelete(b, n, f)
					break
				}
				if !b.isHead && b.val.Load() == nil {
					break
				}
				if n.key < key {
					b, n = n, f
					continue
				}
				if n.key == key {
					if n.val.CompareAndSwap(v, vp) {
						return
					}
					break
				}
			}
			// Insert between b and n.
			if !b.isHead && b.val.Load() == nil {
				break
			}
			z := &node[K, V]{key: key}
			z.val.Store(vp)
			z.next.Store(n)
			if b.next.CompareAndSwap(n, z) {
				s.addIndex(z)
				return
			}
			break
		}
	}
}

// Remove deletes key, reporting whether it was present.
func (s *SkipList[K, V]) Remove(key K) bool {
	for {
		b := s.findPredecessor(key)
		n := b.next.Load()
		for {
			if n == nil {
				return false
			}
			f := n.next.Load()
			if n != b.next.Load() {
				break
			}
			if n.marker {
				break
			}
			v := n.val.Load()
			if v == nil {
				s.helpDelete(b, n, f)
				break
			}
			if !b.isHead && b.val.Load() == nil {
				break
			}
			if n.key > key {
				return false
			}
			if n.key < key {
				b, n = n, f
				continue
			}
			if !n.val.CompareAndSwap(v, nil) {
				break // lost the race; re-examine
			}
			// Unlink eagerly: append marker then splice.
			s.helpDelete(b, n, n.next.Load())
			if fm := n.next.Load(); fm != nil && fm.marker {
				b.next.CompareAndSwap(n, fm.next.Load())
			}
			return true
		}
	}
}

// RangeFrom visits entries with key >= lo ascending until fn returns false.
// The iteration is weakly consistent, like CSLM's: concurrent updates may
// or may not be observed, and no atomic snapshot is provided.
func (s *SkipList[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	n := s.findPredecessor(lo).next.Load()
	for n != nil {
		if n.marker {
			n = n.next.Load()
			continue
		}
		v := n.val.Load()
		if v != nil && n.key >= lo {
			if !fn(n.key, *v) {
				return
			}
		}
		n = n.next.Load()
	}
}

// Len counts live entries (O(n); for tests).
func (s *SkipList[K, V]) Len() int {
	c := 0
	for n := s.head.next.Load(); n != nil; n = n.next.Load() {
		if !n.marker && n.alive() {
			c++
		}
	}
	return c
}

// lanePos addresses one position in an index lane: either a head tower slot
// or an item, whichever the descent last passed at that level.
type lanePos[K cmp.Ordered, V any] struct {
	h  *indexHead[K, V]
	it *indexItem[K, V]
}

func (p lanePos[K, V]) right() *indexItem[K, V] {
	if p.it != nil {
		return p.it.right.Load()
	}
	return p.h.right.Load()
}

func (p lanePos[K, V]) casRight(old, nu *indexItem[K, V]) bool {
	if p.it != nil {
		return p.it.right.CompareAndSwap(old, nu)
	}
	return p.h.right.CompareAndSwap(old, nu)
}

// walkLane advances a lane position to the rightmost point with key < target,
// unlinking items whose nodes died.
func walkLane[K cmp.Ordered, V any](p lanePos[K, V], key K) lanePos[K, V] {
	for {
		r := p.right()
		if r == nil {
			return p
		}
		if !r.n.alive() {
			p.casRight(r, r.right.Load())
			continue
		}
		if r.n.key >= key {
			return p
		}
		p = lanePos[K, V]{it: r}
	}
}

// addIndex links index lanes for a new node with probability 1/2 per level,
// descending once from the top to collect per-level predecessors (O(log n),
// as in ConcurrentSkipListMap).
func (s *SkipList[K, V]) addIndex(n *node[K, V]) {
	level := 1
	for level < maxLevel && rand.Uint64()&1 == 0 {
		level++
	}
	if level == 1 {
		return
	}
	top := s.topIndex.Load()
	for top.level < level {
		nh := &indexHead[K, V]{down: top, level: top.level + 1}
		if s.topIndex.CompareAndSwap(top, nh) {
			top = nh
		} else {
			top = s.topIndex.Load()
		}
	}

	// Collect predecessors at levels [2, level] in one descent.
	preds := make([]lanePos[K, V], level+1) // preds[l] for lane l
	h := s.topIndex.Load()
	pos := lanePos[K, V]{h: h}
	lvl := h.level
	for {
		pos = walkLane(pos, n.key)
		if lvl <= level {
			preds[lvl] = pos
		}
		if lvl == 2 {
			break
		}
		if pos.it != nil {
			pos = lanePos[K, V]{it: pos.it.down}
		} else {
			pos = lanePos[K, V]{h: pos.h.down}
		}
		lvl--
	}

	var down *indexItem[K, V]
	for l := 2; l <= level; l++ {
		it := &indexItem[K, V]{n: n, down: down}
		p := preds[l]
		ok := false
		for attempt := 0; attempt < 4; attempt++ {
			if !n.alive() {
				return
			}
			p = walkLane(p, n.key)
			r := p.right()
			if r != nil && r.n == n {
				ok = true
				break
			}
			it.right.Store(r)
			if p.casRight(r, it) {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
		down = it
	}
}
