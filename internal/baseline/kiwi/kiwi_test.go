package kiwi

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	m := New()
	if _, ok := m.Get(1); ok {
		t.Fatal("phantom")
	}
	m.Put(1, 10)
	m.Put(1, 11)
	if v, ok := m.Get(1); !ok || v != 11 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !m.Remove(1) || m.Remove(1) {
		t.Fatal("remove semantics")
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("tombstone not respected")
	}
	m.Put(1, 12) // resurrect over tombstone
	if v, ok := m.Get(1); !ok || v != 12 {
		t.Fatalf("resurrect: %d,%v", v, ok)
	}
}

func TestSequentialReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 59))
		m := New()
		ref := map[uint32]uint32{}
		for i := 0; i < 800; i++ {
			k := uint32(rng.IntN(128))
			switch rng.IntN(3) {
			case 0:
				got := m.Remove(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 1:
				m.Put(k, uint32(i))
				ref[k] = uint32(i)
			default:
				v, ok := m.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		return m.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkSplits(t *testing.T) {
	m := New()
	for i := 0; i < 3*maxChunk; i++ {
		m.Put(uint32(i), uint32(i))
	}
	chunks := 0
	for c := m.head.Load(); c != nil; c = c.next.Load() {
		chunks++
	}
	if chunks < 2 {
		t.Fatalf("no chunk splits after %d inserts", 3*maxChunk)
	}
	for i := 0; i < 3*maxChunk; i++ {
		if v, ok := m.Get(uint32(i)); !ok || v != uint32(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestScanConsistentUnderUpdates(t *testing.T) {
	m := New()
	for i := uint32(0); i < 100; i++ {
		m.Put(i, 0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint32(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Writer keeps all keys equal, updating ascending: a
			// versioned scan must see a non-increasing sequence
			// (later keys updated after the scan version cannot be
			// ahead of earlier ones).
			for k := uint32(0); k < 100; k++ {
				m.Put(k, i)
			}
		}
	}()
	for round := 0; round < 300; round++ {
		prev := ^uint32(0)
		m.RangeFrom(0, func(k, v uint32) bool {
			if v > prev {
				t.Errorf("scan saw later update after earlier one: key %d: %d > %d", k, v, prev)
				return false
			}
			prev = v
			return true
		})
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentShardedReference(t *testing.T) {
	m := New()
	const goroutines, ops, space = 8, 2000, 256
	type final struct {
		val     uint32
		present bool
	}
	finals := make([]final, space)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 61))
			for i := 0; i < ops; i++ {
				k := uint32(rng.IntN(space/goroutines)*goroutines + g)
				switch rng.IntN(4) {
				case 0:
					m.Remove(k)
					finals[k] = final{}
				case 1:
					m.Get(k)
				default:
					v := uint32(g*ops + i)
					m.Put(k, v)
					finals[k] = final{v, true}
				}
			}
		}()
	}
	wg.Wait()
	for k, want := range finals {
		got, ok := m.Get(uint32(k))
		if ok != want.present || (ok && got != want.val) {
			t.Fatalf("key %d: %d,%v want %d,%v", k, got, ok, want.val, want.present)
		}
	}
}

func TestScanPinsVersionsAgainstPruning(t *testing.T) {
	m := New()
	for i := uint32(0); i < 50; i++ {
		m.Put(i, 1)
	}
	// Run scans and update storms together; a scan must never miss a key
	// that existed before it started (pruning must spare its versions).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint32(2); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for k := uint32(0); k < 50; k++ {
				m.Put(k, i)
			}
		}
	}()
	for round := 0; round < 300; round++ {
		n := 0
		m.RangeFrom(0, func(uint32, uint32) bool { n++; return true })
		if n != 50 {
			close(stop)
			wg.Wait()
			t.Fatalf("scan missed keys: %d/50", n)
		}
	}
	close(stop)
	wg.Wait()
}
