// Package kiwi implements a KiWi-style chunked multiversion key-value map
// after Basin et al. (PPoPP '17), the paper's remaining baseline. Like the
// released KiWi codebase, it is specialized to 4-byte integer keys and
// values (the paper's footnote 8).
//
// The properties the evaluation depends on are reproduced faithfully:
//
//   - version numbers come from a single shared atomic counter — the
//     design §3.2 argues becomes a bottleneck (scans increment it, updates
//     read it), in contrast to Jiffy's TSC;
//   - updates overwrite in place (push a same-key version) and only the
//     multiversion chain makes concurrent scans consistent;
//   - keys live in cache-friendly sorted chunks.
//
// Simplification (DESIGN.md): chunk rebalance (key insertion and chunk
// split) is guarded by a per-chunk mutex instead of KiWi's lock-free
// rebalance protocol; value updates of existing keys and all reads remain
// lock-free.
package kiwi

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	maxChunk  = 2048
	scanSlots = 64
)

// cellVer is one version of a key's value.
type cellVer struct {
	ver  int64
	val  uint32
	del  bool
	next atomic.Pointer[cellVer]
}

// cell anchors a key's version chain.
type cell struct {
	head atomic.Pointer[cellVer]
}

// payload is a chunk's immutable sorted key array plus the per-key
// version-chain anchors, and a small sorted overflow region that absorbs
// new-key inserts cheaply (KiWi's pre-allocated k-cells region): only when
// the overflow fills is it merged into the base arrays. Replaced wholesale
// under the chunk mutex when keys are added.
type payload struct {
	keys   []uint32
	cells  []*cell
	okeys  []uint32
	ocells []*cell
}

// maxOverflow bounds the overflow region; merging 2048 base entries every
// 64 inserts keeps new-key insertion amortized ~O(maxOverflow).
const maxOverflow = 64

type chunk struct {
	minKey uint32
	next   atomic.Pointer[chunk]
	mu     sync.Mutex
	data   atomic.Pointer[payload]
}

// Map is a KiWi-style ordered map from uint32 to uint32.
type Map struct {
	gv    atomic.Int64 // the global version counter
	head  atomic.Pointer[chunk]
	scans [scanSlots]atomic.Int64 // active scan versions (0 = free)
}

// New returns an empty map.
func New() *Map {
	m := &Map{}
	m.gv.Store(1)
	c := &chunk{}
	c.data.Store(&payload{})
	m.head.Store(c)
	return m
}

// Name implements index.Named.
func (m *Map) Name() string { return "kiwi" }

// findChunk returns the chunk covering key.
func (m *Map) findChunk(key uint32) *chunk {
	c := m.head.Load()
	for {
		n := c.next.Load()
		if n == nil || n.minKey > key {
			return c
		}
		c = n
	}
}

// lookup returns the cell anchoring key's version chain, searching the base
// array and then the overflow region, or nil.
func (p *payload) lookup(key uint32) *cell {
	i := sort.Search(len(p.keys), func(i int) bool { return p.keys[i] >= key })
	if i < len(p.keys) && p.keys[i] == key {
		return p.cells[i]
	}
	i = sort.Search(len(p.okeys), func(i int) bool { return p.okeys[i] >= key })
	if i < len(p.okeys) && p.okeys[i] == key {
		return p.ocells[i]
	}
	return nil
}

// merged returns the union of base and overflow, sorted (both inputs are
// sorted and disjoint).
func (p *payload) merged() ([]uint32, []*cell) {
	if len(p.okeys) == 0 {
		return p.keys, p.cells
	}
	keys := make([]uint32, 0, len(p.keys)+len(p.okeys))
	cells := make([]*cell, 0, len(p.cells)+len(p.ocells))
	i, j := 0, 0
	for i < len(p.keys) && j < len(p.okeys) {
		if p.keys[i] < p.okeys[j] {
			keys = append(keys, p.keys[i])
			cells = append(cells, p.cells[i])
			i++
		} else {
			keys = append(keys, p.okeys[j])
			cells = append(cells, p.ocells[j])
			j++
		}
	}
	keys = append(keys, p.keys[i:]...)
	cells = append(cells, p.cells[i:]...)
	keys = append(keys, p.okeys[j:]...)
	cells = append(cells, p.ocells[j:]...)
	return keys, cells
}

// minActiveScan returns the smallest registered scan version, or now if no
// scan is active; versions older than it can be pruned.
func (m *Map) minActiveScan(now int64) int64 {
	min := now
	for i := range m.scans {
		if v := m.scans[i].Load(); v != 0 && v < min {
			min = v
		}
	}
	return min
}

// pushVersion prepends a version to a cell, then prunes chain entries
// invisible to every active scan (the newest version at or below the
// minimal active scan version is the boundary; everything older is dead).
func (m *Map) pushVersion(c *cell, val uint32, del bool) {
	for {
		cur := c.head.Load()
		nv := &cellVer{ver: m.gv.Load(), val: val, del: del}
		nv.next.Store(cur)
		if c.head.CompareAndSwap(cur, nv) {
			prune(nv, m.minActiveScan(math.MaxInt64))
			return
		}
	}
}

// prune cuts the chain after the first version visible to every present and
// future reader, like Jiffy's revision GC. Scan visibility here is strict
// (a scan at version sv reads versions < sv), so the boundary test is
// strict as well.
func prune(v *cellVer, minScan int64) {
	for v != nil {
		if v.ver < minScan {
			v.next.Store(nil)
			return
		}
		v = v.next.Load()
	}
}

// Put sets the value for key. For keys already present this is a lock-free
// in-place version push; new keys take the chunk's rebalance mutex.
func (m *Map) Put(key, val uint32) {
	for {
		c := m.findChunk(key)
		p := c.data.Load()
		if cell := p.lookup(key); cell != nil {
			m.pushVersion(cell, val, false)
			return
		}
		if m.insertKey(c, key, val) {
			return
		}
	}
}

// insertKey adds a key to a chunk under its mutex, splitting if oversized.
// Returns false if the chunk no longer covers key (caller retries).
func (m *Map) insertKey(c *chunk, key, val uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.next.Load(); n != nil && n.minKey <= key {
		return false // chunk split under us
	}
	p := c.data.Load()
	if cell := p.lookup(key); cell != nil {
		m.pushVersion(cell, val, false)
		return true
	}
	nc := &cell{}
	nc.head.Store(&cellVer{ver: m.gv.Load(), val: val})

	// Cheap path: insert into the small overflow region.
	i := sort.Search(len(p.okeys), func(i int) bool { return p.okeys[i] >= key })
	okeys := make([]uint32, len(p.okeys)+1)
	ocells := make([]*cell, len(p.ocells)+1)
	copy(okeys, p.okeys[:i])
	copy(ocells, p.ocells[:i])
	okeys[i], ocells[i] = key, nc
	copy(okeys[i+1:], p.okeys[i:])
	copy(ocells[i+1:], p.ocells[i:])

	if len(okeys) <= maxOverflow && len(p.keys)+len(okeys) <= maxChunk {
		c.data.Store(&payload{keys: p.keys, cells: p.cells, okeys: okeys, ocells: ocells})
		return true
	}

	// Rebalance: merge overflow into the base, splitting if oversized.
	keys, cells := (&payload{keys: p.keys, cells: p.cells, okeys: okeys, ocells: ocells}).merged()
	if len(keys) > maxChunk {
		mid := len(keys) / 2
		right := &chunk{minKey: keys[mid]}
		right.data.Store(&payload{keys: keys[mid:], cells: cells[mid:]})
		right.next.Store(c.next.Load())
		// Publish the right chunk before shrinking this one so a
		// concurrent reader always finds every key in one of the two.
		c.next.Store(right)
		c.data.Store(&payload{keys: keys[:mid:mid], cells: cells[:mid:mid]})
		return true
	}
	c.data.Store(&payload{keys: keys, cells: cells})
	return true
}

// Get returns the newest value stored for key.
func (m *Map) Get(key uint32) (uint32, bool) {
	c := m.findChunk(key)
	p := c.data.Load()
	if cell := p.lookup(key); cell != nil {
		v := cell.head.Load()
		if v != nil && !v.del {
			return v.val, true
		}
	}
	return 0, false
}

// Remove deletes key, reporting whether it was present. Deletion pushes a
// tombstone version (KiWi never shrinks chunks).
func (m *Map) Remove(key uint32) bool {
	c := m.findChunk(key)
	p := c.data.Load()
	cell := p.lookup(key)
	if cell == nil {
		return false
	}
	v := cell.head.Load()
	if v == nil || v.del {
		return false
	}
	m.pushVersion(cell, 0, true)
	return true
}

// RangeFrom visits entries with key >= lo ascending until fn returns false.
// The scan increments the global version counter (its linearization point;
// this is the serializing step Jiffy avoids) and reads, per key, the newest
// version strictly below its scan version.
func (m *Map) RangeFrom(lo uint32, fn func(key, val uint32) bool) {
	// Register in a scan slot with a +inf placeholder before taking the
	// scan version, so concurrent pruning can never free versions this
	// scan might need (same publish-then-refresh pattern as Jiffy's
	// snapshot registry, §3.3.4).
	slot := -1
	for slot < 0 {
		for i := range m.scans {
			if m.scans[i].Load() == 0 && m.scans[i].CompareAndSwap(0, math.MaxInt64) {
				slot = i
				break
			}
		}
	}
	sv := m.gv.Add(1)
	m.scans[slot].Store(sv)
	defer m.scans[slot].Store(0)

	c := m.findChunk(lo)
	for c != nil {
		p := c.data.Load()
		keys, cells := p.merged()
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= lo })
		for ; i < len(keys); i++ {
			v := cells[i].head.Load()
			for v != nil && v.ver >= sv {
				v = v.next.Load()
			}
			if v == nil || v.del {
				continue
			}
			if !fn(keys[i], v.val) {
				return
			}
		}
		c = c.next.Load()
	}
}

// Len counts live entries (O(n); for tests).
func (m *Map) Len() int {
	n := 0
	m.RangeFrom(0, func(uint32, uint32) bool { n++; return true })
	return n
}
