package lfca

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasic(t *testing.T) {
	tr := New[uint64, int]()
	if _, ok := tr.Get(1); ok {
		t.Fatal("phantom")
	}
	tr.Put(1, 10)
	tr.Put(1, 11)
	if v, ok := tr.Get(1); !ok || v != 11 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !tr.Remove(1) || tr.Remove(1) {
		t.Fatal("remove semantics")
	}
}

func TestSequentialReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		tr := New[uint64, int]()
		ref := map[uint64]int{}
		for i := 0; i < 800; i++ {
			k := uint64(rng.IntN(128))
			switch rng.IntN(3) {
			case 0:
				got := tr.Remove(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 1:
				tr.Put(k, i)
				ref[k] = i
			default:
				v, ok := tr.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || (ok && v != want) {
					return false
				}
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsUnderContention(t *testing.T) {
	tr := New[uint64, int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 29))
			for i := 0; i < 4000; i++ {
				tr.Put(uint64(rng.IntN(5000)), i)
			}
		}()
	}
	wg.Wait()
	routes := 0
	var walk func(nd *lfNode[uint64, int])
	walk = func(nd *lfNode[uint64, int]) {
		if nd.route {
			routes++
			walk(nd.left.Load())
			walk(nd.right.Load())
		}
	}
	walk(tr.root.Load())
	if routes == 0 {
		t.Log("warning: no contention-driven splits on this host")
	}
}

func TestScanSortedComplete(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 2000; i += 2 {
		tr.Put(uint64(i), i)
	}
	var got []uint64
	tr.RangeFrom(100, func(k uint64, v int) bool {
		if int(k) != v {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 950 || got[0] != 100 {
		t.Fatalf("n=%d first=%d", len(got), got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("unsorted")
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 100; i++ {
		tr.Put(uint64(i), i)
	}
	n := 0
	tr.RangeFrom(0, func(uint64, int) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("visited %d", n)
	}
}

func TestConcurrentShardedReference(t *testing.T) {
	tr := New[uint64, int]()
	const goroutines, ops, space = 8, 2000, 256
	type final struct {
		val     int
		present bool
	}
	finals := make([]final, space)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 31))
			for i := 0; i < ops; i++ {
				k := uint64(rng.IntN(space/goroutines))*goroutines + uint64(g)
				switch rng.IntN(4) {
				case 0:
					tr.Remove(k)
					finals[k] = final{}
				case 1:
					tr.Get(k)
				default:
					v := g*ops + i
					tr.Put(k, v)
					finals[k] = final{v, true}
				}
			}
		}()
	}
	wg.Wait()
	for k, want := range finals {
		got, ok := tr.Get(uint64(k))
		if ok != want.present || (ok && got != want.val) {
			t.Fatalf("key %d: %d,%v want %d,%v", k, got, ok, want.val, want.present)
		}
	}
}

// TestScanAtomicWindow: two keys updated together by one goroutine (always
// equal values) must never be observed unequal by a validated scan.
func TestScanAtomicWindow(t *testing.T) {
	tr := New[uint64, int]()
	for i := 0; i < 64; i++ {
		tr.Put(uint64(i), 0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Not atomic as a pair of puts — but a validated scan
			// window must catch the leaf changing between them and
			// retry, so a scan sees either both or neither.
			// (Both keys must live in the same leaf for this to
			// hold unconditionally; keys 10 and 11 are adjacent.)
			tr.Put(10, i)
			tr.Put(11, i)
		}
	}()
	for round := 0; round < 2000; round++ {
		var a, b = -1, -1
		tr.RangeFrom(10, func(k uint64, v int) bool {
			if k == 10 {
				a = v
			}
			if k == 11 {
				b = v
			}
			return k < 11
		})
		if a != b && a != b+1 {
			// A scan may land between the two puts of round i,
			// seeing (i, i-1) — a==b+1 — but never b ahead of a
			// or a gap larger than one round.
			close(stop)
			wg.Wait()
			t.Fatalf("scan saw impossible pair (%d,%d)", a, b)
		}
	}
	close(stop)
	wg.Wait()
}
