// Package lfca implements a lock-free contention-adapting search tree after
// Winblad, Sagonas & Jonsson (SPAA '18), the "LFCA tree" baseline of the
// paper's evaluation: immutable sorted-array leaf containers replaced
// wholesale by CAS, with leaf granularity adapting to observed CAS
// contention.
//
// Simplifications versus the published LFCA (documented in DESIGN.md):
// low-contention joins — which require the original's join descriptors and
// multi-phase helping — are omitted, so the tree refines but does not
// coarsen; and range scans use optimistic collect-and-validate (two
// traversals observing identical leaf pointers linearize the scan) instead
// of the original's help-based range objects. Both choices preserve the
// properties the evaluation measures: lock-free updates, linearizable
// scans, and contention-driven granularity.
package lfca

import (
	"cmp"
	"sort"
	"sync/atomic"
)

const (
	statContended   = 250
	statUncontended = -1
	statSplitAt     = 1000
	maxScanRetries  = 1 << 20

	// maxLeafSize bounds a leaf regardless of contention: immutable
	// containers are copied on every update, so an unbounded leaf built
	// during a contention-free phase would make every later update O(n).
	// The bound emulates the size equilibrium that CAS contention
	// produces in the original on many-core hosts.
	maxLeafSize = 128
)

// lfNode is a routing node (route) or an immutable leaf. Leaves are never
// mutated after publication; every update installs a replacement.
type lfNode[K cmp.Ordered, V any] struct {
	route       bool
	key         K
	left, right atomic.Pointer[lfNode[K, V]]

	// Leaf payload (immutable).
	keys []K
	vals []V
	stat int
}

// Tree is a lock-free contention-adapting search tree.
type Tree[K cmp.Ordered, V any] struct {
	root atomic.Pointer[lfNode[K, V]]
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] {
	t := &Tree[K, V]{}
	t.root.Store(&lfNode[K, V]{})
	return t
}

// Name implements index.Named.
func (t *Tree[K, V]) Name() string { return "lfca" }

// traverse returns the leaf responsible for key, its parent route (nil at
// the root) and the leaf's exclusive upper bound (nil for the rightmost
// leaf).
func (t *Tree[K, V]) traverse(key K) (p, leaf *lfNode[K, V], upper *K) {
	cur := t.root.Load()
	for cur.route {
		p = cur
		if key < cur.key {
			k := cur.key
			upper = &k
			cur = cur.left.Load()
		} else {
			cur = cur.right.Load()
		}
	}
	return p, cur, upper
}

func (l *lfNode[K, V]) find(key K) (int, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	return i, i < len(l.keys) && l.keys[i] == key
}

// Get returns the value stored for key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	_, leaf, _ := t.traverse(key)
	if i, ok := leaf.find(key); ok {
		return leaf.vals[i], true
	}
	var zero V
	return zero, false
}

// replaceLeaf CASes old for nu in p's slot (or the root). Returns false on
// contention.
func (t *Tree[K, V]) replaceLeaf(p, old, nu *lfNode[K, V]) bool {
	if p == nil {
		return t.root.CompareAndSwap(old, nu)
	}
	if p.left.Load() == old {
		return p.left.CompareAndSwap(old, nu)
	}
	if p.right.Load() == old {
		return p.right.CompareAndSwap(old, nu)
	}
	return false
}

// Put sets the value for key.
func (t *Tree[K, V]) Put(key K, val V) {
	contended := false
	for {
		p, leaf, _ := t.traverse(key)
		i, found := leaf.find(key)
		var keys []K
		var vals []V
		if found {
			keys = append([]K(nil), leaf.keys...)
			vals = append([]V(nil), leaf.vals...)
			vals[i] = val
		} else {
			keys = make([]K, len(leaf.keys)+1)
			vals = make([]V, len(leaf.vals)+1)
			copy(keys, leaf.keys[:i])
			copy(vals, leaf.vals[:i])
			keys[i], vals[i] = key, val
			copy(keys[i+1:], leaf.keys[i:])
			copy(vals[i+1:], leaf.vals[i:])
		}
		if t.installLeaf(p, leaf, keys, vals, contended) {
			return
		}
		contended = true
	}
}

// Remove deletes key, reporting whether it was present.
func (t *Tree[K, V]) Remove(key K) bool {
	contended := false
	for {
		p, leaf, _ := t.traverse(key)
		i, found := leaf.find(key)
		if !found {
			return false
		}
		keys := make([]K, len(leaf.keys)-1)
		vals := make([]V, len(leaf.vals)-1)
		copy(keys, leaf.keys[:i])
		copy(vals, leaf.vals[:i])
		copy(keys[i:], leaf.keys[i+1:])
		copy(vals[i:], leaf.vals[i+1:])
		if t.installLeaf(p, leaf, keys, vals, contended) {
			return true
		}
		contended = true
	}
}

// installLeaf publishes a new leaf carrying the adapted contention
// statistic, splitting when the statistic crossed the threshold.
func (t *Tree[K, V]) installLeaf(p, old *lfNode[K, V], keys []K, vals []V, contended bool) bool {
	stat := old.stat
	if contended {
		stat += statContended
	} else {
		stat += statUncontended
	}
	if (stat > statSplitAt || len(keys) > maxLeafSize) && len(keys) >= 2 {
		mid := len(keys) / 2
		route := &lfNode[K, V]{route: true, key: keys[mid]}
		route.left.Store(&lfNode[K, V]{keys: keys[:mid:mid], vals: vals[:mid:mid]})
		route.right.Store(&lfNode[K, V]{keys: keys[mid:], vals: vals[mid:]})
		return t.replaceLeaf(p, old, route)
	}
	return t.replaceLeaf(p, old, &lfNode[K, V]{keys: keys, vals: vals, stat: stat})
}

// scanWindow bounds how many entries one validated scan window covers. A
// window is collected, validated (every leaf pointer re-observed unchanged)
// and only then emitted, so everything inside one window is an atomic cut —
// any concurrent update to a collected leaf forces a collect retry, the
// validate-and-restart discipline of the k-ary/LFCA scan designs. The
// paper's longest scans (10 000 entries) fit in a single window; larger
// scans are atomic per window.
const scanWindow = 16384

// RangeFrom visits entries with key >= lo ascending until fn returns false.
func (t *Tree[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	type seg struct {
		leaf  *lfNode[K, V]
		upper *K
	}
	cursor := lo
	first := true
	for {
		var segs []seg
		done := false
		for attempt := 0; attempt < maxScanRetries; attempt++ {
			segs = segs[:0]
			entries := 0
			c := cursor
			done = false
			for entries < scanWindow {
				_, leaf, upper := t.traverse(c)
				segs = append(segs, seg{leaf, upper})
				entries += len(leaf.keys)
				if upper == nil {
					done = true
					break
				}
				c = *upper
			}
			// Validate: re-traversal must observe identical leaves.
			valid := true
			c = cursor
			for _, s := range segs {
				_, leaf, _ := t.traverse(c)
				if leaf != s.leaf {
					valid = false
					break
				}
				if s.upper == nil {
					break
				}
				c = *s.upper
			}
			if valid {
				break
			}
		}
		for _, s := range segs {
			l := s.leaf
			i := 0
			if first {
				i = sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= lo })
			}
			for ; i < len(l.keys); i++ {
				if !fn(l.keys[i], l.vals[i]) {
					return
				}
			}
		}
		if done || len(segs) == 0 {
			return
		}
		first = false
		cursor = *segs[len(segs)-1].upper
	}
}

// Len counts entries (O(n); for tests).
func (t *Tree[K, V]) Len() int {
	n := 0
	var walk func(nd *lfNode[K, V])
	walk = func(nd *lfNode[K, V]) {
		if nd.route {
			walk(nd.left.Load())
			walk(nd.right.Load())
			return
		}
		n += len(nd.keys)
	}
	walk(t.root.Load())
	return n
}
